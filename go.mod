module surfnet

go 1.22
