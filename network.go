package surfnet

import (
	"surfnet/internal/core"
	"surfnet/internal/faults"
	"surfnet/internal/network"
	"surfnet/internal/routing"
	"surfnet/internal/topology"
)

// Network is the static quantum network handed to the routing protocol:
// users, switches and servers connected by dual-channel optical fibers.
type Network = network.Network

// Node is a network node.
type Node = network.Node

// Fiber is an optical fiber carrying both SurfNet channels.
type Fiber = network.Fiber

// Request is a communication request k = [(s_k, d_k), i_k].
type Request = network.Request

// Node roles.
const (
	User   = network.User
	Switch = network.Switch
	Server = network.Server
)

// NewNetwork assembles a network from explicit nodes and fibers.
func NewNetwork(nodes []Node, fibers []Fiber) (*Network, error) {
	return network.New(nodes, fibers)
}

// Facilities describes how well-equipped a generated scenario is.
type Facilities = topology.Facilities

// FidelityRange is a uniform fiber-fidelity distribution.
type FidelityRange = topology.FidelityRange

// The paper's scenario presets (§VI).
var (
	Abundant       = topology.Abundant
	Sufficient     = topology.Sufficient
	Insufficient   = topology.Insufficient
	GoodConnection = topology.GoodConnection
	PoorConnection = topology.PoorConnection
)

// TopologyParams fully specifies a random scenario.
type TopologyParams = topology.Params

// DefaultTopology returns the paper-scale scenario parameters: a 24-node
// Barabási–Albert graph with attachment 2.
func DefaultTopology(f Facilities, fr FidelityRange) TopologyParams {
	return topology.DefaultParams(f, fr)
}

// GenerateNetwork builds a random network scenario.
func GenerateNetwork(p TopologyParams, src *Rand) (*Network, error) {
	return topology.Generate(p, src)
}

// GenRequests draws k random user-to-user requests with up to maxMessages
// surface codes each.
func GenRequests(net *Network, k, maxMessages int, src *Rand) ([]Request, error) {
	return topology.GenRequests(net, k, maxMessages, src)
}

// Design selects one of the five evaluated network designs.
type Design = routing.Design

// The evaluated designs (§VI-B).
const (
	DesignSurfNet       = routing.SurfNet
	DesignRaw           = routing.Raw
	DesignPurification1 = routing.Purification1
	DesignPurification2 = routing.Purification2
	DesignPurification9 = routing.Purification9
)

// RoutingParams are the pre-defined routing parameters of Table I.
type RoutingParams = routing.Params

// DefaultRouting returns paper-scale routing parameters for a design.
func DefaultRouting(d Design) RoutingParams { return routing.DefaultParams(d) }

// Schedule is an offline-scheduling output.
type Schedule = routing.Schedule

// ScheduleRoutes runs the paper's scheduler: the LP relaxation of the
// routing integer program (Eq. 1-6) with rounding, falling back to greedy
// admission for designs outside the formulation.
func ScheduleRoutes(net *Network, reqs []Request, p RoutingParams) (Schedule, error) {
	return routing.ScheduleLP(net, reqs, p)
}

// ScheduleGreedy runs the pure greedy shortest-noise-path comparator.
func ScheduleGreedy(net *Network, reqs []Request, p RoutingParams) (Schedule, error) {
	return routing.Greedy(net, reqs, p, nil, nil)
}

// EngineConfig parameterizes online execution (§V-B).
type EngineConfig = core.Config

// DefaultEngine returns the paper-default execution engine: distance-5 code,
// SurfNet Decoder, two-fiber opportunistic segments.
func DefaultEngine() EngineConfig { return core.DefaultConfig() }

// RunResult aggregates the execution outcomes of a schedule.
type RunResult = core.RunResult

// Outcome records the execution of one scheduled surface code.
type Outcome = core.Outcome

// Execute runs every scheduled code through the online execution engine and
// reports per-communication outcomes (fidelity, latency, corrections).
func Execute(net *Network, sched Schedule, cfg EngineConfig, src *Rand) (RunResult, error) {
	return core.Run(net, sched, cfg, src)
}

// RoundConfig drives continuous operation: per-round request arrival,
// scheduling against refreshed budgets, execution, and backlog carry-over
// (§V-A's "before each round of routing...").
type RoundConfig = core.RoundConfig

// RoundsResult aggregates a continuous multi-round run.
type RoundsResult = core.RoundsResult

// DefaultRounds returns a paper-scale continuous-operation configuration.
func DefaultRounds() RoundConfig { return core.DefaultRoundConfig() }

// Operate runs the network continuously for the configured rounds.
func Operate(net *Network, rc RoundConfig, src *Rand) (RoundsResult, error) {
	return core.RunRounds(net, rc, src)
}

// FaultProfile is the declarative fault-injection scenario attached to an
// EngineConfig: stochastic fiber crashes, node/server outages, correlated
// regional failures, fidelity drift, and scripted outage timetables.
type FaultProfile = faults.Profile

// ScriptedFault is one entry of an exact outage timetable.
type ScriptedFault = faults.ScriptedFault

// ParseFaultScript parses a scripted outage timetable from its textual form
// (comma-separated SLOT:fiber|node:ID:DURATION entries), shared by the
// faultsim -script and surfnetd -fault-script flags.
func ParseFaultScript(arg string) ([]ScriptedFault, error) {
	return faults.ParseScript(arg)
}
