// Benchmarks regenerating every table and figure of the paper's evaluation
// (scaled to one reduced trial per iteration; use cmd/surfnetsim and
// cmd/decoderbench for full-scale runs), plus micro-benchmarks of each core
// algorithm: the three decoders, the blossom matcher, the routing LP, and
// the execution engine.
package surfnet_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"surfnet"
	"surfnet/internal/batch"
	"surfnet/internal/decoder"
	"surfnet/internal/matching"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// benchExperiments returns a one-trial experiment configuration sized for a
// single benchmark iteration.
func benchExperiments(seed uint64) surfnet.ExperimentConfig {
	cfg := surfnet.DefaultExperiments()
	cfg.Trials = 1
	cfg.Requests = 4
	cfg.MaxMessages = 2
	cfg.Seed = seed
	return cfg
}

// BenchmarkFig6aTable regenerates the Fig. 6(a) Raw-vs-SurfNet table
// (throughput, latency, fidelity across the three facility scenarios).
func BenchmarkFig6aTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := surfnet.Fig6a(benchExperiments(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig6b1 regenerates the capacity sweep of Fig. 6(b.1).
func BenchmarkFig6b1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.Fig6b1(benchExperiments(uint64(i+1)), []float64{0.5, 1, 1.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b2 regenerates the entanglement-rate sweep of Fig. 6(b.2).
func BenchmarkFig6b2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.Fig6b2(benchExperiments(uint64(i+1)), []float64{0.5, 1, 1.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b3 regenerates the messages-per-request sweep of Fig. 6(b.3).
func BenchmarkFig6b3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.Fig6b3(benchExperiments(uint64(i+1)), []int{1, 3, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b4 regenerates the fidelity-threshold sweep of Fig. 6(b.4).
func BenchmarkFig6b4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.Fig6b4(benchExperiments(uint64(i+1)), []float64{0.6, 1, 1.6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the five-design fidelity comparison of Fig. 7.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := surfnet.Fig7(benchExperiments(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig8 regenerates a reduced Fig. 8 threshold grid (both decoders,
// two distances, three Pauli rates, 5 trials per point per iteration).
func BenchmarkFig8(b *testing.B) {
	cfg := surfnet.DefaultFig8()
	cfg.Trials = 5
	cfg.Distances = []int{9, 13}
	cfg.PauliRates = []float64{0.06, 0.07, 0.08}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := surfnet.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCellWorkers compares serial and parallel evaluation of the
// Fig. 6(a) cells at increasing worker-pool sizes. Results are identical for
// every worker count (internal/sim seeds trials by index); only wall time
// changes, so ns/op across the sub-benchmarks is the speedup table.
func BenchmarkCellWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			cfg := surfnet.DefaultExperiments()
			cfg.Trials = 16
			cfg.Requests = 4
			cfg.MaxMessages = 2
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := surfnet.Fig6a(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Workers compares serial and parallel evaluation of one Fig. 8
// threshold point (d=9, both decoders) at increasing worker-pool sizes; the
// parallel path also exercises the per-worker decoder scratch arenas.
func BenchmarkFig8Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			cfg := surfnet.DefaultFig8()
			cfg.Trials = 64
			cfg.Distances = []int{9}
			cfg.PauliRates = []float64{0.07}
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i + 1)
				if _, err := surfnet.Fig8(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// decodeOnce samples one Fig. 8-style error and decodes it with dec.
func decodeOnce(b *testing.B, code *surfacecode.Code, dec decoder.Decoder, src *rng.Source,
	nm *surfacecode.NoiseModel, probs []float64) {
	b.Helper()
	frame, erased := nm.Sample(src)
	if _, err := decoder.DecodeFrame(code, dec, frame, erased, probs); err != nil {
		b.Fatal(err)
	}
}

// benchDecoder runs one decoder across the paper's distances at the Fig. 8
// operating point (p = 7%, erasure 15%).
func benchDecoder(b *testing.B, dec decoder.Decoder) {
	b.Helper()
	for _, d := range []int{9, 11, 13, 15} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			code := surfacecode.MustNew(d, surfacecode.CoreLShape)
			nm := surfacecode.UniformNoise(code, 0.07, 0.15)
			probs := nm.EdgeErrorProb()
			src := rng.New(99)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				decodeOnce(b, code, dec, src, nm, probs)
			}
		})
	}
}

// BenchmarkSurfNetDecoder measures Algorithm 2 (Theorem 2's near-linear
// scaling shows in the per-distance growth).
func BenchmarkSurfNetDecoder(b *testing.B) { benchDecoder(b, decoder.SurfNet{}) }

// BenchmarkUnionFindDecoder measures the Union-Find baseline.
func BenchmarkUnionFindDecoder(b *testing.B) { benchDecoder(b, decoder.UnionFind{}) }

// BenchmarkMWPMDecoder measures the modified MWPM decoder (Algorithm 1 /
// Theorem 1).
func BenchmarkMWPMDecoder(b *testing.B) { benchDecoder(b, decoder.MWPM{}) }

// BenchmarkDecodeWallLatency measures per-decode wall latency *distribution*,
// not just the mean: each decode is timed into the telemetry HDR histogram
// and the p50/p99/p999 land in BENCH_decoder.json as extra metric families
// (p50-ns/op ...), so tail regressions show in the trajectory even when the
// mean holds.
func BenchmarkDecodeWallLatency(b *testing.B) {
	for _, dec := range []struct {
		name string
		d    decoder.Decoder
	}{{"surfnet", decoder.SurfNet{}}, {"mwpm", decoder.MWPM{}}} {
		b.Run(dec.name+"/d=9", func(b *testing.B) {
			code := surfacecode.MustNew(9, surfacecode.CoreLShape)
			nm := surfacecode.UniformNoise(code, 0.07, 0.15)
			probs := nm.EdgeErrorProb()
			src := rng.New(99)
			h := telemetry.NewHDR(telemetry.WallLatencySpec)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				decodeOnce(b, code, dec.d, src, nm, probs)
				h.Observe(time.Since(start).Seconds())
			}
			b.StopTimer()
			for _, p := range []struct {
				unit string
				q    float64
			}{{"p50-ns/op", 0.50}, {"p99-ns/op", 0.99}, {"p999-ns/op", 0.999}} {
				if v := h.Quantile(p.q); !math.IsNaN(v) {
					b.ReportMetric(v*1e9, p.unit)
				}
			}
		})
	}
}

// BenchmarkBatchSample measures packed 64-lane noise sampling: one op draws
// a full 64-trial batch of X/Z/erasure planes, so ns/trial is ns/op ÷ 64
// (reported as an extra metric).
func BenchmarkBatchSample(b *testing.B) {
	for _, d := range []int{9, 15, 25} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			code := surfacecode.MustNew(d, surfacecode.CoreLShape)
			nm := surfacecode.UniformNoise(code, 0.07, 0.15)
			s, err := batch.NewSampler(code.NumData(), nm)
			if err != nil {
				b.Fatal(err)
			}
			planes := batch.NewPlanes(code.NumData())
			src := rng.New(99)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.SampleInto(planes, src)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch.Lanes, "ns/trial")
		})
	}
}

// BenchmarkBatchDecode compares the packed 64-lane engine against the scalar
// pipeline on the same operating points: "fig8" is the threshold-study mixed
// regime (p = 7%, erasure 15%), where most lanes fall back to the scalar
// decoder and packing amortizes sampling, syndrome extraction, and verdicts;
// "erasure" is the erasure-dominated regime (pure erasure at 24%, the regime
// Delfosse's linear-time peeling benchmark targets), where the stamped peeling
// fast path carries every lane and the packed engine's per-trial throughput
// leaves the scalar pipeline far behind. One packed op decodes 64 trials;
// ns/trial is reported for direct comparison with the scalar rows.
func BenchmarkBatchDecode(b *testing.B) {
	points := []struct {
		name string
		p, e float64
	}{
		{"fig8", 0.07, 0.15},
		{"erasure", 0.0, 0.15},
	}
	for _, pt := range points {
		for _, d := range []int{9, 15, 25} {
			code := surfacecode.MustNew(d, surfacecode.CoreLShape)
			nm := surfacecode.UniformNoise(code, pt.p, pt.e)
			b.Run(fmt.Sprintf("%s/d=%d/packed", pt.name, d), func(b *testing.B) {
				eng, err := batch.NewEngine(code, nm, decoder.SurfNet{})
				if err != nil {
					b.Fatal(err)
				}
				root := rng.New(99)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.Run(root.SplitN("batch", i), batch.Lanes); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batch.Lanes, "ns/trial")
			})
			b.Run(fmt.Sprintf("%s/d=%d/scalar", pt.name, d), func(b *testing.B) {
				probs := nm.EdgeErrorProb()
				src := rng.New(99)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					decodeOnce(b, code, decoder.SurfNet{}, src, nm, probs)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/trial")
			})
		}
	}
}

// BenchmarkBlossom measures the exact minimum-weight perfect matcher on
// random complete graphs of the sizes the MWPM decoder produces.
func BenchmarkBlossom(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := rng.New(7)
			var edges []matching.Edge
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					edges = append(edges, matching.Edge{U: u, V: v, Weight: src.Range(0.1, 10)})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := matching.MinWeightPerfect(n, edges); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleLP measures one LP-relaxation scheduling round on a
// paper-scale network (Corollary 1.1 context: the offline stage's cost).
func BenchmarkScheduleLP(b *testing.B) {
	src := surfnet.NewRand(5)
	net, err := surfnet.GenerateNetwork(surfnet.DefaultTopology(surfnet.Sufficient, surfnet.GoodConnection), src)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := surfnet.GenRequests(net, 6, 3, src.Split("reqs"))
	if err != nil {
		b.Fatal(err)
	}
	params := surfnet.DefaultRouting(surfnet.DesignSurfNet)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.ScheduleRoutes(net, reqs, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteEngine measures the online execution of one scheduled
// batch through the slot-level engine.
func BenchmarkExecuteEngine(b *testing.B) {
	src := surfnet.NewRand(6)
	net, err := surfnet.GenerateNetwork(surfnet.DefaultTopology(surfnet.Sufficient, surfnet.GoodConnection), src)
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := surfnet.GenRequests(net, 6, 3, src.Split("reqs"))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := surfnet.ScheduleRoutes(net, reqs, surfnet.DefaultRouting(surfnet.DesignSurfNet))
	if err != nil {
		b.Fatal(err)
	}
	cfg := surfnet.DefaultEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surfnet.Execute(net, sched, cfg, src.SplitN("run", i)); err != nil {
			b.Fatal(err)
		}
	}
}
