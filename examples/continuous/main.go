// Continuous operation: the routing protocol running in rounds (§V-A).
//
// The example operates a sufficient-facility network for ten scheduling
// rounds: each round collects newly arrived requests plus the backlog,
// schedules them with the LP relaxation against refreshed per-round budgets,
// executes the admitted codes, and carries unserved requests forward.
//
// Run with: go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	src := surfnet.NewRand(2026)
	net, err := surfnet.GenerateNetwork(
		surfnet.DefaultTopology(surfnet.Sufficient, surfnet.GoodConnection), src)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}

	rc := surfnet.DefaultRounds()
	rc.Rounds = 10
	rc.ArrivalsPerRound = 5
	res, err := surfnet.Operate(net, rc, src.Split("operate"))
	if err != nil {
		log.Fatalf("operating: %v", err)
	}

	fmt.Printf("%-6s %9s %9s %10s %10s %9s\n",
		"round", "arrived", "pending", "scheduled", "fidelity", "latency")
	for _, ro := range res.Rounds {
		fmt.Printf("%-6d %9d %9d %10d %10.3f %9.1f\n",
			ro.Round, ro.Arrived, ro.Pending, ro.Scheduled,
			ro.Result.Fidelity(), ro.Result.MeanLatency())
	}
	fmt.Printf("\ntotal codes delivered: %d, overall fidelity %.3f, rejected requests %d\n",
		res.TotalScheduled(), res.Fidelity(), res.Rejected)
}
