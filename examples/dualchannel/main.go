// Dual-channel demonstration: why splitting a surface code into Core and
// Support parts helps.
//
// The example runs the same workload through three designs over a series of
// random poor-connection networks — SurfNet (dual channel), Raw (plain
// channel only), and Purification N=2 (teleportation only) — and reports the
// averaged fidelity / latency / throughput trade-off that motivates the
// paper.
//
// Run with: go run ./examples/dualchannel
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	const trials = 10
	designs := []surfnet.Design{surfnet.DesignSurfNet, surfnet.DesignRaw, surfnet.DesignPurification2}

	fmt.Println("scenario: sufficient facilities, poor connections (fiber fidelity in [0.5, 1))")
	fmt.Printf("%d random networks, 8 requests each\n\n", trials)
	fmt.Printf("%-16s %10s %10s %10s\n", "design", "throughput", "fidelity", "latency")

	for _, d := range designs {
		params := surfnet.DefaultRouting(d)
		fac := surfnet.Sufficient
		var thSum, fidSum, latSum float64
		fidTrials := 0
		for i := 0; i < trials; i++ {
			src := surfnet.NewRand(uint64(100 + i))
			net, err := surfnet.GenerateNetwork(surfnet.DefaultTopology(fac, surfnet.PoorConnection), src)
			if err != nil {
				log.Fatalf("generating network: %v", err)
			}
			reqs, err := surfnet.GenRequests(net, 8, 2, src.Split("requests"))
			if err != nil {
				log.Fatalf("generating requests: %v", err)
			}
			sched, err := surfnet.ScheduleRoutes(net, reqs, params)
			if err != nil {
				log.Fatalf("%v: scheduling: %v", d, err)
			}
			thSum += sched.Throughput()
			if sched.AcceptedCodes() == 0 {
				continue
			}
			res, err := surfnet.Execute(net, sched, surfnet.DefaultEngine(), src.Split("run"))
			if err != nil {
				log.Fatalf("%v: executing: %v", d, err)
			}
			fidSum += res.Fidelity()
			latSum += res.MeanLatency()
			fidTrials++
		}
		fid, lat := 0.0, 0.0
		if fidTrials > 0 {
			fid = fidSum / float64(fidTrials)
			lat = latSum / float64(fidTrials)
		}
		fmt.Printf("%-16v %10.3f %10.3f %10.1f\n", d, thSum/trials, fid, lat)
	}
	fmt.Println("\nSurfNet keeps fidelity high by sending the decoder-critical Core qubits")
	fmt.Println("over the purified entanglement channel and correcting at servers en route;")
	fmt.Println("the teleportation-only baseline pays for its waits with decohered payloads.")
}
