// Failure injection: fiber crashes and local recovery paths (§V-B).
//
// The example builds a ring-shaped network with an alternate route, injects
// per-slot fiber outages, and compares online execution with and without the
// local recovery mechanism ("a node can locally replace a failed route with
// a recovery path leading to the next designated node").
//
// Run with: go run ./examples/failures
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	// user(0) - switch(1) - server(2) - switch(3) - user(4), with a
	// detour switch(5) bridging 1 and 3.
	nodes := []surfnet.Node{
		{ID: 0, Role: surfnet.User},
		{ID: 1, Role: surfnet.Switch, Capacity: 2000},
		{ID: 2, Role: surfnet.Server, Capacity: 4000},
		{ID: 3, Role: surfnet.Switch, Capacity: 2000},
		{ID: 4, Role: surfnet.User},
		{ID: 5, Role: surfnet.Switch, Capacity: 2000},
	}
	mk := func(id, a, b int, fid float64) surfnet.Fiber {
		return surfnet.Fiber{ID: id, A: a, B: b, Fidelity: fid, EntPairs: 2000, EntRate: 0.8, LossProb: 0.02}
	}
	fibers := []surfnet.Fiber{
		mk(0, 0, 1, 0.95), mk(1, 1, 2, 0.95), mk(2, 2, 3, 0.95), mk(3, 3, 4, 0.95),
		mk(4, 1, 5, 0.9), mk(5, 5, 3, 0.9), // recovery detour
	}
	net, err := surfnet.NewNetwork(nodes, fibers)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	reqs := []surfnet.Request{{Src: 0, Dst: 4, Messages: 20}}
	sched, err := surfnet.ScheduleRoutes(net, reqs, surfnet.DefaultRouting(surfnet.DesignSurfNet))
	if err != nil {
		log.Fatalf("scheduling: %v", err)
	}
	fmt.Printf("scheduled %d codes over the backbone; injecting 5%%/slot fiber crashes (20-slot repairs)\n\n",
		sched.AcceptedCodes())

	fmt.Printf("%-18s %10s %10s %10s %12s\n", "mode", "delivered", "fidelity", "latency", "recoveries")
	for _, disable := range []bool{false, true} {
		cfg := surfnet.DefaultEngine()
		cfg.FiberFailProb = 0.05
		cfg.RepairSlots = 20
		cfg.MaxSlots = 1000
		cfg.DisableRecovery = disable
		res, err := surfnet.Execute(net, sched, cfg, surfnet.NewRand(3))
		if err != nil {
			log.Fatalf("executing: %v", err)
		}
		recoveries := 0
		for _, o := range res.Outcomes {
			recoveries += o.Recoveries
		}
		mode := "with recovery"
		if disable {
			mode = "without recovery"
		}
		fmt.Printf("%-18s %10.2f %10.3f %10.1f %12d\n",
			mode, res.DeliveredFraction(), res.Fidelity(), res.MeanLatency(), recoveries)
	}
	fmt.Println("\nRecovery reroutes blocked segments through the detour switch, cutting the")
	fmt.Println("time codes spend waiting for crashed fibers to repair.")
}
