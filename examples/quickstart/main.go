// Quickstart: transfer one quantum message across a small SurfNet network.
//
// The example builds a five-node line network (user - switch - server -
// switch - user), schedules a single communication request with the paper's
// LP-based routing protocol, executes it through the dual-channel engine
// (Core part teleported, Support part as photons, error correction at the
// server), and reports the outcome.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	// A small network: two users at the ends, a switch-server-switch
	// backbone, moderately noisy fibers.
	nodes := []surfnet.Node{
		{ID: 0, Role: surfnet.User},
		{ID: 1, Role: surfnet.Switch, Capacity: 200},
		{ID: 2, Role: surfnet.Server, Capacity: 400},
		{ID: 3, Role: surfnet.Switch, Capacity: 200},
		{ID: 4, Role: surfnet.User},
	}
	var fibers []surfnet.Fiber
	for i := 0; i < 4; i++ {
		fibers = append(fibers, surfnet.Fiber{
			ID: i, A: i, B: i + 1,
			Fidelity: 0.85, // noisy enough to need error correction
			EntPairs: 50,   // prepared entangled pairs per round
			EntRate:  0.6,  // per-slot entanglement success probability
			LossProb: 0.05, // plain-channel photon loss per fiber
		})
	}
	net, err := surfnet.NewNetwork(nodes, fibers)
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	// One request: user 0 sends three surface-code messages to user 4.
	reqs := []surfnet.Request{{Src: 0, Dst: 4, Messages: 3}}
	params := surfnet.DefaultRouting(surfnet.DesignSurfNet)
	sched, err := surfnet.ScheduleRoutes(net, reqs, params)
	if err != nil {
		log.Fatalf("scheduling: %v", err)
	}
	fmt.Printf("scheduled %d/%d codes, throughput %.2f\n",
		sched.AcceptedCodes(), reqs[0].Messages, sched.Throughput())
	for i, cr := range sched.Requests[0].Codes {
		fmt.Printf("  code %d: support path %v, EC servers %v, scheduled noise %.3f (expected fidelity %.3f)\n",
			i, cr.SupportPath, cr.Servers, cr.TotalNoise, cr.ExpectedFidelity())
	}

	// Execute: the Core part teleports across opportunistic entanglement
	// segments, the Support part rides the plain channel, and the server
	// decodes with the SurfNet Decoder.
	res, err := surfnet.Execute(net, sched, surfnet.DefaultEngine(), surfnet.NewRand(42))
	if err != nil {
		log.Fatalf("executing: %v", err)
	}
	for _, o := range res.Outcomes {
		fmt.Printf("code %d: delivered=%v success=%v latency=%d slots, %d corrections\n",
			o.Code, o.Delivered, o.Success, o.Latency, o.Corrections)
	}
	fmt.Printf("communication fidelity %.2f, mean latency %.1f slots\n",
		res.Fidelity(), res.MeanLatency())
}
