// Routing study: the LP-relaxation routing protocol on a paper-scale random
// network.
//
// The example generates a 24-node Barabási–Albert scenario, draws a batch of
// random requests, schedules them with the integer program's LP relaxation
// plus rounding (Eq. 1-6 of the paper), and compares the result against the
// greedy shortest-noise-path comparator.
//
// Run with: go run ./examples/routing_study
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	src := surfnet.NewRand(2024)
	net, err := surfnet.GenerateNetwork(
		surfnet.DefaultTopology(surfnet.Sufficient, surfnet.GoodConnection), src)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}
	reqs, err := surfnet.GenRequests(net, 8, 3, src.Split("requests"))
	if err != nil {
		log.Fatalf("generating requests: %v", err)
	}
	fmt.Printf("network: %d nodes, %d fibers; %d requests\n\n", net.NumNodes(), net.NumFibers(), len(reqs))

	params := surfnet.DefaultRouting(surfnet.DesignSurfNet)
	lpSched, err := surfnet.ScheduleRoutes(net, reqs, params)
	if err != nil {
		log.Fatalf("LP scheduling: %v", err)
	}
	greedySched, err := surfnet.ScheduleGreedy(net, reqs, params)
	if err != nil {
		log.Fatalf("greedy scheduling: %v", err)
	}

	fmt.Printf("%-22s %10s %10s %18s\n", "scheduler", "accepted", "throughput", "expected fidelity")
	fmt.Printf("%-22s %10d %10.3f %18.3f\n", "LP relaxation+rounding",
		lpSched.AcceptedCodes(), lpSched.Throughput(), lpSched.MeanExpectedFidelity())
	fmt.Printf("%-22s %10d %10.3f %18.3f\n\n", "greedy",
		greedySched.AcceptedCodes(), greedySched.Throughput(), greedySched.MeanExpectedFidelity())

	fmt.Println("LP-rounded routes:")
	for i, rs := range lpSched.Requests {
		fmt.Printf("request %d: %d -> %d, %d/%d codes\n",
			i, rs.Request.Src, rs.Request.Dst, rs.Accepted(), rs.Request.Messages)
		for c, cr := range rs.Codes {
			fmt.Printf("  code %d: fibers %v, EC at %v, core noise %.3f, total noise %.3f\n",
				c, cr.SupportPath, cr.Servers, cr.CoreNoise, cr.TotalNoise)
		}
	}
}
