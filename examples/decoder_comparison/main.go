// Decoder comparison: the SurfNet Decoder vs the Union-Find baseline vs the
// modified MWPM decoder on one surface code.
//
// The example samples Pauli + erasure errors on a distance-9 code (erasure
// 15%, rates halved on the Core part, as in the paper's Fig. 8 setup) and
// measures each decoder's logical error rate over a few thousand trials.
//
// Run with: go run ./examples/decoder_comparison
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	const (
		distance    = 9
		pauliRate   = 0.07
		erasureRate = 0.15
		trials      = 3000
	)
	code, err := surfnet.NewCode(distance, surfnet.CoreLShape)
	if err != nil {
		log.Fatalf("building code: %v", err)
	}
	fmt.Printf("distance-%d planar code: %d data qubits (%d Core, %d Support)\n",
		code.Distance(), code.NumData(), code.CoreSize(), code.SupportSize())
	fmt.Printf("channel: Pauli %.1f%%, erasure %.1f%%, both halved on Core\n\n",
		pauliRate*100, erasureRate*100)

	noise := surfnet.UniformNoise(code, pauliRate, erasureRate)
	probs := noise.EdgeErrorProb()

	decoders := []surfnet.Decoder{
		surfnet.NewUnionFindDecoder(),
		surfnet.NewSurfNetDecoder(0), // 0 selects the default step size 2/3
		surfnet.NewMWPMDecoder(),
	}
	for _, dec := range decoders {
		src := surfnet.NewRand(7) // same error sequences for every decoder
		fails := 0
		for i := 0; i < trials; i++ {
			frame, erased := noise.Sample(src.SplitN("trial", i))
			res, err := surfnet.Decode(code, dec, frame, erased, probs)
			if err != nil {
				log.Fatalf("%s: %v", dec.Name(), err)
			}
			if res.Failed() {
				fails++
			}
		}
		fmt.Printf("%-12s logical error rate %.4f  (%d/%d trials failed)\n",
			dec.Name(), float64(fails)/trials, fails, trials)
	}
}
