// Decoding trace: a Fig. 3 / Fig. 5 style walk-through of one error
// correction on a surface code.
//
// The example samples a Pauli + erasure error on a distance-5 code, renders
// the lattice with its syndrome pattern, decodes it with the SurfNet Decoder,
// and renders the estimated error pattern and the residual, reporting whether
// a logical error survived.
//
// Run with: go run ./examples/decoding_trace
package main

import (
	"fmt"
	"log"

	"surfnet"
)

func main() {
	code, err := surfnet.NewCode(5, surfnet.CoreLShape)
	if err != nil {
		log.Fatalf("building code: %v", err)
	}
	fmt.Println("Core part (C) of the distance-5 code — one qubit per internal logical axis:")
	fmt.Println(code.RenderCore())

	noise := surfnet.UniformNoise(code, 0.08, 0.15)
	src := surfnet.NewRand(12)
	frame, erased := noise.Sample(src)

	fmt.Println("sampled channel error (X/Y/Z = Pauli error, E = erasure, # / @ = syndromes):")
	fmt.Println(code.Render(frame, erased))

	dec := surfnet.NewSurfNetDecoder(0)
	res, err := surfnet.Decode(code, dec, frame, erased, noise.EdgeErrorProb())
	if err != nil {
		log.Fatalf("decoding: %v", err)
	}

	fmt.Println("residual after the SurfNet Decoder's correction (must be syndrome-free):")
	fmt.Println(code.Render(res.Residual, nil))

	switch {
	case !res.Failed():
		fmt.Println("correction successful: the residual is a product of stabilizers.")
	case res.LogicalX && res.LogicalZ:
		fmt.Println("logical X AND Z errors: the residual wraps both logical operators.")
	case res.LogicalX:
		fmt.Println("logical X error: the residual crosses the lattice left-to-right.")
	default:
		fmt.Println("logical Z error: the residual crosses the lattice top-to-bottom.")
	}
}
