package surfnet

import (
	"io"

	"surfnet/internal/obs"
	"surfnet/internal/telemetry"
)

// Metrics is a concurrent-safe registry of counters, gauges, and latency/size
// histograms. The engine, scheduler, and decoders record into one when it is
// wired into their configs; a nil *Metrics disables collection everywhere at
// the cost of one nil check per event.
type Metrics = telemetry.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// MetricsSnapshot is a frozen, sorted view of a registry.
type MetricsSnapshot = telemetry.Snapshot

// Tracer receives slot-level engine events and routing events. Nil disables
// tracing.
type Tracer = telemetry.Tracer

// TraceEvent is one traced event.
type TraceEvent = telemetry.Event

// JSONLTracer writes one JSON object per event to an io.Writer.
type JSONLTracer = telemetry.JSONL

// NewJSONLTracer returns a buffered tracer writing JSON Lines to w. Call
// Flush (or Close) after the run to drain the buffer.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return telemetry.NewJSONL(w) }

// ProgressTracker aggregates live sweep progress; wire one into an
// experiment config's Progress field and serve it with NewObsServer.
type ProgressTracker = obs.Tracker

// NewProgressTracker returns an empty progress tracker.
func NewProgressTracker() *ProgressTracker { return obs.NewTracker() }

// ObsServer is the embedded observability HTTP server: /metrics (Prometheus
// text format), /healthz, /readyz, /status, and /debug/pprof/.
type ObsServer = obs.Server

// NewObsServer builds an observability server over a registry and tracker;
// either may be nil. Call Listen to serve and Shutdown to stop.
func NewObsServer(reg *Metrics, tracker *ProgressTracker) *ObsServer {
	return obs.NewServer(reg, tracker)
}

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format.
var WritePrometheus = obs.WritePrometheus
