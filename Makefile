GO ?= go
# Per-benchmark time budget for bench-json; the bench-smoke CI job overrides
# this with a short value to keep the job fast while exercising the full
# pipeline.
BENCHTIME ?= 1s

.PHONY: build test race vet check bench-json bench-smoke bench-diff obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The standard pre-commit check.
check: vet race

# Machine-readable benchmark trajectory: run the decoder and sim benchmarks
# and emit BENCH_decoder.json (ns/op, B/op, allocs/op per benchmark).
# MWPMDecode covers the dense-vs-scratch sparse decode comparison;
# DecodeWallLatency adds the wall-latency percentile families (p50/p99/p999).
bench-json:
	$(GO) test -run '^$$' -bench 'SurfNetDecoder|UnionFindDecoder|MWPMDecoder|MWPMDecode/|DecodeFrameAllocs|RunOverhead|DecodeWallLatency' \
		-benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -out BENCH_decoder.json

# Fast end-to-end check that the benchmark trajectory stays machine-readable:
# regenerate BENCH_decoder.json on a tiny benchtime and fail if any expected
# benchmark family is missing from it.
bench-smoke:
	./scripts/bench_smoke.sh

# Perf-regression ledger gate: regenerate the benchmark snapshot and diff it
# against the committed BENCH_decoder.json with cmd/benchdiff. Tolerances are
# tunable (BENCHDIFF_TOL for ns/op, BENCHDIFF_BYTES_TOL, BENCHDIFF_ALLOC_TOL)
# — CI widens the ns/op band because its hardware differs from the machine
# that wrote the committed ledger, while allocs/op stays strict everywhere.
bench-diff:
	./scripts/bench_diff.sh

# Launch surfnetsim with the obs server on a tiny figure and curl its
# endpoints (same script CI runs).
obs-smoke:
	./scripts/obs_smoke.sh
