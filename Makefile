GO ?= go

.PHONY: build test race vet check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The standard pre-commit check.
check: vet race
