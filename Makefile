GO ?= go
# Per-benchmark time budget for bench-json; the bench-smoke CI job overrides
# this with a short value to keep the job fast while exercising the full
# pipeline.
BENCHTIME ?= 1s

.PHONY: build test race vet check bench-json bench-smoke bench-diff bench-save obs-smoke daemon-smoke chaos-smoke flight-smoke service-bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The standard pre-commit check.
check: vet race

# Machine-readable benchmark trajectory: run the decoder and sim benchmarks
# and emit BENCH_decoder.json (ns/op, B/op, allocs/op per benchmark).
# MWPMDecode covers the dense-vs-scratch sparse decode comparison;
# DecodeWallLatency adds the wall-latency percentile families (p50/p99/p999);
# BatchSample/BatchDecode ratchet the packed 64-lane engine's ns/trial against
# the scalar pipeline.
bench-json:
	$(GO) test -run '^$$' -bench 'SurfNetDecoder|UnionFindDecoder|MWPMDecoder|MWPMDecode/|DecodeFrameAllocs|RunOverhead|DecodeWallLatency|BatchSample|BatchDecode' \
		-benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -out BENCH_decoder.json

# Fast end-to-end check that the benchmark trajectory stays machine-readable:
# regenerate BENCH_decoder.json on a tiny benchtime and fail if any expected
# benchmark family is missing from it.
bench-smoke:
	./scripts/bench_smoke.sh

# Perf-regression ledger gate: regenerate the benchmark snapshot and diff it
# against the committed BENCH_decoder.json with cmd/benchdiff. Tolerances are
# tunable (BENCHDIFF_TOL for ns/op, BENCHDIFF_BYTES_TOL, BENCHDIFF_ALLOC_TOL)
# — CI widens the ns/op band because its hardware differs from the machine
# that wrote the committed ledger, while allocs/op stays strict everywhere.
bench-diff:
	./scripts/bench_diff.sh

# Regenerate every committed benchdiff baseline (BENCH_decoder.json and
# BENCH_service.json) in one step, for the commit that intentionally moves
# the perf ledger. Refuses on a dirty working tree so a baseline refresh can
# never silently absorb unrelated uncommitted changes into the ledger commit.
bench-save:
	@if [ -n "$$(git status --porcelain)" ]; then \
		echo "bench-save: working tree is dirty; commit or stash first" >&2; \
		git status --short >&2; \
		exit 1; \
	fi
	$(MAKE) bench-json
	./scripts/service_bench.sh

# Launch surfnetsim with the obs server on a tiny figure and curl its
# endpoints (same script CI runs).
obs-smoke:
	./scripts/obs_smoke.sh

# End-to-end resident-daemon check: surfnetd on an ephemeral port, a
# 1000-request surfload, service metrics on /metrics and /status, then a
# mid-load SIGTERM asserting the zero-drop drain (same script CI runs).
daemon-smoke:
	./scripts/daemon_smoke.sh

# Chaos variant of the daemon smoke: the live fault plane is armed with the
# 4x resilience scenario plus a scripted outage, surfload retries against it,
# and the zero-drop drain is asserted mid-chaos (same script CI runs).
chaos-smoke:
	./scripts/chaos_smoke.sh

# Flight-recorder smoke: surfnetd under chaos with trace sampling, a trace
# fetched mid-chaos asserting the segment-attribution sum contract, the
# /debug/bundle shape, flightview rendering, and the segment HDR families on
# /metrics (same script CI runs).
flight-smoke:
	./scripts/flight_smoke.sh

# Service-level perf gate: rerun the canonical surfload scenario and diff the
# wall-latency ledger against the committed BENCH_service.json.
service-bench:
	./scripts/service_bench.sh diff
