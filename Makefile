GO ?= go

.PHONY: build test race vet check bench-json obs-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The standard pre-commit check.
check: vet race

# Machine-readable benchmark trajectory: run the decoder and sim benchmarks
# and emit BENCH_decoder.json (ns/op, B/op, allocs/op per benchmark).
bench-json:
	$(GO) test -run '^$$' -bench 'SurfNetDecoder|UnionFindDecoder|MWPMDecoder|DecodeFrameAllocs|RunOverhead' \
		-benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH_decoder.json

# Launch surfnetsim with the obs server on a tiny figure and curl its
# endpoints (same script CI runs).
obs-smoke:
	./scripts/obs_smoke.sh
