// Command surfload drives a running surfnetd with open-loop Poisson arrivals
// and records service-level latency into a benchjson-schema BENCH_*.json, so
// cmd/benchdiff can gate service regressions the same way it gates decoder
// micro-benchmarks.
//
// Open-loop means arrivals do not wait for completions: interarrival gaps are
// drawn exponentially from -rate and each transfer is submitted on its own
// goroutine at its scheduled instant, then polled to a terminal state. By
// default shed responses (429) and drain refusals (503) are counted, not
// retried — the daemon's admission control is part of what is being measured.
// With -retry, a 429 is resubmitted honoring the daemon's Retry-After hint
// under capped exponential backoff with deterministic jitter, up to
// -retry-max attempts; retries are reported separately from sheds. Drain
// refusals (503) are never retried — the daemon is going away.
//
// The request mix (src/dst user pairs, message counts, tenants) derives
// deterministically from -seed; wall-clock latency is whatever the run
// observes. Transfers can carry the daemon's robustness contract through
// -deadline (TTL) and -retry-budget (server-side re-queues under faults).
//
// Usage:
//
//	surfload -addr 127.0.0.1:8080 [-rate 200] [-requests 1000] [-messages 2]
//	         [-tenants 2] [-seed 1] [-poll 5ms] [-timeout 120s]
//	         [-retry] [-retry-max 5] [-retry-cap 2s]
//	         [-deadline D] [-retry-budget N] [-sample-traces N]
//	         [-out BENCH_service.json]
//
// With -sample-traces N the driver pulls GET /v1/transfers/{id}/trace for the
// N slowest completions after the run and folds their per-segment latency
// attribution (queue_wait, plan, execute, retry_backoff, fault_stall) into
// the report's extras — the incident-debugging view, ledgered.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"surfnet/internal/rng"
)

func main() {
	os.Exit(run())
}

// transferRequest mirrors the daemon's POST /v1/transfers body.
type transferRequest struct {
	Tenant      string `json:"tenant,omitempty"`
	Src         int    `json:"src"`
	Dst         int    `json:"dst"`
	Messages    int    `json:"messages"`
	DeadlineMs  int64  `json:"deadline_ms,omitempty"`
	RetryBudget int    `json:"retry_budget,omitempty"`
}

// transferStatus mirrors the daemon's transfer resource.
type transferStatus struct {
	ID                 string  `json:"id"`
	State              string  `json:"state"`
	FailureClass       string  `json:"failure_class"`
	AcceptedCodes      int     `json:"accepted_codes"`
	SuccessCodes       int     `json:"success_codes"`
	WallLatencySeconds float64 `json:"wall_latency_seconds"`
}

// networkInfo mirrors GET /v1/network, reduced to what the driver needs.
type networkInfo struct {
	Nodes []struct {
		ID   int    `json:"id"`
		Role string `json:"role"`
	} `json:"nodes"`
}

// benchmark and report mirror cmd/benchjson's schema, so BENCH_service.json
// diffs under the same cmd/benchdiff gate as the micro-benchmark ledgers.
type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// result is one transfer's fate as the client saw it.
type result struct {
	id        string  // daemon-assigned transfer ID (empty if never admitted)
	state     string  // completed | failed | shed | refused | error | timeout
	failClass string  // daemon failure class when state is failed
	retries   int     // client-side 429 resubmissions consumed
	accepted  int     // surface codes the epoch plan admitted for the transfer
	success   int     // codes that decoded successfully end to end
	wallNs    float64 // daemon-reported admission-to-completion latency
	clientNs  float64 // submit-to-terminal as observed over HTTP
}

// flightTrace mirrors GET /v1/transfers/{id}/trace, reduced to the
// attribution the driver aggregates.
type flightTrace struct {
	ID       string `json:"id"`
	Segments []struct {
		Class  string `json:"class"`
		WallNs int64  `json:"wall_ns"`
	} `json:"segments"`
	TotalWallNs int64 `json:"total_wall_ns"`
}

// sampleSlowTraces pulls flight traces for the n slowest completed transfers
// and aggregates their per-segment wall time. It returns the summed ns per
// segment class and how many traces were actually fetched (the daemon may
// run with flight recording disabled — sampling then degrades to zero).
func sampleSlowTraces(client *http.Client, base string, results []result, n int) (map[string]float64, int) {
	completed := make([]result, 0, len(results))
	for _, r := range results {
		if r.state == "completed" && r.id != "" {
			completed = append(completed, r)
		}
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i].wallNs > completed[j].wallNs })
	if n > len(completed) {
		n = len(completed)
	}
	segNs := map[string]float64{}
	fetched := 0
	for _, r := range completed[:n] {
		resp, err := client.Get(base + "/v1/transfers/" + r.id + "/trace")
		if err != nil {
			continue
		}
		var tr flightTrace
		decErr := json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decErr != nil {
			continue
		}
		for _, seg := range tr.Segments {
			segNs[seg.Class] += float64(seg.WallNs)
		}
		fetched++
	}
	return segNs, fetched
}

// retryPolicy is the client-side 429 retry contract: up to max resubmissions,
// each delayed by the server's Retry-After hint scaled 2x per attempt, capped
// at cap, with deterministic jitter drawn from the transfer's own stream.
type retryPolicy struct {
	enabled bool
	max     int
	cap     time.Duration
}

// backoff computes the attempt-th retry delay from the server's Retry-After
// header (seconds; missing or invalid falls back to 1s).
func (rp retryPolicy) backoff(retryAfter string, attempt int, src *rng.Source) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(retryAfter))
	if err != nil || secs < 1 {
		secs = 1
	}
	d := time.Duration(secs) * time.Second << attempt
	if d > rp.cap || d <= 0 {
		d = rp.cap
	}
	// Jitter in [0.5, 1.0): desynchronizes colliding clients while keeping
	// the delay sequence deterministic for a fixed seed.
	return time.Duration(float64(d) * (0.5 + 0.5*src.Float64()))
}

// quantile reads the q-th quantile from ascending xs (nearest-rank).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// userNodes fetches the daemon's network snapshot and returns its user-role
// node IDs — the only valid transfer endpoints.
func userNodes(client *http.Client, base string) ([]int, error) {
	resp, err := client.Get(base + "/v1/network")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/network: status %d", resp.StatusCode)
	}
	var info networkInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	var users []int
	for _, n := range info.Nodes {
		if n.Role == "user" {
			users = append(users, n.ID)
		}
	}
	if len(users) < 2 {
		return nil, fmt.Errorf("network has %d user nodes, need at least 2", len(users))
	}
	return users, nil
}

// drive submits one transfer — resubmitting shed attempts per the retry
// policy — and polls it to a terminal state.
func drive(client *http.Client, base string, req transferRequest, poll, timeout time.Duration, rp retryPolicy, src *rng.Source) result {
	body, _ := json.Marshal(req)
	start := time.Now()
	var st transferStatus
	retries := 0
	for {
		resp, err := client.Post(base+"/v1/transfers", "application/json", bytes.NewReader(body))
		if err != nil {
			return result{state: "error", retries: retries}
		}
		st = transferStatus{}
		decErr := json.NewDecoder(resp.Body).Decode(&st)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			if !rp.enabled || retries >= rp.max {
				return result{state: "shed", retries: retries}
			}
			time.Sleep(rp.backoff(retryAfter, retries, src))
			retries++
			continue
		case http.StatusServiceUnavailable:
			return result{state: "refused", retries: retries}
		default:
			return result{state: "error", retries: retries}
		}
		if decErr != nil || st.ID == "" {
			return result{state: "error", retries: retries}
		}
		break
	}
	deadline := start.Add(timeout)
	for {
		resp, err := client.Get(base + "/v1/transfers/" + st.ID)
		if err != nil {
			return result{state: "error", retries: retries}
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return result{state: "error", retries: retries}
		}
		if st.State == "completed" || st.State == "failed" {
			return result{
				id:        st.ID,
				state:     st.State,
				failClass: st.FailureClass,
				retries:   retries,
				accepted:  st.AcceptedCodes,
				success:   st.SuccessCodes,
				wallNs:    st.WallLatencySeconds * 1e9,
				clientNs:  float64(time.Since(start).Nanoseconds()),
			}
		}
		if time.Now().After(deadline) {
			return result{state: "timeout", retries: retries}
		}
		time.Sleep(poll)
	}
}

func run() int {
	addr := flag.String("addr", "", "surfnetd address (host:port or http://host:port); required")
	rate := flag.Float64("rate", 200, "mean arrival rate in transfers/second (open-loop Poisson)")
	requests := flag.Int("requests", 1000, "total transfers to submit")
	maxMsgs := flag.Int("messages", 2, "maximum surface codes per transfer")
	tenants := flag.Int("tenants", 2, "tenant names to spread transfers across")
	seed := flag.Uint64("seed", 1, "request-mix seed (pairs, message counts, interarrival gaps)")
	poll := flag.Duration("poll", 5*time.Millisecond, "status poll interval")
	timeout := flag.Duration("timeout", 120*time.Second, "per-transfer completion timeout")
	retry := flag.Bool("retry", false, "resubmit shed (429) transfers honoring Retry-After with capped exponential backoff")
	retryMax := flag.Int("retry-max", 5, "max client resubmissions per transfer in -retry mode")
	retryCap := flag.Duration("retry-cap", 2*time.Second, "client retry backoff ceiling in -retry mode")
	deadlineMs := flag.Duration("deadline", 0, "per-transfer server-side TTL (0: none)")
	retryBudget := flag.Int("retry-budget", 0, "per-transfer server-side re-queue budget under faults")
	traceN := flag.Int("sample-traces", 0, "pull flight traces for the N slowest completions and emit segment-attribution extras")
	out := flag.String("out", "", "write a benchjson-schema latency report to this file")
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "surfload: -addr is required")
		return 2
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if *rate <= 0 || *requests <= 0 || *maxMsgs <= 0 || *tenants <= 0 {
		fmt.Fprintln(os.Stderr, "surfload: -rate, -requests, -messages, and -tenants must be positive")
		return 2
	}

	// Many transfers poll concurrently; without a deep idle pool the default
	// transport (2 idle conns/host) would churn TCP setups and pollute the
	// client-side latency numbers.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	users, err := userNodes(client, base)
	if err != nil {
		slog.Error("surfload: reading network snapshot", "err", err)
		return 1
	}

	// Pre-draw the whole deterministic arrival plan, then fire it open-loop.
	src := rng.New(*seed)
	type arrival struct {
		at  time.Duration
		req transferRequest
	}
	plan := make([]arrival, *requests)
	var at time.Duration
	for i := range plan {
		gap := -math.Log(1-src.Float64()) / *rate
		at += time.Duration(gap * float64(time.Second))
		ai := src.IntN(len(users))
		bi := src.IntN(len(users) - 1)
		if bi >= ai { // draw b from the users minus a, keeping both uniform
			bi++
		}
		a, b := users[ai], users[bi]
		plan[i] = arrival{at: at, req: transferRequest{
			Tenant:      fmt.Sprintf("tenant-%d", src.IntN(*tenants)),
			Src:         a,
			Dst:         b,
			Messages:    1 + src.IntN(*maxMsgs),
			DeadlineMs:  deadlineMs.Milliseconds(),
			RetryBudget: *retryBudget,
		}}
	}
	rp := retryPolicy{enabled: *retry, max: *retryMax, cap: *retryCap}

	slog.Info("surfload: starting run", "addr", base, "rate", *rate,
		"requests", *requests, "users", len(users))
	results := make([]result, len(plan))
	var wg sync.WaitGroup
	begin := time.Now()
	for i, a := range plan {
		if d := a.at - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, req transferRequest) {
			defer wg.Done()
			results[i] = drive(client, base, req, *poll, *timeout, rp, src.SplitN("retry", i))
		}(i, a.req)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	counts := map[string]int64{}
	classes := map[string]int64{}
	var totalRetries, codesAccepted, codesSuccess int64
	var wall, clientNs []float64
	for _, r := range results {
		counts[r.state]++
		totalRetries += int64(r.retries)
		codesAccepted += int64(r.accepted)
		codesSuccess += int64(r.success)
		if r.state == "failed" && r.failClass != "" {
			classes[r.failClass]++
		}
		if r.state == "completed" {
			wall = append(wall, r.wallNs)
			clientNs = append(clientNs, r.clientNs)
		}
	}
	// The paper's communication fidelity at the service level: the fraction
	// of plan-admitted surface codes that decoded successfully, over every
	// executed transfer (completed and failed alike).
	fidelity := 0.0
	if codesAccepted > 0 {
		fidelity = float64(codesSuccess) / float64(codesAccepted)
	}
	sort.Float64s(wall)
	sort.Float64s(clientNs)
	slog.Info("surfload: run finished", "elapsed", elapsed.Round(time.Millisecond),
		"completed", counts["completed"], "failed", counts["failed"],
		"shed", counts["shed"], "refused", counts["refused"],
		"timeout", counts["timeout"], "error", counts["error"],
		"retries", totalRetries)
	if counts["error"] > 0 || counts["timeout"] > 0 {
		slog.Error("surfload: transfers errored or timed out — daemon dropped load")
		return 1
	}
	if len(wall) == 0 {
		slog.Error("surfload: no transfer completed")
		return 1
	}

	mean := 0.0
	for _, v := range wall {
		mean += v
	}
	mean /= float64(len(wall))
	rep := report{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Benchmarks: []benchmark{{
			// Admission-to-completion wall latency as measured by the daemon
			// itself; the client-observed round trip rides along as extras.
			Name:       "ServiceTransferWall",
			Procs:      runtime.GOMAXPROCS(0),
			Iterations: counts["completed"],
			NsPerOp:    mean,
			Extra: map[string]float64{
				"p50-ns/op":        quantile(wall, 0.50),
				"p90-ns/op":        quantile(wall, 0.90),
				"p99-ns/op":        quantile(wall, 0.99),
				"client-p50-ns/op": quantile(clientNs, 0.50),
				"client-p99-ns/op": quantile(clientNs, 0.99),
				"shed/op":          float64(counts["shed"]),
				"failed/op":        float64(counts["failed"]),
				"retries/op":       float64(totalRetries),
				"fidelity/op":      fidelity,
			},
		}},
	}
	for class, c := range classes {
		rep.Benchmarks[0].Extra["failed-"+class+"/op"] = float64(c)
	}
	if *traceN > 0 {
		// Segment attribution over the slowest completions: where their
		// admission-to-completion time actually went, per the daemon's own
		// flight recorder. Extras are mean ns per sampled transfer.
		segNs, fetched := sampleSlowTraces(client, base, results, *traceN)
		rep.Benchmarks[0].Extra["traces-sampled/op"] = float64(fetched)
		if fetched > 0 {
			var parts []string
			classes := make([]string, 0, len(segNs))
			for class := range segNs {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, class := range classes {
				mean := segNs[class] / float64(fetched)
				rep.Benchmarks[0].Extra["seg-"+class+"-ns/op"] = mean
				parts = append(parts, fmt.Sprintf("%s %.3fms", class, mean/1e6))
			}
			fmt.Printf("slowest-%d attribution  %s\n", fetched, strings.Join(parts, "  "))
		} else {
			slog.Warn("surfload: -sample-traces requested but no traces fetched (flight recording disabled?)")
		}
	}
	fmt.Printf("transfers %d completed %d shed %d failed %d retries %d fidelity %.3f\n",
		len(plan), counts["completed"], counts["shed"], counts["failed"], totalRetries, fidelity)
	fmt.Printf("wall  p50 %.3fms  p90 %.3fms  p99 %.3fms  mean %.3fms\n",
		quantile(wall, 0.50)/1e6, quantile(wall, 0.90)/1e6, quantile(wall, 0.99)/1e6, mean/1e6)
	fmt.Printf("client p50 %.3fms  p99 %.3fms\n",
		quantile(clientNs, 0.50)/1e6, quantile(clientNs, 0.99)/1e6)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			slog.Error("surfload: creating output", "err", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			slog.Error("surfload: writing output", "err", err)
			return 1
		}
		if err := f.Close(); err != nil {
			slog.Error("surfload: closing output", "err", err)
			return 1
		}
		slog.Info("surfload: wrote report", "out", *out)
	}
	return 0
}
