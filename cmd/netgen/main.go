// Command netgen generates one random network scenario and prints its
// topology: node roles and capacities, fibers with fidelities and channel
// parameters. Useful for inspecting what the experiments actually schedule
// over.
//
// Usage:
//
//	netgen [-scenario abundant|sufficient|insufficient] [-connection good|poor] [-nodes N] [-seed S]
//	       [-listen ADDR] [-log-level LEVEL] [-metrics-out FILE] [-trace-out FILE]
//	       [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"surfnet"
	"surfnet/internal/cliutil"
)

func main() {
	os.Exit(run())
}

func run() (exit int) {
	scenario := flag.String("scenario", "sufficient", "facility scenario: abundant, sufficient, insufficient")
	connection := flag.String("connection", "good", "fiber quality: good ([0.75,1]) or poor ([0.5,1])")
	nodes := flag.Int("nodes", 24, "node count (paper: over 20)")
	seed := flag.Uint64("seed", 1, "random seed")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("netgen: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	var fac surfnet.Facilities
	switch *scenario {
	case "abundant":
		fac = surfnet.Abundant
	case "sufficient":
		fac = surfnet.Sufficient
	case "insufficient":
		fac = surfnet.Insufficient
	default:
		slog.Error("netgen: unknown scenario", "scenario", *scenario)
		return 1
	}
	var fr surfnet.FidelityRange
	switch *connection {
	case "good":
		fr = surfnet.GoodConnection
	case "poor":
		fr = surfnet.PoorConnection
	default:
		slog.Error("netgen: unknown connection", "connection", *connection)
		return 1
	}
	params := surfnet.DefaultTopology(fac, fr)
	params.Nodes = *nodes
	net, err := surfnet.GenerateNetwork(params, surfnet.NewRand(*seed))
	if err != nil {
		slog.Error("netgen: generating network failed", "err", err)
		return 1
	}

	fmt.Printf("scenario=%s connection=%s nodes=%d fibers=%d seed=%d\n\n",
		*scenario, *connection, net.NumNodes(), net.NumFibers(), *seed)
	fmt.Printf("%-5s %-8s %-9s %s\n", "node", "role", "capacity", "degree")
	for i := 0; i < net.NumNodes(); i++ {
		n := net.Node(i)
		fmt.Printf("%-5d %-8s %-9d %d\n", n.ID, n.Role, n.Capacity, len(net.Incident(i)))
	}
	fmt.Printf("\n%-6s %-9s %-9s %-9s %-9s %s\n", "fiber", "ends", "fidelity", "pairs", "entRate", "lossProb")
	for i := 0; i < net.NumFibers(); i++ {
		f := net.Fiber(i)
		fmt.Printf("%-6d %2d-%-6d %-9.3f %-9d %-9.2f %.2f\n",
			f.ID, f.A, f.B, f.Fidelity, f.EntPairs, f.EntRate, f.LossProb)
	}
	return 0
}
