// Command decoderbench regenerates Fig. 8 of the paper: the Pauli error
// threshold of surface codes under the Union-Find decoder and the SurfNet
// Decoder, with a fixed erasure rate and error rates halved on the Core part.
// It always reports per-decoder wall-time quantiles collected from the
// telemetry histograms.
//
// Usage:
//
//	decoderbench [-trials N] [-distances 9,11,13,15] [-rates 0.05,0.06] [-erasure 0.15]
//	             [-seed S] [-mwpm] [-batch] [-workers N] [-listen ADDR] [-log-level LEVEL]
//	             [-metrics-out FILE] [-trace-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -workers sizes the deterministic trial pool (default GOMAXPROCS); results
// are identical for every value. -batch switches to the bit-packed 64-lane
// engine (internal/batch): ≥5× per-trial throughput in erasure-dominated
// regimes (≈1.3× at the paper's mixed operating point, where most lanes fall
// back to the scalar decoder), rates statistically equivalent to (but not
// bitwise reproducing) the scalar sweep, UnionFind and default SurfNet
// decoders only.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"surfnet"
	"surfnet/internal/cliutil"
)

func main() {
	os.Exit(run())
}

func run() (exit int) {
	trials := flag.Int("trials", 300, "Monte-Carlo trials per (decoder, distance, rate) point")
	distances := flag.String("distances", "9,11,13,15", "comma-separated code distances")
	rates := flag.String("rates", "", "comma-separated Pauli rates (default: the paper's 0.050-0.085 sweep)")
	erasure := flag.Float64("erasure", 0.15, "fixed erasure rate (paper: 15%)")
	seed := flag.Uint64("seed", 1, "root random seed")
	mwpm := flag.Bool("mwpm", false, "additionally evaluate the modified MWPM decoder (Algorithm 1)")
	batchMode := flag.Bool("batch", false, "decode 64 trials per machine word on the packed engine (UnionFind and default SurfNet only; incompatible with -mwpm)")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("decoderbench: startup failed", "err", err)
		return 1
	}
	// The latency report below always needs a registry, -metrics-out or not.
	obs.ForceMetrics()
	defer cliutil.ExitOnFinishError(&obs, &exit)

	cfg := surfnet.DefaultFig8()
	cfg.Context = obs.Context()
	cfg.Trials = *trials
	cfg.ErasureRate = *erasure
	cfg.Seed = *seed
	cfg.Workers = obs.Workers
	cfg.Metrics = obs.Registry
	cfg.Progress = obs.Progress
	var ds []int
	for _, part := range strings.Split(*distances, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			slog.Error("decoderbench: bad -distances entry", "entry", part, "err", err)
			return 1
		}
		ds = append(ds, d)
	}
	cfg.Distances = ds
	if *rates != "" {
		var ps []float64
		for _, part := range strings.Split(*rates, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				slog.Error("decoderbench: bad -rates entry", "entry", part, "err", err)
				return 1
			}
			ps = append(ps, p)
		}
		cfg.PauliRates = ps
	}
	if *mwpm {
		if *batchMode {
			slog.Error("decoderbench: -mwpm is incompatible with -batch (the packed engine supports UnionFind and default SurfNet only)")
			return 1
		}
		cfg.Decoders = append(cfg.Decoders, surfnet.NewMWPMDecoder())
	}
	cfg.Batch = *batchMode

	slog.Info("running threshold study", "trials", cfg.Trials, "distances", *distances, "workers", cfg.Workers, "batch", cfg.Batch)
	points, err := surfnet.Fig8(cfg)
	if err != nil {
		slog.Error("decoderbench: study failed", "err", err)
		return 1
	}
	fmt.Printf("Fig 8: logical error rate vs Pauli rate (erasure %.0f%%, Core rates halved, %d trials/point)\n",
		*erasure*100, *trials)
	fmt.Print(surfnet.FormatFig8(points))
	fmt.Println()
	printLatencies(obs.Registry.Snapshot())
	return 0
}

// printLatencies renders the per-decoder decode-time quantiles recorded under
// decoder.<name>.decode_seconds during the study.
func printLatencies(snap surfnet.MetricsSnapshot) {
	const prefix, suffix = "decoder.", ".decode_seconds"
	var names []string
	for name := range snap.Histograms {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("decode wall time per invocation:")
	fmt.Printf("%-14s %10s %12s %12s %12s %12s\n", "decoder", "decodes", "mean", "p50", "p99", "max")
	for _, name := range names {
		h := snap.Histograms[name]
		dec := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Printf("%-14s %10d %12s %12s %12s %12s\n",
			dec, h.Count, fmtSeconds(mean), fmtSeconds(h.P50), fmtSeconds(h.P99), fmtSeconds(h.Max))
	}
}

// fmtSeconds picks a readable unit for sub-second durations.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.2fµs", s*1e6)
	default:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
}
