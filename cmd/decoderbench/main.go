// Command decoderbench regenerates Fig. 8 of the paper: the Pauli error
// threshold of surface codes under the Union-Find decoder and the SurfNet
// Decoder, with a fixed erasure rate and error rates halved on the Core part.
//
// Usage:
//
//	decoderbench [-trials N] [-distances 9,11,13,15] [-erasure 0.15] [-seed S] [-mwpm]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"surfnet"
)

func main() {
	os.Exit(run())
}

func run() int {
	trials := flag.Int("trials", 300, "Monte-Carlo trials per (decoder, distance, rate) point")
	distances := flag.String("distances", "9,11,13,15", "comma-separated code distances")
	erasure := flag.Float64("erasure", 0.15, "fixed erasure rate (paper: 15%)")
	seed := flag.Uint64("seed", 1, "root random seed")
	mwpm := flag.Bool("mwpm", false, "additionally evaluate the modified MWPM decoder (Algorithm 1)")
	flag.Parse()

	cfg := surfnet.DefaultFig8()
	cfg.Trials = *trials
	cfg.ErasureRate = *erasure
	cfg.Seed = *seed
	var ds []int
	for _, part := range strings.Split(*distances, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "decoderbench: bad distance %q: %v\n", part, err)
			return 1
		}
		ds = append(ds, d)
	}
	cfg.Distances = ds
	if *mwpm {
		cfg.Decoders = append(cfg.Decoders, surfnet.NewMWPMDecoder())
	}

	points, err := surfnet.Fig8(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decoderbench: %v\n", err)
		return 1
	}
	fmt.Printf("Fig 8: logical error rate vs Pauli rate (erasure %.0f%%, Core rates halved, %d trials/point)\n",
		*erasure*100, *trials)
	fmt.Print(surfnet.FormatFig8(points))
	return 0
}
