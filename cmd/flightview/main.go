// Command flightview renders per-transfer flight recordings — the request-
// scoped timelines surfnetd serves at GET /v1/transfers/{id}/trace and
// bundles (with status, metrics, and fault state) at GET /debug/bundle —
// into a timeline and latency-attribution report: where each transfer's
// admission-to-terminal wall time went (queue_wait, plan, execute,
// retry_backoff, fault_stall), event by event.
//
// The input shape is sniffed: a /debug/bundle document (object with a
// "flights" array) renders every retained flight plus a cross-flight
// attribution rollup; a single trace document (object with an "events"
// array) renders just that flight.
//
// Usage:
//
//	curl -s localhost:8080/debug/bundle | flightview          # incident view
//	curl -s localhost:8080/v1/transfers/t-3/trace > tr.json
//	flightview tr.json                                        # one flight
//	flightview -json bundle.json                              # re-emit parsed
//	flightview -top 3 bundle.json                             # cap flights shown
//
// With no file argument the document is read from stdin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// traceEvent, segment, and flightTrace mirror the daemon's wire types.
type traceEvent struct {
	Seq    uint64           `json:"seq"`
	Kind   string           `json:"kind"`
	Tick   int64            `json:"tick"`
	WallNs int64            `json:"wall_ns"`
	Note   string           `json:"note,omitempty"`
	Detail map[string]int64 `json:"detail,omitempty"`
}

type segment struct {
	Class   string  `json:"class"`
	Ticks   int64   `json:"ticks"`
	WallNs  int64   `json:"wall_ns"`
	Seconds float64 `json:"seconds"`
}

type flightTrace struct {
	ID            string       `json:"id"`
	Tenant        string       `json:"tenant,omitempty"`
	State         string       `json:"state"`
	FailureClass  string       `json:"failure_class,omitempty"`
	Epoch         int64        `json:"epoch,omitempty"`
	Retries       int          `json:"retries,omitempty"`
	Events        []traceEvent `json:"events"`
	DroppedEvents int          `json:"dropped_events,omitempty"`
	Segments      []segment    `json:"segments"`
	TotalTicks    int64        `json:"total_ticks"`
	TotalWallNs   int64        `json:"total_wall_ns"`
	TotalSeconds  float64      `json:"total_seconds"`
}

// document is the sniffed input: a bundle's flights or one bare trace.
type document struct {
	Flights []flightTrace `json:"flights"`
	// Bare-trace fields; ID+Events present means the input was one trace.
	flightTrace
}

// parse sniffs and decodes the input document.
func parse(r io.Reader) (document, error) {
	var doc document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return document{}, fmt.Errorf("parsing input: %w", err)
	}
	if doc.Flights == nil {
		if doc.ID == "" && len(doc.Events) == 0 {
			return document{}, fmt.Errorf("input is neither a /debug/bundle (no \"flights\") nor a transfer trace (no \"events\")")
		}
		doc.Flights = []flightTrace{doc.flightTrace}
	}
	return doc, nil
}

// ms renders nanoseconds as milliseconds.
func ms(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

// renderFlight prints one flight's timeline and attribution.
func renderFlight(w io.Writer, tr flightTrace) {
	head := fmt.Sprintf("flight %s  state=%s", tr.ID, tr.State)
	if tr.FailureClass != "" {
		head += "  class=" + tr.FailureClass
	}
	if tr.Tenant != "" {
		head += "  tenant=" + tr.Tenant
	}
	head += fmt.Sprintf("  retries=%d  total=%s (%d ticks)", tr.Retries, ms(tr.TotalWallNs), tr.TotalTicks)
	if tr.DroppedEvents > 0 {
		head += fmt.Sprintf("  dropped=%d", tr.DroppedEvents)
	}
	fmt.Fprintln(w, head)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  seq\tt+wall\ttick\tevent\tdetail")
	// Timestamps render relative to the flight's first event; the last
	// event's stamp minus the total recovers that origin even when the ring
	// has dropped the first events.
	base := int64(0)
	if n := len(tr.Events); n > 0 {
		base = tr.Events[n-1].WallNs - tr.TotalWallNs
	}
	for _, ev := range tr.Events {
		detail := ev.Note
		if len(ev.Detail) > 0 {
			keys := make([]string, 0, len(ev.Detail))
			for k := range ev.Detail {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys)+1)
			if detail != "" {
				parts = append(parts, detail)
			}
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%d", k, ev.Detail[k]))
			}
			detail = strings.Join(parts, " ")
		}
		fmt.Fprintf(tw, "  %d\t%s\t%d\t%s\t%s\n", ev.Seq, ms(ev.WallNs-base), ev.Tick, ev.Kind, detail)
	}
	tw.Flush()

	if len(tr.Segments) > 0 {
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  attribution\twall\tshare\tticks")
		for _, seg := range tr.Segments {
			share := 0.0
			if tr.TotalWallNs > 0 {
				share = 100 * float64(seg.WallNs) / float64(tr.TotalWallNs)
			}
			fmt.Fprintf(tw, "  %s\t%s\t%.1f%%\t%d\n", seg.Class, ms(seg.WallNs), share, seg.Ticks)
		}
		tw.Flush()
	}
}

// renderRollup prints the cross-flight attribution totals of a bundle.
func renderRollup(w io.Writer, flights []flightTrace) {
	segNs := map[string]int64{}
	var totalNs int64
	for _, tr := range flights {
		totalNs += tr.TotalWallNs
		for _, seg := range tr.Segments {
			segNs[seg.Class] += seg.WallNs
		}
	}
	classes := make([]string, 0, len(segNs))
	for class := range segNs {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return segNs[classes[i]] > segNs[classes[j]] })
	fmt.Fprintf(w, "attribution rollup over %d flights  total=%s\n", len(flights), ms(totalNs))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  class\twall\tshare")
	for _, class := range classes {
		share := 0.0
		if totalNs > 0 {
			share = 100 * float64(segNs[class]) / float64(totalNs)
		}
		fmt.Fprintf(tw, "  %s\t%s\t%.1f%%\n", class, ms(segNs[class]), share)
	}
	tw.Flush()
}

func run() int {
	asJSON := flag.Bool("json", false, "emit the parsed flights as JSON instead of tables")
	top := flag.Int("top", 0, "show only the N slowest flights (0: all)")
	id := flag.String("id", "", "show only the flight with this transfer ID")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "flightview: at most one input file")
		return 2
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "flightview:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	doc, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flightview:", err)
		return 1
	}
	flights := doc.Flights
	if *id != "" {
		kept := flights[:0]
		for _, tr := range flights {
			if tr.ID == *id {
				kept = append(kept, tr)
			}
		}
		flights = kept
		if len(flights) == 0 {
			fmt.Fprintf(os.Stderr, "flightview: no flight %q in input\n", *id)
			return 1
		}
	}
	// Slowest first: the incident view leads with the worst transfer.
	sort.SliceStable(flights, func(i, j int) bool { return flights[i].TotalWallNs > flights[j].TotalWallNs })
	if *top > 0 && len(flights) > *top {
		flights = flights[:*top]
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(flights); err != nil {
			fmt.Fprintln(os.Stderr, "flightview:", err)
			return 1
		}
		return 0
	}
	for i, tr := range flights {
		if i > 0 {
			fmt.Println()
		}
		renderFlight(os.Stdout, tr)
	}
	if len(flights) > 1 {
		fmt.Println()
		renderRollup(os.Stdout, flights)
	}
	return 0
}

func main() {
	os.Exit(run())
}
