package main

import (
	"strings"
	"testing"
)

const sampleTrace = `{
  "id": "t-1",
  "state": "completed",
  "retries": 1,
  "events": [
    {"seq": 0, "kind": "admitted", "tick": 0, "wall_ns": 1000},
    {"seq": 1, "kind": "queue_enter", "tick": 0, "wall_ns": 2000, "detail": {"queue_depth": 1}},
    {"seq": 2, "kind": "queue_exit", "tick": 0, "wall_ns": 5000, "detail": {"queue_depth": 0}},
    {"seq": 3, "kind": "planned", "tick": 0, "wall_ns": 8000, "note": "warm", "detail": {"batch": 1}},
    {"seq": 4, "kind": "terminal", "tick": 1, "wall_ns": 11000, "note": "completed"}
  ],
  "segments": [
    {"class": "queue_wait", "ticks": 0, "wall_ns": 4000, "seconds": 4e-6},
    {"class": "plan", "ticks": 0, "wall_ns": 3000, "seconds": 3e-6},
    {"class": "execute", "ticks": 1, "wall_ns": 3000, "seconds": 3e-6}
  ],
  "total_ticks": 1,
  "total_wall_ns": 10000,
  "total_seconds": 1e-5
}`

func TestParseSniffsTraceAndBundle(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatalf("parse trace: %v", err)
	}
	if len(doc.Flights) != 1 || doc.Flights[0].ID != "t-1" {
		t.Fatalf("trace parsed to %+v", doc.Flights)
	}

	bundle := `{"status": {}, "metrics": {}, "faults": {}, "flights": [` + sampleTrace + `, ` + sampleTrace + `]}`
	doc, err = parse(strings.NewReader(bundle))
	if err != nil {
		t.Fatalf("parse bundle: %v", err)
	}
	if len(doc.Flights) != 2 {
		t.Fatalf("bundle parsed to %d flights, want 2", len(doc.Flights))
	}

	if _, err := parse(strings.NewReader(`{"status": {}}`)); err == nil {
		t.Fatal("document with neither flights nor events must be an error")
	}
	if _, err := parse(strings.NewReader(`not json`)); err == nil {
		t.Fatal("malformed input must be an error")
	}
}

func TestRenderFlightTimelineAndAttribution(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	renderFlight(&sb, doc.Flights[0])
	out := sb.String()
	for _, want := range []string{
		"flight t-1", "state=completed", "retries=1",
		"admitted", "queue_enter", "planned", "terminal",
		"warm", "queue_depth=1",
		"attribution", "queue_wait", "plan", "execute", "40.0%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered flight missing %q:\n%s", want, out)
		}
	}
	// The timeline renders relative to the flight's first event: the
	// terminal event lands at exactly the total wall time.
	if !strings.Contains(out, "0.010ms") {
		t.Fatalf("terminal event not at t+total:\n%s", out)
	}
}

func TestRenderRollupSumsFlights(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	renderRollup(&sb, []flightTrace{doc.Flights[0], doc.Flights[0]})
	out := sb.String()
	if !strings.Contains(out, "2 flights") || !strings.Contains(out, "0.020ms") {
		t.Fatalf("rollup wrong:\n%s", out)
	}
	if !strings.Contains(out, "queue_wait") || !strings.Contains(out, "0.008ms") {
		t.Fatalf("rollup missing summed queue_wait:\n%s", out)
	}
}
