package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkSurfNetDecoder/d=9-8   \t  1215\t    987654 ns/op\t  120 B/op\t   3 allocs/op", "surfnet")
	if !ok {
		t.Fatal("benchmem line not parsed")
	}
	if b.Name != "BenchmarkSurfNetDecoder/d=9" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 1215 || b.NsPerOp != 987654 || b.BytesPerOp != 120 || b.AllocsPerOp != 3 {
		t.Fatalf("values = %+v", b)
	}
	if b.Package != "surfnet" {
		t.Fatalf("package = %q", b.Package)
	}

	b, ok = parseLine("BenchmarkRunOverhead 	 500	   2000.5 ns/op", "")
	if !ok || b.NsPerOp != 2000.5 || b.Procs != 1 {
		t.Fatalf("plain line = %+v ok=%v", b, ok)
	}
	if b.Extra != nil {
		t.Fatalf("plain line grew extra metrics: %+v", b.Extra)
	}

	// Custom b.ReportMetric units land in Extra; units that are neither
	// per-op nor per-trial are dropped.
	b, ok = parseLine("BenchmarkDecodeWallLatency-8 	 100	 13000 ns/op	 13100 p50-ns/op	 19000 p99-ns/op	 42 widgets", "")
	if !ok {
		t.Fatal("extra-metric line not parsed")
	}
	if b.Extra["p50-ns/op"] != 13100 || b.Extra["p99-ns/op"] != 19000 {
		t.Fatalf("extra metrics = %+v", b.Extra)
	}
	if _, ok := b.Extra["widgets"]; ok {
		t.Fatalf("non-/op unit captured: %+v", b.Extra)
	}

	// The packed 64-lane benchmarks report per-trial throughput.
	b, ok = parseLine("BenchmarkBatchDecode/erasure/d=9/packed 	 500	 250000 ns/op	 3900 ns/trial	 113 B/op	 3 allocs/op", "surfnet")
	if !ok {
		t.Fatal("ns/trial line not parsed")
	}
	if b.Extra["ns/trial"] != 3900 {
		t.Fatalf("ns/trial not captured: %+v", b.Extra)
	}

	for _, line := range []string{
		"PASS",
		"ok  	surfnet	1.2s",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken notanumber ns/op",
	} {
		if _, ok := parseLine(line, ""); ok {
			t.Errorf("non-result line parsed: %q", line)
		}
	}
}

func TestParseNameWithoutProcsSuffix(t *testing.T) {
	name, procs := parseName("BenchmarkMWPMDecoder/d=13")
	if name != "BenchmarkMWPMDecoder/d=13" || procs != 1 {
		t.Fatalf("got %q/%d", name, procs)
	}
	name, procs = parseName("BenchmarkDecodeFrameAllocs-16")
	if name != "BenchmarkDecodeFrameAllocs" || procs != 16 {
		t.Fatalf("got %q/%d", name, procs)
	}
}
