// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON trajectory file, so benchmark results can be diffed
// across commits and plotted over time. Input lines pass through to stderr,
// keeping the interactive view intact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH.json
//
// Each benchmark line becomes one record with iterations, ns/op, and (with
// -benchmem) B/op and allocs/op; goos/goarch/pkg/cpu metadata lines are
// captured into the header.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Extra collects every
// non-standard value/unit pair the benchmark reported via b.ReportMetric —
// the wall-latency percentile families (p50-ns/op, p99-ns/op, p999-ns/op)
// and the packed engine's per-trial throughput (ns/trial) land here —
// keyed by unit.
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseName splits "BenchmarkFoo/sub-8" into the bare name and the
// trailing GOMAXPROCS suffix (1 when absent).
func parseName(field string) (string, int) {
	if i := strings.LastIndex(field, "-"); i > 0 {
		if procs, err := strconv.Atoi(field[i+1:]); err == nil && procs > 0 {
			return field[:i], procs
		}
	}
	return field, 1
}

// parseLine parses one benchmark result line; ok is false for any other
// line (metadata, PASS, test log output).
func parseLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Iterations: iters, Package: pkg}
	b.Name, b.Procs = parseName(fields[0])
	// The remaining fields come in value/unit pairs: 1234 ns/op 56 B/op ...
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "MB/s":
			// throughput is derivable from ns/op; skip to keep records lean
		default:
			// custom b.ReportMetric units: per-op extras (e.g. p99-ns/op)
			// and per-trial extras from the packed 64-lane benchmarks
			// (ns/trial), where one op covers a whole 64-trial batch.
			if strings.HasSuffix(unit, "/op") || strings.HasSuffix(unit, "/trial") {
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	var report Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // tee: keep the interactive view
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if b, ok := parseLine(line, pkg); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		slog.Error("benchjson: reading stdin", "err", err)
		return 1
	}
	if len(report.Benchmarks) == 0 {
		slog.Error("benchjson: no benchmark lines on stdin")
		return 1
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			slog.Error("benchjson: creating output", "err", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		slog.Error("benchjson: writing output", "err", err)
		return 1
	}
	slog.Info("benchjson: wrote report", "benchmarks", len(report.Benchmarks), "out", *out)
	return 0
}
