// Command surfnetd is the resident SurfNet control-plane daemon: it owns one
// generated network's state for its whole lifetime and serves transfer
// admission over HTTP/JSON while re-using the batch pipeline underneath —
// transfers are admitted into epoch batches, each epoch is planned by the
// warm-started LP planner over current state and executed on the re-entrant
// parallel engine. The batch CLIs (surfnetsim, faultsim, ...) remain the
// figure-reproduction path; surfnetd is the service path over the same
// engine.
//
// API (on the -listen address, shared with the ops surface):
//
//	POST /v1/transfers             admit a transfer (202; 429 shed +
//	                               Retry-After; 503 draining; 400 invalid)
//	GET  /v1/transfers/{id}        transfer status
//	GET  /v1/transfers/{id}/trace  flight timeline + latency attribution
//	GET  /v1/network               the owned network snapshot
//	GET  /v1/faults                live fault-plane snapshot
//	POST /v1/faults                swap the live fault scenario (400 on invalid)
//	GET  /debug/bundle             one-shot incident snapshot
//	GET  /metrics /healthz /readyz /status /debug/pprof/   ops plane
//
// Lifecycle: /readyz stays 503 until the daemon owns network state and the
// API routes are mounted; SIGINT/SIGTERM flips /readyz back to 503 and drains
// — every admitted transfer completes its epoch before the process exits.
//
// The live fault plane is armed with -faults (the resilience sweep's unit
// scenario scaled by the given intensity) and/or -fault-script (an exact
// outage timetable in SLOT:fiber|node:ID:DURATION,... form, stepped on the
// -fault-tick cadence). Accumulated outage events past -fault-replan-threshold
// invalidate the planner's warm basis and force an early re-plan; -plan-budget
// arms the degraded-mode circuit breaker (greedy routing while open).
//
// Usage:
//
//	surfnetd -listen :8080 [-facilities abundant|sufficient|insufficient]
//	         [-fidelity good|poor] [-net-seed S] [-seed S]
//	         [-queue-limit N] [-epoch-max N] [-fiber-fail-prob P]
//	         [-faults X] [-fault-script SCRIPT] [-fault-tick D]
//	         [-fault-replan-threshold N] [-plan-budget D] [-breaker-cooldown N]
//	         [-workers N] [-log-level LEVEL] [-metrics-out FILE] ...
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"surfnet"
	"surfnet/internal/cliutil"
	"surfnet/internal/core"
	"surfnet/internal/decoder"
	"surfnet/internal/experiments"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/service"
	"surfnet/internal/topology"
)

func main() {
	os.Exit(run())
}

// parseFacilities maps the -facilities flag onto a scenario.
func parseFacilities(s string) (topology.Facilities, error) {
	switch strings.ToLower(s) {
	case "abundant", "":
		return topology.Abundant, nil
	case "sufficient":
		return topology.Sufficient, nil
	case "insufficient":
		return topology.Insufficient, nil
	}
	return topology.Facilities{}, fmt.Errorf("unknown facilities %q (want abundant, sufficient, or insufficient)", s)
}

// parseFidelity maps the -fidelity flag onto a connection-quality range.
func parseFidelity(s string) (topology.FidelityRange, error) {
	switch strings.ToLower(s) {
	case "good", "":
		return topology.GoodConnection, nil
	case "poor":
		return topology.PoorConnection, nil
	}
	return topology.FidelityRange{}, fmt.Errorf("unknown fidelity %q (want good or poor)", s)
}

func run() (exit int) {
	facilitiesArg := flag.String("facilities", "abundant", "facility scenario the daemon owns: abundant, sufficient, or insufficient")
	fidelityArg := flag.String("fidelity", "good", "fiber fidelity range: good or poor")
	netSeed := flag.Uint64("net-seed", 1, "topology generation seed")
	seed := flag.Uint64("seed", 1, "service epoch seed (per-epoch rng streams derive from it)")
	queueLimit := flag.Int("queue-limit", 0, "admission queue bound; arrivals beyond it are shed with 429 (0: default 256)")
	epochMax := flag.Int("epoch-max", 0, "max transfers batched into one planning epoch (0: default 32)")
	fiberFailProb := flag.Float64("fiber-fail-prob", 0, "per-slot fiber crash probability during execution")
	faultIntensity := flag.Float64("faults", 0, "arm the live fault plane with the resilience scenario at this intensity (0: off)")
	faultScript := flag.String("fault-script", "", "scripted outage timetable for the live fault plane: SLOT:fiber|node:ID:DURATION,...")
	faultTick := flag.Duration("fault-tick", 0, "fault-plane step period (0: default 250ms)")
	faultReplanThreshold := flag.Int("fault-replan-threshold", 0, "outage events before a forced re-plan (0: default 4, negative: never)")
	planBudget := flag.Duration("plan-budget", 0, "LP plan wall-clock budget; exceeding it trips the greedy circuit breaker (0: no budget)")
	breakerCooldown := flag.Int("breaker-cooldown", 0, "epochs the circuit breaker stays open (0: default 4)")
	flightEvents := flag.Int("flight-events", 0, "per-transfer flight-recorder event ring size (0: default 64, negative: disable flight recording)")
	flightRetain := flag.Int("flight-retain", 0, "terminal flights retained for /debug/bundle (0: default 32)")
	var obs cliutil.Observability
	obs.DeferReady = true // not ready until the engine owns state and routes are up
	obs.Register(flag.CommandLine)
	flag.Parse()

	if obs.Listen == "" {
		fmt.Fprintln(os.Stderr, "surfnetd: -listen is required (the daemon is its HTTP API)")
		return 2
	}
	if err := obs.Start(); err != nil {
		slog.Error("surfnetd: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	fac, err := parseFacilities(*facilitiesArg)
	if err != nil {
		slog.Error("surfnetd: bad -facilities", "err", err)
		return 1
	}
	fr, err := parseFidelity(*fidelityArg)
	if err != nil {
		slog.Error("surfnetd: bad -fidelity", "err", err)
		return 1
	}

	net, err := topology.Generate(topology.DefaultParams(fac, fr), rng.New(*netSeed))
	if err != nil {
		slog.Error("surfnetd: generating topology", "err", err)
		return 1
	}
	cfg := core.DefaultConfig()
	cfg.Decoder = decoder.SurfNet{}
	cfg.FiberFailProb = *fiberFailProb
	eng, err := core.NewEngine(net, cfg)
	if err != nil {
		slog.Error("surfnetd: building engine", "err", err)
		return 1
	}
	pl := routing.NewPlanner(routing.DefaultParams(routing.SurfNet))

	// Assemble the live fault plane scenario: the resilience unit profile
	// scaled by -faults, with the -fault-script timetable on top. It is
	// validated against the generated network inside service.New — a script
	// targeting a fiber the topology does not have is a startup error.
	var profile *surfnet.FaultProfile
	if *faultIntensity > 0 || strings.TrimSpace(*faultScript) != "" {
		p := experiments.ResilienceProfile(*faultIntensity)
		script, err := surfnet.ParseFaultScript(*faultScript)
		if err != nil {
			slog.Error("surfnetd: bad -fault-script", "err", err)
			return 1
		}
		p.Script = script
		profile = &p
	}

	srv := obs.ObsServer()
	svc, err := service.New(eng, pl, service.Config{
		QueueLimit:           *queueLimit,
		EpochMax:             *epochMax,
		Workers:              obs.Workers,
		Seed:                 *seed,
		Metrics:              obs.Registry,
		Tracer:               obs.TracerOrNil(),
		DrainHook:            func() { srv.SetReady(false) },
		Faults:               profile,
		FaultTick:            *faultTick,
		FaultReplanThreshold: *faultReplanThreshold,
		PlanBudget:           *planBudget,
		BreakerCooldown:      *breakerCooldown,
		FlightEvents:         *flightEvents,
		FlightRetain:         *flightRetain,
	})
	if err != nil {
		slog.Error("surfnetd: building service", "err", err)
		return 1
	}
	svc.RegisterRoutes(srv.Handle)
	srv.SetServiceStatus(func() any { return svc.Status() })
	// The engine owns state and the API is mounted: now — and only now —
	// report ready.
	srv.SetReady(true)
	slog.Info("surfnetd: serving",
		"facilities", fac.Name, "nodes", net.NumNodes(), "fibers", net.NumFibers(),
		"queue_limit", *queueLimit, "epoch_max", *epochMax,
		"faults", *faultIntensity, "fault_script", *faultScript != "")

	if err := svc.Run(obs.Context()); err != nil {
		slog.Error("surfnetd: service loop failed", "err", err)
		return 1
	}
	st := svc.Status()
	slog.Info("surfnetd: drained",
		"admitted", st.Admitted, "completed", st.Completed,
		"failed", st.Failed, "shed", st.Shed, "epochs", st.Epochs,
		"retries", st.Retries, "degraded_epochs", st.DegradedEpochs,
		"replans_fault_triggered", st.ReplansFaultTriggered)
	return 0
}
