// Command surfnetd is the resident SurfNet control-plane daemon: it owns one
// generated network's state for its whole lifetime and serves transfer
// admission over HTTP/JSON while re-using the batch pipeline underneath —
// transfers are admitted into epoch batches, each epoch is planned by the
// warm-started LP planner over current state and executed on the re-entrant
// parallel engine. The batch CLIs (surfnetsim, faultsim, ...) remain the
// figure-reproduction path; surfnetd is the service path over the same
// engine.
//
// API (on the -listen address, shared with the ops surface):
//
//	POST /v1/transfers       admit a transfer (202; 429 shed + Retry-After;
//	                         503 draining; 400 invalid)
//	GET  /v1/transfers/{id}  transfer status
//	GET  /v1/network         the owned network snapshot
//	GET  /metrics /healthz /readyz /status /debug/pprof/   ops plane
//
// Lifecycle: /readyz stays 503 until the daemon owns network state and the
// API routes are mounted; SIGINT/SIGTERM flips /readyz back to 503 and drains
// — every admitted transfer completes its epoch before the process exits.
//
// Usage:
//
//	surfnetd -listen :8080 [-facilities abundant|sufficient|insufficient]
//	         [-fidelity good|poor] [-net-seed S] [-seed S]
//	         [-queue-limit N] [-epoch-max N] [-fiber-fail-prob P]
//	         [-workers N] [-log-level LEVEL] [-metrics-out FILE] ...
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"surfnet/internal/cliutil"
	"surfnet/internal/core"
	"surfnet/internal/decoder"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/service"
	"surfnet/internal/topology"
)

func main() {
	os.Exit(run())
}

// parseFacilities maps the -facilities flag onto a scenario.
func parseFacilities(s string) (topology.Facilities, error) {
	switch strings.ToLower(s) {
	case "abundant", "":
		return topology.Abundant, nil
	case "sufficient":
		return topology.Sufficient, nil
	case "insufficient":
		return topology.Insufficient, nil
	}
	return topology.Facilities{}, fmt.Errorf("unknown facilities %q (want abundant, sufficient, or insufficient)", s)
}

// parseFidelity maps the -fidelity flag onto a connection-quality range.
func parseFidelity(s string) (topology.FidelityRange, error) {
	switch strings.ToLower(s) {
	case "good", "":
		return topology.GoodConnection, nil
	case "poor":
		return topology.PoorConnection, nil
	}
	return topology.FidelityRange{}, fmt.Errorf("unknown fidelity %q (want good or poor)", s)
}

func run() (exit int) {
	facilitiesArg := flag.String("facilities", "abundant", "facility scenario the daemon owns: abundant, sufficient, or insufficient")
	fidelityArg := flag.String("fidelity", "good", "fiber fidelity range: good or poor")
	netSeed := flag.Uint64("net-seed", 1, "topology generation seed")
	seed := flag.Uint64("seed", 1, "service epoch seed (per-epoch rng streams derive from it)")
	queueLimit := flag.Int("queue-limit", 0, "admission queue bound; arrivals beyond it are shed with 429 (0: default 256)")
	epochMax := flag.Int("epoch-max", 0, "max transfers batched into one planning epoch (0: default 32)")
	fiberFailProb := flag.Float64("fiber-fail-prob", 0, "per-slot fiber crash probability during execution")
	var obs cliutil.Observability
	obs.DeferReady = true // not ready until the engine owns state and routes are up
	obs.Register(flag.CommandLine)
	flag.Parse()

	if obs.Listen == "" {
		fmt.Fprintln(os.Stderr, "surfnetd: -listen is required (the daemon is its HTTP API)")
		return 2
	}
	if err := obs.Start(); err != nil {
		slog.Error("surfnetd: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	fac, err := parseFacilities(*facilitiesArg)
	if err != nil {
		slog.Error("surfnetd: bad -facilities", "err", err)
		return 1
	}
	fr, err := parseFidelity(*fidelityArg)
	if err != nil {
		slog.Error("surfnetd: bad -fidelity", "err", err)
		return 1
	}

	net, err := topology.Generate(topology.DefaultParams(fac, fr), rng.New(*netSeed))
	if err != nil {
		slog.Error("surfnetd: generating topology", "err", err)
		return 1
	}
	cfg := core.DefaultConfig()
	cfg.Decoder = decoder.SurfNet{}
	cfg.FiberFailProb = *fiberFailProb
	eng, err := core.NewEngine(net, cfg)
	if err != nil {
		slog.Error("surfnetd: building engine", "err", err)
		return 1
	}
	pl := routing.NewPlanner(routing.DefaultParams(routing.SurfNet))

	srv := obs.ObsServer()
	svc, err := service.New(eng, pl, service.Config{
		QueueLimit: *queueLimit,
		EpochMax:   *epochMax,
		Workers:    obs.Workers,
		Seed:       *seed,
		Metrics:    obs.Registry,
		DrainHook:  func() { srv.SetReady(false) },
	})
	if err != nil {
		slog.Error("surfnetd: building service", "err", err)
		return 1
	}
	svc.RegisterRoutes(srv.Handle)
	srv.SetServiceStatus(func() any { return svc.Status() })
	// The engine owns state and the API is mounted: now — and only now —
	// report ready.
	srv.SetReady(true)
	slog.Info("surfnetd: serving",
		"facilities", fac.Name, "nodes", net.NumNodes(), "fibers", net.NumFibers(),
		"queue_limit", *queueLimit, "epoch_max", *epochMax)

	if err := svc.Run(obs.Context()); err != nil {
		slog.Error("surfnetd: service loop failed", "err", err)
		return 1
	}
	st := svc.Status()
	slog.Info("surfnetd: drained",
		"admitted", st.Admitted, "completed", st.Completed,
		"failed", st.Failed, "shed", st.Shed, "epochs", st.Epochs)
	return 0
}
