// Command surfnetsim regenerates the network experiments of the paper's
// evaluation section: the Raw-vs-SurfNet scenario comparison of Fig. 6(a),
// the parameter sweeps of Fig. 6(b.1-4), and the five-design fidelity
// comparison of Fig. 7.
//
// Usage:
//
//	surfnetsim -fig 6a|6b1|6b2|6b3|6b4|7|all [-trials N] [-requests K] [-seed S] [-greedy]
package main

import (
	"flag"
	"fmt"
	"os"

	"surfnet"
)

func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "figure to regenerate: 6a, 6b1, 6b2, 6b3, 6b4, 7, or all")
	trials := flag.Int("trials", 12, "random networks per experiment cell (paper: 1080)")
	requests := flag.Int("requests", 8, "communication requests per trial")
	maxMsgs := flag.Int("messages", 3, "maximum surface codes per request")
	seed := flag.Uint64("seed", 1, "root random seed")
	greedy := flag.Bool("greedy", false, "use the greedy scheduler instead of LP relaxation + rounding")
	flag.Parse()

	cfg := surfnet.DefaultExperiments()
	cfg.Trials = *trials
	cfg.Requests = *requests
	cfg.MaxMessages = *maxMsgs
	cfg.Seed = *seed
	cfg.UseLP = !*greedy

	runFig := func(name string) error {
		switch name {
		case "6a":
			rows, err := surfnet.Fig6a(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(a): Raw vs SurfNet across facility scenarios")
			fmt.Print(surfnet.FormatFig6a(rows))
		case "6b1":
			pts, err := surfnet.Fig6b1(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.1): facility capacity sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("capacity-factor", pts))
		case "6b2":
			pts, err := surfnet.Fig6b2(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.2): entanglement generation rate sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("entanglement-factor", pts))
		case "6b3":
			pts, err := surfnet.Fig6b3(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.3): messages-per-request sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("messages/request", pts))
		case "6b4":
			pts, err := surfnet.Fig6b4(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.4): routing fidelity threshold sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("fidelity-threshold", pts))
		case "7":
			rows, err := surfnet.Fig7(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig 7: averaged communication fidelity of the five designs")
			fmt.Print(surfnet.FormatFig7(rows))
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		fmt.Println()
		return nil
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = []string{"6a", "6b1", "6b2", "6b3", "6b4", "7"}
	}
	for _, f := range figs {
		if err := runFig(f); err != nil {
			fmt.Fprintf(os.Stderr, "surfnetsim: %v\n", err)
			return 1
		}
	}
	return 0
}
