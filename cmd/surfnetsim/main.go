// Command surfnetsim regenerates the network experiments of the paper's
// evaluation section: the Raw-vs-SurfNet scenario comparison of Fig. 6(a),
// the parameter sweeps of Fig. 6(b.1-4), and the five-design fidelity
// comparison of Fig. 7.
//
// Usage:
//
//	surfnetsim -fig 6a|6b1|6b2|6b3|6b4|7|all [-trials N] [-requests K] [-seed S] [-greedy]
//	           [-workers N] [-listen ADDR] [-log-level LEVEL] [-metrics-out FILE]
//	           [-trace-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -workers sizes the deterministic trial pool (default GOMAXPROCS); results
// are identical for every value.
//
// -fig accepts a comma-separated list ("-fig 6a,7"). With -metrics-out the
// run prints a per-figure counter delta after each figure and writes the full
// JSON snapshot on exit; -trace-out streams every slot-level, routing, and
// span event as JSON Lines. -listen serves /metrics, /healthz, /readyz,
// /status, and /debug/pprof/ for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"

	"surfnet"
	"surfnet/internal/cliutil"
)

// validFigs lists the figure names in presentation order; "all" expands to
// every entry.
var validFigs = []string{"6a", "6b1", "6b2", "6b3", "6b4", "7"}

// parseFigs expands and validates a comma-separated -fig value upfront, so a
// typo fails before any experiment runs.
func parseFigs(arg string) ([]string, error) {
	valid := map[string]bool{}
	for _, f := range validFigs {
		valid[f] = true
	}
	var figs []string
	for _, part := range strings.Split(arg, ",") {
		name := strings.TrimSpace(part)
		switch {
		case name == "all":
			figs = append(figs, validFigs...)
		case valid[name]:
			figs = append(figs, name)
		default:
			return nil, fmt.Errorf("unknown figure %q (valid: %s, all)",
				name, strings.Join(validFigs, ", "))
		}
	}
	if len(figs) == 0 {
		return nil, fmt.Errorf("empty -fig (valid: %s, all)", strings.Join(validFigs, ", "))
	}
	return figs, nil
}

func main() {
	os.Exit(run())
}

func run() (exit int) {
	fig := flag.String("fig", "all", "comma-separated figures to regenerate: 6a, 6b1, 6b2, 6b3, 6b4, 7, or all")
	trials := flag.Int("trials", 12, "random networks per experiment cell (paper: 1080)")
	requests := flag.Int("requests", 8, "communication requests per trial")
	maxMsgs := flag.Int("messages", 3, "maximum surface codes per request")
	seed := flag.Uint64("seed", 1, "root random seed")
	greedy := flag.Bool("greedy", false, "use the greedy scheduler instead of LP relaxation + rounding")
	batchMode := flag.Bool("batch", false, "schedule trials in 64-trial slabs through sim.RunBatch (results byte-identical)")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("surfnetsim: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	figs, err := parseFigs(*fig)
	if err != nil {
		slog.Error("surfnetsim: bad -fig", "err", err)
		return 1
	}

	cfg := surfnet.DefaultExperiments()
	cfg.Context = obs.Context()
	cfg.Trials = *trials
	cfg.Requests = *requests
	cfg.MaxMessages = *maxMsgs
	cfg.Seed = *seed
	cfg.UseLP = !*greedy
	cfg.Batch = *batchMode
	cfg.Workers = obs.Workers
	cfg.Metrics = obs.Registry
	cfg.Tracer = obs.TracerOrNil()
	cfg.Wall = obs.Wall
	cfg.Progress = obs.Progress

	runFig := func(name string) error {
		switch name {
		case "6a":
			rows, err := surfnet.Fig6a(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(a): Raw vs SurfNet across facility scenarios")
			fmt.Print(surfnet.FormatFig6a(rows))
		case "6b1":
			pts, err := surfnet.Fig6b1(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.1): facility capacity sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("capacity-factor", pts))
		case "6b2":
			pts, err := surfnet.Fig6b2(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.2): entanglement generation rate sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("entanglement-factor", pts))
		case "6b3":
			pts, err := surfnet.Fig6b3(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.3): messages-per-request sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("messages/request", pts))
		case "6b4":
			pts, err := surfnet.Fig6b4(cfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("Fig 6(b.4): routing fidelity threshold sweep (SurfNet)")
			fmt.Print(surfnet.FormatSweep("fidelity-threshold", pts))
		case "7":
			rows, err := surfnet.Fig7(cfg)
			if err != nil {
				return err
			}
			fmt.Println("Fig 7: averaged communication fidelity of the five designs")
			fmt.Print(surfnet.FormatFig7(rows))
		}
		fmt.Println()
		return nil
	}

	for _, f := range figs {
		prev := obs.Registry.Snapshot()
		slog.Info("running figure", "fig", f, "trials", cfg.Trials, "workers", cfg.Workers)
		if err := runFig(f); err != nil {
			slog.Error("surfnetsim: figure failed", "fig", f, "err", err)
			return 1
		}
		if obs.Registry != nil {
			printDelta(f, obs.Registry.Snapshot().CounterDelta(prev))
		}
	}
	return 0
}

// printDelta reports what one figure's run added to the counters, sorted for
// stable output.
func printDelta(fig string, delta map[string]int64) {
	if len(delta) == 0 {
		return
	}
	names := make([]string, 0, len(delta))
	for name := range delta {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("telemetry delta (fig %s):\n", fig)
	for _, name := range names {
		fmt.Printf("  %-32s %d\n", name, delta[name])
	}
	fmt.Println()
}
