// Command ablations runs the ablation studies of the design choices the
// paper calls out: QoS-adaptive code sizes, the SurfNet Decoder step size,
// the Core geometry, the erasure growth mode, and the wait-for-complete
// trade-off of §V-B.
//
// Usage:
//
//	ablations [-study adaptive|stepsize|decoders|corelayout|erasure|scheduler|wait|all]
//	          [-trials N] [-seed S] [-workers N] [-listen ADDR] [-log-level LEVEL]
//	          [-metrics-out F] [-trace-out F] [-cpuprofile F] [-memprofile F]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"surfnet/internal/cliutil"
	"surfnet/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() (exit int) {
	study := flag.String("study", "all", "study to run: adaptive, stepsize, decoders, corelayout, erasure, scheduler, wait, or all")
	trials := flag.Int("trials", 2000, "Monte-Carlo trials per decoder point / networks per cell (scaled down x100 for network studies)")
	seed := flag.Uint64("seed", 1, "root random seed")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("ablations: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	netCfg := experiments.DefaultConfig()
	netCfg.Context = obs.Context()
	netCfg.Seed = *seed
	netCfg.Trials = max(2, *trials/100)
	netCfg.Requests = 6
	netCfg.Workers = obs.Workers
	netCfg.Metrics = obs.Registry
	netCfg.Tracer = obs.TracerOrNil()
	netCfg.Wall = obs.Wall
	netCfg.Progress = obs.Progress

	decCfg := experiments.DecoderStudyConfig{
		Context:  obs.Context(),
		Seed:     *seed,
		Trials:   *trials,
		Workers:  obs.Workers,
		Metrics:  obs.Registry,
		Progress: obs.Progress,
	}

	runStudy := func(name string) error {
		switch name {
		case "adaptive":
			rows, err := experiments.AdaptiveStudy(netCfg)
			if err != nil {
				return err
			}
			fmt.Println("Adaptive code sizing (insufficient facilities):")
			fmt.Print(experiments.FormatAblation(rows))
		case "stepsize":
			pts, err := experiments.StepSizeStudy(decCfg, nil)
			if err != nil {
				return err
			}
			fmt.Println("SurfNet Decoder step size r (d=11, p=7%, erasure 15%):")
			fmt.Print(experiments.FormatDecoderPoints(pts))
		case "decoders":
			pts, err := experiments.DecoderFamilyStudy(decCfg)
			if err != nil {
				return err
			}
			fmt.Println("Decoder family (d=11, p=7%, erasure 15%):")
			fmt.Print(experiments.FormatDecoderPoints(pts))
		case "corelayout":
			byLayout, err := experiments.CoreLayoutStudy(decCfg)
			if err != nil {
				return err
			}
			fmt.Println("Core geometry (d=11, p=7%, erasure 15%):")
			for layout, pts := range byLayout {
				fmt.Printf("layout: %s\n%s", layout, experiments.FormatDecoderPoints(pts))
			}
		case "erasure":
			pts, err := experiments.ErasureGrowthStudy(decCfg)
			if err != nil {
				return err
			}
			fmt.Println("Erasure handling in the SurfNet Decoder (d=11, p=7%, erasure 15%):")
			fmt.Print(experiments.FormatDecoderPoints(pts))
		case "scheduler":
			rows, err := experiments.SchedulerStudy(netCfg)
			if err != nil {
				return err
			}
			fmt.Println("Scheduler: LP relaxation + rounding vs greedy (sufficient facilities):")
			fmt.Print(experiments.FormatAblation(rows))
		case "wait":
			rows, err := experiments.WaitForCompleteStudy(netCfg)
			if err != nil {
				return err
			}
			fmt.Println("Data-transfer/EC parallelism trade-off (lossy channels):")
			fmt.Print(experiments.FormatAblation(rows))
		default:
			return fmt.Errorf("unknown study %q", name)
		}
		fmt.Println()
		return nil
	}

	studies := []string{*study}
	if *study == "all" {
		studies = []string{"adaptive", "stepsize", "decoders", "corelayout", "erasure", "scheduler", "wait"}
	}
	for _, s := range studies {
		slog.Info("running study", "study", s, "workers", obs.Workers)
		if err := runStudy(s); err != nil {
			slog.Error("ablations: study failed", "study", s, "err", err)
			return 1
		}
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
