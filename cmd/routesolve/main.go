// Command routesolve schedules a batch of random requests on a generated
// scenario with the paper's LP-relaxation-with-rounding scheduler and prints
// the resulting routes: per-request acceptance, Core/Support paths, error
// correction servers, and scheduled noise, followed by the solver's telemetry
// (simplex pivots, iterations, rounding decisions, fallbacks).
//
// Usage:
//
//	routesolve [-design surfnet|raw|purification-1|purification-2|purification-9]
//	           [-scenario ...] [-connection ...] [-requests K] [-messages M] [-seed S]
//	           [-listen ADDR] [-log-level LEVEL] [-metrics-out FILE] [-trace-out FILE]
//	           [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"surfnet"
	"surfnet/internal/cliutil"
)

func main() {
	os.Exit(run())
}

func run() (exit int) {
	design := flag.String("design", "surfnet", "network design: surfnet, raw, purification-1/2/9")
	scenario := flag.String("scenario", "sufficient", "facility scenario")
	connection := flag.String("connection", "good", "fiber quality: good or poor")
	requests := flag.Int("requests", 6, "number of random requests")
	messages := flag.Int("messages", 3, "maximum surface codes per request")
	seed := flag.Uint64("seed", 1, "random seed")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("routesolve: startup failed", "err", err)
		return 1
	}
	// The solver report below always needs a registry, -metrics-out or not.
	obs.ForceMetrics()
	defer cliutil.ExitOnFinishError(&obs, &exit)

	var d surfnet.Design
	switch *design {
	case "surfnet":
		d = surfnet.DesignSurfNet
	case "raw":
		d = surfnet.DesignRaw
	case "purification-1":
		d = surfnet.DesignPurification1
	case "purification-2":
		d = surfnet.DesignPurification2
	case "purification-9":
		d = surfnet.DesignPurification9
	default:
		slog.Error("routesolve: unknown design", "design", *design)
		return 1
	}
	var fac surfnet.Facilities
	switch *scenario {
	case "abundant":
		fac = surfnet.Abundant
	case "sufficient":
		fac = surfnet.Sufficient
	case "insufficient":
		fac = surfnet.Insufficient
	default:
		slog.Error("routesolve: unknown scenario", "scenario", *scenario)
		return 1
	}
	fr := surfnet.GoodConnection
	if *connection == "poor" {
		fr = surfnet.PoorConnection
	}

	src := surfnet.NewRand(*seed)
	net, err := surfnet.GenerateNetwork(surfnet.DefaultTopology(fac, fr), src)
	if err != nil {
		slog.Error("routesolve: generating network failed", "err", err)
		return 1
	}
	reqs, err := surfnet.GenRequests(net, *requests, *messages, src.Split("reqs"))
	if err != nil {
		slog.Error("routesolve: generating requests failed", "err", err)
		return 1
	}
	p := surfnet.DefaultRouting(d)
	p.Metrics = obs.Registry
	p.Tracer = obs.TracerOrNil()
	sched, err := surfnet.ScheduleRoutes(net, reqs, p)
	if err != nil {
		slog.Error("routesolve: scheduling failed", "err", err)
		return 1
	}

	fmt.Printf("design=%v scenario=%s connection=%s requests=%d\n", d, *scenario, *connection, len(reqs))
	fmt.Printf("throughput=%.3f accepted=%d expected-fidelity=%.3f\n\n",
		sched.Throughput(), sched.AcceptedCodes(), sched.MeanExpectedFidelity())
	for i, rs := range sched.Requests {
		fmt.Printf("request %d: %d -> %d, %d/%d codes scheduled\n",
			i, rs.Request.Src, rs.Request.Dst, rs.Accepted(), rs.Request.Messages)
		for c, cr := range rs.Codes {
			fmt.Printf("  code %d: core=%v support=%v servers=%v coreNoise=%.3f totalNoise=%.3f fid=%.3f\n",
				c, cr.CorePath, cr.SupportPath, cr.Servers, cr.CoreNoise, cr.TotalNoise, cr.ExpectedFidelity())
		}
	}
	printSolverStats(obs.Registry.Snapshot())
	return 0
}

// printSolverStats reports the scheduler counters recorded during the solve.
func printSolverStats(snap surfnet.MetricsSnapshot) {
	c := snap.Counters
	fmt.Printf("\nsolver: lp-solves=%d pivots=%d iterations=%d degenerate-pivots=%d\n",
		c["routing.lp_solves"], c["routing.lp_pivots"],
		c["routing.lp_iterations"], c["routing.lp_degenerate_pivots"])
	fmt.Printf("rounding: up=%d down=%d greedy-fallbacks=%d\n",
		c["routing.rounded_up"], c["routing.rounded_down"], c["routing.greedy_fallbacks"])
	fmt.Printf("admission: codes-admitted=%d unadmitted=%d\n",
		c["routing.codes_admitted"], c["routing.codes_unadmitted"])
}
