// Command routesolve schedules a batch of random requests on a generated
// scenario with the paper's LP-relaxation-with-rounding scheduler and prints
// the resulting routes: per-request acceptance, Core/Support paths, error
// correction servers, and scheduled noise.
//
// Usage:
//
//	routesolve [-design surfnet|raw|purification-1|purification-2|purification-9]
//	           [-scenario ...] [-connection ...] [-requests K] [-messages M] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"surfnet"
)

func main() {
	os.Exit(run())
}

func run() int {
	design := flag.String("design", "surfnet", "network design: surfnet, raw, purification-1/2/9")
	scenario := flag.String("scenario", "sufficient", "facility scenario")
	connection := flag.String("connection", "good", "fiber quality: good or poor")
	requests := flag.Int("requests", 6, "number of random requests")
	messages := flag.Int("messages", 3, "maximum surface codes per request")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	var d surfnet.Design
	switch *design {
	case "surfnet":
		d = surfnet.DesignSurfNet
	case "raw":
		d = surfnet.DesignRaw
	case "purification-1":
		d = surfnet.DesignPurification1
	case "purification-2":
		d = surfnet.DesignPurification2
	case "purification-9":
		d = surfnet.DesignPurification9
	default:
		fmt.Fprintf(os.Stderr, "routesolve: unknown design %q\n", *design)
		return 1
	}
	var fac surfnet.Facilities
	switch *scenario {
	case "abundant":
		fac = surfnet.Abundant
	case "sufficient":
		fac = surfnet.Sufficient
	case "insufficient":
		fac = surfnet.Insufficient
	default:
		fmt.Fprintf(os.Stderr, "routesolve: unknown scenario %q\n", *scenario)
		return 1
	}
	fr := surfnet.GoodConnection
	if *connection == "poor" {
		fr = surfnet.PoorConnection
	}

	src := surfnet.NewRand(*seed)
	net, err := surfnet.GenerateNetwork(surfnet.DefaultTopology(fac, fr), src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "routesolve: %v\n", err)
		return 1
	}
	reqs, err := surfnet.GenRequests(net, *requests, *messages, src.Split("reqs"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "routesolve: %v\n", err)
		return 1
	}
	sched, err := surfnet.ScheduleRoutes(net, reqs, surfnet.DefaultRouting(d))
	if err != nil {
		fmt.Fprintf(os.Stderr, "routesolve: %v\n", err)
		return 1
	}

	fmt.Printf("design=%v scenario=%s connection=%s requests=%d\n", d, *scenario, *connection, len(reqs))
	fmt.Printf("throughput=%.3f accepted=%d expected-fidelity=%.3f\n\n",
		sched.Throughput(), sched.AcceptedCodes(), sched.MeanExpectedFidelity())
	for i, rs := range sched.Requests {
		fmt.Printf("request %d: %d -> %d, %d/%d codes scheduled\n",
			i, rs.Request.Src, rs.Request.Dst, rs.Accepted(), rs.Request.Messages)
		for c, cr := range rs.Codes {
			fmt.Printf("  code %d: core=%v support=%v servers=%v coreNoise=%.3f totalNoise=%.3f fid=%.3f\n",
				c, cr.CorePath, cr.SupportPath, cr.Servers, cr.CoreNoise, cr.TotalNoise, cr.ExpectedFidelity())
		}
	}
	return 0
}
