// Command traceview analyzes a JSONL event trace written by -trace-out: it
// reconstructs the span trees of every traced communication
// (transfer→epoch→slot→decode), reports a per-stage latency breakdown —
// total and self time (self = a span's duration minus its children's), and
// p50/p90/p99 over span durations in slots — extracts the critical path of
// the slowest transfer, and lists the top-K slowest spans per stage.
//
// Durations in the deterministic trace are measured in slots, the engine's
// causal clock; wall-clock latency lives in the telemetry histograms
// (<stage>_wall_seconds in -metrics-out and /metrics), not in the trace.
//
// Usage:
//
//	surfnetsim -fig 6a -trace-out trace.jsonl
//	traceview trace.jsonl            # table report
//	traceview -json trace.jsonl      # machine-readable report
//	traceview -top 10 trace.jsonl    # deeper slow-span listing
//
// With no file argument the trace is read from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// spanEvent is the subset of a trace line traceview consumes. Req and Code
// are pointers so "absent" (baseline routing events, untagged spans) stays
// distinguishable from 0.
type spanEvent struct {
	Event  string `json:"event"`
	Slot   int    `json:"slot"`
	Req    *int   `json:"req"`
	Code   *int   `json:"code"`
	Name   string `json:"name"`
	Span   int    `json:"span"`
	Parent int    `json:"parent"`
	Start  int    `json:"start"`
	Dur    int    `json:"dur"`
}

// scopeKey identifies one SpanSet scope: span ids restart per communication,
// so (req, code) qualifies them within a trial. Multi-trial traces reuse
// (req, code), so a generation counter separates the repeats: every time a
// span id reappears in a scope the parser rotates to a fresh generation
// (span events are emitted in order and ids never repeat within one
// SpanSet, so a duplicate id marks the next communication's trace).
type scopeKey struct{ req, code, gen int }

// node is one reconstructed span.
type node struct {
	scope    scopeKey
	id       int
	parentID int
	name     string
	start    int
	endSlot  int
	dur      int
	depth    int
	children []*node
}

// forest holds every reconstructed span tree plus parse-level totals.
type forest struct {
	events int64 // all trace lines
	spans  int64 // span events
	nodes  map[scopeKey]map[int]*node
	gens   map[scopeKey]int // (req, code, 0) -> current generation
	roots  []*node
}

// parseTrace reads a JSONL trace and reconstructs the span forest.
// Non-span events are counted and skipped; malformed lines are an error with
// their line number.
func parseTrace(r io.Reader) (*forest, error) {
	f := &forest{nodes: map[scopeKey]map[int]*node{}, gens: map[scopeKey]int{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev spanEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f.events++
		if ev.Event != "span" {
			continue
		}
		f.spans++
		base := scopeKey{req: -1, code: -1}
		if ev.Req != nil {
			base.req = *ev.Req
		}
		if ev.Code != nil {
			base.code = *ev.Code
		}
		key := base
		key.gen = f.gens[base]
		scope := f.nodes[key]
		if scope == nil {
			scope = map[int]*node{}
			f.nodes[key] = scope
		}
		if _, dup := scope[ev.Span]; dup {
			key.gen++
			f.gens[base] = key.gen
			scope = map[int]*node{}
			f.nodes[key] = scope
		}
		scope[ev.Span] = &node{
			scope: key, id: ev.Span, parentID: ev.Parent,
			name: ev.Name, start: ev.Start, endSlot: ev.Slot, dur: ev.Dur,
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	f.link()
	return f, nil
}

// link connects children to parents and computes depths. Spans whose parent
// never ended (crashed scopes) become roots, so partial traces still report.
func (f *forest) link() {
	for _, scope := range f.nodes {
		for _, n := range scope {
			if p := scope[n.parentID]; n.parentID != 0 && p != nil && p != n {
				p.children = append(p.children, n)
			} else {
				f.roots = append(f.roots, n)
			}
		}
	}
	// Deterministic order for iteration and output.
	sort.Slice(f.roots, func(i, j int) bool {
		a, b := f.roots[i], f.roots[j]
		if a.scope != b.scope {
			if a.scope.req != b.scope.req {
				return a.scope.req < b.scope.req
			}
			if a.scope.code != b.scope.code {
				return a.scope.code < b.scope.code
			}
			return a.scope.gen < b.scope.gen
		}
		return a.id < b.id
	})
	var setDepth func(n *node, d int)
	setDepth = func(n *node, d int) {
		n.depth = d
		sort.Slice(n.children, func(i, j int) bool { return n.children[i].id < n.children[j].id })
		for _, c := range n.children {
			setDepth(c, d+1)
		}
	}
	for _, r := range f.roots {
		setDepth(r, 0)
	}
}

// selfSlots is a span's duration minus its children's (clamped at zero:
// overlapping child spans can oversubscribe the parent).
func selfSlots(n *node) int {
	self := n.dur
	for _, c := range n.children {
		self -= c.dur
	}
	if self < 0 {
		self = 0
	}
	return self
}

// StageStat is the aggregated latency profile of one span name.
type StageStat struct {
	Name       string `json:"name"`
	Count      int    `json:"count"`
	TotalSlots int64  `json:"total_slots"`
	SelfSlots  int64  `json:"self_slots"`
	P50        int    `json:"p50_slots"`
	P90        int    `json:"p90_slots"`
	P99        int    `json:"p99_slots"`
	Max        int    `json:"max_slots"`

	depth int // min observed depth, for hierarchical table order
}

// PathStep is one hop of a critical path.
type PathStep struct {
	Name      string `json:"name"`
	Start     int    `json:"start_slot"`
	Dur       int    `json:"dur_slots"`
	SelfSlots int    `json:"self_slots"`
}

// CriticalPath is the slowest root span's heaviest child chain.
type CriticalPath struct {
	Req      int        `json:"req"`
	Code     int        `json:"code"`
	DurSlots int        `json:"dur_slots"`
	Steps    []PathStep `json:"steps"`
}

// SlowSpan is one entry of the top-K slowest listing.
type SlowSpan struct {
	Name     string `json:"name"`
	Req      int    `json:"req"`
	Code     int    `json:"code"`
	Start    int    `json:"start_slot"`
	End      int    `json:"end_slot"`
	DurSlots int    `json:"dur_slots"`
}

// Report is traceview's full analysis of one trace.
type Report struct {
	Events  int64          `json:"events"`
	Spans   int64          `json:"spans"`
	Trees   int            `json:"trees"`
	Stages  []StageStat    `json:"stages"`
	Paths   []CriticalPath `json:"critical_paths"`
	Slowest []SlowSpan     `json:"slowest"`
}

// quantile returns the exact q-order statistic of sorted ints.
func quantile(sorted []int, q float64) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// analyze builds the report: per-stage stats over every span, critical paths
// of the topK slowest trees, and the topK slowest spans per stage.
func analyze(f *forest, topK int) *Report {
	rep := &Report{Events: f.events, Spans: f.spans, Trees: len(f.roots)}

	durs := map[string][]int{}
	stats := map[string]*StageStat{}
	var all []*node
	var walk func(n *node)
	walk = func(n *node) {
		all = append(all, n)
		st := stats[n.name]
		if st == nil {
			st = &StageStat{Name: n.name, depth: n.depth}
			stats[n.name] = st
		}
		if n.depth < st.depth {
			st.depth = n.depth
		}
		st.Count++
		st.TotalSlots += int64(n.dur)
		st.SelfSlots += int64(selfSlots(n))
		durs[n.name] = append(durs[n.name], n.dur)
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range f.roots {
		walk(r)
	}
	for name, st := range stats {
		d := durs[name]
		sort.Ints(d)
		st.P50, st.P90, st.P99 = quantile(d, 0.50), quantile(d, 0.90), quantile(d, 0.99)
		st.Max = d[len(d)-1]
		rep.Stages = append(rep.Stages, *st)
	}
	sort.Slice(rep.Stages, func(i, j int) bool {
		a, b := rep.Stages[i], rep.Stages[j]
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		return a.Name < b.Name
	})

	// Critical paths: the topK slowest roots, each following its heaviest
	// child until a leaf.
	roots := append([]*node(nil), f.roots...)
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].dur > roots[j].dur })
	for i := 0; i < len(roots) && i < topK; i++ {
		r := roots[i]
		cp := CriticalPath{Req: r.scope.req, Code: r.scope.code, DurSlots: r.dur}
		for n := r; n != nil; {
			cp.Steps = append(cp.Steps, PathStep{
				Name: n.name, Start: n.start, Dur: n.dur, SelfSlots: selfSlots(n),
			})
			var heaviest *node
			for _, c := range n.children {
				if heaviest == nil || c.dur > heaviest.dur {
					heaviest = c
				}
			}
			n = heaviest
		}
		rep.Paths = append(rep.Paths, cp)
	}

	// Top-K slowest spans per stage, flattened and ordered slowest-first.
	sort.SliceStable(all, func(i, j int) bool { return all[i].dur > all[j].dur })
	perStage := map[string]int{}
	for _, n := range all {
		if perStage[n.name] >= topK {
			continue
		}
		perStage[n.name]++
		rep.Slowest = append(rep.Slowest, SlowSpan{
			Name: n.name, Req: n.scope.req, Code: n.scope.code,
			Start: n.start, End: n.endSlot, DurSlots: n.dur,
		})
	}
	return rep
}

// writeTable renders the human-readable report.
func writeTable(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "trace: %d events, %d spans, %d span trees\n\n", rep.Events, rep.Spans, rep.Trees)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "STAGE\tCOUNT\tTOTAL\tSELF\tP50\tP90\tP99\tMAX")
	for _, st := range rep.Stages {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			st.Name, st.Count, st.TotalSlots, st.SelfSlots, st.P50, st.P90, st.P99, st.Max)
	}
	tw.Flush()
	fmt.Fprintln(w, "(durations in slots; SELF excludes child spans)")

	for i, cp := range rep.Paths {
		if i == 0 {
			fmt.Fprintln(w, "\ncritical paths (slowest transfers, heaviest child chain):")
		}
		fmt.Fprintf(w, "  #%d req=%d code=%d %d slots:", i+1, cp.Req, cp.Code, cp.DurSlots)
		for j, s := range cp.Steps {
			if j > 0 {
				fmt.Fprint(w, " >")
			}
			fmt.Fprintf(w, " %s[%d@%d self=%d]", s.Name, s.Dur, s.Start, s.SelfSlots)
		}
		fmt.Fprintln(w)
	}

	if len(rep.Slowest) > 0 {
		fmt.Fprintln(w, "\nslowest spans per stage:")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  STAGE\tDUR\tSTART\tEND\tREQ\tCODE")
		for _, s := range rep.Slowest {
			fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\n",
				s.Name, s.DurSlots, s.Start, s.End, s.Req, s.Code)
		}
		tw.Flush()
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of a table")
	topK := fs.Int("top", 5, "how many critical paths and slowest spans per stage to keep")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "traceview: at most one trace file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "traceview: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	forest, err := parseTrace(in)
	if err != nil {
		fmt.Fprintf(stderr, "traceview: %v\n", err)
		return 1
	}
	if forest.spans == 0 {
		fmt.Fprintln(stderr, "traceview: no span events in trace (was it written with -trace-out?)")
		return 1
	}
	rep := analyze(forest, *topK)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "traceview: %v\n", err)
			return 1
		}
		return 0
	}
	writeTable(stdout, rep)
	return 0
}
