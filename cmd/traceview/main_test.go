package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"surfnet/internal/telemetry"
)

// buildTrace emits two realistic transfer scopes plus a non-span event
// through the real SpanSet/JSONL pipeline, so the test parses exactly what
// -trace-out writes.
func buildTrace(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	tr := telemetry.NewJSONL(&sb)

	// Scope (0,0): transfer(0..20) > epoch(0..20) > 2 slots, each with a
	// zero-slot decode. Slot 1 is the slow one (12 slots).
	s := telemetry.NewSpanSet(tr, 0, 0)
	transfer := s.Start("transfer", 0, 0)
	epoch := s.Start("epoch", transfer, 0)
	slot1 := s.Start("slot", epoch, 0)
	dec1 := s.Start("decode", slot1, 0)
	s.End(dec1, 0)
	s.End(slot1, 12)
	slot2 := s.Start("slot", epoch, 12)
	dec2 := s.Start("decode", slot2, 12)
	s.End(dec2, 12)
	s.End(slot2, 16)
	s.End(epoch, 20)
	s.End(transfer, 20)

	// Scope (1,0): a faster transfer.
	s2 := telemetry.NewSpanSet(tr, 1, 0)
	t2 := s2.Start("transfer", 0, 0)
	sl := s2.Start("slot", t2, 0)
	s2.End(sl, 3)
	s2.End(t2, 5)

	// A non-span engine event must be counted but otherwise ignored.
	ev := telemetry.Ev("core.photon_loss", "fiber", 3)
	ev.Slot = 4
	tr.Emit(ev)

	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestAnalyzeSpanForest(t *testing.T) {
	f, err := parseTrace(strings.NewReader(buildTrace(t)))
	if err != nil {
		t.Fatal(err)
	}
	if f.events != 9 || f.spans != 8 {
		t.Fatalf("events=%d spans=%d, want 9/8", f.events, f.spans)
	}
	rep := analyze(f, 3)
	if rep.Trees != 2 {
		t.Fatalf("trees = %d, want 2", rep.Trees)
	}

	byName := map[string]StageStat{}
	for _, st := range rep.Stages {
		byName[st.Name] = st
	}
	// transfer: durs 20 and 5; self for scope0 = 20-20(epoch)=0, scope1 = 5-3 = 2.
	tr := byName["transfer"]
	if tr.Count != 2 || tr.TotalSlots != 25 || tr.SelfSlots != 2 || tr.Max != 20 {
		t.Fatalf("transfer stat %+v", tr)
	}
	// epoch self = 20 - (12+4) = 4.
	if ep := byName["epoch"]; ep.SelfSlots != 4 || ep.Count != 1 {
		t.Fatalf("epoch stat %+v", ep)
	}
	// slots: durs 3,4,12 → p50=4, p99=max=12; decodes are zero-slot children.
	sl := byName["slot"]
	if sl.Count != 3 || sl.P50 != 4 || sl.P99 != 12 || sl.SelfSlots != 19 {
		t.Fatalf("slot stat %+v", sl)
	}
	if byName["decode"].TotalSlots != 0 {
		t.Fatalf("decode stat %+v", byName["decode"])
	}
	// Hierarchical order: parents before children.
	if rep.Stages[0].Name != "transfer" || rep.Stages[len(rep.Stages)-1].Name != "decode" {
		t.Fatalf("stage order %+v", rep.Stages)
	}

	// Critical path of the slowest transfer: transfer > epoch > slot1 > decode.
	if len(rep.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (one per tree)", len(rep.Paths))
	}
	cp := rep.Paths[0]
	if cp.Req != 0 || cp.DurSlots != 20 {
		t.Fatalf("critical path root %+v", cp)
	}
	var names []string
	for _, s := range cp.Steps {
		names = append(names, s.Name)
	}
	if got := strings.Join(names, ">"); got != "transfer>epoch>slot>decode" {
		t.Fatalf("critical path %q", got)
	}
	if cp.Steps[2].Dur != 12 {
		t.Fatalf("critical path picked slot dur %d, want 12 (the heaviest)", cp.Steps[2].Dur)
	}

	// Slowest listing: the 12-slot slot leads its stage.
	var slowestSlot *SlowSpan
	for i := range rep.Slowest {
		if rep.Slowest[i].Name == "slot" {
			slowestSlot = &rep.Slowest[i]
			break
		}
	}
	if slowestSlot == nil || slowestSlot.DurSlots != 12 || slowestSlot.End != 12 {
		t.Fatalf("slowest slot %+v", slowestSlot)
	}
}

// TestRunTableAndJSON drives the CLI entry end to end on both output modes.
func TestRunTableAndJSON(t *testing.T) {
	trace := buildTrace(t)

	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(trace), &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"STAGE", "transfer", "critical paths", "slowest spans", "P99",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("table output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if code := run([]string{"-json", "-top", "2"}, strings.NewReader(trace), &out, &errb); code != 0 {
		t.Fatalf("run -json = %d, stderr: %s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("JSON output: %v\n%s", err, out.String())
	}
	if rep.Spans != 8 || len(rep.Stages) != 4 {
		t.Fatalf("JSON report %+v", rep)
	}

	// Traces without spans are a usage error, not a zero report.
	out.Reset()
	if code := run(nil, strings.NewReader(`{"event":"core.decode","slot":1}`+"\n"), &out, &errb); code != 1 {
		t.Fatalf("span-less trace: run = %d, want 1", code)
	}
}
