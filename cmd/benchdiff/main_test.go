package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals a snapshot into dir and returns its path.
func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseline() Report {
	return Report{
		CPU: "test-cpu",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkMWPMDecode/d=5", NsPerOp: 13000, BytesPerOp: 256, AllocsPerOp: 3,
				Extra: map[string]float64{"p99-ns/op": 19000}},
			{Name: "BenchmarkSurfNetDecoder/d=9", NsPerOp: 100000, BytesPerOp: 1024, AllocsPerOp: 10},
		},
	}
}

func TestBenchdiffPassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", baseline())
	newRep := baseline()
	newRep.Benchmarks[0].NsPerOp *= 1.10 // +10% < default 20% band
	newP := writeReport(t, dir, "new.json", newRep)

	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("run = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "within tolerance") {
		t.Fatalf("missing pass summary:\n%s", out.String())
	}
}

// TestBenchdiffFailsOnNsRegression pins the acceptance criterion: an injected
// >=25% ns/op regression must exit non-zero under the default tolerance.
func TestBenchdiffFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", baseline())
	newRep := baseline()
	newRep.Benchmarks[0].NsPerOp *= 1.25
	newP := writeReport(t, dir, "new.json", newRep)

	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing REGRESSION verdict:\n%s", out.String())
	}
	// A widened tolerance waves the same delta through.
	if code := run([]string{"-tol", "0.5", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("run -tol 0.5 = %d, want 0", code)
	}
}

func TestBenchdiffGatesAllocsStrictly(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", baseline())
	newRep := baseline()
	newRep.Benchmarks[1].AllocsPerOp = 11 // one extra alloc
	newP := writeReport(t, dir, "new.json", newRep)

	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("run = %d, want 1 on alloc increase\n%s", code, out.String())
	}
	if code := run([]string{"-alloc-tol", "0.2", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("run -alloc-tol 0.2 = %d, want 0", code)
	}
}

// TestBenchdiffExtraMetricsReportOnly: percentile families show in the table
// but never gate, even when they regress hard.
func TestBenchdiffExtraMetricsReportOnly(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", baseline())
	newRep := baseline()
	newRep.Benchmarks[0].Extra["p99-ns/op"] = 100000 // 5x tail blowup
	newP := writeReport(t, dir, "new.json", newRep)

	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0 (extras are not gated)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Fatalf("extra regression not reported:\n%s", out.String())
	}
}

func TestBenchdiffMissingAndNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", baseline())
	newRep := baseline()
	newRep.Benchmarks = newRep.Benchmarks[:1] // drop SurfNetDecoder
	newRep.Benchmarks = append(newRep.Benchmarks, Benchmark{Name: "BenchmarkNewThing", NsPerOp: 5})
	newP := writeReport(t, dir, "new.json", newRep)

	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, want 0 (missing is a warning by default)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "missing (skipped)") ||
		!strings.Contains(out.String(), "new benchmark (no baseline): BenchmarkNewThing") {
		t.Fatalf("missing/new reporting wrong:\n%s", out.String())
	}
	if code := run([]string{"-require-all", oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("run -require-all = %d, want 1", code)
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one.json"}, &out, &errb); code != 2 {
		t.Fatalf("one arg: run = %d, want 2", code)
	}
	if code := run([]string{"nope1.json", "nope2.json"}, &out, &errb); code != 2 {
		t.Fatalf("unreadable: run = %d, want 2", code)
	}
}
