// Command benchdiff is the perf-regression ledger's gate: it compares two
// BENCH_*.json snapshots written by benchjson and exits non-zero when any
// benchmark regressed beyond tolerance, so `make bench-diff` (and the CI job)
// can hold the line PR-over-PR.
//
// Metrics are gated differently because they travel differently across
// machines: allocs/op is deterministic and gated strictly (any increase
// beyond -alloc-tol fails), B/op nearly so (-bytes-tol), while ns/op depends
// on the host and gets the -tol band (CI, comparing against a snapshot from
// different hardware, runs with a wide -tol; local runs use the tight
// default). Extra metric families (wall-latency percentiles) are reported
// but never gated — short benchtimes make tails too noisy to block on.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -tol 0.5 -alloc-tol 0 BENCH_decoder.json /tmp/BENCH_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
)

// Benchmark mirrors benchjson's record (kept in sync by TestRoundTrip there
// being the ledger's only writer).
type Benchmark struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report mirrors benchjson's document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// loadReport reads and indexes one snapshot by benchmark name.
func loadReport(path string) (*Report, map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	idx := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		idx[b.Name] = b
	}
	return &rep, idx, nil
}

// verdict classifies one metric delta against its tolerance.
func verdict(old, new, tol float64) string {
	switch {
	case old == 0:
		return "new"
	case new > old*(1+tol):
		return "REGRESSION"
	case new < old*(1-tol):
		return "improved"
	default:
		return "ok"
	}
}

// pct renders a relative delta.
func pct(old, new float64) string {
	if old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// diff compares old against new and writes the ledger table; it returns the
// number of gated regressions.
func diff(w io.Writer, oldIdx, newIdx map[string]Benchmark, tol, bytesTol, allocTol float64, requireAll bool) int {
	names := make([]string, 0, len(oldIdx))
	for n := range oldIdx {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tMETRIC\tOLD\tNEW\tDELTA\tVERDICT")
	for _, name := range names {
		o := oldIdx[name]
		n, ok := newIdx[name]
		if !ok {
			if requireAll {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\tMISSING\n", name)
				regressions++
			} else {
				fmt.Fprintf(tw, "%s\t-\t-\t-\t-\tmissing (skipped)\n", name)
			}
			continue
		}
		rows := []struct {
			metric   string
			old, new float64
			tol      float64
			gated    bool
		}{
			{"ns/op", o.NsPerOp, n.NsPerOp, tol, true},
			{"B/op", float64(o.BytesPerOp), float64(n.BytesPerOp), bytesTol, true},
			{"allocs/op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), allocTol, true},
		}
		extras := make([]string, 0, len(o.Extra))
		for unit := range o.Extra {
			extras = append(extras, unit)
		}
		sort.Strings(extras)
		for _, unit := range extras {
			if nv, ok := n.Extra[unit]; ok {
				rows = append(rows, struct {
					metric   string
					old, new float64
					tol      float64
					gated    bool
				}{unit, o.Extra[unit], nv, tol, false})
			}
		}
		for _, r := range rows {
			if r.old == 0 && r.new == 0 {
				continue // metric absent on both sides (e.g. no -benchmem)
			}
			v := verdict(r.old, r.new, r.tol)
			if !r.gated && v == "REGRESSION" {
				v = "regression (not gated)"
			}
			if r.gated && v == "REGRESSION" {
				regressions++
			}
			fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%s\t%s\n", name, r.metric, r.old, r.new, pct(r.old, r.new), v)
		}
	}
	tw.Flush()

	// New benchmarks are informational: the ledger grows, nothing to gate.
	added := make([]string, 0)
	for n := range newIdx {
		if _, ok := oldIdx[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	for _, n := range added {
		fmt.Fprintf(w, "new benchmark (no baseline): %s\n", n)
	}
	return regressions
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tol := fs.Float64("tol", 0.20, "relative ns/op increase tolerated before failing (0.20 = +20%)")
	bytesTol := fs.Float64("bytes-tol", 0.10, "relative B/op increase tolerated")
	allocTol := fs.Float64("alloc-tol", 0.0, "relative allocs/op increase tolerated (0 = any increase fails)")
	requireAll := fs.Bool("require-all", false, "fail when a baseline benchmark is missing from the new snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		return 2
	}
	oldRep, oldIdx, err := loadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newRep, newIdx, err := loadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	if oldRep.CPU != "" && newRep.CPU != "" && oldRep.CPU != newRep.CPU {
		fmt.Fprintf(stdout, "note: snapshots from different CPUs (%q vs %q); ns/op deltas are indicative only\n",
			oldRep.CPU, newRep.CPU)
	}
	regressions := diff(stdout, oldIdx, newIdx, *tol, *bytesTol, *allocTol, *requireAll)
	if regressions > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) beyond tolerance (ns/op +%.0f%%, B/op +%.0f%%, allocs/op +%.0f%%)\n",
			regressions, *tol*100, *bytesTol*100, *allocTol*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within tolerance\n", len(oldIdx))
	return 0
}
