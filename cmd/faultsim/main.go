// Command faultsim runs the fault-intensity resilience sweep: SurfNet against
// the Raw and purification-2 baselines on the sufficient/good scenario while
// stochastic fiber crashes, server outages, correlated regional failures, and
// fidelity drift strike with a swept intensity. It reports, per cell, the
// standard fidelity/latency/throughput metrics plus the delivered fraction and
// the recovery behaviour (local reroutes, epoch re-plans, skipped
// corrections).
//
// Usage:
//
//	faultsim [-intensities 0,0.5,1,2,4,8] [-trials N] [-requests K] [-seed S] [-greedy]
//	         [-backoff SLOTS] [-backoff-max SLOTS] [-replan-fails N] [-replan-epoch SLOTS]
//	         [-script SLOT:fiber|node:ID:DURATION,...]
//	         [-workers N] [-listen ADDR] [-log-level LEVEL] [-metrics-out FILE]
//	         [-trace-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -backoff enables exponential retry backoff for blocked code parts (0 keeps
// the legacy every-slot retry); -replan-fails triggers a full epoch re-plan
// over the surviving topology after that many consecutive recovery failures.
// -script adds an exact outage timetable on top of every swept intensity, for
// reproducible what-if runs ("cut fiber 3 at slot 40 for 60 slots" is
// 40:fiber:3:60).
//
// -workers sizes the deterministic trial pool (default GOMAXPROCS); results
// are identical for every value, faults included.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"surfnet"
	"surfnet/internal/cliutil"
)

func main() {
	os.Exit(run())
}

// parseIntensities parses the comma-separated -intensities value.
func parseIntensities(arg string) ([]float64, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil // nil selects the default sweep
	}
	var out []float64
	for _, part := range strings.Split(arg, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad intensity %q: %v", part, err)
		}
		if x < 0 {
			return nil, fmt.Errorf("negative intensity %v", x)
		}
		out = append(out, x)
	}
	return out, nil
}

func run() (exit int) {
	intensities := flag.String("intensities", "", "comma-separated fault intensities (empty: 0,0.5,1,2,4,8)")
	trials := flag.Int("trials", 12, "random networks per sweep cell")
	requests := flag.Int("requests", 8, "communication requests per trial")
	maxMsgs := flag.Int("messages", 3, "maximum surface codes per request")
	seed := flag.Uint64("seed", 1, "root random seed")
	greedy := flag.Bool("greedy", false, "use the greedy scheduler instead of LP relaxation + rounding")
	backoff := flag.Int("backoff", 2, "initial recovery retry backoff in slots (0: retry every slot)")
	backoffMax := flag.Int("backoff-max", 0, "backoff ceiling in slots (0: default 32)")
	replanFails := flag.Int("replan-fails", 4, "consecutive recovery failures before an epoch re-plan (0: never re-plan)")
	replanEpoch := flag.Int("replan-epoch", 0, "minimum slots between re-plans (0: default 50)")
	scriptArg := flag.String("script", "", "scripted outage timetable: SLOT:fiber|node:ID:DURATION,... applied at every intensity")
	var obs cliutil.Observability
	obs.Register(flag.CommandLine)
	flag.Parse()

	if err := obs.Start(); err != nil {
		slog.Error("faultsim: startup failed", "err", err)
		return 1
	}
	defer cliutil.ExitOnFinishError(&obs, &exit)

	xs, err := parseIntensities(*intensities)
	if err != nil {
		slog.Error("faultsim: bad -intensities", "err", err)
		return 1
	}
	script, err := surfnet.ParseFaultScript(*scriptArg)
	if err != nil {
		slog.Error("faultsim: bad -script", "err", err)
		return 1
	}

	cfg := surfnet.DefaultExperiments()
	cfg.Context = obs.Context()
	cfg.Trials = *trials
	cfg.Requests = *requests
	cfg.MaxMessages = *maxMsgs
	cfg.Seed = *seed
	cfg.UseLP = !*greedy
	cfg.Workers = obs.Workers
	cfg.Metrics = obs.Registry
	cfg.Tracer = obs.TracerOrNil()
	cfg.Wall = obs.Wall
	cfg.Progress = obs.Progress
	cfg.Engine.RecoveryBackoff = *backoff
	cfg.Engine.RecoveryBackoffMax = *backoffMax
	cfg.Engine.ReplanAfterFails = *replanFails
	cfg.Engine.ReplanEpoch = *replanEpoch
	if script != nil {
		cfg.Engine.Faults = &surfnet.FaultProfile{Script: script}
	}

	prev := obs.Registry.Snapshot()
	slog.Info("running resilience sweep", "trials", cfg.Trials, "workers", cfg.Workers)
	rows, err := surfnet.Resilience(cfg, xs)
	if err != nil {
		slog.Error("faultsim: sweep failed", "err", err)
		return 1
	}
	fmt.Println("Resilience: designs under swept fault intensity (sufficient/good scenario)")
	fmt.Print(surfnet.FormatResilience(rows))
	if obs.Registry != nil {
		printDelta(obs.Registry.Snapshot().CounterDelta(prev))
	}
	return 0
}

// printDelta reports the sweep's counter increments, sorted for stable output.
func printDelta(delta map[string]int64) {
	if len(delta) == 0 {
		return
	}
	names := make([]string, 0, len(delta))
	for name := range delta {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("\ntelemetry delta:")
	for _, name := range names {
		fmt.Printf("  %-32s %d\n", name, delta[name])
	}
}
