#!/usr/bin/env bash
# Chaos smoke: run the resident daemon with the live fault plane armed — the
# resilience scenario at 4x intensity plus a scripted node outage landing
# immediately — and drive it with a retrying surfload while faults churn
# underneath. Asserts the robustness contract end to end: fault events and
# fault-triggered re-plans are visible on /metrics and /status, admission
# retries are honored, and a SIGTERM mid-chaos still satisfies the zero-drop
# drain (admitted == completed + failed) with a clean exit.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
stderr="$workdir/surfnetd.log"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/surfnetd" ./cmd/surfnetd
go build -o "$workdir/surfload" ./cmd/surfload

# A fast fault tick and a low replan threshold so the chaos plumbing is
# exercised within seconds: the script cuts node 1 at relative slot 0 for
# 2000 slots, and the stochastic 4x resilience scenario churns on top.
"$workdir/surfnetd" -listen 127.0.0.1:0 -queue-limit 64 -epoch-max 8 \
  -faults 4 -fault-script '0:node:1:2000' -fault-tick 25ms \
  -fault-replan-threshold 2 \
  2>"$stderr" &
pid=$!

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' "$stderr" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "surfnetd exited early"; cat "$stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no listen addr logged"; cat "$stderr"; exit 1; }
echo "surfnetd (chaos) at $addr"

for _ in $(seq 1 50); do
  curl -fsS "http://$addr/readyz" 2>/dev/null | grep -qx 'ready' && break
  sleep 0.1
done
curl -fsS "http://$addr/readyz" | grep -qx 'ready' || { echo "/readyz never became ready"; exit 1; }

# The armed scenario must be visible on the admin endpoint before any load.
curl -fsS "http://$addr/v1/faults" | python3 -c '
import json, sys
info = json.load(sys.stdin)
assert info["state"]["enabled"], info
assert info["profile"]["script"] == "0:node:1:2000", info
assert info["profile"]["fiber_crash_prob"] > 0, info
'

# A hot-swap through the admin endpoint must validate: an out-of-range target
# is a 400 and must not disturb the armed scenario.
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/v1/faults" \
  -d '{"script":"0:fiber:100000:10"}')"
[ "$code" = "400" ] || { echo "invalid fault profile accepted (HTTP $code)"; exit 1; }
curl -fsS "http://$addr/v1/faults" | python3 -c '
import json, sys
assert json.load(sys.stdin)["state"]["enabled"], "rejected profile disarmed the plane"
'

# Open-loop load with client-side retry armed: 429s are retried with
# Retry-After-seeded backoff, and each transfer carries a deadline and a
# server-side retry budget so fault-hit epochs re-queue instead of failing.
"$workdir/surfload" -addr "$addr" -rate 300 -requests 600 -seed 7 \
  -retry -retry-max 5 -deadline 60s -retry-budget 3 \
  -timeout 120s -out "$workdir/BENCH_service.json" \
  || { echo "surfload chaos run failed"; cat "$stderr"; exit 1; }

python3 - "$workdir/BENCH_service.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
[b] = [b for b in rep["benchmarks"] if b["name"] == "ServiceTransferWall"]
assert b["iterations"] >= 1, b
assert "retries/op" in b["extra"], b["extra"]
EOF

# Fault-plane metric families must be live and nonzero: the scripted outage
# alone guarantees at least one fault event, and the low threshold under 4x
# churn guarantees fault-triggered re-plans.
metrics="$workdir/metrics.txt"
curl -fsS "http://$addr/metrics" >"$metrics"
grep -q '^surfnet_fault_events_total [1-9]' "$metrics" \
  || { echo "no fault events counted in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_service_fault_invalidations_total [1-9]' "$metrics" \
  || { echo "no fault invalidations counted in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_service_replans_fault_triggered_total [1-9]' "$metrics" \
  || { echo "no fault-triggered replans counted in /metrics"; cat "$metrics"; exit 1; }

# /status must carry the fault-plane snapshot and the replan split.
curl -fsS "http://$addr/status" | python3 -c '
import json, sys
st = json.load(sys.stdin)["service"]
assert st["faults"]["enabled"], st
assert st["faults"]["events"] >= 1, st
assert st["replans_fault_triggered"] >= 1, st
assert st["admitted"] >= 1, st
for name, t in st.get("tenants", {}).items():
    assert t["admitted"] == t["completed"] + t["failed"], (name, t)
'

# SIGTERM mid-chaos: start a second load, kill the daemon, and require the
# zero-drop drain while faults are still stepping.
"$workdir/surfload" -addr "$addr" -rate 50 -requests 400 -seed 8 \
  -retry -retry-max 3 -retry-budget 2 \
  -timeout 120s >/dev/null 2>&1 &
loadpid=$!
sleep 1
kill -TERM "$pid"

wait "$pid" || { echo "surfnetd exited non-zero after SIGTERM"; cat "$stderr"; exit 1; }
kill "$loadpid" 2>/dev/null || true
wait "$loadpid" 2>/dev/null || true

drained="$(grep 'surfnetd: drained' "$stderr" | tail -1)"
[ -n "$drained" ] || { echo "no drain summary logged"; cat "$stderr"; exit 1; }
echo "$drained"
python3 - "$drained" <<'EOF'
import re, sys
line = sys.argv[1]
stats = {k: int(v) for k, v in re.findall(r"(\w+)=(\d+)", line)}
assert stats["admitted"] == stats["completed"] + stats["failed"], stats
assert stats["completed"] >= 1, stats
EOF

echo "chaos smoke test passed"
