#!/usr/bin/env bash
# Flight-recorder smoke: run the resident daemon with the live fault plane
# armed, drive it with a retrying surfload that samples flight traces, and
# assert the latency-attribution contract end to end: a trace fetched
# mid-chaos is a complete ordered timeline whose segments sum exactly to the
# transfer's admission-to-terminal wall time, /debug/bundle has the incident
# shape (status + metrics + faults + flights), flightview renders it, the
# segment and queue-wait HDR families are live on /metrics, and unmatched API
# paths answer with the JSON error envelope.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
stderr="$workdir/surfnetd.log"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/surfnetd" ./cmd/surfnetd
go build -o "$workdir/surfload" ./cmd/surfload
go build -o "$workdir/flightview" ./cmd/flightview

# Chaos armed: the 2x resilience scenario plus a scripted node outage, with a
# low replan threshold so fault stalls land within seconds.
"$workdir/surfnetd" -listen 127.0.0.1:0 -queue-limit 64 -epoch-max 8 \
  -faults 2 -fault-script '0:node:1:2000' -fault-tick 25ms \
  -fault-replan-threshold 2 \
  2>"$stderr" &
pid=$!

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' "$stderr" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "surfnetd exited early"; cat "$stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no listen addr logged"; cat "$stderr"; exit 1; }
echo "surfnetd (flight smoke) at $addr"

for _ in $(seq 1 50); do
  curl -fsS "http://$addr/readyz" 2>/dev/null | grep -qx 'ready' && break
  sleep 0.1
done
curl -fsS "http://$addr/readyz" | grep -qx 'ready' || { echo "/readyz never became ready"; exit 1; }

# Retrying load with trace sampling: the driver pulls the 5 slowest flights
# and folds their attribution into the benchjson extras.
"$workdir/surfload" -addr "$addr" -rate 300 -requests 400 -seed 7 \
  -retry -retry-max 5 -deadline 60s -retry-budget 3 -sample-traces 5 \
  -timeout 120s -out "$workdir/BENCH_service.json" \
  || { echo "surfload flight run failed"; cat "$stderr"; exit 1; }

python3 - "$workdir/BENCH_service.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
[b] = [b for b in rep["benchmarks"] if b["name"] == "ServiceTransferWall"]
extra = b["extra"]
assert extra.get("traces-sampled/op", 0) >= 1, extra
segs = [k for k in extra if k.startswith("seg-")]
assert segs, extra
assert any(extra[k] > 0 for k in segs), extra
EOF

# The incident bundle, fetched mid-chaos, must carry all four planes, and
# every retained flight must satisfy the attribution contract: gap-free seqs,
# monotone stamps, segments summing exactly to the flight's total wall time.
bundle="$workdir/bundle.json"
curl -fsS "http://$addr/debug/bundle" >"$bundle"
trace_id="$(python3 - "$bundle" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("status", "metrics", "faults", "flights"):
    assert key in doc, f"bundle missing {key!r}"
assert doc["faults"]["enabled"], doc["faults"]
assert doc["metrics"]["histograms"], "bundle metrics empty"
flights = doc["flights"]
assert flights, "no retained flights in bundle"
kinds = {"admitted", "queue_enter", "queue_exit", "epoch_assigned", "planned",
         "fault_coincident", "executed", "decode_verdict", "retry_scheduled",
         "terminal"}
for tr in flights:
    evs = tr["events"]
    assert evs[0]["kind"] == "admitted", evs[0]
    assert evs[-1]["kind"] == "terminal", evs[-1]
    for i, ev in enumerate(evs):
        assert ev["kind"] in kinds, ev
        assert ev["seq"] == i, (tr["id"], i, ev)
        if i:
            assert ev["wall_ns"] >= evs[i - 1]["wall_ns"], (tr["id"], i)
    total = sum(s["wall_ns"] for s in tr["segments"])
    assert total == tr["total_wall_ns"], (tr["id"], total, tr["total_wall_ns"])
print(flights[0]["id"])
EOF
)"
[ -n "$trace_id" ] || { echo "no flight ID extracted from bundle"; exit 1; }

# The same flight must be fetchable as a standalone trace, identical contract.
curl -fsS "http://$addr/v1/transfers/$trace_id/trace" | python3 -c '
import json, sys
tr = json.load(sys.stdin)
total = sum(s["wall_ns"] for s in tr["segments"])
assert total == tr["total_wall_ns"], (total, tr["total_wall_ns"])
assert abs(tr["total_seconds"] - tr["total_wall_ns"] / 1e9) < 1e-12, tr
assert tr["events"][-1]["kind"] == "terminal", tr["events"][-1]
'

# flightview renders both the bundle (with rollup) and a single trace.
"$workdir/flightview" "$bundle" >"$workdir/flightview.txt"
grep -q "flight $trace_id" "$workdir/flightview.txt" \
  && grep -q "attribution" "$workdir/flightview.txt" \
  || { echo "flightview rendering incomplete"; cat "$workdir/flightview.txt"; exit 1; }
curl -fsS "http://$addr/v1/transfers/$trace_id/trace" | "$workdir/flightview" \
  | grep -q "flight $trace_id" || { echo "flightview failed on a bare trace"; exit 1; }

# Unknown IDs and unmatched /v1/ paths answer with the JSON error envelope.
for path in "/v1/transfers/t-404/trace" "/v1/transfers/t-404" "/v1/nonexistent"; do
  body="$workdir/err.json"
  code="$(curl -s -o "$body" -w '%{http_code}' "http://$addr$path")"
  [ "$code" = "404" ] || { echo "GET $path = HTTP $code, want 404"; exit 1; }
  python3 -c 'import json, sys; assert json.load(open(sys.argv[1]))["error"]' "$body" \
    || { echo "GET $path: body is not the JSON error envelope"; cat "$body"; exit 1; }
done

# The attribution and queue-pressure metric families must be live.
metrics="$workdir/metrics.txt"
curl -fsS "http://$addr/metrics" >"$metrics"
for family in \
  surfnet_service_segment_execute_wall_seconds_count \
  surfnet_service_segment_plan_wall_seconds_count \
  surfnet_service_segment_queue_wait_wall_seconds_count \
  surfnet_service_queue_wait_wall_seconds_count; do
  grep -q "^$family [1-9]" "$metrics" \
    || { echo "$family missing or zero in /metrics"; grep surfnet_service_ "$metrics" || true; exit 1; }
done
grep -q '^surfnet_service_queue_depth ' "$metrics" \
  || { echo "queue depth gauge missing from /metrics"; exit 1; }
grep -q '^surfnet_service_queue_depth_sampled_count [1-9]' "$metrics" \
  || { echo "queue depth sampling histogram empty"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "surfnetd exited non-zero after SIGTERM"; cat "$stderr"; exit 1; }

echo "flight smoke test passed"
