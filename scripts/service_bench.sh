#!/usr/bin/env bash
# Service-level perf ledger: run the canonical surfload scenario (1000
# open-loop Poisson arrivals at 500/s, seed 7) against a freshly launched
# surfnetd and write the admission-to-completion latency percentiles to
# BENCH_service.json.
#
# Usage:
#   service_bench.sh            regenerate BENCH_service.json in place
#   service_bench.sh diff       regenerate to a scratch file and gate it
#                               against the committed BENCH_service.json
#                               with cmd/benchdiff
#
# Tunables (environment, diff mode):
#   SERVICE_TOL   ns/op tolerance band (default 3.0 — wall latency of a live
#                 service varies with host load far more than a micro-
#                 benchmark, so the band is wide; the percentile extras ride
#                 along ungated)
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-generate}"
workdir="$(mktemp -d)"
stderr="$workdir/surfnetd.log"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/surfnetd" ./cmd/surfnetd
go build -o "$workdir/surfload" ./cmd/surfload

"$workdir/surfnetd" -listen 127.0.0.1:0 -queue-limit 64 -epoch-max 8 \
  2>"$stderr" &
pid=$!

addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' "$stderr" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "surfnetd exited early"; cat "$stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no listen addr logged"; cat "$stderr"; exit 1; }

out="BENCH_service.json"
[ "$mode" = "diff" ] && out="$workdir/BENCH_new.json"

"$workdir/surfload" -addr "$addr" -rate 500 -requests 1000 -seed 7 \
  -timeout 120s -out "$out" \
  || { echo "surfload run failed"; cat "$stderr"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "surfnetd exited non-zero on drain"; cat "$stderr"; exit 1; }

if [ "$mode" = "diff" ]; then
  go run ./cmd/benchdiff -tol "${SERVICE_TOL:-3.0}" -bytes-tol 10 -alloc-tol 10 \
    BENCH_service.json "$out"
else
  echo "wrote $out"
fi
