#!/usr/bin/env bash
# Perf-regression ledger gate: regenerate the benchmark snapshot through
# `make bench-json` and diff it against the checked-in BENCH_decoder.json
# with cmd/benchdiff, failing on any gated regression.
#
# Tunables (environment):
#   BENCHTIME            per-benchmark budget for the fresh snapshot. Default
#                        1s — the same budget `make bench-json` writes the
#                        ledger with, so one-time lazy-init allocations
#                        amortize identically on both sides; a shorter
#                        benchtime here would show up as phantom B/op and
#                        allocs/op drift against the ledger.
#   BENCHDIFF_TOL        ns/op tolerance band (default 0.2; CI widens this
#                        because its hardware differs from the ledger's)
#   BENCHDIFF_BYTES_TOL  B/op tolerance band (default 0.1)
#   BENCHDIFF_ALLOC_TOL  allocs/op tolerance band (default 0.01 — allocs are
#                        machine-independent, but per-op averages of
#                        amortized setup can flutter by ±1 on hundreds of
#                        allocs; 1% absorbs that while any real added
#                        allocation in a lean loop still fails)
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"

# The baseline is the ledger as it sits in the working tree (normally the
# committed one). Save it aside and restore it afterwards, so regenerating
# the snapshot never clobbers an uncommitted ledger update.
base="$workdir/BENCH_base.json"
new="$workdir/BENCH_new.json"
cp BENCH_decoder.json "$base"
restore() { cp "$base" BENCH_decoder.json; rm -rf "$workdir"; }
trap restore EXIT

make bench-json BENCHTIME="${BENCHTIME:-1s}" >/dev/null
mv BENCH_decoder.json "$new"
cp "$base" BENCH_decoder.json

go run ./cmd/benchdiff \
    -tol "${BENCHDIFF_TOL:-0.2}" \
    -bytes-tol "${BENCHDIFF_BYTES_TOL:-0.1}" \
    -alloc-tol "${BENCHDIFF_ALLOC_TOL:-0.01}" \
    "$base" "$new"
