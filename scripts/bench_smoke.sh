#!/usr/bin/env bash
# Smoke-test the benchmark trajectory pipeline: regenerate BENCH_decoder.json
# through `make bench-json` on a very short benchtime, then assert every
# expected benchmark family is present so perf history stays machine-readable.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Run against a scratch copy so a smoke run never clobbers the
# full-benchtime trajectory — including an uncommitted ledger refresh
# sitting in the working tree, so save/restore rather than git checkout.
out="$workdir/BENCH_decoder.json"
cp BENCH_decoder.json "$workdir/BENCH_saved.json"
make bench-json BENCHTIME=10x >/dev/null
mv BENCH_decoder.json "$out"
cp "$workdir/BENCH_saved.json" BENCH_decoder.json

python3 - "$out" <<'EOF'
import json
import sys

report = json.load(open(sys.argv[1]))
names = [b["name"] for b in report["benchmarks"]]
expected = [
    "BenchmarkSurfNetDecoder/",
    "BenchmarkUnionFindDecoder/",
    "BenchmarkMWPMDecoder/",
    "BenchmarkMWPMDecode/d=5/dense",
    "BenchmarkMWPMDecode/d=5/scratch",
    "BenchmarkDecodeFrameAllocs/",
    "BenchmarkRunOverhead/",
    "BenchmarkDecodeWallLatency/",
    "BenchmarkBatchSample/",
    "BenchmarkBatchDecode/fig8/d=9/packed",
    "BenchmarkBatchDecode/fig8/d=9/scalar",
    "BenchmarkBatchDecode/erasure/d=9/packed",
    "BenchmarkBatchDecode/erasure/d=9/scalar",
]
missing = [e for e in expected if not any(n.startswith(e) for n in names)]
if missing:
    sys.exit(f"BENCH_decoder.json is missing benchmark families: {missing}\npresent: {names}")
for b in report["benchmarks"]:
    if b["ns_per_op"] <= 0:
        sys.exit(f"suspicious ns_per_op in {b['name']}: {b['ns_per_op']}")
    # The wall-latency family must carry its percentile extras so tail
    # regressions stay visible in the trajectory.
    if b["name"].startswith("BenchmarkDecodeWallLatency/"):
        extra = b.get("extra", {})
        for unit in ("p50-ns/op", "p99-ns/op", "p999-ns/op"):
            if extra.get(unit, 0) <= 0:
                sys.exit(f"{b['name']} missing percentile metric {unit}: {extra}")
    # The packed-vs-scalar families report ns/trial so the 64-lane ops stay
    # directly comparable with the scalar rows.
    if b["name"].startswith(("BenchmarkBatchSample/", "BenchmarkBatchDecode/")):
        if b.get("extra", {}).get("ns/trial", 0) <= 0:
            sys.exit(f"{b['name']} missing ns/trial metric: {b.get('extra')}")
print(f"bench smoke OK: {len(names)} benchmarks, all expected families present")
EOF
