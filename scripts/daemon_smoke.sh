#!/usr/bin/env bash
# Smoke-test the resident control-plane daemon end to end: launch surfnetd on
# an ephemeral port, drive it with a 1000-request open-loop surfload run, and
# assert the service surface (admission, shed counters on /metrics, per-tenant
# /status accounting, latency percentiles in BENCH_service.json). Then start a
# second load and SIGTERM the daemon mid-run: /readyz must leave ready, the
# drain must complete every admitted transfer (admitted == completed + failed,
# the zero-drop contract), and the process must exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
stderr="$workdir/surfnetd.log"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/surfnetd" ./cmd/surfnetd
go build -o "$workdir/surfload" ./cmd/surfload

"$workdir/surfnetd" -listen 127.0.0.1:0 -queue-limit 64 -epoch-max 8 \
  2>"$stderr" &
pid=$!

# The resolved ephemeral address is logged as addr=HOST:PORT on stderr.
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' "$stderr" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "surfnetd exited early"; cat "$stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no listen addr logged"; cat "$stderr"; exit 1; }
echo "surfnetd at $addr"

# Resident lifecycle: the daemon reports ready once it owns network state and
# the API routes are mounted.
for _ in $(seq 1 50); do
  curl -fsS "http://$addr/readyz" 2>/dev/null | grep -qx 'ready' && break
  sleep 0.1
done
curl -fsS "http://$addr/readyz" | grep -qx 'ready' || { echo "/readyz never became ready"; exit 1; }
curl -fsS "http://$addr/v1/network" | python3 -c '
import json, sys
net = json.load(sys.stdin)
users = [n for n in net["nodes"] if n["role"] == "user"]
assert len(users) >= 2, net
assert net["fibers"], net
'

# Phase 1: a 1000-request open-loop run. The rate deliberately exceeds what
# the daemon absorbs with this queue bound, so admission control must shed —
# surfload exits 0 as long as nothing errors or times out.
"$workdir/surfload" -addr "$addr" -rate 500 -requests 1000 -seed 7 \
  -timeout 120s -out "$workdir/BENCH_service.json" \
  || { echo "surfload run failed"; cat "$stderr"; exit 1; }

python3 - "$workdir/BENCH_service.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
[b] = [b for b in rep["benchmarks"] if b["name"] == "ServiceTransferWall"]
assert b["iterations"] >= 1, b
assert b["ns_per_op"] > 0, b
for k in ("p50-ns/op", "p90-ns/op", "p99-ns/op"):
    assert b["extra"][k] > 0, (k, b)
assert b["extra"]["p99-ns/op"] >= b["extra"]["p50-ns/op"], b
EOF

# The service metric families must be live on /metrics: queue depth gauge,
# admission and shed counters (shed strictly positive after the overload).
metrics="$workdir/metrics.txt"
curl -fsS "http://$addr/metrics" >"$metrics"
grep -q '^# TYPE surfnet_service_queue_depth gauge' "$metrics" \
  || { echo "no queue depth gauge in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_service_admitted_total [1-9]' "$metrics" \
  || { echo "no admissions counted in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_service_shed_total [1-9]' "$metrics" \
  || { echo "overload did not shed (or shed not counted) in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_service_epochs_total [1-9]' "$metrics" \
  || { echo "no epochs counted in /metrics"; cat "$metrics"; exit 1; }

# /status must embed the service snapshot with per-tenant accounting.
curl -fsS "http://$addr/status" | python3 -c '
import json, sys
st = json.load(sys.stdin)["service"]
assert st["admitted"] >= 1, st
assert st["completed"] >= 1, st
assert st["shed"] >= 1, st
assert st["queue_depth"] >= 0, st
assert st["tenants"], st
for name, t in st["tenants"].items():
    assert t["admitted"] == t["completed"] + t["failed"] + 0, (name, t)
'

# Phase 2: SIGTERM mid-load. Arrivals are slow enough that transfers are
# still in flight when the signal lands; the daemon must flip /readyz off,
# complete every admitted transfer, and exit 0.
"$workdir/surfload" -addr "$addr" -rate 50 -requests 400 -seed 8 \
  -timeout 120s >/dev/null 2>&1 &
loadpid=$!
sleep 1
kill -TERM "$pid"

# From this point /readyz must never report ready again (503 while draining,
# connection refused once the process is gone).
for _ in $(seq 1 100); do
  out="$(curl -fsS "http://$addr/readyz" 2>/dev/null || true)"
  [ "$out" = "ready" ] && { echo "/readyz still ready after SIGTERM"; exit 1; }
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done

wait "$pid" || { echo "surfnetd exited non-zero after SIGTERM"; cat "$stderr"; exit 1; }
kill "$loadpid" 2>/dev/null || true
wait "$loadpid" 2>/dev/null || true

# The drain summary is the zero-drop contract: every admitted transfer
# reached a terminal state before exit.
drained="$(grep 'surfnetd: drained' "$stderr" | tail -1)"
[ -n "$drained" ] || { echo "no drain summary logged"; cat "$stderr"; exit 1; }
echo "$drained"
python3 - "$drained" <<'EOF'
import re, sys
line = sys.argv[1]
stats = {k: int(v) for k, v in re.findall(r"(\w+)=(\d+)", line)}
assert stats["admitted"] == stats["completed"] + stats["failed"], stats
assert stats["completed"] >= 1, stats
EOF

echo "daemon smoke test passed"
