#!/usr/bin/env bash
# Smoke-test the live observability plane: launch surfnetsim with -listen on
# an ephemeral port and a workload long enough to scrape mid-run, then assert
# /metrics serves well-formed Prometheus exposition, /healthz answers ok, and
# /status reports live sweep progress. Runs with -wall and a deliberately
# unmeetable -slot-budget so the wall-clock histogram families and the
# budget-overrun counter must appear in /metrics.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
stderr="$workdir/stderr.log"
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/surfnetsim" ./cmd/surfnetsim

# -slot-budget 1ns: every span overruns, so the overrun counter is
# deterministically nonzero by the time the run ends.
"$workdir/surfnetsim" -fig 6a,6b1,7 -trials 40 -requests 6 \
  -wall -slot-budget 1ns \
  -listen 127.0.0.1:0 >"$workdir/stdout.log" 2>"$stderr" &
pid=$!

# The resolved ephemeral address is logged as addr=HOST:PORT on stderr.
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's/.*observability server listening.*addr=\([0-9.:]*\).*/\1/p' "$stderr" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "surfnetsim exited early"; cat "$stderr"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] && echo "obs server at $addr" || { echo "no listen addr logged"; cat "$stderr"; exit 1; }

curl -fsS "http://$addr/healthz" | grep -qx 'ok' || { echo "/healthz not ok"; exit 1; }
curl -fsS "http://$addr/readyz"  | grep -qx 'ready' || { echo "/readyz not ready"; exit 1; }

# /metrics must be well-formed Prometheus text exposition: every TYPE'd
# metric prefixed with surfnet_, and every sample line NAME VALUE (with
# optional {labels}).
metrics="$workdir/metrics.txt"
for _ in $(seq 1 100); do
  curl -fsS "http://$addr/metrics" >"$metrics"
  [ -s "$metrics" ] && grep -q '^surfnet_' "$metrics" && break
  kill -0 "$pid" 2>/dev/null || { echo "run ended before metrics appeared"; break; }
  sleep 0.1
done
grep -q '^# TYPE surfnet_[a-z0-9_]* \(counter\|gauge\|histogram\)$' "$metrics" \
  || { echo "no TYPE lines in /metrics"; cat "$metrics"; exit 1; }
bad="$(grep -v '^#' "$metrics" | grep -cv '^surfnet_[A-Za-z0-9_]*\({[^}]*}\)\? -\?[0-9+.eEInfNa-]*$' || true)"
[ "$bad" -eq 0 ] || { echo "$bad malformed sample lines in /metrics"; cat "$metrics"; exit 1; }
grep -q '_total ' "$metrics" || { echo "no counters in /metrics"; cat "$metrics"; exit 1; }

# Wall-clock latency observability (-wall -slot-budget): the dual-clock span
# histograms and the budget-overrun counter must materialize once the first
# spans complete. With a 1ns budget every checked span overruns, so the
# counter is strictly positive.
for _ in $(seq 1 200); do
  if grep -q '^surfnet_slot_wall_seconds_count [1-9]' "$metrics" \
    && grep -q '^surfnet_decode_wall_seconds_count [1-9]' "$metrics" \
    && grep -q '^surfnet_budget_overruns_total [1-9]' "$metrics"; then
    break
  fi
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
  curl -fsS "http://$addr/metrics" >"$metrics" || true
done
grep -q '^surfnet_slot_wall_seconds_count [1-9]' "$metrics" \
  || { echo "no slot wall-latency histogram in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_decode_wall_seconds_count [1-9]' "$metrics" \
  || { echo "no decode wall-latency histogram in /metrics"; cat "$metrics"; exit 1; }
grep -q '^surfnet_budget_overruns_total [1-9]' "$metrics" \
  || { echo "no budget overruns counted in /metrics"; cat "$metrics"; exit 1; }

# /status must be JSON with live cell progress.
status="$workdir/status.json"
curl -fsS "http://$addr/status" >"$status"
python3 - "$status" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["ready"] is True, st
assert st["cells_started"] >= 1, st
assert st["trials_total"] >= 1, st
assert isinstance(st.get("cells", []), list), st
b = st.get("budget")
assert b is not None, st
assert b["limit_seconds"] > 0, b
assert b["checked"] >= 1 and b["overruns"] >= 1, b
assert 0 < b["burn_rate"] <= 1, b
EOF

# pprof must be fetchable during the run (if it is still running).
if kill -0 "$pid" 2>/dev/null; then
  curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null || { echo "pprof unreachable"; exit 1; }
fi

wait "$pid" || { echo "surfnetsim failed"; cat "$stderr"; exit 1; }
echo "obs smoke test passed"
