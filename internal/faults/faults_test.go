package faults

import (
	"math"
	"reflect"
	"testing"

	"surfnet/internal/network"
	"surfnet/internal/rng"
)

// testNet builds user(0)-switch(1)-server(2)-user(3) plus a detour fiber 1-3.
func testNet(t *testing.T) *network.Network {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 100},
		{ID: 2, Role: network.Server, Capacity: 100},
		{ID: 3, Role: network.User},
	}
	fibers := []network.Fiber{
		{ID: 0, A: 0, B: 1, Fidelity: 0.9, EntPairs: 10, EntRate: 0.5, LossProb: 0.01},
		{ID: 1, A: 1, B: 2, Fidelity: 0.9, EntPairs: 10, EntRate: 0.5, LossProb: 0.01},
		{ID: 2, A: 2, B: 3, Fidelity: 0.9, EntPairs: 10, EntRate: 0.5, LossProb: 0.01},
		{ID: 3, A: 1, B: 3, Fidelity: 0.8, EntPairs: 10, EntRate: 0.5, LossProb: 0.01},
	}
	net, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	return net
}

// allFibers enumerates every fiber of net in ID order.
func allFibers(net *network.Network) func(visit func(fi int)) {
	return func(visit func(fi int)) {
		for fi := 0; fi < net.NumFibers(); fi++ {
			visit(fi)
		}
	}
}

// stepAll drives inj for slots slots, collecting events.
func stepAll(net *network.Network, inj Injector, src *rng.Source, slots int) []Event {
	var events []Event
	for slot := 0; slot < slots; slot++ {
		inj.Step(Scope{
			Slot:   slot,
			Src:    src,
			Fibers: allFibers(net),
			Nodes: func(visit func(v int)) {
				visit(2) // the server
			},
		}, func(ev Event) { events = append(events, ev) })
	}
	return events
}

func TestFiberCrashesDeterministic(t *testing.T) {
	net := testNet(t)
	run := func() []Event {
		inj := NewFiberCrashes(0.2, 3)
		return stepAll(net, inj, rng.New(7), 50)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no events sampled at 20% crash probability over 50 slots")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different event streams:\n%v\n%v", a, b)
	}
	// Every crash must be followed (or terminated by run end) and each
	// repair must match an earlier crash.
	down := map[int]bool{}
	for _, ev := range a {
		switch ev.Kind {
		case FiberCrash:
			if down[ev.ID] {
				t.Fatalf("fiber %d crashed while already down at slot %d", ev.ID, ev.Slot)
			}
			down[ev.ID] = true
			if ev.Until != ev.Slot+3 {
				t.Fatalf("crash until %d, want %d", ev.Until, ev.Slot+3)
			}
		case FiberRepair:
			if !down[ev.ID] {
				t.Fatalf("fiber %d repaired without a crash at slot %d", ev.ID, ev.Slot)
			}
			down[ev.ID] = false
		default:
			t.Fatalf("unexpected event kind %v", ev.Kind)
		}
	}
}

func TestFiberCrashesRepairExpiry(t *testing.T) {
	inj := NewFiberCrashes(1, 2) // crash every visited fiber, 2-slot repairs
	src := rng.New(1)
	one := func(visit func(fi int)) { visit(0) }
	inj.Step(Scope{Slot: 0, Src: src, Fibers: one}, nil)
	if !inj.FiberDown(0) {
		t.Fatal("fiber 0 should be down after certain crash")
	}
	inj.Step(Scope{Slot: 1, Src: src, Fibers: one}, nil)
	if !inj.FiberDown(0) {
		t.Fatal("fiber 0 should stay down within the repair window")
	}
	// Slot 2: repair expires, and with prob 1 it immediately crashes again.
	var kinds []Kind
	inj.Step(Scope{Slot: 2, Src: src, Fibers: one}, func(ev Event) { kinds = append(kinds, ev.Kind) })
	if !reflect.DeepEqual(kinds, []Kind{FiberRepair, FiberCrash}) {
		t.Fatalf("slot 2 events = %v, want [fiber_repair fiber_crash]", kinds)
	}
}

func TestNodeOutages(t *testing.T) {
	inj := NewNodeOutages(1, 5)
	src := rng.New(1)
	inj.Step(Scope{Slot: 0, Src: src, Nodes: func(visit func(v int)) { visit(2) }}, nil)
	if !inj.NodeDown(2) {
		t.Fatal("node 2 should be down")
	}
	if inj.NodeDown(1) {
		t.Fatal("node 1 was never in scope")
	}
	if inj.FiberDown(0) {
		t.Fatal("node outages must not down fibers")
	}
}

func TestRegionalDownsIncidentFibers(t *testing.T) {
	net := testNet(t)
	inj := NewRegional(net, 1, 4)
	src := rng.New(1)
	var events []Event
	// Scope only fiber 1 (nodes 1 and 2): both endpoints crash regionally.
	inj.Step(Scope{Slot: 0, Src: src, Fibers: func(visit func(fi int)) { visit(1) }},
		func(ev Event) { events = append(events, ev) })
	if len(events) != 2 || events[0].Kind != RegionCrash || events[1].Kind != RegionCrash {
		t.Fatalf("events = %v, want two region crashes", events)
	}
	if !inj.NodeDown(1) || !inj.NodeDown(2) {
		t.Fatal("struck region nodes should be down")
	}
	// Node 1's incident fibers: 0, 1, 3; node 2's: 1, 2. All down together.
	for fi := 0; fi < net.NumFibers(); fi++ {
		if !inj.FiberDown(fi) {
			t.Fatalf("fiber %d should be down with both its regions struck", fi)
		}
	}
}

func TestDriftDecaysAndRecovers(t *testing.T) {
	inj := NewDrift(1, 3, 0.9)
	src := rng.New(1)
	one := func(visit func(fi int)) { visit(0) }
	inj.Step(Scope{Slot: 0, Src: src, Fibers: one}, nil)
	if inj.FiberDown(0) {
		t.Fatal("drift must not take the fiber down")
	}
	// Episode starts at slot 0: gamma scaled by 0.9^(slot-start+1).
	for k, slot := range []int{0, 1, 2} {
		inj.Step(Scope{Slot: slot, Src: src, Fibers: one}, nil)
		want := 0.95 * math.Pow(0.9, float64(k+1))
		if got := inj.Gamma(0, 0.95); math.Abs(got-want) > 1e-12 {
			t.Fatalf("slot %d: gamma = %v, want %v", slot, got, want)
		}
	}
	// Slot 3: the 3-slot window ends; with prob 1 a fresh episode begins,
	// so the decay restarts at one slot's worth.
	var kinds []Kind
	inj.Step(Scope{Slot: 3, Src: src, Fibers: one}, func(ev Event) { kinds = append(kinds, ev.Kind) })
	if !reflect.DeepEqual(kinds, []Kind{DriftEnd, DriftStart}) {
		t.Fatalf("slot 3 events = %v, want [drift_end drift_start]", kinds)
	}
	if got, want := inj.Gamma(0, 0.95), 0.95*0.9; math.Abs(got-want) > 1e-12 {
		t.Fatalf("fresh episode gamma = %v, want %v", got, want)
	}
}

func TestScriptedTimetable(t *testing.T) {
	inj := NewScripted([]ScriptedFault{
		{Slot: 5, Duration: 3, ID: 1},            // fiber 1 down slots 5-7
		{Slot: 2, Duration: 4, Node: true, ID: 2}, // node 2 down slots 2-5
	})
	src := rng.New(1)
	downAt := map[int]bool{}
	nodeAt := map[int]bool{}
	for slot := 0; slot < 10; slot++ {
		inj.Step(Scope{Slot: slot, Src: src}, nil)
		downAt[slot] = inj.FiberDown(1)
		nodeAt[slot] = inj.NodeDown(2)
	}
	for slot := 0; slot < 10; slot++ {
		wantFiber := slot >= 5 && slot < 8
		wantNode := slot >= 2 && slot < 6
		if downAt[slot] != wantFiber {
			t.Errorf("slot %d: fiber 1 down = %v, want %v", slot, downAt[slot], wantFiber)
		}
		if nodeAt[slot] != wantNode {
			t.Errorf("slot %d: node 2 down = %v, want %v", slot, nodeAt[slot], wantNode)
		}
	}
}

func TestComposeSemantics(t *testing.T) {
	if Compose() != nil {
		t.Fatal("empty compose should be nil")
	}
	if Compose(nil, nil) != nil {
		t.Fatal("all-nil compose should be nil")
	}
	fc := NewFiberCrashes(0.5, 2)
	if Compose(nil, fc) != fc {
		t.Fatal("single-child compose should return the child")
	}
	inj := Compose(
		NewScripted([]ScriptedFault{{Slot: 0, Duration: 10, ID: 0}}),
		NewScripted([]ScriptedFault{{Slot: 0, Duration: 10, Node: true, ID: 1}}),
	)
	inj.Step(Scope{Slot: 0, Src: rng.New(1)}, nil)
	if !inj.FiberDown(0) || !inj.NodeDown(1) {
		t.Fatal("composed injector must surface both children's faults")
	}
	if inj.FiberDown(1) || inj.NodeDown(0) {
		t.Fatal("composed injector invented faults")
	}
}

func TestProfileBuildAndValidate(t *testing.T) {
	net := testNet(t)
	if (Profile{}).Enabled() {
		t.Fatal("zero profile should be disabled")
	}
	if (Profile{}).Build(net) != nil {
		t.Fatal("zero profile should build a nil injector")
	}
	ok := Profile{
		FiberCrashProb: 0.1, FiberRepairSlots: 5,
		NodeOutageProb: 0.05, NodeRepairSlots: 8,
		RegionalProb: 0.01, RegionalRepairSlots: 6,
		DriftProb: 0.1, DriftWindow: 12, DriftDecay: 0.95,
		Script: []ScriptedFault{{Slot: 3, Duration: 2, ID: 1}},
	}
	if err := ok.ValidateAgainst(net); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if ok.Build(net) == nil {
		t.Fatal("enabled profile built a nil injector")
	}
	bad := []Profile{
		{FiberCrashProb: -0.1},
		{FiberCrashProb: 1.5},
		{FiberCrashProb: 0.1, FiberRepairSlots: -1},
		{NodeOutageProb: 2},
		{NodeOutageProb: 0.1, NodeRepairSlots: -2},
		{RegionalProb: -1},
		{DriftProb: 1.1},
		{DriftProb: 0.1, DriftWindow: -1},
		{DriftProb: 0.1, DriftDecay: 1.5},
		{Script: []ScriptedFault{{Slot: -1}}},
		{Script: []ScriptedFault{{Duration: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
	outOfRange := []Profile{
		{Script: []ScriptedFault{{Slot: 0, Duration: 1, ID: 99}}},
		{Script: []ScriptedFault{{Slot: 0, Duration: 1, Node: true, ID: 99}}},
	}
	for i, p := range outOfRange {
		if err := p.ValidateAgainst(net); err == nil {
			t.Errorf("out-of-range script %d accepted", i)
		}
	}
}

// TestComposedProfileDeterministic pins the whole-profile determinism
// contract: identical seeds and scopes produce identical event streams and
// fault state, regardless of how many scenario components are active.
func TestComposedProfileDeterministic(t *testing.T) {
	net := testNet(t)
	p := Profile{
		FiberCrashProb: 0.1, FiberRepairSlots: 4,
		NodeOutageProb: 0.05, NodeRepairSlots: 6,
		RegionalProb: 0.02, RegionalRepairSlots: 5,
		DriftProb: 0.1, DriftWindow: 8, DriftDecay: 0.97,
		Script: []ScriptedFault{{Slot: 10, Duration: 20, ID: 2}},
	}
	run := func() ([]Event, []float64) {
		inj := p.Build(net)
		src := rng.New(42)
		var events []Event
		var gammas []float64
		for slot := 0; slot < 60; slot++ {
			inj.Step(Scope{
				Slot:   slot,
				Src:    src,
				Fibers: allFibers(net),
				Nodes:  func(visit func(v int)) { visit(2) },
			}, func(ev Event) { events = append(events, ev) })
			for fi := 0; fi < net.NumFibers(); fi++ {
				gammas = append(gammas, inj.Gamma(fi, net.Fiber(fi).Fidelity))
			}
		}
		return events, gammas
	}
	ev1, g1 := run()
	ev2, g2 := run()
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatal("event streams diverge across identical runs")
	}
	if !reflect.DeepEqual(g1, g2) {
		t.Fatal("gamma streams diverge across identical runs")
	}
	if len(ev1) == 0 {
		t.Fatal("composed profile produced no events in 60 slots")
	}
}
