package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatScript renders a script back into the textual form ParseScript
// accepts, for echoing armed scenarios over the admin API. A nil script
// yields the empty string.
func FormatScript(script []ScriptedFault) string {
	parts := make([]string, len(script))
	for i, ev := range script {
		target := "fiber"
		if ev.Node {
			target = "node"
		}
		parts[i] = fmt.Sprintf("%d:%s:%d:%d", ev.Slot, target, ev.ID, ev.Duration)
	}
	return strings.Join(parts, ",")
}

// ParseScript parses a scripted outage timetable from its textual CLI/API
// form: comma-separated SLOT:fiber|node:ID:DURATION entries ("cut fiber 3 at
// slot 40 for 60 slots" is 40:fiber:3:60). An empty or all-space string
// yields a nil script. Shared by cmd/faultsim (-script), cmd/surfnetd
// (-fault-script), and the daemon's POST /v1/faults admin endpoint.
func ParseScript(arg string) ([]ScriptedFault, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	var script []ScriptedFault
	for _, part := range strings.Split(arg, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("bad script entry %q (want SLOT:fiber|node:ID:DURATION)", part)
		}
		slot, err1 := strconv.Atoi(fields[0])
		id, err2 := strconv.Atoi(fields[2])
		dur, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("bad script entry %q (want SLOT:fiber|node:ID:DURATION)", part)
		}
		var node bool
		switch fields[1] {
		case "fiber":
		case "node":
			node = true
		default:
			return nil, fmt.Errorf("bad script target %q (want fiber or node)", fields[1])
		}
		script = append(script, ScriptedFault{Slot: slot, Duration: dur, Node: node, ID: id})
	}
	return script, nil
}
