package faults

import (
	"errors"
	"fmt"

	"surfnet/internal/network"
)

// ErrProfile is returned for invalid fault profiles.
var ErrProfile = errors.New("faults: invalid profile")

// Profile is the declarative fault scenario attached to an engine Config:
// zero values switch each component off, so the zero Profile injects
// nothing. Build compiles it into the live Injector for one transfer.
type Profile struct {
	// FiberCrashProb is the per-slot probability that an in-play fiber
	// crashes (the paper's §V-B model; the engine folds its legacy
	// FiberFailProb field into this when the profile leaves it zero).
	FiberCrashProb float64
	// FiberRepairSlots is how long a crashed fiber stays down.
	FiberRepairSlots int

	// NodeOutageProb is the per-slot probability that an upcoming
	// error-correction server goes out of service; the engine then skips
	// that correction and the code degrades to destination-only decoding.
	NodeOutageProb float64
	// NodeRepairSlots is how long a node outage lasts.
	NodeRepairSlots int

	// RegionalProb is the per-slot probability of a correlated regional
	// failure at a node touched by the remaining route: the node and all
	// its incident fibers go down together.
	RegionalProb float64
	// RegionalRepairSlots is how long a regional outage lasts.
	RegionalRepairSlots int

	// DriftProb is the per-slot probability that an in-play fiber enters a
	// fidelity-drift episode.
	DriftProb float64
	// DriftWindow is the episode length in slots; zero selects 10.
	DriftWindow int
	// DriftDecay is the per-slot multiplicative gamma decay during an
	// episode; zero selects 0.98.
	DriftDecay float64

	// Script is an exact outage timetable applied on top of the stochastic
	// scenarios.
	Script []ScriptedFault

	// DownFibers, DownNodes, and GammaScale form the static overlay: the
	// listed fibers and nodes are down for the whole transfer, and fiber fi's
	// nominal fidelity is multiplied by GammaScale[fi]. A resident control
	// plane snapshots its live fault state into these fields at each epoch
	// boundary so every transfer of the epoch sees one consistent network,
	// while the stochastic components above stay per-transfer Monte Carlo.
	// The overlay consumes no randomness, keeping runs worker-invariant.
	DownFibers []int
	DownNodes  []int
	GammaScale map[int]float64
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.FiberCrashProb > 0 || p.NodeOutageProb > 0 || p.RegionalProb > 0 ||
		p.DriftProb > 0 || len(p.Script) > 0 ||
		len(p.DownFibers) > 0 || len(p.DownNodes) > 0 || len(p.GammaScale) > 0
}

// driftWindow resolves the default episode length.
func (p Profile) driftWindow() int {
	if p.DriftWindow == 0 {
		return 10
	}
	return p.DriftWindow
}

// driftDecay resolves the default per-slot decay.
func (p Profile) driftDecay() float64 {
	if p.DriftDecay == 0 {
		return 0.98
	}
	return p.DriftDecay
}

// Validate checks the profile's parameters.
func (p Profile) Validate() error {
	check := func(name string, prob float64, repair int) error {
		if prob < 0 || prob > 1 {
			return fmt.Errorf("%w: %s probability %v", ErrProfile, name, prob)
		}
		if repair < 0 {
			return fmt.Errorf("%w: %s repair slots %d < 0", ErrProfile, name, repair)
		}
		return nil
	}
	if err := check("fiber-crash", p.FiberCrashProb, p.FiberRepairSlots); err != nil {
		return err
	}
	if err := check("node-outage", p.NodeOutageProb, p.NodeRepairSlots); err != nil {
		return err
	}
	if err := check("regional", p.RegionalProb, p.RegionalRepairSlots); err != nil {
		return err
	}
	if p.DriftProb < 0 || p.DriftProb > 1 {
		return fmt.Errorf("%w: drift probability %v", ErrProfile, p.DriftProb)
	}
	if p.DriftWindow < 0 {
		return fmt.Errorf("%w: drift window %d < 0", ErrProfile, p.DriftWindow)
	}
	if p.DriftDecay < 0 || p.DriftDecay > 1 {
		return fmt.Errorf("%w: drift decay %v outside [0,1]", ErrProfile, p.DriftDecay)
	}
	for i, ev := range p.Script {
		if ev.Slot < 0 || ev.Duration < 0 || ev.ID < 0 {
			return fmt.Errorf("%w: script event %d (slot %d, duration %d, id %d)",
				ErrProfile, i, ev.Slot, ev.Duration, ev.ID)
		}
	}
	for _, fi := range p.DownFibers {
		if fi < 0 {
			return fmt.Errorf("%w: overlay fiber %d < 0", ErrProfile, fi)
		}
	}
	for _, v := range p.DownNodes {
		if v < 0 {
			return fmt.Errorf("%w: overlay node %d < 0", ErrProfile, v)
		}
	}
	for fi, g := range p.GammaScale {
		if fi < 0 || g < 0 || g > 1 {
			return fmt.Errorf("%w: overlay gamma scale %v on fiber %d", ErrProfile, g, fi)
		}
	}
	return nil
}

// ValidateAgainst additionally checks script targets against a concrete
// network.
func (p Profile) ValidateAgainst(net *network.Network) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, ev := range p.Script {
		if ev.Node && ev.ID >= net.NumNodes() {
			return fmt.Errorf("%w: script event %d targets node %d of %d", ErrProfile, i, ev.ID, net.NumNodes())
		}
		if !ev.Node && ev.ID >= net.NumFibers() {
			return fmt.Errorf("%w: script event %d targets fiber %d of %d", ErrProfile, i, ev.ID, net.NumFibers())
		}
	}
	for _, fi := range p.DownFibers {
		if fi >= net.NumFibers() {
			return fmt.Errorf("%w: overlay targets fiber %d of %d", ErrProfile, fi, net.NumFibers())
		}
	}
	for _, v := range p.DownNodes {
		if v >= net.NumNodes() {
			return fmt.Errorf("%w: overlay targets node %d of %d", ErrProfile, v, net.NumNodes())
		}
	}
	for fi := range p.GammaScale {
		if fi >= net.NumFibers() {
			return fmt.Errorf("%w: overlay gamma scale targets fiber %d of %d", ErrProfile, fi, net.NumFibers())
		}
	}
	return nil
}

// Build compiles the profile into a live Injector for one transfer over net.
// It returns nil when the profile is disabled. Scenario order (fiber
// crashes, node outages, regional, drift, script) fixes the order randomness
// is consumed in and must stay stable across releases — it is part of the
// reproducibility contract.
func (p Profile) Build(net *network.Network) Injector {
	if !p.Enabled() {
		return nil
	}
	return Compose(
		NewFiberCrashes(p.FiberCrashProb, p.FiberRepairSlots),
		NewNodeOutages(p.NodeOutageProb, p.NodeRepairSlots),
		NewRegional(net, p.RegionalProb, p.RegionalRepairSlots),
		NewDrift(p.DriftProb, p.driftWindow(), p.driftDecay()),
		NewScripted(p.Script),
		NewStatic(p.DownFibers, p.DownNodes, p.GammaScale),
	)
}
