// Package faults is the deterministic fault-injection subsystem of the
// online execution engine. The paper's failure model (§V-B) is minimal —
// i.i.d. per-slot fiber crashes with a fixed repair time — while its headline
// claim is exactly about staying alive under failures; this package widens
// the model into composable fault scenarios the engine consults every slot:
//
//   - stochastic fiber crashes (the paper's model, and the implementation
//     behind the engine's legacy FiberFailProb/RepairSlots fields),
//   - node/server outages (a down server cannot perform its scheduled error
//     correction),
//   - correlated regional failures (every fiber at a struck node goes down
//     together),
//   - fidelity drift (a fiber's gamma decays over a degradation window
//     instead of failing outright),
//   - scripted faults (an exact timetable of outages, for reproducible
//     what-if scenarios and tests).
//
// Determinism contract: an Injector owns no randomness. Every stochastic
// decision draws from the *rng.Source handed in through the Scope — in
// SurfNet's engine that is the per-transfer stream derived from the root
// seed — and scenario state advances only in Step, in enumeration order.
// Fault-injected runs therefore stay byte-identical across worker counts,
// exactly like fault-free ones.
package faults

import "surfnet/internal/rng"

// Kind classifies a fault event reported by an Injector.
type Kind int

// Fault event kinds.
const (
	// FiberCrash marks a fiber going down (stochastic or scripted).
	FiberCrash Kind = 1 + iota
	// FiberRepair marks a crashed fiber coming back up.
	FiberRepair
	// NodeCrash marks a node outage (stochastic or scripted).
	NodeCrash
	// NodeRepair marks a node outage ending.
	NodeRepair
	// RegionCrash marks a correlated regional failure: the node and every
	// incident fiber go down together.
	RegionCrash
	// RegionRepair marks a regional failure ending.
	RegionRepair
	// DriftStart marks a fiber entering a fidelity-drift episode.
	DriftStart
	// DriftEnd marks a drift episode ending.
	DriftEnd
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FiberCrash:
		return "fiber_crash"
	case FiberRepair:
		return "fiber_repair"
	case NodeCrash:
		return "node_crash"
	case NodeRepair:
		return "node_repair"
	case RegionCrash:
		return "region_crash"
	case RegionRepair:
		return "region_repair"
	case DriftStart:
		return "drift_start"
	case DriftEnd:
		return "drift_end"
	default:
		return "unknown"
	}
}

// Event is one fault transition, reported synchronously from Step so the
// engine can translate it into telemetry without this package depending on
// the telemetry layer.
type Event struct {
	Kind Kind
	// Slot is the slot the transition happened in.
	Slot int
	// ID is the fiber or node the event concerns.
	ID int
	// Until is the slot the outage or episode is scheduled to end
	// (meaningful for crash/start kinds).
	Until int
}

// Scope describes what is in play for one transfer at one slot: the
// randomness stream faults must draw from and deterministic enumerations of
// the fibers and nodes the transfer still cares about. Enumeration order is
// part of the determinism contract — injectors consume randomness in exactly
// the order the callbacks visit.
type Scope struct {
	// Slot is the current execution slot.
	Slot int
	// Src is the randomness stream for this transfer; all sampling must
	// come from here.
	Src *rng.Source
	// Fibers visits the in-play fiber IDs (the remaining route), deduped,
	// in deterministic order. May be nil when no fibers are in scope.
	Fibers func(visit func(fi int))
	// Nodes visits the in-play node IDs (the upcoming error-correction
	// servers), in deterministic order. May be nil.
	Nodes func(visit func(v int))
}

// Injector is the per-transfer fault state machine the engine consults every
// slot. Step advances the scenario; the query methods report the resulting
// fault state for the slot last stepped. Injectors are not safe for
// concurrent use — the engine builds one per transfer.
type Injector interface {
	// Step samples this slot's fault transitions from sc.Src and reports
	// each through emit (which may be nil).
	Step(sc Scope, emit func(Event))
	// FiberDown reports whether fiber fi is unavailable.
	FiberDown(fi int) bool
	// NodeDown reports whether node v is out of service.
	NodeDown(v int) bool
	// Gamma returns fiber fi's effective fidelity given its nominal value.
	// Implementations without drift must return gamma unchanged (no
	// floating-point rewriting), so fault-free paths stay byte-identical.
	Gamma(fi int, gamma float64) float64
}

// send reports ev through emit when a sink is attached.
func send(emit func(Event), ev Event) {
	if emit != nil {
		emit(ev)
	}
}

// multi composes injectors; children step in construction order, which fixes
// the order randomness is consumed in.
type multi []Injector

// Compose chains injectors into one. Nil children are dropped; composing
// zero injectors yields nil (no faults), and composing one returns it
// directly.
func Compose(injs ...Injector) Injector {
	var m multi
	for _, in := range injs {
		if in != nil {
			m = append(m, in)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	default:
		return m
	}
}

// Step implements Injector.
func (m multi) Step(sc Scope, emit func(Event)) {
	for _, in := range m {
		in.Step(sc, emit)
	}
}

// FiberDown implements Injector: down if any child says so.
func (m multi) FiberDown(fi int) bool {
	for _, in := range m {
		if in.FiberDown(fi) {
			return true
		}
	}
	return false
}

// NodeDown implements Injector: down if any child says so.
func (m multi) NodeDown(v int) bool {
	for _, in := range m {
		if in.NodeDown(v) {
			return true
		}
	}
	return false
}

// Gamma implements Injector: children degrade the fidelity in order.
func (m multi) Gamma(fi int, gamma float64) float64 {
	for _, in := range m {
		gamma = in.Gamma(fi, gamma)
	}
	return gamma
}
