package faults

import (
	"math"
	"sort"

	"surfnet/internal/network"
)

// fiberCrashes is the paper's §V-B failure model: each in-scope fiber
// crashes independently per slot and stays down for a fixed repair time.
// Its Step consumes randomness in exactly the order the engine's legacy
// FiberFailProb path did — one draw per up fiber in enumeration order —
// so pre-injector configs reproduce byte-identically through it.
type fiberCrashes struct {
	prob      float64
	repair    int
	slot      int
	downUntil map[int]int
}

// NewFiberCrashes returns the stochastic fiber-crash scenario: per-slot
// crash probability prob, outages lasting repair slots.
func NewFiberCrashes(prob float64, repair int) Injector {
	if prob <= 0 {
		return nil
	}
	return &fiberCrashes{prob: prob, repair: repair, downUntil: make(map[int]int)}
}

func (c *fiberCrashes) Step(sc Scope, emit func(Event)) {
	c.slot = sc.Slot
	if sc.Fibers == nil {
		return
	}
	sc.Fibers(func(fi int) {
		if until, down := c.downUntil[fi]; down {
			if sc.Slot < until {
				return
			}
			delete(c.downUntil, fi)
			send(emit, Event{Kind: FiberRepair, Slot: sc.Slot, ID: fi})
		}
		if sc.Src.Bool(c.prob) {
			until := sc.Slot + c.repair
			c.downUntil[fi] = until
			send(emit, Event{Kind: FiberCrash, Slot: sc.Slot, ID: fi, Until: until})
		}
	})
}

func (c *fiberCrashes) FiberDown(fi int) bool {
	until, down := c.downUntil[fi]
	return down && c.slot < until
}

func (c *fiberCrashes) NodeDown(int) bool { return false }

func (c *fiberCrashes) Gamma(_ int, gamma float64) float64 { return gamma }

// nodeOutages takes whole nodes out of service. The engine scopes it to the
// upcoming error-correction servers: a down server skips its scheduled
// correction and the code degrades to destination-only decoding instead of
// failing outright.
type nodeOutages struct {
	prob      float64
	repair    int
	slot      int
	downUntil map[int]int
}

// NewNodeOutages returns the stochastic node-outage scenario.
func NewNodeOutages(prob float64, repair int) Injector {
	if prob <= 0 {
		return nil
	}
	return &nodeOutages{prob: prob, repair: repair, downUntil: make(map[int]int)}
}

func (c *nodeOutages) Step(sc Scope, emit func(Event)) {
	c.slot = sc.Slot
	if sc.Nodes == nil {
		return
	}
	sc.Nodes(func(v int) {
		if until, down := c.downUntil[v]; down {
			if sc.Slot < until {
				return
			}
			delete(c.downUntil, v)
			send(emit, Event{Kind: NodeRepair, Slot: sc.Slot, ID: v})
		}
		if sc.Src.Bool(c.prob) {
			until := sc.Slot + c.repair
			c.downUntil[v] = until
			send(emit, Event{Kind: NodeCrash, Slot: sc.Slot, ID: v, Until: until})
		}
	})
}

func (c *nodeOutages) FiberDown(int) bool { return false }

func (c *nodeOutages) NodeDown(v int) bool {
	until, down := c.downUntil[v]
	return down && c.slot < until
}

func (c *nodeOutages) Gamma(_ int, gamma float64) float64 { return gamma }

// regional models correlated failures: a struck node goes down together with
// every fiber incident to it (a power or cooling event at one site).
// Candidate nodes are the endpoints of in-scope fibers, visited in
// first-seen enumeration order.
type regional struct {
	net        *network.Network
	prob       float64
	repair     int
	slot       int
	nodeUntil  map[int]int
	fiberUntil map[int]int
}

// NewRegional returns the correlated regional-failure scenario over net.
func NewRegional(net *network.Network, prob float64, repair int) Injector {
	if prob <= 0 {
		return nil
	}
	return &regional{
		net: net, prob: prob, repair: repair,
		nodeUntil:  make(map[int]int),
		fiberUntil: make(map[int]int),
	}
}

func (c *regional) Step(sc Scope, emit func(Event)) {
	c.slot = sc.Slot
	if sc.Fibers == nil {
		return
	}
	seen := map[int]bool{}
	sc.Fibers(func(fi int) {
		f := c.net.Fiber(fi)
		for _, v := range [2]int{f.A, f.B} {
			if seen[v] {
				continue
			}
			seen[v] = true
			if until, down := c.nodeUntil[v]; down {
				if sc.Slot < until {
					continue
				}
				delete(c.nodeUntil, v)
				send(emit, Event{Kind: RegionRepair, Slot: sc.Slot, ID: v})
			}
			if sc.Src.Bool(c.prob) {
				until := sc.Slot + c.repair
				c.nodeUntil[v] = until
				for _, inc := range c.net.Incident(v) {
					if c.fiberUntil[int(inc)] < until {
						c.fiberUntil[int(inc)] = until
					}
				}
				send(emit, Event{Kind: RegionCrash, Slot: sc.Slot, ID: v, Until: until})
			}
		}
	})
}

func (c *regional) FiberDown(fi int) bool { return c.slot < c.fiberUntil[fi] }

func (c *regional) NodeDown(v int) bool {
	until, down := c.nodeUntil[v]
	return down && c.slot < until
}

func (c *regional) Gamma(_ int, gamma float64) float64 { return gamma }

// drift degrades instead of breaking: an afflicted fiber's gamma decays
// multiplicatively each slot of a bounded episode, then snaps back — a
// misaligned or thermally cycling link rather than a cut one.
type drift struct {
	prob     float64
	window   int
	decay    float64
	slot     int
	episodes map[int]int // fiber -> episode start slot
}

// NewDrift returns the fidelity-drift scenario: each in-scope fiber enters a
// drift episode with probability prob per slot; for window slots its gamma
// is scaled by decay^k where k counts slots into the episode.
func NewDrift(prob float64, window int, decay float64) Injector {
	if prob <= 0 || window <= 0 {
		return nil
	}
	return &drift{prob: prob, window: window, decay: decay, episodes: make(map[int]int)}
}

func (c *drift) Step(sc Scope, emit func(Event)) {
	c.slot = sc.Slot
	if sc.Fibers == nil {
		return
	}
	sc.Fibers(func(fi int) {
		if start, ok := c.episodes[fi]; ok {
			if sc.Slot < start+c.window {
				return // drifting fibers stay afflicted; no new draw
			}
			delete(c.episodes, fi)
			send(emit, Event{Kind: DriftEnd, Slot: sc.Slot, ID: fi})
		}
		if sc.Src.Bool(c.prob) {
			c.episodes[fi] = sc.Slot
			send(emit, Event{Kind: DriftStart, Slot: sc.Slot, ID: fi, Until: sc.Slot + c.window})
		}
	})
}

func (c *drift) FiberDown(int) bool { return false }

func (c *drift) NodeDown(int) bool { return false }

func (c *drift) Gamma(fi int, gamma float64) float64 {
	start, ok := c.episodes[fi]
	if !ok || c.slot >= start+c.window {
		return gamma
	}
	return gamma * math.Pow(c.decay, float64(c.slot-start+1))
}

// ScriptedFault is one entry of a fault timetable: at Slot, the target goes
// down for Duration slots.
type ScriptedFault struct {
	// Slot is the activation slot.
	Slot int
	// Duration is how many slots the outage lasts.
	Duration int
	// Node targets a node outage when true, a fiber outage otherwise.
	Node bool
	// ID is the fiber or node ID.
	ID int
}

// scripted replays an exact outage timetable — no randomness at all, for
// reproducible what-if scenarios and tests.
type scripted struct {
	events     []ScriptedFault // sorted by Slot
	next       int
	slot       int
	fiberUntil map[int]int
	nodeUntil  map[int]int
}

// NewScripted returns the scripted scenario. Events are applied in Slot
// order (stable for equal slots).
func NewScripted(events []ScriptedFault) Injector {
	if len(events) == 0 {
		return nil
	}
	sorted := append([]ScriptedFault(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slot < sorted[j].Slot })
	return &scripted{
		events:     sorted,
		fiberUntil: make(map[int]int),
		nodeUntil:  make(map[int]int),
	}
}

func (c *scripted) Step(sc Scope, emit func(Event)) {
	c.slot = sc.Slot
	for c.next < len(c.events) && c.events[c.next].Slot <= sc.Slot {
		ev := c.events[c.next]
		c.next++
		until := ev.Slot + ev.Duration
		if ev.Node {
			if c.nodeUntil[ev.ID] < until {
				c.nodeUntil[ev.ID] = until
			}
			send(emit, Event{Kind: NodeCrash, Slot: sc.Slot, ID: ev.ID, Until: until})
		} else {
			if c.fiberUntil[ev.ID] < until {
				c.fiberUntil[ev.ID] = until
			}
			send(emit, Event{Kind: FiberCrash, Slot: sc.Slot, ID: ev.ID, Until: until})
		}
	}
}

func (c *scripted) FiberDown(fi int) bool { return c.slot < c.fiberUntil[fi] }

func (c *scripted) NodeDown(v int) bool { return c.slot < c.nodeUntil[v] }

func (c *scripted) Gamma(_ int, gamma float64) float64 { return gamma }
