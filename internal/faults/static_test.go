package faults

import (
	"errors"
	"testing"

	"surfnet/internal/rng"
)

func TestStaticOverlay(t *testing.T) {
	inj := NewStatic([]int{1, 3}, []int{2}, map[int]float64{0: 0.5})
	if inj == nil {
		t.Fatal("non-empty overlay must build an injector")
	}
	// Step is a no-op and must consume no randomness: two sources, one
	// stepped through the overlay, stay in sync.
	a, b := rng.New(7), rng.New(7)
	inj.Step(Scope{Slot: 0, Src: a}, func(Event) { t.Fatal("static overlay must not emit events") })
	if a.Float64() != b.Float64() {
		t.Fatal("static overlay consumed randomness")
	}
	for fi := 0; fi < 4; fi++ {
		want := fi == 1 || fi == 3
		if inj.FiberDown(fi) != want {
			t.Fatalf("FiberDown(%d) = %v, want %v", fi, !want, want)
		}
	}
	if !inj.NodeDown(2) || inj.NodeDown(1) {
		t.Fatal("NodeDown must report exactly the overlay nodes")
	}
	if g := inj.Gamma(0, 0.9); g != 0.45 {
		t.Fatalf("Gamma(0, 0.9) = %v, want 0.45", g)
	}
	// Fibers outside the scale map pass through bit-identically.
	if g := inj.Gamma(2, 0.9); g != 0.9 {
		t.Fatalf("Gamma(2, 0.9) = %v, want 0.9 unchanged", g)
	}
}

func TestStaticEmptyIsNil(t *testing.T) {
	if NewStatic(nil, nil, nil) != nil {
		t.Fatal("empty overlay must compile to nil (no faults)")
	}
}

func TestProfileOverlayEnabledAndValidated(t *testing.T) {
	net := testNet(t)
	p := Profile{DownFibers: []int{1}}
	if !p.Enabled() {
		t.Fatal("overlay-only profile must be enabled")
	}
	if p.Build(net) == nil {
		t.Fatal("overlay-only profile must build an injector")
	}
	if err := p.ValidateAgainst(net); err != nil {
		t.Fatalf("valid overlay rejected: %v", err)
	}
	bad := []Profile{
		{DownFibers: []int{-1}},
		{DownNodes: []int{-2}},
		{GammaScale: map[int]float64{0: 1.5}},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrProfile) {
			t.Fatalf("bad[%d].Validate() = %v, want ErrProfile", i, err)
		}
	}
	outOfRange := []Profile{
		{DownFibers: []int{net.NumFibers()}},
		{DownNodes: []int{net.NumNodes()}},
		{GammaScale: map[int]float64{net.NumFibers(): 0.5}},
	}
	for i, p := range outOfRange {
		if p.Validate() != nil {
			t.Fatalf("outOfRange[%d] must pass network-free validation", i)
		}
		if err := p.ValidateAgainst(net); !errors.Is(err, ErrProfile) {
			t.Fatalf("outOfRange[%d].ValidateAgainst() = %v, want ErrProfile", i, err)
		}
	}
}

func TestParseScriptRoundTrip(t *testing.T) {
	script, err := ParseScript("40:fiber:3:60, 10:node:2:5")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScriptedFault{
		{Slot: 40, Duration: 60, ID: 3},
		{Slot: 10, Duration: 5, Node: true, ID: 2},
	}
	if len(script) != len(want) {
		t.Fatalf("parsed %d entries, want %d", len(script), len(want))
	}
	for i := range want {
		if script[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, script[i], want[i])
		}
	}
	if got := FormatScript(script); got != "40:fiber:3:60,10:node:2:5" {
		t.Fatalf("FormatScript = %q", got)
	}
	reparsed, err := ParseScript(FormatScript(script))
	if err != nil || len(reparsed) != len(script) {
		t.Fatalf("round trip failed: %v (%d entries)", err, len(reparsed))
	}
	if s, err := ParseScript("  "); err != nil || s != nil {
		t.Fatalf("blank script = %v, %v; want nil, nil", s, err)
	}
	for _, bad := range []string{"40:fiber:3", "x:fiber:3:60", "40:link:3:60", "40:fiber:x:60"} {
		if _, err := ParseScript(bad); err == nil {
			t.Fatalf("ParseScript(%q) must fail", bad)
		}
	}
}
