package faults

// static is the overlay injector behind a control plane's live network view:
// a fixed set of down fibers and nodes plus per-fiber fidelity scales, with no
// randomness and no evolution. A resident daemon snapshots its fault plane at
// an epoch boundary and hands the snapshot to every transfer of that epoch, so
// all transfers see one consistent network state — unlike the stochastic
// scenarios, which evolve independently per transfer.
type static struct {
	fiberDown map[int]bool
	nodeDown  map[int]bool
	gamma     map[int]float64
}

// NewStatic returns the static overlay injector: the listed fibers and nodes
// are down for the whole transfer, and each fiber fi in gamma has its nominal
// fidelity multiplied by gamma[fi]. It returns nil when the overlay is empty.
// Step consumes no randomness, so overlaid runs stay worker-invariant.
func NewStatic(downFibers, downNodes []int, gamma map[int]float64) Injector {
	if len(downFibers) == 0 && len(downNodes) == 0 && len(gamma) == 0 {
		return nil
	}
	s := &static{
		fiberDown: make(map[int]bool, len(downFibers)),
		nodeDown:  make(map[int]bool, len(downNodes)),
	}
	for _, fi := range downFibers {
		s.fiberDown[fi] = true
	}
	for _, v := range downNodes {
		s.nodeDown[v] = true
	}
	if len(gamma) > 0 {
		s.gamma = make(map[int]float64, len(gamma))
		for fi, g := range gamma {
			s.gamma[fi] = g
		}
	}
	return s
}

// Step implements Injector: static state never transitions, so there is
// nothing to sample or report.
func (s *static) Step(Scope, func(Event)) {}

// FiberDown implements Injector.
func (s *static) FiberDown(fi int) bool { return s.fiberDown[fi] }

// NodeDown implements Injector.
func (s *static) NodeDown(v int) bool { return s.nodeDown[v] }

// Gamma implements Injector. Fibers outside the overlay pass through
// unchanged (no floating-point rewriting).
func (s *static) Gamma(fi int, gamma float64) float64 {
	scale, ok := s.gamma[fi]
	if !ok {
		return gamma
	}
	return gamma * scale
}
