package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"surfnet/internal/faults"
	"surfnet/internal/telemetry"
)

// allFiberIDs lists every fiber of the service's network, for building
// everything-is-down overlays.
func allFiberIDs(s *Service) []int {
	ids := make([]int, s.eng.Network().NumFibers())
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// stepUntilTerminal drives epochs until the transfer leaves the live states.
func stepUntilTerminal(t *testing.T, svc *Service, id string, maxSteps int) TransferStatus {
	t.Helper()
	for i := 0; i < maxSteps; i++ {
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateCompleted || st.State == StateFailed {
			return st
		}
		if _, err := svc.StepEpoch(context.Background()); err != nil {
			// Epoch-level errors still settle the batch; keep stepping.
			continue
		}
	}
	st, _ := svc.Get(id)
	t.Fatalf("transfer %s still %q after %d steps", id, st.State, maxSteps)
	return TransferStatus{}
}

func TestFaultPlaneScriptedOutage(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, _ := fixture(t, Config{
		Metrics:   reg,
		FaultTick: -1,
		Faults:    &faults.Profile{Script: []faults.ScriptedFault{{Slot: 0, Duration: 100, Node: true, ID: 2}}},
	})
	if down := svc.StepFaults(); down != 1 {
		t.Fatalf("StepFaults = %d outage events, want 1", down)
	}
	fs := svc.FaultState()
	if !fs.Enabled || len(fs.DownNodes) != 1 || fs.DownNodes[0] != 2 {
		t.Fatalf("fault state = %+v, want node 2 down", fs)
	}
	if fs.Events == 0 || fs.Step != 1 {
		t.Fatalf("fault state events/step = %d/%d", fs.Events, fs.Step)
	}
	if v := reg.Counter("fault.events").Value(); v != 1 {
		t.Fatalf("fault.events = %d, want 1", v)
	}
	if v := reg.Counter("fault.node_crashes").Value(); v != 1 {
		t.Fatalf("fault.node_crashes = %d, want 1", v)
	}
	// The outage expires silently (scripted timetables emit no repair
	// events) and the node comes back up.
	for i := 0; i < 101; i++ {
		svc.StepFaults()
	}
	if fs := svc.FaultState(); len(fs.DownNodes) != 0 {
		t.Fatalf("node still down after script expiry: %+v", fs)
	}
}

func TestFaultTriggeredReplan(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, subs := fixture(t, Config{
		Metrics:              reg,
		FaultTick:            -1,
		FaultReplanThreshold: 1,
		Faults:               &faults.Profile{Script: []faults.ScriptedFault{{Slot: 0, Duration: 5, ID: 0}}},
	})
	// A scheduled epoch first: no fault events yet.
	if _, err := svc.Submit(subs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Status(); st.ReplansScheduled != 1 || st.ReplansFaultTriggered != 0 {
		t.Fatalf("after scheduled epoch: %+v", st)
	}
	// One crash event reaches the threshold: warm basis invalidated and the
	// next epoch counts as fault-triggered.
	if down := svc.StepFaults(); down != 1 {
		t.Fatalf("StepFaults = %d, want 1", down)
	}
	if st := svc.Status(); st.FaultInvalidations != 1 {
		t.Fatalf("fault invalidations = %d, want 1", st.FaultInvalidations)
	}
	if _, err := svc.Submit(subs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := svc.Status()
	if st.ReplansFaultTriggered != 1 || st.ReplansScheduled != 1 {
		t.Fatalf("replan split = scheduled %d / fault %d, want 1 / 1",
			st.ReplansScheduled, st.ReplansFaultTriggered)
	}
	if v := reg.Counter("service.replans_fault_triggered").Value(); v != 1 {
		t.Fatalf("service.replans_fault_triggered = %d, want 1", v)
	}
	// The sticky marker is consumed: the next epoch is scheduled again.
	if _, err := svc.Submit(subs[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Status(); st.ReplansScheduled != 2 {
		t.Fatalf("replans scheduled = %d, want 2", st.ReplansScheduled)
	}
}

func TestNoPathFailureClassAndRetryBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, subs := fixture(t, Config{Metrics: reg, FaultTick: -1})
	// Every fiber down: planning sees a dead topology, so the scheduler can
	// admit nothing and the transfer fails with class no_path — after
	// consuming its whole retry budget.
	if err := svc.SetFaultProfile(faults.Profile{DownFibers: allFiberIDs(svc)}); err != nil {
		t.Fatal(err)
	}
	sub := subs[0]
	sub.RetryBudget = 2
	st, err := svc.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	final := stepUntilTerminal(t, svc, st.ID, 30)
	if final.State != StateFailed || final.FailureClass != FailNoPath {
		t.Fatalf("final = %q/%q, want failed/no_path", final.State, final.FailureClass)
	}
	if final.Retries != 2 {
		t.Fatalf("retries = %d, want the full budget of 2", final.Retries)
	}
	status := svc.Status()
	if status.Retries != 2 || status.FailedByClass[FailNoPath] != 1 {
		t.Fatalf("status retries/by-class = %d/%v", status.Retries, status.FailedByClass)
	}
	tn := status.Tenants[sub.Tenant]
	if tn.Failed != 1 || tn.FailedByClass[FailNoPath] != 1 {
		t.Fatalf("tenant accounting = %+v", tn)
	}
	if v := reg.Counter("service.failed_no_path").Value(); v != 1 {
		t.Fatalf("service.failed_no_path = %d, want 1", v)
	}
	if v := reg.Counter("service.retries").Value(); v != 2 {
		t.Fatalf("service.retries = %d, want 2", v)
	}

	// Zero budget: first failed attempt is terminal.
	st2, err := svc.Submit(subs[1])
	if err != nil {
		t.Fatal(err)
	}
	final2 := stepUntilTerminal(t, svc, st2.ID, 5)
	if final2.State != StateFailed || final2.Retries != 0 {
		t.Fatalf("zero-budget final = %q retries %d", final2.State, final2.Retries)
	}

	// Lifting the faults restores service: the same request completes.
	if err := svc.SetFaultProfile(faults.Profile{}); err != nil {
		t.Fatal(err)
	}
	st3, err := svc.Submit(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	final3 := stepUntilTerminal(t, svc, st3.ID, 5)
	if final3.State != StateCompleted {
		t.Fatalf("post-repair transfer = %q (%s), want completed", final3.State, final3.Error)
	}
}

func TestDeadlineExpiryIsTerminal(t *testing.T) {
	svc, subs := fixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	sub := subs[0]
	sub.DeadlineMs = 1
	sub.RetryBudget = 5 // a missed deadline must not be resurrected by retries
	st, err := svc.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	final, err := svc.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.FailureClass != FailDeadline || final.Retries != 0 {
		t.Fatalf("expired transfer = %+v, want failed/deadline with 0 retries", final)
	}
}

func TestSubmitValidatesRobustnessContract(t *testing.T) {
	svc, subs := fixture(t, Config{FaultTick: -1})
	bad := subs[0]
	bad.DeadlineMs = -1
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("negative deadline must be rejected")
	}
	bad = subs[0]
	bad.RetryBudget = maxRetryBudget + 1
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("oversized retry budget must be rejected")
	}
}

func TestPlanBudgetTripsBreaker(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc, subs := fixture(t, Config{
		Metrics:         reg,
		FaultTick:       -1,
		PlanBudget:      time.Nanosecond, // every LP solve blows this budget
		BreakerCooldown: 2,
	})
	if _, err := svc.Submit(subs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("service.breaker_trips").Value(); v != 1 {
		t.Fatalf("breaker trips = %d, want 1", v)
	}
	st := svc.Status()
	if !st.Degraded {
		t.Fatal("breaker must be open after an over-budget plan")
	}
	// Cooldown epochs route greedy and count as degraded; transfers still
	// complete on the healthy network.
	for i := 1; i < 3; i++ {
		got, err := svc.Submit(subs[i%len(subs)])
		if err != nil {
			t.Fatal(err)
		}
		final := stepUntilTerminal(t, svc, got.ID, 5)
		if final.State != StateCompleted {
			t.Fatalf("degraded-epoch transfer = %q (%s)", final.State, final.Error)
		}
	}
	st = svc.Status()
	if st.DegradedEpochs < 2 {
		t.Fatalf("degraded epochs = %d, want >= 2", st.DegradedEpochs)
	}
	if v := reg.Counter("service.degraded_epochs").Value(); v != st.DegradedEpochs {
		t.Fatalf("counter/status degraded epochs disagree: %d vs %d", v, st.DegradedEpochs)
	}
}

func TestRetryAfterHintTracksEpochWall(t *testing.T) {
	svc, _ := fixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	if got := svc.RetryAfterHint(); got != 1 {
		t.Fatalf("cold hint = %d, want 1", got)
	}
	for i := 0; i < 9; i++ {
		svc.epochWall.Observe(4.2)
	}
	if got := svc.RetryAfterHint(); got != 5 {
		t.Fatalf("hint = %d, want ceil(4.2) = 5", got)
	}
	for i := 0; i < 100; i++ {
		svc.epochWall.Observe(900)
	}
	if got := svc.RetryAfterHint(); got != 30 {
		t.Fatalf("hint = %d, want clamp at 30", got)
	}
}

func TestDrainUnderScriptedOutageZeroDrop(t *testing.T) {
	// SIGTERM mid-outage: a regional outage is live, several transfers are
	// queued (some doomed to retry), and the daemon must still satisfy
	// admitted == completed + failed with every record terminal.
	svc, subs := fixture(t, Config{
		EpochMax:  2,
		Metrics:   telemetry.NewRegistry(),
		FaultTick: -1,
		Faults:    &faults.Profile{Script: []faults.ScriptedFault{{Slot: 0, Duration: 1000, Node: true, ID: 1}}},
	})
	var ids []string
	for _, sub := range subs {
		sub.RetryBudget = 3
		st, err := svc.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	svc.StepFaults() // the outage is live before the drain begins
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete under faults")
	}
	st := svc.Status()
	if st.Admitted != st.Completed+st.Failed {
		t.Fatalf("zero-drop violated: admitted %d != completed %d + failed %d",
			st.Admitted, st.Completed, st.Failed)
	}
	for _, id := range ids {
		got, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateCompleted && got.State != StateFailed {
			t.Fatalf("%s state = %q after drain", id, got.State)
		}
		if got.State == StateFailed && got.FailureClass == "" {
			t.Fatalf("%s failed without a failure class", id)
		}
	}
}

// TestWorkerInvarianceUnderFaults pins the robustness determinism contract:
// an identical admission + fault-step timeline produces identical terminal
// states, failure classes, and code counts for every worker count.
func TestWorkerInvarianceUnderFaults(t *testing.T) {
	profile := &faults.Profile{
		FiberCrashProb:   0.05,
		FiberRepairSlots: 10,
		DriftProb:        0.10,
		DriftWindow:      8,
		DriftDecay:       0.95,
		Script:           []faults.ScriptedFault{{Slot: 1, Duration: 50, Node: true, ID: 2}},
	}
	type outcome struct {
		State, Class                 string
		Accepted, Delivered, Success int
		Retries                      int
		Epoch                        int64
	}
	run := func(workers int) map[string]outcome {
		svc, subs := fixture(t, Config{
			Workers:   workers,
			EpochMax:  2,
			Metrics:   telemetry.NewRegistry(),
			FaultTick: -1,
			Faults:    profile,
		})
		var ids []string
		for _, sub := range subs {
			sub.RetryBudget = 2
			st, err := svc.Submit(sub)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		// A fixed timeline: faults advance between epochs exactly the same
		// way in each run.
		for i := 0; i < 3; i++ {
			svc.StepFaults()
		}
		if _, err := svc.StepEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			svc.StepFaults()
		}
		if err := svc.drain(); err != nil {
			t.Fatal(err)
		}
		got := make(map[string]outcome, len(ids))
		for _, id := range ids {
			st, err := svc.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			got[id] = outcome{
				State: st.State, Class: st.FailureClass,
				Accepted: st.AcceptedCodes, Delivered: st.DeliveredCodes,
				Success: st.SuccessCodes, Retries: st.Retries, Epoch: st.Epoch,
			}
		}
		return got
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for id, want := range base {
			if got[id] != want {
				t.Fatalf("workers=%d: transfer %s = %+v, want %+v (1 worker)",
					workers, id, got[id], want)
			}
		}
	}
}

func TestHTTPFaultsEndpoint(t *testing.T) {
	svc, _, srv := apiFixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	// GET before arming: plane exists, disabled.
	resp, err := http.Get(srv.URL + "/v1/faults")
	if err != nil {
		t.Fatal(err)
	}
	var info FaultInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.State.Enabled {
		t.Fatalf("cold GET /v1/faults = %d enabled=%v", resp.StatusCode, info.State.Enabled)
	}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/faults", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Invalid script syntax and out-of-range targets are 400s.
	for _, bad := range []string{
		`{"script":"40:laser:3:60"}`,
		fmt.Sprintf(`{"script":"0:fiber:%d:10"}`, svc.Engine().Network().NumFibers()),
		`{"fiber_crash_prob":1.5}`,
		`{nope`,
	} {
		resp := post(bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", bad, resp.StatusCode)
		}
	}
	if svc.FaultState().Enabled {
		t.Fatal("rejected profiles must not arm the plane")
	}
	// A valid scenario arms the plane and echoes back.
	resp2 := post(`{"fiber_crash_prob":0.1,"fiber_repair_slots":5,"script":"0:node:2:50"}`)
	if err := json.NewDecoder(resp2.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !info.State.Enabled {
		t.Fatalf("arming POST = %d enabled=%v", resp2.StatusCode, info.State.Enabled)
	}
	if info.Profile.FiberCrashProb != 0.1 || info.Profile.Script != "0:node:2:50" {
		t.Fatalf("echoed profile = %+v", info.Profile)
	}
	svc.StepFaults()
	if fs := svc.FaultState(); len(fs.DownNodes) != 1 {
		t.Fatalf("scripted node not down after arming via HTTP: %+v", fs)
	}
}

func TestHTTPFailureClassSurfaced(t *testing.T) {
	svc, subs, srv := apiFixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	if err := svc.SetFaultProfile(faults.Profile{DownFibers: allFiberIDs(svc)}); err != nil {
		t.Fatal(err)
	}
	resp := postTransfer(t, srv.URL, subs[0])
	var st TransferStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(srv.URL + "/v1/transfers/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got TransferStatus
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.FailureClass != FailNoPath {
		t.Fatalf("GET transfer = %q/%q, want failed/no_path", got.State, got.FailureClass)
	}
}
