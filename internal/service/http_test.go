package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"surfnet/internal/telemetry"
)

// apiFixture mounts the service API on a test server.
func apiFixture(t *testing.T, cfg Config) (*Service, []TransferRequest, *httptest.Server) {
	t.Helper()
	svc, subs := fixture(t, cfg)
	mux := http.NewServeMux()
	svc.RegisterRoutes(mux.Handle)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return svc, subs, srv
}

func postTransfer(t *testing.T, url string, req TransferRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/transfers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPSubmitAndGet(t *testing.T) {
	svc, subs, srv := apiFixture(t, Config{})
	resp := postTransfer(t, srv.URL, subs[0])
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	var st TransferStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued {
		t.Fatalf("submitted status = %+v", st)
	}

	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(fmt.Sprintf("%s/v1/transfers/%s", srv.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d, want 200", resp2.StatusCode)
	}
	var got TransferStatus
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCompleted {
		t.Fatalf("state = %q, want completed", got.State)
	}
}

// TestHTTPQueueFull429RetryAfter is the satellite regression test: a bounded
// queue at capacity must shed with 429 and a Retry-After hint.
func TestHTTPQueueFull429RetryAfter(t *testing.T) {
	_, subs, srv := apiFixture(t, Config{QueueLimit: 1, Metrics: telemetry.NewRegistry()})
	resp := postTransfer(t, srv.URL, subs[0])
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", resp.StatusCode)
	}
	resp2 := postTransfer(t, srv.URL, subs[1])
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" {
		t.Fatal("429 body must name the shed reason")
	}
}

func TestHTTPDraining503(t *testing.T) {
	svc, subs, srv := apiFixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Run(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postTransfer(t, srv.URL, subs[0])
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining POST = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, _, srv := apiFixture(t, Config{})
	resp, err := http.Post(srv.URL+"/v1/transfers", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d, want 400", resp.StatusCode)
	}
	resp2 := postTransfer(t, srv.URL, TransferRequest{Src: 0, Dst: 0, Messages: 1})
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid transfer = %d, want 400", resp2.StatusCode)
	}
	resp3, err := http.Get(srv.URL + "/v1/transfers/t-404")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown transfer = %d, want 404", resp3.StatusCode)
	}
}

func TestHTTPNetworkSnapshot(t *testing.T) {
	svc, _, srv := apiFixture(t, Config{})
	resp, err := http.Get(srv.URL + "/v1/network")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/network = %d, want 200", resp.StatusCode)
	}
	var info NetworkInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	net := svc.Engine().Network()
	if len(info.Nodes) != net.NumNodes() || len(info.Fibers) != net.NumFibers() {
		t.Fatalf("snapshot %d nodes / %d fibers, want %d / %d",
			len(info.Nodes), len(info.Fibers), net.NumNodes(), net.NumFibers())
	}
	users := 0
	for _, n := range info.Nodes {
		if n.Role == "user" {
			users++
		}
	}
	if users == 0 {
		t.Fatal("no user nodes in snapshot")
	}
}
