package service

import (
	"context"
	"testing"
	"time"

	"surfnet/internal/core"
	"surfnet/internal/decoder"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"
	"surfnet/internal/topology"
)

// fixture builds a service over a generated topology with two user pairs.
func fixture(t *testing.T, cfg Config) (*Service, []TransferRequest) {
	t.Helper()
	src := rng.New(9090)
	net, err := topology.Generate(topology.DefaultParams(topology.Abundant, topology.GoodConnection), src)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := topology.GenRequests(net, 4, 2, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultConfig()
	ecfg.Decoder = decoder.SurfNet{}
	eng, err := core.NewEngine(net, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := routing.NewPlanner(routing.DefaultParams(routing.SurfNet))
	svc, err := New(eng, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var subs []TransferRequest
	for i, r := range reqs {
		tenant := "tenant-a"
		if i%2 == 1 {
			tenant = "tenant-b"
		}
		subs = append(subs, TransferRequest{Tenant: tenant, Src: r.Src, Dst: r.Dst, Messages: r.Messages})
	}
	return svc, subs
}

func TestSubmitAndStepEpochCompletes(t *testing.T) {
	svc, subs := fixture(t, Config{Metrics: telemetry.NewRegistry()})
	var ids []string
	for _, sub := range subs {
		st, err := svc.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued {
			t.Fatalf("state = %q, want queued", st.State)
		}
		ids = append(ids, st.ID)
	}
	n, err := svc.StepEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(subs) {
		t.Fatalf("epoch processed %d, want %d", n, len(subs))
	}
	accepted := 0
	for _, id := range ids {
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCompleted {
			t.Fatalf("%s state = %q, want completed", id, st.State)
		}
		if st.WallLatencySeconds <= 0 {
			t.Fatalf("%s wall latency not recorded", id)
		}
		accepted += st.AcceptedCodes
	}
	if accepted == 0 {
		t.Fatal("no codes accepted across the epoch")
	}
	st := svc.Status()
	if st.Completed != int64(len(subs)) || st.QueueDepth != 0 || st.Epochs != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Tenants["tenant-a"].Completed == 0 || st.Tenants["tenant-b"].Completed == 0 {
		t.Fatalf("per-tenant accounting missing: %+v", st.Tenants)
	}
	if st.WallP99 <= 0 {
		t.Fatal("wall p99 not recorded")
	}
}

func TestQueueFullSheds(t *testing.T) {
	svc, subs := fixture(t, Config{QueueLimit: 2})
	if _, err := svc.Submit(subs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(subs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(subs[2]); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	st := svc.Status()
	if st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("shed/admitted = %d/%d, want 1/2", st.Shed, st.Admitted)
	}
}

func TestInvalidTransferRejected(t *testing.T) {
	svc, _ := fixture(t, Config{})
	// Src 0 duplicated as Dst: invalid request per network rules.
	if _, err := svc.Submit(TransferRequest{Src: 0, Dst: 0, Messages: 1}); err == nil {
		t.Fatal("self-transfer should be rejected")
	}
	if st := svc.Status(); st.Admitted != 0 {
		t.Fatal("invalid transfer must not count as admitted")
	}
}

// TestDrainCompletesInFlight pins the zero-drop drain contract: cancelling
// Run's context must complete every admitted transfer before Run returns,
// and admissions after the drain begins are refused with ErrDraining.
func TestDrainCompletesInFlight(t *testing.T) {
	svc, subs := fixture(t, Config{EpochMax: 1, Metrics: telemetry.NewRegistry()})
	var ids []string
	for _, sub := range subs {
		st, err := svc.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Cancel before the loop even starts: Run must still drain the queue.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete")
	}
	select {
	case <-svc.Drained():
	default:
		t.Fatal("Drained channel not closed after Run returned")
	}
	for _, id := range ids {
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCompleted {
			t.Fatalf("%s state = %q after drain, want completed", id, st.State)
		}
	}
	if _, err := svc.Submit(subs[0]); err != ErrDraining {
		t.Fatalf("post-drain submit err = %v, want ErrDraining", err)
	}
	if st := svc.Status(); !st.Draining || st.Shed != 1 {
		t.Fatalf("post-drain status = %+v", st)
	}
}

func TestDrainHookFiresOnce(t *testing.T) {
	fired := 0
	svc, subs := fixture(t, Config{DrainHook: func() { fired++ }})
	if _, err := svc.Submit(subs[0]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("drain hook fired %d times, want 1", fired)
	}
}

// TestWorkerInvariance pins the daemon determinism contract: identical
// admission sequences produce identical transfer outcomes for every worker
// count, because epochs are seeded by index and executed on the invariant
// parallel engine.
func TestWorkerInvariance(t *testing.T) {
	outcomes := make(map[int][]TransferStatus)
	for _, workers := range []int{1, 2, 4} {
		svc, subs := fixture(t, Config{Workers: workers, Seed: 7})
		var ids []string
		for _, sub := range subs {
			st, err := svc.Submit(sub)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		if _, err := svc.StepEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			st, err := svc.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			st.WallLatencySeconds = 0 // wall time legitimately varies
			outcomes[workers] = append(outcomes[workers], st)
		}
	}
	want := outcomes[1]
	for _, workers := range []int{2, 4} {
		got := outcomes[workers]
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d transfer %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEpochBatchingSplitsQueue pins that EpochMax bounds each batch and that
// later submissions execute in later epochs with their own rng streams.
func TestEpochBatchingSplitsQueue(t *testing.T) {
	svc, subs := fixture(t, Config{EpochMax: 2})
	for _, sub := range subs {
		if _, err := svc.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	n1, err := svc.StepEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 2 {
		t.Fatalf("first epoch processed %d, want 2", n1)
	}
	n2, err := svc.StepEpoch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 2 {
		t.Fatalf("second epoch processed %d, want 2", n2)
	}
	st := svc.Status()
	if st.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", st.Epochs)
	}
	if _, err := svc.Get("t-3"); err != nil {
		t.Fatal(err)
	}
	third, _ := svc.Get("t-3")
	if third.Epoch != 1 {
		t.Fatalf("third transfer ran in epoch %d, want 1", third.Epoch)
	}
}

func TestRunServesArrivals(t *testing.T) {
	svc, subs := fixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx) }()
	st, err := svc.Submit(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, err := svc.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transfer stuck in %q", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
