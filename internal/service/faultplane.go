package service

import (
	"sort"
	"sync"

	"surfnet/internal/faults"
	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/telemetry"
)

// FaultPlane is the daemon's live network-state machine: one fault scenario
// (faults.Profile) stepped in epoch-tick time against the whole owned network,
// instead of per-transfer in slot time. Where the engine's per-transfer
// injectors model what one communication experiences, the plane models what
// the control plane *knows* — which fibers and nodes are down right now,
// which links are drifting — so planning can route around outages, admission
// can report degraded state, and fault telemetry can trigger re-planning.
//
// Determinism: the plane owns one rng stream (split from the service seed)
// and advances only in Step, so a fixed sequence of Step and StepEpoch calls
// reproduces the same fault timeline regardless of worker count. The daemon's
// Run loop steps it on a wall-clock tick; tests step it directly.
type FaultPlane struct {
	net *network.Network
	src *rng.Source

	events        *telemetry.Counter // every fault transition
	fiberCrashes  *telemetry.Counter
	nodeCrashes   *telemetry.Counter
	regionCrashes *telemetry.Counter
	driftEpisodes *telemetry.Counter
	repairs       *telemetry.Counter
	tracer        telemetry.Tracer

	mu      sync.Mutex
	profile faults.Profile
	inj     faults.Injector
	step    int
	base    int // step the current profile was installed at (script time zero)
	total   int64
}

// newFaultPlane validates the profile against net and builds the plane. The
// plane is constructed even for a disabled profile, so a runtime SetProfile
// can arm it later.
func newFaultPlane(net *network.Network, profile faults.Profile, src *rng.Source, reg *telemetry.Registry, tracer telemetry.Tracer) (*FaultPlane, error) {
	if err := profile.ValidateAgainst(net); err != nil {
		return nil, err
	}
	return &FaultPlane{
		net:           net,
		src:           src,
		profile:       profile,
		inj:           profile.Build(net),
		events:        reg.Counter("fault.events"),
		fiberCrashes:  reg.Counter("fault.fiber_crashes"),
		nodeCrashes:   reg.Counter("fault.node_crashes"),
		regionCrashes: reg.Counter("fault.region_crashes"),
		driftEpisodes: reg.Counter("fault.drift_episodes"),
		repairs:       reg.Counter("fault.repairs"),
		tracer:        tracer,
	}, nil
}

// SetProfile swaps the fault scenario at runtime (POST /v1/faults). The new
// profile is validated against the network first — an out-of-range fiber or
// node is reported here instead of panicking mid-epoch — and its script runs
// in its own time zero: a timetable installed at step 100 with an event at
// slot 0 fires on the next Step. Injector state resets; outages of the
// previous scenario are lifted.
func (fp *FaultPlane) SetProfile(profile faults.Profile) error {
	if err := profile.ValidateAgainst(fp.net); err != nil {
		return err
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fp.profile = profile
	fp.inj = profile.Build(fp.net)
	fp.base = fp.step
	return nil
}

// Profile returns the scenario currently driving the plane.
func (fp *FaultPlane) Profile() faults.Profile {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.profile
}

// Active reports whether the plane currently injects anything.
func (fp *FaultPlane) Active() bool {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.inj != nil
}

// Step advances the plane one tick: every fiber and node of the network is in
// scope, transitions are sampled from the plane's own stream, and each event
// lands on the fault.* counters and the trace. It returns how many *outage*
// events (fiber/node/region crashes) fired, the signal the service
// accumulates toward a fault-triggered re-plan; repairs and drift do not
// count — a recovering network should not trigger re-planning by itself.
func (fp *FaultPlane) Step() int {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.inj == nil {
		fp.step++
		return 0
	}
	rel := fp.step - fp.base
	crashes := 0
	emit := func(ev faults.Event) {
		fp.total++
		fp.events.Inc()
		switch ev.Kind {
		case faults.FiberCrash:
			fp.fiberCrashes.Inc()
			crashes++
		case faults.NodeCrash:
			fp.nodeCrashes.Inc()
			crashes++
		case faults.RegionCrash:
			fp.regionCrashes.Inc()
			crashes++
		case faults.DriftStart:
			fp.driftEpisodes.Inc()
		case faults.FiberRepair, faults.NodeRepair, faults.RegionRepair, faults.DriftEnd:
			fp.repairs.Inc()
		}
		if fp.tracer != nil {
			e := telemetry.Ev("service.fault", "kind", ev.Kind.String(), "id", ev.ID, "until", ev.Until)
			e.Slot = fp.step
			fp.tracer.Emit(e)
		}
	}
	fp.inj.Step(faults.Scope{
		Slot:   rel,
		Src:    fp.src,
		Fibers: func(visit func(fi int)) { allIDs(fp.net.NumFibers(), visit) },
		Nodes:  func(visit func(v int)) { allIDs(fp.net.NumNodes(), visit) },
	}, emit)
	fp.step++
	return crashes
}

// allIDs visits 0..n-1 in order — the whole network is in scope for the plane.
func allIDs(n int, visit func(int)) {
	for i := 0; i < n; i++ {
		visit(i)
	}
}

// FaultState is one consistent snapshot of the live network state: what is
// down and what is degraded right now. It doubles as the static overlay the
// epoch's transfers execute under and the JSON body of GET /v1/faults.
type FaultState struct {
	// Enabled reports whether any fault scenario is armed.
	Enabled bool `json:"enabled"`
	// Step is how many ticks the plane has taken.
	Step int `json:"step"`
	// Events is the total fault transitions observed since startup.
	Events int64 `json:"events"`
	// DownFibers and DownNodes list current outages, ascending.
	DownFibers []int `json:"down_fibers,omitempty"`
	DownNodes  []int `json:"down_nodes,omitempty"`
	// GammaScale maps drifting fibers to their current fidelity multiplier.
	GammaScale map[int]float64 `json:"gamma_scale,omitempty"`
}

// State snapshots the plane. The slices and map are fresh copies safe to hand
// across epochs and HTTP handlers.
func (fp *FaultPlane) State() FaultState {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	st := FaultState{Enabled: fp.inj != nil, Step: fp.step, Events: fp.total}
	if fp.inj == nil {
		return st
	}
	for fi := 0; fi < fp.net.NumFibers(); fi++ {
		if fp.inj.FiberDown(fi) {
			st.DownFibers = append(st.DownFibers, fi)
		}
		if g := fp.inj.Gamma(fi, 1); g != 1 {
			if st.GammaScale == nil {
				st.GammaScale = make(map[int]float64)
			}
			st.GammaScale[fi] = g
		}
	}
	for v := 0; v < fp.net.NumNodes(); v++ {
		if fp.inj.NodeDown(v) {
			st.DownNodes = append(st.DownNodes, v)
		}
	}
	sort.Ints(st.DownFibers)
	sort.Ints(st.DownNodes)
	return st
}

// Outaged reports whether the snapshot carries any outage or degradation.
func (st FaultState) Outaged() bool {
	return len(st.DownFibers) > 0 || len(st.DownNodes) > 0 || len(st.GammaScale) > 0
}

// Mask copies net with the snapshot's outages applied, for planning: down
// fibers keep their endpoints (IDs stay dense, the graph stays connected) but
// lose all scheduling value, down nodes lose their storage capacity, and
// drifting fibers advertise their degraded fidelity. Without outages — or if
// the masked network is somehow rejected — the base network is returned, so
// planning always has a topology.
func (st FaultState) Mask(net *network.Network) *network.Network {
	if !st.Outaged() {
		return net
	}
	nodeDown := make(map[int]bool, len(st.DownNodes))
	for _, v := range st.DownNodes {
		nodeDown[v] = true
	}
	fiberDown := make(map[int]bool, len(st.DownFibers))
	for _, fi := range st.DownFibers {
		fiberDown[fi] = true
	}
	nodes := make([]network.Node, net.NumNodes())
	for v := range nodes {
		nd := net.Node(v)
		if nodeDown[v] {
			nd.Capacity = 0
		}
		nodes[v] = nd
	}
	fibers := make([]network.Fiber, net.NumFibers())
	for fi := range fibers {
		f := net.Fiber(fi)
		if fiberDown[fi] || nodeDown[f.A] || nodeDown[f.B] {
			f.EntPairs, f.EntRate, f.LossProb, f.Fidelity = 0, 0, 1, 0.5
		} else if g, ok := st.GammaScale[fi]; ok {
			f.Fidelity *= g
			if f.Fidelity < 0.5 {
				f.Fidelity = 0.5
			}
		}
		fibers[fi] = f
	}
	masked, err := network.New(nodes, fibers)
	if err != nil {
		return net
	}
	return masked
}
