package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"surfnet/internal/faults"
	"surfnet/internal/telemetry"
)

// testClock is a deterministic monotonic clock advancing 1ms per read, safe
// for concurrent use (Submit and epoch workers read it in parallel).
type testClock struct{ ns int64 }

func (c *testClock) Now() time.Time {
	return time.Unix(0, atomic.AddInt64(&c.ns, int64(time.Millisecond)))
}

// TestTraceRetriedThenCompletedUnderFaults is the acceptance test: a transfer
// that retries under an active fault scenario and then completes must expose
// a complete ordered timeline whose attributed segments sum exactly to its
// admission-to-completion wall time.
func TestTraceRetriedThenCompletedUnderFaults(t *testing.T) {
	clock := &testClock{}
	svc, subs := fixture(t, Config{
		Metrics:     telemetry.NewRegistry(),
		FaultTick:   -1,
		FlightClock: clock.Now,
	})
	// Every fiber down: the first attempt finds no path and retries. The
	// outage is live at plan time, so the attempt is fault-coincident and
	// the re-queue wait is attributed as fault stall, not plain backoff.
	if err := svc.SetFaultProfile(faults.Profile{DownFibers: allFiberIDs(svc)}); err != nil {
		t.Fatal(err)
	}
	sub := subs[0]
	sub.RetryBudget = 3
	st, err := svc.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := svc.Get(st.ID); got.State != StateRetrying {
		t.Fatalf("state after faulted epoch = %q, want retrying", got.State)
	}
	// Lift the outage; the retry completes once its backoff elapses.
	if err := svc.SetFaultProfile(faults.Profile{}); err != nil {
		t.Fatal(err)
	}
	final := stepUntilTerminal(t, svc, st.ID, 10)
	if final.State != StateCompleted {
		t.Fatalf("final state = %q (%s), want completed", final.State, final.Error)
	}
	if final.Retries == 0 {
		t.Fatal("transfer completed without retrying — scenario did not exercise the retry path")
	}

	tr, err := svc.Trace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != st.ID || tr.State != StateCompleted || tr.Retries != final.Retries {
		t.Fatalf("trace header = %+v", tr)
	}
	if tr.DroppedEvents != 0 {
		t.Fatalf("default ring dropped %d events on a %d-retry flight", tr.DroppedEvents, final.Retries)
	}
	// Complete ordered timeline: gap-free seqs, nondecreasing stamps,
	// admitted first, terminal("completed") last, with the retry lifecycle
	// (fault-coincident attempt, retry scheduled) in between.
	kinds := map[string]int{}
	for i, ev := range tr.Events {
		kinds[ev.Kind]++
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i > 0 && ev.WallNs < tr.Events[i-1].WallNs {
			t.Fatalf("wall stamps regress at event %d", i)
		}
	}
	if tr.Events[0].Kind != "admitted" {
		t.Fatalf("first event = %q, want admitted", tr.Events[0].Kind)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != "terminal" || last.Note != "completed" {
		t.Fatalf("last event = %q/%q, want terminal/completed", last.Kind, last.Note)
	}
	for _, want := range []string{"queue_enter", "queue_exit", "epoch_assigned", "fault_coincident", "planned", "executed", "retry_scheduled", "decode_verdict"} {
		if kinds[want] == 0 {
			t.Fatalf("timeline missing %q events: %v", want, kinds)
		}
	}

	// The segment-sum contract, exact to the nanosecond: attributed wall
	// time telescopes over consecutive event stamps.
	var segSum, tickSum int64
	seen := map[string]bool{}
	for _, seg := range tr.Segments {
		segSum += seg.WallNs
		tickSum += seg.Ticks
		seen[seg.Class] = true
	}
	if segSum != tr.TotalWallNs {
		t.Fatalf("segments sum to %dns, total is %dns", segSum, tr.TotalWallNs)
	}
	if tickSum != tr.TotalTicks {
		t.Fatalf("segment ticks sum to %d, total is %d", tickSum, tr.TotalTicks)
	}
	if !seen[SegQueueWait] || !seen[SegPlan] || !seen[SegExecute] {
		t.Fatalf("core segments missing: %+v", tr.Segments)
	}
	if !seen[SegFaultStall] {
		t.Fatalf("fault-coincident retry must be attributed as fault_stall, got %+v", tr.Segments)
	}
	if seen[SegRetryBackoff] {
		t.Fatalf("every retry here was fault-coincident; retry_backoff must be absent: %+v", tr.Segments)
	}
	// The status wall latency is derived from the same stamps.
	if final.WallLatencySeconds != tr.TotalSeconds {
		t.Fatalf("status wall %.9fs != trace total %.9fs", final.WallLatencySeconds, tr.TotalSeconds)
	}

	// Terminal segments land on the /status attribution block and the
	// per-segment HDRs.
	status := svc.Status()
	if status.Attribution[SegFaultStall].Count == 0 || status.Attribution[SegExecute].Count == 0 {
		t.Fatalf("status attribution missing segments: %+v", status.Attribution)
	}
}

// TestAttributionClassifiesBackoffWithoutFaults pins the retry_backoff vs
// fault_stall split: a retry whose failing attempt ran with no live outage is
// the transfer's own backoff, not a fault stall.
func TestAttributionClassifiesBackoffWithoutFaults(t *testing.T) {
	events := []telemetry.FlightEvent{
		{Seq: 0, Kind: telemetry.FlightAdmitted, Tick: 0, WallNs: 0},
		{Seq: 1, Kind: telemetry.FlightQueueEnter, Tick: 0, WallNs: 1},
		{Seq: 2, Kind: telemetry.FlightQueueExit, Tick: 0, WallNs: 10},
		{Seq: 3, Kind: telemetry.FlightPlanned, Tick: 0, WallNs: 15},
		{Seq: 4, Kind: telemetry.FlightExecuted, Tick: 0, WallNs: 25},
		{Seq: 5, Kind: telemetry.FlightRetryScheduled, Tick: 0, WallNs: 26},
		{Seq: 6, Kind: telemetry.FlightQueueExit, Tick: 2, WallNs: 50},
		{Seq: 7, Kind: telemetry.FlightPlanned, Tick: 2, WallNs: 55},
		{Seq: 8, Kind: telemetry.FlightExecuted, Tick: 2, WallNs: 70},
		{Seq: 9, Kind: telemetry.FlightTerminal, Tick: 2, WallNs: 71, Note: "completed"},
	}
	a := attribute(events, 0, 0, 0)
	if a.wallNs[SegQueueWait] != 10 {
		t.Fatalf("queue_wait = %d, want 10", a.wallNs[SegQueueWait])
	}
	if a.wallNs[SegRetryBackoff] != 24 {
		t.Fatalf("retry_backoff = %d, want 24 (26..50)", a.wallNs[SegRetryBackoff])
	}
	if a.wallNs[SegFaultStall] != 0 {
		t.Fatalf("fault_stall = %d, want 0 without fault-coincident attempts", a.wallNs[SegFaultStall])
	}
	if a.wallNs[SegPlan] != 10 || a.wallNs[SegExecute] != 27 {
		t.Fatalf("plan/execute = %d/%d, want 10/27", a.wallNs[SegPlan], a.wallNs[SegExecute])
	}
	var sum int64
	for _, v := range a.wallNs {
		sum += v
	}
	if sum != 71 {
		t.Fatalf("attribution sums to %d, want 71", sum)
	}
}

// TestFlightRecordingDisabled pins the FlightEvents<0 escape hatch: no
// flights, traces 404, but transfers still complete with wall latency from
// the fallback clock math.
func TestFlightRecordingDisabled(t *testing.T) {
	svc, subs := fixture(t, Config{FlightEvents: -1, FaultTick: -1})
	st, err := svc.Submit(subs[0])
	if err != nil {
		t.Fatal(err)
	}
	final := stepUntilTerminal(t, svc, st.ID, 5)
	if final.State != StateCompleted || final.WallLatencySeconds <= 0 {
		t.Fatalf("flights-off transfer = %+v", final)
	}
	if _, err := svc.Trace(st.ID); !errors.Is(err, ErrUnknownTransfer) {
		t.Fatalf("Trace with recording disabled = %v, want ErrUnknownTransfer", err)
	}
	if got := svc.Bundle(); len(got.Flights) != 0 {
		t.Fatalf("bundle carries %d flights with recording disabled", len(got.Flights))
	}
}

func TestTraceUnknownTransfer(t *testing.T) {
	svc, _ := fixture(t, Config{FaultTick: -1})
	if _, err := svc.Trace("t-404"); !errors.Is(err, ErrUnknownTransfer) {
		t.Fatalf("Trace(unknown) = %v, want ErrUnknownTransfer", err)
	}
}

// TestWorkerInvarianceWithFlights pins the side-effect-freedom contract:
// identical admission + fault timelines produce identical terminal outcomes
// whether flight recording is on or off, and for every worker count.
func TestWorkerInvarianceWithFlights(t *testing.T) {
	profile := &faults.Profile{
		FiberCrashProb:   0.05,
		FiberRepairSlots: 10,
		Script:           []faults.ScriptedFault{{Slot: 1, Duration: 50, Node: true, ID: 2}},
	}
	type outcome struct {
		State, Class                 string
		Accepted, Delivered, Success int
		Retries                      int
		Epoch                        int64
	}
	run := func(workers, flightEvents int) map[string]outcome {
		svc, subs := fixture(t, Config{
			Workers:      workers,
			EpochMax:     2,
			FaultTick:    -1,
			Faults:       profile,
			FlightEvents: flightEvents,
		})
		var ids []string
		for _, sub := range subs {
			sub.RetryBudget = 2
			st, err := svc.Submit(sub)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		for i := 0; i < 3; i++ {
			svc.StepFaults()
		}
		if _, err := svc.StepEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := svc.drain(); err != nil {
			t.Fatal(err)
		}
		got := make(map[string]outcome, len(ids))
		for _, id := range ids {
			st, err := svc.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			got[id] = outcome{
				State: st.State, Class: st.FailureClass,
				Accepted: st.AcceptedCodes, Delivered: st.DeliveredCodes,
				Success: st.SuccessCodes, Retries: st.Retries, Epoch: st.Epoch,
			}
		}
		return got
	}
	base := run(1, 0) // flights on, default ring
	for _, tc := range []struct{ workers, flightEvents int }{
		{4, 0},  // flights on, wide pool
		{1, -1}, // flights off
		{4, -1}, // flights off, wide pool
		{2, 4},  // tiny ring forcing eviction mid-flight
	} {
		got := run(tc.workers, tc.flightEvents)
		for id, want := range base {
			if got[id] != want {
				t.Fatalf("workers=%d flights=%d: transfer %s = %+v, want %+v",
					tc.workers, tc.flightEvents, id, got[id], want)
			}
		}
	}
}

// TestQueuePressureVisibleInStatus is the satellite-2 regression test: depth
// sampling and queue-wait quantiles must surface on /status before any shed.
func TestQueuePressureVisibleInStatus(t *testing.T) {
	clock := &testClock{}
	reg := telemetry.NewRegistry()
	svc, subs := fixture(t, Config{Metrics: reg, FaultTick: -1, FlightClock: clock.Now})
	for _, sub := range subs {
		if _, err := svc.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Status()
	if st.Queue == nil || st.Queue.Depth != len(subs) {
		t.Fatalf("queue block = %+v, want depth %d", st.Queue, len(subs))
	}
	if st.Queue.Samples == 0 || st.Queue.DepthP99 < 1 {
		t.Fatalf("depth sampling empty before epoch: %+v", st.Queue)
	}
	if g := reg.Gauge("service.queue_depth").Value(); g != float64(len(subs)) {
		t.Fatalf("queue depth gauge = %v, want %d", g, len(subs))
	}
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = svc.Status()
	if st.Queue.WaitP50Seconds <= 0 || st.Queue.WaitP99Seconds < st.Queue.WaitP50Seconds {
		t.Fatalf("queue-wait quantiles = %+v", st.Queue)
	}
	if reg.HDR("service.queue_wait_wall_seconds", telemetry.WallLatencySpec).Count() != int64(len(subs)) {
		t.Fatal("queue-wait HDR must observe each first dispatch")
	}
}

// TestRetryAfterClampBoundaries is the satellite-3 regression test for the
// [1, 30] clamp and the empty-HDR fallback.
func TestRetryAfterClampBoundaries(t *testing.T) {
	svc, _ := fixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	if got := svc.RetryAfterHint(); got != 1 {
		t.Fatalf("empty-HDR hint = %d, want fallback 1", got)
	}
	// Sub-second epochs clamp up to the floor of 1.
	for i := 0; i < 20; i++ {
		svc.epochWall.Observe(0.01)
	}
	if got := svc.RetryAfterHint(); got != 1 {
		t.Fatalf("fast-epoch hint = %d, want 1", got)
	}
	// A p50 far past the ceiling clamps down to 30.
	for i := 0; i < 200; i++ {
		svc.epochWall.Observe(500)
	}
	if got := svc.RetryAfterHint(); got != 30 {
		t.Fatalf("slow-epoch hint = %d, want clamp 30", got)
	}
}

// TestConcurrentSubmitStepFlightOrdering drives admissions concurrently with
// epoch execution and checks every flight stays internally consistent:
// gap-free seqs, monotone stamps, segments summing to the total. Run under
// -race in CI.
func TestConcurrentSubmitStepFlightOrdering(t *testing.T) {
	svc, subs := fixture(t, Config{EpochMax: 2, FaultTick: -1})
	var ids []string
	var idMu sync.Mutex
	stop := make(chan struct{})
	stepperDone := make(chan struct{})
	go func() {
		defer close(stepperDone)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := svc.StepEpoch(context.Background()); err != nil {
					return
				}
			}
		}
	}()
	var submitters sync.WaitGroup
	for i := 0; i < 4; i++ {
		submitters.Add(1)
		go func(i int) {
			defer submitters.Done()
			for j := 0; j < 5; j++ {
				st, err := svc.Submit(subs[(i+j)%len(subs)])
				if err != nil {
					continue
				}
				idMu.Lock()
				ids = append(ids, st.ID)
				idMu.Unlock()
			}
		}(i)
	}
	// Stop the stepper once every submitter is done, then drain stragglers.
	submitters.Wait()
	close(stop)
	<-stepperDone
	if err := svc.drain(); err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no transfers admitted")
	}
	for _, id := range ids {
		tr, err := svc.Trace(id)
		if err != nil {
			t.Fatal(err)
		}
		for i, ev := range tr.Events {
			if ev.Seq != uint64(i) {
				t.Fatalf("%s event %d has seq %d", id, i, ev.Seq)
			}
			if i > 0 && ev.WallNs < tr.Events[i-1].WallNs {
				t.Fatalf("%s wall stamps regress at event %d", id, i)
			}
		}
		var sum int64
		for _, seg := range tr.Segments {
			sum += seg.WallNs
		}
		if sum != tr.TotalWallNs {
			t.Fatalf("%s segments sum %d != total %d", id, sum, tr.TotalWallNs)
		}
	}
}

// TestHTTPTraceAndBundle covers the new observability endpoints end to end.
func TestHTTPTraceAndBundle(t *testing.T) {
	svc, subs, srv := apiFixture(t, Config{Metrics: telemetry.NewRegistry(), FaultTick: -1})
	resp := postTransfer(t, srv.URL, subs[0])
	var st TransferStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := svc.StepEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp2, err := http.Get(srv.URL + "/v1/transfers/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d, want 200", resp2.StatusCode)
	}
	var tr FlightTrace
	if err := json.NewDecoder(resp2.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != st.ID || len(tr.Events) == 0 || tr.Events[0].Kind != "admitted" {
		t.Fatalf("trace = %+v", tr)
	}

	resp3, err := http.Get(srv.URL + "/v1/transfers/t-404/trace")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp3.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound || eb.Error == "" {
		t.Fatalf("unknown trace = %d %q, want JSON 404 envelope", resp3.StatusCode, eb.Error)
	}

	resp4, err := http.Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/bundle = %d, want 200", resp4.StatusCode)
	}
	var bundle DebugBundle
	if err := json.NewDecoder(resp4.Body).Decode(&bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.Status.Completed != 1 || len(bundle.Flights) != 1 {
		t.Fatalf("bundle = completed %d, %d flights; want 1, 1", bundle.Status.Completed, len(bundle.Flights))
	}
	if bundle.Flights[0].ID != st.ID || bundle.Flights[0].State != StateCompleted {
		t.Fatalf("bundled flight = %+v", bundle.Flights[0])
	}
	if len(bundle.Metrics.Counters) == 0 {
		t.Fatal("bundle metrics snapshot empty")
	}
}

// TestHTTPUnknownPathJSON404 is the satellite-1 regression test: unmatched
// /v1/ paths (and unknown transfer IDs) answer with the JSON error envelope,
// never the mux's bare text 404.
func TestHTTPUnknownPathJSON404(t *testing.T) {
	_, _, srv := apiFixture(t, Config{FaultTick: -1})
	for _, path := range []string{"/v1/transfers/t-404", "/v1/nope", "/v1/transfers/t-1/unknown"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content-type = %q, want application/json", path, ct)
		}
		var eb errorBody
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if err != nil || eb.Error == "" {
			t.Fatalf("GET %s: body is not the JSON error envelope (err=%v, %+v)", path, err, eb)
		}
	}
}
