package service

import (
	"fmt"

	"surfnet/internal/telemetry"
)

// Latency attribution decomposes a transfer's admission-to-terminal wall time
// into named segments by walking its flight events in order. Segments are
// telescoping: each recorded event closes the interval since the previous one
// and charges it to exactly one class, so the per-class sums always add up to
// the transfer's total wall time to the nanosecond — no double counting, no
// unattributed gaps (the "±1 tick" acceptance bound is conservative; the
// implementation is exact over the retained event window).

// Segment classes. Every nanosecond between a flight's first and last event
// lands in exactly one of these.
const (
	// SegQueueWait is admission to first epoch dispatch: time spent in the
	// bounded queue before the transfer's first attempt.
	SegQueueWait = "queue_wait"
	// SegPlan is epoch dispatch to plan completion: LP (or greedy) routing.
	SegPlan = "plan"
	// SegExecute is plan completion to attempt verdict: engine execution and
	// decode.
	SegExecute = "execute"
	// SegRetryBackoff is attempt failure to next dispatch for retries whose
	// failing attempt ran without live faults in effect.
	SegRetryBackoff = "retry_backoff"
	// SegFaultStall is the same re-queue interval when the failing attempt
	// was fault-coincident: time lost waiting out an outage, not the
	// transfer's own backoff policy.
	SegFaultStall = "fault_stall"
	// SegTruncated covers the window a flight's bounded ring has evicted:
	// only the interval from admission to the oldest retained event, and only
	// when events were dropped.
	SegTruncated = "truncated"
)

// segmentClasses is the canonical order segments render in.
var segmentClasses = [...]string{
	SegQueueWait, SegPlan, SegExecute, SegRetryBackoff, SegFaultStall, SegTruncated,
}

// attribution is the per-class accumulation for one flight.
type attribution struct {
	wallNs map[string]int64
	ticks  map[string]int64
}

// attribute walks a flight's retained events and charges every inter-event
// interval to a segment class. firstWall/firstTick are the flight's first
// event stamps (they survive ring eviction); when the ring has dropped events
// the gap from admission to the oldest retained event lands in SegTruncated.
func attribute(events []telemetry.FlightEvent, firstWall, firstTick int64, dropped int) attribution {
	a := attribution{wallNs: make(map[string]int64), ticks: make(map[string]int64)}
	if len(events) == 0 {
		return a
	}
	prevWall, prevTick := firstWall, firstTick
	if dropped > 0 {
		a.wallNs[SegTruncated] = events[0].WallNs - firstWall
		a.ticks[SegTruncated] = events[0].Tick - firstTick
		prevWall, prevTick = events[0].WallNs, events[0].Tick
	}
	// pendingWait classifies time spent off-epoch (queued or backing off);
	// it flips from queue_wait to retry_backoff/fault_stall after the first
	// retry_scheduled. inAttempt and sawExec track where inside an attempt
	// the flight currently is; faultAttempt marks the attempt fault-coincident
	// so a subsequent re-queue is charged as fault stall.
	pendingWait := SegQueueWait
	inAttempt := false
	sawExec := false
	faultAttempt := false
	charge := func(class string, ev telemetry.FlightEvent) {
		a.wallNs[class] += ev.WallNs - prevWall
		a.ticks[class] += ev.Tick - prevTick
		prevWall, prevTick = ev.WallNs, ev.Tick
	}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.FlightAdmitted, telemetry.FlightQueueEnter:
			charge(pendingWait, ev)
		case telemetry.FlightQueueExit, telemetry.FlightEpochAssigned:
			charge(pendingWait, ev)
			inAttempt, sawExec, faultAttempt = true, false, false
		case telemetry.FlightPlanned:
			charge(SegPlan, ev)
		case telemetry.FlightFaultCoincident:
			charge(SegPlan, ev)
			faultAttempt = true
		case telemetry.FlightExecuted, telemetry.FlightDecodeVerdict:
			charge(SegExecute, ev)
			sawExec = true
		case telemetry.FlightRetryScheduled:
			if sawExec {
				charge(SegExecute, ev)
			} else {
				charge(SegPlan, ev)
			}
			if faultAttempt {
				pendingWait = SegFaultStall
			} else {
				pendingWait = SegRetryBackoff
			}
			inAttempt = false
		case telemetry.FlightTerminal:
			switch {
			case sawExec:
				charge(SegExecute, ev)
			case inAttempt:
				charge(SegPlan, ev)
			default:
				charge(pendingWait, ev)
			}
		default:
			charge(pendingWait, ev)
		}
	}
	return a
}

// Segment is one attributed slice of a transfer's wall time.
type Segment struct {
	Class   string  `json:"class"`
	Ticks   int64   `json:"ticks"`
	WallNs  int64   `json:"wall_ns"`
	Seconds float64 `json:"seconds"`
}

// TraceEvent is one flight event rendered for the /trace API.
type TraceEvent struct {
	Seq    uint64           `json:"seq"`
	Kind   string           `json:"kind"`
	Tick   int64            `json:"tick"`
	WallNs int64            `json:"wall_ns"`
	Note   string           `json:"note,omitempty"`
	Detail map[string]int64 `json:"detail,omitempty"`
}

// FlightTrace is the GET /v1/transfers/{id}/trace response: the transfer's
// full ordered timeline plus its latency attribution.
type FlightTrace struct {
	ID           string `json:"id"`
	Tenant       string `json:"tenant,omitempty"`
	State        string `json:"state"`
	FailureClass string `json:"failure_class,omitempty"`
	Epoch        int64  `json:"epoch,omitempty"`
	Retries      int    `json:"retries,omitempty"`
	// Events is the retained timeline, oldest first, gap-free in seq over
	// the retained window; DroppedEvents counts ring evictions.
	Events        []TraceEvent `json:"events"`
	DroppedEvents int          `json:"dropped_events,omitempty"`
	// Segments attribute the admission-to-latest-event interval; their
	// WallNs values sum exactly to TotalWallNs.
	Segments     []Segment `json:"segments"`
	TotalTicks   int64     `json:"total_ticks"`
	TotalWallNs  int64     `json:"total_wall_ns"`
	TotalSeconds float64   `json:"total_seconds"`
}

// eventDetail renders a flight event's kind-specific arguments under stable
// JSON keys.
func eventDetail(ev telemetry.FlightEvent) map[string]int64 {
	switch ev.Kind {
	case telemetry.FlightQueueEnter, telemetry.FlightQueueExit:
		return map[string]int64{"queue_depth": ev.A}
	case telemetry.FlightEpochAssigned:
		return map[string]int64{"epoch": ev.A}
	case telemetry.FlightPlanned:
		return map[string]int64{"batch": ev.A}
	case telemetry.FlightFaultCoincident:
		return map[string]int64{"down_fibers": ev.A, "down_nodes": ev.B}
	case telemetry.FlightExecuted:
		return map[string]int64{"accepted": ev.A, "delivered": ev.B, "success": ev.C}
	case telemetry.FlightDecodeVerdict:
		return map[string]int64{"delivered": ev.A, "success": ev.B}
	case telemetry.FlightRetryScheduled:
		return map[string]int64{"backoff_epochs": ev.A, "not_before_epoch": ev.B}
	}
	return nil
}

// buildTrace renders a flight snapshot plus its transfer status into the wire
// form. The status may be the zero value when the transfer record is gone.
func buildTrace(snap telemetry.FlightSnapshot, firstWall, firstTick int64, st TransferStatus) FlightTrace {
	tr := FlightTrace{
		ID:            snap.ID,
		Tenant:        st.Tenant,
		State:         st.State,
		FailureClass:  st.FailureClass,
		Epoch:         st.Epoch,
		Retries:       st.Retries,
		Events:        make([]TraceEvent, 0, len(snap.Events)),
		DroppedEvents: snap.Dropped,
	}
	for _, ev := range snap.Events {
		tr.Events = append(tr.Events, TraceEvent{
			Seq:    ev.Seq,
			Kind:   ev.Kind.String(),
			Tick:   ev.Tick,
			WallNs: ev.WallNs,
			Note:   ev.Note,
			Detail: eventDetail(ev),
		})
	}
	a := attribute(snap.Events, firstWall, firstTick, snap.Dropped)
	for _, class := range segmentClasses {
		w, t := a.wallNs[class], a.ticks[class]
		if w == 0 && t == 0 {
			continue
		}
		tr.Segments = append(tr.Segments, Segment{
			Class: class, Ticks: t, WallNs: w, Seconds: float64(w) / 1e9,
		})
	}
	if n := len(snap.Events); n > 0 {
		tr.TotalWallNs = snap.Events[n-1].WallNs - firstWall
		tr.TotalTicks = snap.Events[n-1].Tick - firstTick
		tr.TotalSeconds = float64(tr.TotalWallNs) / 1e9
	}
	return tr
}

// Trace returns a transfer's flight timeline and latency attribution. It
// works for live and terminal transfers alike (a live transfer's trace ends
// at its most recent event). ErrUnknownTransfer maps to 404; so does flight
// recording being disabled.
func (s *Service) Trace(id string) (FlightTrace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.transfers[id]
	if !ok {
		return FlightTrace{}, ErrUnknownTransfer
	}
	if t.flight == nil {
		return FlightTrace{}, fmt.Errorf("%w: flight recording disabled", ErrUnknownTransfer)
	}
	snap := telemetry.FlightSnapshot{
		ID:      t.flight.ID(),
		Events:  t.flight.Events(),
		Dropped: t.flight.Dropped(),
	}
	return buildTrace(snap, t.flight.StartWallNs(), t.flight.StartTick(), t.status), nil
}

// DebugBundle is the GET /debug/bundle response: one-shot incident snapshot
// bundling the service status, the full metrics registry, the live fault
// plane, and the last-N terminal flights with attribution.
type DebugBundle struct {
	Status  Status             `json:"status"`
	Metrics telemetry.Snapshot `json:"metrics"`
	Faults  FaultState         `json:"faults"`
	Flights []FlightTrace      `json:"flights"`
}

// Bundle assembles the incident snapshot. Metrics are empty when the service
// runs without a registry; Flights when flight recording is disabled.
func (s *Service) Bundle() DebugBundle {
	b := DebugBundle{
		Status: s.Status(),
		Faults: s.plane.State(),
	}
	if s.cfg.Metrics != nil {
		b.Metrics = s.cfg.Metrics.Snapshot()
	}
	snaps := s.recorder.Recent()
	b.Flights = make([]FlightTrace, 0, len(snaps))
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, snap := range snaps {
		var st TransferStatus
		var firstWall, firstTick int64
		if t, ok := s.transfers[snap.ID]; ok {
			st = t.status
			firstWall, firstTick = t.flight.StartWallNs(), t.flight.StartTick()
		} else if len(snap.Events) > 0 {
			// Snapshot events always start at the flight's first event
			// unless the ring dropped some; then the earliest stamp we
			// still have anchors the (truncated) attribution.
			firstWall, firstTick = snap.Events[0].WallNs, snap.Events[0].Tick
		}
		b.Flights = append(b.Flights, buildTrace(snap, firstWall, firstTick, st))
	}
	return b
}
