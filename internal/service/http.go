package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// API is the service's HTTP/JSON surface:
//
//	POST /v1/transfers       admit a transfer (202; 429 shed + Retry-After;
//	                         503 draining; 400 invalid)
//	GET  /v1/transfers/{id}  transfer status (200; 404 unknown)
//	GET  /v1/network         network snapshot (nodes, fibers, roles)
//
// RegisterRoutes mounts these on any mux-like mount function — in the
// daemon, the obs.Server's mux, so the ops plane and the serving plane share
// one listener.
func (s *Service) RegisterRoutes(mount func(pattern string, h http.Handler)) {
	mount("POST /v1/transfers", http.HandlerFunc(s.handleSubmit))
	mount("GET /v1/transfers/{id}", http.HandlerFunc(s.handleGet))
	mount("GET /v1/network", http.HandlerFunc(s.handleNetwork))
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req TransferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	st, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Shed: the queue drains one epoch at a time, so a short client
		// backoff is the right hint.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// NetworkInfo is the GET /v1/network response.
type NetworkInfo struct {
	Nodes  []NodeInfo  `json:"nodes"`
	Fibers []FiberInfo `json:"fibers"`
}

// NodeInfo describes one node.
type NodeInfo struct {
	ID       int    `json:"id"`
	Role     string `json:"role"`
	Capacity int    `json:"capacity,omitempty"`
}

// FiberInfo describes one fiber.
type FiberInfo struct {
	ID       int     `json:"id"`
	A        int     `json:"a"`
	B        int     `json:"b"`
	Fidelity float64 `json:"fidelity"`
	EntPairs int     `json:"ent_pairs"`
}

func (s *Service) handleNetwork(w http.ResponseWriter, r *http.Request) {
	net := s.eng.Network()
	info := NetworkInfo{}
	for i := 0; i < net.NumNodes(); i++ {
		n := net.Node(i)
		info.Nodes = append(info.Nodes, NodeInfo{
			ID: n.ID, Role: n.Role.String(), Capacity: n.Capacity,
		})
	}
	for i := 0; i < net.NumFibers(); i++ {
		f := net.Fiber(i)
		info.Fibers = append(info.Fibers, FiberInfo{
			ID: f.ID, A: f.A, B: f.B, Fidelity: f.Fidelity, EntPairs: f.EntPairs,
		})
	}
	writeJSON(w, http.StatusOK, info)
}
