package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"surfnet/internal/faults"
)

// API is the service's HTTP/JSON surface:
//
//	POST /v1/transfers             admit a transfer (202; 429 shed +
//	                               Retry-After; 503 draining; 400 invalid)
//	GET  /v1/transfers/{id}        transfer status (200; 404 unknown)
//	GET  /v1/transfers/{id}/trace  flight timeline + latency attribution
//	                               (200; 404 unknown or recording disabled)
//	GET  /v1/network               network snapshot (nodes, fibers, roles)
//	GET  /v1/faults                live fault-plane snapshot + armed scenario
//	POST /v1/faults                swap the live fault scenario (200; 400)
//	GET  /debug/bundle             one-shot incident snapshot (status,
//	                               metrics, faults, last-N terminal flights)
//
// Every non-2xx response under /v1/ carries the JSON error envelope — a
// catch-all turns the mux's bare 404s on unmatched /v1/ paths into it too.
//
// RegisterRoutes mounts these on any mux-like mount function — in the
// daemon, the obs.Server's mux, so the ops plane and the serving plane share
// one listener.
func (s *Service) RegisterRoutes(mount func(pattern string, h http.Handler)) {
	mount("POST /v1/transfers", http.HandlerFunc(s.handleSubmit))
	mount("GET /v1/transfers/{id}", http.HandlerFunc(s.handleGet))
	mount("GET /v1/transfers/{id}/trace", http.HandlerFunc(s.handleTrace))
	mount("GET /v1/network", http.HandlerFunc(s.handleNetwork))
	mount("GET /v1/faults", http.HandlerFunc(s.handleGetFaults))
	mount("POST /v1/faults", http.HandlerFunc(s.handleSetFaults))
	mount("GET /debug/bundle", http.HandlerFunc(s.handleBundle))
	mount("/v1/", http.HandlerFunc(handleNotFound))
}

// handleNotFound keeps unmatched /v1/ paths on the JSON error envelope
// instead of the mux's bare text 404. (Method mismatches on registered /v1/
// paths land here too, as 404s — the envelope wins over 405 fidelity.)
func handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotFound, errorBody{Error: "service: no such endpoint: " + r.Method + " " + r.URL.Path})
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req TransferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	st, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Shed: the queue drains one epoch at a time, so the observed epoch
		// wall-clock p50 is the right client backoff hint.
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterHint()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, err := s.Trace(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Service) handleBundle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Bundle())
}

// FaultRequest is the POST /v1/faults body: the declarative fault scenario in
// JSON form, with the scripted timetable in the same textual syntax as the
// -fault-script flag. It replaces the armed scenario wholesale; an empty body
// clears all injected faults.
type FaultRequest struct {
	FiberCrashProb      float64 `json:"fiber_crash_prob,omitempty"`
	FiberRepairSlots    int     `json:"fiber_repair_slots,omitempty"`
	NodeOutageProb      float64 `json:"node_outage_prob,omitempty"`
	NodeRepairSlots     int     `json:"node_repair_slots,omitempty"`
	RegionalProb        float64 `json:"regional_prob,omitempty"`
	RegionalRepairSlots int     `json:"regional_repair_slots,omitempty"`
	DriftProb           float64 `json:"drift_prob,omitempty"`
	DriftWindow         int     `json:"drift_window,omitempty"`
	DriftDecay          float64 `json:"drift_decay,omitempty"`
	// Script is a timetable in flag syntax: SLOT:fiber|node:ID:DURATION,...
	Script string `json:"script,omitempty"`
	// DownFibers/DownNodes/GammaScale pin a static overlay directly.
	DownFibers []int           `json:"down_fibers,omitempty"`
	DownNodes  []int           `json:"down_nodes,omitempty"`
	GammaScale map[int]float64 `json:"gamma_scale,omitempty"`
}

// FaultInfo is the GET /v1/faults (and POST /v1/faults success) response.
type FaultInfo struct {
	State   FaultState   `json:"state"`
	Profile FaultRequest `json:"profile"`
}

// faultInfo snapshots the plane and renders the armed profile back into its
// request form.
func (s *Service) faultInfo() FaultInfo {
	p := s.FaultProfile()
	return FaultInfo{
		State: s.FaultState(),
		Profile: FaultRequest{
			FiberCrashProb:      p.FiberCrashProb,
			FiberRepairSlots:    p.FiberRepairSlots,
			NodeOutageProb:      p.NodeOutageProb,
			NodeRepairSlots:     p.NodeRepairSlots,
			RegionalProb:        p.RegionalProb,
			RegionalRepairSlots: p.RegionalRepairSlots,
			DriftProb:           p.DriftProb,
			DriftWindow:         p.DriftWindow,
			DriftDecay:          p.DriftDecay,
			Script:              faults.FormatScript(p.Script),
			DownFibers:          p.DownFibers,
			DownNodes:           p.DownNodes,
			GammaScale:          p.GammaScale,
		},
	}
}

func (s *Service) handleGetFaults(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.faultInfo())
}

func (s *Service) handleSetFaults(w http.ResponseWriter, r *http.Request) {
	var req FaultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid JSON: " + err.Error()})
		return
	}
	script, err := faults.ParseScript(req.Script)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	profile := faults.Profile{
		FiberCrashProb:      req.FiberCrashProb,
		FiberRepairSlots:    req.FiberRepairSlots,
		NodeOutageProb:      req.NodeOutageProb,
		NodeRepairSlots:     req.NodeRepairSlots,
		RegionalProb:        req.RegionalProb,
		RegionalRepairSlots: req.RegionalRepairSlots,
		DriftProb:           req.DriftProb,
		DriftWindow:         req.DriftWindow,
		DriftDecay:          req.DriftDecay,
		Script:              script,
		DownFibers:          req.DownFibers,
		DownNodes:           req.DownNodes,
		GammaScale:          req.GammaScale,
	}
	if err := s.SetFaultProfile(profile); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, s.faultInfo())
}

// NetworkInfo is the GET /v1/network response.
type NetworkInfo struct {
	Nodes  []NodeInfo  `json:"nodes"`
	Fibers []FiberInfo `json:"fibers"`
}

// NodeInfo describes one node.
type NodeInfo struct {
	ID       int    `json:"id"`
	Role     string `json:"role"`
	Capacity int    `json:"capacity,omitempty"`
}

// FiberInfo describes one fiber.
type FiberInfo struct {
	ID       int     `json:"id"`
	A        int     `json:"a"`
	B        int     `json:"b"`
	Fidelity float64 `json:"fidelity"`
	EntPairs int     `json:"ent_pairs"`
}

func (s *Service) handleNetwork(w http.ResponseWriter, r *http.Request) {
	net := s.eng.Network()
	info := NetworkInfo{}
	for i := 0; i < net.NumNodes(); i++ {
		n := net.Node(i)
		info.Nodes = append(info.Nodes, NodeInfo{
			ID: n.ID, Role: n.Role.String(), Capacity: n.Capacity,
		})
	}
	for i := 0; i < net.NumFibers(); i++ {
		f := net.Fiber(i)
		info.Fibers = append(info.Fibers, FiberInfo{
			ID: f.ID, A: f.A, B: f.B, Fidelity: f.Fidelity, EntPairs: f.EntPairs,
		})
	}
	writeJSON(w, http.StatusOK, info)
}
