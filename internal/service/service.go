// Package service is the resident control plane: a long-running Service owns
// a core.Engine (network state) and a routing.Planner (warm-started LP
// re-planning), admits transfer requests mid-stream into a bounded queue,
// batches them into epochs, and executes each epoch on the deterministic
// worker pool. Admission control and load-shedding are first-class: a full
// queue sheds with ErrQueueFull (HTTP 429), a draining service refuses with
// ErrDraining (HTTP 503), and every decision is counted on the telemetry
// registry the ops plane serves at /metrics.
//
// Determinism: epoch e executes on the rng sub-stream SplitN("epoch", e) of
// the service's root source and runs through core.Engine.ExecuteParallel,
// whose outcomes are worker-count invariant — so a daemon-admitted transfer
// produces the same result regardless of pool width or the wall-clock timing
// of its admission within an epoch.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"surfnet/internal/core"
	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"

	"context"
)

// Admission errors. The HTTP layer maps them onto status codes.
var (
	// ErrQueueFull sheds a submission because the bounded queue is at
	// capacity (HTTP 429 with Retry-After).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining refuses a submission because the service is shutting
	// down (HTTP 503).
	ErrDraining = errors.New("service: draining")
	// ErrUnknownTransfer reports a Get for an ID never admitted.
	ErrUnknownTransfer = errors.New("service: unknown transfer")
)

// Config sizes the resident control plane.
type Config struct {
	// QueueLimit bounds the admission queue; submissions beyond it are
	// shed with ErrQueueFull. Zero selects 256.
	QueueLimit int
	// EpochMax caps transfers batched into one epoch. Zero selects 32.
	EpochMax int
	// Workers sizes the execution pool. Results are identical for every
	// value; zero selects GOMAXPROCS.
	Workers int
	// Seed seeds the root randomness source; epoch e draws from
	// SplitN("epoch", e). Zero selects 1.
	Seed uint64
	// Metrics receives service counters, gauges, and the wall-latency
	// HDR histogram; nil instruments are no-ops.
	Metrics *telemetry.Registry
	// DrainHook, when non-nil, runs exactly once at the start of a drain —
	// before the final epochs execute — so the daemon can flip /readyz off
	// while in-flight work completes.
	DrainHook func()
}

func (c *Config) fill() {
	if c.QueueLimit == 0 {
		c.QueueLimit = 256
	}
	if c.EpochMax == 0 {
		c.EpochMax = 32
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Transfer states.
const (
	StateQueued    = "queued"
	StateCompleted = "completed"
	StateFailed    = "failed"
)

// TransferRequest is one admission request: tenant tag plus the network
// request it carries.
type TransferRequest struct {
	Tenant   string `json:"tenant"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Messages int    `json:"messages"`
}

// TransferStatus is the externally visible state of one transfer.
type TransferStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	State    string `json:"state"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Messages int    `json:"messages"`
	// Epoch is the epoch that executed the transfer (terminal states).
	Epoch int64 `json:"epoch,omitempty"`
	// AcceptedCodes is how many surface codes the scheduler admitted for
	// this transfer; DeliveredCodes and SuccessCodes summarize execution.
	AcceptedCodes  int `json:"accepted_codes"`
	DeliveredCodes int `json:"delivered_codes"`
	SuccessCodes   int `json:"success_codes"`
	// WallLatencySeconds is admission-to-completion wall time (terminal
	// states only).
	WallLatencySeconds float64 `json:"wall_latency_seconds,omitempty"`
	// Error carries the failure reason when State is failed.
	Error string `json:"error,omitempty"`
}

// transfer is the internal record behind a TransferStatus.
type transfer struct {
	status    TransferStatus
	submitted time.Time
}

// TenantStats is the per-tenant admission accounting /status reports.
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
}

// Status is the service snapshot embedded in /status (see
// obs.Server.SetServiceStatus).
type Status struct {
	Draining   bool                   `json:"draining"`
	QueueDepth int                    `json:"queue_depth"`
	Admitted   int64                  `json:"admitted"`
	Completed  int64                  `json:"completed"`
	Failed     int64                  `json:"failed"`
	Shed       int64                  `json:"shed"`
	Epochs     int64                  `json:"epochs"`
	Tenants    map[string]TenantStats `json:"tenants,omitempty"`
	// WallP50/P99 are admission-to-completion latency quantiles in
	// seconds over completed transfers.
	WallP50 float64 `json:"wall_p50_seconds"`
	WallP99 float64 `json:"wall_p99_seconds"`
}

// Service is the resident control plane. Construct with New, serve its HTTP
// API via RegisterRoutes, and run the epoch loop with Run (or drive epochs
// synchronously with StepEpoch in tests).
type Service struct {
	eng *core.Engine
	pl  *routing.Planner
	cfg Config
	src *rng.Source

	admitted   *telemetry.Counter
	completed  *telemetry.Counter
	failed     *telemetry.Counter
	shed       *telemetry.Counter
	epochsCtr  *telemetry.Counter
	queueDepth *telemetry.Gauge
	wall       *telemetry.HDR

	wake chan struct{}

	mu        sync.Mutex
	queue     []*transfer
	transfers map[string]*transfer
	tenants   map[string]*TenantStats
	seq       int64
	epoch     int64
	draining  bool
	drained   chan struct{} // closed when a drain has fully completed
	// totals mirror the registry counters so Status works without metrics.
	totals struct{ admitted, completed, failed, shed int64 }
}

// New builds a service over an engine and planner. The planner's design
// governs scheduling; the engine owns the network the epochs execute on.
func New(eng *core.Engine, pl *routing.Planner, cfg Config) (*Service, error) {
	if eng == nil {
		return nil, errors.New("service: nil engine")
	}
	if pl == nil {
		return nil, errors.New("service: nil planner")
	}
	cfg.fill()
	reg := cfg.Metrics
	s := &Service{
		eng:        eng,
		pl:         pl,
		cfg:        cfg,
		src:        rng.New(cfg.Seed),
		admitted:   reg.Counter("service.admitted"),
		completed:  reg.Counter("service.completed"),
		failed:     reg.Counter("service.failed"),
		shed:       reg.Counter("service.shed"),
		epochsCtr:  reg.Counter("service.epochs"),
		queueDepth: reg.Gauge("service.queue_depth"),
		wake:       make(chan struct{}, 1),
		transfers:  make(map[string]*transfer),
		tenants:    make(map[string]*TenantStats),
		drained:    make(chan struct{}),
	}
	// Every instrument (including a nil registry's) is nil-receiver safe.
	s.wall = reg.HDR("service.transfer_wall_seconds", telemetry.WallLatencySpec)
	return s, nil
}

// Engine exposes the engine (read-only use: network snapshots).
func (s *Service) Engine() *core.Engine { return s.eng }

// Submit admits one transfer into the queue. It returns the queued status,
// or ErrQueueFull / ErrDraining / a validation error naming the reason the
// submission was refused.
func (s *Service) Submit(req TransferRequest) (TransferStatus, error) {
	nreq := network.Request{Src: req.Src, Dst: req.Dst, Messages: req.Messages}
	if err := nreq.Validate(s.eng.Network()); err != nil {
		return TransferStatus{}, fmt.Errorf("service: invalid transfer: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tn := s.tenantLocked(req.Tenant)
	if s.draining {
		tn.Shed++
		s.totals.shed++
		s.shed.Inc()
		return TransferStatus{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		tn.Shed++
		s.totals.shed++
		s.shed.Inc()
		return TransferStatus{}, ErrQueueFull
	}
	s.seq++
	t := &transfer{
		status: TransferStatus{
			ID:       fmt.Sprintf("t-%d", s.seq),
			Tenant:   req.Tenant,
			State:    StateQueued,
			Src:      req.Src,
			Dst:      req.Dst,
			Messages: req.Messages,
		},
		submitted: time.Now(),
	}
	s.queue = append(s.queue, t)
	s.transfers[t.status.ID] = t
	tn.Admitted++
	s.totals.admitted++
	s.admitted.Inc()
	s.queueDepth.Set(float64(len(s.queue)))
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return t.status, nil
}

// Get returns the status of a transfer by ID.
func (s *Service) Get(id string) (TransferStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.transfers[id]
	if !ok {
		return TransferStatus{}, ErrUnknownTransfer
	}
	return t.status, nil
}

// tenantLocked returns the accounting record for a tenant, creating it on
// first sight. The empty tenant is tracked as "default".
func (s *Service) tenantLocked(name string) *TenantStats {
	if name == "" {
		name = "default"
	}
	st, ok := s.tenants[name]
	if !ok {
		st = &TenantStats{}
		s.tenants[name] = st
	}
	return st
}

// Status snapshots the service for the ops plane.
func (s *Service) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Draining:   s.draining,
		QueueDepth: len(s.queue),
		Admitted:   s.totals.admitted,
		Completed:  s.totals.completed,
		Failed:     s.totals.failed,
		Shed:       s.totals.shed,
		Epochs:     s.epoch,
		Tenants:    make(map[string]TenantStats, len(s.tenants)),
	}
	for name, ts := range s.tenants {
		st.Tenants[name] = *ts
	}
	if s.wall.Count() > 0 {
		st.WallP50 = s.wall.Quantile(0.5)
		st.WallP99 = s.wall.Quantile(0.99)
	}
	return st
}

// StepEpoch synchronously executes one epoch: it takes up to EpochMax queued
// transfers, plans them with the warm planner, runs the schedule on the
// parallel engine, and drives every taken transfer to a terminal state. It
// returns how many transfers it processed (0 = queue empty). Planning or
// execution errors fail the epoch's transfers — admitted work always reaches
// a terminal state — and are returned for logging.
func (s *Service) StepEpoch(ctx context.Context) (int, error) {
	s.mu.Lock()
	n := len(s.queue)
	if n == 0 {
		s.mu.Unlock()
		return 0, nil
	}
	if n > s.cfg.EpochMax {
		n = s.cfg.EpochMax
	}
	batch := s.queue[:n]
	s.queue = s.queue[n:]
	s.queueDepth.Set(float64(len(s.queue)))
	epoch := s.epoch
	s.epoch++
	s.mu.Unlock()

	reqs := make([]network.Request, n)
	for i, t := range batch {
		reqs[i] = network.Request{Src: t.status.Src, Dst: t.status.Dst, Messages: t.status.Messages}
	}
	sched, err := s.pl.Plan(s.eng.Network(), reqs)
	if err != nil {
		s.failBatch(batch, epoch, fmt.Errorf("planning: %w", err))
		return n, fmt.Errorf("service: epoch %d planning: %w", epoch, err)
	}
	res, err := s.eng.ExecuteParallel(ctx, sched, s.src.SplitN("epoch", int(epoch)), s.cfg.Workers)
	if err != nil {
		s.failBatch(batch, epoch, fmt.Errorf("execution: %w", err))
		return n, fmt.Errorf("service: epoch %d execution: %w", epoch, err)
	}
	// Greedy repair preserves the request list 1:1 (sched.Requests[i] is
	// reqs[i]), so outcomes map straight back onto the batch.
	delivered := make([]int, n)
	success := make([]int, n)
	for _, o := range res.Outcomes {
		if o.Delivered {
			delivered[o.Request]++
		}
		if o.Success {
			success[o.Request]++
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochsCtr.Inc()
	for i, t := range batch {
		t.status.State = StateCompleted
		t.status.Epoch = epoch
		if len(sched.Requests) == n {
			t.status.AcceptedCodes = sched.Requests[i].Accepted()
		}
		t.status.DeliveredCodes = delivered[i]
		t.status.SuccessCodes = success[i]
		t.status.WallLatencySeconds = time.Since(t.submitted).Seconds()
		s.wall.Observe(t.status.WallLatencySeconds)
		s.tenantLocked(t.status.Tenant).Completed++
		s.totals.completed++
		s.completed.Inc()
	}
	return n, nil
}

// failBatch drives a batch to the failed state after an epoch-level error.
func (s *Service) failBatch(batch []*transfer, epoch int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range batch {
		t.status.State = StateFailed
		t.status.Epoch = epoch
		t.status.Error = err.Error()
		t.status.WallLatencySeconds = time.Since(t.submitted).Seconds()
		s.tenantLocked(t.status.Tenant).Failed++
		s.totals.failed++
		s.failed.Inc()
	}
}

// Run is the daemon's epoch loop: it executes epochs as admissions arrive
// and, once ctx is cancelled (SIGTERM), drains — refusing new admissions,
// completing every queued transfer, and only then returning. The returned
// error is the last epoch error seen during the drain, if any; transfers
// touched by a failing epoch are in the failed state, never silently
// dropped.
func (s *Service) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return s.drain()
		case <-s.wake:
		}
		for {
			// Epochs run to completion even if ctx is cancelled mid-epoch;
			// cancellation is observed between epochs, at the drain point.
			n, err := s.StepEpoch(context.Background())
			if err != nil {
				return s.drainAfter(err)
			}
			if n == 0 {
				break
			}
		}
	}
}

// drain refuses further admissions and completes everything still queued.
func (s *Service) drain() error { return s.drainAfter(nil) }

func (s *Service) drainAfter(sticky error) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already && s.cfg.DrainHook != nil {
		s.cfg.DrainHook()
	}
	for {
		n, err := s.StepEpoch(context.Background())
		if err != nil {
			sticky = err
		}
		if n == 0 {
			close(s.drained)
			return sticky
		}
	}
}

// Drained reports whether a drain has fully completed (terminal states
// reached for every admitted transfer). It is closed by Run's drain path.
func (s *Service) Drained() <-chan struct{} { return s.drained }
