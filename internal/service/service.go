// Package service is the resident control plane: a long-running Service owns
// a core.Engine (network state) and a routing.Planner (warm-started LP
// re-planning), admits transfer requests mid-stream into a bounded queue,
// batches them into epochs, and executes each epoch on the deterministic
// worker pool. Admission control and load-shedding are first-class: a full
// queue sheds with ErrQueueFull (HTTP 429 with a Retry-After computed from
// observed epoch latency), a draining service refuses with ErrDraining
// (HTTP 503), and every decision is counted on the telemetry registry the
// ops plane serves at /metrics.
//
// The service also hosts the live fault plane (FaultPlane): one fault
// scenario stepped against the whole network in epoch-tick time. Each epoch
// plans on the fault-masked topology and executes under a static overlay
// snapshot, accumulated outage events trigger early re-plans through
// Planner.Invalidate, transfers carry deadlines and retry budgets and fail
// with a machine-readable failure class (shed, deadline, no_path, decode),
// and a circuit breaker degrades planning to greedy routing when the LP
// solve errors or blows its wall-clock budget.
//
// Determinism: epoch e executes on the rng sub-stream SplitN("epoch", e) of
// the service's root source and runs through the core engine's parallel
// executor, whose outcomes are worker-count invariant — so a daemon-admitted
// transfer produces the same result regardless of pool width or the
// wall-clock timing of its admission within an epoch. The fault plane has its
// own stream (Split("faults")) and advances only in StepFaults, so a fixed
// admission/step timeline reproduces the same fault history too.
package service

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"surfnet/internal/core"
	"surfnet/internal/faults"
	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"

	"context"
)

// Admission errors. The HTTP layer maps them onto status codes.
var (
	// ErrQueueFull sheds a submission because the bounded queue is at
	// capacity (HTTP 429 with Retry-After).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining refuses a submission because the service is shutting
	// down (HTTP 503).
	ErrDraining = errors.New("service: draining")
	// ErrUnknownTransfer reports a Get for an ID never admitted.
	ErrUnknownTransfer = errors.New("service: unknown transfer")
)

// Retry and degraded-mode bounds.
const (
	// maxRetryBudget caps the per-transfer retry budget a client may request.
	maxRetryBudget = 8
	// retryBackoffCap caps the exponential retry backoff, in epochs.
	retryBackoffCap = 8
	// retryPoll is how long Run waits before re-polling when the only
	// pending work is retries sitting out their backoff.
	retryPoll = 20 * time.Millisecond
)

// Config sizes the resident control plane.
type Config struct {
	// QueueLimit bounds the admission queue; submissions beyond it are
	// shed with ErrQueueFull. Zero selects 256.
	QueueLimit int
	// EpochMax caps transfers batched into one epoch. Zero selects 32.
	EpochMax int
	// Workers sizes the execution pool. Results are identical for every
	// value; zero selects GOMAXPROCS.
	Workers int
	// Seed seeds the root randomness source; epoch e draws from
	// SplitN("epoch", e) and the fault plane from Split("faults"). Zero
	// selects 1.
	Seed uint64
	// Metrics receives service counters, gauges, and the latency HDR
	// histograms; nil instruments are no-ops.
	Metrics *telemetry.Registry
	// Tracer receives fault-plane and service trace events; nil disables.
	Tracer telemetry.Tracer
	// DrainHook, when non-nil, runs exactly once at the start of a drain —
	// before the final epochs execute — so the daemon can flip /readyz off
	// while in-flight work completes.
	DrainHook func()

	// Faults arms the live fault plane with an initial scenario; it is
	// validated against the engine's network at construction. Nil leaves
	// the plane idle (it can still be armed later via SetFaultProfile).
	Faults *faults.Profile
	// FaultTick is the wall-clock period Run steps the fault plane at.
	// Zero selects 250ms; negative disables ticking (tests call StepFaults
	// directly for a deterministic timeline).
	FaultTick time.Duration
	// FaultReplanThreshold is how many accumulated outage events (fiber,
	// node, or regional crashes) invalidate the planner's warm basis and
	// trigger an early fault-triggered re-plan. Zero selects 4; negative
	// disables the trigger.
	FaultReplanThreshold int

	// PlanBudget is the wall-clock budget for one LP plan. A plan error or
	// an over-budget solve trips the degraded-mode circuit breaker: the
	// service routes with greedy admission for BreakerCooldown epochs.
	// Zero disables the budget (plan errors still trip the breaker).
	PlanBudget time.Duration
	// BreakerCooldown is how many epochs the breaker stays open after
	// tripping. Zero selects 4.
	BreakerCooldown int

	// FlightEvents bounds each transfer's flight-recorder event ring. Zero
	// selects 64; negative disables flight recording entirely (traces and
	// /debug/bundle flights 404, latency falls back to coarse wall math).
	FlightEvents int
	// FlightRetain bounds how many terminal flights the recorder keeps for
	// /debug/bundle. Zero selects 32; negative retains none.
	FlightRetain int
	// FlightClock is the clock flight events and transfer deadlines read.
	// Nil selects time.Now; tests inject a deterministic clock.
	FlightClock func() time.Time
}

func (c *Config) fill() {
	if c.QueueLimit == 0 {
		c.QueueLimit = 256
	}
	if c.EpochMax == 0 {
		c.EpochMax = 32
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultTick == 0 {
		c.FaultTick = 250 * time.Millisecond
	}
	if c.FaultReplanThreshold == 0 {
		c.FaultReplanThreshold = 4
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 4
	}
}

// Transfer states.
const (
	StateQueued    = "queued"
	StateRetrying  = "retrying"
	StateCompleted = "completed"
	StateFailed    = "failed"
)

// Failure classes — the machine-readable taxonomy of how a transfer (or an
// admission) can fail. FailShed happens at admission time (429/503: the
// transfer never got an ID); the other three are terminal states of admitted
// transfers.
const (
	// FailShed marks admission-control refusals: queue full or draining.
	FailShed = "shed"
	// FailDeadline marks running out of time: the client TTL expired, or
	// the slot budget was exhausted before any code was delivered.
	FailDeadline = "deadline"
	// FailNoPath marks the scheduler admitting zero codes — no feasible
	// path under the current (possibly fault-masked) topology.
	FailNoPath = "no_path"
	// FailDecode marks delivery without a single successful decode.
	FailDecode = "decode"
)

// TransferRequest is one admission request: tenant tag plus the network
// request it carries, with an optional robustness contract.
type TransferRequest struct {
	Tenant   string `json:"tenant"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Messages int    `json:"messages"`
	// DeadlineMs is an optional TTL in milliseconds from admission; a
	// transfer that has not completed by then fails with class "deadline"
	// instead of being retried further. Zero means no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// RetryBudget is how many times a failing transfer may be re-queued
	// (exponential epoch backoff) before its failure becomes terminal.
	// Capped at 8; zero means fail on first error.
	RetryBudget int `json:"retry_budget,omitempty"`
}

// TransferStatus is the externally visible state of one transfer.
type TransferStatus struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	State    string `json:"state"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Messages int    `json:"messages"`
	// Epoch is the epoch that executed the transfer (terminal states).
	Epoch int64 `json:"epoch,omitempty"`
	// AcceptedCodes is how many surface codes the scheduler admitted for
	// this transfer; DeliveredCodes and SuccessCodes summarize execution.
	AcceptedCodes  int `json:"accepted_codes"`
	DeliveredCodes int `json:"delivered_codes"`
	SuccessCodes   int `json:"success_codes"`
	// Retries is how many re-queues the transfer has consumed.
	Retries int `json:"retries,omitempty"`
	// FailureClass is the machine-readable failure taxonomy entry
	// (deadline, no_path, decode) once the transfer has failed an attempt;
	// for State retrying it names the most recent failure.
	FailureClass string `json:"failure_class,omitempty"`
	// WallLatencySeconds is admission-to-completion wall time (terminal
	// states only).
	WallLatencySeconds float64 `json:"wall_latency_seconds,omitempty"`
	// Error carries the failure reason when State is failed.
	Error string `json:"error,omitempty"`
}

// transfer is the internal record behind a TransferStatus.
type transfer struct {
	status      TransferStatus
	submitted   time.Time
	deadline    time.Time // zero: no deadline
	retryBudget int
	notBefore   int64 // earliest epoch a scheduled retry may run in
	// flight is the transfer's lifecycle event ring (nil when flight
	// recording is disabled).
	flight *telemetry.Flight
}

// TenantStats is the per-tenant admission accounting /status reports.
type TenantStats struct {
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Failed    int64 `json:"failed"`
	// FailedByClass splits Failed by failure class.
	FailedByClass map[string]int64 `json:"failed_by_class,omitempty"`
}

// Status is the service snapshot embedded in /status (see
// obs.Server.SetServiceStatus).
type Status struct {
	Draining   bool                   `json:"draining"`
	QueueDepth int                    `json:"queue_depth"`
	Admitted   int64                  `json:"admitted"`
	Completed  int64                  `json:"completed"`
	Failed     int64                  `json:"failed"`
	Shed       int64                  `json:"shed"`
	Epochs     int64                  `json:"epochs"`
	Tenants    map[string]TenantStats `json:"tenants,omitempty"`
	// Retrying is how many transfers are waiting out a retry backoff.
	Retrying int `json:"retrying,omitempty"`
	// Retries is the total re-queues granted so far.
	Retries int64 `json:"retries,omitempty"`
	// FailedByClass splits Failed by failure class, service-wide.
	FailedByClass map[string]int64 `json:"failed_by_class,omitempty"`
	// Degraded reports whether the planning circuit breaker is open
	// (greedy routing); DegradedEpochs counts epochs routed that way.
	Degraded       bool  `json:"degraded"`
	DegradedEpochs int64 `json:"degraded_epochs,omitempty"`
	// ReplansScheduled and ReplansFaultTriggered split epoch plans by what
	// initiated them; FaultInvalidations counts warm-basis drops forced by
	// accumulated outage telemetry.
	ReplansScheduled      int64 `json:"replans_scheduled,omitempty"`
	ReplansFaultTriggered int64 `json:"replans_fault_triggered,omitempty"`
	FaultInvalidations    int64 `json:"fault_invalidations,omitempty"`
	// RetryAfterSeconds is the backoff hint 429 responses currently carry,
	// derived from the observed epoch wall-clock p50.
	RetryAfterSeconds int `json:"retry_after_seconds"`
	// Faults snapshots the live fault plane when one is armed.
	Faults *FaultState `json:"faults,omitempty"`
	// WallP50/P99 are admission-to-completion latency quantiles in
	// seconds over completed transfers.
	WallP50 float64 `json:"wall_p50_seconds"`
	WallP99 float64 `json:"wall_p99_seconds"`
	// Queue reports queue pressure beyond the instantaneous depth — sampled
	// depth and queue-wait quantiles make shedding onset visible before
	// 429s start.
	Queue *QueueStatus `json:"queue,omitempty"`
	// Attribution summarizes the per-segment latency HDRs over terminal
	// transfers: where admission-to-terminal time actually went.
	Attribution map[string]SegmentStats `json:"attribution,omitempty"`
}

// QueueStatus is the queue-pressure block of Status.
type QueueStatus struct {
	// Depth is the instantaneous queue depth.
	Depth int `json:"depth"`
	// Samples counts depth observations (one per admission and per epoch
	// batch take); DepthP50/P99 are quantiles over them.
	Samples  int64   `json:"samples,omitempty"`
	DepthP50 float64 `json:"depth_p50,omitempty"`
	DepthP99 float64 `json:"depth_p99,omitempty"`
	// WaitP50/P99Seconds are admission-to-first-dispatch wall quantiles.
	WaitP50Seconds float64 `json:"wait_p50_seconds,omitempty"`
	WaitP99Seconds float64 `json:"wait_p99_seconds,omitempty"`
}

// SegmentStats summarizes one attributed segment class across transfers.
type SegmentStats struct {
	Count      int64   `json:"count"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// Service is the resident control plane. Construct with New, serve its HTTP
// API via RegisterRoutes, and run the epoch loop with Run (or drive epochs
// synchronously with StepEpoch — and the fault plane with StepFaults — in
// tests).
type Service struct {
	eng   *core.Engine
	pl    *routing.Planner
	cfg   Config
	src   *rng.Source
	plane *FaultPlane

	admitted       *telemetry.Counter
	completed      *telemetry.Counter
	failed         *telemetry.Counter
	shed           *telemetry.Counter
	epochsCtr      *telemetry.Counter
	retriesCtr     *telemetry.Counter
	failedDeadline *telemetry.Counter
	failedNoPath   *telemetry.Counter
	failedDecode   *telemetry.Counter
	replanSched    *telemetry.Counter
	replanFault    *telemetry.Counter
	invalidations  *telemetry.Counter
	breakerTrips   *telemetry.Counter
	degradedCtr    *telemetry.Counter
	degradedGauge  *telemetry.Gauge
	queueDepth     *telemetry.Gauge
	wall           *telemetry.HDR
	epochWall      *telemetry.HDR
	queueWait      *telemetry.HDR
	queueDepthHist *telemetry.Histogram
	// segWall holds one wall HDR per attribution segment class; tenantWall
	// one per tenant (bounded; overflow tenants share "other").
	segWall    map[string]*telemetry.HDR
	tenantWall map[string]*telemetry.HDR

	// recorder starts per-transfer flight event rings; nil when disabled.
	// now is the service clock (injectable for deterministic tests).
	recorder *telemetry.FlightRecorder
	now      func() time.Time

	wake chan struct{}

	mu        sync.Mutex
	queue     []*transfer
	retryQ    []*transfer // waiting out retry backoff, admission order
	transfers map[string]*transfer
	tenants   map[string]*TenantStats
	seq       int64
	epoch     int64
	draining  bool
	drained   chan struct{} // closed when a drain has fully completed
	// faultAccum accumulates outage events toward FaultReplanThreshold;
	// faultTriggered is the sticky marker the next planned epoch consumes.
	faultAccum     int
	faultTriggered bool
	// breakerUntil is the first epoch the planning breaker is closed again.
	breakerUntil int64
	// totals mirror the registry counters so Status works without metrics.
	totals struct {
		admitted, completed, failed, shed       int64
		retries, degradedEpochs                 int64
		replanSched, replanFault, invalidations int64
		failedByClass                           map[string]int64
	}
}

// New builds a service over an engine and planner. The planner's design
// governs scheduling; the engine owns the network the epochs execute on. An
// initial fault profile (cfg.Faults) is validated against that network here —
// an out-of-range script target is a construction error, not a mid-epoch
// surprise.
func New(eng *core.Engine, pl *routing.Planner, cfg Config) (*Service, error) {
	if eng == nil {
		return nil, errors.New("service: nil engine")
	}
	if pl == nil {
		return nil, errors.New("service: nil planner")
	}
	cfg.fill()
	reg := cfg.Metrics
	s := &Service{
		eng:            eng,
		pl:             pl,
		cfg:            cfg,
		src:            rng.New(cfg.Seed),
		admitted:       reg.Counter("service.admitted"),
		completed:      reg.Counter("service.completed"),
		failed:         reg.Counter("service.failed"),
		shed:           reg.Counter("service.shed"),
		epochsCtr:      reg.Counter("service.epochs"),
		retriesCtr:     reg.Counter("service.retries"),
		failedDeadline: reg.Counter("service.failed_deadline"),
		failedNoPath:   reg.Counter("service.failed_no_path"),
		failedDecode:   reg.Counter("service.failed_decode"),
		replanSched:    reg.Counter("service.replans_scheduled"),
		replanFault:    reg.Counter("service.replans_fault_triggered"),
		invalidations:  reg.Counter("service.fault_invalidations"),
		breakerTrips:   reg.Counter("service.breaker_trips"),
		degradedCtr:    reg.Counter("service.degraded_epochs"),
		degradedGauge:  reg.Gauge("service.degraded"),
		queueDepth:     reg.Gauge("service.queue_depth"),
		wake:           make(chan struct{}, 1),
		transfers:      make(map[string]*transfer),
		tenants:        make(map[string]*TenantStats),
		drained:        make(chan struct{}),
	}
	// Every instrument (including a nil registry's) is nil-receiver safe.
	s.wall = reg.HDR("service.transfer_wall_seconds", telemetry.WallLatencySpec)
	s.epochWall = reg.HDR("service.epoch_wall_seconds", telemetry.WallLatencySpec)
	s.queueWait = reg.HDR("service.queue_wait_wall_seconds", telemetry.WallLatencySpec)
	s.queueDepthHist = reg.Histogram("service.queue_depth_sampled", telemetry.ExpBuckets(1, 2, 13))
	s.segWall = make(map[string]*telemetry.HDR, len(segmentClasses))
	for _, class := range segmentClasses {
		s.segWall[class] = reg.HDR("service.segment_"+class+"_wall_seconds", telemetry.WallLatencySpec)
	}
	s.tenantWall = make(map[string]*telemetry.HDR)
	s.now = cfg.FlightClock
	if s.now == nil {
		s.now = time.Now
	}
	if cfg.FlightEvents >= 0 {
		s.recorder = telemetry.NewFlightRecorder(cfg.FlightEvents, cfg.FlightRetain, cfg.FlightClock)
	}
	s.totals.failedByClass = make(map[string]int64)
	var profile faults.Profile
	if cfg.Faults != nil {
		profile = *cfg.Faults
	}
	plane, err := newFaultPlane(eng.Network(), profile, s.src.Split("faults"), reg, cfg.Tracer)
	if err != nil {
		return nil, fmt.Errorf("service: fault profile: %w", err)
	}
	s.plane = plane
	return s, nil
}

// Engine exposes the engine (read-only use: network snapshots).
func (s *Service) Engine() *core.Engine { return s.eng }

// Submit admits one transfer into the queue. It returns the queued status,
// or ErrQueueFull / ErrDraining / a validation error naming the reason the
// submission was refused.
func (s *Service) Submit(req TransferRequest) (TransferStatus, error) {
	nreq := network.Request{Src: req.Src, Dst: req.Dst, Messages: req.Messages}
	if err := nreq.Validate(s.eng.Network()); err != nil {
		return TransferStatus{}, fmt.Errorf("service: invalid transfer: %w", err)
	}
	if req.DeadlineMs < 0 {
		return TransferStatus{}, fmt.Errorf("service: invalid transfer: deadline_ms %d < 0", req.DeadlineMs)
	}
	if req.RetryBudget < 0 || req.RetryBudget > maxRetryBudget {
		return TransferStatus{}, fmt.Errorf("service: invalid transfer: retry_budget %d outside [0,%d]", req.RetryBudget, maxRetryBudget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tn := s.tenantLocked(req.Tenant)
	if s.draining {
		tn.Shed++
		s.totals.shed++
		s.shed.Inc()
		return TransferStatus{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueLimit {
		tn.Shed++
		s.totals.shed++
		s.shed.Inc()
		return TransferStatus{}, ErrQueueFull
	}
	s.seq++
	now := s.now()
	t := &transfer{
		status: TransferStatus{
			ID:       fmt.Sprintf("t-%d", s.seq),
			Tenant:   req.Tenant,
			State:    StateQueued,
			Src:      req.Src,
			Dst:      req.Dst,
			Messages: req.Messages,
		},
		submitted:   now,
		retryBudget: req.RetryBudget,
	}
	if req.DeadlineMs > 0 {
		t.deadline = now.Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	}
	s.queue = append(s.queue, t)
	s.transfers[t.status.ID] = t
	t.flight = s.recorder.Start(t.status.ID)
	t.flight.Record(telemetry.FlightAdmitted, s.epoch, 0, 0, 0, "")
	t.flight.Record(telemetry.FlightQueueEnter, s.epoch, int64(len(s.queue)), 0, 0, "")
	tn.Admitted++
	s.totals.admitted++
	s.admitted.Inc()
	s.queueDepth.Set(float64(len(s.queue)))
	s.queueDepthHist.Observe(float64(len(s.queue)))
	s.wakeUp()
	return t.status, nil
}

// Get returns the status of a transfer by ID.
func (s *Service) Get(id string) (TransferStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.transfers[id]
	if !ok {
		return TransferStatus{}, ErrUnknownTransfer
	}
	return t.status, nil
}

// tenantLocked returns the accounting record for a tenant, creating it on
// first sight. The empty tenant is tracked as "default".
func (s *Service) tenantLocked(name string) *TenantStats {
	if name == "" {
		name = "default"
	}
	st, ok := s.tenants[name]
	if !ok {
		st = &TenantStats{}
		s.tenants[name] = st
	}
	return st
}

// RetryAfterHint is the backoff 429 responses advertise, in seconds: the
// observed epoch wall-clock p50 rounded up, clamped to [1, 30]. Before any
// epoch has run it defaults to 1.
func (s *Service) RetryAfterHint() int {
	if s.epochWall.Count() == 0 {
		return 1
	}
	secs := int(math.Ceil(s.epochWall.Quantile(0.5)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Status snapshots the service for the ops plane.
func (s *Service) Status() Status {
	hint := s.RetryAfterHint()
	fs := s.plane.State()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Draining:              s.draining,
		QueueDepth:            len(s.queue),
		Admitted:              s.totals.admitted,
		Completed:             s.totals.completed,
		Failed:                s.totals.failed,
		Shed:                  s.totals.shed,
		Epochs:                s.epoch,
		Tenants:               make(map[string]TenantStats, len(s.tenants)),
		Retrying:              len(s.retryQ),
		Retries:               s.totals.retries,
		Degraded:              s.breakerUntil > s.epoch,
		DegradedEpochs:        s.totals.degradedEpochs,
		ReplansScheduled:      s.totals.replanSched,
		ReplansFaultTriggered: s.totals.replanFault,
		FaultInvalidations:    s.totals.invalidations,
		RetryAfterSeconds:     hint,
	}
	if len(s.totals.failedByClass) > 0 {
		st.FailedByClass = make(map[string]int64, len(s.totals.failedByClass))
		for k, v := range s.totals.failedByClass {
			st.FailedByClass[k] = v
		}
	}
	for name, ts := range s.tenants {
		c := *ts
		if len(ts.FailedByClass) > 0 {
			c.FailedByClass = make(map[string]int64, len(ts.FailedByClass))
			for k, v := range ts.FailedByClass {
				c.FailedByClass[k] = v
			}
		}
		st.Tenants[name] = c
	}
	if fs.Enabled {
		st.Faults = &fs
	}
	if s.wall.Count() > 0 {
		st.WallP50 = s.wall.Quantile(0.5)
		st.WallP99 = s.wall.Quantile(0.99)
	}
	// Empty instruments report NaN quantiles, which JSON cannot encode —
	// every quantile below is guarded by its count.
	st.Queue = &QueueStatus{Depth: len(s.queue), Samples: s.queueDepthHist.Count()}
	if s.queueDepthHist.Count() > 0 {
		st.Queue.DepthP50 = s.queueDepthHist.Quantile(0.5)
		st.Queue.DepthP99 = s.queueDepthHist.Quantile(0.99)
	}
	if s.queueWait.Count() > 0 {
		st.Queue.WaitP50Seconds = s.queueWait.Quantile(0.5)
		st.Queue.WaitP99Seconds = s.queueWait.Quantile(0.99)
	}
	for _, class := range segmentClasses {
		h := s.segWall[class]
		if h.Count() == 0 {
			continue
		}
		if st.Attribution == nil {
			st.Attribution = make(map[string]SegmentStats)
		}
		st.Attribution[class] = SegmentStats{
			Count:      h.Count(),
			P50Seconds: h.Quantile(0.5),
			P99Seconds: h.Quantile(0.99),
		}
	}
	return st
}

// SetFaultProfile swaps the live fault scenario at runtime (POST /v1/faults).
// The profile is validated against the network; the error is suitable for a
// 400 response.
func (s *Service) SetFaultProfile(p faults.Profile) error {
	return s.plane.SetProfile(p)
}

// FaultState snapshots the live fault plane (GET /v1/faults).
func (s *Service) FaultState() FaultState { return s.plane.State() }

// FaultProfile returns the scenario currently armed on the fault plane.
func (s *Service) FaultProfile() faults.Profile { return s.plane.Profile() }

// StepFaults advances the live fault plane one tick and feeds its outage
// events into the re-planning trigger: once FaultReplanThreshold events have
// accumulated, the planner's warm basis is invalidated and the next epoch is
// marked fault-triggered. It returns the tick's outage event count. Run calls
// this on the FaultTick cadence; tests call it directly.
func (s *Service) StepFaults() int {
	down := s.plane.Step()
	if down == 0 || s.cfg.FaultReplanThreshold < 0 {
		return down
	}
	s.mu.Lock()
	s.faultAccum += down
	trig := s.faultAccum >= s.cfg.FaultReplanThreshold
	if trig {
		s.faultAccum = 0
		s.faultTriggered = true
		s.totals.invalidations++
	}
	s.mu.Unlock()
	if trig {
		s.pl.Invalidate()
		s.invalidations.Inc()
		if s.cfg.Tracer != nil {
			s.cfg.Tracer.Emit(telemetry.Ev("service.fault_replan", "events", s.cfg.FaultReplanThreshold))
		}
		s.wakeUp()
	}
	return down
}

// wakeUp pokes the Run loop without blocking.
func (s *Service) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// StepEpoch synchronously executes one epoch: it promotes due retries, takes
// up to EpochMax queued transfers, fails the ones whose deadline has already
// passed, plans the rest on the fault-masked network (warm LP, or greedy
// while the breaker is open), runs the schedule on the parallel engine under
// the epoch's fault overlay, and classifies every outcome — completing,
// re-queueing (budget permitting), or failing with a failure class. It
// returns how many transfers it processed (0 = nothing runnable). Admitted
// work always reaches a terminal state; structural planning or execution
// errors are returned for logging after the batch is settled.
func (s *Service) StepEpoch(ctx context.Context) (int, error) {
	s.mu.Lock()
	s.promoteRetriesLocked()
	n := len(s.queue)
	if n == 0 {
		if len(s.retryQ) > 0 && !s.draining {
			// Only retries remain and none are due: an empty step advances
			// epoch time so their backoff elapses.
			s.epoch++
		}
		s.mu.Unlock()
		return 0, nil
	}
	if n > s.cfg.EpochMax {
		n = s.cfg.EpochMax
	}
	batch := s.queue[:n]
	s.queue = s.queue[n:]
	s.queueDepth.Set(float64(len(s.queue)))
	s.queueDepthHist.Observe(float64(len(s.queue)))
	epoch := s.epoch
	s.epoch++
	dispatch := s.now()
	for _, t := range batch {
		t.flight.Record(telemetry.FlightQueueExit, epoch, int64(len(s.queue)), 0, 0, "")
		t.flight.Record(telemetry.FlightEpochAssigned, epoch, epoch, 0, 0, "")
		if t.status.Retries == 0 {
			// First dispatch: everything since admission was queue wait.
			s.queueWait.Observe(dispatch.Sub(t.submitted).Seconds())
		}
	}
	faultTrig := s.faultTriggered
	s.faultTriggered = false
	breakerOpen := s.breakerUntil > epoch
	if faultTrig {
		s.totals.replanFault++
	} else {
		s.totals.replanSched++
	}
	s.mu.Unlock()
	if faultTrig {
		s.replanFault.Inc()
	} else {
		s.replanSched.Inc()
	}

	start := time.Now()
	// Deadline sweep: a transfer whose TTL has already expired fails now,
	// terminally — retry budget does not resurrect missed deadlines.
	now := s.now()
	live := make([]*transfer, 0, len(batch))
	var expired []*transfer
	for _, t := range batch {
		if !t.deadline.IsZero() && now.After(t.deadline) {
			expired = append(expired, t)
			continue
		}
		live = append(live, t)
	}
	if len(expired) > 0 {
		s.mu.Lock()
		for _, t := range expired {
			s.finalizeFailureLocked(t, epoch, FailDeadline, "service: deadline exceeded before execution")
		}
		s.mu.Unlock()
	}
	if len(live) == 0 {
		s.epochsCtr.Inc()
		s.epochWall.Observe(time.Since(start).Seconds())
		return n, nil
	}

	reqs := make([]network.Request, len(live))
	for i, t := range live {
		reqs[i] = network.Request{Src: t.status.Src, Dst: t.status.Dst, Messages: t.status.Messages}
	}
	// Plan on the fault-masked topology: the control plane routes around
	// what it knows is down, while execution still samples per-transfer
	// stochastic faults on top of the same overlay.
	overlay := s.plane.State()
	if overlay.Outaged() {
		for _, t := range live {
			t.flight.Record(telemetry.FlightFaultCoincident, epoch,
				int64(len(overlay.DownFibers)), int64(len(overlay.DownNodes)), 0, "")
		}
	}
	planNet := overlay.Mask(s.eng.Network())
	sched, mode, err := s.planEpoch(planNet, reqs, epoch, breakerOpen)
	if err != nil {
		s.settleFailures(live, epoch, FailNoPath, fmt.Errorf("planning: %w", err))
		s.epochWall.Observe(time.Since(start).Seconds())
		return n, fmt.Errorf("service: epoch %d planning: %w", epoch, err)
	}
	for _, t := range live {
		t.flight.Record(telemetry.FlightPlanned, epoch, int64(len(live)), 0, 0, mode)
	}
	res, err := s.execute(ctx, sched, epoch, overlay)
	if err != nil {
		s.settleFailures(live, epoch, FailDecode, fmt.Errorf("execution: %w", err))
		s.epochWall.Observe(time.Since(start).Seconds())
		return n, fmt.Errorf("service: epoch %d execution: %w", epoch, err)
	}
	// Greedy repair preserves the request list 1:1 (sched.Requests[i] is
	// reqs[i]), so outcomes map straight back onto the batch.
	delivered := make([]int, len(live))
	success := make([]int, len(live))
	for _, o := range res.Outcomes {
		if o.Delivered {
			delivered[o.Request]++
		}
		if o.Success {
			success[o.Request]++
		}
	}
	s.mu.Lock()
	s.epochsCtr.Inc()
	for i, t := range live {
		t.status.Epoch = epoch
		if len(sched.Requests) == len(live) {
			t.status.AcceptedCodes = sched.Requests[i].Accepted()
		}
		t.status.DeliveredCodes = delivered[i]
		t.status.SuccessCodes = success[i]
		t.flight.Record(telemetry.FlightExecuted, epoch,
			int64(t.status.AcceptedCodes), int64(delivered[i]), int64(success[i]), "")
		if t.status.AcceptedCodes > 0 {
			verdict := "failed"
			if success[i] > 0 {
				verdict = "ok"
			}
			t.flight.Record(telemetry.FlightDecodeVerdict, epoch,
				int64(delivered[i]), int64(success[i]), 0, verdict)
		}
		switch {
		case t.status.AcceptedCodes == 0:
			s.retryOrFailLocked(t, epoch, FailNoPath, "service: no feasible path admitted")
		case delivered[i] == 0:
			s.retryOrFailLocked(t, epoch, FailDeadline, "service: slot budget exhausted before delivery")
		case success[i] == 0:
			s.retryOrFailLocked(t, epoch, FailDecode, "service: every delivered code failed decoding")
		default:
			t.status.State = StateCompleted
			t.status.FailureClass = ""
			t.status.Error = ""
			s.terminalFlightLocked(t, epoch, "completed")
			s.wall.Observe(t.status.WallLatencySeconds)
			s.tenantWallLocked(t.status.Tenant).Observe(t.status.WallLatencySeconds)
			s.tenantLocked(t.status.Tenant).Completed++
			s.totals.completed++
			s.completed.Inc()
		}
	}
	s.mu.Unlock()
	s.epochWall.Observe(time.Since(start).Seconds())
	return n, nil
}

// Plan modes, reported on the flights' planned events: warm reused the LP
// basis, cold solved from scratch, degraded routed greedy (breaker open or
// plan-error fallback).
const (
	planModeWarm     = "warm"
	planModeCold     = "cold"
	planModeDegraded = "degraded"
)

// planEpoch schedules one epoch's requests and reports the plan mode. With
// the breaker open it routes greedy outright; otherwise it runs the warm LP
// planner under PlanBudget and trips the breaker on an error (greedy fallback
// now) or an over-budget solve (the slow-but-valid schedule is still used;
// the cooldown epochs degrade).
func (s *Service) planEpoch(net *network.Network, reqs []network.Request, epoch int64, breakerOpen bool) (routing.Schedule, string, error) {
	if breakerOpen {
		s.degradedEpoch()
		sched, err := routing.Greedy(net, reqs, s.pl.Params(), nil, nil)
		return sched, planModeDegraded, err
	}
	s.degradedGauge.Set(0)
	hits0, _ := s.pl.WarmStats()
	planStart := time.Now()
	sched, err := s.pl.Plan(net, reqs)
	overBudget := s.cfg.PlanBudget > 0 && time.Since(planStart) > s.cfg.PlanBudget
	mode := planModeCold
	if hits1, _ := s.pl.WarmStats(); hits1 > hits0 {
		mode = planModeWarm
	}
	if err == nil && !overBudget {
		return sched, mode, nil
	}
	s.mu.Lock()
	s.breakerUntil = epoch + 1 + int64(s.cfg.BreakerCooldown)
	s.mu.Unlock()
	s.breakerTrips.Inc()
	if s.cfg.Tracer != nil {
		reason := "plan-error"
		if err == nil {
			reason = "plan-over-budget"
		}
		s.cfg.Tracer.Emit(telemetry.Ev("service.breaker_open", "reason", reason, "epoch", epoch))
	}
	if err == nil {
		return sched, mode, nil
	}
	s.degradedEpoch()
	sched, gerr := routing.Greedy(net, reqs, s.pl.Params(), nil, nil)
	return sched, planModeDegraded, gerr
}

// degradedEpoch accounts one epoch routed in degraded (greedy) mode.
func (s *Service) degradedEpoch() {
	s.degradedCtr.Inc()
	s.degradedGauge.Set(1)
	s.mu.Lock()
	s.totals.degradedEpochs++
	s.mu.Unlock()
}

// execute runs one epoch's schedule under the live fault overlay merged with
// the engine's own fault scenario. Without any faults in play it takes the
// plain parallel path, byte-identical to the pre-fault-plane service.
func (s *Service) execute(ctx context.Context, sched routing.Schedule, epoch int64, overlay FaultState) (core.RunResult, error) {
	src := s.src.SplitN("epoch", int(epoch))
	var p faults.Profile
	if base := s.eng.Config().FaultScenario(); base != nil {
		p = *base
	}
	p.DownFibers = overlay.DownFibers
	p.DownNodes = overlay.DownNodes
	p.GammaScale = overlay.GammaScale
	if !p.Enabled() {
		return s.eng.ExecuteParallel(ctx, sched, src, s.cfg.Workers)
	}
	return s.eng.ExecuteParallelFaults(ctx, sched, src, s.cfg.Workers, &p)
}

// promoteRetriesLocked moves due retries (backoff elapsed, or any retry when
// draining) to the head of the queue, ahead of fresh arrivals. Re-queued
// transfers bypass QueueLimit — they were already admitted once.
func (s *Service) promoteRetriesLocked() {
	if len(s.retryQ) == 0 {
		return
	}
	var due, wait []*transfer
	for _, t := range s.retryQ {
		if s.draining || t.notBefore <= s.epoch {
			due = append(due, t)
		} else {
			wait = append(wait, t)
		}
	}
	if len(due) == 0 {
		return
	}
	s.retryQ = wait
	for _, t := range due {
		t.status.State = StateQueued
	}
	s.queue = append(due, s.queue...)
	s.queueDepth.Set(float64(len(s.queue)))
}

// retryOrFailLocked decides a failed attempt's fate: re-queue with
// exponential epoch backoff while budget remains, the deadline has not
// passed, and the service is not draining; otherwise finalize the failure.
func (s *Service) retryOrFailLocked(t *transfer, epoch int64, class, msg string) {
	if !s.draining && t.status.Retries < t.retryBudget &&
		(t.deadline.IsZero() || s.now().Before(t.deadline)) {
		t.status.Retries++
		t.status.State = StateRetrying
		t.status.FailureClass = class
		t.status.Error = ""
		backoff := int64(1) << (t.status.Retries - 1)
		if backoff > retryBackoffCap {
			backoff = retryBackoffCap
		}
		t.notBefore = epoch + backoff
		t.flight.Record(telemetry.FlightRetryScheduled, epoch, backoff, t.notBefore, 0, class)
		s.retryQ = append(s.retryQ, t)
		s.totals.retries++
		s.retriesCtr.Inc()
		return
	}
	s.finalizeFailureLocked(t, epoch, class, msg)
}

// finalizeFailureLocked drives a transfer to the terminal failed state and
// lands its failure class on the per-class counters and tenant accounting.
func (s *Service) finalizeFailureLocked(t *transfer, epoch int64, class, msg string) {
	t.status.State = StateFailed
	t.status.Epoch = epoch
	t.status.FailureClass = class
	t.status.Error = msg
	s.terminalFlightLocked(t, epoch, class)
	tn := s.tenantLocked(t.status.Tenant)
	tn.Failed++
	if tn.FailedByClass == nil {
		tn.FailedByClass = make(map[string]int64)
	}
	tn.FailedByClass[class]++
	s.totals.failedByClass[class]++
	s.totals.failed++
	s.failed.Inc()
	switch class {
	case FailDeadline:
		s.failedDeadline.Inc()
	case FailNoPath:
		s.failedNoPath.Inc()
	case FailDecode:
		s.failedDecode.Inc()
	}
}

// terminalFlightLocked stamps a transfer's terminal flight event, derives its
// admission-to-terminal wall latency from the flight's own stamps (so /trace
// segment sums match WallLatencySeconds exactly), feeds the per-segment wall
// HDRs, and retires the flight into the recorder's incident window. With
// flight recording disabled it falls back to coarse clock math.
func (s *Service) terminalFlightLocked(t *transfer, epoch int64, note string) {
	if t.flight == nil {
		t.status.WallLatencySeconds = s.now().Sub(t.submitted).Seconds()
		return
	}
	ev := t.flight.Record(telemetry.FlightTerminal, epoch, 0, 0, 0, note)
	t.status.WallLatencySeconds = float64(ev.WallNs-t.flight.StartWallNs()) / 1e9
	a := attribute(t.flight.Events(), t.flight.StartWallNs(), t.flight.StartTick(), t.flight.Dropped())
	for class, ns := range a.wallNs {
		if ns <= 0 {
			continue
		}
		if h := s.segWall[class]; h != nil {
			h.Observe(float64(ns) / 1e9)
		}
	}
	s.recorder.Retire(t.flight)
}

// maxTenantHDRs bounds per-tenant latency HDR cardinality; tenants beyond it
// share the "other" histogram.
const maxTenantHDRs = 32

// tenantWallLocked returns the tenant's admission-to-completion wall HDR,
// creating it on first sight.
func (s *Service) tenantWallLocked(name string) *telemetry.HDR {
	if name == "" {
		name = "default"
	}
	h, ok := s.tenantWall[name]
	if ok {
		return h
	}
	if len(s.tenantWall) >= maxTenantHDRs {
		name = "other"
		if h, ok = s.tenantWall[name]; ok {
			return h
		}
	}
	h = s.cfg.Metrics.HDR("service.tenant."+name+".wall_seconds", telemetry.WallLatencySpec)
	s.tenantWall[name] = h
	return h
}

// settleFailures retries or fails a batch after an epoch-level error.
func (s *Service) settleFailures(batch []*transfer, epoch int64, class string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range batch {
		t.status.Epoch = epoch
		s.retryOrFailLocked(t, epoch, class, err.Error())
	}
}

// pendingRetries reports how many transfers are waiting out a backoff.
func (s *Service) pendingRetries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.retryQ)
}

// Run is the daemon's epoch loop: it executes epochs as admissions arrive,
// steps the live fault plane on the FaultTick cadence, re-polls while retries
// wait out their backoff, and, once ctx is cancelled (SIGTERM), drains —
// refusing new admissions, completing every queued and retrying transfer,
// and only then returning. The returned error is the last epoch error seen
// during the drain, if any; transfers touched by a failing epoch are in the
// failed state, never silently dropped.
func (s *Service) Run(ctx context.Context) error {
	var tick <-chan time.Time
	if s.cfg.FaultTick > 0 {
		tk := time.NewTicker(s.cfg.FaultTick)
		defer tk.Stop()
		tick = tk.C
	}
	for {
		select {
		case <-ctx.Done():
			return s.drain()
		case <-tick:
			s.StepFaults()
		case <-s.wake:
		}
		for {
			// Epochs run to completion even if ctx is cancelled mid-epoch;
			// cancellation is observed between epochs, at the drain point.
			n, err := s.StepEpoch(context.Background())
			if err != nil {
				return s.drainAfter(err)
			}
			if n == 0 {
				break
			}
		}
		if s.pendingRetries() > 0 {
			// Backoffs elapse in epoch steps; poke the loop shortly so the
			// empty steps that advance epoch time keep happening.
			time.AfterFunc(retryPoll, s.wakeUp)
		}
	}
}

// drain refuses further admissions and completes everything still queued.
func (s *Service) drain() error { return s.drainAfter(nil) }

func (s *Service) drainAfter(sticky error) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already && s.cfg.DrainHook != nil {
		s.cfg.DrainHook()
	}
	for {
		// Draining makes every pending retry due immediately, so StepEpoch
		// returns 0 only once both the queue and the retry set are empty.
		n, err := s.StepEpoch(context.Background())
		if err != nil {
			sticky = err
		}
		if n == 0 {
			close(s.drained)
			return sticky
		}
	}
}

// Drained reports whether a drain has fully completed (terminal states
// reached for every admitted transfer). It is closed by Run's drain path.
func (s *Service) Drained() <-chan struct{} { return s.drained }
