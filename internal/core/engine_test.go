package core

import (
	"math"
	"testing"

	"surfnet/internal/decoder"
	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/surfacecode"
	"surfnet/internal/topology"
)

// lineNet builds user(0)-switch(1)-server(2)-switch(3)-user(4).
func lineNet(t *testing.T, fidelity float64, entRate, lossProb float64) *network.Network {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 1000},
		{ID: 2, Role: network.Server, Capacity: 1000},
		{ID: 3, Role: network.Switch, Capacity: 1000},
		{ID: 4, Role: network.User},
	}
	var fibers []network.Fiber
	for i := 0; i < 4; i++ {
		fibers = append(fibers, network.Fiber{
			ID: i, A: i, B: i + 1, Fidelity: fidelity,
			EntPairs: 1000, EntRate: entRate, LossProb: lossProb,
		})
	}
	n, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	return n
}

// mustSchedule schedules one request end to end.
func mustSchedule(t *testing.T, net *network.Network, d routing.Design, messages int) routing.Schedule {
	t.Helper()
	p := routing.DefaultParams(d)
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: messages}}, p, nil, nil)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if sched.AcceptedCodes() == 0 {
		t.Fatal("schedule accepted nothing")
	}
	return sched
}

func TestConfigValidation(t *testing.T) {
	net := lineNet(t, 0.95, 0.5, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	src := rng.New(1)
	bad := DefaultConfig()
	bad.Code = nil
	if _, err := Run(net, sched, bad, src); err == nil {
		t.Error("nil code should fail")
	}
	bad = DefaultConfig()
	bad.Decoder = nil
	if _, err := Run(net, sched, bad, src); err == nil {
		t.Error("nil decoder should fail")
	}
	bad = DefaultConfig()
	bad.MinSegment = 0
	if _, err := Run(net, sched, bad, src); err == nil {
		t.Error("zero MinSegment should fail")
	}
	bad = DefaultConfig()
	bad.Code = surfacecode.MustNew(3, surfacecode.CoreLShape)
	if _, err := Run(net, sched, bad, src); err == nil {
		t.Error("code/schedule size mismatch should fail")
	}
}

func TestSurfNetCleanDelivery(t *testing.T) {
	// Near-perfect fibers and fast entanglement: everything delivers with
	// very high fidelity.
	net := lineNet(t, 0.999, 0.9, 0.001)
	sched := mustSchedule(t, net, routing.SurfNet, 4)
	res, err := Run(net, sched, DefaultConfig(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(res.Outcomes))
	}
	if res.DeliveredFraction() != 1 {
		t.Fatalf("delivered %v, want all", res.DeliveredFraction())
	}
	if res.Fidelity() < 0.9 {
		t.Fatalf("fidelity %v on a near-perfect network", res.Fidelity())
	}
	if res.MeanLatency() < 4 {
		t.Fatalf("latency %v below the physical minimum (4 hops)", res.MeanLatency())
	}
}

func TestSurfNetPerformsScheduledCorrections(t *testing.T) {
	// Fidelity 0.8 forces one EC at the server (see routing tests); the
	// engine must actually perform it.
	net := lineNet(t, 0.8, 0.9, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 2)
	if len(sched.Requests[0].Codes[0].Servers) != 1 {
		t.Fatal("precondition: schedule should include one EC")
	}
	res, err := Run(net, sched, DefaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if !o.Delivered {
			t.Fatal("code not delivered")
		}
		if o.Corrections != 1 {
			t.Fatalf("corrections = %d, want 1", o.Corrections)
		}
	}
}

func TestRawDelivery(t *testing.T) {
	net := lineNet(t, 0.95, 0.0, 0.05) // no entanglement needed for Raw
	sched := mustSchedule(t, net, routing.Raw, 3)
	res, err := Run(net, sched, DefaultConfig(), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredFraction() != 1 {
		t.Fatalf("raw delivery %v, want 1 (plain channel cannot stall)", res.DeliveredFraction())
	}
	// Raw over 4 hops takes exactly 4 transport slots; the final decode
	// completes within the arrival slot.
	if res.MeanLatency() != 4 {
		t.Fatalf("raw latency %v, want 4", res.MeanLatency())
	}
}

func TestSurfNetSlowerEntanglementMeansHigherLatency(t *testing.T) {
	fast := lineNet(t, 0.95, 0.9, 0.02)
	slow := lineNet(t, 0.95, 0.15, 0.02)
	latency := func(net *network.Network) float64 {
		sched := mustSchedule(t, net, routing.SurfNet, 6)
		res, err := Run(net, sched, DefaultConfig(), rng.New(17))
		if err != nil {
			t.Fatal(err)
		}
		if res.DeliveredFraction() == 0 {
			t.Fatal("nothing delivered")
		}
		return res.MeanLatency()
	}
	lf, ls := latency(fast), latency(slow)
	if ls <= lf {
		t.Fatalf("slow entanglement latency %v should exceed fast %v", ls, lf)
	}
}

func TestPurificationDesigns(t *testing.T) {
	net := lineNet(t, 0.9, 0.6, 0.02)
	for _, d := range []routing.Design{routing.Purification1, routing.Purification2, routing.Purification9} {
		sched := mustSchedule(t, net, d, 3)
		res, err := Run(net, sched, DefaultConfig(), rng.New(19))
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.DeliveredFraction() == 0 {
			t.Fatalf("%v: nothing delivered", d)
		}
		if f := res.Fidelity(); f < 0 || f > 1 {
			t.Fatalf("%v: fidelity %v", d, f)
		}
	}
	// Without memory decay, more purification rounds give higher fidelity
	// on poor links at the cost of slower delivery; with decay enabled,
	// the long waits of purification-9 eat the link-quality gain (the
	// paper's motivating weakness of teleportation-only networks).
	poor := lineNet(t, 0.75, 0.6, 0.02)
	fid := func(d routing.Design, trials int, decay float64) (float64, float64) {
		p := routing.DefaultParams(d)
		var succ, lat, delivered float64
		for i := 0; i < trials; i++ {
			sched, err := routing.Greedy(poor, []network.Request{{Src: 0, Dst: 4, Messages: 1}}, p, nil, nil)
			if err != nil || sched.AcceptedCodes() == 0 {
				t.Fatalf("%v: scheduling failed", d)
			}
			cfg := DefaultConfig()
			cfg.MaxSlots = 3000
			cfg.MemoryDecay = decay
			res, err := Run(poor, sched, cfg, rng.New(uint64(100+i)))
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range res.Outcomes {
				if o.Delivered {
					delivered++
					lat += float64(o.Latency)
				}
				if o.Success {
					succ++
				}
			}
		}
		return succ / float64(trials), lat / delivered
	}
	f1, l1 := fid(routing.Purification1, 120, 1)
	f9, l9 := fid(routing.Purification9, 120, 1)
	if f9 <= f1 {
		t.Errorf("purification-9 fidelity %v should beat purification-1 %v without decay", f9, f1)
	}
	if l9 <= l1 {
		t.Errorf("purification-9 latency %v should exceed purification-1 %v", l9, l1)
	}
	f9decayed, _ := fid(routing.Purification9, 120, 0.99)
	if f9decayed >= f9 {
		t.Errorf("memory decay should cost purification-9 fidelity: %v vs %v", f9decayed, f9)
	}
}

func TestWaitForCompleteTradeoff(t *testing.T) {
	// Lossy plain channel: waiting for retransmission must deliver
	// strictly later on average than erasure-marked early decoding, and
	// record retransmission waves.
	net := lineNet(t, 0.97, 0.9, 0.25)
	sched := mustSchedule(t, net, routing.SurfNet, 8)
	early, err := Run(net, sched, DefaultConfig(), rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WaitForComplete = true
	waiting, err := Run(net, sched, cfg, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if waiting.MeanLatency() <= early.MeanLatency() {
		t.Errorf("wait-for-complete latency %v should exceed early-decode %v",
			waiting.MeanLatency(), early.MeanLatency())
	}
	retrans := 0
	for _, o := range waiting.Outcomes {
		retrans += o.Retransmissions
	}
	if retrans == 0 {
		t.Error("no retransmissions recorded on a 25%-loss channel")
	}
	for _, o := range early.Outcomes {
		if o.Retransmissions != 0 {
			t.Error("early decoding must not retransmit")
		}
	}
}

func TestFiberOutagesAndRecovery(t *testing.T) {
	// A ring topology gives recovery paths; with outages the engine should
	// still deliver, occasionally via recovery.
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 1000},
		{ID: 2, Role: network.Server, Capacity: 1000},
		{ID: 3, Role: network.Switch, Capacity: 1000},
		{ID: 4, Role: network.User},
		{ID: 5, Role: network.Switch, Capacity: 1000},
	}
	fibers := []network.Fiber{
		{ID: 0, A: 0, B: 1, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 1, A: 1, B: 2, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 2, A: 2, B: 3, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 3, A: 3, B: 4, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 4, A: 1, B: 5, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 5, A: 5, B: 3, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
	}
	net, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatal(err)
	}
	p := routing.DefaultParams(routing.SurfNet)
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 10}}, p, nil, nil)
	if err != nil || sched.AcceptedCodes() == 0 {
		t.Fatalf("scheduling failed: %v", err)
	}
	cfg := DefaultConfig()
	cfg.FiberFailProb = 0.05
	cfg.RepairSlots = 20
	cfg.MaxSlots = 1000
	res, err := Run(net, sched, cfg, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredFraction() < 0.8 {
		t.Fatalf("delivered %v under recoverable outages", res.DeliveredFraction())
	}
	// With recovery disabled the same seeds must never reroute.
	cfg.DisableRecovery = true
	res2, err := Run(net, sched, cfg, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res2.Outcomes {
		if o.Recoveries != 0 {
			t.Fatal("recovery recorded while disabled")
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	net := lineNet(t, 0.9, 0.5, 0.05)
	sched := mustSchedule(t, net, routing.SurfNet, 3)
	a, err := Run(net, sched, DefaultConfig(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, sched, DefaultConfig(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs across identical seeds", i)
		}
	}
}

func TestEmptyScheduleMetrics(t *testing.T) {
	var r RunResult
	if r.Fidelity() != 0 || r.MeanLatency() != 0 || r.DeliveredFraction() != 0 {
		t.Error("empty result metrics should be zero")
	}
}

func TestEndToEndOnGeneratedTopology(t *testing.T) {
	// Full pipeline: generate scenario, LP-schedule, execute, for both LP
	// designs and one purification baseline.
	src := rng.New(3030)
	net, err := topology.Generate(topology.DefaultParams(topology.Abundant, topology.GoodConnection), src)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := topology.GenRequests(net, 5, 2, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []routing.Design{routing.SurfNet, routing.Raw, routing.Purification2} {
		sched, err := routing.ScheduleLP(net, reqs, routing.DefaultParams(d))
		if err != nil {
			t.Fatalf("%v: schedule: %v", d, err)
		}
		cfg := DefaultConfig()
		cfg.Decoder = decoder.SurfNet{}
		res, err := Run(net, sched, cfg, src.Split(d.String()))
		if err != nil {
			t.Fatalf("%v: run: %v", d, err)
		}
		if len(res.Outcomes) != sched.AcceptedCodes() {
			t.Fatalf("%v: %d outcomes for %d codes", d, len(res.Outcomes), sched.AcceptedCodes())
		}
		if f := res.Fidelity(); math.IsNaN(f) || f < 0 || f > 1 {
			t.Fatalf("%v: fidelity %v", d, f)
		}
	}
}
