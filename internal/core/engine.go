// Package core implements the paper's primary contribution as a running
// system: the SurfNet online execution stage (§V-B). Given an offline
// schedule from the routing protocol, the engine simulates slot-by-slot
// transfer of every scheduled surface code over the two channels —
// opportunistic teleportation of the Core part across entanglement segments,
// plain-channel photon transport of the Support part with loss — performs
// real error-correction decoding at the scheduled servers and at the
// destination, and reports the paper's three evaluation metrics: fidelity
// (success rate), latency (waiting slots), and, together with the schedule,
// throughput.
//
// The same engine executes the baseline designs: Raw (everything over plain
// channels) and Purification N=1,2,9 (teleportation-only with N extra pairs
// consumed per fiber).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"surfnet/internal/decoder"
	"surfnet/internal/faults"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/sim"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// ErrConfig is returned for invalid engine configuration.
var ErrConfig = errors.New("core: invalid config")

// Config parameterizes the online execution engine.
type Config struct {
	// Code is the surface code carried by every communication. Its
	// Core/Support partition sizes must match the schedule's routing
	// parameters for SurfNet schedules.
	Code *surfacecode.Code
	// Decoder performs error correction at servers and destinations.
	// Defaults to the SurfNet Decoder.
	Decoder decoder.Decoder
	// MinSegment is the minimum number of consecutive entangled fibers
	// required before the Core part moves forward; the paper fixes two
	// (§V-B "we fix the minimum distance for the movement to be two
	// consecutive optical fibers").
	MinSegment int
	// MaxSlots bounds each communication; codes still in flight after
	// this many slots are counted as undelivered.
	MaxSlots int
	// WaitForComplete switches off the data-transfer/error-correction
	// parallelism of §V-B: lost Support photons are retransmitted from
	// the previous node until the full code is present, instead of being
	// marked as erasures for the decoder. Slower but more reliable — the
	// trade-off the paper describes.
	WaitForComplete bool
	// FiberFailProb is the per-slot probability that a fiber on the
	// remaining path crashes (§V-B "crashes in incoming/outgoing ports").
	// It is the legacy view onto the fault-injection subsystem: the engine
	// folds it into the Faults profile's fiber-crash scenario, and runs
	// configured this way reproduce their pre-injector behaviour exactly.
	FiberFailProb float64
	// RepairSlots is how long a crashed fiber stays down.
	RepairSlots int
	// Faults, when non-nil, selects the full fault-injection scenario:
	// stochastic fiber crashes, node/server outages, correlated regional
	// failures, fidelity drift, and scripted outage timetables
	// (internal/faults). When its fiber-crash component is zero, the
	// legacy FiberFailProb/RepairSlots fields above are folded in. For
	// SurfNet and Raw transfers every component applies; purification
	// baselines react to fiber outages and drift (they have no correction
	// servers for node outages to affect) and only when Faults is set
	// explicitly, keeping legacy configurations untouched.
	Faults *faults.Profile
	// DisableRecovery turns off local recovery paths, leaving codes to
	// wait out fiber outages.
	DisableRecovery bool
	// RecoveryBackoff bounds how often a blocked part retries its local
	// recovery search. Zero keeps the legacy policy (re-run Dijkstra every
	// blocked slot); a positive value is the initial backoff in slots,
	// doubled after each consecutive failed attempt up to
	// RecoveryBackoffMax.
	RecoveryBackoff int
	// RecoveryBackoffMax caps the exponential recovery backoff. Zero
	// selects 32 when RecoveryBackoff is set.
	RecoveryBackoffMax int
	// ReplanAfterFails enables epoch re-planning: once either part of a
	// code has accumulated this many consecutive failed recovery attempts,
	// the engine re-solves the request's routing (LP relaxation with the
	// greedy fallback) over the surviving topology and restarts the
	// transfer from the source on the fresh route — the end-to-end
	// retransmission a control plane falls back to when local repair keeps
	// failing. Zero disables re-planning.
	ReplanAfterFails int
	// ReplanEpoch is the minimum number of slots between re-planning
	// attempts of one transfer. Zero selects 50.
	ReplanEpoch int
	// ChannelErrorScale converts a fiber's infidelity into the per-hop,
	// per-photon decoding-graph flip probability: flip = scale * (1 -
	// gamma). It calibrates how much of a fiber's measured infidelity
	// lands on each individual photon; the default 0.15 places
	// paper-scale routes (2-5 hops between corrections at fiber fidelity
	// 0.75-1) around the surface-code threshold, where the designs
	// differentiate.
	ChannelErrorScale float64
	// MemoryDecay is the per-slot state retention of a bare teleportation
	// payload waiting for entanglement in the purification baselines.
	// Surface-code parts are exempt: the paper keeps them refreshed via
	// error mitigation circuits at each node (§IV-A, §V-B), which is
	// precisely the waiting-time weakness of teleportation-only networks
	// that SurfNet targets. 1 disables decay; the default is 0.999.
	MemoryDecay float64
	// PairLifetime is how many slots an entangled pair stays usable in
	// the purification baselines before decohering away — the "short
	// lifespan of entangled pairs" of §I. Mainstream networks must
	// assemble a full end-to-end chain of live pairs before teleporting,
	// which is what makes distant teleportation time-consuming. Zero
	// selects 20.
	PairLifetime int
	// SwapEfficiency is the fidelity retention of one entanglement swap
	// at an intermediate node. Teleportation across k fibers performs k-1
	// swaps; SurfNet's opportunistic segments pay it within each segment.
	// Zero selects 0.9.
	SwapEfficiency float64
	// Metrics, when non-nil, receives engine counters and histograms
	// (photon losses, teleports, decodes, crashes, recoveries, delivery
	// latency) plus the per-decoder instrumentation of
	// decoder.DecodeFrameMetered. Nil — the default — disables metrics;
	// instrumented sites then cost one nil check each.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives slot-level events tagged with the
	// request and code indices, so one communication's life can be
	// replayed from its trace. Nil disables tracing.
	Tracer telemetry.Tracer
	// Wall, when non-nil, additionally captures each span's wall-clock
	// duration (the dual-clock model): span events on Tracer keep their
	// deterministic slot durations, and the sink feeds the
	// <name>_wall_seconds histograms and SLO budget. Wall time never
	// flows back into the simulation, so enabling it cannot change
	// results. Nil disables wall capture.
	Wall *telemetry.WallSink
}

// DefaultConfig returns the paper-default engine: a distance-5 code, the
// SurfNet Decoder, two-fiber opportunistic segments, and no fiber crashes.
func DefaultConfig() Config {
	return Config{
		Code:              surfacecode.MustNew(5, surfacecode.CoreLShape),
		Decoder:           decoder.SurfNet{},
		MinSegment:        2,
		MaxSlots:          400,
		RepairSlots:       5,
		ChannelErrorScale: 0.15,
		MemoryDecay:       0.999,
		PairLifetime:      20,
		SwapEfficiency:    0.9,
	}
}

func (c Config) validate(net *network.Network, sched routing.Schedule) error {
	if err := c.validateEngine(net); err != nil {
		return err
	}
	return c.validateSchedule(sched)
}

// validateEngine checks the schedule-independent configuration: everything a
// resident engine can verify once at construction, before any schedule
// arrives.
func (c Config) validateEngine(net *network.Network) error {
	if c.Code == nil {
		return fmt.Errorf("%w: nil code", ErrConfig)
	}
	if c.Decoder == nil {
		return fmt.Errorf("%w: nil decoder", ErrConfig)
	}
	if c.MinSegment < 1 {
		return fmt.Errorf("%w: MinSegment %d < 1", ErrConfig, c.MinSegment)
	}
	if c.MaxSlots < 1 {
		return fmt.Errorf("%w: MaxSlots %d < 1", ErrConfig, c.MaxSlots)
	}
	if c.FiberFailProb < 0 || c.FiberFailProb > 1 {
		return fmt.Errorf("%w: FiberFailProb %v", ErrConfig, c.FiberFailProb)
	}
	if c.RepairSlots < 0 {
		return fmt.Errorf("%w: RepairSlots %d < 0", ErrConfig, c.RepairSlots)
	}
	if c.Faults != nil {
		if err := c.Faults.ValidateAgainst(net); err != nil {
			return fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	if c.RecoveryBackoff < 0 {
		return fmt.Errorf("%w: RecoveryBackoff %d < 0", ErrConfig, c.RecoveryBackoff)
	}
	if c.RecoveryBackoffMax < 0 {
		return fmt.Errorf("%w: RecoveryBackoffMax %d < 0", ErrConfig, c.RecoveryBackoffMax)
	}
	if c.RecoveryBackoff > 0 && c.RecoveryBackoffMax > 0 && c.RecoveryBackoffMax < c.RecoveryBackoff {
		return fmt.Errorf("%w: RecoveryBackoffMax %d < RecoveryBackoff %d",
			ErrConfig, c.RecoveryBackoffMax, c.RecoveryBackoff)
	}
	if c.ReplanAfterFails < 0 {
		return fmt.Errorf("%w: ReplanAfterFails %d < 0", ErrConfig, c.ReplanAfterFails)
	}
	if c.ReplanEpoch < 0 {
		return fmt.Errorf("%w: ReplanEpoch %d < 0", ErrConfig, c.ReplanEpoch)
	}
	if c.MemoryDecay < 0 || c.MemoryDecay > 1 {
		return fmt.Errorf("%w: MemoryDecay %v", ErrConfig, c.MemoryDecay)
	}
	if c.ChannelErrorScale < 0 || c.ChannelErrorScale > 1 {
		return fmt.Errorf("%w: ChannelErrorScale %v", ErrConfig, c.ChannelErrorScale)
	}
	if c.PairLifetime < 0 {
		return fmt.Errorf("%w: PairLifetime %d", ErrConfig, c.PairLifetime)
	}
	if c.SwapEfficiency < 0 || c.SwapEfficiency > 1 {
		return fmt.Errorf("%w: SwapEfficiency %v", ErrConfig, c.SwapEfficiency)
	}
	return nil
}

// validateSchedule checks the configuration against one schedule: the code
// geometry must match the schedule's routing parameters.
func (c Config) validateSchedule(sched routing.Schedule) error {
	p := sched.Params
	adaptive := len(p.AdaptiveDistances) > 0
	if !adaptive && (sched.Design == routing.SurfNet || sched.Design == routing.Raw) {
		if p.TotalQubits() != c.Code.NumData() {
			return fmt.Errorf("%w: schedule sized for %d qubits, code has %d",
				ErrConfig, p.TotalQubits(), c.Code.NumData())
		}
		if sched.Design == routing.SurfNet && p.CoreQubits != c.Code.CoreSize() {
			return fmt.Errorf("%w: schedule has %d core qubits, code has %d",
				ErrConfig, p.CoreQubits, c.Code.CoreSize())
		}
	}
	return nil
}

// faultProfile resolves the effective fault scenario: the explicit Faults
// profile, with the legacy FiberFailProb/RepairSlots fields folded into its
// fiber-crash component when the profile leaves it zero. Nil means no faults.
func (c Config) faultProfile() *faults.Profile {
	var p faults.Profile
	if c.Faults != nil {
		p = *c.Faults
	}
	if p.FiberCrashProb == 0 && c.FiberFailProb > 0 {
		p.FiberCrashProb = c.FiberFailProb
		p.FiberRepairSlots = c.RepairSlots
	}
	if !p.Enabled() {
		return nil
	}
	return &p
}

// FaultScenario resolves the engine's effective fault profile — the explicit
// Faults profile with the legacy fields folded in, nil when faultless — so
// callers layering live overlays (the resident service) start from the same
// base the engine itself would execute under.
func (c Config) FaultScenario() *faults.Profile { return c.faultProfile() }

// replanEpoch resolves the default re-planning epoch.
func (c Config) replanEpoch() int {
	if c.ReplanEpoch == 0 {
		return 50
	}
	return c.ReplanEpoch
}

// backoffMax resolves the default recovery backoff cap.
func (c Config) backoffMax() int {
	if c.RecoveryBackoffMax == 0 {
		return 32
	}
	return c.RecoveryBackoffMax
}

// Outcome records the execution of one scheduled surface code.
type Outcome struct {
	// Request indexes into the schedule's request list.
	Request int
	// Code indexes the surface code within its request.
	Code int
	// Delivered reports arrival at the destination within MaxSlots.
	Delivered bool
	// Success reports delivery with no logical error at any error
	// correction or the final decode — the paper's per-communication
	// "occurring without any errors".
	Success bool
	// Latency is the delivery slot count (meaningful when Delivered).
	Latency int
	// Corrections counts error corrections performed en route.
	Corrections int
	// Retransmissions counts Support retransmission waves (only under
	// WaitForComplete).
	Retransmissions int
	// Recoveries counts local recovery reroutes after fiber crashes.
	Recoveries int
	// Replans counts epoch re-plans: full route re-solves over the
	// surviving topology after persistent recovery failure.
	Replans int
	// SkippedCorrections counts scheduled error corrections skipped
	// because the server was down; the code then degraded to its next
	// decode opportunity (ultimately destination-only decoding).
	SkippedCorrections int
}

// RunResult aggregates all outcomes of executing one schedule.
type RunResult struct {
	Design   routing.Design
	Outcomes []Outcome
}

// Fidelity is the paper's communication fidelity: the fraction of scheduled
// communications that completed without any error.
func (r RunResult) Fidelity() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	ok := 0
	for _, o := range r.Outcomes {
		if o.Success {
			ok++
		}
	}
	return float64(ok) / float64(len(r.Outcomes))
}

// MeanLatency is the average delivery latency in slots over delivered codes.
func (r RunResult) MeanLatency() float64 {
	sum, n := 0, 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			sum += o.Latency
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// DeliveredFraction is the fraction of scheduled codes that arrived within
// the slot budget.
func (r RunResult) DeliveredFraction() float64 {
	if len(r.Outcomes) == 0 {
		return 0
	}
	n := 0
	for _, o := range r.Outcomes {
		if o.Delivered {
			n++
		}
	}
	return float64(n) / float64(len(r.Outcomes))
}

// Engine is the re-entrant execution engine: it owns a network and a
// schedule-independent configuration, validated once at construction, and
// executes any number of schedules against them. This is the resident mode
// the control-plane daemon runs on — network state lives in the engine while
// epoch batches of admitted transfers stream through Execute/ExecuteParallel
// — and the substrate the one-shot Run wrapper delegates to, so batch CLIs
// and the daemon share one code path.
type Engine struct {
	net *network.Network
	cfg Config

	// codes caches built surface codes by distance (0 = the configured
	// default), shared across Execute calls so a resident engine builds each
	// geometry once. Guarded for ExecuteParallel's worker pool.
	mu    sync.Mutex
	codes map[int]*surfacecode.Code
}

// NewEngine validates the schedule-independent configuration against the
// network and returns an engine ready to execute schedules.
func NewEngine(net *network.Network, cfg Config) (*Engine, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: nil network", ErrConfig)
	}
	if err := cfg.validateEngine(net); err != nil {
		return nil, err
	}
	return &Engine{
		net:   net,
		cfg:   cfg,
		codes: map[int]*surfacecode.Code{0: cfg.Code},
	}, nil
}

// Network returns the network state the engine owns.
func (e *Engine) Network() *network.Network { return e.net }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// codeFor returns the surface code for the given distance (0 = default),
// building and caching it on first use.
func (e *Engine) codeFor(distance int) (*surfacecode.Code, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	code, ok := e.codes[distance]
	if !ok {
		var err error
		code, err = surfacecode.New(distance, e.cfg.Code.Layout())
		if err != nil {
			return nil, err
		}
		e.codes[distance] = code
	}
	return code, nil
}

// Execute runs every scheduled code of sched serially. Codes are simulated on
// independent randomness sub-streams derived from src by request and code
// index, so results are reproducible and insensitive to iteration order —
// and identical to ExecuteParallel at any worker count.
func (e *Engine) Execute(sched routing.Schedule, src *rng.Source) (RunResult, error) {
	if err := e.cfg.validateSchedule(sched); err != nil {
		return RunResult{}, err
	}
	res := RunResult{Design: sched.Design}
	for ri, rs := range sched.Requests {
		for ci, cr := range rs.Codes {
			code, err := e.codeFor(cr.Distance)
			if err != nil {
				return RunResult{}, fmt.Errorf("request %d code %d: building distance-%d code: %w",
					ri, ci, cr.Distance, err)
			}
			stream := src.SplitN(fmt.Sprintf("req%d", ri), ci)
			o, err := runOne(e.net, sched, e.cfg, code, rs.Request, cr, stream, ri, ci)
			if err != nil {
				return RunResult{}, fmt.Errorf("request %d code %d: %w", ri, ci, err)
			}
			o.Request, o.Code = ri, ci
			res.Outcomes = append(res.Outcomes, o)
		}
	}
	return res, nil
}

// ExecuteParallel runs the schedule's codes on a deterministic worker pool.
// Each code draws from the same src.SplitN(req, code) sub-stream as Execute
// and outcomes are reduced in (request, code) order, so the result is
// field-for-field identical to Execute for every worker count — the
// worker-invariance contract daemon-admitted transfers inherit. ctx cancels
// between codes; workers <= 0 selects GOMAXPROCS.
func (e *Engine) ExecuteParallel(ctx context.Context, sched routing.Schedule, src *rng.Source, workers int) (RunResult, error) {
	return e.executeParallel(ctx, sched, src, workers, e.cfg)
}

// ExecuteParallelFaults runs like ExecuteParallel but substitutes the fault
// profile for this call only — the resident daemon's live fault plane hands
// each epoch a fresh profile (its static outage overlay merged over the
// engine's configured scenario) without rebuilding the engine. A nil profile
// removes all faults for the call. The profile is validated against the
// engine's network, so an out-of-range fiber or node surfaces here as an
// error instead of panicking mid-epoch.
func (e *Engine) ExecuteParallelFaults(ctx context.Context, sched routing.Schedule, src *rng.Source, workers int, profile *faults.Profile) (RunResult, error) {
	cfg := e.cfg
	cfg.Faults = profile
	// The per-call profile replaces the configured scenario outright; drop
	// the legacy fields so faultProfile cannot fold them back in.
	cfg.FiberFailProb, cfg.RepairSlots = 0, 0
	if profile != nil {
		if err := profile.ValidateAgainst(e.net); err != nil {
			return RunResult{}, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	return e.executeParallel(ctx, sched, src, workers, cfg)
}

// executeParallel is the shared worker-pool body of ExecuteParallel and
// ExecuteParallelFaults.
func (e *Engine) executeParallel(ctx context.Context, sched routing.Schedule, src *rng.Source, workers int, cfg Config) (RunResult, error) {
	if err := cfg.validateSchedule(sched); err != nil {
		return RunResult{}, err
	}
	type codeJob struct {
		ri, ci int
		req    network.Request
		cr     routing.CodeRoute
		code   *surfacecode.Code
	}
	var jobs []codeJob
	for ri, rs := range sched.Requests {
		for ci, cr := range rs.Codes {
			code, err := e.codeFor(cr.Distance)
			if err != nil {
				return RunResult{}, fmt.Errorf("request %d code %d: building distance-%d code: %w",
					ri, ci, cr.Distance, err)
			}
			jobs = append(jobs, codeJob{ri: ri, ci: ci, req: rs.Request, cr: cr, code: code})
		}
	}
	res := RunResult{Design: sched.Design}
	if len(jobs) == 0 {
		return res, nil
	}
	outcomes, err := sim.Run(ctx, len(jobs), workers, func(i int, _ *sim.Worker) (Outcome, error) {
		j := jobs[i]
		stream := src.SplitN(fmt.Sprintf("req%d", j.ri), j.ci)
		o, err := runOne(e.net, sched, cfg, j.code, j.req, j.cr, stream, j.ri, j.ci)
		if err != nil {
			return Outcome{}, fmt.Errorf("request %d code %d: %w", j.ri, j.ci, err)
		}
		o.Request, o.Code = j.ri, j.ci
		return o, nil
	})
	if err != nil {
		return RunResult{}, err
	}
	res.Outcomes = outcomes
	return res, nil
}

// Run executes every scheduled code of sched on net: the one-shot batch entry
// point, a NewEngine + Execute pair. Codes are simulated on independent
// randomness sub-streams, so results are reproducible and insensitive to
// iteration order.
func Run(net *network.Network, sched routing.Schedule, cfg Config, src *rng.Source) (RunResult, error) {
	e, err := NewEngine(net, cfg)
	if err != nil {
		return RunResult{}, err
	}
	return e.Execute(sched, src)
}

// runOne dispatches on the schedule's design. ri and ci tag telemetry with
// the communication's identity.
func runOne(net *network.Network, sched routing.Schedule, cfg Config, code *surfacecode.Code, req network.Request, cr routing.CodeRoute, src *rng.Source, ri, ci int) (Outcome, error) {
	switch sched.Design {
	case routing.SurfNet, routing.Raw:
		t := newTransfer(net, sched, cfg, code, req, cr, src)
		t.reqIdx, t.codeIdx = ri, ci
		return t.run()
	default:
		return runPurification(net, sched, cfg, req, cr, src, ri, ci)
	}
}

// runPurification executes a mainstream teleportation-only transfer (the
// first network scheme of §I). Unlike SurfNet's opportunistic segments
// (§V-B), the baseline must assemble an end-to-end chain: every fiber of the
// path simultaneously holding 1+N live entangled pairs (pairs expire after
// PairLifetime slots — the short entanglement lifespan of §I). Once the
// chain is up, entanglement swapping at every intermediate node fuses it
// into one end-to-end pair that teleports the message. The payload is
// unencoded — mainstream networks carry the data qubits themselves, with no
// error correction anywhere — so delivery succeeds with probability equal to
// the chain fidelity after purification, swap losses, and the memory decay
// accumulated while waiting.
func runPurification(net *network.Network, sched routing.Schedule, cfg Config, req network.Request, cr routing.CodeRoute, src *rng.Source, ri, ci int) (Outcome, error) {
	ins := newInstruments(cfg.Metrics)
	trace := func(slot int, typ string, kv ...any) {
		if cfg.Tracer == nil {
			return
		}
		ev := telemetry.Ev(typ, kv...)
		ev.Slot, ev.Req, ev.Code = slot, ri, ci
		cfg.Tracer.Emit(ev)
	}
	// The baseline has no epochs or decodes, but its transfer still gets a
	// root span so every design's latency is decomposable from one trace.
	spans := telemetry.NewSpanSetWall(cfg.Tracer, ri, ci, cfg.Wall)
	transferSpan := spans.Start("transfer", 0, 0)
	n := sched.Design.PurifyRounds()
	path := cr.CorePath
	need := 1 + n
	life := cfg.PairLifetime
	if life == 0 {
		life = 20
	}
	// Fault injection for the baselines is opt-in: only an explicit Faults
	// profile applies (the legacy FiberFailProb fields never did here, and
	// folding them in would silently change pre-injector results). A down
	// fiber destroys its live pairs and blocks generation; drift degrades
	// the delivered chain fidelity below.
	var inj faults.Injector
	if cfg.Faults != nil {
		inj = cfg.Faults.Build(net)
	}
	pathFibers := func(visit func(fi int)) {
		seen := map[int]bool{}
		for _, fi := range path {
			if !seen[fi] {
				seen[fi] = true
				visit(fi)
			}
		}
	}
	// expiries[i] holds the expiry slots of fiber i's live pairs.
	expiries := make([][]int, len(path))
	var out Outcome

	ready := false
	slot := 0
	for ; slot < cfg.MaxSlots && !ready; slot++ {
		if inj != nil {
			inj.Step(faults.Scope{Slot: slot, Src: src, Fibers: pathFibers},
				faultEmitter(ins, cfg.Tracer, ri, ci))
		}
		ready = true
		for i, fi := range path {
			if inj != nil && inj.FiberDown(fi) {
				expiries[i] = expiries[i][:0] // outage destroys live pairs
				ready = false
				continue
			}
			// Expire old pairs, attempt one generation.
			live := expiries[i][:0]
			for _, exp := range expiries[i] {
				if exp > slot {
					live = append(live, exp)
				}
			}
			if len(live) < need && src.Bool(net.Fiber(fi).EntRate) {
				live = append(live, slot+life)
			}
			expiries[i] = live
			if len(live) < need {
				ready = false
			}
		}
	}
	if !ready {
		ins.timeouts.Inc()
		trace(cfg.MaxSlots, "core.timeout", "design", sched.Design.String())
		spans.End(transferSpan, cfg.MaxSlots, "delivered", false, "success", false)
		return out, nil // timed out waiting for the chain
	}
	out.Delivered = true
	out.Latency = slot
	// End-to-end fidelity: purified links, one swap per intermediate
	// node, and the decay the payload suffered while the chain built.
	swapEff := cfg.SwapEfficiency
	if swapEff == 0 {
		swapEff = 0.9
	}
	decay := cfg.MemoryDecay
	if decay == 0 {
		decay = 1
	}
	chain := 1.0
	for _, fi := range path {
		g := net.Fiber(fi).Fidelity
		if inj != nil {
			g = inj.Gamma(fi, g) // drift degrades the delivered chain
		}
		chain *= quantum.PurifyN(g, n)
	}
	for k := 1; k < len(path); k++ {
		chain *= swapEff
	}
	chain *= math.Pow(decay, float64(slot))
	out.Success = src.Bool(chain)
	ins.delivered.Inc()
	ins.latency.Observe(float64(out.Latency))
	trace(slot, "core.deliver", "design", sched.Design.String(),
		"latency", out.Latency, "success", out.Success)
	spans.End(transferSpan, slot, "delivered", true, "success", out.Success)
	return out, nil
}
