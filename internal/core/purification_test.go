package core

import (
	"testing"

	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
)

// purifSchedule schedules one purification message over the line network.
func purifSchedule(t *testing.T, net *network.Network, d routing.Design) routing.Schedule {
	t.Helper()
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 1}},
		routing.DefaultParams(d), nil, nil)
	if err != nil || sched.AcceptedCodes() == 0 {
		t.Fatalf("scheduling failed: %v", err)
	}
	return sched
}

func TestPairLifetimeGatesDelivery(t *testing.T) {
	// Purification-9 needs 10 simultaneous live pairs per fiber. With a
	// short lifetime and a slow generation rate the chain can essentially
	// never assemble; with a long lifetime it always does.
	net := lineNet(t, 0.9, 0.3, 0.02)
	sched := purifSchedule(t, net, routing.Purification9)
	delivered := func(lifetime int) float64 {
		cfg := DefaultConfig()
		cfg.PairLifetime = lifetime
		cfg.MaxSlots = 300
		n := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			res, err := Run(net, sched, cfg, rng.New(uint64(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			n += len(res.Outcomes)
			for _, o := range res.Outcomes {
				if !o.Delivered {
					n--
				}
			}
		}
		return float64(n) / float64(trials)
	}
	short := delivered(5)
	long := delivered(200)
	if long < 0.9 {
		t.Fatalf("long-lived pairs should deliver reliably, got %v", long)
	}
	if short > long-0.3 {
		t.Fatalf("short pair lifetime should gate delivery: short %v vs long %v", short, long)
	}
}

func TestSwapEfficiencyCostsFidelity(t *testing.T) {
	// Lossier swaps must reduce purification fidelity on a multi-hop path.
	net := lineNet(t, 0.95, 0.8, 0.02)
	sched := purifSchedule(t, net, routing.Purification2)
	fidelity := func(swapEff float64) float64 {
		cfg := DefaultConfig()
		cfg.SwapEfficiency = swapEff
		succ := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			res, err := Run(net, sched, cfg, rng.New(uint64(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range res.Outcomes {
				if o.Success {
					succ++
				}
			}
		}
		return float64(succ) / float64(trials)
	}
	clean := fidelity(1.0)
	lossy := fidelity(0.7)
	if lossy >= clean {
		t.Fatalf("swap losses should cost fidelity: %v vs %v", lossy, clean)
	}
}

func TestSwapEfficiencyValidation(t *testing.T) {
	net := lineNet(t, 0.9, 0.5, 0.02)
	sched := purifSchedule(t, net, routing.Purification1)
	cfg := DefaultConfig()
	cfg.SwapEfficiency = 1.5
	if _, err := Run(net, sched, cfg, rng.New(1)); err == nil {
		t.Error("SwapEfficiency > 1 should fail validation")
	}
	cfg = DefaultConfig()
	cfg.PairLifetime = -1
	if _, err := Run(net, sched, cfg, rng.New(1)); err == nil {
		t.Error("negative PairLifetime should fail validation")
	}
}
