package core

import (
	"testing"

	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/topology"
)

func TestRoundConfigValidation(t *testing.T) {
	net, err := topology.Generate(topology.DefaultParams(topology.Sufficient, topology.GoodConnection), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultRoundConfig()
	bad.Rounds = 0
	if _, err := RunRounds(net, bad, rng.New(1)); err == nil {
		t.Error("zero rounds should fail")
	}
	bad = DefaultRoundConfig()
	bad.MaxMessages = 0
	if _, err := RunRounds(net, bad, rng.New(1)); err == nil {
		t.Error("zero max messages should fail")
	}
	bad = DefaultRoundConfig()
	bad.Routing.CoreQubits = 0
	if _, err := RunRounds(net, bad, rng.New(1)); err == nil {
		t.Error("invalid routing params should fail")
	}
}

func TestRunRoundsContinuousOperation(t *testing.T) {
	net, err := topology.Generate(topology.DefaultParams(topology.Sufficient, topology.GoodConnection), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRoundConfig()
	rc.Rounds = 5
	rc.ArrivalsPerRound = 3
	res, err := RunRounds(net, rc, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 5 {
		t.Fatalf("rounds = %d, want 5", len(res.Rounds))
	}
	if res.TotalScheduled() == 0 {
		t.Fatal("continuous run scheduled nothing")
	}
	if f := res.Fidelity(); f <= 0 || f > 1 {
		t.Fatalf("fidelity %v", f)
	}
	for _, ro := range res.Rounds {
		if ro.Arrived != 3 {
			t.Fatalf("round %d arrivals %d", ro.Round, ro.Arrived)
		}
		if ro.Pending < ro.Arrived-ro.Scheduled {
			t.Fatalf("round %d backlog accounting wrong", ro.Round)
		}
		if len(ro.Result.Outcomes) != ro.Scheduled {
			t.Fatalf("round %d executed %d of %d scheduled",
				ro.Round, len(ro.Result.Outcomes), ro.Scheduled)
		}
	}
}

func TestRunRoundsBacklogCarriesForward(t *testing.T) {
	// A starved network (tiny pair budgets) cannot serve each round's
	// arrivals; the backlog must grow and then hit the cap.
	fac := topology.Sufficient
	fac.EntPairs = 7 // one SurfNet code per fiber per round
	net, err := topology.Generate(topology.DefaultParams(fac, topology.GoodConnection), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRoundConfig()
	rc.Rounds = 6
	rc.ArrivalsPerRound = 6
	rc.MaxMessages = 3
	rc.MaxBacklog = 8
	rc.UseLP = false // keep the starved-run test fast
	res, err := RunRounds(net, rc, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Error("starved network should overflow the backlog")
	}
	grew := false
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Pending > res.Rounds[0].Pending {
			grew = true
		}
	}
	if !grew {
		t.Error("backlog never grew under starvation")
	}
}

func TestRunRoundsDeterminism(t *testing.T) {
	net, err := topology.Generate(topology.DefaultParams(topology.Abundant, topology.GoodConnection), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRoundConfig()
	rc.Rounds = 3
	a, err := RunRounds(net, rc, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRounds(net, rc, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalScheduled() != b.TotalScheduled() || a.Fidelity() != b.Fidelity() {
		t.Fatal("continuous runs with equal seeds diverged")
	}
}

func TestRunRoundsWorksForAllDesigns(t *testing.T) {
	net, err := topology.Generate(topology.DefaultParams(topology.Abundant, topology.GoodConnection), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []routing.Design{routing.SurfNet, routing.Raw, routing.Purification2} {
		rc := DefaultRoundConfig()
		rc.Rounds = 2
		rc.Routing = routing.DefaultParams(d)
		res, err := RunRounds(net, rc, rng.New(8))
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.TotalScheduled() == 0 {
			t.Fatalf("%v: nothing scheduled", d)
		}
	}
}
