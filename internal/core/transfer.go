package core

import (
	"fmt"

	"surfnet/internal/decoder"
	"surfnet/internal/faults"
	"surfnet/internal/graph"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// partState tracks one part of a surface code (Core or Support) travelling
// its own route. The two parts share stop nodes (error-correction servers and
// the destination) but, as Fig. 4 illustrates, their routes may diverge —
// in particular after a local recovery reroute.
type partState struct {
	path  []int // fiber ids, source to destination
	nodes []int // node ids, len(path)+1
	pos   int   // completed hops (index into nodes)

	// Recovery backoff state: blocked parts retry their recovery search no
	// earlier than nextAttempt, and failStreak counts consecutive failed
	// attempts (feeding both the exponential backoff and the re-planning
	// trigger). Any forward progress resets both.
	nextAttempt int
	failStreak  int
}

// stopIdx returns the node-path index of the given stop node, at or after
// the current position.
func (ps *partState) stopIdx(stop int) int {
	for i := ps.pos; i < len(ps.nodes); i++ {
		if ps.nodes[i] == stop {
			return i
		}
	}
	return len(ps.nodes) - 1
}

// transfer is the slot-level state machine moving one surface code through
// the network under the SurfNet or Raw design (§V-B one-way communication).
type transfer struct {
	net    *network.Network
	cfg    Config
	code   *surfacecode.Code
	design routing.Design
	src    *rng.Source

	req      network.Request // the communication being served
	params   routing.Params  // routing parameters, for epoch re-planning
	distance int             // adaptively chosen code distance (0 = default)

	support   partState
	core      partState // unused for Raw
	stopNodes []int     // EC servers in path order, then the destination
	nextStop  int       // index into stopNodes

	// Per-data-qubit channel state.
	errProb []float64
	erased  []bool
	isCore  []bool

	inj        faults.Injector    // nil when the run injects no faults
	emitFault  func(faults.Event) // lazily built fault-event sink
	nextReplan int                // earliest slot the next re-plan may run
	failedOnce bool               // logical error at any correction so far
	out        Outcome

	ins     instruments
	reqIdx  int // request index, tagged onto telemetry
	codeIdx int // code index within the request

	// Hierarchical spans decomposing the transfer causally: one transfer
	// span holding epoch spans (route generations, rotated on re-plan),
	// holding slot spans, holding decode spans. All nil-safe when untraced.
	spans        *telemetry.SpanSet
	transferSpan int
	epochSpan    int
}

// trace emits a slot-scoped event tagged with the communication's identity.
// The nil check keeps the untraced path to a single branch.
func (t *transfer) trace(slot int, typ string, kv ...any) {
	if t.cfg.Tracer == nil {
		return
	}
	ev := telemetry.Ev(typ, kv...)
	ev.Slot, ev.Req, ev.Code = slot, t.reqIdx, t.codeIdx
	t.cfg.Tracer.Emit(ev)
}

func newTransfer(net *network.Network, sched routing.Schedule, cfg Config, code *surfacecode.Code, req network.Request, cr routing.CodeRoute, src *rng.Source) *transfer {
	nq := code.NumData()
	t := &transfer{
		net:      net,
		cfg:      cfg,
		code:     code,
		design:   sched.Design,
		src:      src,
		req:      req,
		params:   sched.Params,
		distance: cr.Distance,
		errProb:  make([]float64, nq),
		erased:   make([]bool, nq),
		isCore:   code.CoreMask(),
		ins:      newInstruments(cfg.Metrics),
	}
	if p := cfg.faultProfile(); p != nil {
		t.inj = p.Build(net)
	}
	t.support.path = append([]int(nil), cr.SupportPath...)
	t.support.nodes = nodeSeq(net, req.Src, t.support.path)
	if sched.Design == routing.SurfNet {
		corePath := cr.CorePath
		if len(corePath) == 0 {
			corePath = cr.SupportPath
		}
		t.core.path = append([]int(nil), corePath...)
		t.core.nodes = nodeSeq(net, req.Src, t.core.path)
	}
	t.stopNodes = append(append([]int(nil), cr.Servers...), req.Dst)
	return t
}

// nodeSeq expands a fiber path from src into its node sequence.
func nodeSeq(net *network.Network, src int, fibers []int) []int {
	nodes := []int{src}
	v := src
	for _, fi := range fibers {
		v = net.Other(fi, v)
		nodes = append(nodes, v)
	}
	return nodes
}

// run drives the transfer to completion or timeout, one step per slot. It
// owns the span hierarchy: the transfer span brackets the whole attempt, an
// epoch span brackets each route generation (rotated by replan), and every
// slot gets its own span so latency decomposes causally in the trace.
func (t *transfer) run() (Outcome, error) {
	t.spans = telemetry.NewSpanSetWall(t.cfg.Tracer, t.reqIdx, t.codeIdx, t.cfg.Wall)
	t.transferSpan = t.spans.Start("transfer", 0, 0)
	t.epochSpan = t.spans.Start("epoch", t.transferSpan, 0)
	for slot := 0; slot < t.cfg.MaxSlots; slot++ {
		// Faults and re-planning run before the slot span opens, so a
		// re-plan rotates the epoch first and the slot attaches to the
		// epoch it actually executes in.
		t.stepFaults(slot)
		t.maybeReplan(slot)
		slotSpan := t.spans.Start("slot", t.epochSpan, slot)
		done, err := t.step(slot, slotSpan)
		t.spans.End(slotSpan, slot+1)
		if err != nil {
			t.endSpans(slot + 1)
			return t.out, err
		}
		if done {
			t.endSpans(slot + 1)
			return t.out, nil
		}
	}
	t.ins.timeouts.Inc()
	t.trace(t.cfg.MaxSlots, "core.timeout",
		"stop", t.nextStop, "stops", len(t.stopNodes))
	t.endSpans(t.cfg.MaxSlots)
	return t.out, nil // timed out: not delivered
}

// endSpans closes the current epoch and the transfer span with the outcome
// summary, so a trace reader can decompose the final latency without
// re-deriving it from slot events.
func (t *transfer) endSpans(slot int) {
	t.spans.End(t.epochSpan, slot)
	t.spans.End(t.transferSpan, slot,
		"delivered", t.out.Delivered, "success", t.out.Success,
		"corrections", t.out.Corrections, "recoveries", t.out.Recoveries,
		"replans", t.out.Replans)
}

// step advances the transfer by one slot; done reports delivery. slotSpan is
// the slot's span, the parent of any decode performed this slot.
func (t *transfer) step(slot, slotSpan int) (done bool, err error) {
	stop := t.stopNodes[t.nextStop]
	supStop := t.support.stopIdx(stop)
	if t.support.pos < supStop {
		t.advanceSupport(slot, supStop)
		supStop = t.support.stopIdx(stop) // recovery may reroute
	}
	coreArrived := true
	if t.design == routing.SurfNet {
		coreStop := t.core.stopIdx(stop)
		if t.core.pos < coreStop {
			t.advanceCore(slot, coreStop)
			coreStop = t.core.stopIdx(stop)
		}
		coreArrived = t.core.pos >= coreStop
	}
	if t.support.pos != supStop || !coreArrived {
		return false, nil
	}
	atDst := t.nextStop == len(t.stopNodes)-1
	if !atDst && t.nodeDown(stop) {
		// The scheduled server is out of service: skip this correction and
		// let the accumulated error ride to the next decode opportunity
		// (ultimately the destination).
		t.out.SkippedCorrections++
		t.ins.correctionSkips.Inc()
		t.trace(slot, "core.correction_skip", "node", stop, "stop", t.nextStop)
		t.nextStop++
		return false, nil // passing through still costs the slot
	}
	if t.cfg.WaitForComplete && t.anyErased() {
		t.retransmit(supStop)
		t.out.Retransmissions++
		t.ins.retransmissions.Inc()
		return false, nil // retransmission wave costs this slot
	}
	decodeSpan := t.spans.Start("decode", slotSpan, slot)
	ok, err := t.decode(slot)
	if err != nil {
		t.spans.End(decodeSpan, slot)
		return false, err
	}
	t.spans.End(decodeSpan, slot, "failed", !ok)
	if !ok {
		t.failedOnce = true
	}
	if atDst {
		t.out.Delivered = true
		t.out.Latency = slot + 1 // decode completes this slot
		t.out.Success = !t.failedOnce
		t.ins.delivered.Inc()
		t.ins.latency.Observe(float64(t.out.Latency))
		t.trace(slot, "core.deliver",
			"latency", t.out.Latency, "success", t.out.Success,
			"corrections", t.out.Corrections, "recoveries", t.out.Recoveries)
		return true, nil
	}
	t.out.Corrections++
	t.nextStop++
	return false, nil
}

// remainingFibers visits every fiber still ahead of either part.
func (t *transfer) remainingFibers(visit func(fi int)) {
	seen := map[int]bool{}
	for i := t.support.pos; i < len(t.support.path); i++ {
		fi := t.support.path[i]
		if !seen[fi] {
			seen[fi] = true
			visit(fi)
		}
	}
	if t.design == routing.SurfNet {
		for i := t.core.pos; i < len(t.core.path); i++ {
			fi := t.core.path[i]
			if !seen[fi] {
				seen[fi] = true
				visit(fi)
			}
		}
	}
}

// upcomingServers visits the error-correction servers still ahead. The
// destination is excluded: it always decodes.
func (t *transfer) upcomingServers(visit func(v int)) {
	for i := t.nextStop; i < len(t.stopNodes)-1; i++ {
		visit(t.stopNodes[i])
	}
}

// stepFaults advances the fault injector over the transfer's remaining scope.
// The enumeration callbacks fix the order randomness is consumed in, keeping
// fault-injected runs byte-identical across worker counts.
func (t *transfer) stepFaults(slot int) {
	if t.inj == nil {
		return
	}
	if t.emitFault == nil {
		t.emitFault = faultEmitter(t.ins, t.cfg.Tracer, t.reqIdx, t.codeIdx)
	}
	t.inj.Step(faults.Scope{
		Slot:   slot,
		Src:    t.src,
		Fibers: t.remainingFibers,
		Nodes:  t.upcomingServers,
	}, t.emitFault)
}

// fiberDown reports whether fiber fi is down at the last stepped slot.
func (t *transfer) fiberDown(fi int) bool {
	return t.inj != nil && t.inj.FiberDown(fi)
}

// nodeDown reports whether node v is out of service.
func (t *transfer) nodeDown(v int) bool {
	return t.inj != nil && t.inj.NodeDown(v)
}

// fiberFidelity returns fiber fi's effective gamma, degraded by any active
// drift episode. Without drift the nominal value passes through unchanged.
func (t *transfer) fiberFidelity(fi int) float64 {
	g := t.net.Fiber(fi).Fidelity
	if t.inj != nil {
		g = t.inj.Gamma(fi, g)
	}
	return g
}

// advanceSupport moves the Support part (or the whole code for Raw) one hop
// through the plain channel, applying photon loss and fiber noise. Blocked
// hops attempt a local recovery path.
func (t *transfer) advanceSupport(slot, stop int) {
	fi := t.support.path[t.support.pos]
	if t.fiberDown(fi) {
		t.tryRecovery(&t.support, slot, stop)
		return
	}
	f := t.net.Fiber(fi)
	gamma := t.fiberFidelity(fi)
	lost := 0
	for q := range t.errProb {
		if t.design == routing.SurfNet && t.isCore[q] {
			continue // core travels the entanglement channel
		}
		if t.erased[q] {
			continue
		}
		if t.src.Bool(f.LossProb) {
			t.erased[q] = true
			lost++
			continue
		}
		flip := t.cfg.ChannelErrorScale * (1 - gamma)
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	if lost > 0 {
		t.ins.photonLoss.Add(int64(lost))
		t.trace(slot, "core.photon_loss", "fiber", fi, "lost", lost)
	}
	t.support.pos++
	t.support.failStreak, t.support.nextAttempt = 0, 0
}

// advanceCore attempts an opportunistic segment move (§V-B): the Core part
// advances as soon as entanglement is established across at least MinSegment
// consecutive fibers ahead (or the full remaining distance to the stop).
// A downed next fiber triggers a local recovery reroute.
func (t *transfer) advanceCore(slot, stop int) {
	if t.fiberDown(t.core.path[t.core.pos]) {
		t.tryRecovery(&t.core, slot, stop)
		return
	}
	dist := stop - t.core.pos
	prefix := 0
	for i := t.core.pos; i < stop; i++ {
		fi := t.core.path[i]
		if t.fiberDown(fi) || !t.src.Bool(t.net.Fiber(fi).EntRate) {
			break
		}
		prefix++
	}
	need := t.cfg.MinSegment
	if dist < need {
		need = dist
	}
	if prefix < need {
		t.ins.coreStalls.Inc() // waiting for entanglement this slot
		return
	}
	// Teleport across the established segment: purified pair fidelities
	// (one purification round per fiber on the entanglement-based channel,
	// §IV-C) fused by one swap per segment-internal node.
	segFid := 1.0
	for i := 0; i < prefix; i++ {
		g := t.fiberFidelity(t.core.path[t.core.pos+i])
		segFid *= quantum.Purify(g, g)
	}
	swapEff := t.cfg.SwapEfficiency
	if swapEff == 0 {
		swapEff = 0.9
	}
	for k := 1; k < prefix; k++ {
		segFid *= swapEff
	}
	flip := t.cfg.ChannelErrorScale * (1 - segFid)
	for q := range t.errProb {
		if !t.isCore[q] {
			continue
		}
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	t.ins.teleports.Inc()
	t.ins.teleportHops.Add(int64(prefix))
	t.trace(slot, "core.teleport",
		"from", t.core.nodes[t.core.pos], "to", t.core.nodes[t.core.pos+prefix],
		"hops", prefix)
	t.core.pos += prefix
	t.core.failStreak, t.core.nextAttempt = 0, 0
}

// retransmit re-sends lost Support qubits across the current segment (the
// WaitForComplete mode): each erased qubit is re-delivered with fresh segment
// noise, possibly being lost again.
func (t *transfer) retransmit(stop int) {
	segStart := t.segmentStart(stop)
	for q := range t.erased {
		if !t.erased[q] {
			continue
		}
		t.erased[q] = false
		t.errProb[q] = 0
		for i := segStart; i < stop; i++ {
			fi := t.support.path[i]
			f := t.net.Fiber(fi)
			if t.src.Bool(f.LossProb) {
				t.erased[q] = true
				break
			}
			flip := t.cfg.ChannelErrorScale * (1 - t.fiberFidelity(fi))
			t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
		}
	}
}

// segmentStart returns the Support node index where the current segment began
// (the previous stop, or the source).
func (t *transfer) segmentStart(stop int) int {
	if t.nextStop == 0 {
		return 0
	}
	prev := t.stopNodes[t.nextStop-1]
	for i := stop; i >= 0; i-- {
		if t.support.nodes[i] == prev {
			return i
		}
	}
	return 0
}

// tryRecovery splices a local recovery path around down fibers for one part,
// from its blocked position to the next stop (§V-B: "a node can locally
// replace a failed route with a recovery path leading to the next designated
// node"). The parts recover independently — their routes need not coincide.
// Under RecoveryBackoff the search is rate-limited: each consecutive failure
// doubles the wait before the next attempt, so a partitioned code stops
// re-running Dijkstra every slot.
func (t *transfer) tryRecovery(part *partState, slot, stop int) {
	if t.cfg.DisableRecovery {
		return
	}
	if slot < part.nextAttempt {
		t.ins.backoffSkips.Inc()
		return
	}
	partName := "support"
	if part == &t.core {
		partName = "core"
	}
	from := part.nodes[part.pos]
	target := part.nodes[stop]
	g := graph.NewWeighted(t.net.NumNodes())
	for fi := 0; fi < t.net.NumFibers(); fi++ {
		if t.fiberDown(fi) {
			continue
		}
		f := t.net.Fiber(fi)
		okNode := func(v int) bool {
			if v == from || v == target {
				return true
			}
			return t.net.Node(v).Role != network.User && !t.nodeDown(v)
		}
		if !okNode(f.A) || !okNode(f.B) {
			continue
		}
		g.AddEdge(graph.Edge{ID: fi, U: f.A, V: f.B, Weight: f.Noise()})
	}
	sp := g.Dijkstra(from)
	alt := sp.PathTo(g, target)
	if alt == nil {
		t.ins.recoveryFails.Inc()
		t.noteRecoveryFailure(part, slot)
		return
	}
	altFibers := make([]int, len(alt))
	for i, ei := range alt {
		altFibers[i] = g.Edge(ei).ID
	}
	// Splice: keep the travelled prefix, replace the current segment.
	newPath := append(append([]int(nil), part.path[:part.pos]...), altFibers...)
	newPath = append(newPath, part.path[stop:]...)
	part.path = newPath
	part.nodes = nodeSeq(t.net, part.nodes[0], part.path)
	part.failStreak, part.nextAttempt = 0, 0
	t.out.Recoveries++
	t.ins.recoveries.Inc()
	t.trace(slot, "core.recovery",
		"part", partName, "from", from, "to", target, "detour", len(altFibers))
}

// noteRecoveryFailure advances the part's failure streak and, under
// RecoveryBackoff, schedules the next attempt exponentially later (capped at
// RecoveryBackoffMax).
func (t *transfer) noteRecoveryFailure(part *partState, slot int) {
	part.failStreak++
	if t.cfg.RecoveryBackoff <= 0 {
		return // legacy policy: retry every blocked slot
	}
	wait := t.cfg.RecoveryBackoff
	maxWait := t.cfg.backoffMax()
	for i := 1; i < part.failStreak && wait < maxWait; i++ {
		wait *= 2
	}
	if wait > maxWait {
		wait = maxWait
	}
	part.nextAttempt = slot + wait
}

// maybeReplan re-solves the request's routing over the surviving topology
// once either part has accumulated ReplanAfterFails consecutive failed
// recovery attempts — the end-to-end fallback when local repair keeps
// failing. Attempts are rate-limited to one per ReplanEpoch slots.
func (t *transfer) maybeReplan(slot int) {
	if t.cfg.ReplanAfterFails <= 0 || slot < t.nextReplan {
		return
	}
	streak := t.support.failStreak
	if t.core.failStreak > streak {
		streak = t.core.failStreak
	}
	if streak < t.cfg.ReplanAfterFails {
		return
	}
	t.nextReplan = slot + t.cfg.replanEpoch()
	t.replan(slot)
}

// replan runs the offline scheduler (LP relaxation, falling back to the
// greedy heuristic) for this one request over the surviving topology and, on
// success, restarts the transfer from the source on the fresh route. The
// restart models end-to-end retransmission: the source re-encodes the
// message, so the channel state and failure history reset.
func (t *transfer) replan(slot int) {
	surv := t.survivingNetwork()
	p := t.params
	if t.distance > 0 {
		// Pin the adaptive distance: the code is already built.
		p.AdaptiveDistances = []int{t.distance}
	}
	req := t.req
	req.Messages = 1 // re-admit just this communication
	var sched routing.Schedule
	var err error
	if surv == nil {
		err = fmt.Errorf("core: surviving topology unusable")
	} else {
		sched, err = routing.ScheduleLP(surv, []network.Request{req}, p)
		if err != nil || len(sched.Requests) == 0 || len(sched.Requests[0].Codes) == 0 {
			sched, err = routing.Greedy(surv, []network.Request{req}, p, nil, nil)
		}
	}
	if err != nil || len(sched.Requests) == 0 || len(sched.Requests[0].Codes) == 0 {
		t.ins.replanFails.Inc()
		t.trace(slot, "core.replan_failure",
			"support_streak", t.support.failStreak, "core_streak", t.core.failStreak)
		return
	}
	t.setRoute(sched.Requests[0].Codes[0])
	t.out.Replans++
	t.ins.replans.Inc()
	// A successful re-plan starts a new route generation: rotate the epoch
	// span so subsequent slots attach to the fresh epoch.
	t.spans.End(t.epochSpan, slot, "replanned", true)
	t.epochSpan = t.spans.Start("epoch", t.transferSpan, slot)
	t.trace(slot, "core.replan",
		"hops", len(t.support.path), "stops", len(t.stopNodes))
}

// survivingNetwork copies the network with the current outages applied: down
// fibers keep their endpoints (IDs stay dense, the graph stays connected) but
// lose all scheduling value, and down nodes lose their storage capacity.
func (t *transfer) survivingNetwork() *network.Network {
	nodes := make([]network.Node, t.net.NumNodes())
	for v := range nodes {
		nd := t.net.Node(v)
		if t.nodeDown(v) {
			nd.Capacity = 0
		}
		nodes[v] = nd
	}
	fibers := make([]network.Fiber, t.net.NumFibers())
	for fi := range fibers {
		f := t.net.Fiber(fi)
		if t.fiberDown(fi) || t.nodeDown(f.A) || t.nodeDown(f.B) {
			f.EntPairs, f.EntRate, f.LossProb, f.Fidelity = 0, 0, 1, 0.5
		}
		fibers[fi] = f
	}
	surv, err := network.New(nodes, fibers)
	if err != nil {
		return nil
	}
	return surv
}

// setRoute restarts the transfer from the source on a fresh route: fresh
// encode, clean channel state, stop list rebuilt from the new schedule.
func (t *transfer) setRoute(cr routing.CodeRoute) {
	t.support = partState{path: append([]int(nil), cr.SupportPath...)}
	t.support.nodes = nodeSeq(t.net, t.req.Src, t.support.path)
	if t.design == routing.SurfNet {
		corePath := cr.CorePath
		if len(corePath) == 0 {
			corePath = cr.SupportPath
		}
		t.core = partState{path: append([]int(nil), corePath...)}
		t.core.nodes = nodeSeq(t.net, t.req.Src, t.core.path)
	} else {
		t.core = partState{}
	}
	t.stopNodes = append(append([]int(nil), cr.Servers...), t.req.Dst)
	t.nextStop = 0
	for q := range t.errProb {
		t.errProb[q] = 0
		t.erased[q] = false
	}
	t.failedOnce = false
}

// anyErased reports whether any Support qubit is currently missing.
func (t *transfer) anyErased() bool {
	for _, e := range t.erased {
		if e {
			return true
		}
	}
	return false
}

// decode samples the accumulated channel error and runs the configured
// decoder over both graphs, then resets the channel state (a corrected code
// is fresh). It reports whether the code survived without a logical error.
func (t *transfer) decode(slot int) (bool, error) {
	code := t.code
	frame := quantum.NewFrame(code.NumData())
	mixed := [4]quantum.Pauli{quantum.I, quantum.X, quantum.Y, quantum.Z}
	probs := make([]float64, code.NumData())
	nErased := 0
	for q := range frame {
		if t.erased[q] {
			frame[q] = mixed[t.src.IntN(4)]
			nErased++
			continue
		}
		// Independent X/Z flips at the accumulated channel error rate.
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.X)
		}
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.Z)
		}
		probs[q] = t.errProb[q]
	}
	res, stats, err := decoder.DecodeFrameMetered(code, t.cfg.Decoder, frame, t.erased, probs, t.cfg.Metrics)
	if err != nil {
		return false, fmt.Errorf("core: decoding at stop %d: %w", t.nextStop, err)
	}
	t.ins.decodes.Inc()
	t.ins.erasedAtDecode.Observe(float64(nErased))
	if res.Failed() {
		t.ins.decodeFailures.Inc()
	}
	t.trace(slot, "core.decode",
		"node", t.stopNodes[t.nextStop], "stop", t.nextStop,
		"erased", nErased, "syndrome_weight", stats.SyndromeWeight,
		"correction_weight", stats.CorrectionWeight, "failed", res.Failed())
	for q := range t.errProb {
		t.errProb[q] = 0
		t.erased[q] = false
	}
	return !res.Failed(), nil
}
