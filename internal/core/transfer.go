package core

import (
	"fmt"

	"surfnet/internal/decoder"
	"surfnet/internal/graph"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/surfacecode"
)

// partState tracks one part of a surface code (Core or Support) travelling
// its own route. The two parts share stop nodes (error-correction servers and
// the destination) but, as Fig. 4 illustrates, their routes may diverge —
// in particular after a local recovery reroute.
type partState struct {
	path  []int // fiber ids, source to destination
	nodes []int // node ids, len(path)+1
	pos   int   // completed hops (index into nodes)
}

// stopIdx returns the node-path index of the given stop node, at or after
// the current position.
func (ps *partState) stopIdx(stop int) int {
	for i := ps.pos; i < len(ps.nodes); i++ {
		if ps.nodes[i] == stop {
			return i
		}
	}
	return len(ps.nodes) - 1
}

// transfer is the slot-level state machine moving one surface code through
// the network under the SurfNet or Raw design (§V-B one-way communication).
type transfer struct {
	net    *network.Network
	cfg    Config
	code   *surfacecode.Code
	design routing.Design
	src    *rng.Source

	support   partState
	core      partState // unused for Raw
	stopNodes []int     // EC servers in path order, then the destination
	nextStop  int       // index into stopNodes

	// Per-data-qubit channel state.
	errProb []float64
	erased  []bool
	isCore  []bool

	downUntil  map[int]int // fiber id -> slot when repaired
	failedOnce bool        // logical error at any correction so far
	out        Outcome
}

func newTransfer(net *network.Network, sched routing.Schedule, cfg Config, code *surfacecode.Code, req network.Request, cr routing.CodeRoute, src *rng.Source) *transfer {
	nq := code.NumData()
	t := &transfer{
		net:       net,
		cfg:       cfg,
		code:      code,
		design:    sched.Design,
		src:       src,
		errProb:   make([]float64, nq),
		erased:    make([]bool, nq),
		isCore:    code.CoreMask(),
		downUntil: make(map[int]int),
	}
	t.support.path = append([]int(nil), cr.SupportPath...)
	t.support.nodes = nodeSeq(net, req.Src, t.support.path)
	if sched.Design == routing.SurfNet {
		corePath := cr.CorePath
		if len(corePath) == 0 {
			corePath = cr.SupportPath
		}
		t.core.path = append([]int(nil), corePath...)
		t.core.nodes = nodeSeq(net, req.Src, t.core.path)
	}
	t.stopNodes = append(append([]int(nil), cr.Servers...), req.Dst)
	return t
}

// nodeSeq expands a fiber path from src into its node sequence.
func nodeSeq(net *network.Network, src int, fibers []int) []int {
	nodes := []int{src}
	v := src
	for _, fi := range fibers {
		v = net.Other(fi, v)
		nodes = append(nodes, v)
	}
	return nodes
}

// run drives the transfer to completion or timeout.
func (t *transfer) run() (Outcome, error) {
	for slot := 0; slot < t.cfg.MaxSlots; slot++ {
		t.sampleOutages(slot)
		stop := t.stopNodes[t.nextStop]
		supStop := t.support.stopIdx(stop)
		if t.support.pos < supStop {
			t.advanceSupport(slot, supStop)
			supStop = t.support.stopIdx(stop) // recovery may reroute
		}
		coreArrived := true
		if t.design == routing.SurfNet {
			coreStop := t.core.stopIdx(stop)
			if t.core.pos < coreStop {
				t.advanceCore(slot, coreStop)
				coreStop = t.core.stopIdx(stop)
			}
			coreArrived = t.core.pos >= coreStop
		}
		if t.support.pos == supStop && coreArrived {
			if t.cfg.WaitForComplete && t.anyErased() {
				t.retransmit(supStop)
				t.out.Retransmissions++
				continue // retransmission wave costs this slot
			}
			atDst := t.nextStop == len(t.stopNodes)-1
			ok, err := t.decode()
			if err != nil {
				return t.out, err
			}
			if !ok {
				t.failedOnce = true
			}
			if atDst {
				t.out.Delivered = true
				t.out.Latency = slot + 1 // decode completes this slot
				t.out.Success = !t.failedOnce
				return t.out, nil
			}
			t.out.Corrections++
			t.nextStop++
		}
	}
	return t.out, nil // timed out: not delivered
}

// remainingFibers visits every fiber still ahead of either part.
func (t *transfer) remainingFibers(visit func(fi int)) {
	seen := map[int]bool{}
	for i := t.support.pos; i < len(t.support.path); i++ {
		fi := t.support.path[i]
		if !seen[fi] {
			seen[fi] = true
			visit(fi)
		}
	}
	if t.design == routing.SurfNet {
		for i := t.core.pos; i < len(t.core.path); i++ {
			fi := t.core.path[i]
			if !seen[fi] {
				seen[fi] = true
				visit(fi)
			}
		}
	}
}

// sampleOutages crashes fibers on the remaining routes with FiberFailProb.
func (t *transfer) sampleOutages(slot int) {
	if t.cfg.FiberFailProb == 0 {
		return
	}
	t.remainingFibers(func(fi int) {
		if until, down := t.downUntil[fi]; down && slot < until {
			return
		}
		if t.src.Bool(t.cfg.FiberFailProb) {
			t.downUntil[fi] = slot + t.cfg.RepairSlots
		}
	})
}

// fiberDown reports whether fiber fi is down at slot.
func (t *transfer) fiberDown(fi, slot int) bool {
	until, down := t.downUntil[fi]
	return down && slot < until
}

// advanceSupport moves the Support part (or the whole code for Raw) one hop
// through the plain channel, applying photon loss and fiber noise. Blocked
// hops attempt a local recovery path.
func (t *transfer) advanceSupport(slot, stop int) {
	fi := t.support.path[t.support.pos]
	if t.fiberDown(fi, slot) {
		t.tryRecovery(&t.support, slot, stop)
		return
	}
	f := t.net.Fiber(fi)
	for q := range t.errProb {
		if t.design == routing.SurfNet && t.isCore[q] {
			continue // core travels the entanglement channel
		}
		if t.erased[q] {
			continue
		}
		if t.src.Bool(f.LossProb) {
			t.erased[q] = true
			continue
		}
		flip := t.cfg.ChannelErrorScale * (1 - f.Fidelity)
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	t.support.pos++
}

// advanceCore attempts an opportunistic segment move (§V-B): the Core part
// advances as soon as entanglement is established across at least MinSegment
// consecutive fibers ahead (or the full remaining distance to the stop).
// A downed next fiber triggers a local recovery reroute.
func (t *transfer) advanceCore(slot, stop int) {
	if t.fiberDown(t.core.path[t.core.pos], slot) {
		t.tryRecovery(&t.core, slot, stop)
		return
	}
	dist := stop - t.core.pos
	prefix := 0
	for i := t.core.pos; i < stop; i++ {
		fi := t.core.path[i]
		if t.fiberDown(fi, slot) || !t.src.Bool(t.net.Fiber(fi).EntRate) {
			break
		}
		prefix++
	}
	need := t.cfg.MinSegment
	if dist < need {
		need = dist
	}
	if prefix < need {
		return
	}
	// Teleport across the established segment: purified pair fidelities
	// (one purification round per fiber on the entanglement-based channel,
	// §IV-C) fused by one swap per segment-internal node.
	segFid := 1.0
	for i := 0; i < prefix; i++ {
		f := t.net.Fiber(t.core.path[t.core.pos+i])
		segFid *= quantum.Purify(f.Fidelity, f.Fidelity)
	}
	swapEff := t.cfg.SwapEfficiency
	if swapEff == 0 {
		swapEff = 0.9
	}
	for k := 1; k < prefix; k++ {
		segFid *= swapEff
	}
	flip := t.cfg.ChannelErrorScale * (1 - segFid)
	for q := range t.errProb {
		if !t.isCore[q] {
			continue
		}
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	t.core.pos += prefix
}

// retransmit re-sends lost Support qubits across the current segment (the
// WaitForComplete mode): each erased qubit is re-delivered with fresh segment
// noise, possibly being lost again.
func (t *transfer) retransmit(stop int) {
	segStart := t.segmentStart(stop)
	for q := range t.erased {
		if !t.erased[q] {
			continue
		}
		t.erased[q] = false
		t.errProb[q] = 0
		for i := segStart; i < stop; i++ {
			f := t.net.Fiber(t.support.path[i])
			if t.src.Bool(f.LossProb) {
				t.erased[q] = true
				break
			}
			flip := t.cfg.ChannelErrorScale * (1 - f.Fidelity)
			t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
		}
	}
}

// segmentStart returns the Support node index where the current segment began
// (the previous stop, or the source).
func (t *transfer) segmentStart(stop int) int {
	if t.nextStop == 0 {
		return 0
	}
	prev := t.stopNodes[t.nextStop-1]
	for i := stop; i >= 0; i-- {
		if t.support.nodes[i] == prev {
			return i
		}
	}
	return 0
}

// tryRecovery splices a local recovery path around down fibers for one part,
// from its blocked position to the next stop (§V-B: "a node can locally
// replace a failed route with a recovery path leading to the next designated
// node"). The parts recover independently — their routes need not coincide.
func (t *transfer) tryRecovery(part *partState, slot, stop int) {
	if t.cfg.DisableRecovery {
		return
	}
	from := part.nodes[part.pos]
	target := part.nodes[stop]
	g := graph.NewWeighted(t.net.NumNodes())
	for fi := 0; fi < t.net.NumFibers(); fi++ {
		if t.fiberDown(fi, slot) {
			continue
		}
		f := t.net.Fiber(fi)
		okNode := func(v int) bool {
			return v == from || v == target || t.net.Node(v).Role != network.User
		}
		if !okNode(f.A) || !okNode(f.B) {
			continue
		}
		g.AddEdge(graph.Edge{ID: fi, U: f.A, V: f.B, Weight: f.Noise()})
	}
	sp := g.Dijkstra(from)
	alt := sp.PathTo(g, target)
	if alt == nil {
		return
	}
	altFibers := make([]int, len(alt))
	for i, ei := range alt {
		altFibers[i] = g.Edge(ei).ID
	}
	// Splice: keep the travelled prefix, replace the current segment.
	newPath := append(append([]int(nil), part.path[:part.pos]...), altFibers...)
	newPath = append(newPath, part.path[stop:]...)
	part.path = newPath
	part.nodes = nodeSeq(t.net, part.nodes[0], part.path)
	t.out.Recoveries++
}

// anyErased reports whether any Support qubit is currently missing.
func (t *transfer) anyErased() bool {
	for _, e := range t.erased {
		if e {
			return true
		}
	}
	return false
}

// decode samples the accumulated channel error and runs the configured
// decoder over both graphs, then resets the channel state (a corrected code
// is fresh). It reports whether the code survived without a logical error.
func (t *transfer) decode() (bool, error) {
	code := t.code
	frame := quantum.NewFrame(code.NumData())
	mixed := [4]quantum.Pauli{quantum.I, quantum.X, quantum.Y, quantum.Z}
	probs := make([]float64, code.NumData())
	for q := range frame {
		if t.erased[q] {
			frame[q] = mixed[t.src.IntN(4)]
			continue
		}
		// Independent X/Z flips at the accumulated channel error rate.
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.X)
		}
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.Z)
		}
		probs[q] = t.errProb[q]
	}
	res, err := decoder.DecodeFrame(code, t.cfg.Decoder, frame, t.erased, probs)
	if err != nil {
		return false, fmt.Errorf("core: decoding at stop %d: %w", t.nextStop, err)
	}
	for q := range t.errProb {
		t.errProb[q] = 0
		t.erased[q] = false
	}
	return !res.Failed(), nil
}
