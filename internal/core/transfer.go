package core

import (
	"fmt"

	"surfnet/internal/decoder"
	"surfnet/internal/graph"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// partState tracks one part of a surface code (Core or Support) travelling
// its own route. The two parts share stop nodes (error-correction servers and
// the destination) but, as Fig. 4 illustrates, their routes may diverge —
// in particular after a local recovery reroute.
type partState struct {
	path  []int // fiber ids, source to destination
	nodes []int // node ids, len(path)+1
	pos   int   // completed hops (index into nodes)
}

// stopIdx returns the node-path index of the given stop node, at or after
// the current position.
func (ps *partState) stopIdx(stop int) int {
	for i := ps.pos; i < len(ps.nodes); i++ {
		if ps.nodes[i] == stop {
			return i
		}
	}
	return len(ps.nodes) - 1
}

// transfer is the slot-level state machine moving one surface code through
// the network under the SurfNet or Raw design (§V-B one-way communication).
type transfer struct {
	net    *network.Network
	cfg    Config
	code   *surfacecode.Code
	design routing.Design
	src    *rng.Source

	support   partState
	core      partState // unused for Raw
	stopNodes []int     // EC servers in path order, then the destination
	nextStop  int       // index into stopNodes

	// Per-data-qubit channel state.
	errProb []float64
	erased  []bool
	isCore  []bool

	downUntil  map[int]int // fiber id -> slot when repaired
	failedOnce bool        // logical error at any correction so far
	out        Outcome

	ins     instruments
	reqIdx  int // request index, tagged onto telemetry
	codeIdx int // code index within the request
}

// trace emits a slot-scoped event tagged with the communication's identity.
// The nil check keeps the untraced path to a single branch.
func (t *transfer) trace(slot int, typ string, kv ...any) {
	if t.cfg.Tracer == nil {
		return
	}
	ev := telemetry.Ev(typ, kv...)
	ev.Slot, ev.Req, ev.Code = slot, t.reqIdx, t.codeIdx
	t.cfg.Tracer.Emit(ev)
}

func newTransfer(net *network.Network, sched routing.Schedule, cfg Config, code *surfacecode.Code, req network.Request, cr routing.CodeRoute, src *rng.Source) *transfer {
	nq := code.NumData()
	t := &transfer{
		net:       net,
		cfg:       cfg,
		code:      code,
		design:    sched.Design,
		src:       src,
		errProb:   make([]float64, nq),
		erased:    make([]bool, nq),
		isCore:    code.CoreMask(),
		downUntil: make(map[int]int),
		ins:       newInstruments(cfg.Metrics),
	}
	t.support.path = append([]int(nil), cr.SupportPath...)
	t.support.nodes = nodeSeq(net, req.Src, t.support.path)
	if sched.Design == routing.SurfNet {
		corePath := cr.CorePath
		if len(corePath) == 0 {
			corePath = cr.SupportPath
		}
		t.core.path = append([]int(nil), corePath...)
		t.core.nodes = nodeSeq(net, req.Src, t.core.path)
	}
	t.stopNodes = append(append([]int(nil), cr.Servers...), req.Dst)
	return t
}

// nodeSeq expands a fiber path from src into its node sequence.
func nodeSeq(net *network.Network, src int, fibers []int) []int {
	nodes := []int{src}
	v := src
	for _, fi := range fibers {
		v = net.Other(fi, v)
		nodes = append(nodes, v)
	}
	return nodes
}

// run drives the transfer to completion or timeout.
func (t *transfer) run() (Outcome, error) {
	for slot := 0; slot < t.cfg.MaxSlots; slot++ {
		t.sampleOutages(slot)
		stop := t.stopNodes[t.nextStop]
		supStop := t.support.stopIdx(stop)
		if t.support.pos < supStop {
			t.advanceSupport(slot, supStop)
			supStop = t.support.stopIdx(stop) // recovery may reroute
		}
		coreArrived := true
		if t.design == routing.SurfNet {
			coreStop := t.core.stopIdx(stop)
			if t.core.pos < coreStop {
				t.advanceCore(slot, coreStop)
				coreStop = t.core.stopIdx(stop)
			}
			coreArrived = t.core.pos >= coreStop
		}
		if t.support.pos == supStop && coreArrived {
			if t.cfg.WaitForComplete && t.anyErased() {
				t.retransmit(supStop)
				t.out.Retransmissions++
				t.ins.retransmissions.Inc()
				continue // retransmission wave costs this slot
			}
			atDst := t.nextStop == len(t.stopNodes)-1
			ok, err := t.decode(slot)
			if err != nil {
				return t.out, err
			}
			if !ok {
				t.failedOnce = true
			}
			if atDst {
				t.out.Delivered = true
				t.out.Latency = slot + 1 // decode completes this slot
				t.out.Success = !t.failedOnce
				t.ins.delivered.Inc()
				t.ins.latency.Observe(float64(t.out.Latency))
				t.trace(slot, "core.deliver",
					"latency", t.out.Latency, "success", t.out.Success,
					"corrections", t.out.Corrections, "recoveries", t.out.Recoveries)
				return t.out, nil
			}
			t.out.Corrections++
			t.nextStop++
		}
	}
	t.ins.timeouts.Inc()
	t.trace(t.cfg.MaxSlots, "core.timeout",
		"stop", t.nextStop, "stops", len(t.stopNodes))
	return t.out, nil // timed out: not delivered
}

// remainingFibers visits every fiber still ahead of either part.
func (t *transfer) remainingFibers(visit func(fi int)) {
	seen := map[int]bool{}
	for i := t.support.pos; i < len(t.support.path); i++ {
		fi := t.support.path[i]
		if !seen[fi] {
			seen[fi] = true
			visit(fi)
		}
	}
	if t.design == routing.SurfNet {
		for i := t.core.pos; i < len(t.core.path); i++ {
			fi := t.core.path[i]
			if !seen[fi] {
				seen[fi] = true
				visit(fi)
			}
		}
	}
}

// sampleOutages crashes fibers on the remaining routes with FiberFailProb.
func (t *transfer) sampleOutages(slot int) {
	if t.cfg.FiberFailProb == 0 {
		return
	}
	t.remainingFibers(func(fi int) {
		if until, down := t.downUntil[fi]; down {
			if slot < until {
				return
			}
			delete(t.downUntil, fi)
			t.trace(slot, "core.fiber_repair", "fiber", fi)
		}
		if t.src.Bool(t.cfg.FiberFailProb) {
			t.downUntil[fi] = slot + t.cfg.RepairSlots
			t.ins.fiberCrashes.Inc()
			t.trace(slot, "core.fiber_crash", "fiber", fi, "until", slot+t.cfg.RepairSlots)
		}
	})
}

// fiberDown reports whether fiber fi is down at slot.
func (t *transfer) fiberDown(fi, slot int) bool {
	until, down := t.downUntil[fi]
	return down && slot < until
}

// advanceSupport moves the Support part (or the whole code for Raw) one hop
// through the plain channel, applying photon loss and fiber noise. Blocked
// hops attempt a local recovery path.
func (t *transfer) advanceSupport(slot, stop int) {
	fi := t.support.path[t.support.pos]
	if t.fiberDown(fi, slot) {
		t.tryRecovery(&t.support, slot, stop)
		return
	}
	f := t.net.Fiber(fi)
	lost := 0
	for q := range t.errProb {
		if t.design == routing.SurfNet && t.isCore[q] {
			continue // core travels the entanglement channel
		}
		if t.erased[q] {
			continue
		}
		if t.src.Bool(f.LossProb) {
			t.erased[q] = true
			lost++
			continue
		}
		flip := t.cfg.ChannelErrorScale * (1 - f.Fidelity)
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	if lost > 0 {
		t.ins.photonLoss.Add(int64(lost))
		t.trace(slot, "core.photon_loss", "fiber", fi, "lost", lost)
	}
	t.support.pos++
}

// advanceCore attempts an opportunistic segment move (§V-B): the Core part
// advances as soon as entanglement is established across at least MinSegment
// consecutive fibers ahead (or the full remaining distance to the stop).
// A downed next fiber triggers a local recovery reroute.
func (t *transfer) advanceCore(slot, stop int) {
	if t.fiberDown(t.core.path[t.core.pos], slot) {
		t.tryRecovery(&t.core, slot, stop)
		return
	}
	dist := stop - t.core.pos
	prefix := 0
	for i := t.core.pos; i < stop; i++ {
		fi := t.core.path[i]
		if t.fiberDown(fi, slot) || !t.src.Bool(t.net.Fiber(fi).EntRate) {
			break
		}
		prefix++
	}
	need := t.cfg.MinSegment
	if dist < need {
		need = dist
	}
	if prefix < need {
		t.ins.coreStalls.Inc() // waiting for entanglement this slot
		return
	}
	// Teleport across the established segment: purified pair fidelities
	// (one purification round per fiber on the entanglement-based channel,
	// §IV-C) fused by one swap per segment-internal node.
	segFid := 1.0
	for i := 0; i < prefix; i++ {
		f := t.net.Fiber(t.core.path[t.core.pos+i])
		segFid *= quantum.Purify(f.Fidelity, f.Fidelity)
	}
	swapEff := t.cfg.SwapEfficiency
	if swapEff == 0 {
		swapEff = 0.9
	}
	for k := 1; k < prefix; k++ {
		segFid *= swapEff
	}
	flip := t.cfg.ChannelErrorScale * (1 - segFid)
	for q := range t.errProb {
		if !t.isCore[q] {
			continue
		}
		t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
	}
	t.ins.teleports.Inc()
	t.ins.teleportHops.Add(int64(prefix))
	t.trace(slot, "core.teleport",
		"from", t.core.nodes[t.core.pos], "to", t.core.nodes[t.core.pos+prefix],
		"hops", prefix)
	t.core.pos += prefix
}

// retransmit re-sends lost Support qubits across the current segment (the
// WaitForComplete mode): each erased qubit is re-delivered with fresh segment
// noise, possibly being lost again.
func (t *transfer) retransmit(stop int) {
	segStart := t.segmentStart(stop)
	for q := range t.erased {
		if !t.erased[q] {
			continue
		}
		t.erased[q] = false
		t.errProb[q] = 0
		for i := segStart; i < stop; i++ {
			f := t.net.Fiber(t.support.path[i])
			if t.src.Bool(f.LossProb) {
				t.erased[q] = true
				break
			}
			flip := t.cfg.ChannelErrorScale * (1 - f.Fidelity)
			t.errProb[q] = 1 - (1-t.errProb[q])*(1-flip)
		}
	}
}

// segmentStart returns the Support node index where the current segment began
// (the previous stop, or the source).
func (t *transfer) segmentStart(stop int) int {
	if t.nextStop == 0 {
		return 0
	}
	prev := t.stopNodes[t.nextStop-1]
	for i := stop; i >= 0; i-- {
		if t.support.nodes[i] == prev {
			return i
		}
	}
	return 0
}

// tryRecovery splices a local recovery path around down fibers for one part,
// from its blocked position to the next stop (§V-B: "a node can locally
// replace a failed route with a recovery path leading to the next designated
// node"). The parts recover independently — their routes need not coincide.
func (t *transfer) tryRecovery(part *partState, slot, stop int) {
	if t.cfg.DisableRecovery {
		return
	}
	partName := "support"
	if part == &t.core {
		partName = "core"
	}
	from := part.nodes[part.pos]
	target := part.nodes[stop]
	g := graph.NewWeighted(t.net.NumNodes())
	for fi := 0; fi < t.net.NumFibers(); fi++ {
		if t.fiberDown(fi, slot) {
			continue
		}
		f := t.net.Fiber(fi)
		okNode := func(v int) bool {
			return v == from || v == target || t.net.Node(v).Role != network.User
		}
		if !okNode(f.A) || !okNode(f.B) {
			continue
		}
		g.AddEdge(graph.Edge{ID: fi, U: f.A, V: f.B, Weight: f.Noise()})
	}
	sp := g.Dijkstra(from)
	alt := sp.PathTo(g, target)
	if alt == nil {
		t.ins.recoveryFails.Inc()
		return
	}
	altFibers := make([]int, len(alt))
	for i, ei := range alt {
		altFibers[i] = g.Edge(ei).ID
	}
	// Splice: keep the travelled prefix, replace the current segment.
	newPath := append(append([]int(nil), part.path[:part.pos]...), altFibers...)
	newPath = append(newPath, part.path[stop:]...)
	part.path = newPath
	part.nodes = nodeSeq(t.net, part.nodes[0], part.path)
	t.out.Recoveries++
	t.ins.recoveries.Inc()
	t.trace(slot, "core.recovery",
		"part", partName, "from", from, "to", target, "detour", len(altFibers))
}

// anyErased reports whether any Support qubit is currently missing.
func (t *transfer) anyErased() bool {
	for _, e := range t.erased {
		if e {
			return true
		}
	}
	return false
}

// decode samples the accumulated channel error and runs the configured
// decoder over both graphs, then resets the channel state (a corrected code
// is fresh). It reports whether the code survived without a logical error.
func (t *transfer) decode(slot int) (bool, error) {
	code := t.code
	frame := quantum.NewFrame(code.NumData())
	mixed := [4]quantum.Pauli{quantum.I, quantum.X, quantum.Y, quantum.Z}
	probs := make([]float64, code.NumData())
	nErased := 0
	for q := range frame {
		if t.erased[q] {
			frame[q] = mixed[t.src.IntN(4)]
			nErased++
			continue
		}
		// Independent X/Z flips at the accumulated channel error rate.
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.X)
		}
		if t.src.Bool(t.errProb[q]) {
			frame[q] = frame[q].Mul(quantum.Z)
		}
		probs[q] = t.errProb[q]
	}
	res, stats, err := decoder.DecodeFrameMetered(code, t.cfg.Decoder, frame, t.erased, probs, t.cfg.Metrics)
	if err != nil {
		return false, fmt.Errorf("core: decoding at stop %d: %w", t.nextStop, err)
	}
	t.ins.decodes.Inc()
	t.ins.erasedAtDecode.Observe(float64(nErased))
	if res.Failed() {
		t.ins.decodeFailures.Inc()
	}
	t.trace(slot, "core.decode",
		"node", t.stopNodes[t.nextStop], "stop", t.nextStop,
		"erased", nErased, "syndrome_weight", stats.SyndromeWeight,
		"correction_weight", stats.CorrectionWeight, "failed", res.Failed())
	for q := range t.errProb {
		t.errProb[q] = 0
		t.erased[q] = false
	}
	return !res.Failed(), nil
}
