package core

import "surfnet/internal/telemetry"

// instruments holds the engine's pre-resolved metrics so the slot loop pays
// one registry lookup per instrument per transfer, not per event. With a nil
// registry every field is nil and each recording site costs one nil check.
type instruments struct {
	photonLoss      *telemetry.Counter // Support photons lost to the plain channel
	teleports       *telemetry.Counter // opportunistic Core segment moves
	teleportHops    *telemetry.Counter // fibers covered by those moves
	coreStalls      *telemetry.Counter // slots the Core part waited for entanglement
	decodes         *telemetry.Counter // error-correction decodes performed
	decodeFailures  *telemetry.Counter // decodes that left a logical error
	fiberCrashes    *telemetry.Counter // fiber outages sampled
	recoveries      *telemetry.Counter // successful local recovery reroutes
	recoveryFails   *telemetry.Counter // blocked parts with no recovery path
	retransmissions *telemetry.Counter // Support retransmission waves
	delivered       *telemetry.Counter // codes delivered within MaxSlots
	timeouts        *telemetry.Counter // codes still in flight at MaxSlots

	latency        *telemetry.Histogram // delivery latency in slots
	erasedAtDecode *telemetry.Histogram // erasures entering each decode
}

func newInstruments(reg *telemetry.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	return instruments{
		photonLoss:      reg.Counter("core.photon_loss"),
		teleports:       reg.Counter("core.teleports"),
		teleportHops:    reg.Counter("core.teleport_hops"),
		coreStalls:      reg.Counter("core.core_stalls"),
		decodes:         reg.Counter("core.decodes"),
		decodeFailures:  reg.Counter("core.decode_failures"),
		fiberCrashes:    reg.Counter("core.fiber_crashes"),
		recoveries:      reg.Counter("core.recoveries"),
		recoveryFails:   reg.Counter("core.recovery_failures"),
		retransmissions: reg.Counter("core.retransmissions"),
		delivered:       reg.Counter("core.delivered"),
		timeouts:        reg.Counter("core.timeouts"),
		latency:         reg.Histogram("core.delivery_latency_slots", telemetry.SlotBuckets),
		erasedAtDecode:  reg.Histogram("core.erased_at_decode", telemetry.WeightBuckets),
	}
}
