package core

import (
	"surfnet/internal/faults"
	"surfnet/internal/telemetry"
)

// instruments holds the engine's pre-resolved metrics so the slot loop pays
// one registry lookup per instrument per transfer, not per event. With a nil
// registry every field is nil and each recording site costs one nil check.
type instruments struct {
	photonLoss      *telemetry.Counter // Support photons lost to the plain channel
	teleports       *telemetry.Counter // opportunistic Core segment moves
	teleportHops    *telemetry.Counter // fibers covered by those moves
	coreStalls      *telemetry.Counter // slots the Core part waited for entanglement
	decodes         *telemetry.Counter // error-correction decodes performed
	decodeFailures  *telemetry.Counter // decodes that left a logical error
	fiberCrashes    *telemetry.Counter // stochastic/scripted fiber outages sampled
	nodeCrashes     *telemetry.Counter // node/server outages sampled
	regionCrashes   *telemetry.Counter // correlated regional failures sampled
	driftEpisodes   *telemetry.Counter // fidelity-drift episodes started
	correctionSkips *telemetry.Counter // corrections skipped at down servers
	recoveries      *telemetry.Counter // successful local recovery reroutes
	recoveryFails   *telemetry.Counter // blocked parts with no recovery path
	backoffSkips    *telemetry.Counter // blocked slots waited out under recovery backoff
	replans         *telemetry.Counter // epoch re-plans over the surviving topology
	replanFails     *telemetry.Counter // re-plans that found no admissible route
	retransmissions *telemetry.Counter // Support retransmission waves
	delivered       *telemetry.Counter // codes delivered within MaxSlots
	timeouts        *telemetry.Counter // codes still in flight at MaxSlots

	latency        *telemetry.Histogram // delivery latency in slots
	erasedAtDecode *telemetry.Histogram // erasures entering each decode
}

func newInstruments(reg *telemetry.Registry) instruments {
	if reg == nil {
		return instruments{}
	}
	return instruments{
		photonLoss:      reg.Counter("core.photon_loss"),
		teleports:       reg.Counter("core.teleports"),
		teleportHops:    reg.Counter("core.teleport_hops"),
		coreStalls:      reg.Counter("core.core_stalls"),
		decodes:         reg.Counter("core.decodes"),
		decodeFailures:  reg.Counter("core.decode_failures"),
		fiberCrashes:    reg.Counter("core.fiber_crashes"),
		nodeCrashes:     reg.Counter("core.node_crashes"),
		regionCrashes:   reg.Counter("core.region_crashes"),
		driftEpisodes:   reg.Counter("core.drift_episodes"),
		correctionSkips: reg.Counter("core.correction_skips"),
		recoveries:      reg.Counter("core.recoveries"),
		recoveryFails:   reg.Counter("core.recovery_failures"),
		backoffSkips:    reg.Counter("core.recovery_backoff_skips"),
		replans:         reg.Counter("core.replans"),
		replanFails:     reg.Counter("core.replan_failures"),
		retransmissions: reg.Counter("core.retransmissions"),
		delivered:       reg.Counter("core.delivered"),
		timeouts:        reg.Counter("core.timeouts"),
		latency:         reg.Histogram("core.delivery_latency_slots", telemetry.SlotBuckets),
		erasedAtDecode:  reg.Histogram("core.erased_at_decode", telemetry.WeightBuckets),
	}
}

// faultEmitter translates injector events into the engine's per-fault-class
// counters and slot-level traces, tagged with the communication's identity.
func faultEmitter(ins instruments, tracer telemetry.Tracer, ri, ci int) func(faults.Event) {
	trace := func(slot int, typ string, kv ...any) {
		if tracer == nil {
			return
		}
		ev := telemetry.Ev(typ, kv...)
		ev.Slot, ev.Req, ev.Code = slot, ri, ci
		tracer.Emit(ev)
	}
	return func(ev faults.Event) {
		switch ev.Kind {
		case faults.FiberCrash:
			ins.fiberCrashes.Inc()
			trace(ev.Slot, "core.fiber_crash", "fiber", ev.ID, "until", ev.Until)
		case faults.FiberRepair:
			trace(ev.Slot, "core.fiber_repair", "fiber", ev.ID)
		case faults.NodeCrash:
			ins.nodeCrashes.Inc()
			trace(ev.Slot, "core.node_crash", "node", ev.ID, "until", ev.Until)
		case faults.NodeRepair:
			trace(ev.Slot, "core.node_repair", "node", ev.ID)
		case faults.RegionCrash:
			ins.regionCrashes.Inc()
			trace(ev.Slot, "core.region_crash", "node", ev.ID, "until", ev.Until)
		case faults.RegionRepair:
			trace(ev.Slot, "core.region_repair", "node", ev.ID)
		case faults.DriftStart:
			ins.driftEpisodes.Inc()
			trace(ev.Slot, "core.drift_start", "fiber", ev.ID, "until", ev.Until)
		case faults.DriftEnd:
			trace(ev.Slot, "core.drift_end", "fiber", ev.ID)
		}
	}
}
