package core

import (
	"context"
	"strings"
	"testing"

	"surfnet/internal/decoder"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/topology"
)

// residentFixture builds a generated topology with an LP schedule and a
// fault-injecting config — enough moving parts (recoveries, re-plans,
// retransmissions) to make engine-path divergence visible.
func residentFixture(t *testing.T) (*Engine, routing.Schedule) {
	t.Helper()
	src := rng.New(8181)
	net, err := topology.Generate(topology.DefaultParams(topology.Abundant, topology.GoodConnection), src)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := topology.GenRequests(net, 5, 2, src.Split("reqs"))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := routing.ScheduleLP(net, reqs, routing.DefaultParams(routing.SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Decoder = decoder.SurfNet{}
	cfg.FiberFailProb = 0.01
	eng, err := NewEngine(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sched
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, DefaultConfig()); err == nil {
		t.Error("nil network should fail")
	}
	net := lineNet(t, 0.95, 0.5, 0.02)
	bad := DefaultConfig()
	bad.Decoder = nil
	if _, err := NewEngine(net, bad); err == nil {
		t.Error("nil decoder should fail")
	}
}

// TestEngineExecuteMatchesRun pins the refactor contract: the one-shot Run
// wrapper and a resident Engine produce field-for-field identical outcomes.
func TestEngineExecuteMatchesRun(t *testing.T) {
	eng, sched := residentFixture(t)
	want, err := Run(eng.Network(), sched, eng.Config(), rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Execute(sched, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != want.Design || len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("shape mismatch: %v/%d vs %v/%d",
			got.Design, len(got.Outcomes), want.Design, len(want.Outcomes))
	}
	for i := range want.Outcomes {
		if got.Outcomes[i] != want.Outcomes[i] {
			t.Fatalf("outcome %d: %+v != %+v", i, got.Outcomes[i], want.Outcomes[i])
		}
	}
}

// TestEngineReentrant pins that one engine executing the same schedule twice
// from equal seeds yields identical results — no state leaks between calls.
func TestEngineReentrant(t *testing.T) {
	eng, sched := residentFixture(t)
	a, err := eng.Execute(sched, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Execute(sched, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			t.Fatalf("outcome %d differs across re-entrant executions", i)
		}
	}
}

// TestExecuteParallelWorkerInvariance pins the daemon's determinism contract:
// the parallel engine matches serial execution for every worker count, so
// daemon-admitted transfers are reproducible regardless of pool width.
func TestExecuteParallelWorkerInvariance(t *testing.T) {
	eng, sched := residentFixture(t)
	want, err := eng.Execute(sched, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4} {
		got, err := eng.ExecuteParallel(context.Background(), sched, rng.New(77), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Outcomes) != len(want.Outcomes) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(got.Outcomes), len(want.Outcomes))
		}
		for i := range want.Outcomes {
			if got.Outcomes[i] != want.Outcomes[i] {
				t.Fatalf("workers=%d outcome %d: %+v != %+v",
					workers, i, got.Outcomes[i], want.Outcomes[i])
			}
		}
	}
}

func TestExecuteParallelCancellation(t *testing.T) {
	eng, sched := residentFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ExecuteParallel(ctx, sched, rng.New(1), 2); err == nil {
		t.Fatal("cancelled context should abort execution")
	}
}

func TestExecuteParallelEmptySchedule(t *testing.T) {
	eng, _ := residentFixture(t)
	empty := routing.Schedule{Design: routing.SurfNet, Params: routing.DefaultParams(routing.SurfNet)}
	res, err := eng.ExecuteParallel(context.Background(), empty, rng.New(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 0 {
		t.Fatalf("empty schedule produced %d outcomes", len(res.Outcomes))
	}
}

// TestExecuteSchedulePropagatesValidation pins that schedule-dependent
// validation still fires on the resident path.
func TestExecuteScheduleValidation(t *testing.T) {
	net := lineNet(t, 0.95, 0.5, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cfg := DefaultConfig()
	eng, err := NewEngine(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := sched
	bad.Params.CoreQubits++
	if _, err := eng.Execute(bad, rng.New(1)); err == nil || !strings.Contains(err.Error(), "qubits") {
		t.Fatalf("schedule/code mismatch should fail, got %v", err)
	}
}
