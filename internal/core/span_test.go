package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"
)

// spanEv is the decoded form of one "span" trace line.
type spanEv struct {
	Event  string `json:"event"`
	Req    int    `json:"req"`
	Code   int    `json:"code"`
	Name   string `json:"name"`
	Span   int    `json:"span"`
	Parent int    `json:"parent"`
	Start  int    `json:"start"`
	Dur    int    `json:"dur"`
	Slot   int    `json:"slot"`
}

// collectSpans runs a schedule under a JSONL tracer and returns the span
// events grouped per communication.
func collectSpans(t *testing.T, design routing.Design, cfg Config) map[[2]int][]spanEv {
	t.Helper()
	net := lineNet(t, 0.95, 0.6, 0.02)
	sched := mustSchedule(t, net, design, 2)
	var buf bytes.Buffer
	tr := telemetry.NewJSONL(&buf)
	cfg.Tracer = tr
	if _, err := Run(net, sched, cfg, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans := map[[2]int][]spanEv{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev spanEv
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev.Event != "span" {
			continue
		}
		key := [2]int{ev.Req, ev.Code}
		spans[key] = append(spans[key], ev)
	}
	return spans
}

// checkSpanTree verifies the well-formedness contract for one transfer's
// spans: ids unique, every non-root parent exists, durations and start slots
// non-negative, children contained in their parent's [start, start+dur]
// window, and the expected hierarchy names.
func checkSpanTree(t *testing.T, key [2]int, spans []spanEv) {
	t.Helper()
	byID := map[int]spanEv{}
	for _, s := range spans {
		if s.Span < 1 {
			t.Fatalf("%v: span id %d < 1", key, s.Span)
		}
		if _, dup := byID[s.Span]; dup {
			t.Fatalf("%v: duplicate span id %d", key, s.Span)
		}
		byID[s.Span] = s
	}
	transfers := 0
	for _, s := range spans {
		if s.Dur < 0 || s.Start < 0 {
			t.Fatalf("%v: span %+v has negative start or duration", key, s)
		}
		if s.Name == "transfer" {
			transfers++
			if s.Parent != 0 {
				t.Fatalf("%v: transfer span has parent %d, want 0 (root)", key, s.Parent)
			}
			continue
		}
		parent, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("%v: span %+v references missing parent %d", key, s, s.Parent)
		}
		if s.Start < parent.Start || s.Start+s.Dur > parent.Start+parent.Dur {
			t.Fatalf("%v: span %+v escapes parent window %+v", key, s, parent)
		}
		wantParent := map[string]string{"epoch": "transfer", "slot": "epoch", "decode": "slot"}[s.Name]
		if wantParent == "" {
			t.Fatalf("%v: unexpected span name %q", key, s.Name)
		}
		if parent.Name != wantParent {
			t.Fatalf("%v: %s span nested under %s, want %s", key, s.Name, parent.Name, wantParent)
		}
	}
	if transfers != 1 {
		t.Fatalf("%v: %d transfer spans, want exactly 1", key, transfers)
	}
}

func TestSurfNetSpanTreeWellFormed(t *testing.T) {
	spans := collectSpans(t, routing.SurfNet, DefaultConfig())
	if len(spans) == 0 {
		t.Fatal("no spans traced")
	}
	decodes, epochs := 0, 0
	for key, ss := range spans {
		checkSpanTree(t, key, ss)
		for _, s := range ss {
			switch s.Name {
			case "decode":
				decodes++
			case "epoch":
				epochs++
			}
		}
	}
	if decodes == 0 {
		t.Fatal("no decode spans: the transfer's latency cannot be decomposed")
	}
	if epochs < len(spans) {
		t.Fatalf("%d epoch spans for %d transfers", epochs, len(spans))
	}
}

func TestPurificationSpanTreeWellFormed(t *testing.T) {
	spans := collectSpans(t, routing.Purification2, DefaultConfig())
	if len(spans) == 0 {
		t.Fatal("no spans traced")
	}
	for key, ss := range spans {
		for _, s := range ss {
			if s.Name != "transfer" || s.Parent != 0 || s.Dur < 0 {
				t.Fatalf("%v: unexpected purification span %+v", key, s)
			}
		}
	}
}

// TestReplanRotatesEpochSpans drives persistent recovery failure so the
// engine re-plans, and checks that each re-plan closes the old epoch span and
// opens a new one under the same transfer.
func TestReplanRotatesEpochSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FiberFailProb = 0.30
	cfg.RepairSlots = 40
	cfg.RecoveryBackoff = 1
	cfg.ReplanAfterFails = 2
	cfg.ReplanEpoch = 10
	cfg.MaxSlots = 200
	spans := collectSpans(t, routing.SurfNet, cfg)
	multiEpoch := false
	for key, ss := range spans {
		checkSpanTree(t, key, ss)
		epochs := 0
		for _, s := range ss {
			if s.Name == "epoch" {
				epochs++
			}
		}
		if epochs > 1 {
			multiEpoch = true
		}
	}
	if !multiEpoch {
		t.Skip("no re-plan triggered at this seed; raise FiberFailProb if this persists")
	}
}
