package core

import (
	"reflect"
	"testing"

	"surfnet/internal/faults"
	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"
)

// ringNet builds the recoverable topology of TestFiberOutagesAndRecovery:
// user(0)-switch(1)-server(2)-switch(3)-user(4) with switch(5) bridging 1-3.
func ringNet(t *testing.T) *network.Network {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 1000},
		{ID: 2, Role: network.Server, Capacity: 1000},
		{ID: 3, Role: network.Switch, Capacity: 1000},
		{ID: 4, Role: network.User},
		{ID: 5, Role: network.Switch, Capacity: 1000},
	}
	fibers := []network.Fiber{
		{ID: 0, A: 0, B: 1, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 1, A: 1, B: 2, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 2, A: 2, B: 3, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 3, A: 3, B: 4, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 4, A: 1, B: 5, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 5, A: 5, B: 3, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
	}
	net, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidationFaultKnobs(t *testing.T) {
	net := lineNet(t, 0.95, 0.5, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative RepairSlots", func(c *Config) { c.RepairSlots = -1 }},
		{"negative RecoveryBackoff", func(c *Config) { c.RecoveryBackoff = -2 }},
		{"negative RecoveryBackoffMax", func(c *Config) { c.RecoveryBackoffMax = -1 }},
		{"backoff cap below start", func(c *Config) { c.RecoveryBackoff = 8; c.RecoveryBackoffMax = 4 }},
		{"negative ReplanAfterFails", func(c *Config) { c.ReplanAfterFails = -1 }},
		{"negative ReplanEpoch", func(c *Config) { c.ReplanEpoch = -5 }},
		{"fault probability above 1", func(c *Config) { c.Faults = &faults.Profile{NodeOutageProb: 1.5} }},
		{"negative drift window", func(c *Config) { c.Faults = &faults.Profile{DriftProb: 0.1, DriftWindow: -3} }},
		{"script targets missing fiber", func(c *Config) {
			c.Faults = &faults.Profile{Script: []faults.ScriptedFault{{Slot: 0, Duration: 5, ID: 99}}}
		}},
		{"script targets missing node", func(c *Config) {
			c.Faults = &faults.Profile{Script: []faults.ScriptedFault{{Slot: 0, Duration: 5, Node: true, ID: 99}}}
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if _, err := Run(net, sched, cfg, rng.New(1)); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}

func TestLegacyFiberFailMatchesExplicitProfile(t *testing.T) {
	// The legacy FiberFailProb/RepairSlots fields are folded into the
	// injector's fiber-crash scenario; an explicit profile with the same
	// parameters must reproduce every outcome byte-identically.
	net := ringNet(t)
	p := routing.DefaultParams(routing.SurfNet)
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 10}}, p, nil, nil)
	if err != nil || sched.AcceptedCodes() == 0 {
		t.Fatalf("scheduling failed: %v", err)
	}
	legacy := DefaultConfig()
	legacy.FiberFailProb = 0.05
	legacy.RepairSlots = 20
	legacy.MaxSlots = 1000
	a, err := Run(net, sched, legacy, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	explicit := DefaultConfig()
	explicit.MaxSlots = 1000
	explicit.Faults = &faults.Profile{FiberCrashProb: 0.05, FiberRepairSlots: 20}
	b, err := Run(net, sched, explicit, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("legacy fields and explicit profile diverge:\n%+v\nvs\n%+v", a, b)
	}
}

func TestNodeOutageSkipsCorrection(t *testing.T) {
	// Fidelity 0.8 schedules one correction at server 2 (see
	// TestSurfNetPerformsScheduledCorrections); a scripted outage covering
	// the whole run must degrade every code to destination-only decoding.
	net := lineNet(t, 0.8, 0.9, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 2)
	if len(sched.Requests[0].Codes[0].Servers) != 1 {
		t.Fatal("precondition: schedule should include one EC")
	}
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{
		Script: []faults.ScriptedFault{{Slot: 0, Duration: 100000, Node: true, ID: 2}},
	}
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(net, sched, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if !o.Delivered {
			t.Fatal("code not delivered past a down server")
		}
		if o.Corrections != 0 {
			t.Fatalf("corrections = %d at a down server, want 0", o.Corrections)
		}
		if o.SkippedCorrections != 1 {
			t.Fatalf("skipped corrections = %d, want 1", o.SkippedCorrections)
		}
	}
	if got := reg.Counter("core.correction_skips").Value(); got != int64(len(res.Outcomes)) {
		t.Errorf("correction_skips counter = %d, want %d", got, len(res.Outcomes))
	}
}

// blockedRun executes one SurfNet transfer on a line network whose interior
// fiber 1 is scripted down for the whole run, so every recovery attempt fails
// (a line has no detour). It returns the telemetry snapshot.
func blockedRun(t *testing.T, cfg Config) telemetry.Snapshot {
	t.Helper()
	net := lineNet(t, 0.95, 0.9, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cfg.Faults = &faults.Profile{
		Script: []faults.ScriptedFault{{Slot: 0, Duration: 100000, ID: 1}},
	}
	cfg.MaxSlots = 200
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(net, sched, cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredFraction() != 0 {
		t.Fatal("delivered through a permanently cut line")
	}
	for _, o := range res.Outcomes {
		if o.Recoveries != 0 {
			t.Fatal("recovery succeeded with no alternate path")
		}
	}
	return reg.Snapshot()
}

func TestRecoveryFailureWithoutAlternatePath(t *testing.T) {
	snap := blockedRun(t, DefaultConfig())
	if snap.Counters["core.recovery_failures"] == 0 {
		t.Error("no recovery failures recorded on a cut line")
	}
	if snap.Counters["core.recovery_backoff_skips"] != 0 {
		t.Error("backoff skips recorded with backoff disabled")
	}
}

func TestRecoveryBackoffRateLimitsSearches(t *testing.T) {
	plain := blockedRun(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.RecoveryBackoff = 2
	cfg.RecoveryBackoffMax = 16
	backed := blockedRun(t, cfg)
	pf, bf := plain.Counters["core.recovery_failures"], backed.Counters["core.recovery_failures"]
	if bf >= pf {
		t.Errorf("backoff ran %d recovery searches, legacy ran %d — backoff should run fewer", bf, pf)
	}
	if backed.Counters["core.recovery_backoff_skips"] == 0 {
		t.Error("no backoff skips recorded while rate-limited")
	}
}

func TestRecoveryNeverDetoursThroughUsers(t *testing.T) {
	// The only detour around the cut fiber 1 runs through user node 5;
	// recovery must refuse it (§V-B recovery paths traverse relays only).
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 1000},
		{ID: 2, Role: network.Server, Capacity: 1000},
		{ID: 3, Role: network.Switch, Capacity: 1000},
		{ID: 4, Role: network.User},
		{ID: 5, Role: network.User},
	}
	fibers := []network.Fiber{
		{ID: 0, A: 0, B: 1, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 1, A: 1, B: 2, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 2, A: 2, B: 3, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 3, A: 3, B: 4, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 4, A: 1, B: 5, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 5, A: 5, B: 3, Fidelity: 0.95, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
	}
	net, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatal(err)
	}
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{
		Script: []faults.ScriptedFault{{Slot: 0, Duration: 100000, ID: 1}},
	}
	cfg.MaxSlots = 200
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(net, sched, cfg, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Recoveries != 0 {
			t.Fatal("recovery detoured through a user node")
		}
	}
	if reg.Counter("core.recovery_failures").Value() == 0 {
		t.Error("no recovery failures recorded")
	}
}

func TestRecoverySpliceConsistency(t *testing.T) {
	// After a recovery splice the part's fiber path and node sequence must
	// stay mutually consistent: nodes is exactly the expansion of path.
	net := ringNet(t)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{
		Script: []faults.ScriptedFault{{Slot: 0, Duration: 50, ID: 1}},
	}
	req := sched.Requests[0].Request
	cr := sched.Requests[0].Codes[0]
	tr := newTransfer(net, sched, cfg, cfg.Code, req, cr, rng.New(5))
	tr.stepFaults(0)
	if !tr.fiberDown(1) {
		t.Fatal("scripted fault did not take fiber 1 down")
	}
	stop := tr.support.stopIdx(tr.stopNodes[0])
	tr.tryRecovery(&tr.support, 0, stop)
	if tr.out.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (bridge 1-5-3 is up)", tr.out.Recoveries)
	}
	for _, part := range []*partState{&tr.support, &tr.core} {
		if len(part.nodes) != len(part.path)+1 {
			t.Fatalf("nodes/path length mismatch: %d vs %d", len(part.nodes), len(part.path))
		}
		want := nodeSeq(net, part.nodes[0], part.path)
		if !reflect.DeepEqual(part.nodes, want) {
			t.Fatalf("node sequence %v inconsistent with path expansion %v", part.nodes, want)
		}
	}
	// The recovered support route must avoid the down fiber.
	for _, fi := range tr.support.path {
		if fi == 1 {
			t.Fatal("recovered path still crosses the down fiber")
		}
	}
}

// branchNet builds a topology whose source has two outlets but whose primary
// route dead-ends when cut: user(0)-switch(1)-server(2)-switch(3)-user(4) on
// good fibers, plus a worse (but admissible) branch 0-switch(5)-3. The
// scheduler prefers the four-hop line; once fiber 1 is cut, node 1 has no
// onward path (its only other fiber leads back to user 0), so local recovery
// must fail while a fresh plan from the source can still use the branch.
func branchNet(t *testing.T) *network.Network {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: 1000},
		{ID: 2, Role: network.Server, Capacity: 1000},
		{ID: 3, Role: network.Switch, Capacity: 1000},
		{ID: 4, Role: network.User},
		{ID: 5, Role: network.Switch, Capacity: 1000},
	}
	fibers := []network.Fiber{
		{ID: 0, A: 0, B: 1, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 1, A: 1, B: 2, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 2, A: 2, B: 3, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 3, A: 3, B: 4, Fidelity: 0.9, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 4, A: 0, B: 5, Fidelity: 0.8, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
		{ID: 5, A: 5, B: 3, Fidelity: 0.8, EntPairs: 1000, EntRate: 0.8, LossProb: 0.02},
	}
	net, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestReplanAfterPersistentRecoveryFailure(t *testing.T) {
	// Fiber 1 is cut for the whole run once the code has left the source:
	// local recovery from node 1 can never succeed (the only other fiber
	// leads back to the user), so epoch re-planning must re-admit the
	// request over the surviving branch 0-5-3-4 and deliver.
	net := branchNet(t)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	if got := sched.Requests[0].Codes[0].SupportPath; len(got) != 4 {
		t.Fatalf("precondition: schedule should take the four-hop line, got path %v", got)
	}
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{Script: []faults.ScriptedFault{
		{Slot: 1, Duration: 100000, ID: 1},
	}}
	cfg.ReplanAfterFails = 3
	cfg.ReplanEpoch = 10
	cfg.MaxSlots = 400
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(net, sched, cfg, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Replans == 0 {
			t.Fatal("no replan despite persistent recovery failure")
		}
		if !o.Delivered {
			t.Fatal("replanned code not delivered over the surviving branch")
		}
	}
	if reg.Counter("core.replans").Value() == 0 {
		t.Error("replans counter not incremented")
	}
	// Without re-planning the same scenario must time out.
	cfg.ReplanAfterFails = 0
	res2, err := Run(net, sched, cfg, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if res2.DeliveredFraction() != 0 {
		t.Fatal("delivered without replanning across a cut primary route")
	}
}

func TestReplanFailureWhenNetworkSevered(t *testing.T) {
	// Cutting both of the source side's onward fibers disconnects the
	// destination entirely: recovery and re-planning must both fail, and
	// the failure must be counted rather than looping forever.
	net := branchNet(t)
	sched := mustSchedule(t, net, routing.SurfNet, 1)
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{Script: []faults.ScriptedFault{
		{Slot: 0, Duration: 100000, ID: 1},
		{Slot: 0, Duration: 100000, ID: 4},
	}}
	cfg.ReplanAfterFails = 2
	cfg.ReplanEpoch = 10
	cfg.MaxSlots = 200
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	res, err := Run(net, sched, cfg, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveredFraction() != 0 {
		t.Fatal("delivered across a severed network")
	}
	for _, o := range res.Outcomes {
		if o.Replans != 0 {
			t.Fatal("replan claimed success on a severed network")
		}
	}
	if reg.Counter("core.replan_failures").Value() == 0 {
		t.Error("replan failures not counted")
	}
}

func TestDriftDegradesFidelity(t *testing.T) {
	// Permanent heavy drift on every fiber must cost success rate relative
	// to the fault-free run of the same schedule and seed.
	net := lineNet(t, 0.95, 0.9, 0.02)
	sched := mustSchedule(t, net, routing.SurfNet, 20)
	clean, err := Run(net, sched, DefaultConfig(), rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = &faults.Profile{DriftProb: 1, DriftWindow: 1000, DriftDecay: 0.7}
	drifted, err := Run(net, sched, cfg, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Fidelity() >= clean.Fidelity() {
		t.Errorf("drifted fidelity %v not below clean %v", drifted.Fidelity(), clean.Fidelity())
	}
}

func TestFaultInjectedRunDeterminism(t *testing.T) {
	// A profile exercising every scenario class must reproduce outcomes
	// exactly under the same seed.
	net := ringNet(t)
	p := routing.DefaultParams(routing.SurfNet)
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 6}}, p, nil, nil)
	if err != nil || sched.AcceptedCodes() == 0 {
		t.Fatalf("scheduling failed: %v", err)
	}
	cfg := DefaultConfig()
	cfg.MaxSlots = 600
	cfg.RecoveryBackoff = 2
	cfg.ReplanAfterFails = 4
	cfg.Faults = &faults.Profile{
		FiberCrashProb:      0.03,
		FiberRepairSlots:    10,
		NodeOutageProb:      0.02,
		NodeRepairSlots:     15,
		RegionalProb:        0.002,
		RegionalRepairSlots: 25,
		DriftProb:           0.05,
		DriftWindow:         8,
		DriftDecay:          0.9,
		Script:              []faults.ScriptedFault{{Slot: 30, Duration: 20, ID: 2}},
	}
	a, err := Run(net, sched, cfg, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(net, sched, cfg, rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fault-injected run not reproducible under the same seed")
	}
}

func TestPurificationFaultsOptIn(t *testing.T) {
	// Legacy FiberFailProb never applied to purification baselines; only an
	// explicit profile may change their results.
	net := lineNet(t, 0.9, 0.6, 0.02)
	sched := mustSchedule(t, net, routing.Purification2, 3)
	base, err := Run(net, sched, DefaultConfig(), rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	legacy := DefaultConfig()
	legacy.FiberFailProb = 0.2
	legacy.RepairSlots = 10
	same, err := Run(net, sched, legacy, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, same) {
		t.Fatal("legacy FiberFailProb changed purification results")
	}
	explicit := DefaultConfig()
	explicit.Faults = &faults.Profile{FiberCrashProb: 0.2, FiberRepairSlots: 10}
	faulty, err := Run(net, sched, explicit, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(base, faulty) {
		t.Fatal("explicit profile had no effect on purification baseline")
	}
}
