package core

import (
	"testing"

	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
)

func TestAdaptiveScheduleExecutesEndToEnd(t *testing.T) {
	// Mixed adaptive distances must execute: each code is decoded on the
	// lattice matching its scheduled distance.
	net := lineNet(t, 0.9, 0.8, 0.03)
	p := routing.DefaultParams(routing.SurfNet)
	p.AdaptiveDistances = []int{3, 5, 7}
	sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 5}}, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() == 0 {
		t.Fatal("nothing scheduled")
	}
	sawDistance := false
	for _, rs := range sched.Requests {
		for _, cr := range rs.Codes {
			if cr.Distance > 0 {
				sawDistance = true
			}
		}
	}
	if !sawDistance {
		t.Fatal("adaptive schedule carries no distances")
	}
	res, err := Run(net, sched, DefaultConfig(), rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != sched.AcceptedCodes() {
		t.Fatalf("outcomes %d != scheduled %d", len(res.Outcomes), sched.AcceptedCodes())
	}
	if res.DeliveredFraction() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestAdaptiveDistanceTradesFidelity(t *testing.T) {
	// On identical clean short routes the accumulated flip rate stays
	// below threshold, where a larger code must not lose to a smaller one
	// in delivered fidelity (statistically, generous margin). Fibers at
	// 0.93 give ~1% flip per hop, ~4% across the route — sub-threshold.
	net := lineNet(t, 0.93, 0.9, 0.05)
	rate := func(distances []int) float64 {
		p := routing.DefaultParams(routing.SurfNet)
		if distances != nil {
			p.AdaptiveDistances = distances
		}
		succ, total := 0, 0
		for i := 0; i < 40; i++ {
			sched, err := routing.Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 2}}, p, nil, nil)
			if err != nil || sched.AcceptedCodes() == 0 {
				t.Fatalf("scheduling failed: %v", err)
			}
			res, err := Run(net, sched, DefaultConfig(), rng.New(uint64(500+i)))
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range res.Outcomes {
				total++
				if o.Success {
					succ++
				}
			}
		}
		return float64(succ) / float64(total)
	}
	small := rate([]int{3})
	large := rate([]int{9})
	if large < small-0.05 {
		t.Fatalf("distance-9 fidelity %v markedly below distance-3 %v", large, small)
	}
}
