package core

import (
	"fmt"

	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/telemetry"
	"surfnet/internal/topology"
)

// RoundConfig drives continuous network operation: the routing protocol of
// §V-A runs in rounds, each collecting the pending requests, scheduling them
// against refreshed capacities and entanglement budgets, and handing the
// schedule to online execution. Requests that a round cannot admit stay in
// the backlog for the next round.
type RoundConfig struct {
	// Rounds is the number of scheduling rounds to simulate.
	Rounds int
	// ArrivalsPerRound is the number of new requests drawn each round.
	ArrivalsPerRound int
	// MaxMessages caps surface codes per arriving request.
	MaxMessages int
	// MaxBacklog bounds the pending queue; excess requests are rejected
	// (counted in the result). Zero selects 64.
	MaxBacklog int
	// Routing selects the design and parameters used every round.
	Routing routing.Params
	// UseLP selects the LP-relaxation scheduler; false selects greedy.
	UseLP bool
	// Engine configures the per-round online execution.
	Engine Config
}

// DefaultRoundConfig returns a paper-scale continuous run: 8 rounds of 4
// arrivals on the SurfNet design.
func DefaultRoundConfig() RoundConfig {
	return RoundConfig{
		Rounds:           8,
		ArrivalsPerRound: 4,
		MaxMessages:      3,
		Routing:          routing.DefaultParams(routing.SurfNet),
		UseLP:            true,
		Engine:           DefaultConfig(),
	}
}

func (rc RoundConfig) validate() error {
	if rc.Rounds < 1 {
		return fmt.Errorf("%w: Rounds %d < 1", ErrConfig, rc.Rounds)
	}
	if rc.ArrivalsPerRound < 0 {
		return fmt.Errorf("%w: ArrivalsPerRound %d < 0", ErrConfig, rc.ArrivalsPerRound)
	}
	if rc.MaxMessages < 1 {
		return fmt.Errorf("%w: MaxMessages %d < 1", ErrConfig, rc.MaxMessages)
	}
	if rc.MaxBacklog < 0 {
		return fmt.Errorf("%w: MaxBacklog %d < 0", ErrConfig, rc.MaxBacklog)
	}
	return rc.Routing.Validate()
}

// RoundOutcome summarizes one scheduling round.
type RoundOutcome struct {
	// Round is the round index.
	Round int
	// Arrived is the number of requests that arrived this round.
	Arrived int
	// Pending is the backlog size entering the scheduler.
	Pending int
	// Scheduled is the number of surface codes admitted.
	Scheduled int
	// Result is the online-execution outcome of the admitted codes.
	Result RunResult
}

// RoundsResult aggregates a continuous run.
type RoundsResult struct {
	Rounds []RoundOutcome
	// Rejected counts requests dropped because the backlog was full.
	Rejected int
}

// TotalScheduled sums admitted codes over all rounds.
func (r RoundsResult) TotalScheduled() int {
	n := 0
	for _, ro := range r.Rounds {
		n += ro.Scheduled
	}
	return n
}

// Fidelity is the success fraction over every executed code of the run.
func (r RoundsResult) Fidelity() float64 {
	succ, total := 0, 0
	for _, ro := range r.Rounds {
		for _, o := range ro.Result.Outcomes {
			total++
			if o.Success {
				succ++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(succ) / float64(total)
}

// RunRounds operates the network continuously: each round draws new
// requests, schedules the backlog against fresh per-round capacities (the
// paper's eta_r and eta_e are per-round budgets), executes the admitted
// codes, and carries unserved requests forward.
func RunRounds(net *network.Network, rc RoundConfig, src *rng.Source) (RoundsResult, error) {
	if err := rc.validate(); err != nil {
		return RoundsResult{}, err
	}
	// The engine's telemetry covers the whole continuous run: propagate it
	// to the scheduler unless the caller wired the routing layer separately.
	if rc.Routing.Metrics == nil {
		rc.Routing.Metrics = rc.Engine.Metrics
	}
	if rc.Routing.Tracer == nil {
		rc.Routing.Tracer = rc.Engine.Tracer
	}
	backlogGauge := rc.Engine.Metrics.Gauge("core.backlog")
	rejectedCounter := rc.Engine.Metrics.Counter("core.backlog_rejections")
	maxBacklog := rc.MaxBacklog
	if maxBacklog == 0 {
		maxBacklog = 64
	}
	var res RoundsResult
	var backlog []network.Request
	for round := 0; round < rc.Rounds; round++ {
		rsrc := src.SplitN("round", round)
		arrivals, err := topology.GenRequests(net, rc.ArrivalsPerRound, rc.MaxMessages, rsrc.Split("arrivals"))
		if err != nil {
			return RoundsResult{}, fmt.Errorf("core: round %d arrivals: %w", round, err)
		}
		for _, r := range arrivals {
			if len(backlog) >= maxBacklog {
				res.Rejected++
				rejectedCounter.Inc()
				continue
			}
			backlog = append(backlog, r)
		}
		outcome := RoundOutcome{Round: round, Arrived: len(arrivals), Pending: len(backlog)}
		if len(backlog) > 0 {
			var sched routing.Schedule
			if rc.UseLP {
				sched, err = routing.ScheduleLP(net, backlog, rc.Routing)
			} else {
				sched, err = routing.Greedy(net, backlog, rc.Routing, nil, nil)
			}
			if err != nil {
				return RoundsResult{}, fmt.Errorf("core: round %d scheduling: %w", round, err)
			}
			outcome.Scheduled = sched.AcceptedCodes()
			if outcome.Scheduled > 0 {
				run, err := Run(net, sched, rc.Engine, rsrc.Split("run"))
				if err != nil {
					return RoundsResult{}, fmt.Errorf("core: round %d execution: %w", round, err)
				}
				outcome.Result = run
			}
			// Carry forward the unserved remainder of each request.
			var next []network.Request
			for i, rs := range sched.Requests {
				if rem := backlog[i].Messages - rs.Accepted(); rem > 0 {
					r := backlog[i]
					r.Messages = rem
					next = append(next, r)
				}
			}
			backlog = next
		}
		backlogGauge.Set(float64(len(backlog)))
		telemetry.Emit(rc.Engine.Tracer, telemetry.Ev("core.round",
			"round", round, "arrived", outcome.Arrived,
			"pending", outcome.Pending, "scheduled", outcome.Scheduled,
			"backlog", len(backlog)))
		res.Rounds = append(res.Rounds, outcome)
	}
	return res, nil
}
