package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"surfnet/internal/telemetry"
)

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.trials").Add(7)
	tracker := NewTracker()
	cell := tracker.StartCell("fig6a/surfnet/greedy", 10)
	cell.TrialDone(4)

	s := NewServer(reg, tracker)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", code)
	}
	s.SetReady(true)
	if code, body := get(t, ts, "/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("/readyz after SetReady = %d %q", code, body)
	}

	code, body := get(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "surfnet_sim_trials_total 7\n") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	code, body = get(t, ts, "/status")
	if code != 200 {
		t.Fatalf("/status = %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if !st.Ready || st.TrialsDone != 4 || st.TrialsTotal != 10 {
		t.Fatalf("/status = %+v, want ready with 4/10 trials", st)
	}
	if st.Counters["sim.trials"] != 7 {
		t.Fatalf("/status counters = %v, want sim.trials=7", st.Counters)
	}

	if code, body := get(t, ts, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d (len %d)", code, len(body))
	}
	if code, _ := get(t, ts, "/debug/pprof/heap"); code != 200 {
		t.Fatalf("/debug/pprof/heap = %d", code)
	}
}

func TestServerNilRegistryAndTracker(t *testing.T) {
	s := NewServer(nil, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts, "/metrics"); code != 200 || body != "" {
		t.Fatalf("/metrics on nil registry = %d %q, want empty 200", code, body)
	}
	code, body := get(t, ts, "/status")
	if code != 200 {
		t.Fatalf("/status = %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.CellsStarted != 0 || st.Ready {
		t.Fatalf("/status on nil tracker = %+v, want zero/unready", st)
	}
}

func TestServerListenAndShutdown(t *testing.T) {
	s := NewServer(telemetry.NewRegistry(), NewTracker())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetReady(true)
	resp, err := http.Get(fmt.Sprintf("http://%s/readyz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz over real listener = %d", resp.StatusCode)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestShutdownWithoutListen(t *testing.T) {
	s := NewServer(nil, nil)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentScrapeWhileMutating hammers /metrics and /status while
// goroutines mutate every instrument kind and the progress tracker — the
// contract the race detector checks when a live sweep is scraped mid-run.
func TestConcurrentScrapeWhileMutating(t *testing.T) {
	reg := telemetry.NewRegistry()
	tracker := NewTracker()
	s := NewServer(reg, tracker)
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cell := tracker.StartCell(fmt.Sprintf("cell-%d", w), iters)
			c := reg.Counter("sim.trials")
			g := reg.Gauge("net.load")
			h := reg.Histogram("decode.seconds", []float64{0.01, 0.1})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / iters)
				cell.TrialDone(1)
			}
			cell.Finish()
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				for _, path := range []string{"/metrics", "/status", "/readyz"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("%s = %d mid-run", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	_, body := get(t, ts, "/metrics")
	if !strings.Contains(body, fmt.Sprintf("surfnet_sim_trials_total %d\n", 4*iters)) {
		t.Fatalf("final scrape missing settled counter:\n%s", body)
	}
}
