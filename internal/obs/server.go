package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"surfnet/internal/telemetry"
)

// Server is the embedded observability HTTP server. It serves:
//
//	/metrics       telemetry registry, Prometheus text exposition format
//	/healthz       liveness: 200 once the process is serving
//	/readyz        readiness: 503 until SetReady(true), 503 again after shutdown
//	/status        live sweep progress as JSON (see Status)
//	/debug/pprof/  the standard runtime profiles
//
// Handlers only read state, so scraping mid-run never perturbs results.
//
// A resident daemon mounts its API routes with Handle and attaches a service
// snapshot with SetServiceStatus, making this one mux both the ops surface
// and the serving surface.
type Server struct {
	reg     *telemetry.Registry
	tracker *Tracker
	budget  atomic.Pointer[telemetry.Budget]
	service atomic.Pointer[func() any]
	mux     *http.ServeMux
	srv     *http.Server
	ready   atomic.Bool
	started time.Time
}

// NewServer builds a server over the given registry and progress tracker.
// Either may be nil: /metrics then serves an empty exposition and /status a
// zero progress report.
func NewServer(reg *telemetry.Registry, tracker *Tracker) *Server {
	s := &Server{reg: reg, tracker: tracker, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/status", s.handleStatus)
	// pprof registers on http.DefaultServeMux via init; mount the handlers
	// explicitly so this private mux stays independent of global state.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the server's mux, mainly for httptest-based tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Handle mounts an additional route on the server's mux — the daemon's API
// endpoints live next to the ops endpoints. Mount before Listen; the mux
// panics on duplicate patterns, same as http.ServeMux.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetServiceStatus attaches a snapshot callback whose result /status embeds
// under "service" — queue depth, admission counters, tenant accounting. The
// callback must be safe for concurrent use; nil detaches it.
func (s *Server) SetServiceStatus(fn func() any) {
	if fn == nil {
		s.service.Store(nil)
		return
	}
	s.service.Store(&fn)
}

// SetReady flips the /readyz state. The CLI wrapper sets it true once sinks
// and the experiment harness are wired, and false again during shutdown.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetBudget attaches a latency budget whose burn rate /status reports. A nil
// budget detaches it.
func (s *Server) SetBudget(b *telemetry.Budget) { s.budget.Store(b) }

// Listen binds addr (e.g. ":9090", "127.0.0.1:0") and serves in the
// background. It returns the bound address so callers can log the resolved
// port when addr requested an ephemeral one.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: s.mux}
	go func() {
		// ErrServerClosed after Shutdown is the normal exit; any earlier
		// error just ends background serving — the simulation must not die
		// because its observer did.
		_ = s.srv.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Shutdown gracefully stops a listening server. It is a no-op if Listen was
// never called (the httptest path).
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if s.reg != nil {
		snap = s.reg.Snapshot()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.tracker.Status()
	st.Ready = s.ready.Load()
	st.UptimeSeconds = time.Since(s.started).Seconds()
	if s.reg != nil {
		st.Counters = s.reg.Snapshot().Counters
	}
	if b := s.budget.Load(); b != nil {
		bs := b.Status()
		st.Budget = &bs
	}
	if fn := s.service.Load(); fn != nil {
		st.Service = (*fn)()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}
