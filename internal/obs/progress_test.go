package obs

import (
	"sync"
	"testing"
)

func TestTrackerAggregatesCells(t *testing.T) {
	tr := NewTracker()
	a := tr.StartCell("fig6a/surfnet/greedy", 100)
	b := tr.StartCell("fig6a/purify/greedy", 50)
	a.TrialDone(30)
	a.TrialDone(10)
	b.TrialDone(50)
	b.Finish()

	st := tr.Status()
	if st.CellsStarted != 2 || st.CellsDone != 1 {
		t.Fatalf("cells started=%d done=%d, want 2/1", st.CellsStarted, st.CellsDone)
	}
	if st.TrialsDone != 90 || st.TrialsTotal != 150 {
		t.Fatalf("trials done=%d total=%d, want 90/150", st.TrialsDone, st.TrialsTotal)
	}
	if len(st.Cells) != 2 {
		t.Fatalf("got %d cell statuses, want 2", len(st.Cells))
	}
	if st.Cells[0].Label != "fig6a/surfnet/greedy" || !st.Cells[0].Active {
		t.Fatalf("first cell %+v, want active fig6a/surfnet/greedy", st.Cells[0])
	}
	if st.Cells[1].Active {
		t.Fatalf("finished cell still active: %+v", st.Cells[1])
	}
	if st.TrialsPerSec <= 0 {
		t.Fatalf("trials/sec = %v, want > 0 after completed trials", st.TrialsPerSec)
	}
	if st.ETASeconds <= 0 {
		t.Fatalf("ETA = %v, want > 0 with 60 trials remaining", st.ETASeconds)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	c := tr.StartCell("x", 10)
	if c != nil {
		t.Fatal("nil tracker returned non-nil cell")
	}
	c.TrialDone(5)
	c.Finish()
	if st := tr.Status(); st.CellsStarted != 0 || st.TrialsDone != 0 {
		t.Fatalf("nil tracker status %+v, want zero", st)
	}
}

func TestCellConcurrentTrialDone(t *testing.T) {
	tr := NewTracker()
	c := tr.StartCell("race", 1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				c.TrialDone(1)
			}
		}()
	}
	// Concurrent Status reads while workers report.
	for i := 0; i < 50; i++ {
		_ = tr.Status()
	}
	wg.Wait()
	if st := tr.Status(); st.TrialsDone != 1000 {
		t.Fatalf("trials done = %d, want 1000", st.TrialsDone)
	}
}

func TestTrackerETAZeroWhenComplete(t *testing.T) {
	tr := NewTracker()
	c := tr.StartCell("done", 10)
	c.TrialDone(10)
	c.Finish()
	if st := tr.Status(); st.ETASeconds != 0 {
		t.Fatalf("ETA = %v for a complete sweep, want 0", st.ETASeconds)
	}
}
