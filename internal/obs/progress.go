package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"surfnet/internal/telemetry"
)

// Tracker aggregates live sweep progress for the /status endpoint. The
// experiment harness declares a Cell per sweep cell as it reaches it, the
// trial pool reports completions into the cell (internal/sim threads the
// cell through the run context), and Status snapshots the whole sweep:
// per-cell completion, throughput in trials/sec, and the ETA over the trials
// declared so far.
//
// A nil *Tracker is the disabled default: StartCell returns a nil *Cell
// whose methods no-op, so the harness pays one branch when progress
// reporting is off.
type Tracker struct {
	mu      sync.Mutex
	cells   []*Cell
	started time.Time // first StartCell: rate excludes setup time
}

// NewTracker returns an empty progress tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Cell tracks one sweep cell (one figure cell, one threshold point, one
// resilience intensity x design). Safe for concurrent use: the trial pool's
// workers all report into the same cell.
type Cell struct {
	label    string
	total    int64
	done     atomic.Int64
	finished atomic.Bool
}

// StartCell declares a sweep cell of the given expected trial count and
// returns its live handle. On a nil Tracker it returns nil, which is safe to
// use (and to compare against nil to skip wiring).
func (t *Tracker) StartCell(label string, trials int) *Cell {
	if t == nil {
		return nil
	}
	c := &Cell{label: label, total: int64(trials)}
	t.mu.Lock()
	if t.started.IsZero() {
		t.started = time.Now()
	}
	t.cells = append(t.cells, c)
	t.mu.Unlock()
	return c
}

// TrialDone records n completed trials. It implements the sim.Progress
// interface, so a *Cell threads straight into sim.WithProgress.
func (c *Cell) TrialDone(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.done.Add(int64(n))
}

// Finish marks the cell complete. Idempotent.
func (c *Cell) Finish() {
	if c == nil {
		return
	}
	c.finished.Store(true)
}

// CellStatus is the frozen state of one sweep cell.
type CellStatus struct {
	Label  string `json:"label"`
	Done   int64  `json:"done"`
	Total  int64  `json:"total"`
	Active bool   `json:"active"`
}

// Status is the live progress report served at /status. TrialsTotal and the
// ETA cover the cells declared so far — sweeps declare cells as they reach
// them, so both grow as the sweep uncovers more work.
type Status struct {
	Ready         bool             `json:"ready"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	CellsStarted  int              `json:"cells_started"`
	CellsDone     int              `json:"cells_done"`
	TrialsDone    int64            `json:"trials_done"`
	TrialsTotal   int64            `json:"trials_total"`
	TrialsPerSec  float64          `json:"trials_per_sec"`
	ETASeconds    float64          `json:"eta_seconds"`
	Cells         []CellStatus     `json:"cells,omitempty"`
	Counters      map[string]int64 `json:"counters,omitempty"`
	// Budget reports SLO burn when a latency budget is attached to the
	// server (see telemetry.Budget); omitted otherwise.
	Budget *telemetry.BudgetStatus `json:"budget,omitempty"`
	// Service embeds the resident daemon's snapshot (queue depth, admission
	// and shed counters, per-tenant accounting) when one is attached via
	// Server.SetServiceStatus; omitted in batch runs.
	Service any `json:"service,omitempty"`
}

// Status snapshots the tracker. On a nil Tracker it returns the zero Status.
func (t *Tracker) Status() Status {
	var st Status
	if t == nil {
		return st
	}
	t.mu.Lock()
	cells := append([]*Cell(nil), t.cells...)
	started := t.started
	t.mu.Unlock()
	for _, c := range cells {
		done := c.done.Load()
		finished := c.finished.Load()
		st.CellsStarted++
		if finished {
			st.CellsDone++
		}
		st.TrialsDone += done
		st.TrialsTotal += c.total
		st.Cells = append(st.Cells, CellStatus{
			Label: c.label, Done: done, Total: c.total, Active: !finished,
		})
	}
	if !started.IsZero() {
		if elapsed := time.Since(started).Seconds(); elapsed > 0 && st.TrialsDone > 0 {
			st.TrialsPerSec = float64(st.TrialsDone) / elapsed
		}
	}
	if st.TrialsPerSec > 0 && st.TrialsTotal > st.TrialsDone {
		st.ETASeconds = float64(st.TrialsTotal-st.TrialsDone) / st.TrialsPerSec
	}
	return st
}
