package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"surfnet/internal/telemetry"
)

// TestReadyzResidentLifecycle is the regression test for resident-mode
// readiness ordering: /readyz must stay 503 after construction and route
// mounting, report ready only on the explicit SetReady(true) a daemon issues
// once it owns state, and flip back to 503 the moment draining begins — while
// /healthz stays 200 throughout (the process is alive, just not admitting).
func TestReadyzResidentLifecycle(t *testing.T) {
	s := NewServer(telemetry.NewRegistry(), NewTracker())
	s.Handle("/v1/transfers", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after SetReady = %d, want 200", got)
	}
	if got := get("/v1/transfers"); got != http.StatusAccepted {
		t.Fatalf("mounted API route = %d, want 202", got)
	}
	// Drain begins: the daemon flips ready off while in-flight work finishes.
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", got)
	}
}

func TestStatusEmbedsServiceSnapshot(t *testing.T) {
	s := NewServer(telemetry.NewRegistry(), NewTracker())
	type svc struct {
		QueueDepth int `json:"queue_depth"`
		Admitted   int `json:"admitted"`
	}
	s.SetServiceStatus(func() any { return svc{QueueDepth: 3, Admitted: 41} })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Service *svc `json:"service"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service == nil || st.Service.QueueDepth != 3 || st.Service.Admitted != 41 {
		t.Fatalf("service snapshot = %+v, want queue_depth 3 admitted 41", st.Service)
	}

	s.SetServiceStatus(nil)
	resp2, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2["service"]; ok {
		t.Fatal("service key should be omitted after detaching the snapshot")
	}
}
