// Package obs is the live observability plane: an embedded HTTP server
// exposing the telemetry registry in Prometheus text exposition format
// (/metrics), process health and readiness (/healthz, /readyz), runtime
// profiling (/debug/pprof/), and live sweep progress (/status), plus the
// progress Tracker the experiment harness feeds.
//
// The package only reads telemetry state; it never perturbs results. All
// entry points are nil-safe in the same spirit as internal/telemetry: a nil
// *Tracker or nil *Cell no-ops, so uninstrumented runs pay one branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"surfnet/internal/telemetry"
)

// MetricPrefix namespaces every exported metric, per the Prometheus naming
// convention of one prefix per application.
const MetricPrefix = "surfnet_"

// promName maps a dot-namespaced telemetry instrument name onto a legal
// Prometheus metric name: the application prefix plus the name with every
// character outside [a-zA-Z0-9_] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(MetricPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float64 the way the exposition format expects,
// including the special values +Inf, -Inf, and NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters with the _total suffix, gauges
// verbatim, and histograms as cumulative _bucket series with _sum and _count.
// Output is sorted by instrument name, so successive scrapes of an idle
// registry are byte-identical.
func WritePrometheus(w io.Writer, s telemetry.Snapshot) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Telemetry buckets are per-interval counts; Prometheus buckets are
		// cumulative, so accumulate the running sum.
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promFloat(bk.Le), cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
