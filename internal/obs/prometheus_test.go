package obs

import (
	"math"
	"strings"
	"testing"

	"surfnet/internal/telemetry"
)

func TestWritePrometheusRendersAllInstrumentKinds(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.trials").Add(42)
	reg.Counter("core.timeouts").Inc()
	reg.Gauge("net.active-links").Set(3.5)
	h := reg.Histogram("decoder.surfnet.decode_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(99) // overflow bucket

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	want := []string{
		"# TYPE surfnet_core_timeouts_total counter\n" +
			"surfnet_core_timeouts_total 1\n",
		"surfnet_sim_trials_total 42\n",
		"# TYPE surfnet_net_active_links gauge\n" +
			"surfnet_net_active_links 3.5\n",
		"# TYPE surfnet_decoder_surfnet_decode_seconds histogram\n",
		`surfnet_decoder_surfnet_decode_seconds_bucket{le="0.001"} 1` + "\n",
		// Cumulative: the 0.01 bucket includes the 0.001 bucket's observation.
		`surfnet_decoder_surfnet_decode_seconds_bucket{le="0.01"} 2` + "\n",
		`surfnet_decoder_surfnet_decode_seconds_bucket{le="+Inf"} 3` + "\n",
		"surfnet_decoder_surfnet_decode_seconds_count 3\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing %q\ngot:\n%s", w, out)
		}
	}
	if strings.Contains(out, "-") || strings.Contains(out, ".decode") {
		t.Errorf("unsanitized metric name in exposition:\n%s", out)
	}
}

func TestWritePrometheusEveryInstrumentAppears(t *testing.T) {
	reg := telemetry.NewRegistry()
	names := []string{"a.one", "b.two", "c.three", "d.four"}
	for _, n := range names {
		reg.Counter(n).Inc()
	}
	reg.Gauge("g.one").Set(1)
	reg.Histogram("h.one", []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := WritePrometheus(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, n := range names {
		if !strings.Contains(out, promName(n)+"_total ") {
			t.Errorf("counter %q missing from exposition", n)
		}
	}
	for _, pn := range []string{"surfnet_g_one ", "surfnet_h_one_count "} {
		if !strings.Contains(out, pn) {
			t.Errorf("%q missing from exposition", pn)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	reg := telemetry.NewRegistry()
	for _, n := range []string{"z.last", "a.first", "m.mid"} {
		reg.Counter(n).Inc()
	}
	var first, second strings.Builder
	if err := WritePrometheus(&first, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&second, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("successive scrapes of an idle registry differ")
	}
	a := strings.Index(first.String(), "surfnet_a_first_total")
	z := strings.Index(first.String(), "surfnet_z_last_total")
	if a == -1 || z == -1 || a > z {
		t.Fatalf("counters not sorted by name:\n%s", first.String())
	}
}

func TestPromFloatSpecials(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	}
	for in, want := range cases {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}
