package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// batchTrialValue derives a deterministic per-trial value so result placement
// can be asserted exactly.
func batchTrialValue(i int) int { return i*i + 7 }

// TestRunBatchOrderAndDeterminism checks results land at their global trial
// indices and are identical for every worker count, including sizes that
// leave a short tail batch.
func TestRunBatchOrderAndDeterminism(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		var want []int
		for i := 0; i < n; i++ {
			want = append(want, batchTrialValue(i))
		}
		for _, workers := range []int{1, 3, 16} {
			got, err := RunBatch(context.Background(), n, 64, workers,
				func(b Batch, _ *Worker) ([]int, error) {
					out := make([]int, b.Len)
					for k := range out {
						out[k] = batchTrialValue(b.Start + k)
					}
					return out, nil
				})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: %d results", n, workers, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: result[%d] = %d, want %d", n, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRunBatchShapes pins the Batch slab geometry handed to the batch
// function.
func TestRunBatchShapes(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]Batch{}
	_, err := RunBatch(context.Background(), 150, 64, 4, func(b Batch, _ *Worker) ([]struct{}, error) {
		mu.Lock()
		seen[b.Index] = b
		mu.Unlock()
		return make([]struct{}, b.Len), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Batch{{0, 0, 64}, {1, 64, 64}, {2, 128, 22}}
	if len(seen) != len(want) {
		t.Fatalf("saw %d batches, want %d", len(seen), len(want))
	}
	for _, w := range want {
		if seen[w.Index] != w {
			t.Errorf("batch %d = %+v, want %+v", w.Index, seen[w.Index], w)
		}
	}
}

// TestRunBatchValidation covers the argument and result-length contracts.
func TestRunBatchValidation(t *testing.T) {
	if _, err := RunBatch(context.Background(), -1, 64, 1, func(Batch, *Worker) ([]int, error) { return nil, nil }); err == nil {
		t.Error("negative trial count accepted")
	}
	if _, err := RunBatch(context.Background(), 10, 0, 1, func(Batch, *Worker) ([]int, error) { return nil, nil }); err == nil {
		t.Error("zero batch size accepted")
	}
	for _, workers := range []int{1, 4} {
		_, err := RunBatch(context.Background(), 100, 64, workers, func(b Batch, _ *Worker) ([]int, error) {
			return make([]int, b.Len-1), nil
		})
		if err == nil || !strings.Contains(err.Error(), "results") {
			t.Errorf("workers=%d: short result slice not rejected: %v", workers, err)
		}
	}
}

// TestRunBatchFirstError checks the lowest-indexed failing batch wins, as in
// Run.
func TestRunBatchFirstError(t *testing.T) {
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := RunBatch(context.Background(), 64*6, 64, workers, func(b Batch, _ *Worker) ([]int, error) {
			if b.Index >= 2 {
				return nil, fmt.Errorf("batch %d: %w", b.Index, wantErr)
			}
			return make([]int, b.Len), nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestRunBatchProgress checks one TrialDone per batch carrying the slab
// length, summing to n.
func TestRunBatchProgress(t *testing.T) {
	for _, workers := range []int{1, 3} {
		p := &countingProgress{}
		ctx := WithProgress(context.Background(), p)
		const n = 150
		if _, err := RunBatch(ctx, n, 64, workers, func(b Batch, _ *Worker) ([]int, error) {
			return make([]int, b.Len), nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := p.total.Load(); got != n {
			t.Fatalf("workers=%d: reported %d trials, want %d", workers, got, n)
		}
		if got := p.calls.Load(); got != 3 {
			t.Fatalf("workers=%d: %d TrialDone calls, want 3", workers, got)
		}
	}
}

// TestRunSuppressesProgressAfterCancel is the regression test for the
// progress over-count: a trial that completes after the pool's context was
// cancelled has its result discarded on the error return, so it must not be
// reported to the progress sink either. The cancellation is sequenced through
// the trial functions themselves, so the test is deterministic under -race.
func TestRunSuppressesProgressAfterCancel(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p := &countingProgress{}
		_, err := Run(WithProgress(ctx, p), 4, 1, func(i int, _ *Worker) (int, error) {
			if i == 0 {
				// Cancel while the trial is in flight: it completes, but its
				// result is discarded by the next loop iteration's ctx check.
				cancel()
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := p.total.Load(); got != 0 {
			t.Fatalf("suppressed path reported %d trials, want 0", got)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p := &countingProgress{}
		gate := make(chan struct{})
		_, err := Run(WithProgress(ctx, p), 8, 2, func(i int, _ *Worker) (int, error) {
			if i == 0 {
				cancel()    // pool is now cancelled...
				close(gate) // ...and only then may any sibling finish
				return 0, nil
			}
			<-gate
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := p.total.Load(); got != 0 {
			t.Fatalf("post-cancel trials reported %d completions, want 0", got)
		}
	})
	t.Run("batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p := &countingProgress{}
		_, err := RunBatch(WithProgress(ctx, p), 128, 64, 1, func(b Batch, _ *Worker) ([]int, error) {
			if b.Index == 0 {
				cancel()
			}
			return make([]int, b.Len), nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := p.total.Load(); got != 0 {
			t.Fatalf("cancelled batch run reported %d trials, want 0", got)
		}
	})
}
