package sim

import (
	"context"
	"sync/atomic"
	"testing"
)

type countingProgress struct {
	calls atomic.Int64
	total atomic.Int64
}

func (p *countingProgress) TrialDone(n int) {
	p.calls.Add(1)
	p.total.Add(int64(n))
}

// TestRunReportsProgress checks both the serial and pooled paths report every
// completed trial exactly once.
func TestRunReportsProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := &countingProgress{}
		ctx := WithProgress(context.Background(), p)
		const n = 50
		if _, err := Run(ctx, n, workers, func(i int, _ *Worker) (int, error) {
			return i, nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := p.total.Load(); got != n {
			t.Fatalf("workers=%d: reported %d trials, want %d", workers, got, n)
		}
		if got := p.calls.Load(); got != n {
			t.Fatalf("workers=%d: %d TrialDone calls, want %d", workers, got, n)
		}
	}
}

// TestRunNoProgressAttached checks the no-reporter path stays silent.
func TestRunNoProgressAttached(t *testing.T) {
	if _, err := Run(context.Background(), 10, 2, func(i int, _ *Worker) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWithProgressNilDetaches checks a nil reporter detaches a previous one.
func TestWithProgressNilDetaches(t *testing.T) {
	p := &countingProgress{}
	ctx := WithProgress(context.Background(), p)
	ctx = WithProgress(ctx, nil)
	if _, err := Run(ctx, 5, 1, func(i int, _ *Worker) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if p.total.Load() != 0 {
		t.Fatalf("detached reporter still received %d trials", p.total.Load())
	}
}
