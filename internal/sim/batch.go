package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Batch describes one contiguous slab of trials handed to a RunBatch
// function. Index — never the worker id — is the batch's identity for the
// determinism contract: the batch function derives its randomness as
// root.SplitN("batch", b.Index), so results are byte-identical for every
// worker count.
type Batch struct {
	// Index is the batch number in [0, ceil(n/size)).
	Index int
	// Start is the global index of the batch's first trial.
	Start int
	// Len is the number of trials in the batch: size for every batch
	// except possibly the last.
	Len int
}

// RunBatch executes trials 0..n-1 in contiguous batches of size trials
// (the last batch may be shorter) on a pool of workers, returning per-trial
// results in trial order. It is Run with a coarser work unit, built for the
// bit-packed engine in internal/batch where one call decodes up to 64 lanes:
// the batch function returns exactly b.Len results, which land at
// results[b.Start:]. Progress reporters attached with WithProgress receive
// one TrialDone(b.Len) per completed batch, suppressed once the pool is
// cancelled, and the determinism, cancellation, and first-error semantics
// are those of Run.
func RunBatch[T any](ctx context.Context, n, size, workers int, batch func(b Batch, w *Worker) ([]T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: negative trial count %d", n)
	}
	if size <= 0 {
		return nil, fmt.Errorf("sim: non-positive batch size %d", size)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	nb := (n + size - 1) / size
	workers = Normalize(workers)
	if workers > nb {
		workers = nb
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	progress := progressFrom(ctx)
	mk := func(bi int) Batch {
		b := Batch{Index: bi, Start: bi * size, Len: size}
		if b.Start+b.Len > n {
			b.Len = n - b.Start
		}
		return b
	}
	run := func(b Batch, w *Worker) error {
		vs, err := batch(b, w)
		if err != nil {
			return err
		}
		if len(vs) != b.Len {
			return fmt.Errorf("sim: batch %d returned %d results, want %d", b.Index, len(vs), b.Len)
		}
		copy(results[b.Start:b.Start+b.Len], vs)
		return nil
	}

	if workers == 1 {
		w := &Worker{id: 0}
		for bi := 0; bi < nb; bi++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b := mk(bi)
			if err := run(b, w); err != nil {
				return nil, err
			}
			if progress != nil && ctx.Err() == nil {
				progress.TrialDone(b.Len)
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = nb
	)
	fail := func(bi int, err error) {
		mu.Lock()
		if bi < firstIdx {
			firstIdx, firstErr = bi, err
		}
		mu.Unlock()
		cancel()
	}
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{id: id}
			for {
				bi := int(next.Add(1)) - 1
				if bi >= nb || ctx.Err() != nil {
					return
				}
				b := mk(bi)
				if err := run(b, w); err != nil {
					fail(bi, err)
					return
				}
				if progress != nil && ctx.Err() == nil {
					progress.TrialDone(b.Len)
				}
			}
		}(id)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
