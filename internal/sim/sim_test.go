package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"surfnet/internal/rng"
)

// TestRunOrderAndDeterminism checks the core contract: results arrive in
// trial order and are identical for every worker count, including counts
// larger than the trial count.
func TestRunOrderAndDeterminism(t *testing.T) {
	const n = 64
	root := rng.New(7)
	trial := func(i int, _ *Worker) (float64, error) {
		return root.SplitN("trial", i).Float64(), nil
	}
	want, err := Run(context.Background(), n, 1, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 0, n + 5} {
		got, err := Run(context.Background(), n, workers, trial)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	if _, err := Run(context.Background(), -1, 4, func(int, *Worker) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n should fail")
	}
	out, err := Run(context.Background(), 0, 4, func(int, *Worker) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: %v, %v", out, err)
	}
	// A nil context defaults to Background.
	if _, err := Run(nil, 3, 2, func(i int, _ *Worker) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRunFirstError checks that the reported error is the lowest-indexed
// failure and that later trials stop being scheduled after cancellation.
func TestRunFirstError(t *testing.T) {
	const n = 200
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Run(context.Background(), n, workers, func(i int, _ *Worker) (int, error) {
			ran.Add(1)
			if i >= 10 {
				return 0, fmt.Errorf("trial %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Serial must stop exactly at the first failure; parallel must not
		// run the whole range.
		if workers == 1 && ran.Load() != 11 {
			t.Fatalf("serial ran %d trials, want 11", ran.Load())
		}
		if ran.Load() >= n {
			t.Fatalf("workers=%d: cancellation did not stop scheduling (%d ran)", workers, ran.Load())
		}
		if workers == 1 && err.Error() != "trial 10: boom" {
			t.Fatalf("serial error = %q", err)
		}
	}
	// With many workers racing, the reported index is still the smallest
	// among observed failures — which includes the deterministic earliest
	// failing trial 0 here.
	_, err := Run(context.Background(), n, 8, func(i int, _ *Worker) (int, error) {
		return 0, fmt.Errorf("trial %d: %w", i, boom)
	})
	if err == nil || err.Error() != "trial 0: boom" {
		t.Fatalf("err = %v, want trial 0", err)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := Run(ctx, 50, workers, func(i int, _ *Worker) (int, error) { return i, nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

// TestWorkerScratch checks that scratch values are per-worker (at most one
// per worker id), typed through Scratch, and reused across trials.
func TestWorkerScratch(t *testing.T) {
	type arena struct{ hits int }
	const n, workers = 100, 4
	var created atomic.Int64
	ids := make([]atomic.Int64, workers)
	_, err := Run(context.Background(), n, workers, func(i int, w *Worker) (int, error) {
		if w.ID() < 0 || w.ID() >= workers {
			t.Errorf("worker id %d out of range", w.ID())
		}
		a := Scratch(w, "arena", func() *arena {
			created.Add(1)
			return &arena{}
		})
		a.hits++
		ids[w.ID()].Add(1)
		return a.hits, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := created.Load(); c < 1 || c > workers {
		t.Fatalf("created %d arenas, want 1..%d", c, workers)
	}
	var total int64
	for i := range ids {
		total += ids[i].Load()
	}
	if total != n {
		t.Fatalf("trials across workers = %d, want %d", total, n)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(0) = %d", got)
	}
	if got := Normalize(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Normalize(-3) = %d", got)
	}
	if got := Normalize(5); got != 5 {
		t.Fatalf("Normalize(5) = %d", got)
	}
}

// BenchmarkRunOverhead measures the engine's per-trial dispatch cost with a
// trivial trial body, serial vs pooled.
func BenchmarkRunOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), 256, workers, func(i int, _ *Worker) (int, error) {
					return i * i, nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
