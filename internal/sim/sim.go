// Package sim is the deterministic parallel trial engine behind every Monte
// Carlo loop in the repository: the Fig. 6/7 network cells, the Fig. 8
// decoder threshold study, the ablation sweeps, and the benchmarks.
//
// The determinism contract is the whole point of the package: a trial's
// randomness must derive from the root seed and the trial index — never from
// worker identity, scheduling order, or time — so that Run returns
// byte-identical results for every worker count, including 1. Run enforces
// the half it can enforce: results are collected into a slice indexed by
// trial, so the caller's reduction always folds them in trial order no
// matter which worker finished first. The caller keeps the other half by
// deriving each trial's *rng.Source inside the trial function from the
// trial index (rng.Source.SplitN("trial", i) on a root stream).
//
// Workers exist to amortize allocation, not to carry state that matters:
// each goroutine owns a Worker whose scratch arena holds reusable buffers
// (decoder scratch, sampled frames, syndrome slices) so hot loops stop
// allocating per trial. Anything stored in a Worker must be recomputed from
// the trial's inputs before use — it is a cache, never an input.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker is the per-goroutine context handed to every trial. It is owned by
// exactly one goroutine for the duration of a Run, so its scratch values
// need no locking.
type Worker struct {
	id      int
	scratch map[string]any
}

// ID reports the worker's index in [0, workers). It identifies the scratch
// arena only; deriving randomness from it breaks the determinism contract.
func (w *Worker) ID() int { return w.id }

// Value returns the worker-local value stored under key, creating it with
// init on first use. Values live for the whole Run and are reused across all
// trials this worker executes.
func (w *Worker) Value(key string, init func() any) any {
	if v, ok := w.scratch[key]; ok {
		return v
	}
	if w.scratch == nil {
		w.scratch = make(map[string]any)
	}
	v := init()
	w.scratch[key] = v
	return v
}

// Scratch returns the worker-local value of type S under key, creating it
// with init on first use. It is the typed convenience wrapper over
// Worker.Value for per-worker arenas (decoder scratch, sample buffers).
func Scratch[S any](w *Worker, key string, init func() S) S {
	return w.Value(key, func() any { return init() }).(S)
}

// Normalize maps a non-positive worker count to runtime.GOMAXPROCS(0), the
// default of every -workers flag.
func Normalize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Progress receives live trial-completion counts from Run. Implementations
// must be safe for concurrent use: the pool's workers all report into the
// same reporter. Progress is observation only — it sees completion counts,
// never results, so it cannot perturb the determinism contract.
type Progress interface {
	TrialDone(n int)
}

type progressKey struct{}

// WithProgress attaches a progress reporter to the context; every Run under
// that context reports trial completions into it. A nil reporter detaches.
func WithProgress(ctx context.Context, p Progress) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, progressKey{}, p)
}

// progressFrom extracts the reporter attached by WithProgress, or nil.
func progressFrom(ctx context.Context) Progress {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(progressKey{}).(Progress)
	return p
}

// Run executes trials 0..n-1 on a pool of workers and returns their results
// in trial order. workers <= 0 selects runtime.GOMAXPROCS(0); the pool never
// exceeds n. The results are identical for every worker count provided the
// trial function honors the package determinism contract.
//
// On failure Run cancels the pool's context, waits for in-flight trials to
// drain, and returns the error of the lowest-indexed failed trial it
// observed (with one worker this is exactly the serial first error). The
// caller's ctx cancels the run the same way.
func Run[T any](ctx context.Context, n, workers int, trial func(i int, w *Worker) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("sim: negative trial count %d", n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Normalize(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	progress := progressFrom(ctx)

	if workers == 1 {
		w := &Worker{id: 0}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := trial(i, w)
			if err != nil {
				return nil, err
			}
			results[i] = v
			// Report only while the run is still live: a trial that
			// completes after the caller's ctx was cancelled has its
			// result discarded on return, so counting it would let
			// progress exceed the kept-trial count.
			if progress != nil && ctx.Err() == nil {
				progress.TrialDone(1)
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = n
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &Worker{id: id}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := trial(i, w)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = v
				// A worker that passed the ctx check above can finish its
				// trial after a sibling failed and cancelled the pool; its
				// result is discarded on the error return, so suppress the
				// progress report too — otherwise /status trial counts
				// exceed the number of trials whose results are kept.
				if progress != nil && ctx.Err() == nil {
					progress.TrialDone(1)
				}
			}
		}(id)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
