package lp

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

// perturbed builds the TestSimple2D program with the first RHS shifted.
func warmBase(delta float64) *Problem {
	p := NewMaximize(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LessEq, RHS: 4 + delta})
	p.AddConstraint(Constraint{Terms: []Term{{0, 1}, {1, 3}}, Sense: LessEq, RHS: 6 + delta})
	return p
}

func TestSolveFromNilBasisIsColdSolve(t *testing.T) {
	p := warmBase(0)
	cold := solveOK(t, p)
	warm, err := warmBase(0).SolveFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarted {
		t.Error("nil basis must not report a warm start")
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objective %v != cold %v", warm.Objective, cold.Objective)
	}
}

func TestSolveFromReusesBasis(t *testing.T) {
	cold := solveOK(t, warmBase(0))
	if cold.Basis == nil {
		t.Fatal("optimal solve should export its basis")
	}
	// Re-solve a slightly perturbed instance from the old optimal basis:
	// same vertex structure, so the warm solve should install the basis,
	// skip phase 1, and land on the shifted optimum with zero extra pivots
	// beyond the installation.
	p := warmBase(0.5)
	warm, err := p.SolveFrom(cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("status = %v", warm.Status)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("expected a warm start")
	}
	feasCheck(t, p, warm.X)
	want := solveOK(t, warmBase(0.5))
	if math.Abs(warm.Objective-want.Objective) > 1e-6 {
		t.Fatalf("warm objective %v != cold %v", warm.Objective, want.Objective)
	}
}

func TestSolveFromShapeMismatchFallsBack(t *testing.T) {
	p := warmBase(0)
	warm, err := p.SolveFrom([]int{0}) // wrong row count
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarted {
		t.Error("shape mismatch must fall back to cold solve")
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-12) > 1e-6 {
		t.Fatalf("fallback solve wrong: %v obj %v", warm.Status, warm.Objective)
	}
}

func TestSolveFromSingularBasisFallsBack(t *testing.T) {
	p := warmBase(0)
	// Duplicate column: basis matrix singular after first install pivot.
	warm, err := p.SolveFrom([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarted {
		t.Error("singular basis must fall back")
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-12) > 1e-6 {
		t.Fatalf("fallback solve wrong: %v obj %v", warm.Status, warm.Objective)
	}
}

func TestSolveFromInfeasibleVertexFallsBack(t *testing.T) {
	cold := solveOK(t, warmBase(0))
	// Tighten the second constraint far below the old vertex: the stale
	// basis is primal-infeasible, so SolveFrom must cold-solve.
	p := NewMaximize(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LessEq, RHS: 4})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 3}}, Sense: LessEq, RHS: 1})
	warm, err := p.SolveFrom(cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarted {
		t.Error("infeasible vertex must fall back")
	}
	if warm.Status != Optimal {
		t.Fatalf("status = %v", warm.Status)
	}
	feasCheck(t, p, warm.X)
}

func TestSolveFromArtificialBasisColumnFallsBack(t *testing.T) {
	// An equality row can leave a redundant-row artificial in the exported
	// basis; feeding such a basis to SolveFrom must fall back, not install
	// an artificial column.
	p := NewMaximize(1)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 2})
	sol := solveOK(t, p)
	q := NewMaximize(1)
	q.SetObjective(0, 1)
	mustAdd(t, q, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 2})
	// Column 2 would be the first artificial slot if one existed; it is out
	// of the structural+slack range for this instance.
	warm, err := q.SolveFrom([]int{len(sol.X) + 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmStarted {
		t.Error("out-of-range basis column must fall back")
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-2) > 1e-9 {
		t.Fatalf("fallback solve wrong: %v obj %v", warm.Status, warm.Objective)
	}
}

// TestSolveFromRandomPerturbations re-solves random box LPs from the previous
// basis under small RHS perturbations and checks the warm objective always
// matches a cold solve — warm starting may pick a different optimal vertex
// but never a different optimum.
func TestSolveFromRandomPerturbations(t *testing.T) {
	src := rng.New(424242)
	for trial := 0; trial < 30; trial++ {
		stream := src.SplitN("warm", trial)
		n := 2 + stream.IntN(4)
		m := 1 + stream.IntN(4)
		build := func(delta float64) *Problem {
			s := src.SplitN("warmbuild", trial)
			p := NewMaximize(n)
			for v := 0; v < n; v++ {
				p.SetObjective(v, s.Float64())
			}
			for c := 0; c < m; c++ {
				terms := make([]Term, 0, n)
				for v := 0; v < n; v++ {
					terms = append(terms, Term{Var: v, Coeff: s.Float64()})
				}
				p.AddConstraint(Constraint{Terms: terms, Sense: LessEq, RHS: 1 + s.Float64() + delta})
			}
			return p
		}
		base, err := build(0).Solve()
		if err != nil || base.Status != Optimal {
			t.Fatalf("trial %d: base %v %v", trial, base.Status, err)
		}
		const delta = 0.05
		cold, err := build(delta).Solve()
		if err != nil || cold.Status != Optimal {
			t.Fatalf("trial %d: cold %v %v", trial, cold.Status, err)
		}
		p := build(delta)
		warm, err := p.SolveFrom(base.Basis)
		if err != nil || warm.Status != Optimal {
			t.Fatalf("trial %d: warm %v %v", trial, warm.Status, err)
		}
		feasCheck(t, p, warm.X)
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: warm objective %v != cold %v (warmStarted=%v)",
				trial, warm.Objective, cold.Objective, warm.Stats.WarmStarted)
		}
	}
}

// TestSolveFromSavesPhase1 pins the point of warm starting: on an unchanged
// instance the warm solve performs no phase-1 pivots beyond basis
// installation and reaches optimality immediately.
func TestSolveFromSavesPhase1(t *testing.T) {
	// Use >= rows so the cold solve needs a genuine phase 1.
	build := func() *Problem {
		p := NewMinimize(3)
		p.SetObjective(0, 2)
		p.SetObjective(1, 3)
		p.SetObjective(2, 1)
		mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}, {2, 1}}, Sense: GreaterEq, RHS: 6})
		mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 2}}, Sense: GreaterEq, RHS: 4})
		mustAdd(t, p, Constraint{Terms: []Term{{2, 1}}, Sense: LessEq, RHS: 5})
		return p
	}
	cold := solveOK(t, build())
	if cold.Stats.Phase1Pivots == 0 {
		t.Fatal("precondition: cold solve should need phase 1")
	}
	warm, err := build().SolveFrom(cold.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.WarmStarted {
		t.Fatal("expected warm start on identical instance")
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("objective %v != %v", warm.Objective, cold.Objective)
	}
	// Installation costs at most one pivot per row; phase 2 should then be
	// already optimal (0 further pivots) on an unchanged instance.
	if got := warm.Stats.Pivots; got > len(cold.Basis) {
		t.Fatalf("warm solve used %d pivots, want <= %d", got, len(cold.Basis))
	}
}
