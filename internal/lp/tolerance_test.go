package lp

import (
	"testing"
)

// TestPhase1FeasibilityScale is the regression test for the unified
// tolerance scheme: an ill-conditioned instance whose entire geometry lives
// around 1e-7. The constraint pair x <= 1e-7, x >= 6e-7 is infeasible by
// five times its own magnitude, but the phase-1 artificial residual (5e-7)
// stayed under the old absolute -1e-6 cutoff, so the mixed scales disagreed:
// entering columns were judged at 1e-7 while feasibility was judged at 1e-6,
// and the solver declared the system feasible. The RHS-scaled test
// (feasRelTol * max(1, max|RHS|) = 1e-7 here) classifies it correctly.
func TestPhase1FeasibilityScale(t *testing.T) {
	p := NewMaximize(1)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 1e-7})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: GreaterEq, RHS: 6e-7})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v (objective %v), want infeasible", sol.Status, sol.Objective)
	}
}

// TestPhase1FeasibilityScaleLarge checks the other direction of the relative
// test: on a large-magnitude instance, a genuinely feasible system with an
// equality constraint in the 1e6 range must not be rejected by a tolerance
// that fails to scale up (phase-1 elimination residue grows with the RHS).
func TestPhase1FeasibilityScaleLarge(t *testing.T) {
	p := NewMinimize(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: Equal, RHS: 3.7e6})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 2.9e6})
	sol := solveOK(t, p)
	if got, want := sol.Objective, 3.7e6; got < want*(1-1e-9) || got > want*(1+1e-9) {
		t.Fatalf("objective = %v, want %v", got, want)
	}
}

// TestBoundaryFeasibleNearTolerance pins a system feasible exactly at its
// bound: x <= a, x >= a must stay Feasible for small a (no artificial mass
// remains, whatever the scale).
func TestBoundaryFeasibleNearTolerance(t *testing.T) {
	for _, a := range []float64{1e-7, 1e-3, 1, 1e5} {
		p := NewMaximize(1)
		p.SetObjective(0, 1)
		mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: a})
		mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: GreaterEq, RHS: a})
		sol := solveOK(t, p)
		if diff := sol.Objective - a; diff > 1e-9*a || diff < -1e-9*a {
			t.Fatalf("a=%v: objective %v", a, sol.Objective)
		}
	}
}
