package lp

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

func solveOK(t *testing.T, p *Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

// feasCheck verifies that sol.X satisfies every constraint of p within tol.
func feasCheck(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for i, c := range p.constraints {
		lhs := 0.0
		for _, tm := range c.Terms {
			lhs += tm.Coeff * x[tm.Var]
		}
		switch c.Sense {
		case LessEq:
			if lhs > c.RHS+1e-6 {
				t.Fatalf("constraint %d violated: %v <= %v", i, lhs, c.RHS)
			}
		case GreaterEq:
			if lhs < c.RHS-1e-6 {
				t.Fatalf("constraint %d violated: %v >= %v", i, lhs, c.RHS)
			}
		case Equal:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				t.Fatalf("constraint %d violated: %v = %v", i, lhs, c.RHS)
			}
		}
	}
	for v, xv := range x {
		if xv < -1e-7 {
			t.Fatalf("variable %d negative: %v", v, xv)
		}
	}
}

func TestSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12.
	p := NewMaximize(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LessEq, RHS: 4})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 3}}, Sense: LessEq, RHS: 6})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
}

func TestMinimization(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 5, x <= 3 -> x=3, y=2, obj 12.
	p := NewMinimize(2)
	p.SetObjective(0, 2)
	p.SetObjective(1, 3)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: GreaterEq, RHS: 5})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 3})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 || math.Abs(sol.X[1]-2) > 1e-6 {
		t.Fatalf("x = %v, want [3 2]", sol.X)
	}
}

func TestEquality(t *testing.T) {
	// max x + y s.t. x + 2y = 4, x <= 2 -> x=2, y=1, obj 3.
	p := NewMaximize(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 2}}, Sense: Equal, RHS: 4})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 2})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMaximize(1)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 1})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: GreaterEq, RHS: 2})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize(2)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{1, 1}}, Sense: LessEq, RHS: 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y <= -2 with y <= 5: max x -> x=3 at y=5.
	p := NewMaximize(2)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, -1}}, Sense: LessEq, RHS: -2})
	mustAdd(t, p, Constraint{Terms: []Term{{1, 1}}, Sense: LessEq, RHS: 5})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestDegenerate(t *testing.T) {
	// Classic degenerate LP (multiple constraints active at the origin).
	p := NewMaximize(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 0})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LessEq, RHS: 0})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 2}, {1, 1}}, Sense: LessEq, RHS: 0})
	sol := solveOK(t, p)
	if math.Abs(sol.Objective) > 1e-6 {
		t.Fatalf("objective = %v, want 0", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave a redundant artificial in the basis.
	p := NewMaximize(2)
	p.SetObjective(0, 1)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: Equal, RHS: 2})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 2}, {1, 2}}, Sense: Equal, RHS: 4})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow on a 4-node diamond: s->a (3), s->b (2), a->t (2), b->t (3),
	// a->b (10). Max flow = 4 (a->t 2 limits the upper path; s->b 2 the
	// lower; a->b lets 1 unit reroute: s->a 3 = a->t 2 + a->b 1, b->t gets
	// 2+1=3 -> total 3+2=5? No: s-cut {s}: 3+2=5; cut {s,a,b}: 2+3=5;
	// cut {s,a}: s->b 2 + a->t 2 + a->b... a->b leaves the cut: 2+2+10.
	// Min cut = 5, so max flow = 5.
	// Variables: f_sa, f_sb, f_at, f_bt, f_ab.
	p := NewMaximize(5)
	p.SetObjective(0, 1) // flow out of s = f_sa
	p.SetObjective(1, 1) // + f_sb
	caps := []float64{3, 2, 2, 3, 10}
	for v, c := range caps {
		mustAdd(t, p, Constraint{Terms: []Term{{v, 1}}, Sense: LessEq, RHS: c})
	}
	// Conservation at a: f_sa = f_at + f_ab.
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {2, -1}, {4, -1}}, Sense: Equal, RHS: 0})
	// Conservation at b: f_sb + f_ab = f_bt.
	mustAdd(t, p, Constraint{Terms: []Term{{1, 1}, {4, 1}, {3, -1}}, Sense: Equal, RHS: 0})
	sol := solveOK(t, p)
	feasCheck(t, p, sol.X)
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("max flow = %v, want 5", sol.Objective)
	}
}

func TestRandomBoxLPs(t *testing.T) {
	// max sum(c_i x_i) with x_i <= u_i and redundant aggregate rows: the
	// optimum is sum(c_i u_i) for positive c.
	src := rng.New(606)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(10)
		p := NewMaximize(n)
		want := 0.0
		terms := make([]Term, n)
		sumU := 0.0
		for v := 0; v < n; v++ {
			c := src.Range(0.1, 5)
			u := src.Range(0, 10)
			p.SetObjective(v, c)
			mustAdd(t, p, Constraint{Terms: []Term{{v, 1}}, Sense: LessEq, RHS: u})
			want += c * u
			terms[v] = Term{v, 1}
			sumU += u
		}
		// Redundant: sum x_i <= sum u_i (+slack), sum x_i >= 0.
		mustAdd(t, p, Constraint{Terms: terms, Sense: LessEq, RHS: sumU + 1})
		mustAdd(t, p, Constraint{Terms: terms, Sense: GreaterEq, RHS: 0})
		sol := solveOK(t, p)
		feasCheck(t, p, sol.X)
		if math.Abs(sol.Objective-want) > 1e-5 {
			t.Fatalf("trial %d: objective %v, want %v", trial, sol.Objective, want)
		}
	}
}

func TestRandomTransportation(t *testing.T) {
	// Balanced transportation problems: min cost, total supply == total
	// demand. Optimal objective must match a brute-force over integer
	// assignments for tiny sizes... instead verify feasibility and that
	// the LP value lower-bounds a greedy feasible solution.
	src := rng.New(1212)
	for trial := 0; trial < 20; trial++ {
		ns, nd := 2+src.IntN(3), 2+src.IntN(3)
		supply := make([]float64, ns)
		demand := make([]float64, nd)
		totalSupply := 0.0
		for i := range supply {
			supply[i] = float64(1 + src.IntN(5))
			totalSupply += supply[i]
		}
		rem := totalSupply
		for j := 0; j < nd-1; j++ {
			d := rem * src.Range(0.1, 0.5)
			demand[j] = d
			rem -= d
		}
		demand[nd-1] = rem
		cost := make([][]float64, ns)
		p := NewMinimize(ns * nd)
		for i := range cost {
			cost[i] = make([]float64, nd)
			for j := range cost[i] {
				cost[i][j] = src.Range(1, 10)
				p.SetObjective(i*nd+j, cost[i][j])
			}
		}
		for i := 0; i < ns; i++ {
			terms := make([]Term, nd)
			for j := 0; j < nd; j++ {
				terms[j] = Term{i*nd + j, 1}
			}
			mustAdd(t, p, Constraint{Terms: terms, Sense: LessEq, RHS: supply[i]})
		}
		for j := 0; j < nd; j++ {
			terms := make([]Term, ns)
			for i := 0; i < ns; i++ {
				terms[i] = Term{i*nd + j, 1}
			}
			mustAdd(t, p, Constraint{Terms: terms, Sense: GreaterEq, RHS: demand[j]})
		}
		sol := solveOK(t, p)
		feasCheck(t, p, sol.X)
		// Greedy feasible: ship everything via the first supplier rows in
		// order; its cost upper-bounds the optimum.
		greedy := 0.0
		remSupply := append([]float64(nil), supply...)
		for j := 0; j < nd; j++ {
			need := demand[j]
			for i := 0; i < ns && need > 1e-12; i++ {
				amt := math.Min(need, remSupply[i])
				greedy += amt * cost[i][j]
				remSupply[i] -= amt
				need -= amt
			}
		}
		if sol.Objective > greedy+1e-6 {
			t.Fatalf("trial %d: LP cost %v exceeds greedy %v", trial, sol.Objective, greedy)
		}
	}
}

func TestConstraintValidation(t *testing.T) {
	p := NewMaximize(2)
	if err := p.AddConstraint(Constraint{Terms: []Term{{5, 1}}, Sense: LessEq, RHS: 1}); err == nil {
		t.Error("out-of-range variable should fail")
	}
	if err := p.AddConstraint(Constraint{Terms: []Term{{0, math.NaN()}}, Sense: LessEq, RHS: 1}); err == nil {
		t.Error("NaN coefficient should fail")
	}
	if err := p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Sense: Sense(9), RHS: 1}); err == nil {
		t.Error("bad sense should fail")
	}
	if err := p.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: math.Inf(1)}); err == nil {
		t.Error("infinite RHS should fail")
	}
}

func TestSolveStats(t *testing.T) {
	// A non-trivial solve must report pivot and iteration work, and the
	// iteration count bounds the pivot count per phase.
	p := NewMaximize(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 2)
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 1}}, Sense: LessEq, RHS: 4})
	mustAdd(t, p, Constraint{Terms: []Term{{0, 1}, {1, 3}}, Sense: LessEq, RHS: 6})
	sol := solveOK(t, p)
	if sol.Stats.Pivots == 0 {
		t.Fatal("optimal solve reported zero pivots")
	}
	if sol.Stats.Iterations == 0 {
		t.Fatal("optimal solve reported zero iterations")
	}
	if sol.Stats.Pivots < sol.Stats.Phase1Pivots {
		t.Fatalf("total pivots %d < phase-1 pivots %d", sol.Stats.Pivots, sol.Stats.Phase1Pivots)
	}
	// All-<= constraints with nonnegative RHS start feasible: no phase 1.
	if sol.Stats.Phase1Pivots != 0 {
		t.Fatalf("phase-1 pivots = %d, want 0 for a feasible start", sol.Stats.Phase1Pivots)
	}

	// An infeasible problem still reports the phase-1 work it did.
	q := NewMaximize(1)
	q.SetObjective(0, 1)
	mustAdd(t, q, Constraint{Terms: []Term{{0, 1}}, Sense: LessEq, RHS: 1})
	mustAdd(t, q, Constraint{Terms: []Term{{0, 1}}, Sense: GreaterEq, RHS: 2})
	sol2, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol2.Status)
	}
	if sol2.Stats.Pivots == 0 || sol2.Stats.Phase1Pivots == 0 {
		t.Fatalf("infeasible solve reported no phase-1 work: %+v", sol2.Stats)
	}
}

func TestStatusStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if LessEq.String() != "<=" || Equal.String() != "=" || GreaterEq.String() != ">=" {
		t.Error("sense strings wrong")
	}
}

func mustAdd(t *testing.T, p *Problem, c Constraint) {
	t.Helper()
	if err := p.AddConstraint(c); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}
