// Package lp provides a self-contained linear-programming solver: a dense
// two-phase primal simplex with Bland anti-cycling.
//
// The routing protocol of §V formulates scheduling as an integer program and
// evaluates "a relaxed Linear Programming version with rounding"; this solver
// is the substrate for that relaxation. Problems are stated over non-negative
// variables with sparse <=, =, >= constraints and a linear objective.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LessEq Sense = 1 + iota
	Equal
	GreaterEq
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LessEq:
		return "<="
	case Equal:
		return "="
	case GreaterEq:
		return ">="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is a sparse linear constraint sum(Coeff_i * x_i) Sense RHS.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	numVars     int
	objective   []float64
	maximize    bool
	constraints []Constraint
}

// NewMaximize returns a maximization problem over n non-negative variables
// with zero objective coefficients.
func NewMaximize(n int) *Problem {
	return &Problem{numVars: n, objective: make([]float64, n), maximize: true}
}

// NewMinimize returns a minimization problem over n non-negative variables.
func NewMinimize(n int) *Problem {
	return &Problem{numVars: n, objective: make([]float64, n)}
}

// NumVars reports the variable count.
func (p *Problem) NumVars() int { return p.numVars }

// NumConstraints reports the constraint count.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective sets the objective coefficient of variable v.
func (p *Problem) SetObjective(v int, c float64) {
	p.objective[v] = c
}

// AddConstraint appends a constraint; it returns an error when a term
// references an unknown variable or a coefficient is not finite.
func (p *Problem) AddConstraint(c Constraint) error {
	for _, t := range c.Terms {
		if t.Var < 0 || t.Var >= p.numVars {
			return fmt.Errorf("lp: constraint references variable %d outside [0,%d)", t.Var, p.numVars)
		}
		if math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			return fmt.Errorf("lp: non-finite coefficient %v on variable %d", t.Coeff, t.Var)
		}
	}
	if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
		return fmt.Errorf("lp: non-finite RHS %v", c.RHS)
	}
	switch c.Sense {
	case LessEq, Equal, GreaterEq:
	default:
		return fmt.Errorf("lp: invalid sense %v", c.Sense)
	}
	p.constraints = append(p.constraints, c)
	return nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = 1 + iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Stats counts the work a solve performed; the routing layer exports them
// as scheduler telemetry and routesolve prints them.
type Stats struct {
	// Pivots is the total number of Gauss-Jordan pivots across both
	// phases (including basis-repair pivots between phases).
	Pivots int
	// Phase1Pivots is the pivot count attributable to phase 1.
	Phase1Pivots int
	// Iterations is the number of simplex iterations (entering-column
	// selections), which exceeds Pivots only on the final optimality
	// check of each phase.
	Iterations int
	// DegeneratePivots counts pivots with a (near-)zero ratio step.
	DegeneratePivots int
	// Refreshes counts exact reduced-cost recomputations.
	Refreshes int
	// WarmStarted reports that SolveFrom installed the supplied basis and
	// skipped phase 1; false on cold solves and on warm-start fallbacks.
	WarmStarted bool
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Stats reports solver effort; populated on every outcome, including
	// Infeasible and Unbounded.
	Stats Stats
	// Basis is the final simplex basis on Optimal outcomes: one tableau
	// column index per constraint row. Feed it to SolveFrom on a
	// similarly-shaped problem to warm-start the next solve.
	Basis []int
}

// Solver errors.
var (
	// ErrIterationLimit is returned when simplex exceeds its pivot budget.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
)

// Simplex tolerances. The three numeric thresholds form one documented
// scheme instead of ad-hoc magic numbers at each comparison site:
//
//   - pivotEps classifies tableau entries and ratio-test steps as numerically
//     zero. It bounds accumulated elimination roundoff, which is independent
//     of problem magnitude, so it is absolute.
//   - enterEps is the reduced-cost threshold for entering columns — two
//     decades above pivotEps so elimination noise in the objective row can
//     never be mistaken for an improving direction.
//   - feasRelTol is the phase-1 feasibility test, *relative* to the problem's
//     right-hand-side magnitude: phase 1 declares infeasibility when the
//     residual artificial mass exceeds feasRelTol * max(1, max|RHS|).
//     An absolute cutoff here disagrees with the other two scales on badly
//     scaled instances — a constraint system with RHS values around 1e-7
//     can be genuinely infeasible by several times its own magnitude while
//     the residual stays under any fixed cutoff (see
//     TestPhase1FeasibilityScale).
const (
	pivotEps     = 1e-9
	enterEps     = 1e-7
	feasRelTol   = 1e-7
	blandTrigger = 1500 // degenerate pivots before switching to Bland's rule
	refreshEvery = 256  // pivots between exact reduced-cost recomputations
)

// Solve runs two-phase primal simplex. An Infeasible or Unbounded status is
// reported in the Solution, not as an error; errors indicate solver failure.
func (p *Problem) Solve() (Solution, error) {
	s, artStart, feasScale, nArt := p.tableau()
	m := len(p.constraints)
	// Phase 1: minimize the sum of artificial variables.
	if nArt > 0 {
		obj := make([]float64, s.total)
		for j := artStart; j < s.total; j++ {
			obj[j] = -1 // maximize -(sum of artificials)
		}
		val, err := s.optimize(obj, artStart)
		if err != nil {
			return Solution{}, fmt.Errorf("phase 1: %w", err)
		}
		if val < -feasRelTol*feasScale {
			s.stats.Phase1Pivots = s.stats.Pivots
			return Solution{Status: Infeasible, Stats: s.stats}, nil
		}
		// Drive any artificial still in the basis out (degenerate rows)
		// or drop the row if it is all zeros.
		for i := 0; i < m; i++ {
			if s.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(s.t[i][j]) > pivotEps {
					s.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; zero it so it never constrains.
				for j := range s.t[i] {
					s.t[i][j] = 0
				}
			}
		}
	}
	s.stats.Phase1Pivots = s.stats.Pivots
	return p.phase2(s, artStart)
}

// SolveFrom runs simplex warm-started from a previous Optimal solution's
// Basis: the basis is installed by Gauss-Jordan pivots and, when the
// resulting vertex is primal-feasible, phase 1 is skipped entirely — the
// incremental re-plan path for a resident control plane re-solving a routing
// LP after small topology or demand deltas. Whenever the basis cannot be
// installed (shape mismatch, singular or artificial columns) or the vertex is
// infeasible for the new right-hand side, it falls back to a cold Solve, so
// SolveFrom never sacrifices correctness for speed. A nil basis is exactly
// Solve.
func (p *Problem) SolveFrom(basis []int) (Solution, error) {
	if len(basis) != len(p.constraints) || len(basis) == 0 {
		return p.Solve()
	}
	s, artStart, feasScale, _ := p.tableau()
	if !s.install(basis, artStart) {
		return p.Solve()
	}
	// The installed vertex must be primal-feasible for the new RHS;
	// tolerate (and clamp) elimination roundoff at the feasibility scale.
	for i := range s.t {
		rhs := s.t[i][s.total]
		if rhs < -feasRelTol*feasScale {
			return p.Solve()
		}
		if rhs < 0 {
			s.t[i][s.total] = 0
		}
	}
	s.stats.WarmStarted = true
	s.stats.Phase1Pivots = s.stats.Pivots
	return p.phase2(s, artStart)
}

// install pivots the canonical tableau onto the given basis, assigning each
// basis column to the unused row with the largest pivot magnitude (partial
// pivoting). It reports false — leaving the caller to fall back to a cold
// solve — when a column is out of range, artificial, duplicated, or the
// basis matrix is numerically singular.
func (s *simplex) install(basis []int, artStart int) bool {
	m := len(s.t)
	used := make([]bool, m)
	for _, b := range basis {
		if b < 0 || b >= artStart {
			return false
		}
		row, best := -1, pivotEps
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			if a := math.Abs(s.t[i][b]); a > best {
				best, row = a, i
			}
		}
		if row < 0 {
			return false
		}
		s.pivot(row, b)
		used[row] = true
	}
	return true
}

// tableau builds the canonical simplex tableau: slack/surplus and artificial
// columns appended after the structural variables, rows normalized to
// non-negative RHS, slacks/artificials forming the starting basis.
func (p *Problem) tableau() (s *simplex, artStart int, feasScale float64, nArt int) {
	m := len(p.constraints)
	n := p.numVars
	// Column layout: [structural | slack/surplus | artificial], built row
	// by row with b >= 0.
	type rowInfo struct {
		coeffs []float64
		rhs    float64
		sense  Sense
	}
	rows := make([]rowInfo, m)
	for i, c := range p.constraints {
		r := rowInfo{coeffs: make([]float64, n), rhs: c.RHS, sense: c.Sense}
		for _, t := range c.Terms {
			r.coeffs[t.Var] += t.Coeff
		}
		if r.rhs < 0 {
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			switch r.sense {
			case LessEq:
				r.sense = GreaterEq
			case GreaterEq:
				r.sense = LessEq
			}
		}
		rows[i] = r
	}
	// Count slack and artificial columns, and record the feasibility scale
	// (rows are normalized to rhs >= 0 above).
	nSlack := 0
	feasScale = 1.0
	for _, r := range rows {
		if r.rhs > feasScale {
			feasScale = r.rhs
		}
		switch r.sense {
		case LessEq:
			nSlack++
		case GreaterEq:
			nSlack++
			nArt++
		case Equal:
			nArt++
		}
	}
	total := n + nSlack + nArt
	// Tableau: m rows x (total+1) columns, last column RHS.
	t := make([][]float64, m)
	basis := make([]int, m)
	slackCol, artCol := n, n+nSlack
	artStart = n + nSlack
	for i, r := range rows {
		t[i] = make([]float64, total+1)
		copy(t[i], r.coeffs)
		t[i][total] = r.rhs
		switch r.sense {
		case LessEq:
			t[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GreaterEq:
			t[i][slackCol] = -1
			slackCol++
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case Equal:
			t[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	return &simplex{t: t, basis: basis, total: total}, artStart, feasScale, nArt
}

// phase2 maximizes the real objective over structural columns only from the
// current (feasible) basis, then extracts the solution. Artificials are
// frozen at zero by restricting entering columns below artStart.
func (p *Problem) phase2(s *simplex, artStart int) (Solution, error) {
	n := p.numVars
	total := s.total
	obj := make([]float64, total)
	for j := 0; j < n; j++ {
		if p.maximize {
			obj[j] = p.objective[j]
		} else {
			obj[j] = -p.objective[j]
		}
	}
	val, err := s.optimize(obj, artStart)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded, Stats: s.stats}, nil
		}
		return Solution{}, fmt.Errorf("phase 2: %w", err)
	}
	x := make([]float64, n)
	for i, b := range s.basis {
		if b < n {
			x[b] = s.t[i][total]
		}
	}
	if !p.maximize {
		val = -val
	}
	return Solution{
		Status: Optimal, X: x, Objective: val, Stats: s.stats,
		Basis: append([]int(nil), s.basis...),
	}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// simplex is the shared tableau state across the two phases.
type simplex struct {
	t     [][]float64
	basis []int
	total int
	stats Stats
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func (s *simplex) pivot(row, col int) {
	pr := s.t[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range s.t {
		if i == row {
			continue
		}
		f := s.t[i][col]
		if f == 0 {
			continue
		}
		ri := s.t[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0 // exact
	}
	s.basis[row] = col
	s.stats.Pivots++
}

// optimize maximizes obj over the current basis, entering only columns below
// colLimit. It returns the achieved objective value.
func (s *simplex) optimize(obj []float64, colLimit int) (float64, error) {
	m := len(s.t)
	total := s.total
	// Reduced costs are computed directly: z_j - c_j = sum over basis of
	// c_B * t[., j] - c_j. Maintain them incrementally via an explicit
	// objective row for efficiency.
	z := make([]float64, total+1)
	refresh := func() {
		s.stats.Refreshes++
		for j := 0; j <= total; j++ {
			var v float64
			if j < total {
				v = -objAt(obj, j)
			}
			for i := 0; i < m; i++ {
				v += objAt(obj, s.basis[i]) * s.t[i][j]
			}
			z[j] = v
		}
	}
	refresh()
	degenerate := 0
	maxIters := 30*(m+total) + 10000
	for iter := 0; iter < maxIters; iter++ {
		s.stats.Iterations++
		if iter > 0 && iter%refreshEvery == 0 {
			// Incremental updates drift; periodically recompute the
			// reduced costs exactly so tiny phantom negatives cannot
			// sustain degenerate cycling.
			refresh()
		}
		// Entering column.
		col := -1
		if degenerate < blandTrigger {
			best := -enterEps
			for j := 0; j < colLimit; j++ {
				if z[j] < best {
					best = z[j]
					col = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ { // Bland: smallest index
				if z[j] < -enterEps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return z[total], nil // optimal
		}
		// Ratio test.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := s.t[i][col]
			if a <= pivotEps {
				continue
			}
			ratio := s.t[i][total] / a
			if ratio < bestRatio-pivotEps ||
				(ratio < bestRatio+pivotEps && (row < 0 || s.basis[i] < s.basis[row])) {
				bestRatio = ratio
				row = i
			}
		}
		if row < 0 {
			return 0, errUnbounded
		}
		if bestRatio < pivotEps {
			degenerate++
			s.stats.DegeneratePivots++
		} else {
			degenerate = 0
		}
		s.pivot(row, col)
		// Update the reduced-cost row like any other row.
		f := z[col]
		if f != 0 {
			pr := s.t[row]
			for j := 0; j <= total; j++ {
				z[j] -= f * pr[j]
			}
			z[col] = 0
		}
	}
	return 0, ErrIterationLimit
}

// objAt treats obj as padded with zeros beyond its length.
func objAt(obj []float64, j int) float64 {
	if j < len(obj) {
		return obj[j]
	}
	return 0
}
