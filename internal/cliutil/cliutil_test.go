package cliutil

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"surfnet/internal/telemetry"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := parseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseLogLevel("loud"); err == nil {
		t.Error("parseLogLevel accepted an unknown level")
	}
}

func makeEvent() telemetry.Event {
	return telemetry.Ev("test", "k", 1)
}

func TestStartWithListenWiresEverythingAndFinishShutsDown(t *testing.T) {
	var o Observability
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Register(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:0", "-log-level", "error"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	if o.Registry == nil || o.Progress == nil || o.server == nil {
		t.Fatal("-listen did not wire registry, progress tracker, and server")
	}
	if o.Addr() == "" || strings.HasSuffix(o.Addr(), ":0") {
		t.Fatalf("Addr() = %q, want a resolved ephemeral port", o.Addr())
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/readyz", o.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/readyz while started = %d, want 200", resp.StatusCode)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", o.Addr())); err == nil {
		t.Fatal("server still serving after Finish")
	}
}

func TestFinishSurfacesMetricsOutError(t *testing.T) {
	dir := t.TempDir()
	var o Observability
	o.MetricsOut = filepath.Join(dir, "missing-subdir", "metrics.json")
	o.ForceMetrics()
	err := o.Finish()
	if err == nil {
		t.Fatal("Finish ignored an unwritable -metrics-out path")
	}
	if !strings.Contains(err.Error(), "metrics-out") {
		t.Fatalf("error %q does not name the failing sink", err)
	}
}

func TestFinishSurfacesTraceFlushError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var o Observability
	o.TraceOut = path
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	// Close the underlying file behind the tracer's back: the buffered
	// flush in Finish must surface the write failure, not swallow it.
	o.traceFile.Close()
	o.Tracer.Emit(makeEvent())
	err := o.Finish()
	if err == nil {
		t.Fatal("Finish ignored a trace flush failure")
	}
	if !strings.Contains(err.Error(), "trace-out") {
		t.Fatalf("error %q does not name the failing sink", err)
	}
}

func TestExitOnFinishErrorForcesNonZero(t *testing.T) {
	dir := t.TempDir()
	var o Observability
	o.MetricsOut = filepath.Join(dir, "no-such-dir", "m.json")
	o.ForceMetrics()
	exit := 0
	ExitOnFinishError(&o, &exit)
	if exit != 1 {
		t.Fatalf("exit = %d after sink failure, want 1", exit)
	}

	var ok Observability
	exit = 0
	ExitOnFinishError(&ok, &exit)
	if exit != 0 {
		t.Fatalf("exit = %d on clean finish, want 0", exit)
	}
}

func TestWriteOutputsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var o Observability
	o.MetricsOut = filepath.Join(dir, "metrics.json")
	o.TraceOut = filepath.Join(dir, "trace.jsonl")
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	o.Registry.Counter("sim.trials").Inc()
	o.Tracer.Emit(makeEvent())
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	m, err := os.ReadFile(o.MetricsOut)
	if err != nil || !strings.Contains(string(m), "sim.trials") {
		t.Fatalf("metrics snapshot missing: %v %q", err, m)
	}
	tr, err := os.ReadFile(o.TraceOut)
	if err != nil || !strings.Contains(string(tr), `"event"`) {
		t.Fatalf("trace missing: %v %q", err, tr)
	}
}

func TestListenScrapeOverHTTP(t *testing.T) {
	var o Observability
	o.Listen = "127.0.0.1:0"
	o.LogLevel = "error"
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()
	o.Registry.Counter("cli.test").Add(9)
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", o.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "surfnet_cli_test_total 9\n") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
}

func TestDeferReadyKeepsReadyzDown(t *testing.T) {
	o := &Observability{Listen: "127.0.0.1:0", LogLevel: "error", DeferReady: true}
	if err := o.Start(); err != nil {
		t.Fatal(err)
	}
	defer o.Finish()
	resp, err := http.Get("http://" + o.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with DeferReady = %d, want 503", resp.StatusCode)
	}
	if o.ObsServer() == nil {
		t.Fatal("ObsServer should be available after Start with -listen")
	}
	o.ObsServer().SetReady(true)
	resp2, err := http.Get("http://" + o.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after SetReady = %d, want 200", resp2.StatusCode)
	}
}
