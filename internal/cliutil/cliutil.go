// Package cliutil is the shared observability harness of the cmd tools:
// the -metrics-out, -trace-out, -cpuprofile, and -memprofile flags, plus the
// lifecycle around them (open profile, run, flush trace, write snapshot),
// the -listen flag starting the live observability HTTP server of
// internal/obs, the -log-level flag configuring the process-wide slog
// logger, and the -workers flag sizing the deterministic trial pool of
// internal/sim.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"surfnet/internal/obs"
	"surfnet/internal/telemetry"
)

// shutdownTimeout bounds the obs server's graceful drain in Finish, so a
// stuck scraper cannot hold up the metrics/trace flush.
const shutdownTimeout = 3 * time.Second

// Observability bundles the telemetry and profiling state of one CLI run.
// Register its flags, call Start before the workload and Finish (usually
// deferred) after it.
type Observability struct {
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string

	// Listen is the address of the live observability HTTP server
	// (/metrics, /healthz, /readyz, /status, /debug/pprof/); empty
	// disables it. ":0" picks an ephemeral port, logged at startup.
	Listen string
	// LogLevel names the slog threshold (debug, info, warn, error).
	LogLevel string

	// Workers is the Monte-Carlo trial pool size. Results are identical
	// for every value (trials are seeded by index, not worker), so this
	// only trades wall time for cores.
	Workers int

	// DeferReady keeps /readyz at 503 after Start. Batch CLIs are ready the
	// moment the server is up, but a resident daemon must not report ready
	// until it owns network state and its API routes are mounted — set
	// DeferReady and flip ObsServer().SetReady(true) at that point (and
	// back to false when draining).
	DeferReady bool

	// WallClock enables wall-clock span capture (-wall): spans feed the
	// <name>_wall_seconds HDR histograms on the registry. Implied by
	// -slot-budget and -wall-trace-out.
	WallClock bool
	// SlotBudget is the per-span wall-clock SLO (-slot-budget) applied to
	// slot and decode spans; zero disables budget tracking.
	SlotBudget time.Duration
	// WallTraceOut, when set, writes budget-overrun events as JSONL to
	// this file — a separate stream from -trace-out, which must stay
	// byte-deterministic.
	WallTraceOut string

	// Registry is non-nil once Start ran with -metrics-out or -listen set,
	// or after ForceMetrics; pass it to the experiment configs.
	Registry *telemetry.Registry
	// Tracer is non-nil once Start ran with -trace-out set.
	Tracer *telemetry.JSONL
	// Progress is non-nil once Start ran with -listen set; pass it to the
	// experiment configs so /status shows live sweep progress.
	Progress *obs.Tracker
	// Wall is non-nil once Start ran with wall capture enabled; pass it to
	// the experiment configs as the dual-clock sink.
	Wall *telemetry.WallSink

	cpuFile    *os.File
	traceFile  *os.File
	wallTracer *telemetry.JSONL
	wallFile   *os.File
	server     *obs.Server
	addr       net.Addr
	ctx        context.Context
	stop       context.CancelFunc
}

// Addr reports the observability server's bound address ("" before Start or
// without -listen). With "-listen :0" this is where the ephemeral port
// landed.
func (o *Observability) Addr() string {
	if o.addr == nil {
		return ""
	}
	return o.addr.String()
}

// Context returns the run context: it is cancelled on SIGINT/SIGTERM once
// Start has run, so interrupted sweeps stop between trials while Finish still
// flushes the partial -metrics-out and -trace-out output. Before Start it is
// the background context.
func (o *Observability) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// Register defines the observability and worker-pool flags on fs.
func (o *Observability) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a JSONL event trace to this file")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.StringVar(&o.Listen, "listen", "",
		"serve live observability HTTP (/metrics /healthz /readyz /status /debug/pprof/) on this address; :0 picks a port")
	fs.StringVar(&o.LogLevel, "log-level", "info", "log threshold: debug, info, warn, or error")
	fs.IntVar(&o.Workers, "workers", runtime.GOMAXPROCS(0),
		"trial worker-pool size (results are identical for any value; 1 forces serial)")
	fs.BoolVar(&o.WallClock, "wall", false,
		"capture wall-clock span latency into <name>_wall_seconds histograms (results stay byte-identical)")
	fs.DurationVar(&o.SlotBudget, "slot-budget", 0,
		"wall-clock SLO per slot/decode span (e.g. 100us); overruns are counted and burn rate served on /status")
	fs.StringVar(&o.WallTraceOut, "wall-trace-out", "",
		"write budget-overrun events as JSONL to this file (separate from the deterministic -trace-out stream)")
}

// ForceMetrics ensures a registry exists even without -metrics-out, for
// tools that always report telemetry-derived tables (decoderbench latency
// quantiles, routesolve pivot counts).
func (o *Observability) ForceMetrics() {
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
}

// TracerOrNil returns the tracer as the interface type, staying truly nil
// when tracing is off (a typed-nil interface would defeat the engine's nil
// checks).
func (o *Observability) TracerOrNil() telemetry.Tracer {
	if o.Tracer == nil {
		return nil
	}
	return o.Tracer
}

// parseLogLevel maps a -log-level value onto its slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("log-level: unknown level %q (want debug, info, warn, or error)", s)
}

// SetupLogging installs the process-wide slog default: text on stderr at the
// configured -log-level. It is separate from Start so flag errors in it
// surface before any output file is created.
func (o *Observability) SetupLogging() error {
	level, err := parseLogLevel(o.LogLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
	return nil
}

// Start configures logging, opens the configured outputs, starts the CPU
// profile and the observability server, and installs the signal-aware run
// context.
func (o *Observability) Start() error {
	if err := o.SetupLogging(); err != nil {
		return err
	}
	o.ctx, o.stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if o.MetricsOut != "" {
		o.ForceMetrics()
	}
	if o.TraceOut != "" {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		o.traceFile = f
		o.Tracer = telemetry.NewJSONL(f)
	}
	if o.WallClock || o.SlotBudget > 0 || o.WallTraceOut != "" {
		o.ForceMetrics()
		o.Wall = telemetry.NewWallSink(o.Registry)
		if o.SlotBudget > 0 {
			o.Wall.SetBudget(telemetry.NewBudget(o.SlotBudget))
		}
		if o.WallTraceOut != "" {
			f, err := os.Create(o.WallTraceOut)
			if err != nil {
				return fmt.Errorf("wall-trace-out: %w", err)
			}
			o.wallFile = f
			o.wallTracer = telemetry.NewJSONL(f)
			o.Wall.SetTracer(o.wallTracer)
		}
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		o.cpuFile = f
	}
	if o.Listen != "" {
		o.ForceMetrics()
		o.Progress = obs.NewTracker()
		o.server = obs.NewServer(o.Registry, o.Progress)
		addr, err := o.server.Listen(o.Listen)
		if err != nil {
			return fmt.Errorf("listen: %w", err)
		}
		o.addr = addr
		slog.Info("observability server listening", "addr", addr.String())
		o.server.SetBudget(o.Wall.Budget())
		if !o.DeferReady {
			o.server.SetReady(true)
		}
	}
	return nil
}

// ObsServer returns the live observability server, nil before Start or
// without -listen. Resident daemons use it to mount API routes, attach a
// service status snapshot, and control /readyz (see DeferReady).
func (o *Observability) ObsServer() *obs.Server { return o.server }

// Finish shuts down the observability server, stops the CPU profile, writes
// the heap profile and the metrics snapshot, and flushes the trace. It
// returns the first error encountered but always attempts every step. A
// non-nil error means observability output was lost — callers should exit
// non-zero.
func (o *Observability) Finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.stop != nil {
		o.stop() // restore default signal handling
		o.stop = nil
	}
	if o.server != nil {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		keep(o.server.Shutdown(ctx))
		cancel()
		o.server = nil
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			keep(fmt.Errorf("memprofile: %w", err))
		} else {
			runtime.GC() // get up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if o.Tracer != nil {
		keep(wrapErr("trace-out", o.Tracer.Flush()))
	}
	if o.traceFile != nil {
		keep(wrapErr("trace-out", o.traceFile.Close()))
		o.traceFile = nil
	}
	if o.wallTracer != nil {
		keep(wrapErr("wall-trace-out", o.wallTracer.Flush()))
		o.wallTracer = nil
	}
	if o.wallFile != nil {
		keep(wrapErr("wall-trace-out", o.wallFile.Close()))
		o.wallFile = nil
	}
	if o.MetricsOut != "" && o.Registry != nil {
		f, err := os.Create(o.MetricsOut)
		if err != nil {
			keep(fmt.Errorf("metrics-out: %w", err))
		} else {
			keep(wrapErr("metrics-out", o.Registry.Snapshot().WriteJSON(f)))
			keep(wrapErr("metrics-out", f.Close()))
		}
	}
	return first
}

// wrapErr prefixes a sink error with the flag it belongs to, so "disk full"
// says which output was lost.
func wrapErr(sink string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %w", sink, err)
}

// ExitOnFinishError is the shared deferred tail of every CLI main: it runs
// Finish, logs any sink failure, and forces the named exit code to 1 so a
// run whose observability output was lost cannot exit 0.
func ExitOnFinishError(o *Observability, exit *int) {
	if err := o.Finish(); err != nil {
		slog.Error("observability output lost", "err", err)
		if *exit == 0 {
			*exit = 1
		}
	}
}
