// Package cliutil is the shared observability harness of the cmd tools:
// the -metrics-out, -trace-out, -cpuprofile, and -memprofile flags, plus the
// lifecycle around them (open profile, run, flush trace, write snapshot),
// and the -workers flag sizing the deterministic trial pool of internal/sim.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"surfnet/internal/telemetry"
)

// Observability bundles the telemetry and profiling state of one CLI run.
// Register its flags, call Start before the workload and Finish (usually
// deferred) after it.
type Observability struct {
	MetricsOut string
	TraceOut   string
	CPUProfile string
	MemProfile string

	// Workers is the Monte-Carlo trial pool size. Results are identical
	// for every value (trials are seeded by index, not worker), so this
	// only trades wall time for cores.
	Workers int

	// Registry is non-nil once Start ran with -metrics-out set, or after
	// ForceMetrics; pass it to the experiment configs.
	Registry *telemetry.Registry
	// Tracer is non-nil once Start ran with -trace-out set.
	Tracer *telemetry.JSONL

	cpuFile   *os.File
	traceFile *os.File
	ctx       context.Context
	stop      context.CancelFunc
}

// Context returns the run context: it is cancelled on SIGINT/SIGTERM once
// Start has run, so interrupted sweeps stop between trials while Finish still
// flushes the partial -metrics-out and -trace-out output. Before Start it is
// the background context.
func (o *Observability) Context() context.Context {
	if o.ctx == nil {
		return context.Background()
	}
	return o.ctx
}

// Register defines the observability and worker-pool flags on fs.
func (o *Observability) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write a JSONL event trace to this file")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	fs.IntVar(&o.Workers, "workers", runtime.GOMAXPROCS(0),
		"trial worker-pool size (results are identical for any value; 1 forces serial)")
}

// ForceMetrics ensures a registry exists even without -metrics-out, for
// tools that always report telemetry-derived tables (decoderbench latency
// quantiles, routesolve pivot counts).
func (o *Observability) ForceMetrics() {
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
}

// TracerOrNil returns the tracer as the interface type, staying truly nil
// when tracing is off (a typed-nil interface would defeat the engine's nil
// checks).
func (o *Observability) TracerOrNil() telemetry.Tracer {
	if o.Tracer == nil {
		return nil
	}
	return o.Tracer
}

// Start opens the configured outputs, starts the CPU profile, and installs
// the signal-aware run context.
func (o *Observability) Start() error {
	o.ctx, o.stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if o.MetricsOut != "" {
		o.ForceMetrics()
	}
	if o.TraceOut != "" {
		f, err := os.Create(o.TraceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		o.traceFile = f
		o.Tracer = telemetry.NewJSONL(f)
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		o.cpuFile = f
	}
	return nil
}

// Finish stops the CPU profile, writes the heap profile and the metrics
// snapshot, and flushes the trace. It returns the first error encountered
// but always attempts every step.
func (o *Observability) Finish() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if o.stop != nil {
		o.stop() // restore default signal handling
		o.stop = nil
	}
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(o.cpuFile.Close())
		o.cpuFile = nil
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			keep(fmt.Errorf("memprofile: %w", err))
		} else {
			runtime.GC() // get up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	if o.Tracer != nil {
		keep(o.Tracer.Flush())
	}
	if o.traceFile != nil {
		keep(o.traceFile.Close())
		o.traceFile = nil
	}
	if o.MetricsOut != "" && o.Registry != nil {
		f, err := os.Create(o.MetricsOut)
		if err != nil {
			keep(fmt.Errorf("metrics-out: %w", err))
		} else {
			keep(o.Registry.Snapshot().WriteJSON(f))
			keep(f.Close())
		}
	}
	return first
}
