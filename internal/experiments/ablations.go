package experiments

import (
	"context"
	"fmt"

	"surfnet/internal/decoder"
	"surfnet/internal/obs"
	"surfnet/internal/routing"
	"surfnet/internal/sim"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
	"surfnet/internal/topology"
)

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Variant string
	Cell    Cell
}

// AdaptiveStudy compares fixed distance-5 SurfNet scheduling against the
// QoS-adaptive code sizing the paper flags as a future direction (§VI-C), on
// the insufficient-facility scenario where resource pressure is highest.
func AdaptiveStudy(cfg Config) ([]AblationRow, error) {
	base := routing.DefaultParams(routing.SurfNet)
	adaptive := base
	adaptive.AdaptiveDistances = []int{3, 5, 7}
	variants := []struct {
		name string
		p    routing.Params
	}{
		{"fixed-d5", base},
		{"adaptive-d357", adaptive},
	}
	var rows []AblationRow
	for _, v := range variants {
		spec := trialSpec{
			params:   topology.DefaultParams(topology.Insufficient, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  v.p,
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(cfg, spec, "ablation/adaptive/"+v.name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: v.name, Cell: cell})
	}
	return rows, nil
}

// DecoderPoint is one decoder variant's logical error rate at a fixed
// operating point.
type DecoderPoint struct {
	Variant     string
	LogicalRate float64
	Trials      int
}

// DecoderStudyConfig parameterizes the decoder-level ablation studies
// (step size, Core layout, erasure growth).
type DecoderStudyConfig struct {
	// Context, when non-nil, cancels the trial pool between trials (the
	// CLIs pass their signal-aware run context). Nil selects
	// context.Background().
	Context context.Context
	Seed    uint64
	// Trials is the Monte-Carlo sample count per variant.
	Trials int
	// Workers is the trial worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0) and 1 forces the serial path. Rates are
	// identical for every value (see internal/sim).
	Workers int
	// Metrics, when non-nil, collects per-decoder telemetry across the
	// study's trials.
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives one live cell per ablation variant
	// for the obs /status endpoint.
	Progress *obs.Tracker
}

// DefaultDecoderStudyConfig returns interactively sized study settings.
func DefaultDecoderStudyConfig() DecoderStudyConfig {
	return DecoderStudyConfig{Seed: 1, Trials: 200}
}

// decoderAblation measures a list of decoder variants at one (d, p, e)
// operating point.
func decoderAblation(cfg DecoderStudyConfig, distance int, pauli, erasure float64,
	layout surfacecode.CoreLayout, variants []struct {
		name string
		dec  decoder.Decoder
	}) ([]DecoderPoint, error) {
	code, err := surfacecode.New(distance, layout)
	if err != nil {
		return nil, err
	}
	var out []DecoderPoint
	for _, v := range variants {
		ctx := ctxOrBackground(cfg.Context)
		cell := cfg.Progress.StartCell("ablation/decoder/"+v.name, cfg.Trials)
		if cell != nil {
			ctx = sim.WithProgress(ctx, cell)
		}
		rate, err := logicalRate(ctx, code, v.dec, pauli, erasure, cfg.Trials, cfg.Workers, cfg.Seed, cfg.Metrics)
		cell.Finish()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		out = append(out, DecoderPoint{Variant: v.name, LogicalRate: rate, Trials: cfg.Trials})
	}
	return out, nil
}

// StepSizeStudy sweeps the SurfNet Decoder step size r around the paper's
// default 2/3 ("the decoder step size can be further adjusted to optimize
// between the decoding speed and accuracy", §IV-C).
func StepSizeStudy(cfg DecoderStudyConfig, steps []float64) ([]DecoderPoint, error) {
	if steps == nil {
		steps = []float64{1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0, 1.5}
	}
	variants := make([]struct {
		name string
		dec  decoder.Decoder
	}, len(steps))
	for i, r := range steps {
		variants[i].name = fmt.Sprintf("r=%.3f", r)
		variants[i].dec = decoder.SurfNet{StepSize: r}
	}
	return decoderAblation(cfg, 11, 0.07, 0.15, surfacecode.CoreLShape, variants)
}

// DecoderFamilyStudy compares the three decoder families — Union-Find,
// the SurfNet Decoder, and cached sparse MWPM — at the reference operating
// point. The MWPM column was dropped from default runs when a dense decode
// cost ~40µs; the scratch-cached sparse path (DESIGN §10) re-admits it to
// 20k-trial sweeps (ROADMAP item 5). logicalRate tags each cell with a
// probs epoch, so MWPM skips the per-frame fidelity hash throughout.
func DecoderFamilyStudy(cfg DecoderStudyConfig) ([]DecoderPoint, error) {
	return decoderAblation(cfg, 11, 0.07, 0.15, surfacecode.CoreLShape,
		[]struct {
			name string
			dec  decoder.Decoder
		}{
			{"union-find", decoder.UnionFind{}},
			{"surfnet", decoder.SurfNet{}},
			{"mwpm", decoder.MWPM{}},
		})
}

// CoreLayoutStudy compares the fixed L-shape Core topology against the
// diagonal alternative ("a more optimized geometry ... presents potential
// future directions", §VI-C).
func CoreLayoutStudy(cfg DecoderStudyConfig) (map[string][]DecoderPoint, error) {
	out := make(map[string][]DecoderPoint, 2)
	for _, layout := range []surfacecode.CoreLayout{surfacecode.CoreLShape, surfacecode.CoreDiagonal} {
		pts, err := decoderAblation(cfg, 11, 0.07, 0.15, layout,
			[]struct {
				name string
				dec  decoder.Decoder
			}{
				{"union-find", decoder.UnionFind{}},
				{"surfnet", decoder.SurfNet{}},
			})
		if err != nil {
			return nil, err
		}
		out[layout.String()] = pts
	}
	return out, nil
}

// ErasureGrowthStudy compares the SurfNet Decoder's default erasure
// pre-absorption against the literal finite-speed reading of Algorithm 2
// line 5 (see decoder.SurfNet.FiniteErasureGrowth).
func ErasureGrowthStudy(cfg DecoderStudyConfig) ([]DecoderPoint, error) {
	return decoderAblation(cfg, 11, 0.07, 0.15, surfacecode.CoreLShape,
		[]struct {
			name string
			dec  decoder.Decoder
		}{
			{"pre-absorbed", decoder.SurfNet{}},
			{"finite-speed", decoder.SurfNet{FiniteErasureGrowth: true}},
		})
}

// SchedulerStudy compares the paper's LP-relaxation-with-rounding scheduler
// against the pure greedy shortest-noise-path comparator on the sufficient
// scenario, where capacity contention makes global optimization matter.
func SchedulerStudy(cfg Config) ([]AblationRow, error) {
	var rows []AblationRow
	for _, useLP := range []bool{true, false} {
		name := "lp-rounding"
		sub := cfg
		sub.UseLP = useLP
		if !useLP {
			name = "greedy"
		}
		spec := trialSpec{
			params:   topology.DefaultParams(topology.Sufficient, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  routing.DefaultParams(routing.SurfNet),
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(sub, spec, "ablation/scheduler/"+name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: name, Cell: cell})
	}
	return rows, nil
}

// WaitForCompleteStudy measures the §V-B efficiency/reliability trade-off:
// erasure-marked early decoding versus waiting for retransmitted Support
// qubits, on a lossy sufficient-facility scenario.
func WaitForCompleteStudy(cfg Config) ([]AblationRow, error) {
	fac := topology.Sufficient
	fac.LossProb = 0.2 // lossy plain channels make the trade-off visible
	var rows []AblationRow
	for _, wait := range []bool{false, true} {
		name := "early-decode"
		engine := cfg.Engine
		if wait {
			name = "wait-for-complete"
			engine.WaitForComplete = true
		}
		sub := cfg
		sub.Engine = engine
		spec := trialSpec{
			params:   topology.DefaultParams(fac, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  routing.DefaultParams(routing.SurfNet),
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(sub, spec, "ablation/wait/"+name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{Variant: name, Cell: cell})
	}
	return rows, nil
}

// FormatAblation renders ablation rows with the three network metrics.
func FormatAblation(rows []AblationRow) string {
	out := fmt.Sprintf("%-20s %12s %12s %12s\n", "variant", "throughput", "fidelity", "latency")
	for _, r := range rows {
		out += fmt.Sprintf("%-20s %9.3f±%.2f %9.3f±%.2f %9.1f±%.1f\n",
			r.Variant,
			r.Cell.Throughput.Mean(), r.Cell.Throughput.CI95(),
			r.Cell.Fidelity.Mean(), r.Cell.Fidelity.CI95(),
			r.Cell.Latency.Mean(), r.Cell.Latency.CI95())
	}
	return out
}

// FormatDecoderPoints renders decoder-ablation points.
func FormatDecoderPoints(points []DecoderPoint) string {
	out := fmt.Sprintf("%-20s %14s %8s\n", "variant", "logical-rate", "trials")
	for _, p := range points {
		out += fmt.Sprintf("%-20s %14.4f %8d\n", p.Variant, p.LogicalRate, p.Trials)
	}
	return out
}
