package experiments

import (
	"strings"
	"testing"
)

func TestAdaptiveStudySmoke(t *testing.T) {
	rows, err := AdaptiveStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		checkCell(t, r.Variant, r.Cell)
	}
	if rows[0].Variant != "fixed-d5" || rows[1].Variant != "adaptive-d357" {
		t.Fatalf("variants = %v, %v", rows[0].Variant, rows[1].Variant)
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "adaptive-d357") {
		t.Error("formatter dropped a variant")
	}
}

func TestStepSizeStudySmoke(t *testing.T) {
	pts, err := StepSizeStudy(DecoderStudyConfig{Seed: 1, Trials: 30}, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.LogicalRate < 0 || p.LogicalRate > 1 || p.Trials != 30 {
			t.Fatalf("bad point %+v", p)
		}
	}
	if !strings.Contains(FormatDecoderPoints(pts), "r=0.500") {
		t.Error("formatter lost the variant label")
	}
}

func TestCoreLayoutStudySmoke(t *testing.T) {
	byLayout, err := CoreLayoutStudy(DecoderStudyConfig{Seed: 1, Trials: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(byLayout) != 2 {
		t.Fatalf("layouts = %d", len(byLayout))
	}
	for layout, pts := range byLayout {
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", layout, len(pts))
		}
	}
}

func TestErasureGrowthStudySmoke(t *testing.T) {
	pts, err := ErasureGrowthStudy(DecoderStudyConfig{Seed: 1, Trials: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Variant != "pre-absorbed" || pts[1].Variant != "finite-speed" {
		t.Fatalf("points = %+v", pts)
	}
}

func TestWaitForCompleteStudySmoke(t *testing.T) {
	rows, err := WaitForCompleteStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		checkCell(t, r.Variant, r.Cell)
	}
}

func TestSchedulerStudySmoke(t *testing.T) {
	rows, err := SchedulerStudy(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "lp-rounding" || rows[1].Variant != "greedy" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		checkCell(t, r.Variant, r.Cell)
	}
}
