// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VI): the Raw-vs-SurfNet scenario tables and fidelity
// plots of Fig. 6(a), the parameter sweeps of Fig. 6(b.1-4), the five-design
// comparison of Fig. 7, and the decoder threshold study of Fig. 8. Each
// entry point returns typed rows that the cmd tools and benchmarks print.
package experiments

import (
	"context"
	"fmt"

	"surfnet/internal/batch"
	"surfnet/internal/core"
	"surfnet/internal/metrics"
	"surfnet/internal/network"
	"surfnet/internal/obs"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/sim"
	"surfnet/internal/telemetry"
	"surfnet/internal/topology"
)

// Config parameterizes the network experiments (Fig. 6 and Fig. 7).
type Config struct {
	// Context, when non-nil, cancels the trial pool between trials: the
	// CLIs pass their signal-aware run context so an interrupted sweep
	// stops promptly and still flushes partial observability output. Nil
	// selects context.Background().
	Context context.Context
	// Seed roots all randomness; every cell derives labeled sub-streams.
	Seed uint64
	// Trials is the number of random networks evaluated per cell. The
	// paper runs 1080 trials per design across its parameter grid; the
	// default here is sized for interactive runs and can be raised.
	Trials int
	// Requests is the number of communication requests per trial.
	Requests int
	// MaxMessages caps surface codes per request (Fig. 6(b.3) sweeps it).
	MaxMessages int
	// UseLP selects the paper's LP-relaxation-with-rounding scheduler;
	// false selects the pure greedy comparator.
	UseLP bool
	// Workers is the trial worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0) and 1 forces the serial path. Results are
	// byte-identical for every value: each trial's randomness derives
	// from the seed and trial index, never from worker identity, and
	// per-trial results are reduced in trial order (internal/sim).
	Workers int
	// Batch schedules trials through sim.RunBatch in slabs of 64 instead
	// of one trial per work unit. Each trial still derives its randomness
	// from the seed and trial index, so cells are byte-identical to the
	// per-trial path; the coarser unit amortizes pool overhead on large
	// sweeps.
	Batch bool
	// Engine configures online execution (code, decoder, segments).
	Engine core.Config
	// Metrics, when non-nil, collects counters and histograms from the
	// scheduler, the engine, and the decoders across every trial of
	// every figure cell; the CLIs snapshot it per figure and write it
	// out with -metrics-out. Nil disables collection.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives every slot-level and routing event
	// of every trial. Nil disables tracing.
	Tracer telemetry.Tracer
	// Wall, when non-nil, captures wall-clock span durations (and budget
	// overruns) into Metrics without touching the deterministic outputs.
	Wall *telemetry.WallSink
	// Progress, when non-nil, receives a live cell per sweep cell and
	// per-trial completion counts; the obs HTTP server serves it at
	// /status. Nil disables progress reporting.
	Progress *obs.Tracker
}

// DefaultConfig returns interactively sized experiment settings.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Trials:      12,
		Requests:    8,
		MaxMessages: 3,
		UseLP:       true,
		Engine:      core.DefaultConfig(),
	}
}

// Cell is the aggregated outcome of one experiment cell (a design in a
// scenario under one parameter setting).
//
// Divisor contract: Throughput averages over all Trials (a trial that
// schedules nothing still has a throughput, zero); Fidelity and Latency
// average only over the Trials - EmptyTrials trials that executed at least
// one code, because an empty trial produces no communication to measure —
// folding a placeholder zero in would deflate both means.
type Cell struct {
	Fidelity   metrics.Summary
	Latency    metrics.Summary
	Throughput metrics.Summary
	// Trials is the number of evaluated trials; EmptyTrials of them
	// scheduled zero codes and contribute only to Throughput.
	Trials      int
	EmptyTrials int
}

// trialSpec pins one trial's full configuration.
type trialSpec struct {
	params   topology.Params
	design   routing.Design
	routing  routing.Params
	requests int
	maxMsgs  int
}

// trialOutcome is one trial's contribution to a Cell, reduced in trial
// order after the parallel run.
type trialOutcome struct {
	throughput float64
	// ran is false for an empty trial: nothing was scheduled, so there is
	// no execution to measure and fidelity/latency carry no sample.
	ran      bool
	fidelity float64
	latency  float64
}

// runCell evaluates Trials random networks for one cell on the sim worker
// pool. Every trial derives its randomness from the cell label and trial
// index, so the Cell is identical for any Workers value.
func runCell(cfg Config, spec trialSpec, label string) (Cell, error) {
	// Wire the harness telemetry into the engine and scheduler unless the
	// caller already instrumented them individually.
	if cfg.Engine.Metrics == nil {
		cfg.Engine.Metrics = cfg.Metrics
	}
	if cfg.Engine.Tracer == nil {
		cfg.Engine.Tracer = cfg.Tracer
	}
	if cfg.Engine.Wall == nil {
		cfg.Engine.Wall = cfg.Wall
	}
	if spec.routing.Metrics == nil {
		spec.routing.Metrics = cfg.Metrics
	}
	if spec.routing.Tracer == nil {
		spec.routing.Tracer = cfg.Tracer
	}
	root := rng.New(cfg.Seed).Split(label)
	ctx := cfg.context()
	if cfg.Progress != nil {
		cell := cfg.Progress.StartCell(label, cfg.Trials)
		defer cell.Finish()
		ctx = sim.WithProgress(ctx, cell)
	}
	trialFn := func(trial int) (trialOutcome, error) {
		src := root.SplitN("trial", trial)
		net, err := topology.Generate(spec.params, src.Split("net"))
		if err != nil {
			return trialOutcome{}, fmt.Errorf("experiments: generating network: %w", err)
		}
		reqs, err := topology.GenRequests(net, spec.requests, spec.maxMsgs, src.Split("reqs"))
		if err != nil {
			return trialOutcome{}, fmt.Errorf("experiments: generating requests: %w", err)
		}
		sched, err := schedule(net, reqs, spec.routing, cfg.UseLP)
		if err != nil {
			return trialOutcome{}, fmt.Errorf("experiments: scheduling %v: %w", spec.design, err)
		}
		out := trialOutcome{throughput: sched.Throughput()}
		if sched.AcceptedCodes() == 0 {
			return out, nil // no executions to measure
		}
		res, err := core.Run(net, sched, cfg.Engine, src.Split("run"))
		if err != nil {
			return trialOutcome{}, fmt.Errorf("experiments: executing %v: %w", spec.design, err)
		}
		out.ran = true
		out.fidelity = res.Fidelity()
		out.latency = res.MeanLatency()
		return out, nil
	}
	var outcomes []trialOutcome
	var err error
	if cfg.Batch {
		// Batched scheduling: a work unit is a 64-trial slab, but every
		// trial keeps its SplitN("trial", i) stream, so the cell is
		// byte-identical to the per-trial path.
		outcomes, err = sim.RunBatch(ctx, cfg.Trials, batch.Lanes, cfg.Workers,
			func(b sim.Batch, _ *sim.Worker) ([]trialOutcome, error) {
				out := make([]trialOutcome, b.Len)
				for k := range out {
					var err error
					if out[k], err = trialFn(b.Start + k); err != nil {
						return nil, err
					}
				}
				return out, nil
			})
	} else {
		outcomes, err = sim.Run(ctx, cfg.Trials, cfg.Workers,
			func(trial int, _ *sim.Worker) (trialOutcome, error) {
				return trialFn(trial)
			})
	}
	if err != nil {
		return Cell{}, err
	}
	// Ordered reduction: folding in trial order keeps the streaming means
	// bit-identical to a serial run regardless of worker count.
	var cell Cell
	for _, out := range outcomes {
		cell.Trials++
		cell.Throughput.Add(out.throughput)
		if !out.ran {
			cell.EmptyTrials++
			continue
		}
		cell.Fidelity.Add(out.fidelity)
		cell.Latency.Add(out.latency)
	}
	return cell, nil
}

// context resolves the run context.
func (c Config) context() context.Context { return ctxOrBackground(c.Context) }

// ctxOrBackground resolves an optional config context.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func schedule(net *network.Network, reqs []network.Request, p routing.Params, useLP bool) (routing.Schedule, error) {
	if useLP {
		return routing.ScheduleLP(net, reqs, p)
	}
	return routing.Greedy(net, reqs, p, nil, nil)
}
