package experiments

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"surfnet/internal/obs"
	"surfnet/internal/telemetry"
)

// TestFig6aInvariantUnderFullObservability pins the acceptance criterion that
// observability must not perturb results: Fig. 6(a) with tracing, metrics,
// progress reporting, and a live obs server scraped mid-run is
// field-for-field identical to the bare run, for every worker count.
func TestFig6aInvariantUnderFullObservability(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 5
	bare, err := Fig6a(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range workerCounts {
		cfg := tinyConfig()
		cfg.Trials = 5
		cfg.Workers = w
		cfg.Metrics = telemetry.NewRegistry()
		cfg.Tracer = telemetry.NewJSONL(io.Discard)
		cfg.Progress = obs.NewTracker()
		// Wall-clock capture with an always-overrunning budget and its own
		// overrun trace is the worst case for the dual-clock contract: every
		// span records wall time and fires the budget path, and results must
		// still be byte-identical.
		cfg.Wall = telemetry.NewWallSink(cfg.Metrics)
		cfg.Wall.SetBudget(telemetry.NewBudget(1)) // 1ns: every span overruns
		cfg.Wall.SetTracer(telemetry.NewJSONL(io.Discard))

		srv := obs.NewServer(cfg.Metrics, cfg.Progress)
		srv.SetBudget(cfg.Wall.Budget())
		srv.SetReady(true)
		ts := httptest.NewServer(srv.Handler())

		// Scrape continuously while the sweep runs.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/status"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()

		rows, err := Fig6a(cfg)
		close(stop)
		wg.Wait()
		ts.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(rows, bare) {
			t.Fatalf("workers=%d: observability perturbed the results\ngot  %+v\nwant %+v", w, rows, bare)
		}

		st := cfg.Progress.Status()
		if st.CellsStarted == 0 || st.CellsDone != st.CellsStarted {
			t.Fatalf("workers=%d: progress cells started=%d done=%d, want all done",
				w, st.CellsStarted, st.CellsDone)
		}
		if st.TrialsDone != st.TrialsTotal || st.TrialsDone == 0 {
			t.Fatalf("workers=%d: trials done=%d total=%d, want all reported",
				w, st.TrialsDone, st.TrialsTotal)
		}

		// The wall plane must actually have recorded: histograms populated
		// and every checked span an overrun under the 1ns budget.
		snap := cfg.Metrics.Snapshot()
		for _, name := range []string{"transfer_wall_seconds", "slot_wall_seconds"} {
			if hs, ok := snap.Histograms[name]; !ok || hs.Count == 0 {
				t.Fatalf("workers=%d: %s missing or empty in snapshot", w, name)
			}
		}
		bst := cfg.Wall.Budget().Status()
		if bst.Checked == 0 || bst.Overruns != bst.Checked || bst.BurnRate != 1 {
			t.Fatalf("workers=%d: budget status %+v, want full burn", w, bst)
		}
	}
}

// TestRunCellReportsProgressLabels checks the /status cell labels carry the
// figure/design naming the CLIs print.
func TestRunCellReportsProgressLabels(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 2
	cfg.Progress = obs.NewTracker()
	if _, err := Fig6a(cfg); err != nil {
		t.Fatal(err)
	}
	st := cfg.Progress.Status()
	found := false
	for _, c := range st.Cells {
		if strings.HasPrefix(c.Label, "fig6a/") {
			found = true
			if c.Done != int64(cfg.Trials) || c.Total != int64(cfg.Trials) {
				t.Fatalf("cell %+v, want %d/%d trials", c, cfg.Trials, cfg.Trials)
			}
		}
	}
	if !found {
		t.Fatalf("no fig6a/ cell labels in %+v", st.Cells)
	}
}

// TestFig8ReportsProgress checks the threshold study declares one cell per
// (decoder, distance, rate) point.
func TestFig8ReportsProgress(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 5
	cfg.Distances = []int{3}
	cfg.PauliRates = []float64{0.06, 0.08}
	cfg.Progress = obs.NewTracker()
	if _, err := Fig8(cfg); err != nil {
		t.Fatal(err)
	}
	st := cfg.Progress.Status()
	wantCells := len(cfg.Decoders) * len(cfg.Distances) * len(cfg.PauliRates)
	if st.CellsStarted != wantCells || st.CellsDone != wantCells {
		t.Fatalf("cells started=%d done=%d, want %d", st.CellsStarted, st.CellsDone, wantCells)
	}
	if st.TrialsDone != int64(wantCells*cfg.Trials) {
		t.Fatalf("trials done=%d, want %d", st.TrialsDone, wantCells*cfg.Trials)
	}
	for _, c := range st.Cells {
		if !strings.HasPrefix(c.Label, "fig8/") {
			t.Fatalf("unexpected cell label %q", c.Label)
		}
	}
}
