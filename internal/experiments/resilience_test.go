package experiments

import (
	"context"
	"reflect"
	"testing"

	"surfnet/internal/faults"
)

func TestResilienceSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Engine.RecoveryBackoff = 2
	cfg.Engine.ReplanAfterFails = 5
	rows, err := Resilience(cfg, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(ResilienceDesigns); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		label := r.Design.String()
		checkCell(t, label, r.Cell)
		if r.Intensity == 0 {
			if r.Recoveries.Mean() != 0 || r.Replans.Mean() != 0 || r.SkippedCorrections.Mean() != 0 {
				t.Errorf("%s: recovery activity at zero fault intensity", label)
			}
		}
		if d := r.Delivered.Mean(); d < 0 || d > 1 {
			t.Errorf("%s: delivered fraction %v", label, d)
		}
	}
}

func TestResilienceProfileScaling(t *testing.T) {
	if ResilienceProfile(0).Enabled() {
		t.Error("zero intensity should disable every fault scenario")
	}
	p := ResilienceProfile(1000)
	if p.FiberCrashProb > 1 || p.NodeOutageProb > 1 || p.RegionalProb > 1 || p.DriftProb > 1 {
		t.Error("extreme intensities must clamp probabilities to 1")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("scaled profile invalid: %v", err)
	}
}

// TestResilienceWorkerInvariance pins the determinism contract on
// fault-injected runs: with fiber crashes, node outages, regional failures,
// and fidelity drift all active — plus backoff recovery and epoch
// re-planning — every cell is field-for-field identical for any worker count.
func TestResilienceWorkerInvariance(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 3
	cfg.Engine.RecoveryBackoff = 2
	cfg.Engine.ReplanAfterFails = 4
	cfg.Engine.ReplanEpoch = 20
	var want []ResilienceRow
	for _, w := range workerCounts {
		cfg.Workers = w
		rows, err := Resilience(cfg, []float64{6})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d: rows diverge from serial run\ngot  %+v\nwant %+v", w, rows, want)
		}
	}
}

func TestResilienceHonoursContext(t *testing.T) {
	cfg := tinyConfig()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Context = ctx
	if _, err := Resilience(cfg, []float64{1}); err == nil {
		t.Fatal("cancelled context should abort the sweep")
	}
}

func TestResilienceScriptedProfileUsable(t *testing.T) {
	// The engine accepts a scripted profile through the experiment config
	// path (the faultsim CLI builds one for what-if runs).
	cfg := tinyConfig()
	cfg.Engine.Faults = &faults.Profile{
		Script: []faults.ScriptedFault{{Slot: 5, Duration: 10, ID: 0}},
	}
	rows, err := Resilience(cfg, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		checkCell(t, r.Design.String(), r.Cell)
	}
}
