package experiments

import (
	"math"
	"testing"

	"surfnet/internal/decoder"
	"surfnet/internal/surfacecode"
)

// tinyConfig keeps test runs fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Trials = 2
	cfg.Requests = 4
	cfg.MaxMessages = 2
	return cfg
}

func checkCell(t *testing.T, label string, c Cell) {
	t.Helper()
	if c.Throughput.N() == 0 {
		t.Fatalf("%s: no throughput samples", label)
	}
	if v := c.Throughput.Mean(); v < 0 || v > 1 {
		t.Fatalf("%s: throughput %v outside [0,1]", label, v)
	}
	if c.Fidelity.N() > 0 {
		if v := c.Fidelity.Mean(); v < 0 || v > 1 {
			t.Fatalf("%s: fidelity %v outside [0,1]", label, v)
		}
	}
	if c.Latency.N() > 0 && c.Latency.Mean() < 0 {
		t.Fatalf("%s: negative latency", label)
	}
}

func TestFig6aSmoke(t *testing.T) {
	rows, err := Fig6a(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 scenarios x 2 designs
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		checkCell(t, r.Scenario+"/"+r.Design.String(), r.Cell)
		seen[r.Scenario] = true
	}
	if len(seen) != 3 {
		t.Fatalf("scenarios covered: %v", seen)
	}
}

func TestFig6bSweepsSmoke(t *testing.T) {
	cfg := tinyConfig()
	b1, err := Fig6b1(cfg, []float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Fig6b2(cfg, []float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Fig6b3(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	b4, err := Fig6b4(cfg, []float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sweep := range [][]SweepPoint{b1, b2, b3, b4} {
		if len(sweep) != 2 {
			t.Fatalf("sweep has %d points, want 2", len(sweep))
		}
		for _, pt := range sweep {
			checkCell(t, "sweep", pt.Cell)
		}
	}
	// b4's X is the fidelity threshold 1/2^Wc, decreasing in Wc.
	if b4[0].X <= b4[1].X {
		t.Fatalf("fidelity threshold should decrease with Wc: %v vs %v", b4[0].X, b4[1].X)
	}
}

func TestFig7Smoke(t *testing.T) {
	rows, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Fig7Designs) {
		t.Fatalf("rows = %d, want %d", len(rows), 4*len(Fig7Designs))
	}
	for _, r := range rows {
		checkCell(t, r.Scenario+"/"+r.Design.String(), r.Cell)
	}
}

func TestFig8Smoke(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 20
	cfg.Distances = []int{3, 5}
	cfg.PauliRates = []float64{0.02, 0.10}
	points, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 decoders x 2 distances x 2 rates.
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	for _, pt := range points {
		if pt.LogicalRate < 0 || pt.LogicalRate > 1 {
			t.Fatalf("logical rate %v", pt.LogicalRate)
		}
		if pt.Trials != 20 {
			t.Fatalf("trials = %d", pt.Trials)
		}
	}
}

func TestFig8RatesIncreaseWithNoise(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 150
	cfg.Distances = []int{5}
	cfg.PauliRates = []float64{0.01, 0.12}
	cfg.Decoders = []decoder.Decoder{decoder.SurfNet{}}
	points, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].LogicalRate >= points[1].LogicalRate {
		t.Fatalf("logical rate should rise with noise: %v vs %v",
			points[0].LogicalRate, points[1].LogicalRate)
	}
}

func TestEstimateThreshold(t *testing.T) {
	// Synthetic curves crossing at p = 0.07: below it the large code is
	// better, above it worse.
	mk := func(d int, rates ...float64) []Fig8Point {
		ps := []float64{0.06, 0.07, 0.08}
		var out []Fig8Point
		for i, r := range rates {
			out = append(out, Fig8Point{Decoder: "x", Distance: d, PauliRate: ps[i], LogicalRate: r})
		}
		return out
	}
	points := append(mk(9, 0.10, 0.20, 0.30), mk(15, 0.05, 0.20, 0.45)...)
	th := EstimateThreshold(points, "x")
	if math.IsNaN(th) || math.Abs(th-0.07) > 1e-9 {
		t.Fatalf("threshold = %v, want 0.07", th)
	}
	if !math.IsNaN(EstimateThreshold(points, "missing")) {
		t.Fatal("unknown decoder should give NaN")
	}
	// Curves that never cross: NaN.
	points = append(mk(9, 0.30, 0.40, 0.50), mk(15, 0.01, 0.02, 0.03)...)
	if !math.IsNaN(EstimateThreshold(points, "x")) {
		t.Fatal("non-crossing curves should give NaN")
	}
}

func TestFig8Validation(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 0
	if _, err := Fig8(cfg); err == nil {
		t.Fatal("zero trials should fail")
	}
	cfg = DefaultFig8Config()
	cfg.Trials = 1
	cfg.Distances = []int{1}
	if _, err := Fig8(cfg); err == nil {
		t.Fatal("invalid distance should fail")
	}
}

func TestFig8UsesHalvedCoreRates(t *testing.T) {
	// The noise model behind Fig. 8 must halve rates at the Core.
	code := surfacecode.MustNew(9, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.08, 0.15)
	for q := 0; q < code.NumData(); q++ {
		if code.IsCore(q) {
			if nm.Pauli[q] != 0.04 || nm.Erase[q] != 0.075 {
				t.Fatalf("core rates not halved: %v %v", nm.Pauli[q], nm.Erase[q])
			}
		}
	}
}
