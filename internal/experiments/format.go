package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// FormatFig6a renders the Fig. 6(a) comparison as an aligned text table.
func FormatFig6a(rows []Fig6aRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-10s %12s %12s %12s\n",
		"scenario", "design", "throughput", "latency", "fidelity")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %9.3f±%.2f %9.1f±%.1f %9.3f±%.2f\n",
			r.Scenario, r.Design,
			r.Cell.Throughput.Mean(), r.Cell.Throughput.CI95(),
			r.Cell.Latency.Mean(), r.Cell.Latency.CI95(),
			r.Cell.Fidelity.Mean(), r.Cell.Fidelity.CI95())
	}
	return b.String()
}

// FormatSweep renders a Fig. 6(b) sweep with a caller-supplied x label.
func FormatSweep(xLabel string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %12s\n", xLabel, "throughput", "fidelity", "latency")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18.3f %9.3f±%.2f %9.3f±%.2f %9.1f±%.1f\n",
			p.X,
			p.Cell.Throughput.Mean(), p.Cell.Throughput.CI95(),
			p.Cell.Fidelity.Mean(), p.Cell.Fidelity.CI95(),
			p.Cell.Latency.Mean(), p.Cell.Latency.CI95())
	}
	return b.String()
}

// FormatFig7 renders the five-design fidelity comparison grouped by
// scenario.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-16s %12s %12s\n", "scenario", "design", "fidelity", "throughput")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-16s %9.3f±%.2f %9.3f±%.2f\n",
			r.Scenario, r.Design,
			r.Cell.Fidelity.Mean(), r.Cell.Fidelity.CI95(),
			r.Cell.Throughput.Mean(), r.Cell.Throughput.CI95())
	}
	return b.String()
}

// FormatFig8 renders the threshold study as one block per decoder: rows are
// Pauli rates, columns are distances, plus the estimated threshold.
func FormatFig8(points []Fig8Point) string {
	byDecoder := map[string][]Fig8Point{}
	var names []string
	for _, p := range points {
		if _, ok := byDecoder[p.Decoder]; !ok {
			names = append(names, p.Decoder)
		}
		byDecoder[p.Decoder] = append(byDecoder[p.Decoder], p)
	}
	var b strings.Builder
	for _, name := range names {
		pts := byDecoder[name]
		distSet := map[int]bool{}
		rateSet := map[float64]bool{}
		rate := map[[2]float64]float64{}
		for _, p := range pts {
			distSet[p.Distance] = true
			rateSet[p.PauliRate] = true
			rate[[2]float64{float64(p.Distance), p.PauliRate}] = p.LogicalRate
		}
		var dists []int
		for d := range distSet {
			dists = append(dists, d)
		}
		sort.Ints(dists)
		var rates []float64
		for r := range rateSet {
			rates = append(rates, r)
		}
		sort.Float64s(rates)
		fmt.Fprintf(&b, "decoder: %s\n%-8s", name, "pauli")
		for _, d := range dists {
			fmt.Fprintf(&b, " %8s", fmt.Sprintf("d=%d", d))
		}
		b.WriteByte('\n')
		for _, r := range rates {
			fmt.Fprintf(&b, "%-8.4f", r)
			for _, d := range dists {
				fmt.Fprintf(&b, " %8.4f", rate[[2]float64{float64(d), r}])
			}
			b.WriteByte('\n')
		}
		th := EstimateThreshold(points, name)
		if math.IsNaN(th) {
			fmt.Fprintf(&b, "threshold: not bracketed by the swept range\n\n")
		} else {
			fmt.Fprintf(&b, "threshold: %.4f\n\n", th)
		}
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

// FormatResilience renders the fault-intensity sweep grouped by intensity:
// the three evaluation metrics plus the engine's recovery behaviour
// (recoveries, re-plans, and skipped corrections per code).
func FormatResilience(rows []ResilienceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %12s %12s %12s %10s %10s %10s\n",
		"intensity", "design", "fidelity", "delivered", "latency",
		"recov/code", "replans", "skips")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %-14s %9.3f±%.2f %9.3f±%.2f %9.1f±%.1f %10.3f %10.3f %10.3f\n",
			r.Intensity, r.Design,
			r.Cell.Fidelity.Mean(), r.Cell.Fidelity.CI95(),
			r.Delivered.Mean(), r.Delivered.CI95(),
			r.Cell.Latency.Mean(), r.Cell.Latency.CI95(),
			r.Recoveries.Mean(), r.Replans.Mean(), r.SkippedCorrections.Mean())
	}
	return b.String()
}
