package experiments

import (
	"reflect"
	"testing"

	"surfnet/internal/decoder"
	"surfnet/internal/routing"
	"surfnet/internal/topology"
)

// workerCounts are the pool sizes every invariance test compares: serial,
// a small pool, an oversized pool, and the GOMAXPROCS default.
var workerCounts = []int{1, 3, 16, 0}

// TestFig6aWorkerInvariance pins the sim engine's central contract on the
// network experiments: every cell of Fig. 6(a) is field-for-field identical
// for any worker count, because trial randomness derives from the seed and
// trial index and the reduction runs in trial order.
func TestFig6aWorkerInvariance(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 5
	var want []Fig6aRow
	for _, w := range workerCounts {
		cfg.Workers = w
		rows, err := Fig6a(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = rows
			continue
		}
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("workers=%d: rows diverge from serial run\ngot  %+v\nwant %+v", w, rows, want)
		}
	}
}

// TestFig8WorkerInvariance pins the same contract on the decoder threshold
// study, whose trials run through the per-worker scratch arenas.
func TestFig8WorkerInvariance(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 30
	cfg.Distances = []int{5}
	cfg.PauliRates = []float64{0.08}
	var want []Fig8Point
	for _, w := range workerCounts {
		cfg.Workers = w
		points, err := Fig8(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = points
			continue
		}
		if !reflect.DeepEqual(points, want) {
			t.Fatalf("workers=%d: points diverge from serial run\ngot  %+v\nwant %+v", w, points, want)
		}
	}
}

// TestAblationWorkerInvariance pins the contract on an ablation study that
// mixes network cells (AdaptiveStudy) and on a decoder study
// (ErasureGrowthStudy).
func TestAblationWorkerInvariance(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 4
	var wantRows []AblationRow
	var wantPts []DecoderPoint
	for _, w := range workerCounts {
		cfg.Workers = w
		rows, err := AdaptiveStudy(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		pts, err := ErasureGrowthStudy(DecoderStudyConfig{Seed: 1, Trials: 25, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if wantRows == nil {
			wantRows, wantPts = rows, pts
			continue
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Fatalf("workers=%d: adaptive rows diverge from serial run", w)
		}
		if !reflect.DeepEqual(pts, wantPts) {
			t.Fatalf("workers=%d: erasure points diverge from serial run", w)
		}
	}
}

// TestRunCellEmptyTrials is the divisor regression test: when every trial
// schedules zero codes, Throughput must still average over all trials while
// Fidelity and Latency carry no samples at all — an empty trial has no
// communication to measure, and folding placeholder zeros in would deflate
// both means.
func TestRunCellEmptyTrials(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 4
	cfg.UseLP = false // greedy admission makes the rejection path direct
	p := routing.DefaultParams(routing.SurfNet)
	// Thresholds far below any path's accumulated noise with no correction
	// capacity (Omega = 0): every request is rejected, every trial is empty.
	p.Omega = 0
	p.CoreThreshold = 1e-9
	p.TotalThreshold = 1e-9
	spec := trialSpec{
		params:   topology.DefaultParams(topology.Sufficient, topology.GoodConnection),
		design:   routing.SurfNet,
		routing:  p,
		requests: cfg.Requests,
		maxMsgs:  cfg.MaxMessages,
	}
	cell, err := runCell(cfg, spec, "test/empty")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Trials != cfg.Trials || cell.EmptyTrials != cfg.Trials {
		t.Fatalf("trials = %d empty = %d, want both %d", cell.Trials, cell.EmptyTrials, cfg.Trials)
	}
	if cell.Throughput.N() != cfg.Trials {
		t.Fatalf("throughput has %d samples, want %d", cell.Throughput.N(), cfg.Trials)
	}
	if cell.Throughput.Mean() != 0 {
		t.Fatalf("all-rejected throughput mean = %v, want 0", cell.Throughput.Mean())
	}
	if cell.Fidelity.N() != 0 || cell.Latency.N() != 0 {
		t.Fatalf("empty trials leaked into fidelity (%d) or latency (%d) samples",
			cell.Fidelity.N(), cell.Latency.N())
	}
}

// TestRunCellMixedEmptyTrials drives a cell where some trials schedule codes
// and some do not, and checks the divisor contract directly: Throughput.N
// counts every trial, Fidelity.N and Latency.N only the non-empty ones.
func TestRunCellMixedEmptyTrials(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 12
	cfg.UseLP = false
	// Mid-range thresholds with no correction capacity reject all requests
	// in some trials but not others.
	p := routing.DefaultParams(routing.SurfNet)
	p.Omega = 0
	p.CoreThreshold = 0.6
	p.TotalThreshold = 0.6
	spec := trialSpec{
		params:   topology.DefaultParams(topology.Insufficient, topology.PoorConnection),
		design:   routing.SurfNet,
		routing:  p,
		requests: 2,
		maxMsgs:  1,
	}
	cell, err := runCell(cfg, spec, "test/mixed")
	if err != nil {
		t.Fatal(err)
	}
	if cell.Trials != cfg.Trials {
		t.Fatalf("trials = %d, want %d", cell.Trials, cfg.Trials)
	}
	if cell.Throughput.N() != cfg.Trials {
		t.Fatalf("throughput has %d samples, want %d", cell.Throughput.N(), cfg.Trials)
	}
	if cell.EmptyTrials == 0 || cell.EmptyTrials == cfg.Trials {
		t.Fatalf("scenario no longer mixes: %d/%d empty trials", cell.EmptyTrials, cfg.Trials)
	}
	ran := cfg.Trials - cell.EmptyTrials
	if cell.Fidelity.N() != ran || cell.Latency.N() != ran {
		t.Fatalf("fidelity/latency have %d/%d samples, want %d (= %d trials - %d empty)",
			cell.Fidelity.N(), cell.Latency.N(), ran, cfg.Trials, cell.EmptyTrials)
	}
}

// TestDecoderStudyConfigDefaults pins the interactive defaults.
func TestDecoderStudyConfigDefaults(t *testing.T) {
	cfg := DefaultDecoderStudyConfig()
	if cfg.Seed != 1 || cfg.Trials != 200 || cfg.Workers != 0 {
		t.Fatalf("unexpected defaults %+v", cfg)
	}
}

// TestFig8ScratchReuseMatchesFreshDecoders cross-checks the arena path at
// the experiment level: the same Fig. 8 point computed twice in a row (same
// process, reused worker scratch) must agree exactly.
func TestFig8ScratchReuseMatchesFreshDecoders(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 25
	cfg.Distances = []int{3}
	cfg.PauliRates = []float64{0.06}
	cfg.Decoders = []decoder.Decoder{decoder.UnionFind{}, decoder.SurfNet{}}
	first, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeated runs diverge: %+v vs %+v", first, second)
	}
}
