package experiments

import (
	"fmt"
	"math"

	"surfnet/internal/core"
	"surfnet/internal/faults"
	"surfnet/internal/metrics"
	"surfnet/internal/rng"
	"surfnet/internal/routing"
	"surfnet/internal/sim"
	"surfnet/internal/topology"
)

// ResilienceDesigns lists the designs compared by the resilience sweep:
// SurfNet against the Raw and purification-2 baselines, the paper's headline
// robustness claim (§V-B failure handling) under a fault model wider than the
// paper's own.
var ResilienceDesigns = []routing.Design{
	routing.SurfNet,
	routing.Raw,
	routing.Purification2,
}

// ResilienceProfile returns the fault scenario at a given intensity. The
// intensity scales every per-slot fault probability from the unit profile —
// i.i.d. fiber crashes, server outages, correlated regional failures, and
// fidelity drift — while repair times and the drift shape stay fixed, so the
// sweep varies how often faults strike, not how hard each one hits.
func ResilienceProfile(intensity float64) faults.Profile {
	clamp := func(p float64) float64 { return math.Min(1, math.Max(0, p)) }
	return faults.Profile{
		FiberCrashProb:      clamp(0.010 * intensity),
		FiberRepairSlots:    15,
		NodeOutageProb:      clamp(0.005 * intensity),
		NodeRepairSlots:     20,
		RegionalProb:        clamp(0.001 * intensity),
		RegionalRepairSlots: 30,
		DriftProb:           clamp(0.020 * intensity),
		DriftWindow:         10,
		DriftDecay:          0.97,
	}
}

// ResilienceRow is one cell of the resilience sweep: one design at one fault
// intensity, with the standard metrics plus the recovery behaviour.
type ResilienceRow struct {
	Intensity float64
	Design    routing.Design
	Cell      Cell
	// Delivered summarizes per-trial delivered fractions (codes arriving
	// within the slot budget; failures here are timeouts).
	Delivered metrics.Summary
	// Recoveries, Replans, and SkippedCorrections summarize the per-trial
	// mean count per executed code of local recovery reroutes, epoch
	// re-plans, and corrections skipped at down servers.
	Recoveries         metrics.Summary
	Replans            metrics.Summary
	SkippedCorrections metrics.Summary
}

// resilienceOutcome is one trial's contribution, reduced in trial order.
type resilienceOutcome struct {
	throughput float64
	ran        bool
	fidelity   float64
	latency    float64
	delivered  float64
	recPer     float64
	replanPer  float64
	skipPer    float64
}

// Resilience sweeps fault intensity on the sufficient/good scenario for every
// design in ResilienceDesigns. The same fault profile drives all designs
// (purification baselines react to the fiber and drift components — they have
// no correction servers); the engine's backoff and re-planning knobs come
// from cfg.Engine, so the caller chooses the recovery policy under test.
func Resilience(cfg Config, intensities []float64) ([]ResilienceRow, error) {
	if intensities == nil {
		intensities = []float64{0, 0.5, 1, 2, 4, 8}
	}
	var rows []ResilienceRow
	for _, x := range intensities {
		for _, design := range ResilienceDesigns {
			engine := cfg.Engine
			if x > 0 {
				p := ResilienceProfile(x)
				if cfg.Engine.Faults != nil {
					p.Script = cfg.Engine.Faults.Script // keep caller's timetable
				}
				engine.Faults = &p
			}
			spec := trialSpec{
				params:   topology.DefaultParams(topology.Sufficient, topology.GoodConnection),
				design:   design,
				routing:  routing.DefaultParams(design),
				requests: cfg.Requests,
				maxMsgs:  cfg.MaxMessages,
			}
			row, err := runResilienceCell(cfg, engine, spec,
				fmt.Sprintf("resilience/%.2f/%s", x, design))
			if err != nil {
				return nil, err
			}
			row.Intensity, row.Design = x, design
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runResilienceCell mirrors runCell but also reduces the per-code recovery
// behaviour out of the engine outcomes.
func runResilienceCell(cfg Config, engine core.Config, spec trialSpec, label string) (ResilienceRow, error) {
	if engine.Metrics == nil {
		engine.Metrics = cfg.Metrics
	}
	if engine.Tracer == nil {
		engine.Tracer = cfg.Tracer
	}
	if spec.routing.Metrics == nil {
		spec.routing.Metrics = cfg.Metrics
	}
	if spec.routing.Tracer == nil {
		spec.routing.Tracer = cfg.Tracer
	}
	root := rng.New(cfg.Seed).Split(label)
	ctx := cfg.context()
	if cfg.Progress != nil {
		cell := cfg.Progress.StartCell(label, cfg.Trials)
		defer cell.Finish()
		ctx = sim.WithProgress(ctx, cell)
	}
	outcomes, err := sim.Run(ctx, cfg.Trials, cfg.Workers,
		func(trial int, _ *sim.Worker) (resilienceOutcome, error) {
			src := root.SplitN("trial", trial)
			net, err := topology.Generate(spec.params, src.Split("net"))
			if err != nil {
				return resilienceOutcome{}, fmt.Errorf("experiments: generating network: %w", err)
			}
			reqs, err := topology.GenRequests(net, spec.requests, spec.maxMsgs, src.Split("reqs"))
			if err != nil {
				return resilienceOutcome{}, fmt.Errorf("experiments: generating requests: %w", err)
			}
			sched, err := schedule(net, reqs, spec.routing, cfg.UseLP)
			if err != nil {
				return resilienceOutcome{}, fmt.Errorf("experiments: scheduling %v: %w", spec.design, err)
			}
			out := resilienceOutcome{throughput: sched.Throughput()}
			if sched.AcceptedCodes() == 0 {
				return out, nil // no executions to measure
			}
			res, err := core.Run(net, sched, engine, src.Split("run"))
			if err != nil {
				return resilienceOutcome{}, fmt.Errorf("experiments: executing %v: %w", spec.design, err)
			}
			out.ran = true
			out.fidelity = res.Fidelity()
			out.latency = res.MeanLatency()
			out.delivered = res.DeliveredFraction()
			n := float64(len(res.Outcomes))
			for _, o := range res.Outcomes {
				out.recPer += float64(o.Recoveries) / n
				out.replanPer += float64(o.Replans) / n
				out.skipPer += float64(o.SkippedCorrections) / n
			}
			return out, nil
		})
	if err != nil {
		return ResilienceRow{}, err
	}
	// Ordered reduction, as in runCell: trial order keeps the streaming
	// means identical for every worker count.
	var row ResilienceRow
	for _, out := range outcomes {
		row.Cell.Trials++
		row.Cell.Throughput.Add(out.throughput)
		if !out.ran {
			row.Cell.EmptyTrials++
			continue
		}
		row.Cell.Fidelity.Add(out.fidelity)
		row.Cell.Latency.Add(out.latency)
		row.Delivered.Add(out.delivered)
		row.Recoveries.Add(out.recPer)
		row.Replans.Add(out.replanPer)
		row.SkippedCorrections.Add(out.skipPer)
	}
	return row, nil
}
