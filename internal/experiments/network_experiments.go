package experiments

import (
	"fmt"
	"math"

	"surfnet/internal/routing"
	"surfnet/internal/topology"
)

// Fig6aRow is one cell of Fig. 6(a): a design in a facility scenario, with
// the three evaluation metrics of §VI-C.
type Fig6aRow struct {
	Scenario string
	Design   routing.Design
	Cell     Cell
}

// Fig6a reproduces the Fig. 6(a) tables and fidelity plots: Raw vs SurfNet
// across the abundant/sufficient/insufficient facility scenarios (good
// connections).
func Fig6a(cfg Config) ([]Fig6aRow, error) {
	var rows []Fig6aRow
	for _, fac := range []topology.Facilities{topology.Abundant, topology.Sufficient, topology.Insufficient} {
		for _, design := range []routing.Design{routing.Raw, routing.SurfNet} {
			spec := trialSpec{
				params:   topology.DefaultParams(fac, topology.GoodConnection),
				design:   design,
				routing:  routing.DefaultParams(design),
				requests: cfg.Requests,
				maxMsgs:  cfg.MaxMessages,
			}
			cell, err := runCell(cfg, spec, fmt.Sprintf("fig6a/%s/%s", fac.Name, design))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6aRow{Scenario: fac.Name, Design: design, Cell: cell})
		}
	}
	return rows, nil
}

// SweepPoint is one x-value of a Fig. 6(b) parameter sweep with the two
// plotted metrics.
type SweepPoint struct {
	X    float64
	Cell Cell
}

// Fig6b1 sweeps facility capacity (Fig. 6(b.1)): switch/server storage is
// scaled by each factor on the sufficient scenario.
func Fig6b1(cfg Config, factors []float64) ([]SweepPoint, error) {
	if factors == nil {
		factors = []float64{0.4, 0.7, 1.0, 1.3, 1.6}
	}
	var points []SweepPoint
	for _, f := range factors {
		fac := topology.Sufficient
		fac.SwitchCapacity = int(float64(fac.SwitchCapacity) * f)
		spec := trialSpec{
			params:   topology.DefaultParams(fac, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  routing.DefaultParams(routing.SurfNet),
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(cfg, spec, fmt.Sprintf("fig6b1/%.2f", f))
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: f, Cell: cell})
	}
	return points, nil
}

// Fig6b2 sweeps the entanglement generation rate (Fig. 6(b.2)): both the
// prepared-pair budget and the per-slot generation probability scale with
// each factor.
func Fig6b2(cfg Config, factors []float64) ([]SweepPoint, error) {
	if factors == nil {
		factors = []float64{0.4, 0.7, 1.0, 1.3, 1.6}
	}
	var points []SweepPoint
	for _, f := range factors {
		fac := topology.Sufficient
		fac.EntPairs = int(float64(fac.EntPairs) * f)
		fac.EntRate = math.Min(0.95, fac.EntRate*f)
		spec := trialSpec{
			params:   topology.DefaultParams(fac, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  routing.DefaultParams(routing.SurfNet),
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(cfg, spec, fmt.Sprintf("fig6b2/%.2f", f))
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: f, Cell: cell})
	}
	return points, nil
}

// Fig6b3 sweeps messages per request (Fig. 6(b.3)).
func Fig6b3(cfg Config, messages []int) ([]SweepPoint, error) {
	if messages == nil {
		messages = []int{1, 2, 3, 4, 5, 6}
	}
	var points []SweepPoint
	for _, m := range messages {
		spec := trialSpec{
			params:   topology.DefaultParams(topology.Sufficient, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  routing.DefaultParams(routing.SurfNet),
			requests: cfg.Requests,
			maxMsgs:  m,
		}
		cell, err := runCell(cfg, spec, fmt.Sprintf("fig6b3/%d", m))
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: float64(m), Cell: cell})
	}
	return points, nil
}

// Fig6b4 sweeps the routing fidelity threshold 1/2^Wc (Fig. 6(b.4)). Higher
// thresholds are more selective: lower throughput, higher fidelity. The
// whole-code threshold W tracks Wc at a fixed offset.
func Fig6b4(cfg Config, coreThresholds []float64) ([]SweepPoint, error) {
	if coreThresholds == nil {
		coreThresholds = []float64{0.4, 0.7, 1.0, 1.4, 1.8, 2.2}
	}
	var points []SweepPoint
	for _, wc := range coreThresholds {
		p := routing.DefaultParams(routing.SurfNet)
		p.CoreThreshold = wc
		p.TotalThreshold = wc + 0.2
		spec := trialSpec{
			params:   topology.DefaultParams(topology.Sufficient, topology.GoodConnection),
			design:   routing.SurfNet,
			routing:  p,
			requests: cfg.Requests,
			maxMsgs:  cfg.MaxMessages,
		}
		cell, err := runCell(cfg, spec, fmt.Sprintf("fig6b4/%.2f", wc))
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{X: p.FidelityThreshold(), Cell: cell})
	}
	return points, nil
}

// Fig7Row is one bar of Fig. 7: a design's average communication fidelity in
// one of the four scenarios.
type Fig7Row struct {
	Scenario string
	Design   routing.Design
	Cell     Cell
}

// Fig7Designs lists the five compared designs in paper order.
var Fig7Designs = []routing.Design{
	routing.SurfNet,
	routing.Raw,
	routing.Purification1,
	routing.Purification2,
	routing.Purification9,
}

// Fig7 reproduces the overall comparison: five designs across four scenarios
// (abundant/limited facilities x good/poor connections), reporting average
// communication fidelity.
func Fig7(cfg Config) ([]Fig7Row, error) {
	type scenario struct {
		name string
		fac  topology.Facilities
		fr   topology.FidelityRange
	}
	scenarios := []scenario{
		{"abundant-good", topology.Abundant, topology.GoodConnection},
		{"abundant-poor", topology.Abundant, topology.PoorConnection},
		{"limited-good", topology.Insufficient, topology.GoodConnection},
		{"limited-poor", topology.Insufficient, topology.PoorConnection},
	}
	var rows []Fig7Row
	for _, sc := range scenarios {
		for _, design := range Fig7Designs {
			// The paper configures "the routing protocols in all
			// networks to yield similar throughputs" (§VI-C); with
			// per-message consumption of 1+N pairs per fiber the
			// purification baselines already land near the SurfNet
			// budget (n = 7 Core teleports per code).
			spec := trialSpec{
				params:   topology.DefaultParams(sc.fac, sc.fr),
				design:   design,
				routing:  routing.DefaultParams(design),
				requests: cfg.Requests,
				maxMsgs:  cfg.MaxMessages,
			}
			cell, err := runCell(cfg, spec, fmt.Sprintf("fig7/%s/%s", sc.name, design))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{Scenario: sc.name, Design: design, Cell: cell})
		}
	}
	return rows, nil
}
