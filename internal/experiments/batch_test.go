package experiments

import (
	"math"
	"reflect"
	"testing"

	"surfnet/internal/decoder"
)

// TestFig8BatchWorkerInvariance pins the packed engine's stream contract on
// the threshold study: with Batch set, rates must be identical for every
// worker count because each 64-lane batch derives its randomness from the
// batch index, never the worker id. The trial count deliberately leaves a
// partial tail batch.
func TestFig8BatchWorkerInvariance(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Batch = true
	cfg.Trials = 150 // 2 full batches + a 22-lane tail
	cfg.Distances = []int{3, 5}
	cfg.PauliRates = []float64{0.06}
	var want []Fig8Point
	for _, w := range workerCounts {
		cfg.Workers = w
		points, err := Fig8(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if want == nil {
			want = points
			continue
		}
		if !reflect.DeepEqual(points, want) {
			t.Fatalf("workers=%d: batch points diverge from serial run\ngot  %+v\nwant %+v", w, points, want)
		}
	}
}

// TestFig8BatchMatchesScalarStatistically sanity-checks the packed rates
// against the scalar pipeline on the same cell: the two stream families
// differ, so rates agree statistically, not bitwise. With 1920 trials the
// binomial sigma at rate ~0.15 is ~0.008; 6 sigma bounds the flake rate
// far below CI noise.
func TestFig8BatchMatchesScalarStatistically(t *testing.T) {
	cfg := DefaultFig8Config()
	cfg.Trials = 1920
	cfg.Distances = []int{3}
	cfg.PauliRates = []float64{0.06}
	cfg.Decoders = []decoder.Decoder{decoder.UnionFind{}}

	scalar, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = true
	packed, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar) != 1 || len(packed) != 1 {
		t.Fatalf("unexpected point counts: %d scalar, %d packed", len(scalar), len(packed))
	}
	diff := packed[0].LogicalRate - scalar[0].LogicalRate
	if diff < 0 {
		diff = -diff
	}
	// Combined two-sample binomial bound around the scalar estimate.
	m := scalar[0].LogicalRate
	sigma := math.Sqrt(2 * m * (1 - m) / float64(cfg.Trials))
	if diff > 6*sigma {
		t.Fatalf("packed rate %.4f vs scalar %.4f: |diff| %.4f exceeds 6 sigma (%.4f)",
			packed[0].LogicalRate, scalar[0].LogicalRate, diff, 6*sigma)
	}
}

// TestFig6aBatchByteIdentical pins the Fig 6/7 batch wiring: scheduling
// trials in 64-trial slabs must not change a single byte of the cells,
// because every trial keeps its SplitN("trial", i) stream and the reduction
// stays ordered.
func TestFig6aBatchByteIdentical(t *testing.T) {
	cfg := tinyConfig()
	cfg.Trials = 5
	scalarRows, err := Fig6a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = true
	for _, w := range workerCounts {
		cfg.Workers = w
		rows, err := Fig6a(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(rows, scalarRows) {
			t.Fatalf("workers=%d: batched cells diverge from per-trial cells\ngot  %+v\nwant %+v", w, rows, scalarRows)
		}
	}
}
