package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"surfnet/internal/batch"
	"surfnet/internal/decoder"
	"surfnet/internal/obs"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/sim"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// Fig8Config parameterizes the decoder threshold study of Fig. 8.
type Fig8Config struct {
	// Context, when non-nil, cancels the trial pool between trials (the
	// CLIs pass their signal-aware run context). Nil selects
	// context.Background().
	Context context.Context
	Seed    uint64
	// Trials is the Monte-Carlo sample count per (decoder, distance,
	// rate) point.
	Trials int
	// Workers is the trial worker-pool size; <= 0 selects
	// runtime.GOMAXPROCS(0) and 1 forces the serial path. Logical rates
	// are identical for every value (see internal/sim).
	Workers int
	// Batch decodes 64 trials per machine word on the packed engine
	// (internal/batch) instead of one scalar decode per trial. Rates stay
	// worker-invariant (the batch index seeds each stream) and every
	// lane's verdict equals the scalar pipeline's verdict on the same
	// error realization, but the sampled realizations come from a
	// different stream family than the scalar path's, so rates are
	// statistically — not bitwise — comparable with scalar runs. Only
	// UnionFind and default SurfNet decoders are supported.
	Batch bool
	// Distances are the evaluated code distances; the paper uses
	// 9, 11, 13, 15.
	Distances []int
	// PauliRates are the physical error rates; the paper sweeps
	// 5.0% - 8.5%.
	PauliRates []float64
	// ErasureRate is held fixed; the paper uses 15%.
	ErasureRate float64
	// Decoders are the compared decoders; the paper compares the
	// Union-Find baseline against the SurfNet Decoder.
	Decoders []decoder.Decoder
	// Layout selects the Core geometry.
	Layout surfacecode.CoreLayout
	// Metrics, when non-nil, collects per-decoder invocation counters and
	// wall-time / syndrome-weight / correction-weight histograms across
	// the whole study (decoderbench reports its p50/p99 from them).
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives one live cell per (decoder,
	// distance, rate) point for the obs /status endpoint.
	Progress *obs.Tracker
}

// DefaultFig8Config returns the paper's Fig. 8 settings with an
// interactively sized trial count.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Seed:        1,
		Trials:      300,
		Distances:   []int{9, 11, 13, 15},
		PauliRates:  []float64{0.050, 0.055, 0.060, 0.065, 0.070, 0.075, 0.080, 0.085},
		ErasureRate: 0.15,
		Decoders:    []decoder.Decoder{decoder.UnionFind{}, decoder.SurfNet{}},
		Layout:      surfacecode.CoreLShape,
	}
}

// Fig8Point is one point of a Fig. 8 curve.
type Fig8Point struct {
	Decoder     string
	Distance    int
	PauliRate   float64
	LogicalRate float64
	Trials      int
}

// Fig8 reproduces the threshold plots: for every decoder, distance and Pauli
// rate, the logical error rate of the code under Pauli + erasure noise with
// both rates halved on the Core part (§VI-B).
func Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: Fig8 trials %d < 1", cfg.Trials)
	}
	var points []Fig8Point
	for _, dec := range cfg.Decoders {
		for _, d := range cfg.Distances {
			code, err := surfacecode.New(d, cfg.Layout)
			if err != nil {
				return nil, fmt.Errorf("experiments: building d=%d code: %w", d, err)
			}
			for _, p := range cfg.PauliRates {
				ctx := ctxOrBackground(cfg.Context)
				cell := cfg.Progress.StartCell(
					fmt.Sprintf("fig8/%s/d%d/p%.3f", dec.Name(), d, p), cfg.Trials)
				if cell != nil {
					ctx = sim.WithProgress(ctx, cell)
				}
				var rate float64
				var err error
				if cfg.Batch {
					rate, err = batchLogicalRate(ctx, code, dec, p, cfg.ErasureRate, cfg.Trials, cfg.Workers, cfg.Seed, cfg.Metrics)
				} else {
					rate, err = logicalRate(ctx, code, dec, p, cfg.ErasureRate, cfg.Trials, cfg.Workers, cfg.Seed, cfg.Metrics)
				}
				cell.Finish()
				if err != nil {
					return nil, err
				}
				points = append(points, Fig8Point{
					Decoder:     dec.Name(),
					Distance:    d,
					PauliRate:   p,
					LogicalRate: rate,
					Trials:      cfg.Trials,
				})
			}
		}
	}
	return points, nil
}

// fig8Scratch is the per-worker arena of the threshold study's hot loop:
// reusable sample buffers plus the decoder's own scratch, so steady-state
// trials allocate nothing.
type fig8Scratch struct {
	frame  quantum.Frame
	erased []bool
	dec    *decoder.Scratch
}

// logicalRate Monte-Carlos the logical error rate of one configuration on
// the sim worker pool. Each trial's error realization derives from the seed
// and trial index, so the rate is identical for any worker count.
func logicalRate(ctx context.Context, code *surfacecode.Code, dec decoder.Decoder, pauli, erasure float64, trials, workers int, seed uint64, reg *telemetry.Registry) (float64, error) {
	nm := surfacecode.UniformNoise(code, pauli, erasure)
	probs := nm.EdgeErrorProb()
	// The probs vector is fixed for the whole cell, so one epoch tag lets
	// the MWPM cache skip the per-decode fidelity-vector hash. Worker
	// arenas are reused across cells (with different probs), so the tag is
	// re-installed on every trial.
	epoch := decoder.NewProbsEpoch()
	root := rng.New(seed).Split(fmt.Sprintf("fig8/%s/%d/%.4f", dec.Name(), code.Distance(), pauli))
	failed, err := sim.Run(ctx, trials, workers,
		func(i int, w *sim.Worker) (bool, error) {
			sc := sim.Scratch(w, "fig8", func() *fig8Scratch {
				return &fig8Scratch{dec: decoder.NewScratch()}
			})
			sc.dec.SetProbsEpoch(epoch)
			sc.frame, sc.erased = nm.SampleInto(root.SplitN("t", i), sc.frame, sc.erased)
			res, _, err := decoder.DecodeFrameWith(code, dec, sc.frame, sc.erased, probs, reg, sc.dec)
			if err != nil {
				return false, fmt.Errorf("experiments: decoding d=%d p=%v trial %d: %w",
					code.Distance(), pauli, i, err)
			}
			return res.Failed(), nil
		})
	if err != nil {
		return 0, err
	}
	fails := 0
	for _, f := range failed {
		if f {
			fails++
		}
	}
	return float64(fails) / float64(trials), nil
}

// batchScratch is the per-worker arena of the packed threshold study: one
// batch.Engine per (decoder, distance, rate) cell, rebuilt when the worker
// crosses into a new cell (arenas outlive cells).
type batchScratch struct {
	eng *batch.Engine
	key string
}

// batchLogicalRate is logicalRate on the packed 64-lane engine: each
// sim.RunBatch work unit decodes up to 64 trials in one Engine.Run, with the
// batch index — never the worker id — seeding the rng stream
// (root.SplitN("batch", i)), so rates are identical for every worker count.
func batchLogicalRate(ctx context.Context, code *surfacecode.Code, dec decoder.Decoder, pauli, erasure float64, trials, workers int, seed uint64, reg *telemetry.Registry) (float64, error) {
	nm := surfacecode.UniformNoise(code, pauli, erasure)
	root := rng.New(seed).Split(fmt.Sprintf("fig8/%s/%d/%.4f", dec.Name(), code.Distance(), pauli))
	key := fmt.Sprintf("%s/%d/%.4f/%.4f", dec.Name(), code.Distance(), pauli, erasure)
	failed, err := sim.RunBatch(ctx, trials, batch.Lanes, workers,
		func(b sim.Batch, w *sim.Worker) ([]bool, error) {
			sc := sim.Scratch(w, "fig8batch", func() *batchScratch { return &batchScratch{} })
			if sc.key != key {
				eng, err := batch.NewEngine(code, nm, dec)
				if err != nil {
					return nil, fmt.Errorf("experiments: building packed engine for d=%d p=%v: %w", code.Distance(), pauli, err)
				}
				sc.eng, sc.key = eng, key
			}
			mask, stats, err := sc.eng.Run(root.SplitN("batch", b.Index), b.Len)
			if err != nil {
				return nil, fmt.Errorf("experiments: packed decode d=%d p=%v batch %d: %w",
					code.Distance(), pauli, b.Index, err)
			}
			if reg != nil {
				prefix := "batch." + dec.Name() + "."
				reg.Counter(prefix + "fast_lanes").Add(int64(stats.FastLanes))
				reg.Counter(prefix + "fallback_lanes").Add(int64(stats.FallbackLanes))
				reg.Counter(prefix + "empty_lanes").Add(int64(stats.EmptyLanes))
			}
			out := make([]bool, b.Len)
			for l := range out {
				out[l] = mask>>uint(l)&1 == 1
			}
			return out, nil
		})
	if err != nil {
		return 0, err
	}
	fails := 0
	for _, f := range failed {
		if f {
			fails++
		}
	}
	return float64(fails) / float64(trials), nil
}

// EstimateThreshold locates the error threshold of a decoder from its Fig. 8
// points: the Pauli rate where the smallest-distance and largest-distance
// curves cross (below threshold larger codes win; above they lose). It
// returns NaN when the curves do not cross within the swept range.
func EstimateThreshold(points []Fig8Point, decoderName string) float64 {
	byDist := map[int][]Fig8Point{}
	for _, pt := range points {
		if pt.Decoder == decoderName {
			byDist[pt.Distance] = append(byDist[pt.Distance], pt)
		}
	}
	if len(byDist) < 2 {
		return math.NaN()
	}
	var dists []int
	for d := range byDist {
		dists = append(dists, d)
	}
	sort.Ints(dists)
	lo := byDist[dists[0]]
	hi := byDist[dists[len(dists)-1]]
	sort.Slice(lo, func(i, j int) bool { return lo[i].PauliRate < lo[j].PauliRate })
	sort.Slice(hi, func(i, j int) bool { return hi[i].PauliRate < hi[j].PauliRate })
	if len(lo) != len(hi) {
		return math.NaN()
	}
	// diff(p) = rate_small(p) - rate_large(p): positive below threshold
	// (the larger code has the lower logical rate), negative above. Find
	// the sign change.
	prev := lo[0].LogicalRate - hi[0].LogicalRate
	for i := 1; i < len(lo); i++ {
		cur := lo[i].LogicalRate - hi[i].LogicalRate
		if prev > 0 && cur <= 0 {
			// Linear interpolation between the two rates.
			p0, p1 := lo[i-1].PauliRate, lo[i].PauliRate
			if cur == prev {
				return (p0 + p1) / 2
			}
			return p0 + (p1-p0)*(0-prev)/(cur-prev)
		}
		prev = cur
	}
	return math.NaN()
}
