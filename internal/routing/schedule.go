package routing

import (
	"fmt"

	"surfnet/internal/network"
	"surfnet/internal/quantum"
)

// CodeRoute is the scheduled route of one surface code: the node-disjoint
// description of where its Core and Support parts travel and where error
// corrections happen.
type CodeRoute struct {
	// CorePath lists fiber IDs from source to destination for the Core
	// part (entanglement-based channel). Empty for the Raw design.
	CorePath []int
	// SupportPath lists fiber IDs for the Support part (plain channel).
	// For Raw, the whole code travels here; empty for purification
	// designs (everything teleports on CorePath).
	SupportPath []int
	// Servers lists the node IDs where error correction is scheduled, in
	// path order. Always empty for purification designs.
	Servers []int
	// CoreNoise is the per-code accumulated Core noise after error
	// corrections (the LHS of the first Eq. 6 constraint).
	CoreNoise float64
	// TotalNoise is the per-code whole-code noise after corrections (the
	// LHS of the second Eq. 6 constraint), with the 1/2 purification
	// factor applied to the Core contribution.
	TotalNoise float64
	// Distance is the adaptively chosen code distance (QoS-adaptive
	// sizing); zero means the schedule's default code.
	Distance int
}

// ExpectedFidelity converts the scheduled total noise into the per-code
// expected communication fidelity 2^-noise (the b.4 convention).
func (cr CodeRoute) ExpectedFidelity() float64 {
	n := cr.TotalNoise
	if n < 0 {
		n = 0
	}
	return quantum.FidelityFromNoise(n)
}

// RequestSchedule is the scheduling outcome for one request.
type RequestSchedule struct {
	Request network.Request
	// Codes holds one route per accepted surface code; len(Codes) is Y_k.
	Codes []CodeRoute
}

// Accepted reports Y_k, the number of codes scheduled.
func (rs RequestSchedule) Accepted() int { return len(rs.Codes) }

// Schedule is the offline-scheduling output handed to online execution.
type Schedule struct {
	Design   Design
	Params   Params
	Requests []RequestSchedule
}

// Throughput is the paper's metric: executed communications divided by
// requested communications (§VI-C), counted in surface codes.
func (s Schedule) Throughput() float64 {
	req, acc := 0, 0
	for _, rs := range s.Requests {
		req += rs.Request.Messages
		acc += rs.Accepted()
	}
	if req == 0 {
		return 0
	}
	return float64(acc) / float64(req)
}

// AcceptedCodes counts all scheduled surface codes.
func (s Schedule) AcceptedCodes() int {
	total := 0
	for _, rs := range s.Requests {
		total += rs.Accepted()
	}
	return total
}

// MeanExpectedFidelity averages the scheduled per-code expected fidelity
// across all accepted codes; it returns 0 when nothing was scheduled.
func (s Schedule) MeanExpectedFidelity() float64 {
	sum, n := 0.0, 0
	for _, rs := range s.Requests {
		for _, cr := range rs.Codes {
			sum += cr.ExpectedFidelity()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// capacityState tracks remaining network resources while building an
// integral schedule.
type capacityState struct {
	net      *network.Network
	nodeCap  []int // remaining eta_r
	entPairs []int // remaining eta_e
}

func newCapacityState(net *network.Network, p Params) *capacityState {
	cs := &capacityState{
		net:      net,
		nodeCap:  make([]int, net.NumNodes()),
		entPairs: make([]int, net.NumFibers()),
	}
	for i := 0; i < net.NumNodes(); i++ {
		c := net.Node(i).Capacity
		if p.Design == Raw {
			c = int(float64(c) * p.RawCapacityFactor)
		}
		cs.nodeCap[i] = c
	}
	for i := 0; i < net.NumFibers(); i++ {
		cs.entPairs[i] = net.Fiber(i).EntPairs
	}
	return cs
}

// chargeNode consumes qubit-slots of storage at node v (no-op for users, who
// source/sink their own traffic).
func (cs *capacityState) chargeNode(v, qubits int) error {
	if cs.net.Node(v).Role == network.User {
		return nil
	}
	if cs.nodeCap[v] < qubits {
		return fmt.Errorf("routing: node %d out of capacity (%d < %d)", v, cs.nodeCap[v], qubits)
	}
	cs.nodeCap[v] -= qubits
	return nil
}

// chargeFiber consumes prepared entangled pairs on fiber f.
func (cs *capacityState) chargeFiber(f, pairs int) error {
	if cs.entPairs[f] < pairs {
		return fmt.Errorf("routing: fiber %d out of entangled pairs (%d < %d)", f, cs.entPairs[f], pairs)
	}
	cs.entPairs[f] -= pairs
	return nil
}

// pathNodes expands a fiber path starting at src into the visited node
// sequence (src, ..., dst).
func pathNodes(net *network.Network, src int, fibers []int) []int {
	nodes := []int{src}
	v := src
	for _, fi := range fibers {
		v = net.Other(fi, v)
		nodes = append(nodes, v)
	}
	return nodes
}
