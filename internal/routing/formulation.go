package routing

import (
	"fmt"
	"math"
	"sort"

	"surfnet/internal/lp"
	"surfnet/internal/network"
	"surfnet/internal/telemetry"
)

// Formulation is the LP relaxation of the routing integer program (Eq. 1-6)
// for the SurfNet or Raw design, together with the variable layout needed to
// interpret its solution.
//
// Variables per request k (stride = 1 + 4F + S, F fibers, S servers):
//
//	Y_k                   at base
//	a_e^k  per arc e      at base + 1 + arc        (2F arcs: fiber x direction)
//	b_e^k  per arc e      at base + 1 + 2F + arc
//	x_r^k  per server r   at base + 1 + 4F + serverPos
//
// Noise sums are normalized per code (divided by n for the Core constraint
// and by n+m for the whole-code constraint) so the thresholds Wc and W carry
// the same per-code units as the §V-A worked example and the Fig. 6(b.4)
// fidelity threshold 1/2^Wc.
type Formulation struct {
	Problem *lp.Problem
	net     *network.Network
	reqs    []network.Request
	params  Params
	servers []int
	stride  int
}

// arcCount returns the number of directed arcs (two per fiber).
func (f *Formulation) arcCount() int { return 2 * f.net.NumFibers() }

// yVar returns the column of Y_k.
func (f *Formulation) yVar(k int) int { return k * f.stride }

// aVar returns the column of a_e^k for arc (fiber, dir), dir 0 = A->B.
func (f *Formulation) aVar(k, fiber, dir int) int {
	return k*f.stride + 1 + 2*fiber + dir
}

// bVar returns the column of b_e^k.
func (f *Formulation) bVar(k, fiber, dir int) int {
	return k*f.stride + 1 + f.arcCount() + 2*fiber + dir
}

// xVar returns the column of x_r^k for the serverPos-th server.
func (f *Formulation) xVar(k, serverPos int) int {
	return k*f.stride + 1 + 2*f.arcCount() + serverPos
}

// arcHead returns the head node of (fiber, dir).
func (f *Formulation) arcHead(fiber, dir int) int {
	fb := f.net.Fiber(fiber)
	if dir == 0 {
		return fb.B
	}
	return fb.A
}

// arcTail returns the tail node of (fiber, dir).
func (f *Formulation) arcTail(fiber, dir int) int {
	fb := f.net.Fiber(fiber)
	if dir == 0 {
		return fb.A
	}
	return fb.B
}

// BuildLP assembles the LP relaxation for the SurfNet or Raw design.
// Purification designs are not expressible in the Eq. (1)-(6) program (they
// have no Core/Support split and no error correction); schedule those with
// Greedy directly.
func BuildLP(net *network.Network, reqs []network.Request, p Params) (*Formulation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Design != SurfNet && p.Design != Raw {
		return nil, fmt.Errorf("routing: design %v has no IP formulation; use Greedy", p.Design)
	}
	for i, r := range reqs {
		if err := r.Validate(net); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	f := &Formulation{
		net:     net,
		reqs:    reqs,
		params:  p,
		servers: net.NodesByRole(network.Server),
	}
	f.stride = 1 + 4*net.NumFibers() + len(f.servers)
	f.Problem = lp.NewMaximize(f.stride * len(reqs))

	// Objective (Eq. 1): maximize total scheduled codes.
	for k := range reqs {
		f.Problem.SetObjective(f.yVar(k), 1)
	}
	if err := f.addPerRequestRows(); err != nil {
		return nil, err
	}
	if err := f.addNetworkRows(); err != nil {
		return nil, err
	}
	return f, nil
}

// coreQubits returns the Core size n used in flow couplings; the Raw design
// carries no Core flow.
func (f *Formulation) coreQubits() int {
	if f.params.Design == Raw {
		return 0
	}
	return f.params.CoreQubits
}

// supportQubits returns the Support flow multiplier: m for SurfNet, the
// whole code n+m for Raw.
func (f *Formulation) supportQubits() int {
	if f.params.Design == Raw {
		return f.params.TotalQubits()
	}
	return f.params.SupportQubits
}

func (f *Formulation) addPerRequestRows() error {
	net, p := f.net, f.params
	serverPos := make(map[int]int, len(f.servers))
	for i, s := range f.servers {
		serverPos[s] = i
	}
	for k, r := range f.reqs {
		// Eq. 2 bounds: Y_k <= i_k, x_r^k <= i_k.
		if err := f.add(lp.Constraint{
			Terms: []lp.Term{{Var: f.yVar(k), Coeff: 1}},
			Sense: lp.LessEq, RHS: float64(r.Messages),
		}); err != nil {
			return err
		}
		for sp := range f.servers {
			if err := f.add(lp.Constraint{
				Terms: []lp.Term{{Var: f.xVar(k, sp), Coeff: 1}},
				Sense: lp.LessEq, RHS: float64(r.Messages),
			}); err != nil {
				return err
			}
		}
		// Eq. 3 line 1, extended: no flow out of the destination, into
		// the source, or through any non-terminal user.
		var forbidden []lp.Term
		for fi := 0; fi < net.NumFibers(); fi++ {
			for dir := 0; dir < 2; dir++ {
				head, tail := f.arcHead(fi, dir), f.arcTail(fi, dir)
				headUser := net.Node(head).Role == network.User && head != r.Dst
				tailUser := net.Node(tail).Role == network.User && tail != r.Src
				if head == r.Src || tail == r.Dst || headUser || tailUser {
					forbidden = append(forbidden,
						lp.Term{Var: f.aVar(k, fi, dir), Coeff: 1},
						lp.Term{Var: f.bVar(k, fi, dir), Coeff: 1})
				}
			}
		}
		if len(forbidden) > 0 {
			if err := f.add(lp.Constraint{Terms: forbidden, Sense: lp.Equal, RHS: 0}); err != nil {
				return err
			}
		}
		// Eq. 3 lines 2-3: source emits and destination absorbs n*Y_k
		// Core and m*Y_k Support qubits.
		type flowSpec struct {
			varOf func(k, fiber, dir int) int
			mult  int
		}
		specs := []flowSpec{{f.aVar, f.coreQubits()}, {f.bVar, f.supportQubits()}}
		for _, spec := range specs {
			if spec.mult == 0 { // Raw: force all Core flow to zero
				var all []lp.Term
				for fi := 0; fi < net.NumFibers(); fi++ {
					for dir := 0; dir < 2; dir++ {
						all = append(all, lp.Term{Var: spec.varOf(k, fi, dir), Coeff: 1})
					}
				}
				if err := f.add(lp.Constraint{Terms: all, Sense: lp.Equal, RHS: 0}); err != nil {
					return err
				}
				continue
			}
			into := f.flowTerms(k, spec.varOf, r.Dst, true)
			into = append(into, lp.Term{Var: f.yVar(k), Coeff: -float64(spec.mult)})
			if err := f.add(lp.Constraint{Terms: into, Sense: lp.Equal, RHS: 0}); err != nil {
				return err
			}
			out := f.flowTerms(k, spec.varOf, r.Src, false)
			out = append(out, lp.Term{Var: f.yVar(k), Coeff: -float64(spec.mult)})
			if err := f.add(lp.Constraint{Terms: out, Sense: lp.Equal, RHS: 0}); err != nil {
				return err
			}
			// Eq. 4 lines 2-3: conservation at every relay.
			for _, rel := range net.Relays() {
				terms := f.flowTerms(k, spec.varOf, rel, true)
				for _, t := range f.flowTerms(k, spec.varOf, rel, false) {
					terms = append(terms, lp.Term{Var: t.Var, Coeff: -1})
				}
				if err := f.add(lp.Constraint{Terms: terms, Sense: lp.Equal, RHS: 0}); err != nil {
					return err
				}
			}
		}
		// Eq. 4 line 1: at servers, arriving flow is whole re-assembled
		// codes: sum_in a = n * x_r and sum_in b = m * x_r.
		for sp, srv := range f.servers {
			if f.coreQubits() > 0 {
				terms := f.flowTerms(k, f.aVar, srv, true)
				terms = append(terms, lp.Term{Var: f.xVar(k, sp), Coeff: -float64(f.coreQubits())})
				if err := f.add(lp.Constraint{Terms: terms, Sense: lp.Equal, RHS: 0}); err != nil {
					return err
				}
			}
			terms := f.flowTerms(k, f.bVar, srv, true)
			terms = append(terms, lp.Term{Var: f.xVar(k, sp), Coeff: -float64(f.supportQubits())})
			if err := f.add(lp.Constraint{Terms: terms, Sense: lp.Equal, RHS: 0}); err != nil {
				return err
			}
		}
		// Eq. 6: noise constraints, per-code normalized.
		if p.Design == SurfNet {
			n := float64(p.CoreQubits)
			var core []lp.Term
			for fi := 0; fi < net.NumFibers(); fi++ {
				mu := net.Fiber(fi).Noise()
				for dir := 0; dir < 2; dir++ {
					core = append(core, lp.Term{Var: f.aVar(k, fi, dir), Coeff: mu / n})
				}
			}
			for sp := range f.servers {
				core = append(core, lp.Term{Var: f.xVar(k, sp), Coeff: -p.Omega})
			}
			lower := append([]lp.Term(nil), core...)
			if err := f.add(lp.Constraint{Terms: lower, Sense: lp.GreaterEq, RHS: 0}); err != nil {
				return err
			}
			upper := append([]lp.Term(nil), core...)
			upper = append(upper, lp.Term{Var: f.yVar(k), Coeff: -p.CoreThreshold})
			if err := f.add(lp.Constraint{Terms: upper, Sense: lp.LessEq, RHS: 0}); err != nil {
				return err
			}
		}
		total := float64(p.TotalQubits())
		var whole []lp.Term
		for fi := 0; fi < net.NumFibers(); fi++ {
			mu := net.Fiber(fi).Noise()
			for dir := 0; dir < 2; dir++ {
				if p.Design == SurfNet {
					whole = append(whole, lp.Term{Var: f.aVar(k, fi, dir), Coeff: 0.5 * mu / total})
				}
				whole = append(whole, lp.Term{Var: f.bVar(k, fi, dir), Coeff: mu / total})
			}
		}
		for sp := range f.servers {
			whole = append(whole, lp.Term{Var: f.xVar(k, sp), Coeff: -p.Omega})
		}
		whole = append(whole, lp.Term{Var: f.yVar(k), Coeff: -p.TotalThreshold})
		if err := f.add(lp.Constraint{Terms: whole, Sense: lp.LessEq, RHS: 0}); err != nil {
			return err
		}
	}
	return nil
}

func (f *Formulation) addNetworkRows() error {
	net, p := f.net, f.params
	// Eq. 5 line 1: relay storage capacity over all requests.
	for _, rel := range net.Relays() {
		capacity := float64(net.Node(rel).Capacity)
		if p.Design == Raw {
			capacity *= p.RawCapacityFactor
		}
		var terms []lp.Term
		for k := range f.reqs {
			terms = append(terms, f.flowTerms(k, f.aVar, rel, true)...)
			terms = append(terms, f.flowTerms(k, f.bVar, rel, true)...)
		}
		if err := f.add(lp.Constraint{Terms: terms, Sense: lp.LessEq, RHS: capacity}); err != nil {
			return err
		}
	}
	// Eq. 5 line 2: entangled-pair budget per fiber (both directions).
	if p.Design == SurfNet {
		for fi := 0; fi < net.NumFibers(); fi++ {
			var terms []lp.Term
			for k := range f.reqs {
				for dir := 0; dir < 2; dir++ {
					terms = append(terms, lp.Term{Var: f.aVar(k, fi, dir), Coeff: 1})
				}
			}
			if err := f.add(lp.Constraint{
				Terms: terms, Sense: lp.LessEq,
				RHS: float64(net.Fiber(fi).EntPairs),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// flowTerms returns unit terms over the arcs into (into=true) or out of node
// v for request k under the variable family varOf.
func (f *Formulation) flowTerms(k int, varOf func(k, fiber, dir int) int, v int, into bool) []lp.Term {
	var terms []lp.Term
	for _, fi := range f.net.Incident(v) {
		fb := f.net.Fiber(int(fi))
		for dir := 0; dir < 2; dir++ {
			head := f.arcHead(int(fi), dir)
			if into && head == v || !into && head != v {
				terms = append(terms, lp.Term{Var: varOf(k, int(fb.ID), dir), Coeff: 1})
			}
		}
	}
	return terms
}

func (f *Formulation) add(c lp.Constraint) error {
	if err := f.Problem.AddConstraint(c); err != nil {
		return fmt.Errorf("routing: building LP: %w", err)
	}
	return nil
}

// LPResult is the fractional scheduling decision extracted from the LP.
type LPResult struct {
	Status lp.Status
	// Y holds the fractional Y_k per request.
	Y []float64
	// Objective is the LP optimum (an upper bound on integral throughput).
	Objective float64
	// Stats reports the simplex effort spent on this solve.
	Stats lp.Stats
	// Basis is the optimal simplex basis, reusable by SolveLPFrom to
	// warm-start a later solve of a similarly-shaped instance.
	Basis []int
}

// SolveLP solves the relaxation and extracts the Y_k values.
func (f *Formulation) SolveLP() (LPResult, error) {
	return f.solve(func() (lp.Solution, error) { return f.Problem.Solve() })
}

// SolveLPFrom solves the relaxation warm-started from a previous solve's
// basis, falling back to a cold solve when the basis no longer applies (see
// lp.SolveFrom). This is the incremental re-plan path: a resident control
// plane re-solving after small topology or demand deltas skips phase 1
// whenever the old vertex is still feasible.
func (f *Formulation) SolveLPFrom(basis []int) (LPResult, error) {
	return f.solve(func() (lp.Solution, error) { return f.Problem.SolveFrom(basis) })
}

func (f *Formulation) solve(run func() (lp.Solution, error)) (LPResult, error) {
	sol, err := run()
	if err != nil {
		return LPResult{}, err
	}
	res := LPResult{Status: sol.Status, Objective: sol.Objective, Stats: sol.Stats, Basis: sol.Basis}
	if sol.Status != lp.Optimal {
		return res, nil
	}
	res.Y = make([]float64, len(f.reqs))
	for k := range f.reqs {
		res.Y[k] = sol.X[f.yVar(k)]
	}
	return res, nil
}

// ScheduleLP is the paper's evaluated scheduler: solve the LP relaxation,
// round the fractional Y_k, and repair to an integral, execution-feasible
// schedule by admitting codes greedily in decreasing fractional-Y order.
// For purification designs (no IP formulation) it falls back to Greedy.
func ScheduleLP(net *network.Network, reqs []network.Request, p Params) (Schedule, error) {
	fallback := func(reason string) (Schedule, error) {
		p.Metrics.Counter("routing.greedy_fallbacks").Inc()
		telemetry.Emit(p.Tracer, telemetry.Ev("routing.greedy_fallback",
			"reason", reason, "requests", len(reqs)))
		return Greedy(net, reqs, p, nil, nil)
	}
	if p.Design != SurfNet && p.Design != Raw {
		return fallback("design-without-formulation")
	}
	if len(p.AdaptiveDistances) > 0 {
		// The Eq. (1)-(6) program fixes one code size; QoS-adaptive
		// sizing is a per-code decision, handled by the greedy stage.
		return fallback("adaptive-code-sizing")
	}
	form, err := BuildLP(net, reqs, p)
	if err != nil {
		return Schedule{}, err
	}
	res, err := form.SolveLP()
	if err == nil {
		emitLPSolved(p, form, res)
	}
	if err != nil {
		// Solver failures (e.g. the iteration budget on a heavily
		// degenerate instance) degrade to greedy admission rather than
		// aborting the round: the online network must always schedule.
		p.Metrics.Counter("routing.lp_errors").Inc()
		return fallback("solver-error")
	}
	if res.Status != lp.Optimal {
		// Infeasible relaxations only arise from zero-capacity corner
		// cases; fall back to greedy admission, which degrades to an
		// empty schedule gracefully.
		return fallback("lp-" + res.Status.String())
	}
	return roundAndRepair(net, reqs, p, res)
}

// emitLPSolved records solver-effort telemetry for one relaxation solve.
func emitLPSolved(p Params, form *Formulation, res LPResult) {
	p.Metrics.Counter("routing.lp_solves").Inc()
	p.Metrics.Counter("routing.lp_pivots").Add(int64(res.Stats.Pivots))
	p.Metrics.Counter("routing.lp_iterations").Add(int64(res.Stats.Iterations))
	p.Metrics.Counter("routing.lp_degenerate_pivots").Add(int64(res.Stats.DegeneratePivots))
	telemetry.Emit(p.Tracer, telemetry.Ev("routing.lp_solved",
		"status", res.Status.String(), "objective", res.Objective,
		"pivots", res.Stats.Pivots, "iterations", res.Stats.Iterations,
		"degenerate", res.Stats.DegeneratePivots,
		"vars", form.Problem.NumVars(), "constraints", form.Problem.NumConstraints()))
}

// roundAndRepair turns an optimal relaxation into an integral,
// execution-feasible schedule: round each Y_k to the nearest integer (capped
// at the request's demand) and admit greedily in decreasing fractional-Y
// order. Shared verbatim by the batch ScheduleLP path and the resident
// Planner so both produce identical schedules from identical relaxations.
func roundAndRepair(net *network.Network, reqs []network.Request, p Params, res LPResult) (Schedule, error) {
	targets := make([]int, len(reqs))
	order := make([]int, len(reqs))
	roundedUp, roundedDown := 0, 0
	for k := range reqs {
		targets[k] = int(math.Floor(res.Y[k] + 0.5))
		if targets[k] > reqs[k].Messages {
			targets[k] = reqs[k].Messages
		}
		if float64(targets[k]) > res.Y[k] {
			roundedUp++
		} else if float64(targets[k]) < res.Y[k] {
			roundedDown++
		}
		telemetry.Emit(p.Tracer, telemetry.Ev("routing.rounding",
			"request", k, "y", res.Y[k], "target", targets[k]))
		order[k] = k
	}
	p.Metrics.Counter("routing.rounded_up").Add(int64(roundedUp))
	p.Metrics.Counter("routing.rounded_down").Add(int64(roundedDown))
	sort.SliceStable(order, func(i, j int) bool {
		return res.Y[order[i]] > res.Y[order[j]]
	})
	return Greedy(net, reqs, p, targets, order)
}
