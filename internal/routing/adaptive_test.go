package routing

import (
	"testing"

	"surfnet/internal/network"
)

func TestCodeDims(t *testing.T) {
	tests := []struct {
		d, core, support int
	}{
		{2, 1, 4},  // 5 data qubits
		{3, 3, 10}, // 13
		{5, 7, 34}, // 41
		{9, 15, 130} /* 145 */}
	for _, tt := range tests {
		core, support := CodeDims(tt.d)
		if core != tt.core || support != tt.support {
			t.Errorf("CodeDims(%d) = (%d,%d), want (%d,%d)", tt.d, core, support, tt.core, tt.support)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	p := DefaultParams(SurfNet)
	p.AdaptiveDistances = []int{3, 5, 7}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid adaptive params rejected: %v", err)
	}
	p.AdaptiveDistances = []int{5, 3}
	if p.Validate() == nil {
		t.Error("non-ascending distances should fail")
	}
	p.AdaptiveDistances = []int{1, 3}
	if p.Validate() == nil {
		t.Error("distance < 2 should fail")
	}
	p = DefaultParams(Purification1)
	p.AdaptiveDistances = []int{3, 5}
	if p.Validate() == nil {
		t.Error("adaptive sizing on purification designs should fail")
	}
}

func TestAtDistanceScaling(t *testing.T) {
	p := DefaultParams(SurfNet) // reference distance 5, Wc=1, W=1.2
	p3 := p.atDistance(3)
	if p3.CoreQubits != 3 || p3.SupportQubits != 10 {
		t.Fatalf("atDistance(3) sizes = (%d,%d)", p3.CoreQubits, p3.SupportQubits)
	}
	// Distance 3 tolerates half the reference noise: (3-1)/(5-1) = 0.5.
	if p3.CoreThreshold != 0.5 || p3.TotalThreshold != 0.6 {
		t.Fatalf("atDistance(3) thresholds = (%v,%v)", p3.CoreThreshold, p3.TotalThreshold)
	}
	p7 := p.atDistance(7)
	if p7.CoreQubits != 11 || p7.CoreThreshold != 1.5 {
		t.Fatalf("atDistance(7) = core %d, Wc %v", p7.CoreQubits, p7.CoreThreshold)
	}
}

func TestAdaptivePicksSmallCodeOnCleanPaths(t *testing.T) {
	// Very clean fibers: the distance-3 code's halved thresholds still
	// cover the path, so the scheduler should pick d=3 everywhere.
	net := lineNet(t, 0.97, 1000, 1000)
	p := DefaultParams(SurfNet)
	p.AdaptiveDistances = []int{3, 5, 7}
	sched, err := Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 2}}, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := sched.Requests[0]
	if rs.Accepted() != 2 {
		t.Fatalf("accepted %d", rs.Accepted())
	}
	for _, cr := range rs.Codes {
		if cr.Distance != 3 {
			t.Fatalf("distance = %d, want 3 on a clean path", cr.Distance)
		}
	}
}

func TestAdaptiveEscalatesOnNoisyPaths(t *testing.T) {
	// Fidelity 0.8 over 4 hops: raw core noise ~1.29. d=3 tolerates
	// Wc=0.5 and one EC cannot bridge the gap (needs 2, core would go
	// negative); d=5 handles it with one correction.
	net := lineNet(t, 0.8, 1000, 1000)
	p := DefaultParams(SurfNet)
	p.AdaptiveDistances = []int{3, 5, 7}
	sched, err := Greedy(net, []network.Request{{Src: 0, Dst: 4, Messages: 1}}, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := sched.Requests[0]
	if rs.Accepted() != 1 {
		t.Fatalf("accepted %d", rs.Accepted())
	}
	if got := rs.Codes[0].Distance; got != 5 {
		t.Fatalf("distance = %d, want escalation to 5", got)
	}
}

func TestAdaptiveImprovesThroughputUnderScarcity(t *testing.T) {
	// Tight entanglement budget: d=5 codes need 7 pairs each, d=3 codes
	// only 3, so adaptive sizing admits more codes on clean paths.
	net := lineNet(t, 0.97, 1000, 21)
	fixed := DefaultParams(SurfNet)
	adaptive := fixed
	adaptive.AdaptiveDistances = []int{3, 5}
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 7}}
	fs, err := Greedy(net, reqs, fixed, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	as, err := Greedy(net, reqs, adaptive, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs.AcceptedCodes() != 3 { // 21/7
		t.Fatalf("fixed accepted %d, want 3", fs.AcceptedCodes())
	}
	if as.AcceptedCodes() != 7 { // 21/3
		t.Fatalf("adaptive accepted %d, want 7", as.AcceptedCodes())
	}
}

func TestScheduleLPAdaptiveFallsBackToGreedy(t *testing.T) {
	net := lineNet(t, 0.95, 1000, 1000)
	p := DefaultParams(SurfNet)
	p.AdaptiveDistances = []int{3, 5}
	sched, err := ScheduleLP(net, []network.Request{{Src: 0, Dst: 4, Messages: 2}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() != 2 {
		t.Fatalf("accepted %d", sched.AcceptedCodes())
	}
	for _, cr := range sched.Requests[0].Codes {
		if cr.Distance == 0 {
			t.Fatal("adaptive schedule lost its distances")
		}
	}
}
