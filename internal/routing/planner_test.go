package routing

import (
	"testing"

	"surfnet/internal/network"
	"surfnet/internal/rng"
	"surfnet/internal/telemetry"
	"surfnet/internal/topology"
)

func plannerScenario(t *testing.T) (*network.Network, []network.Request) {
	t.Helper()
	src := rng.New(6060)
	net, err := topology.Generate(topology.DefaultParams(topology.Sufficient, topology.GoodConnection), src)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := topology.GenRequests(net, 6, 3, src.Split("req"))
	if err != nil {
		t.Fatal(err)
	}
	return net, reqs
}

// TestPlannerMatchesScheduleLPThroughput pins the resident path's quality:
// the warm planner must admit exactly as many codes as the batch scheduler
// (warm starting may land on a different optimal vertex, never a worse one).
func TestPlannerMatchesScheduleLPThroughput(t *testing.T) {
	net, reqs := plannerScenario(t)
	p := DefaultParams(SurfNet)
	batch, err := ScheduleLP(net, reqs, p)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(p)
	for round := 0; round < 3; round++ {
		sched, err := pl.Plan(net, reqs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, want := sched.AcceptedCodes(), batch.AcceptedCodes(); got != want {
			t.Fatalf("round %d: planner accepted %d codes, ScheduleLP %d", round, got, want)
		}
	}
	hits, misses := pl.WarmStats()
	if misses != 1 {
		t.Fatalf("warm misses = %d, want exactly the cold first solve", misses)
	}
	if hits != 2 {
		t.Fatalf("warm hits = %d, want 2 steady-state re-plans", hits)
	}
}

// TestPlannerSurvivesTopologyReshape pins the fallback contract: when the
// constraint system changes shape (fiber removed), the stale basis must not
// poison the solve — the planner re-solves cold and keeps scheduling.
func TestPlannerSurvivesTopologyReshape(t *testing.T) {
	net, reqs := plannerScenario(t)
	pl := NewPlanner(DefaultParams(SurfNet))
	first, err := pl.Plan(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if first.AcceptedCodes() == 0 {
		t.Fatal("precondition: planner should admit codes")
	}
	// Rebuild the network without its last fiber: every LP shape parameter
	// (stride, rows) shifts, so the remembered basis cannot install.
	var nodes []network.Node
	for i := 0; i < net.NumNodes(); i++ {
		nodes = append(nodes, net.Node(i))
	}
	var fibers []network.Fiber
	for i := 0; i < net.NumFibers()-1; i++ {
		fibers = append(fibers, net.Fiber(i))
	}
	smaller, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pl.Plan(smaller, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ScheduleLP(smaller, reqs, pl.Params())
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.AcceptedCodes(); got != want.AcceptedCodes() {
		t.Fatalf("post-reshape planner accepted %d codes, ScheduleLP %d", got, want.AcceptedCodes())
	}
}

func TestPlannerInvalidateForcesColdSolve(t *testing.T) {
	net, reqs := plannerScenario(t)
	pl := NewPlanner(DefaultParams(SurfNet))
	if _, err := pl.Plan(net, reqs); err != nil {
		t.Fatal(err)
	}
	pl.Invalidate()
	if _, err := pl.Plan(net, reqs); err != nil {
		t.Fatal(err)
	}
	hits, misses := pl.WarmStats()
	if hits != 0 || misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 0/2 after Invalidate", hits, misses)
	}
}

func TestPlannerWarmCountersExported(t *testing.T) {
	net, reqs := plannerScenario(t)
	p := DefaultParams(SurfNet)
	p.Metrics = telemetry.NewRegistry()
	pl := NewPlanner(p)
	for i := 0; i < 2; i++ {
		if _, err := pl.Plan(net, reqs); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Metrics.Counter("routing.replan_warm_hits").Value(); got != 1 {
		t.Fatalf("replan_warm_hits = %d, want 1", got)
	}
	if got := p.Metrics.Counter("routing.replan_warm_misses").Value(); got != 1 {
		t.Fatalf("replan_warm_misses = %d, want 1", got)
	}
}

// TestPlannerPurificationFallsBackToGreedy pins that designs without an IP
// formulation keep working through the planner.
func TestPlannerPurificationFallsBackToGreedy(t *testing.T) {
	net, reqs := plannerScenario(t)
	pl := NewPlanner(DefaultParams(Purification2))
	sched, err := pl.Plan(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Greedy(net, reqs, pl.Params(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() != want.AcceptedCodes() {
		t.Fatalf("planner purification accepted %d, greedy %d",
			sched.AcceptedCodes(), want.AcceptedCodes())
	}
}
