package routing

import (
	"fmt"
	"math"

	"surfnet/internal/graph"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/telemetry"
)

// Greedy builds an integral schedule by admitting codes one at a time along
// shortest-noise paths, subject to the capacity, entanglement, and noise
// constraints of Eq. (2)-(6). It is both a standalone scheduler (used for
// the Purification baselines, which the integer program does not model) and
// the integral repair step of the LP rounding scheduler.
//
// targets caps how many codes may be admitted per request; pass nil to use
// each request's full message count. order gives the admission order over
// request indices; pass nil for natural order.
func Greedy(net *network.Network, reqs []network.Request, p Params, targets []int, order []int) (Schedule, error) {
	if err := p.Validate(); err != nil {
		return Schedule{}, err
	}
	for i, r := range reqs {
		if err := r.Validate(net); err != nil {
			return Schedule{}, fmt.Errorf("request %d: %w", i, err)
		}
	}
	if targets == nil {
		targets = make([]int, len(reqs))
		for i, r := range reqs {
			targets[i] = r.Messages
		}
	}
	if order == nil {
		order = make([]int, len(reqs))
		for i := range order {
			order[i] = i
		}
	}
	cs := newCapacityState(net, p)
	sched := Schedule{Design: p.Design, Params: p, Requests: make([]RequestSchedule, len(reqs))}
	for i, r := range reqs {
		sched.Requests[i] = RequestSchedule{Request: r}
	}
	admitted, shortfall := 0, 0
	for _, k := range order {
		r := reqs[k]
		limit := targets[k]
		if limit > r.Messages {
			limit = r.Messages
		}
		for c := 0; c < limit; c++ {
			route, ok := scheduleOneCode(cs, r, p)
			if !ok {
				shortfall += limit - c
				telemetry.Emit(p.Tracer, telemetry.Ev("routing.admission_stop",
					"request", k, "admitted", c, "target", limit))
				break // resources or noise exhausted for this request
			}
			sched.Requests[k].Codes = append(sched.Requests[k].Codes, route)
			admitted++
		}
	}
	p.Metrics.Counter("routing.codes_admitted").Add(int64(admitted))
	p.Metrics.Counter("routing.codes_unadmitted").Add(int64(shortfall))
	return sched, nil
}

// perNodeNeed returns the storage a single code consumes at each transit
// relay under the given design. Purification baselines teleport one
// unencoded payload qubit per message; the code-carrying designs store the
// full surface code.
func perNodeNeed(p Params) int {
	if p.Design.PurifyRounds() > 0 {
		return 1
	}
	return p.TotalQubits() // both parts pass every transit relay
}

// perFiberPairs returns the entangled pairs a single code consumes per fiber:
// n teleported Core qubits for SurfNet, one payload teleport plus N
// purification pairs for the mainstream baselines.
func perFiberPairs(p Params) int {
	switch p.Design {
	case Raw:
		return 0 // plain channels only
	case SurfNet:
		return p.CoreQubits
	default:
		return 1 + p.Design.PurifyRounds()
	}
}

// arcNoise returns the effective noise of fiber f under the design:
// purification designs see the purified fidelity.
func arcNoise(f network.Fiber, p Params) float64 {
	if n := p.Design.PurifyRounds(); n > 0 {
		return quantum.Noise(quantum.PurifyN(f.Fidelity, n))
	}
	return f.Noise()
}

// scheduleOneCode finds and charges a route for one surface code, picking an
// adaptive code distance when enabled. It returns ok=false when no feasible
// route exists under the remaining resources.
func scheduleOneCode(cs *capacityState, r network.Request, p Params) (CodeRoute, bool) {
	if len(p.AdaptiveDistances) == 0 {
		return scheduleFixedCode(cs, r, p)
	}
	// QoS-adaptive sizing: smallest distance first — cheapest in storage
	// and entangled pairs — escalating to larger codes whose scaled
	// thresholds tolerate noisier routes.
	for _, d := range p.AdaptiveDistances {
		route, ok := scheduleFixedCode(cs, r, p.atDistance(d))
		if ok {
			route.Distance = d
			return route, true
		}
	}
	return CodeRoute{}, false
}

// scheduleFixedCode finds and charges a route for one surface code of the
// exact size described by p.
func scheduleFixedCode(cs *capacityState, r network.Request, p Params) (CodeRoute, bool) {
	fibers, nodes, ok := admissiblePath(cs, r, p)
	if !ok {
		return CodeRoute{}, false
	}
	// Accumulated raw noise along the path.
	raw := 0.0
	for _, fi := range fibers {
		raw += arcNoise(cs.net.Fiber(fi), p)
	}
	var servers []int
	var coreNoise, totalNoise float64
	switch p.Design {
	case SurfNet:
		n, m := float64(p.CoreQubits), float64(p.SupportQubits)
		weighted := (0.5*n + m) / (n + m) * raw
		k, ok := chooseCorrections(raw, weighted, p, countServers(cs.net, nodes))
		if !ok {
			return CodeRoute{}, false
		}
		servers = pickServers(cs.net, nodes, k)
		coreNoise = raw - p.Omega*float64(k)
		totalNoise = weighted - p.Omega*float64(k)
	case Raw:
		k, ok := chooseCorrections(math.Inf(1), raw, p, countServers(cs.net, nodes))
		if !ok {
			return CodeRoute{}, false
		}
		servers = pickServers(cs.net, nodes, k)
		totalNoise = raw - p.Omega*float64(k)
	default: // purification: no error correction available
		if raw > p.TotalThreshold {
			return CodeRoute{}, false
		}
		totalNoise = raw
	}
	// Charge resources: transit relays store the code, fibers supply
	// entangled pairs. The endpoints are users and charge nothing.
	need := perNodeNeed(p)
	for _, v := range nodes[1 : len(nodes)-1] {
		if err := cs.chargeNode(v, need); err != nil {
			return CodeRoute{}, false
		}
	}
	pairs := perFiberPairs(p)
	if pairs > 0 {
		for _, fi := range fibers {
			if err := cs.chargeFiber(fi, pairs); err != nil {
				return CodeRoute{}, false
			}
		}
	}
	route := CodeRoute{
		Servers:    servers,
		CoreNoise:  coreNoise,
		TotalNoise: totalNoise,
	}
	switch p.Design {
	case Raw:
		route.SupportPath = fibers
	case SurfNet:
		route.CorePath = fibers
		route.SupportPath = fibers
	default:
		route.CorePath = fibers
	}
	return route, true
}

// chooseCorrections picks the number of error corrections k satisfying the
// Eq. (6) noise constraints in aggregate form:
//
//	coreRaw  - omega*k in [0, Wc]   (SurfNet only; pass +Inf to skip)
//	totalRaw - omega*k <= W
//	k <= servers available on the path
func chooseCorrections(coreRaw, totalRaw float64, p Params, serversOnPath int) (int, bool) {
	need := 0
	if !math.IsInf(coreRaw, 1) && coreRaw > p.CoreThreshold {
		need = int(math.Ceil((coreRaw - p.CoreThreshold) / p.Omega))
	}
	if totalRaw > p.TotalThreshold {
		if k := int(math.Ceil((totalRaw - p.TotalThreshold) / p.Omega)); k > need {
			need = k
		}
	}
	if need == 0 {
		return 0, true
	}
	if p.Omega == 0 {
		return 0, false
	}
	if need > serversOnPath {
		return 0, false
	}
	// The >= 0 side of the Core constraint forbids over-correction.
	if !math.IsInf(coreRaw, 1) && coreRaw-p.Omega*float64(need) < -1e-9 {
		return 0, false
	}
	return need, true
}

// countServers counts transit servers along the node path.
func countServers(net *network.Network, nodes []int) int {
	n := 0
	for _, v := range nodes[1 : len(nodes)-1] {
		if net.Node(v).Role == network.Server {
			n++
		}
	}
	return n
}

// pickServers selects k error-correction servers spaced evenly along the
// path.
func pickServers(net *network.Network, nodes []int, k int) []int {
	if k == 0 {
		return nil
	}
	var servers []int
	for _, v := range nodes[1 : len(nodes)-1] {
		if net.Node(v).Role == network.Server {
			servers = append(servers, v)
		}
	}
	if k >= len(servers) {
		return servers
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		// Block-evenly spaced; indices are strictly increasing for k <=
		// len(servers), so no duplicates arise.
		out = append(out, servers[(i*len(servers))/k])
	}
	return out
}

// admissiblePath runs Dijkstra over the residual network: only relays with
// enough remaining storage may transit, and only fibers with enough remaining
// entangled pairs may carry the code.
func admissiblePath(cs *capacityState, r network.Request, p Params) (fibers []int, nodes []int, ok bool) {
	net := cs.net
	need := perNodeNeed(p)
	pairs := perFiberPairs(p)
	admitNode := func(v int) bool {
		if v == r.Src || v == r.Dst {
			return true
		}
		nd := net.Node(v)
		if nd.Role == network.User {
			return false
		}
		return cs.nodeCap[v] >= need
	}
	g := graph.NewWeighted(net.NumNodes())
	for fi := 0; fi < net.NumFibers(); fi++ {
		f := net.Fiber(fi)
		if pairs > 0 && cs.entPairs[fi] < pairs {
			continue
		}
		if !admitNode(f.A) || !admitNode(f.B) {
			continue
		}
		g.AddEdge(graph.Edge{ID: fi, U: f.A, V: f.B, Weight: arcNoise(f, p)})
	}
	sp := g.Dijkstra(r.Src)
	path := sp.PathTo(g, r.Dst)
	if path == nil {
		return nil, nil, false
	}
	fibers = make([]int, len(path))
	for i, ei := range path {
		fibers[i] = g.Edge(ei).ID
	}
	return fibers, pathNodes(net, r.Src, fibers), true
}
