// Package routing implements the SurfNet routing protocol of §V: the offline
// scheduling stage formulated as the integer program of Eq. (1)-(6), solved
// through its LP relaxation with rounding (the variant the paper evaluates),
// plus a greedy shortest-noise-path scheduler used both as the rounding
// repair step and as a standalone comparator. The package also builds
// schedules for the paper's baseline designs (Raw and Purification N).
package routing

import (
	"fmt"

	"surfnet/internal/quantum"
	"surfnet/internal/telemetry"
)

// Design selects a network design from §VI-B.
type Design int

// The five evaluated designs.
const (
	// SurfNet is the paper's dual-channel design: Core via the
	// entanglement-based channel, Support via the plain channel, error
	// correction at servers.
	SurfNet Design = 1 + iota
	// Raw transfers whole surface codes through plain channels only; no
	// Core/Support split; relays gain capacity since they no longer
	// prepare entanglement.
	Raw
	// Purification1, 2 and 9 are the mainstream teleportation-only
	// networks consuming N extra entangled pairs per fiber for
	// purification.
	Purification1
	Purification2
	Purification9
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case SurfNet:
		return "surfnet"
	case Raw:
		return "raw"
	case Purification1:
		return "purification-1"
	case Purification2:
		return "purification-2"
	case Purification9:
		return "purification-9"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// PurifyRounds returns N for purification designs and 0 otherwise.
func (d Design) PurifyRounds() int {
	switch d {
	case Purification1:
		return 1
	case Purification2:
		return 2
	case Purification9:
		return 9
	default:
		return 0
	}
}

// Params are the pre-defined routing parameters of Table I.
type Params struct {
	// Design selects the network design being scheduled.
	Design Design
	// CoreQubits is n, the number of Core data qubits per surface code.
	CoreQubits int
	// SupportQubits is m, the number of Support data qubits.
	SupportQubits int
	// Omega is the noise reduction from one error correction at a server.
	Omega float64
	// CoreThreshold is Wc, the per-code noise threshold for the Core part.
	CoreThreshold float64
	// TotalThreshold is W, the per-code noise threshold for the entire
	// surface code.
	TotalThreshold float64
	// RawCapacityFactor scales relay capacities for the Raw design
	// ("increased capacity as they no longer need to prepare
	// entanglements").
	RawCapacityFactor float64
	// AdaptiveDistances, when non-empty, enables the quality-of-service
	// adaptive code sizing the paper flags as a future direction (§VI-C):
	// for every code the scheduler picks the smallest distance from this
	// ascending list whose (distance-scaled) noise tolerance covers the
	// route, trading resource consumption against protection. Only
	// meaningful for the SurfNet and Raw designs. CoreQubits and
	// SupportQubits then describe the reference distance
	// ReferenceDistance.
	AdaptiveDistances []int
	// ReferenceDistance is the code distance at which CoreThreshold and
	// TotalThreshold are specified; thresholds scale as (d-1)/(ref-1) for
	// other distances. Zero selects 5.
	ReferenceDistance int
	// Metrics, when non-nil, receives scheduler counters: LP solves,
	// simplex pivots/iterations, rounding decisions, greedy admissions
	// and fallbacks. It is instrumentation, not a Table I parameter, and
	// the nil default is a no-op.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, receives routing events (LP solve outcomes,
	// per-request rounding decisions, greedy fallbacks).
	Tracer telemetry.Tracer
}

// CodeDims returns the Core and Support sizes of a distance-d planar code
// under the paper's axis-count partition: core = (d-1)+(d-2) and
// support = d^2+(d-1)^2 - core.
func CodeDims(d int) (core, support int) {
	core = 2*d - 3
	return core, d*d + (d-1)*(d-1) - core
}

// DefaultParams returns the paper-scale defaults: a distance-5 planar
// surface code, which in our (unrotated) layout has 41 data qubits with 7 of
// them Core — the same (d-1)+(d-2) = 7 Core qubits as the §V-A worked example
// (the example's 25-qubit total corresponds to the rotated-lattice counting).
// Omega and the thresholds are tuned so that multi-hop paths through good
// fibers are feasible with occasional error correction.
func DefaultParams(d Design) Params {
	return Params{
		Design:            d,
		CoreQubits:        7,
		SupportQubits:     34,
		Omega:             0.5,
		CoreThreshold:     1.0,
		TotalThreshold:    1.2,
		RawCapacityFactor: 1.25,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	switch p.Design {
	case SurfNet, Raw, Purification1, Purification2, Purification9:
	default:
		return fmt.Errorf("routing: invalid design %v", p.Design)
	}
	if p.CoreQubits <= 0 || p.SupportQubits <= 0 {
		return fmt.Errorf("routing: code sizes must be positive, got n=%d m=%d", p.CoreQubits, p.SupportQubits)
	}
	if p.Omega < 0 || p.CoreThreshold <= 0 || p.TotalThreshold <= 0 {
		return fmt.Errorf("routing: omega/thresholds must be positive (omega=%v Wc=%v W=%v)",
			p.Omega, p.CoreThreshold, p.TotalThreshold)
	}
	if p.Design == Raw && p.RawCapacityFactor < 1 {
		return fmt.Errorf("routing: raw capacity factor %v < 1", p.RawCapacityFactor)
	}
	if len(p.AdaptiveDistances) > 0 {
		if p.Design != SurfNet && p.Design != Raw {
			return fmt.Errorf("routing: adaptive code sizes require the surfnet or raw design, got %v", p.Design)
		}
		prev := 1
		for _, d := range p.AdaptiveDistances {
			if d < 2 {
				return fmt.Errorf("routing: adaptive distance %d < 2", d)
			}
			if d <= prev {
				return fmt.Errorf("routing: adaptive distances must be strictly ascending")
			}
			prev = d
		}
	}
	return nil
}

// referenceDistance returns the distance at which the thresholds are
// specified.
func (p Params) referenceDistance() int {
	if p.ReferenceDistance == 0 {
		return 5
	}
	return p.ReferenceDistance
}

// atDistance returns a copy of p specialized to code distance d: Core and
// Support sizes from the lattice, thresholds scaled by the distance ratio
// (d-1)/(ref-1) — a larger code tolerates proportionally more accumulated
// noise before its logical axes are at risk.
func (p Params) atDistance(d int) Params {
	out := p
	core, support := CodeDims(d)
	out.CoreQubits = core
	out.SupportQubits = support
	scale := float64(d-1) / float64(p.referenceDistance()-1)
	out.CoreThreshold *= scale
	out.TotalThreshold *= scale
	return out
}

// TotalQubits returns n+m, the data qubits per surface code.
func (p Params) TotalQubits() int { return p.CoreQubits + p.SupportQubits }

// SetCodeSize fixes n and m to match an actual surface code partition:
// n = coreSize, m = totalData - coreSize.
func (p *Params) SetCodeSize(totalData, coreSize int) {
	p.CoreQubits = coreSize
	p.SupportQubits = totalData - coreSize
}

// FidelityThreshold converts the Core noise threshold to the fidelity
// threshold 1/2^Wc plotted in Fig. 6(b.4).
func (p Params) FidelityThreshold() float64 {
	return quantum.FidelityFromNoise(p.CoreThreshold)
}
