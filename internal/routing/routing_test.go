package routing

import (
	"math"
	"testing"

	"surfnet/internal/lp"
	"surfnet/internal/network"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/topology"
)

// lineNet builds user(0)-switch(1)-server(2)-switch(3)-user(4) with uniform
// fiber fidelity and resources.
func lineNet(t *testing.T, fidelity float64, capacity, entPairs int) *network.Network {
	t.Helper()
	nodes := []network.Node{
		{ID: 0, Role: network.User},
		{ID: 1, Role: network.Switch, Capacity: capacity},
		{ID: 2, Role: network.Server, Capacity: capacity},
		{ID: 3, Role: network.Switch, Capacity: capacity},
		{ID: 4, Role: network.User},
	}
	var fibers []network.Fiber
	for i := 0; i < 4; i++ {
		fibers = append(fibers, network.Fiber{
			ID: i, A: i, B: i + 1, Fidelity: fidelity,
			EntPairs: entPairs, EntRate: 0.5, LossProb: 0.05,
		})
	}
	n, err := network.New(nodes, fibers)
	if err != nil {
		t.Fatalf("network.New: %v", err)
	}
	return n
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams(SurfNet).Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := DefaultParams(SurfNet)
	bad.CoreQubits = 0
	if bad.Validate() == nil {
		t.Error("zero core qubits should fail")
	}
	bad = DefaultParams(Design(42))
	if bad.Validate() == nil {
		t.Error("unknown design should fail")
	}
	bad = DefaultParams(Raw)
	bad.RawCapacityFactor = 0.5
	if bad.Validate() == nil {
		t.Error("raw factor < 1 should fail")
	}
}

func TestDesignStringsAndRounds(t *testing.T) {
	if SurfNet.String() != "surfnet" || Raw.String() != "raw" {
		t.Error("design strings wrong")
	}
	if Purification1.PurifyRounds() != 1 || Purification9.PurifyRounds() != 9 || SurfNet.PurifyRounds() != 0 {
		t.Error("purify rounds wrong")
	}
	if p := DefaultParams(SurfNet); math.Abs(p.FidelityThreshold()-0.5) > 1e-12 {
		t.Errorf("fidelity threshold = %v, want 0.5 at Wc=1", p.FidelityThreshold())
	}
}

func TestGreedyCleanPath(t *testing.T) {
	// High-fidelity fibers: no error correction needed.
	net := lineNet(t, 0.95, 100, 100)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 2}}
	sched, err := Greedy(net, reqs, DefaultParams(SurfNet), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := sched.Requests[0]
	if rs.Accepted() != 2 {
		t.Fatalf("accepted %d, want 2", rs.Accepted())
	}
	mu := quantum.Noise(0.95)
	for _, cr := range rs.Codes {
		if len(cr.CorePath) != 4 || len(cr.SupportPath) != 4 {
			t.Fatalf("paths %v / %v, want 4 fibers each", cr.CorePath, cr.SupportPath)
		}
		if len(cr.Servers) != 0 {
			t.Fatalf("servers %v, want none on a clean path", cr.Servers)
		}
		if math.Abs(cr.CoreNoise-4*mu) > 1e-9 {
			t.Fatalf("core noise %v, want %v", cr.CoreNoise, 4*mu)
		}
		want := (0.5*7 + 34) / 41.0 * 4 * mu
		if math.Abs(cr.TotalNoise-want) > 1e-9 {
			t.Fatalf("total noise %v, want %v", cr.TotalNoise, want)
		}
	}
	if th := sched.Throughput(); th != 1 {
		t.Fatalf("throughput %v, want 1", th)
	}
}

func TestGreedySchedulesCorrection(t *testing.T) {
	// Fidelity 0.8: path core noise 4*log2(1/0.8) ~ 1.288 > Wc=1, so one
	// correction at the server is required and sufficient.
	net := lineNet(t, 0.8, 100, 100)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 1}}
	p := DefaultParams(SurfNet)
	sched, err := Greedy(net, reqs, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := sched.Requests[0]
	if rs.Accepted() != 1 {
		t.Fatalf("accepted %d, want 1", rs.Accepted())
	}
	cr := rs.Codes[0]
	if len(cr.Servers) != 1 || cr.Servers[0] != 2 {
		t.Fatalf("servers = %v, want [2]", cr.Servers)
	}
	raw := 4 * quantum.Noise(0.8)
	if math.Abs(cr.CoreNoise-(raw-p.Omega)) > 1e-9 {
		t.Fatalf("core noise %v, want %v", cr.CoreNoise, raw-p.Omega)
	}
	if cr.CoreNoise < 0 || cr.CoreNoise > p.CoreThreshold {
		t.Fatalf("core noise %v outside [0, Wc]", cr.CoreNoise)
	}
}

func TestGreedyRejectsHopelessPath(t *testing.T) {
	// Fidelity 0.6: core noise ~2.95; one server cannot absorb it.
	net := lineNet(t, 0.6, 100, 100)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 3}}
	sched, err := Greedy(net, reqs, DefaultParams(SurfNet), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Requests[0].Accepted() != 0 {
		t.Fatalf("accepted %d on a hopeless path, want 0", sched.Requests[0].Accepted())
	}
	if sched.Throughput() != 0 {
		t.Fatalf("throughput %v, want 0", sched.Throughput())
	}
}

func TestGreedyEntanglementBudget(t *testing.T) {
	// 20 pairs per fiber, 7 per code: only 2 codes fit.
	net := lineNet(t, 0.95, 1000, 20)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	sched, err := Greedy(net, reqs, DefaultParams(SurfNet), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Requests[0].Accepted(); got != 2 {
		t.Fatalf("accepted %d, want 2 (entanglement-limited)", got)
	}
}

func TestGreedyCapacityBudget(t *testing.T) {
	// Relay capacity 90, 41 qubits per code through every relay: 2 codes.
	net := lineNet(t, 0.95, 90, 1000)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	sched, err := Greedy(net, reqs, DefaultParams(SurfNet), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Requests[0].Accepted(); got != 2 {
		t.Fatalf("accepted %d, want 2 (capacity-limited)", got)
	}
}

func TestGreedyRawDesign(t *testing.T) {
	// Raw consumes no entangled pairs and gets scaled capacity.
	net := lineNet(t, 0.95, 100, 0)
	p := DefaultParams(Raw)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 3}}
	sched, err := Greedy(net, reqs, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 100*1.25 = 125 -> 3 codes of 41 fit.
	if got := sched.Requests[0].Accepted(); got != 3 {
		t.Fatalf("accepted %d, want 3", got)
	}
	cr := sched.Requests[0].Codes[0]
	if len(cr.CorePath) != 0 || len(cr.SupportPath) != 4 {
		t.Fatalf("raw paths: core %v support %v", cr.CorePath, cr.SupportPath)
	}
	if cr.CoreNoise != 0 {
		t.Fatalf("raw core noise %v, want 0", cr.CoreNoise)
	}
	// Whole code through plain channel: no 1/2 purification discount.
	if math.Abs(cr.TotalNoise-4*quantum.Noise(0.95)) > 1e-9 {
		t.Fatalf("raw total noise %v", cr.TotalNoise)
	}
}

func TestGreedyPurificationDesign(t *testing.T) {
	net := lineNet(t, 0.9, 1000, 1000)
	p := DefaultParams(Purification2)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 1}}
	sched, err := Greedy(net, reqs, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := sched.Requests[0]
	if rs.Accepted() != 1 {
		t.Fatalf("accepted %d, want 1", rs.Accepted())
	}
	cr := rs.Codes[0]
	if len(cr.Servers) != 0 {
		t.Fatal("purification design cannot schedule error corrections")
	}
	want := 4 * quantum.Noise(quantum.PurifyN(0.9, 2))
	if math.Abs(cr.TotalNoise-want) > 1e-9 {
		t.Fatalf("purified noise %v, want %v", cr.TotalNoise, want)
	}
	// Purified noise must beat the unpurified plain route.
	if cr.TotalNoise >= 4*quantum.Noise(0.9) {
		t.Fatal("purification did not reduce noise")
	}
}

func TestGreedyPurificationConsumesPairs(t *testing.T) {
	// One payload teleport + N purification pairs = 3 per fiber per
	// message with N=2; 5 prepared pairs admit exactly one message.
	net := lineNet(t, 0.9, 1000, 5)
	p := DefaultParams(Purification2)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	sched, err := Greedy(net, reqs, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.Requests[0].Accepted(); got != 1 {
		t.Fatalf("accepted %d, want 1 (pair-limited)", got)
	}
}

func TestChooseCorrections(t *testing.T) {
	p := DefaultParams(SurfNet) // Wc=1, W=1.2, omega=0.5
	tests := []struct {
		core, total float64
		servers     int
		want        int
		ok          bool
	}{
		{0.5, 0.4, 1, 0, true},          // under both thresholds
		{1.3, 0.9, 1, 1, true},          // core over, one EC fixes
		{1.3, 0.9, 0, 0, false},         // no server available
		{2.6, 1.5, 3, 4, false},         // would need 4, only 3 servers
		{1.1, 1.9, 2, 2, true},          // total drives the count
		{0.6, 1.9, 2, 0, false},         // 2 ECs push core below 0
		{math.Inf(1), 1.9, 2, 2, true},  // raw: no core bound
		{math.Inf(1), 0.4, 0, 0, true},  // raw clean
		{math.Inf(1), 9.0, 2, 0, false}, // raw hopeless
	}
	for i, tt := range tests {
		got, ok := chooseCorrections(tt.core, tt.total, p, tt.servers)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("case %d: got (%d,%v), want (%d,%v)", i, got, ok, tt.want, tt.ok)
		}
	}
}

func TestBuildLPShape(t *testing.T) {
	net := lineNet(t, 0.9, 100, 100)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 2}, {Src: 4, Dst: 0, Messages: 1}}
	form, err := BuildLP(net, reqs, DefaultParams(SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	// stride = 1 + 4*4 fibers + 1 server = 18 per request.
	if got := form.Problem.NumVars(); got != 2*18 {
		t.Fatalf("vars = %d, want 36", got)
	}
	if form.Problem.NumConstraints() == 0 {
		t.Fatal("no constraints built")
	}
	if _, err := BuildLP(net, reqs, DefaultParams(Purification1)); err == nil {
		t.Fatal("purification designs must not build an LP")
	}
}

func TestSolveLPBoundsGreedy(t *testing.T) {
	// The LP optimum upper-bounds any integral schedule.
	net := lineNet(t, 0.9, 200, 21) // 3 codes fit the pair budget
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	p := DefaultParams(SurfNet)
	form, err := BuildLP(net, reqs, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := form.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Y[0] < 3-1e-6 || res.Y[0] > 5+1e-6 {
		t.Fatalf("LP Y = %v, want within [3, 5]", res.Y[0])
	}
	sched, err := Greedy(net, reqs, p, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sched.AcceptedCodes()) > res.Objective+1e-6 {
		t.Fatalf("greedy %d beat the LP bound %v", sched.AcceptedCodes(), res.Objective)
	}
}

func TestScheduleLPEndToEnd(t *testing.T) {
	net := lineNet(t, 0.9, 200, 21)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	sched, err := ScheduleLP(net, reqs, DefaultParams(SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.AcceptedCodes(); got != 3 {
		t.Fatalf("LP-rounded schedule accepted %d, want 3", got)
	}
	if sched.Design != SurfNet {
		t.Fatal("schedule lost its design tag")
	}
}

func TestScheduleLPOnGeneratedTopology(t *testing.T) {
	// End-to-end smoke on a paper-scale BA scenario for both LP designs.
	src := rng.New(2025)
	net, err := topology.Generate(topology.DefaultParams(topology.Sufficient, topology.GoodConnection), src)
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := topology.GenRequests(net, 6, 3, src.Split("req"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Design{SurfNet, Raw} {
		sched, err := ScheduleLP(net, reqs, DefaultParams(d))
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if sched.Throughput() < 0 || sched.Throughput() > 1 {
			t.Fatalf("%v: throughput %v outside [0,1]", d, sched.Throughput())
		}
		// Every scheduled route must satisfy the noise constraints.
		p := sched.Params
		for _, rs := range sched.Requests {
			for _, cr := range rs.Codes {
				if d == SurfNet && (cr.CoreNoise < -1e-9 || cr.CoreNoise > p.CoreThreshold+1e-9) {
					t.Fatalf("%v: core noise %v outside [0, %v]", d, cr.CoreNoise, p.CoreThreshold)
				}
				if cr.TotalNoise > p.TotalThreshold+1e-9 {
					t.Fatalf("%v: total noise %v above %v", d, cr.TotalNoise, p.TotalThreshold)
				}
				if f := cr.ExpectedFidelity(); f < 0 || f > 1 {
					t.Fatalf("%v: expected fidelity %v", d, f)
				}
			}
		}
	}
}

func TestMeanExpectedFidelity(t *testing.T) {
	empty := Schedule{}
	if empty.MeanExpectedFidelity() != 0 {
		t.Error("empty schedule should report 0 fidelity")
	}
	s := Schedule{Requests: []RequestSchedule{{
		Request: network.Request{Src: 0, Dst: 1, Messages: 2},
		Codes:   []CodeRoute{{TotalNoise: 1}, {TotalNoise: -0.5}},
	}}}
	// 2^-1 = 0.5 and clamped 2^0 = 1 -> mean 0.75.
	if got := s.MeanExpectedFidelity(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mean fidelity %v, want 0.75", got)
	}
}

func TestLPNoiseInfeasibleGivesZero(t *testing.T) {
	// Fidelity 0.55 over 4 hops: ~3.45 core noise; one server cannot
	// absorb it, so the LP relaxation itself must pin Y to 0.
	net := lineNet(t, 0.55, 1000, 1000)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 3}}
	form, err := BuildLP(net, reqs, DefaultParams(SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	res, err := form.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	// One EC server: the fractional Y can exploit at most omega of
	// correction; 3.45 - 0.5 >> Wc, so Y must be (near) zero.
	if res.Y[0] > 0.2 {
		t.Fatalf("LP admitted Y=%v on a hopeless path", res.Y[0])
	}
	sched, err := ScheduleLP(net, reqs, DefaultParams(SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() != 0 {
		t.Fatalf("rounding admitted %d codes on a hopeless path", sched.AcceptedCodes())
	}
}

func TestLPRawDesignSchedulesWithoutEntanglement(t *testing.T) {
	// Raw uses no entangled pairs: the LP must schedule even with zero
	// pair budgets.
	net := lineNet(t, 0.9, 1000, 0)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 2}}
	sched, err := ScheduleLP(net, reqs, DefaultParams(Raw))
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() != 2 {
		t.Fatalf("raw LP accepted %d, want 2", sched.AcceptedCodes())
	}
	// SurfNet on the same network cannot schedule anything.
	sched, err = ScheduleLP(net, reqs, DefaultParams(SurfNet))
	if err != nil {
		t.Fatal(err)
	}
	if sched.AcceptedCodes() != 0 {
		t.Fatalf("surfnet scheduled %d codes with no entangled pairs", sched.AcceptedCodes())
	}
}

func TestGreedyOrderRespected(t *testing.T) {
	// With a budget for only one code, the admission order decides which
	// request wins.
	net := lineNet(t, 0.95, 1000, 7)
	reqs := []network.Request{
		{Src: 0, Dst: 4, Messages: 1},
		{Src: 4, Dst: 0, Messages: 1},
	}
	p := DefaultParams(SurfNet)
	sched, err := Greedy(net, reqs, p, nil, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Requests[1].Accepted() != 1 || sched.Requests[0].Accepted() != 0 {
		t.Fatalf("admission order ignored: %d/%d",
			sched.Requests[0].Accepted(), sched.Requests[1].Accepted())
	}
}

func TestGreedyTargetsRespected(t *testing.T) {
	net := lineNet(t, 0.95, 1000, 1000)
	reqs := []network.Request{{Src: 0, Dst: 4, Messages: 5}}
	sched, err := Greedy(net, reqs, DefaultParams(SurfNet), []int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Requests[0].Accepted() != 2 {
		t.Fatalf("target ignored: accepted %d, want 2", sched.Requests[0].Accepted())
	}
}
