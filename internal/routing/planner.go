package routing

import (
	"sync"

	"surfnet/internal/lp"
	"surfnet/internal/network"
	"surfnet/internal/telemetry"
)

// Planner is the resident control plane's incremental scheduler. It behaves
// exactly like ScheduleLP — same formulation, same rounding, same greedy
// repair — but remembers the simplex basis of its last optimal solve and
// warm-starts the next one from it, so the steady-state re-plans a daemon
// issues (fault telemetry, epoch batching, demand churn) skip simplex
// phase 1 whenever the previous vertex is still feasible. A Planner is safe
// for concurrent use; each Plan call is serialized.
type Planner struct {
	params Params

	mu    sync.Mutex
	basis []int
	// warmHits / warmMisses count Plan calls whose LP solve did / did not
	// reuse the previous basis (misses include cold first solves and
	// fallbacks after topology reshapes).
	warmHits, warmMisses int64
}

// NewPlanner returns a planner scheduling with the given parameters.
func NewPlanner(p Params) *Planner { return &Planner{params: p} }

// Params returns the planner's routing parameters.
func (pl *Planner) Params() Params { return pl.params }

// WarmStats reports how many Plan LP solves reused the previous basis
// (hits) versus solved cold (misses).
func (pl *Planner) WarmStats() (hits, misses int64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.warmHits, pl.warmMisses
}

// Invalidate drops the remembered basis, forcing the next Plan to solve
// cold. Callers use it after reshaping changes (node removal, request-set
// restructuring) known to make the old basis useless.
func (pl *Planner) Invalidate() {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.basis = nil
}

// Plan schedules reqs on net, warm-starting the LP relaxation from the last
// optimal basis when one is available. The integral schedule is produced by
// the same rounding and greedy repair as ScheduleLP, so given identical
// relaxation optima the two paths admit identical code sets. Designs without
// an IP formulation (purification) and adaptive code sizing degrade to
// Greedy exactly as in ScheduleLP.
func (pl *Planner) Plan(net *network.Network, reqs []network.Request) (Schedule, error) {
	p := pl.params
	fallback := func(reason string) (Schedule, error) {
		p.Metrics.Counter("routing.greedy_fallbacks").Inc()
		telemetry.Emit(p.Tracer, telemetry.Ev("routing.greedy_fallback",
			"reason", reason, "requests", len(reqs)))
		return Greedy(net, reqs, p, nil, nil)
	}
	if p.Design != SurfNet && p.Design != Raw {
		return fallback("design-without-formulation")
	}
	if len(p.AdaptiveDistances) > 0 {
		return fallback("adaptive-code-sizing")
	}
	form, err := BuildLP(net, reqs, p)
	if err != nil {
		return Schedule{}, err
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	res, err := form.SolveLPFrom(pl.basis)
	if err == nil {
		emitLPSolved(p, form, res)
		if res.Stats.WarmStarted {
			pl.warmHits++
			p.Metrics.Counter("routing.replan_warm_hits").Inc()
		} else {
			pl.warmMisses++
			p.Metrics.Counter("routing.replan_warm_misses").Inc()
		}
	}
	if err != nil {
		p.Metrics.Counter("routing.lp_errors").Inc()
		pl.basis = nil
		return fallback("solver-error")
	}
	if res.Status != lp.Optimal {
		pl.basis = nil
		return fallback("lp-" + res.Status.String())
	}
	pl.basis = res.Basis
	return roundAndRepair(net, reqs, p, res)
}
