// Package matching implements Edmonds' blossom algorithm for minimum-weight
// perfect matching on general graphs.
//
// Algorithm 1 of the paper reduces surface-code decoding to minimum-weight
// perfect matching on the syndrome path graph and applies "the blossom
// algorithm [37]". This package is that oracle, written from scratch: a
// primal-dual O(V^3)-style implementation with explicit blossom shrinking and
// expansion, operating on integer-scaled weights so that dual updates stay
// exact (duals remain half-integral, so no floating-point drift can stall
// termination).
//
// Minimum weight is obtained by the standard transform: every perfect
// matching has exactly n/2 edges, so maximizing sum(C - w_e) over perfect
// matchings minimizes sum(w_e) for a large constant C, and choosing C larger
// than any achievable matching weight forces maximum cardinality first.
package matching

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoPerfectMatching is returned when the input graph admits no perfect
// matching (including when the vertex count is odd).
var ErrNoPerfectMatching = errors.New("matching: graph has no perfect matching")

// Edge is an undirected edge with a non-negative weight.
type Edge struct {
	U, V   int
	Weight float64
}

// scale converts float weights to the integer domain. Relative error 1e-9 is
// far below any weight gap that matters to decoding (weights are sums of
// -ln(p) terms).
const scale = 1e9

// MinWeightPerfect computes a minimum-weight perfect matching of the graph on
// n vertices with the given edges. It returns mate, where mate[v] is the
// vertex matched to v, and the total weight of the matching. Parallel edges
// are allowed (the lightest is kept); self-loops are rejected. Weights must
// be non-negative and finite; +Inf edges are treated as absent.
func MinWeightPerfect(n int, edges []Edge) (mate []int, total float64, err error) {
	if n == 0 {
		return []int{}, 0, nil
	}
	if n%2 == 1 {
		return nil, 0, fmt.Errorf("%w: odd vertex count %d", ErrNoPerfectMatching, n)
	}
	// Determine the scale-safe maximum weight and validate.
	maxW := 0.0
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, 0, fmt.Errorf("matching: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, 0, fmt.Errorf("matching: self-loop at %d", e.U)
		}
		if math.IsNaN(e.Weight) || e.Weight < 0 {
			return nil, 0, fmt.Errorf("matching: invalid weight %v on edge (%d,%d)", e.Weight, e.U, e.V)
		}
		if !math.IsInf(e.Weight, 1) && e.Weight > maxW {
			maxW = e.Weight
		}
	}

	s := newSolver(n)
	// Transformed integer weight: bigC - scaled(w), with bigC large enough
	// that cardinality dominates and every present edge stays positive.
	unit := int64(1)
	if maxW > 0 {
		unit = int64(maxW*scale) + 1
	}
	bigC := unit*int64(n/2) + 1
	for _, e := range edges {
		if math.IsInf(e.Weight, 1) {
			continue
		}
		w := bigC - int64(e.Weight*scale)
		u, v := e.U+1, e.V+1
		if s.g[u][v].w == 0 || w > s.g[u][v].w {
			s.g[u][v] = wedge{u: u, v: v, w: w}
			s.g[v][u] = wedge{u: v, v: u, w: w}
		}
	}
	s.run()

	mate = make([]int, n)
	for v := 1; v <= n; v++ {
		if s.match[v] == 0 {
			return nil, 0, ErrNoPerfectMatching
		}
		mate[v-1] = s.match[v] - 1
	}
	// Total weight from the original float weights of matched pairs.
	// Recover via the transformed weights to avoid re-looking-up parallel
	// edges: w = (bigC - w') / scale.
	for v := 1; v <= n; v++ {
		if s.match[v] > v {
			total += float64(bigC-s.g[v][s.match[v]].w) / scale
		}
	}
	return mate, total, nil
}

// wedge is an internal weighted edge; w == 0 means "absent".
type wedge struct {
	u, v int
	w    int64
}

// solver carries the blossom algorithm state. Vertices are 1-indexed;
// 1..n are real, n+1..2n are (potential) blossom ids. st[x] is the top-level
// blossom containing x; lab[x] the dual variable; S[x] the BFS side
// (0 = even/S, 1 = odd/T, -1 = free).
type solver struct {
	n, nx      int
	g          [][]wedge
	lab        []int64
	match      []int
	slack      []int
	st         []int
	pa         []int
	flowerFrom [][]int
	side       []int8
	vis        []int
	visToken   int
	flower     [][]int

	// queue is a head-indexed FIFO: popping advances qHead instead of
	// re-slicing, so the backing array's front capacity is never lost and a
	// steady-state matching round appends into storage it already owns
	// (re-slicing drifted the slice forward each round, forcing qPush to
	// reallocate — the last allocation between MWPM.DecodeWith and zero
	// allocs/op).
	queue []int
	qHead int

	// rot is the blossom-cycle rotation scratch of setMatch, reused across
	// calls so rotating a flower never allocates.
	rot []int
}

func newSolver(n int) *solver {
	size := 2*n + 1
	s := &solver{
		n:          n,
		nx:         n,
		g:          make([][]wedge, size),
		lab:        make([]int64, size),
		match:      make([]int, size),
		slack:      make([]int, size),
		st:         make([]int, size),
		pa:         make([]int, size),
		flowerFrom: make([][]int, size),
		side:       make([]int8, size),
		vis:        make([]int, size),
		flower:     make([][]int, size),
	}
	for i := range s.g {
		s.g[i] = make([]wedge, size)
		s.flowerFrom[i] = make([]int, n+1)
		for j := range s.g[i] {
			// Absent edges still carry their endpoints so that
			// reduced-cost comparisons on them are well defined.
			s.g[i][j] = wedge{u: i, v: j, w: 0}
		}
	}
	return s
}

// eDelta is the reduced cost of edge e (doubled weights convention).
func (s *solver) eDelta(e wedge) int64 {
	return s.lab[e.u] + s.lab[e.v] - s.g[e.u][e.v].w*2
}

func (s *solver) updateSlack(u, x int) {
	if s.slack[x] == 0 || s.eDelta(s.g[u][x]) < s.eDelta(s.g[s.slack[x]][x]) {
		s.slack[x] = u
	}
}

func (s *solver) setSlack(x int) {
	s.slack[x] = 0
	for u := 1; u <= s.n; u++ {
		if s.g[u][x].w > 0 && s.st[u] != x && s.side[s.st[u]] == 0 {
			s.updateSlack(u, x)
		}
	}
}

func (s *solver) qPush(x int) {
	if x <= s.n {
		s.queue = append(s.queue, x)
		return
	}
	for _, p := range s.flower[x] {
		s.qPush(p)
	}
}

func (s *solver) setSt(x, b int) {
	s.st[x] = b
	if x > s.n {
		for _, p := range s.flower[x] {
			s.setSt(p, b)
		}
	}
}

// getPr locates sub-blossom xr inside blossom b and returns its position,
// reversing the cycle when needed so the position is even (the blossom cycle
// is odd, so one orientation always works).
func (s *solver) getPr(b, xr int) int {
	pr := 0
	for i, f := range s.flower[b] {
		if f == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		rest := s.flower[b][1:]
		for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
			rest[i], rest[j] = rest[j], rest[i]
		}
		return len(s.flower[b]) - pr
	}
	return pr
}

func (s *solver) setMatch(u, v int) {
	s.match[u] = s.g[u][v].v
	if u <= s.n {
		return
	}
	ed := s.g[u][v]
	xr := s.flowerFrom[u][ed.u]
	pr := s.getPr(u, xr)
	for i := 0; i < pr; i++ {
		s.setMatch(s.flower[u][i], s.flower[u][i^1])
	}
	s.setMatch(xr, v)
	// Rotate so xr leads the cycle, via the reusable scratch (in-place
	// rotation keeps the flower's backing array and allocates nothing once
	// rot has grown to the largest cycle seen).
	fl := s.flower[u]
	s.rot = append(s.rot[:0], fl[pr:]...)
	s.rot = append(s.rot, fl[:pr]...)
	copy(fl, s.rot)
}

func (s *solver) augment(u, v int) {
	for {
		xnv := s.st[s.match[u]]
		s.setMatch(u, v)
		if xnv == 0 {
			return
		}
		s.setMatch(xnv, s.st[s.pa[xnv]])
		u, v = s.st[s.pa[xnv]], xnv
	}
}

func (s *solver) getLCA(u, v int) int {
	s.visToken++
	t := s.visToken
	for u != 0 || v != 0 {
		if u != 0 {
			if s.vis[u] == t {
				return u
			}
			s.vis[u] = t
			u = s.st[s.match[u]]
			if u != 0 {
				u = s.st[s.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (s *solver) addBlossom(u, lca, v int) {
	b := s.n + 1
	for b <= s.nx && s.st[b] != 0 {
		b++
	}
	if b > s.nx {
		s.nx++
	}
	s.lab[b] = 0
	s.side[b] = 0
	s.match[b] = s.match[lca]
	s.flower[b] = s.flower[b][:0]
	s.flower[b] = append(s.flower[b], lca)
	for x := u; x != lca; {
		y := s.st[s.match[x]]
		s.flower[b] = append(s.flower[b], x, y)
		s.qPush(y)
		x = s.st[s.pa[y]]
	}
	rest := s.flower[b][1:]
	for i, j := 0, len(rest)-1; i < j; i, j = i+1, j-1 {
		rest[i], rest[j] = rest[j], rest[i]
	}
	for x := v; x != lca; {
		y := s.st[s.match[x]]
		s.flower[b] = append(s.flower[b], x, y)
		s.qPush(y)
		x = s.st[s.pa[y]]
	}
	s.setSt(b, b)
	for x := 1; x <= s.nx; x++ {
		s.g[b][x].w = 0
		s.g[x][b].w = 0
	}
	for x := 1; x <= s.n; x++ {
		s.flowerFrom[b][x] = 0
	}
	for _, xs := range s.flower[b] {
		for x := 1; x <= s.nx; x++ {
			if s.g[b][x].w == 0 || s.eDelta(s.g[xs][x]) < s.eDelta(s.g[b][x]) {
				s.g[b][x] = s.g[xs][x]
				s.g[x][b] = s.g[x][xs]
			}
		}
		for x := 1; x <= s.n; x++ {
			if s.flowerFrom[xs][x] != 0 {
				s.flowerFrom[b][x] = xs
			}
		}
	}
	s.setSlack(b)
}

func (s *solver) expandBlossom(b int) {
	for _, xs := range s.flower[b] {
		s.setSt(xs, xs)
	}
	xr := s.flowerFrom[b][s.g[b][s.pa[b]].u]
	pr := s.getPr(b, xr)
	for i := 0; i < pr; i += 2 {
		xs := s.flower[b][i]
		xns := s.flower[b][i+1]
		s.pa[xs] = s.g[xns][xs].u
		s.side[xs] = 1
		s.side[xns] = 0
		s.slack[xs] = 0
		s.setSlack(xns)
		s.qPush(xns)
	}
	s.side[xr] = 1
	s.pa[xr] = s.pa[b]
	for i := pr + 1; i < len(s.flower[b]); i++ {
		xs := s.flower[b][i]
		s.side[xs] = -1
		s.setSlack(xs)
	}
	s.st[b] = 0
}

// onFoundEdge processes a tight edge discovered from the S side; it reports
// whether an augmenting path completed.
func (s *solver) onFoundEdge(e wedge) bool {
	u, v := s.st[e.u], s.st[e.v]
	switch s.side[v] {
	case -1:
		s.pa[v] = e.u
		s.side[v] = 1
		nu := s.st[s.match[v]]
		s.slack[v] = 0
		s.slack[nu] = 0
		s.side[nu] = 0
		s.qPush(nu)
	case 0:
		lca := s.getLCA(u, v)
		if lca == 0 {
			s.augment(u, v)
			s.augment(v, u)
			return true
		}
		s.addBlossom(u, lca, v)
	}
	return false
}

// matchingRound runs one phase of the primal-dual search; it reports whether
// an augmentation happened (false means the matching is maximum).
func (s *solver) matchingRound() bool {
	for i := 0; i <= s.nx; i++ {
		s.side[i] = -1
		s.slack[i] = 0
	}
	s.queue = s.queue[:0]
	s.qHead = 0
	for x := 1; x <= s.nx; x++ {
		if s.st[x] == x && s.match[x] == 0 {
			s.pa[x] = 0
			s.side[x] = 0
			s.qPush(x)
		}
	}
	if len(s.queue) == 0 {
		return false
	}
	for {
		for s.qHead < len(s.queue) {
			u := s.queue[s.qHead]
			s.qHead++
			if s.side[s.st[u]] == 1 {
				continue
			}
			for v := 1; v <= s.n; v++ {
				if s.g[u][v].w > 0 && s.st[u] != s.st[v] {
					if s.eDelta(s.g[u][v]) == 0 {
						if s.onFoundEdge(s.g[u][v]) {
							return true
						}
					} else {
						s.updateSlack(u, s.st[v])
					}
				}
			}
		}
		d := int64(math.MaxInt64)
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b && s.side[b] == 1 {
				d = min64(d, s.lab[b]/2)
			}
		}
		for x := 1; x <= s.nx; x++ {
			if s.st[x] == x && s.slack[x] != 0 {
				switch s.side[x] {
				case -1:
					d = min64(d, s.eDelta(s.g[s.slack[x]][x]))
				case 0:
					d = min64(d, s.eDelta(s.g[s.slack[x]][x])/2)
				}
			}
		}
		for x := 1; x <= s.n; x++ {
			switch s.side[s.st[x]] {
			case 0:
				s.lab[x] -= d
				if s.lab[x] <= 0 {
					return false // no perfect matching exists
				}
			case 1:
				s.lab[x] += d
			}
		}
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b {
				switch s.side[b] {
				case 0:
					s.lab[b] += d * 2
				case 1:
					s.lab[b] -= d * 2
				}
			}
		}
		s.queue = s.queue[:0]
		s.qHead = 0
		for x := 1; x <= s.nx; x++ {
			if s.st[x] == x && s.slack[x] != 0 && s.st[s.slack[x]] != x &&
				s.eDelta(s.g[s.slack[x]][x]) == 0 {
				if s.onFoundEdge(s.g[s.slack[x]][x]) {
					return true
				}
			}
		}
		for b := s.n + 1; b <= s.nx; b++ {
			if s.st[b] == b && s.side[b] == 1 && s.lab[b] == 0 {
				s.expandBlossom(b)
			}
		}
	}
}

func (s *solver) run() {
	for u := 0; u <= s.n; u++ {
		s.st[u] = u
	}
	var wMax int64
	for u := 1; u <= s.n; u++ {
		for v := 1; v <= s.n; v++ {
			if u == v {
				s.flowerFrom[u][v] = u
			} else {
				s.flowerFrom[u][v] = 0
			}
			wMax = max64(wMax, s.g[u][v].w)
		}
	}
	for u := 1; u <= s.n; u++ {
		s.lab[u] = wMax
	}
	for s.matchingRound() {
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
