package matching

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

// bruteForce finds the optimal perfect matching weight by bitmask DP,
// for cross-checking (n <= 16). Returns +Inf when no perfect matching exists.
func bruteForce(n int, edges []Edge) float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = math.Inf(1)
		}
	}
	for _, e := range edges {
		if e.Weight < w[e.U][e.V] {
			w[e.U][e.V] = e.Weight
			w[e.V][e.U] = e.Weight
		}
	}
	dp := make([]float64, 1<<n)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	dp[0] = 0
	for mask := 0; mask < 1<<n; mask++ {
		if math.IsInf(dp[mask], 1) {
			continue
		}
		// Lowest unmatched vertex.
		first := -1
		for v := 0; v < n; v++ {
			if mask&(1<<v) == 0 {
				first = v
				break
			}
		}
		if first < 0 {
			continue
		}
		for u := first + 1; u < n; u++ {
			if mask&(1<<u) != 0 || math.IsInf(w[first][u], 1) {
				continue
			}
			next := mask | 1<<first | 1<<u
			if c := dp[mask] + w[first][u]; c < dp[next] {
				dp[next] = c
			}
		}
	}
	return dp[1<<n-1]
}

// checkMatching validates that mate is a perfect matching over the edges and
// returns its weight.
func checkMatching(t *testing.T, n int, edges []Edge, mate []int) float64 {
	t.Helper()
	if len(mate) != n {
		t.Fatalf("mate has %d entries, want %d", len(mate), n)
	}
	best := make(map[[2]int]float64)
	for _, e := range edges {
		k := [2]int{min(e.U, e.V), max(e.U, e.V)}
		if w, ok := best[k]; !ok || e.Weight < w {
			best[k] = e.Weight
		}
	}
	total := 0.0
	for v := 0; v < n; v++ {
		u := mate[v]
		if u < 0 || u >= n || u == v {
			t.Fatalf("mate[%d] = %d invalid", v, u)
		}
		if mate[u] != v {
			t.Fatalf("mate not symmetric at %d <-> %d", v, u)
		}
		if v < u {
			w, ok := best[[2]int{v, u}]
			if !ok {
				t.Fatalf("matched pair (%d,%d) has no edge", v, u)
			}
			total += w
		}
	}
	return total
}

func TestTrivialCases(t *testing.T) {
	mate, total, err := MinWeightPerfect(0, nil)
	if err != nil || len(mate) != 0 || total != 0 {
		t.Fatalf("empty graph: %v %v %v", mate, total, err)
	}
	if _, _, err := MinWeightPerfect(3, nil); err == nil {
		t.Fatal("odd vertex count must fail")
	}
	mate, total, err = MinWeightPerfect(2, []Edge{{U: 0, V: 1, Weight: 2.5}})
	if err != nil || mate[0] != 1 || mate[1] != 0 || math.Abs(total-2.5) > 1e-9 {
		t.Fatalf("single edge: %v %v %v", mate, total, err)
	}
}

func TestInputValidation(t *testing.T) {
	if _, _, err := MinWeightPerfect(2, []Edge{{U: 0, V: 2, Weight: 1}}); err == nil {
		t.Error("out-of-range endpoint must fail")
	}
	if _, _, err := MinWeightPerfect(2, []Edge{{U: 0, V: 0, Weight: 1}}); err == nil {
		t.Error("self-loop must fail")
	}
	if _, _, err := MinWeightPerfect(2, []Edge{{U: 0, V: 1, Weight: -1}}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, _, err := MinWeightPerfect(2, []Edge{{U: 0, V: 1, Weight: math.NaN()}}); err == nil {
		t.Error("NaN weight must fail")
	}
}

func TestNoPerfectMatching(t *testing.T) {
	// Star K_{1,3}: 4 vertices, no perfect matching.
	edges := []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}
	if _, _, err := MinWeightPerfect(4, edges); err == nil {
		t.Fatal("star graph should have no perfect matching")
	}
	// Isolated vertex.
	if _, _, err := MinWeightPerfect(4, []Edge{{0, 1, 1}, {1, 2, 1}}); err == nil {
		t.Fatal("isolated vertex should fail")
	}
	// Infinite-weight edges count as absent.
	if _, _, err := MinWeightPerfect(2, []Edge{{0, 1, math.Inf(1)}}); err == nil {
		t.Fatal("all edges absent should fail")
	}
}

func TestSquare(t *testing.T) {
	// 4-cycle with one cheap diagonal pairing.
	edges := []Edge{
		{0, 1, 1}, {1, 2, 10}, {2, 3, 1}, {3, 0, 10},
	}
	mate, total, err := MinWeightPerfect(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	got := checkMatching(t, 4, edges, mate)
	if math.Abs(total-2) > 1e-6 || math.Abs(got-2) > 1e-6 {
		t.Fatalf("total = %v, want 2", total)
	}
}

func TestForcedBlossom(t *testing.T) {
	// Triangle 0-1-2 plus pendant edges 0-3, 1-4, 2-5: the optimum must
	// shrink the odd cycle to see that each triangle vertex pairs with its
	// pendant is infeasible in combination — exactly one triangle edge is
	// used, plus one pendant pair... with 6 vertices the matching takes
	// one triangle edge and the two pendants of its endpoints? No: if the
	// matching uses triangle edge (0,1), vertices 2,3,4,5 remain and only
	// edges 2-5 exist among them plus 3,4 isolated -> infeasible. So the
	// optimum pairs each triangle vertex with its pendant.
	edges := []Edge{
		{0, 1, 1}, {1, 2, 1}, {0, 2, 1},
		{0, 3, 5}, {1, 4, 6}, {2, 5, 7},
		{3, 4, 100},
	}
	mate, total, err := MinWeightPerfect(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkMatching(t, 6, edges, mate)
	want := bruteForce(6, edges)
	if math.Abs(total-want) > 1e-6 {
		t.Fatalf("total = %v, brute force = %v", total, want)
	}
}

func TestParallelEdgesKeepLightest(t *testing.T) {
	edges := []Edge{{0, 1, 9}, {0, 1, 2}, {0, 1, 4}}
	_, total, err := MinWeightPerfect(2, edges)
	if err != nil || math.Abs(total-2) > 1e-9 {
		t.Fatalf("total = %v err=%v, want lightest parallel edge 2", total, err)
	}
}

func TestZeroWeights(t *testing.T) {
	// All-zero weights: any perfect matching is optimal; must terminate.
	var edges []Edge
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			edges = append(edges, Edge{u, v, 0})
		}
	}
	mate, total, err := MinWeightPerfect(8, edges)
	if err != nil {
		t.Fatal(err)
	}
	checkMatching(t, 8, edges, mate)
	if total != 0 {
		t.Fatalf("total = %v, want 0", total)
	}
}

func TestRandomCompleteAgainstBruteForce(t *testing.T) {
	src := rng.New(2024)
	for trial := 0; trial < 300; trial++ {
		n := 2 * (1 + src.IntN(5)) // 2..10
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{u, v, src.Range(0, 10)})
			}
		}
		mate, total, err := MinWeightPerfect(n, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := checkMatching(t, n, edges, mate)
		want := bruteForce(n, edges)
		if math.Abs(got-want) > 1e-5 || math.Abs(total-want) > 1e-5 {
			t.Fatalf("trial %d (n=%d): got %v (reported %v), brute force %v",
				trial, n, got, total, want)
		}
	}
}

func TestRandomSparseAgainstBruteForce(t *testing.T) {
	src := rng.New(777)
	feasible, infeasible := 0, 0
	for trial := 0; trial < 400; trial++ {
		n := 2 * (2 + src.IntN(4)) // 4..10
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if src.Bool(0.45) {
					edges = append(edges, Edge{u, v, src.Range(0.1, 5)})
				}
			}
		}
		want := bruteForce(n, edges)
		mate, total, err := MinWeightPerfect(n, edges)
		if math.IsInf(want, 1) {
			infeasible++
			if err == nil {
				t.Fatalf("trial %d: matcher found a matching where none exists", trial)
			}
			continue
		}
		feasible++
		if err != nil {
			t.Fatalf("trial %d: matcher failed on feasible graph: %v", trial, err)
		}
		got := checkMatching(t, n, edges, mate)
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("trial %d (n=%d): got %v, want %v", trial, n, got, want)
		}
		_ = total
	}
	if feasible < 50 || infeasible < 20 {
		t.Logf("coverage note: %d feasible, %d infeasible trials", feasible, infeasible)
	}
}

func TestIntegerWeightsDegenerate(t *testing.T) {
	// Many equal weights force degenerate dual updates and blossoms.
	src := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		n := 2 * (2 + src.IntN(4))
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{u, v, float64(src.IntN(3))})
			}
		}
		mate, _, err := MinWeightPerfect(n, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := checkMatching(t, n, edges, mate)
		want := bruteForce(n, edges)
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("trial %d (n=%d): got %v, want %v", trial, n, got, want)
		}
	}
}

func TestLargeSmoke(t *testing.T) {
	// 120-vertex complete graph: validity and a sanity lower bound.
	src := rng.New(5150)
	const n = 120
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{u, v, src.Range(1, 100)})
		}
	}
	mate, total, err := MinWeightPerfect(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	got := checkMatching(t, n, edges, mate)
	if math.Abs(got-total) > 1e-4 {
		t.Fatalf("reported total %v != recomputed %v", total, got)
	}
	// Lower bound: half the sum over vertices of their cheapest edge.
	minEdge := make([]float64, n)
	for i := range minEdge {
		minEdge[i] = math.Inf(1)
	}
	for _, e := range edges {
		if e.Weight < minEdge[e.U] {
			minEdge[e.U] = e.Weight
		}
		if e.Weight < minEdge[e.V] {
			minEdge[e.V] = e.Weight
		}
	}
	lb := 0.0
	for _, w := range minEdge {
		lb += w / 2
	}
	if total < lb-1e-6 {
		t.Fatalf("total %v below lower bound %v", total, lb)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
