package matching

import (
	"errors"
	"math"
	"testing"

	"surfnet/internal/rng"
)

// twinReference solves the same boundary-matching problem with the classic
// construction: q syndromes plus q twins, twin i attached at boundary[i],
// twins forming a zero-weight clique. Used as the oracle for
// MinWeightPerfectBoundary.
func twinReference(q int, edges []Edge, boundary []float64) (total float64, err error) {
	all := make([]Edge, 0, len(edges)+q+q*(q-1)/2)
	all = append(all, edges...)
	for i := 0; i < q; i++ {
		all = append(all, Edge{U: i, V: q + i, Weight: boundary[i]})
		for j := i + 1; j < q; j++ {
			all = append(all, Edge{U: q + i, V: q + j, Weight: 0})
		}
	}
	_, total, err = MinWeightPerfect(2*q, all)
	return total, err
}

// randomInstance draws a boundary-matching instance with continuous random
// weights (ties have probability zero).
func randomInstance(src *rng.Source, q int) (edges []Edge, boundary []float64) {
	boundary = make([]float64, q)
	for i := range boundary {
		boundary[i] = src.Range(0.5, 10)
	}
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			if src.Bool(0.7) {
				edges = append(edges, Edge{U: i, V: j, Weight: src.Range(0.1, 12)})
			}
		}
	}
	return edges, boundary
}

// TestBoundaryMatchesTwinConstruction checks, across random instances of odd
// and even size, that the structural boundary encoding achieves exactly the
// twin-construction optimum and that the reported total is consistent with
// the returned mate assignment.
func TestBoundaryMatchesTwinConstruction(t *testing.T) {
	src := rng.New(42)
	a := NewArena()
	for trial := 0; trial < 120; trial++ {
		q := 1 + src.IntN(12)
		edges, boundary := randomInstance(src.SplitN("inst", trial), q)
		mate, total, err := a.MinWeightPerfectBoundary(q, edges, boundary)
		if err != nil {
			t.Fatalf("trial %d (q=%d): %v", trial, q, err)
		}
		want, err := twinReference(q, edges, boundary)
		if err != nil {
			t.Fatalf("trial %d reference: %v", trial, err)
		}
		// Integer scaling rounds at 1e-9 per edge.
		if math.Abs(total-want) > 1e-6 {
			t.Fatalf("trial %d (q=%d): total %v, twin construction %v", trial, q, total, want)
		}
		// mate must be a valid involution and its cost must equal total.
		check := 0.0
		for i, m := range mate {
			switch {
			case m == -1:
				check += boundary[i]
			case m < -1 || m >= q || m == i:
				t.Fatalf("trial %d: invalid mate[%d]=%d", trial, i, m)
			case mate[m] != i:
				t.Fatalf("trial %d: mate not symmetric at %d<->%d", trial, i, m)
			case m > i:
				w := math.Inf(1)
				for _, e := range edges {
					if (e.U == i && e.V == m) || (e.U == m && e.V == i) {
						w = math.Min(w, e.Weight)
					}
				}
				check += w
			}
		}
		if math.Abs(check-total) > 1e-6 {
			t.Fatalf("trial %d: mate cost %v, reported total %v", trial, check, total)
		}
	}
}

// TestBoundaryArenaReuseIsDeterministic re-solves the same instances on one
// arena interleaved with different-sized ones; reuse must never change a
// result.
func TestBoundaryArenaReuseIsDeterministic(t *testing.T) {
	src := rng.New(5)
	type inst struct {
		q        int
		edges    []Edge
		boundary []float64
		total    float64
		mate     []int
	}
	var insts []inst
	fresh := NewArena()
	for trial := 0; trial < 20; trial++ {
		q := 1 + src.IntN(10)
		e, b := randomInstance(src.SplitN("inst", trial), q)
		mate, total, err := fresh.MinWeightPerfectBoundary(q, e, b)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst{q, e, b, total, append([]int(nil), mate...)})
	}
	a := NewArena()
	for round := 0; round < 3; round++ {
		for k, in := range insts {
			mate, total, err := a.MinWeightPerfectBoundary(in.q, in.edges, in.boundary)
			if err != nil {
				t.Fatal(err)
			}
			if total != in.total {
				t.Fatalf("round %d inst %d: total %v, want %v", round, k, total, in.total)
			}
			for i := range mate {
				if mate[i] != in.mate[i] {
					t.Fatalf("round %d inst %d: mate[%d]=%d, want %d", round, k, i, mate[i], in.mate[i])
				}
			}
		}
	}
}

// TestBoundaryEdgeCases pins the degenerate and error paths.
func TestBoundaryEdgeCases(t *testing.T) {
	a := NewArena()
	if mate, total, err := a.MinWeightPerfectBoundary(0, nil, nil); err != nil || total != 0 || len(mate) != 0 {
		t.Fatalf("q=0: mate=%v total=%v err=%v", mate, total, err)
	}
	mate, total, err := a.MinWeightPerfectBoundary(1, nil, []float64{2.5})
	if err != nil || mate[0] != -1 || total != 2.5 {
		t.Fatalf("q=1: mate=%v total=%v err=%v", mate, total, err)
	}
	// Odd q with no boundary routes has no perfect matching.
	inf := math.Inf(1)
	if _, _, err := a.MinWeightPerfectBoundary(1, nil, []float64{inf}); !errors.Is(err, ErrNoPerfectMatching) {
		t.Fatalf("q=1 Inf boundary: err=%v, want ErrNoPerfectMatching", err)
	}
	// Inf boundary removes only the boundary option: a pair edge still works.
	mate, total, err = a.MinWeightPerfectBoundary(2, []Edge{{U: 0, V: 1, Weight: 3}}, []float64{inf, inf})
	if err != nil || mate[0] != 1 || mate[1] != 0 || math.Abs(total-3) > 1e-9 {
		t.Fatalf("pair under Inf boundary: mate=%v total=%v err=%v", mate, total, err)
	}
	// Tie between explicit edge and boundary sum keeps the explicit edge.
	mate, _, err = a.MinWeightPerfectBoundary(2, []Edge{{U: 0, V: 1, Weight: 4}}, []float64{2, 2})
	if err != nil || mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("tie: mate=%v err=%v, want explicit pair", mate, err)
	}
	// Validation errors.
	if _, _, err := a.MinWeightPerfectBoundary(2, nil, []float64{1}); err == nil {
		t.Fatal("boundary length mismatch accepted")
	}
	if _, _, err := a.MinWeightPerfectBoundary(1, nil, []float64{-1}); err == nil {
		t.Fatal("negative boundary accepted")
	}
	if _, _, err := a.MinWeightPerfectBoundary(2, []Edge{{U: 0, V: 2, Weight: 1}}, []float64{1, 1}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, _, err := a.MinWeightPerfectBoundary(2, []Edge{{U: 0, V: 0, Weight: 1}}, []float64{1, 1}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, _, err := a.MinWeightPerfectBoundary(2, []Edge{{U: 0, V: 1, Weight: -2}}, []float64{1, 1}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestBoundaryPrefersCheaperOption checks both decision directions on a
// hand-built instance: one pair where the direct edge wins, one where the
// double-boundary route wins.
func TestBoundaryPrefersCheaperOption(t *testing.T) {
	a := NewArena()
	// Pair (0,1): edge 1 vs boundary 5+5 -> edge. Pair (2,3): edge 9 vs
	// boundary 1+1 -> boundary.
	edges := []Edge{{U: 0, V: 1, Weight: 1}, {U: 2, V: 3, Weight: 9}}
	boundary := []float64{5, 5, 1, 1}
	mate, total, err := a.MinWeightPerfectBoundary(4, edges, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if mate[0] != 1 || mate[1] != 0 || mate[2] != -1 || mate[3] != -1 {
		t.Fatalf("mate=%v, want [1 0 -1 -1]", mate)
	}
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("total=%v, want 3", total)
	}
}

// BenchmarkBlossomBoundary compares the structural boundary solve against
// the twin-clique construction it replaces.
func BenchmarkBlossomBoundary(b *testing.B) {
	src := rng.New(9)
	const q = 24
	edges, boundary := randomInstance(src, q)
	b.Run("twin-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := twinReference(q, edges, boundary); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("structural-arena", func(b *testing.B) {
		b.ReportAllocs()
		a := NewArena()
		for i := 0; i < b.N; i++ {
			if _, _, err := a.MinWeightPerfectBoundary(q, edges, boundary); err != nil {
				b.Fatal(err)
			}
		}
	})
}
