package matching

import (
	"fmt"
	"math"
)

// Arena is a reusable blossom workspace: the solver's dense state (the
// O(n^2) weight matrix, blossom bookkeeping, and the result slice) is kept
// across calls and only reallocated when a larger instance arrives. The MWPM
// decoder holds one Arena per decode scratch so steady-state matching
// allocates nothing.
//
// An Arena is owned by one goroutine at a time. The mate slice returned by
// its methods aliases the arena and is valid until the next call.
type Arena struct {
	s    *solver
	cap  int
	mate []int
	pair []float64 // q x q explicit-edge weights, +Inf = absent
}

// NewArena returns an empty workspace; buffers are sized by the first call.
func NewArena() *Arena { return &Arena{} }

// solverFor returns the arena's solver prepared for an n-vertex instance,
// allocating only when n exceeds every previous instance.
func (a *Arena) solverFor(n int) *solver {
	if a.s == nil || n > a.cap {
		a.s = newSolver(n)
		a.cap = n
		return a.s
	}
	a.s.reset(n)
	return a.s
}

// MinWeightPerfectBoundary computes a minimum-weight matching of q vertices
// where every vertex must either pair with another vertex or retire to a
// boundary at its own cost: vertex i pairs with j at the lighter of an
// explicit edge weight and boundary[i]+boundary[j], and — when q is odd —
// one vertex retires alone at boundary[i]. This is exactly the classic
// virtual-twin construction for surface-code boundary matching (every vertex
// gets a zero-weight-clique twin bought at its boundary cost), encoded
// structurally instead of materializing q twins and q(q-1)/2 clique edges:
// the solver runs on q (+1 when odd) vertices instead of 2q.
//
// Equivalence to the twin construction: a twin-world perfect matching pairs
// some vertices directly and sends a set B (|B| ≡ q mod 2) to their twins at
// cost sum(boundary[b]); leftover twins pair freely at zero. Pairing the
// members of B among themselves here costs the same sum, and conversely any
// matching here expands to a twin-world matching of equal weight, so the
// optima coincide.
//
// mate[i] is the matched partner of i, or -1 when i retires to the boundary.
// A boundary cost of +Inf removes the boundary option for that vertex.
// Explicit edges must satisfy the MinWeightPerfect contract (non-negative,
// +Inf = absent, parallel edges keep the lightest). On an exact tie between
// an explicit edge and the boundary sum, the explicit edge wins.
func (a *Arena) MinWeightPerfectBoundary(q int, edges []Edge, boundary []float64) (mate []int, total float64, err error) {
	if len(boundary) != q {
		return nil, 0, fmt.Errorf("matching: %d boundary costs for %d vertices", len(boundary), q)
	}
	for i, b := range boundary {
		if math.IsNaN(b) || b < 0 {
			return nil, 0, fmt.Errorf("matching: invalid boundary cost %v at vertex %d", b, i)
		}
	}
	if cap(a.mate) < q {
		a.mate = make([]int, q)
	}
	mate = a.mate[:q]
	if q == 0 {
		return mate, 0, nil
	}
	// Dense explicit-edge table (lightest parallel edge wins).
	if cap(a.pair) < q*q {
		a.pair = make([]float64, q*q)
	}
	pair := a.pair[:q*q]
	for i := range pair {
		pair[i] = math.Inf(1)
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= q || e.V < 0 || e.V >= q {
			return nil, 0, fmt.Errorf("matching: edge (%d,%d) out of range [0,%d)", e.U, e.V, q)
		}
		if e.U == e.V {
			return nil, 0, fmt.Errorf("matching: self-loop at %d", e.U)
		}
		if math.IsNaN(e.Weight) || e.Weight < 0 {
			return nil, 0, fmt.Errorf("matching: invalid weight %v on edge (%d,%d)", e.Weight, e.U, e.V)
		}
		if e.Weight < pair[e.U*q+e.V] {
			pair[e.U*q+e.V] = e.Weight
			pair[e.V*q+e.U] = e.Weight
		}
	}
	// Effective pair weight: explicit edge vs both-to-boundary.
	weight := func(i, j int) float64 {
		w := pair[i*q+j]
		if s := boundary[i] + boundary[j]; s < w {
			w = s
		}
		return w
	}
	nn := q
	if q%2 == 1 {
		nn++ // parity vertex: one syndrome retires alone to the boundary
	}
	maxW := 0.0
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			if w := weight(i, j); !math.IsInf(w, 1) && w > maxW {
				maxW = w
			}
		}
		if nn > q && !math.IsInf(boundary[i], 1) && boundary[i] > maxW {
			maxW = boundary[i]
		}
	}
	s := a.solverFor(nn)
	unit := int64(1)
	if maxW > 0 {
		unit = int64(maxW*scale) + 1
	}
	bigC := unit*int64(nn/2) + 1
	add := func(u, v int, w float64) {
		if math.IsInf(w, 1) {
			return
		}
		iw := bigC - int64(w*scale)
		s.g[u+1][v+1] = wedge{u: u + 1, v: v + 1, w: iw}
		s.g[v+1][u+1] = wedge{u: v + 1, v: u + 1, w: iw}
	}
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			add(i, j, weight(i, j))
		}
		if nn > q {
			add(i, q, boundary[i])
		}
	}
	s.run()
	for v := 1; v <= nn; v++ {
		if s.match[v] == 0 {
			return nil, 0, ErrNoPerfectMatching
		}
	}
	for i := 0; i < q; i++ {
		m := s.match[i+1] - 1
		switch {
		case m == q: // parity vertex: retire to the boundary
			mate[i] = -1
			total += boundary[i]
		case pair[i*q+m] <= boundary[i]+boundary[m]: // explicit edge (ties included)
			mate[i] = m
			if m > i {
				total += pair[i*q+m]
			}
		default: // both endpoints retire to the boundary
			mate[i] = -1
			total += boundary[i]
		}
	}
	return mate, total, nil
}

// reset clears the solver for reuse on an n-vertex instance (n no larger
// than the instance it was allocated for). The full capacity region is
// cleared so no weights or matches leak from a previous, larger problem.
func (s *solver) reset(n int) {
	size := len(s.g)
	for i := 0; i < size; i++ {
		row := s.g[i]
		for j := range row {
			row[j].w = 0
		}
		s.match[i] = 0
		s.st[i] = 0
		s.lab[i] = 0
		s.pa[i] = 0
		s.side[i] = 0
		s.slack[i] = 0
		s.flower[i] = s.flower[i][:0]
		ff := s.flowerFrom[i]
		for j := range ff {
			ff[j] = 0
		}
	}
	s.n, s.nx = n, n
	s.queue = s.queue[:0]
	s.qHead = 0
	// vis/visToken survive: tokens are strictly increasing, so stale vis
	// entries can never equal a future token.
}
