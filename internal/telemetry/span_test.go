package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanSetEmitsStableEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	s := NewSpanSet(tr, 2, 1)

	root := s.Start("transfer", 0, 0)
	child := s.Start("slot", root, 3)
	s.End(child, 4)
	s.End(root, 10, "delivered", true)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", len(lines), buf.String())
	}
	// Children end before parents, so the child line comes first.
	want0 := `{"event":"span","slot":4,"req":2,"code":1,"dur":1,"name":"slot","parent":1,"span":2,"start":3}`
	if lines[0] != want0 {
		t.Errorf("child line:\ngot  %s\nwant %s", lines[0], want0)
	}
	var rootEv map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &rootEv); err != nil {
		t.Fatal(err)
	}
	if rootEv["name"] != "transfer" || rootEv["parent"] != float64(0) ||
		rootEv["dur"] != float64(10) || rootEv["delivered"] != true {
		t.Errorf("root span event %v", rootEv)
	}
}

func TestSpanSetIDsSequential(t *testing.T) {
	s := NewSpanSet(NewJSONL(&bytes.Buffer{}), -1, -1)
	for want := 1; want <= 5; want++ {
		if id := s.Start("s", 0, 0); id != want {
			t.Fatalf("span id = %d, want %d", id, want)
		}
	}
	if open := s.Open(); open != 5 {
		t.Fatalf("open = %d, want 5", open)
	}
}

func TestSpanSetNilSafe(t *testing.T) {
	var s *SpanSet
	if id := s.Start("x", 0, 0); id != 0 {
		t.Fatalf("nil Start = %d, want 0", id)
	}
	s.End(1, 5)     // no panic
	s.End(0, 5)     // id 0 is the root sentinel, never a real span
	if s.Open() != 0 {
		t.Fatal("nil Open != 0")
	}
	if NewSpanSet(nil, 0, 0) != nil {
		t.Fatal("NewSpanSet(nil) should return nil")
	}
}

func TestSpanSetDoubleEndAndClampedDuration(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	s := NewSpanSet(tr, -1, -1)
	id := s.Start("x", 0, 7)
	s.End(id, 3) // end before start: duration clamps to 0
	s.End(id, 9) // second End is ignored
	s.End(99, 9) // unknown id is ignored
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("emitted %d lines, want 1", len(lines))
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["dur"] != float64(0) {
		t.Fatalf("clamped dur = %v, want 0", ev["dur"])
	}
	if s.Open() != 0 {
		t.Fatal("span still open after End")
	}
}
