package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// WallSink is the non-deterministic half of the dual-clock span model: spans
// keep measuring durations in slots (the engine's causal clock, emitted on
// the deterministic trace stream), and a SpanSet wired to a WallSink
// *additionally* captures each span's wall-clock duration into a per-span-name
// HDR histogram ("<name>_wall_seconds" in the registry, so /metrics exposes
// surfnet_decode_wall_seconds, surfnet_slot_wall_seconds, ...).
//
// Wall time never flows back into the simulation: the sink only reads the
// clock and writes instruments, so instrumented runs stay byte-identical —
// the invariant TestFig6aInvariantUnderFullObservability pins. Overrun trace
// events go to the sink's own Tracer (a separate JSONL stream), never to the
// deterministic one.
//
// A nil *WallSink disables wall capture at one branch per span, matching the
// package's nil-receiver contract. All methods are safe for concurrent use.
type WallSink struct {
	reg    *Registry
	now    func() time.Time
	budget *Budget
	tracer Tracer

	mu    sync.Mutex
	names map[string]*wallEntry
}

// wallEntry is the resolved instrument set of one span name. The budget
// counters are nil when no budget covers the name; the aggregate pair
// (budget.checked / budget.overruns, shared across names) rides along so
// /metrics always has one roll-up family to alert on.
type wallEntry struct {
	hist       *HDR
	checked    *Counter
	overrun    *Counter
	checkedAll *Counter
	overrunAll *Counter
}

// NewWallSink returns a sink recording into reg. A nil registry yields a nil
// sink (wall capture off).
func NewWallSink(reg *Registry) *WallSink {
	return NewWallSinkClock(reg, time.Now)
}

// NewWallSinkClock is NewWallSink with an injectable clock, for deterministic
// tests.
func NewWallSinkClock(reg *Registry, now func() time.Time) *WallSink {
	if reg == nil {
		return nil
	}
	return &WallSink{reg: reg, now: now, names: map[string]*wallEntry{}}
}

// SetBudget attaches a latency budget: spans whose names the budget covers
// are counted and, when they exceed the limit, recorded as overruns.
func (ws *WallSink) SetBudget(b *Budget) {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	ws.budget = b
	ws.names = map[string]*wallEntry{} // re-resolve budget counters
	ws.mu.Unlock()
}

// Budget reports the attached budget (nil when none).
func (ws *WallSink) Budget() *Budget {
	if ws == nil {
		return nil
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.budget
}

// SetTracer attaches the sink's own trace stream for budget-overrun events.
// It must be a different stream from the deterministic slot trace: wall data
// on that stream would break trace byte-identity.
func (ws *WallSink) SetTracer(t Tracer) {
	if ws == nil {
		return
	}
	ws.mu.Lock()
	ws.tracer = t
	ws.mu.Unlock()
}

// Now reads the sink's clock in nanoseconds; 0 on a nil sink. SpanSet stores
// it per span at Start.
func (ws *WallSink) Now() int64 {
	if ws == nil {
		return 0
	}
	return ws.now().UnixNano()
}

// entry resolves (once per span name) the instruments Record updates.
func (ws *WallSink) entry(name string) (*wallEntry, *Budget, Tracer) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	e, ok := ws.names[name]
	if !ok {
		e = &wallEntry{hist: ws.reg.HDR(name+"_wall_seconds", WallLatencySpec)}
		if ws.budget != nil && ws.budget.Covers(name) {
			e.checked = ws.reg.Counter("budget.checked." + name)
			e.overrun = ws.reg.Counter("budget.overruns." + name)
			e.checkedAll = ws.reg.Counter("budget.checked")
			e.overrunAll = ws.reg.Counter("budget.overruns")
		}
		ws.names[name] = e
	}
	return e, ws.budget, ws.tracer
}

// Record captures one span's wall duration: it feeds the span name's HDR
// histogram and, when a budget covers the name, the budget accounting. req,
// code, and slot tag the overrun trace event with the communication the span
// belonged to (negative omits them).
func (ws *WallSink) Record(name string, seconds float64, req, code, slot int) {
	if ws == nil || seconds < 0 {
		return
	}
	e, budget, tracer := ws.entry(name)
	e.hist.Observe(seconds)
	if e.checked == nil {
		return
	}
	e.checked.Inc()
	e.checkedAll.Inc()
	if !budget.check(seconds) {
		return
	}
	e.overrun.Inc()
	e.overrunAll.Inc()
	if tracer != nil {
		ev := Ev("wall.budget_overrun",
			"name", name, "wall_seconds", seconds, "budget_seconds", budget.LimitSeconds())
		ev.Slot, ev.Req, ev.Code = slot, req, code
		tracer.Emit(ev)
	}
}

// Budget is a wall-clock latency objective over a set of span names (the
// "-slot-budget 100us" SLO): every covered span is checked against the limit,
// overruns are counted, and the burn rate — the fraction of checked spans
// that blew the budget — is surfaced on /status. A nil *Budget disables
// budget accounting.
type Budget struct {
	limitSeconds float64
	covers       map[string]struct{}
	checked      atomic.Int64
	overruns     atomic.Int64
}

// DefaultBudgetSpans are the span names a budget covers when none are named:
// the per-slot step and the decode it contains — the two latencies the
// streaming-window roadmap items bound.
var DefaultBudgetSpans = []string{"slot", "decode"}

// NewBudget builds a budget with the given limit over the named spans
// (DefaultBudgetSpans when none are given). A non-positive limit yields a nil
// budget, the disabled default.
func NewBudget(limit time.Duration, spanNames ...string) *Budget {
	if limit <= 0 {
		return nil
	}
	if len(spanNames) == 0 {
		spanNames = DefaultBudgetSpans
	}
	b := &Budget{limitSeconds: limit.Seconds(), covers: map[string]struct{}{}}
	for _, n := range spanNames {
		b.covers[n] = struct{}{}
	}
	return b
}

// Covers reports whether the budget applies to spans named name.
func (b *Budget) Covers(name string) bool {
	if b == nil {
		return false
	}
	_, ok := b.covers[name]
	return ok
}

// LimitSeconds reports the budget limit (0 on nil).
func (b *Budget) LimitSeconds() float64 {
	if b == nil {
		return 0
	}
	return b.limitSeconds
}

// check records one covered observation and reports whether it overran.
func (b *Budget) check(seconds float64) bool {
	if b == nil {
		return false
	}
	b.checked.Add(1)
	if seconds <= b.limitSeconds {
		return false
	}
	b.overruns.Add(1)
	return true
}

// BudgetStatus is the frozen budget state served on /status.
type BudgetStatus struct {
	// LimitSeconds is the configured per-span budget.
	LimitSeconds float64 `json:"limit_seconds"`
	// Spans lists the covered span names, sorted.
	Spans []string `json:"spans"`
	// Checked counts covered spans observed so far.
	Checked int64 `json:"checked"`
	// Overruns counts spans that exceeded the budget.
	Overruns int64 `json:"overruns"`
	// BurnRate is Overruns/Checked — the fraction of the SLO being burned;
	// 0 before any span is checked.
	BurnRate float64 `json:"burn_rate"`
}

// Status snapshots the budget; the zero BudgetStatus on nil.
func (b *Budget) Status() BudgetStatus {
	var st BudgetStatus
	if b == nil {
		return st
	}
	st.LimitSeconds = b.limitSeconds
	st.Spans = make([]string, 0, len(b.covers))
	for n := range b.covers {
		st.Spans = append(st.Spans, n)
	}
	sortStrings(st.Spans)
	st.Checked = b.checked.Load()
	st.Overruns = b.overruns.Load()
	if st.Checked > 0 {
		st.BurnRate = float64(st.Overruns) / float64(st.Checked)
	}
	return st
}

// sortStrings is a tiny local insertion sort so wall.go does not pull sort's
// interface machinery into the hot path file's imports. Span-name sets are
// length 2-3.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
