package telemetry

import (
	"sync"
	"time"
)

// Flight recording is the request-scoped half of the observability plane:
// where counters and HDR histograms aggregate over the whole process, a
// Flight is one transfer's own bounded event ring — every lifecycle step
// (admitted, queued, planned, executed, retried, terminal) stamped with the
// service's tick clock (epoch number) and a monotonic wall clock, so "why was
// *this* transfer slow" is answerable after the fact without correlating
// global streams.
//
// The recorder follows the package's instrumentation contract: a nil
// *FlightRecorder starts nil *Flights, and every method on a nil receiver is
// a no-op, so disabling flight recording costs one branch per call site.
// Recording only appends to the flight's own ring — it never reads or writes
// simulation state and draws no randomness — which is what makes it provably
// side-effect-free: deterministic outputs stay byte-identical and
// worker-invariant with flights enabled.

// FlightKind enumerates the typed lifecycle events a flight records.
type FlightKind uint8

const (
	// FlightAdmitted is the first event of every flight: the transfer passed
	// admission control and received an ID.
	FlightAdmitted FlightKind = iota
	// FlightQueueEnter marks entry into the admission queue; A carries the
	// queue depth after the enqueue.
	FlightQueueEnter
	// FlightQueueExit marks departure from the queue into an epoch batch; A
	// carries the queue depth left behind.
	FlightQueueExit
	// FlightEpochAssigned binds the transfer to the epoch that will plan and
	// execute it; A carries the epoch number.
	FlightEpochAssigned
	// FlightPlanned marks the end of the epoch's planning step; Note carries
	// the plan mode (warm, cold, degraded) and A the batch size planned.
	FlightPlanned
	// FlightFaultCoincident marks that the attempt ran while the live fault
	// plane had outages in effect; A and B carry the down fiber and node
	// counts of the overlay.
	FlightFaultCoincident
	// FlightExecuted marks the end of the epoch's execution step; A, B, and C
	// carry the transfer's accepted, delivered, and successful code counts.
	FlightExecuted
	// FlightDecodeVerdict summarizes the attempt's end-to-end decode outcome;
	// A and B carry delivered and successful code counts, Note the verdict
	// ("ok" or "failed").
	FlightDecodeVerdict
	// FlightRetryScheduled marks a failed attempt re-queued with backoff; A
	// carries the backoff in epochs, B the earliest epoch the retry may run
	// in, and Note the failure class that caused the retry.
	FlightRetryScheduled
	// FlightTerminal is the last event of every flight; Note carries
	// "completed" or the terminal failure class.
	FlightTerminal
)

// flightKindNames renders kinds for traces and reports.
var flightKindNames = [...]string{
	FlightAdmitted:        "admitted",
	FlightQueueEnter:      "queue_enter",
	FlightQueueExit:       "queue_exit",
	FlightEpochAssigned:   "epoch_assigned",
	FlightPlanned:         "planned",
	FlightFaultCoincident: "fault_coincident",
	FlightExecuted:        "executed",
	FlightDecodeVerdict:   "decode_verdict",
	FlightRetryScheduled:  "retry_scheduled",
	FlightTerminal:        "terminal",
}

func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown"
}

// FlightEvent is one recorded lifecycle event. Seq is the flight-local
// sequence number (0-based, gap-free even when the ring has evicted older
// events), Tick the service's causal clock (epoch number) at recording time,
// and WallNs monotonic nanoseconds since the recorder was built. A, B, C are
// kind-specific integer arguments and Note a kind-specific constant string —
// no per-event allocations beyond the pre-sized ring.
type FlightEvent struct {
	Seq    uint64
	Kind   FlightKind
	Tick   int64
	WallNs int64
	A      int64
	B      int64
	C      int64
	Note   string
}

// Flight is one transfer's bounded event ring. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Flight struct {
	rec *FlightRecorder
	id  string

	mu        sync.Mutex
	ring      []FlightEvent // fixed capacity, allocated once at Start
	seq       uint64        // events recorded so far; ring keeps the last cap(ring)
	firstWall int64         // wall stamp of event 0, surviving ring eviction
	firstTick int64
}

// ID reports the flight's transfer ID ("" on nil).
func (f *Flight) ID() string {
	if f == nil {
		return ""
	}
	return f.id
}

// Record appends one event, stamped with the given tick and the recorder's
// monotonic wall clock, evicting the oldest ring entry when full. It returns
// the stamped event so callers can reuse the stamps (e.g. to derive latency
// without reading the clock twice); the zero FlightEvent on nil.
func (f *Flight) Record(kind FlightKind, tick, a, b, c int64, note string) FlightEvent {
	if f == nil {
		return FlightEvent{}
	}
	ev := FlightEvent{Kind: kind, Tick: tick, A: a, B: b, C: c, Note: note}
	f.mu.Lock()
	// Stamp under the lock: wall stamps are monotone *within a flight* in
	// recording order, so attributed segment durations are never negative.
	ev.WallNs = f.rec.wallNow()
	ev.Seq = f.seq
	if f.seq == 0 {
		f.firstWall = ev.WallNs
		f.firstTick = ev.Tick
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.seq%uint64(cap(f.ring))] = ev
	}
	f.seq++
	f.mu.Unlock()
	return ev
}

// Events returns the retained events in recording order (a fresh copy). When
// the ring has evicted early events, the slice starts at the oldest retained
// one; Dropped reports how many were evicted.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, len(f.ring))
	if f.seq <= uint64(cap(f.ring)) {
		copy(out, f.ring)
		return out
	}
	head := int(f.seq % uint64(cap(f.ring))) // oldest retained event
	n := copy(out, f.ring[head:])
	copy(out[n:], f.ring[:head])
	return out
}

// Len reports how many events have been recorded in total (including any the
// ring has since evicted).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int(f.seq)
}

// Dropped reports how many early events the bounded ring has evicted.
func (f *Flight) Dropped() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seq <= uint64(cap(f.ring)) {
		return 0
	}
	return int(f.seq - uint64(cap(f.ring)))
}

// StartWallNs reports the wall stamp of the flight's first event (0 on nil or
// before any event). It survives ring eviction, so admission-to-now latency
// is always derivable from the latest stamp minus this one.
func (f *Flight) StartWallNs() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstWall
}

// StartTick reports the tick stamp of the flight's first event (0 on nil).
func (f *Flight) StartTick() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.firstTick
}

// FlightSnapshot is a retired flight's frozen state, retained by the recorder
// for incident bundles.
type FlightSnapshot struct {
	ID      string
	Events  []FlightEvent
	Dropped int
}

// FlightRecorder starts flights with a shared bounded ring size and monotonic
// clock, and retains the last N retired (terminal) flights for one-shot
// incident snapshots. A nil recorder disables flight recording entirely.
type FlightRecorder struct {
	events int
	retain int
	now    func() time.Time
	start  time.Time

	mu     sync.Mutex
	recent []FlightSnapshot // ring of retired flights, oldest first once full
	next   int              // ring write cursor
	total  int64            // flights retired so far
}

// Default sizing: 64 events comfortably covers a transfer burning the full
// retry budget (8 attempts x ~7 events), and 32 retained flights is a useful
// incident window without unbounded growth.
const (
	defaultFlightEvents = 64
	defaultFlightRetain = 32
)

// NewFlightRecorder builds a recorder. events bounds each flight's ring (0
// selects 64), retain bounds the retired-flight window (0 selects 32;
// negative retains none), and now is the monotonic clock (nil selects
// time.Now; tests inject a deterministic clock).
func NewFlightRecorder(events, retain int, now func() time.Time) *FlightRecorder {
	if events == 0 {
		events = defaultFlightEvents
	}
	if events < 1 {
		events = 1
	}
	if retain == 0 {
		retain = defaultFlightRetain
	}
	if retain < 0 {
		retain = 0
	}
	if now == nil {
		now = time.Now
	}
	return &FlightRecorder{
		events: events,
		retain: retain,
		now:    now,
		start:  now(),
	}
}

// wallNow reads monotonic nanoseconds since the recorder was built (0 on a
// nil recorder, so flights of a nil recorder — which never exist — and
// zero-value stamps stay distinguishable from real ones only by event flow).
func (fr *FlightRecorder) wallNow() int64 {
	if fr == nil {
		return 0
	}
	return int64(fr.now().Sub(fr.start))
}

// Start begins a new flight for the given transfer ID (nil on a nil
// recorder). The event ring is allocated once, up front.
func (fr *FlightRecorder) Start(id string) *Flight {
	if fr == nil {
		return nil
	}
	return &Flight{rec: fr, id: id, ring: make([]FlightEvent, 0, fr.events)}
}

// Retire snapshots a terminal flight into the recorder's bounded recent
// window. No-op on a nil recorder, a nil flight, or a zero retain bound.
func (fr *FlightRecorder) Retire(f *Flight) {
	if fr == nil || f == nil || fr.retain == 0 {
		return
	}
	snap := FlightSnapshot{ID: f.ID(), Events: f.Events(), Dropped: f.Dropped()}
	fr.mu.Lock()
	if len(fr.recent) < fr.retain {
		fr.recent = append(fr.recent, snap)
	} else {
		fr.recent[fr.next%fr.retain] = snap
	}
	fr.next = (fr.next + 1) % fr.retain
	fr.total++
	fr.mu.Unlock()
}

// Recent returns the retained terminal flights, oldest first (a fresh copy).
func (fr *FlightRecorder) Recent() []FlightSnapshot {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightSnapshot, 0, len(fr.recent))
	if len(fr.recent) < fr.retain || fr.next == 0 {
		return append(out, fr.recent...)
	}
	out = append(out, fr.recent[fr.next:]...)
	return append(out, fr.recent[:fr.next]...)
}

// Retired reports how many flights have been retired in total.
func (fr *FlightRecorder) Retired() int64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}
