package telemetry

// SpanSet allocates the hierarchical spans of one traced scope — in the
// engine, one transfer — and emits them to the scope's Tracer as ordinary
// "span" events on the same JSONL stream as the flat slot events. Span ids
// are assigned sequentially in Start order, so a sequentially executed scope
// produces the same ids on every run: traces stay deterministic and the ids
// carry no wall-clock or scheduling information.
//
// Spans nest by parent id (0 is the root sentinel: a span with Parent 0 has
// no parent). Durations are measured in slots, the engine's causal clock, so
// a transfer's latency decomposes exactly into its epoch, slot, and decode
// spans; wall-clock decode time stays in the telemetry histograms
// (decoder.<name>.decode_seconds) where nondeterminism belongs.
//
// A SpanSet is not safe for concurrent use; each traced scope owns its own.
// The nil *SpanSet (returned by NewSpanSet over a nil Tracer) is the no-op
// default: Start returns 0 and End does nothing.
type SpanSet struct {
	t         Tracer
	wall      *WallSink
	req, code int
	spans     []spanRec
}

type spanRec struct {
	name      string
	parent    int
	startSlot int
	wallStart int64 // sink clock, ns; 0 when wall capture is off
	ended     bool
}

// NewSpanSet returns a span allocator emitting to t, tagging every span with
// the communication's request and code indices (negative omits them). A nil
// t yields a nil SpanSet, keeping the untraced hot path to one branch.
func NewSpanSet(t Tracer, req, code int) *SpanSet {
	return NewSpanSetWall(t, req, code, nil)
}

// NewSpanSetWall is NewSpanSet with the dual-clock extension: when wall is
// non-nil, every span additionally measures its wall-clock duration into the
// sink's per-name histograms (and budget, when one is attached). The
// deterministic trace stream is untouched — End emits byte-identical events
// with or without a sink — and wall capture works without a Tracer, so a
// metrics-only run can still watch decode latency. Only when both t and wall
// are nil is the SpanSet nil.
func NewSpanSetWall(t Tracer, req, code int, wall *WallSink) *SpanSet {
	if t == nil && wall == nil {
		return nil
	}
	return &SpanSet{t: t, wall: wall, req: req, code: code}
}

// Start opens a span named name under parent (0 for a root span) beginning
// at slot, and returns its id (>= 1). On a nil SpanSet it returns 0, which
// is safe to pass anywhere a parent or span id is expected.
func (s *SpanSet) Start(name string, parent, slot int) int {
	if s == nil {
		return 0
	}
	s.spans = append(s.spans, spanRec{
		name: name, parent: parent, startSlot: slot, wallStart: s.wall.Now(),
	})
	return len(s.spans)
}

// End closes span id at endSlot and emits one "span" event carrying the
// span's name, id, parent, start slot, and slot duration, plus any extra
// attribute pairs. Unknown ids and double Ends are ignored, so span cleanup
// on error paths needs no bookkeeping.
func (s *SpanSet) End(id, endSlot int, kv ...any) {
	if s == nil || id < 1 || id > len(s.spans) {
		return
	}
	rec := &s.spans[id-1]
	if rec.ended {
		return
	}
	rec.ended = true
	if s.wall != nil {
		s.wall.Record(rec.name, float64(s.wall.Now()-rec.wallStart)/1e9,
			s.req, s.code, endSlot)
	}
	if s.t == nil {
		return
	}
	dur := endSlot - rec.startSlot
	if dur < 0 {
		dur = 0
	}
	attrs := append([]any{
		"name", rec.name, "span", id, "parent", rec.parent,
		"start", rec.startSlot, "dur", dur,
	}, kv...)
	ev := Ev("span", attrs...)
	ev.Slot, ev.Req, ev.Code = endSlot, s.req, s.code
	s.t.Emit(ev)
}

// Open reports how many started spans have not been ended yet — zero after a
// well-formed scope closes.
func (s *SpanSet) Open() int {
	if s == nil {
		return 0
	}
	open := 0
	for i := range s.spans {
		if !s.spans[i].ended {
			open++
		}
	}
	return open
}
