package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers one registry's counters, gauges, and
// histograms from many goroutines and checks the snapshot totals. Run under
// -race this is the telemetry layer's data-race proof.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve instruments inside the goroutine so registry
			// lookup races are exercised too.
			c := reg.Counter("test.counter")
			g := reg.Gauge("test.gauge")
			h := reg.Histogram("test.hist", LinearBuckets(1, 1, 8))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10 + 1))
			}
		}()
	}
	wg.Wait()

	s := reg.Snapshot()
	want := int64(workers * perWorker)
	if got := s.Counters["test.counter"]; got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := s.Gauges["test.gauge"]; got != float64(want) {
		t.Errorf("gauge = %g, want %d", got, want)
	}
	h := s.Histograms["test.hist"]
	if h.Count != want {
		t.Errorf("histogram count = %d, want %d", h.Count, want)
	}
	if h.Min != 1 || h.Max != 10 {
		t.Errorf("histogram min/max = %g/%g, want 1/10", h.Min, h.Max)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != want {
		t.Errorf("bucket total = %d, want %d", bucketTotal, want)
	}
}

// TestNilRegistryNoops checks the package's no-op default: every instrument
// of a nil registry absorbs calls without panicking.
func TestNilRegistryNoops(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Counter("x").Add(5)
	reg.Gauge("y").Set(3)
	reg.Gauge("y").Add(1)
	reg.Histogram("z", DurationBuckets).Observe(0.5)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if q := reg.Histogram("z", DurationBuckets).Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("nil histogram quantile = %g, want NaN", q)
	}
	s := reg.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil snapshot not empty: %+v", s)
	}
	Emit(nil, Ev("no.tracer")) // must not panic
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", LinearBuckets(10, 10, 10)) // 10,20,...,100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0, 1, 0}, {1, 100, 0}, {0.5, 50, 10}, {0.9, 90, 10}, {0.99, 99, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", tc.q, got, tc.want, tc.tol)
		}
	}
}

func TestSummaryTextSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.second").Inc()
	reg.Counter("a.first").Add(2)
	reg.Gauge("c.gauge").Set(1.5)
	text := reg.Snapshot().Text()
	wantOrder := []string{"a.first 2", "b.second 1", "c.gauge 1.5"}
	idx := -1
	for _, w := range wantOrder {
		i := strings.Index(text, w)
		if i < 0 {
			t.Fatalf("snapshot text missing %q:\n%s", w, text)
		}
		if i < idx {
			t.Errorf("snapshot text out of order at %q:\n%s", w, text)
		}
		idx = i
	}
}

// TestJSONLGolden pins the exact JSONL serialization: key order, slot/req
// omission rules, and attribute sorting.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	ev := Ev("core.photon_loss", "fiber", 3, "qubit", 17)
	ev.Slot, ev.Req, ev.Code = 12, 0, 2
	tr.Emit(ev)
	tr.Emit(Ev("routing.lp_solved", "status", "optimal", "pivots", 42, "objective", 7.5))
	deliver := Ev("core.deliver", "success", true)
	deliver.Slot, deliver.Req, deliver.Code = 31, 1, 0
	tr.Emit(deliver)
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if n := tr.Emitted(); n != 3 {
		t.Errorf("Emitted = %d, want 3", n)
	}

	golden := `{"event":"core.photon_loss","slot":12,"req":0,"code":2,"fiber":3,"qubit":17}
{"event":"routing.lp_solved","objective":7.5,"pivots":42,"status":"optimal"}
{"event":"core.deliver","slot":31,"req":1,"code":0,"success":true}
`
	if got := buf.String(); got != golden {
		t.Errorf("JSONL output mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	// Every line must round-trip as standalone JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %d not valid JSON: %v", i, err)
		}
		if _, ok := m["event"]; !ok {
			t.Errorf("line %d missing event field: %s", i, line)
		}
	}
}

func TestJSONLConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Ev("t", "worker", w, "i", i))
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line %q: %v", line, err)
		}
	}
}

func TestCounterDelta(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(3)
	prev := reg.Snapshot()
	reg.Counter("a").Add(2)
	reg.Counter("b").Inc()
	delta := reg.Snapshot().CounterDelta(prev)
	if delta["a"] != 2 || delta["b"] != 1 || len(delta) != 2 {
		t.Errorf("delta = %v, want map[a:2 b:1]", delta)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Inc()
	reg.Histogram("h", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var m struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Le    any   `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if m.Counters["c"] != 1 {
		t.Errorf("counter c = %d", m.Counters["c"])
	}
	h := m.Histograms["h"]
	if h.Count != 1 || len(h.Buckets) != 3 {
		t.Fatalf("histogram = %+v", h)
	}
	if h.Buckets[len(h.Buckets)-1].Le != "+Inf" {
		t.Errorf("overflow bucket le = %v, want +Inf string", h.Buckets[len(h.Buckets)-1].Le)
	}
}
