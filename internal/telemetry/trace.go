package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event is one trace record: a slot-level engine event (teleport hop, photon
// loss, decode, fiber crash, recovery, delivery) or a routing event (LP
// solve, rounding decision, greedy fallback). Events serialize to one JSON
// line with a stable key order — "event" first, then "slot"/"req"/"code"
// when set, then the remaining attributes sorted by key — so traces are
// byte-stable for golden tests and replay tooling.
type Event struct {
	// Type names the event, dot-namespaced by subsystem
	// (e.g. "core.photon_loss", "routing.lp_solved").
	Type string
	// Slot is the engine slot the event occurred in; negative means the
	// event is not slot-scoped (routing events) and the field is omitted.
	Slot int
	// Req and Code identify the communication; negative omits them.
	Req, Code int
	// Attrs carries event-specific fields. Values must be JSON-encodable.
	Attrs map[string]any
}

// Ev constructs a non-slot-scoped event from alternating key, value pairs.
func Ev(typ string, kv ...any) Event {
	ev := Event{Type: typ, Slot: -1, Req: -1, Code: -1}
	if len(kv) > 0 {
		ev.Attrs = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ev.Attrs[fmt.Sprint(kv[i])] = kv[i+1]
		}
	}
	return ev
}

// MarshalJSON renders the event as a single stable-order JSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString(`{"event":`)
	b.WriteString(quoteJSON(e.Type))
	if e.Slot >= 0 {
		fmt.Fprintf(&b, `,"slot":%d`, e.Slot)
	}
	if e.Req >= 0 {
		fmt.Fprintf(&b, `,"req":%d`, e.Req)
	}
	if e.Code >= 0 {
		fmt.Fprintf(&b, `,"code":%d`, e.Code)
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v, err := json.Marshal(e.Attrs[k])
		if err != nil {
			return nil, fmt.Errorf("telemetry: event %s attr %s: %w", e.Type, k, err)
		}
		b.WriteString(",")
		b.WriteString(quoteJSON(k))
		b.WriteString(":")
		b.Write(v)
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}

func quoteJSON(s string) string {
	out, _ := json.Marshal(s)
	return string(out)
}

// Tracer receives events. Implementations must be safe for concurrent use.
// A nil Tracer is the no-op default; emit through the package-level Emit (or
// guard with a nil check) rather than calling a method on a nil interface.
type Tracer interface {
	Emit(Event)
}

// Emit sends ev to t when tracing is enabled; the nil-tracer fast path is a
// single branch.
func Emit(t Tracer, ev Event) {
	if t != nil {
		t.Emit(ev)
	}
}

// JSONL is a Tracer writing one JSON object per line through a buffered
// writer. Close (or Flush) must be called to drain the buffer.
type JSONL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	under   io.Writer
	err     error
	emitted int64
}

// NewJSONL returns a JSONL tracer over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), under: w}
}

// Emit implements Tracer. Serialization errors are sticky and reported by
// Err; they do not panic the instrumented hot path.
func (t *JSONL) Emit(ev Event) {
	line, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if t.err != nil {
		return
	}
	t.emitted++
	if _, err := t.w.Write(line); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Emitted reports how many events have been written.
func (t *JSONL) Emitted() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Flush drains the buffer and reports any sticky error.
func (t *JSONL) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
func (t *JSONL) Close() error {
	err := t.Flush()
	if c, ok := t.under.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
