// Package telemetry is the repo's zero-dependency observability layer: a
// metrics registry of atomic counters, gauges, and fixed-bucket histograms,
// plus a slot-level event tracer with a buffered JSONL sink.
//
// Every type is safe for concurrent use, and every method is a no-op on a
// nil receiver, so uninstrumented call sites pay a single nil check:
//
//	var reg *telemetry.Registry // nil: all instrumentation disabled
//	reg.Counter("core.decodes").Inc()
//
// Hot paths should resolve their instruments once (at construction) and
// hold the resulting *Counter / *Histogram pointers; a nil Registry yields
// nil instruments whose methods cost one predictable branch.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets and tracks count,
// sum, min, and max. Buckets are cumulative-upper-bound style: observation v
// lands in the first bucket with v <= bound, or the implicit +Inf overflow
// bucket. All updates are atomic; a snapshot taken mid-update is internally
// consistent to within the in-flight observations.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
	minBits atomic.Uint64 // float64 bits, +Inf when empty
	maxBits atomic.Uint64 // float64 bits, -Inf when empty
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// ObserveDuration records a duration given in seconds; it is Observe with a
// name that documents the repo-wide convention that timing histograms carry
// seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		v := math.Float64frombits(old) + delta
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// casFloat atomically replaces the stored float when better(current) holds.
func casFloat(bits *atomic.Uint64, v float64, better func(float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing the target rank, clamped to the observed
// [min, max]. It returns NaN for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		lo := min
		if i > 0 {
			lo = math.Max(min, h.bounds[i-1])
		}
		hi := max
		if i < len(h.bounds) {
			hi = math.Min(max, h.bounds[i])
		}
		frac := (rank - float64(cum)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return max
}

// ExpBuckets returns n ascending bucket bounds starting at start and growing
// by factor: start, start*factor, ... Useful for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid LinearBuckets(%v, %v, %d)", start, width, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Default bucket layouts shared by the instrumented subsystems.
var (
	// DurationBuckets covers 1µs .. ~8.4s in powers of two, for per-call
	// wall-time histograms in seconds.
	DurationBuckets = ExpBuckets(1e-6, 2, 24)
	// SlotBuckets covers 1 .. 512 slots, for latency-in-slots histograms.
	SlotBuckets = ExpBuckets(1, 2, 10)
	// WeightBuckets covers small integer weights (syndrome and correction
	// sizes) 0 .. 96.
	WeightBuckets = LinearBuckets(0, 4, 25)
)

// Registry is a named collection of instruments. The zero value is not
// usable; construct with NewRegistry. A nil *Registry is the package's no-op
// default: every lookup returns a nil instrument.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	hdrs       map[string]*HDR
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		hdrs:       map[string]*HDR{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Later calls return the existing histogram regardless
// of bounds, so instruments stay consistent across call sites.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if !sort.Float64sAreSorted(bounds) || len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs ascending non-empty bounds", name))
		}
		if _, clash := r.hdrs[name]; clash {
			panic(fmt.Sprintf("telemetry: histogram %q collides with an existing HDR", name))
		}
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HDR returns the named log-linear latency histogram, creating it with the
// given layout on first use. Later calls return the existing histogram
// regardless of spec, so instruments stay consistent across call sites. Names
// share the histogram namespace: an HDR and a fixed-bucket Histogram may not
// collide (snapshots would be ambiguous), so reusing a Histogram name panics.
func (r *Registry) HDR(name string, spec HDRSpec) *HDR {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hdrs[name]
	if !ok {
		if _, clash := r.histograms[name]; clash {
			panic(fmt.Sprintf("telemetry: HDR %q collides with an existing histogram", name))
		}
		h = NewHDR(spec)
		r.hdrs[name] = h
	}
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	P50     float64          `json:"p50"`
	P90     float64          `json:"p90"`
	P99     float64          `json:"p99"`
	P999    float64          `json:"p999"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one histogram bucket: observations <= Le since the
// previous bound. The overflow bucket carries Le = +Inf (serialized "+Inf").
type BucketSnapshot struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders +Inf bounds as the string "+Inf" (JSON has no Inf).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.Le, 1) {
		le = fmt.Sprintf("%g", b.Le)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string form, so
// snapshots round-trip (e.g. decoding a /debug/bundle document).
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if len(raw.Le) > 0 && raw.Le[0] == '"' {
		var s string
		if err := json.Unmarshal(raw.Le, &s); err != nil {
			return err
		}
		if s != "+Inf" {
			return fmt.Errorf("telemetry: bad bucket bound %q", s)
		}
		b.Le = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// Snapshot is a frozen, sorted view of a registry, stable across runs with
// the same instrument activity: maps serialize with sorted keys and the text
// form is sorted by name.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
		hs.Min = math.Float64frombits(h.minBits.Load())
		hs.Max = math.Float64frombits(h.maxBits.Load())
		if hs.Count == 0 {
			hs.Min, hs.Max = 0, 0
			hs.P50, hs.P90, hs.P99, hs.P999 = 0, 0, 0, 0
		}
		for i := range h.buckets {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: le, Count: h.buckets[i].Load()})
		}
		s.Histograms[name] = hs
	}
	// HDR latency histograms share the exposition namespace: one
	// HistogramSnapshot each, with empty finite buckets elided (the
	// cumulative Prometheus series is unchanged by the elision).
	for name, h := range r.hdrs {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// CounterDelta returns this snapshot's counters minus prev's, dropping
// zero deltas — the per-figure "what happened during this run" view.
func (s Snapshot) CounterDelta(prev Snapshot) map[string]int64 {
	out := map[string]int64{}
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// Text renders the snapshot as sorted name-value lines: counters and gauges
// one per line, histograms as a count/sum/min/max/quantile summary line.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%s count=%d sum=%g min=%g max=%g p50=%g p90=%g p99=%g p999=%g\n",
			name, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P90, h.P99, h.P999)
	}
	return b.String()
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts map
// keys, so the output is stable for golden comparisons.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
