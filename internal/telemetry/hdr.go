package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// HDR is a fixed-bucket log-linear latency histogram in the spirit of
// HdrHistogram: the value axis is divided into octaves (powers of two above a
// configured minimum), and each octave into a fixed number of linear
// sub-buckets, so the bucket layout covers many decades at a bounded
// *relative* error — quantile estimates are within one sub-bucket, i.e.
// within a factor of 2^(1/SubBuckets) of the true value — using a flat,
// allocation-free array of atomic counters.
//
// All updates are atomic and every method is a no-op (or returns the empty
// convention) on a nil receiver, matching the package's instrumentation
// contract. HDRs recording the same layout are mergeable across workers with
// Merge, and Quantile supports the deep tail (p999) that the fixed
// DurationBuckets histogram cannot resolve.
type HDR struct {
	spec    HDRSpec
	buckets []atomic.Int64 // octaves*subBuckets buckets, plus one overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits
	minBits atomic.Uint64 // float64 bits, +Inf when empty
	maxBits atomic.Uint64 // float64 bits, -Inf when empty
}

// HDRSpec fixes an HDR's bucket layout. Two HDRs are mergeable iff their
// specs are equal.
type HDRSpec struct {
	// Min is the smallest distinguishable value; observations below it land
	// in bucket 0. Must be positive.
	Min float64
	// SubBuckets is the number of linear sub-buckets per octave; the
	// relative quantile error is bounded by 2^(1/SubBuckets) - 1.
	SubBuckets int
	// Octaves is the number of power-of-two ranges covered above Min;
	// values beyond Min * 2^Octaves land in the overflow bucket.
	Octaves int
}

// WallLatencySpec is the repo-wide layout for wall-clock latency in seconds:
// 100ns resolution floor, 8 sub-buckets per octave (≤ ~9.1% relative
// quantile error), 31 octaves reaching past 200s.
var WallLatencySpec = HDRSpec{Min: 1e-7, SubBuckets: 8, Octaves: 31}

// NewHDR builds an empty histogram with the given layout.
func NewHDR(spec HDRSpec) *HDR {
	if spec.Min <= 0 || spec.SubBuckets < 1 || spec.Octaves < 1 {
		panic(fmt.Sprintf("telemetry: invalid HDRSpec %+v", spec))
	}
	h := &HDR{
		spec:    spec,
		buckets: make([]atomic.Int64, spec.Octaves*spec.SubBuckets+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Spec reports the histogram's layout (the zero HDRSpec on nil).
func (h *HDR) Spec() HDRSpec {
	if h == nil {
		return HDRSpec{}
	}
	return h.spec
}

// NumBuckets reports the number of finite buckets (excluding overflow).
func (h *HDR) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.buckets) - 1
}

// bucketIndex maps a value onto its bucket: sub-minimum values into bucket 0,
// beyond-range values into the overflow bucket (index NumBuckets()).
func (h *HDR) bucketIndex(v float64) int {
	if v < h.spec.Min {
		return 0
	}
	// Octave o covers [Min*2^o, Min*2^(o+1)); the linear position within it
	// selects the sub-bucket. Log2 is exact enough here: a value on a bucket
	// boundary must land in the bucket it lower-bounds, which the floor of
	// the scaled log guarantees for exact powers of two and which
	// UpperBound's strict-inequality contract tolerates elsewhere.
	ratio := v / h.spec.Min
	o := int(math.Floor(math.Log2(ratio)))
	if o >= h.spec.Octaves {
		return len(h.buckets) - 1
	}
	if o < 0 {
		o = 0
	}
	// Position within the octave in [0,1): (ratio/2^o - 1).
	within := ratio/math.Ldexp(1, o) - 1
	sub := int(within * float64(h.spec.SubBuckets))
	switch { // guard float round-off at the octave edges
	case sub < 0:
		sub = 0
	case sub >= h.spec.SubBuckets:
		sub = h.spec.SubBuckets - 1
	}
	idx := o*h.spec.SubBuckets + sub
	// Log2 is not exactly rounded, so v can land one bucket off either way
	// at a boundary; settle it against the exact LowerBound arithmetic
	// (each loop moves at most one step in practice).
	for idx > 0 && v < h.LowerBound(idx) {
		idx--
	}
	for idx+1 < len(h.buckets)-1 && v >= h.LowerBound(idx+1) {
		idx++
	}
	return idx
}

// LowerBound returns the inclusive lower bound of finite bucket i (bucket 0
// extends down to zero: sub-minimum observations clamp into it).
func (h *HDR) LowerBound(i int) float64 {
	o := i / h.spec.SubBuckets
	sub := i % h.spec.SubBuckets
	return h.spec.Min * math.Ldexp(1, o) * (1 + float64(sub)/float64(h.spec.SubBuckets))
}

// UpperBound returns the exclusive upper bound of finite bucket i; the
// overflow bucket (i == NumBuckets()) is unbounded (+Inf).
func (h *HDR) UpperBound(i int) float64 {
	if i >= len(h.buckets)-1 {
		return math.Inf(1)
	}
	return h.LowerBound(i + 1)
}

// Observe records one observation. NaN and negative values are dropped (wall
// durations are non-negative by construction; a clock step backwards must not
// poison the histogram).
func (h *HDR) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.buckets[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// ObserveDuration records a duration given in seconds.
func (h *HDR) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count reports the number of observations.
func (h *HDR) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations.
func (h *HDR) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min reports the smallest observation; NaN when empty (the Summary
// convention: NaN propagates visibly instead of faking a zero sample).
func (h *HDR) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max reports the largest observation; NaN when empty, like Min.
func (h *HDR) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return math.NaN()
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing the target rank, clamped to the observed
// [min, max]. It returns NaN for an empty histogram. The estimate's relative
// error is bounded by the sub-bucket width, 2^(1/SubBuckets) - 1.
func (h *HDR) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	min := math.Float64frombits(h.minBits.Load())
	max := math.Float64frombits(h.maxBits.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) < rank {
			cum += n
			continue
		}
		lo := math.Max(min, h.LowerBound(i))
		if i == 0 {
			lo = min // bucket 0 reaches down to the clamp floor
		}
		hi := math.Min(max, h.UpperBound(i))
		if math.IsInf(hi, 1) {
			hi = max // overflow bucket: the observed max bounds it
		}
		if hi < lo {
			return lo
		}
		frac := (rank - float64(cum)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return max
}

// Merge folds other into h bucket-by-bucket; both must share the same spec.
// Merging an empty histogram is the identity, and the NaN/Inf empty-state
// sentinels never leak into a non-empty result (the PR-5 Min/Max convention).
func (h *HDR) Merge(other *HDR) error {
	if h == nil || other == nil {
		return nil
	}
	if h.spec != other.spec {
		return fmt.Errorf("telemetry: merging HDR specs %+v and %+v", h.spec, other.spec)
	}
	if other.count.Load() == 0 {
		return nil
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	addFloat(&h.sumBits, math.Float64frombits(other.sumBits.Load()))
	omin := math.Float64frombits(other.minBits.Load())
	omax := math.Float64frombits(other.maxBits.Load())
	casFloat(&h.minBits, omin, func(cur float64) bool { return omin < cur })
	casFloat(&h.maxBits, omax, func(cur float64) bool { return omax > cur })
	return nil
}

// snapshot freezes the HDR as a HistogramSnapshot, emitting only non-empty
// finite buckets (plus the +Inf overflow bucket) so a 250-bucket layout stays
// compact in /metrics: dropping zero-count buckets preserves the cumulative
// Prometheus series exactly.
func (h *HDR) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if hs.Count == 0 {
		hs.Min, hs.Max = 0, 0
		hs.P50, hs.P90, hs.P99, hs.P999 = 0, 0, 0, 0
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 && i != len(h.buckets)-1 {
			continue
		}
		hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: h.UpperBound(i), Count: n})
	}
	return hs
}
