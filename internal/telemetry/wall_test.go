package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic clock for wall-capture tests: each Now call
// advances by step.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestWallSinkRecordsSpans checks the dual-clock path end to end: spans wired
// to a sink feed <name>_wall_seconds HDR histograms while the deterministic
// trace stream stays byte-identical with and without the sink.
func TestWallSinkRecordsSpans(t *testing.T) {
	run := func(wall *WallSink) string {
		var sb strings.Builder
		tr := NewJSONL(&sb)
		s := NewSpanSetWall(tr, 2, 1, wall)
		root := s.Start("transfer", 0, 0)
		slot := s.Start("slot", root, 3)
		dec := s.Start("decode", slot, 3)
		s.End(dec, 3)
		s.End(slot, 4)
		s.End(root, 9, "delivered", true)
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	bare := run(nil)
	reg := NewRegistry()
	clock := &fakeClock{t: time.Unix(1000, 0), step: time.Millisecond}
	sink := NewWallSinkClock(reg, clock.Now)
	instrumented := run(sink)
	if bare != instrumented {
		t.Fatalf("wall capture changed the deterministic trace:\nbare:\n%s\ninstrumented:\n%s",
			bare, instrumented)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"transfer_wall_seconds", "slot_wall_seconds", "decode_wall_seconds"} {
		hs, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("missing histogram %q in %v", name, snap.Histograms)
		}
		if hs.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, hs.Count)
		}
	}
	// The fake clock ticks 1ms per Now(): decode spans 3 ticks between its
	// Start (tick 3 within this spanset... measured) and End.
	if hs := snap.Histograms["decode_wall_seconds"]; hs.Min <= 0 {
		t.Errorf("decode wall min = %g, want > 0", hs.Min)
	}
}

// TestWallSinkWithoutTracer checks metrics-only capture: a SpanSet with a
// sink but no Tracer still records wall durations and emits nothing.
func TestWallSinkWithoutTracer(t *testing.T) {
	reg := NewRegistry()
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Microsecond}
	sink := NewWallSinkClock(reg, clock.Now)
	s := NewSpanSetWall(nil, -1, -1, sink)
	if s == nil {
		t.Fatal("sink-only SpanSet must be live")
	}
	id := s.Start("decode", 0, 0)
	s.End(id, 1)
	if got := reg.Snapshot().Histograms["decode_wall_seconds"].Count; got != 1 {
		t.Fatalf("decode_wall_seconds count = %d, want 1", got)
	}
	if NewSpanSetWall(nil, -1, -1, nil) != nil {
		t.Fatal("no tracer and no sink must yield the nil SpanSet")
	}
}

// TestBudgetOverruns checks SLO accounting: covered spans are counted,
// overruns detected against the limit, burn rate computed, registry counters
// bumped, and overrun events emitted on the sink's own tracer only.
func TestBudgetOverruns(t *testing.T) {
	reg := NewRegistry()
	clock := &fakeClock{t: time.Unix(0, 0), step: 100 * time.Microsecond}
	sink := NewWallSinkClock(reg, clock.Now)
	sink.SetBudget(NewBudget(150 * time.Microsecond)) // slot+decode by default
	var sb strings.Builder
	overrunTrace := NewJSONL(&sb)
	sink.SetTracer(overrunTrace)

	// Each Now() tick is 100µs. decode: Start..End = 1 tick inside = 100µs
	// (under budget); slot: Start at tick1, End reads tick4 → 300µs (overrun).
	s := NewSpanSetWall(nil, 0, 0, sink)
	slot := s.Start("slot", 0, 10)
	dec := s.Start("decode", slot, 10)
	s.End(dec, 10)
	s.End(slot, 11)
	// transfer is not covered by the default budget.
	tr := s.Start("transfer", 0, 0)
	s.End(tr, 20)

	b := sink.Budget()
	st := b.Status()
	if st.Checked != 2 {
		t.Fatalf("checked = %d, want 2 (slot+decode)", st.Checked)
	}
	if st.Overruns != 1 {
		t.Fatalf("overruns = %d, want 1 (slot only): %+v", st.Overruns, st)
	}
	if want := 0.5; st.BurnRate != want {
		t.Fatalf("burn rate = %g, want %g", st.BurnRate, want)
	}
	if got := st.Spans; len(got) != 2 || got[0] != "decode" || got[1] != "slot" {
		t.Fatalf("spans = %v, want [decode slot]", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["budget.overruns.slot"]; got != 1 {
		t.Errorf("budget.overruns.slot = %d, want 1", got)
	}
	if got := snap.Counters["budget.checked.decode"]; got != 1 {
		t.Errorf("budget.checked.decode = %d, want 1", got)
	}
	if _, ok := snap.Counters["budget.checked.transfer"]; ok {
		t.Error("transfer must not be budget-checked by default")
	}
	if got := snap.Counters["budget.checked"]; got != 2 {
		t.Errorf("aggregate budget.checked = %d, want 2", got)
	}
	if got := snap.Counters["budget.overruns"]; got != 1 {
		t.Errorf("aggregate budget.overruns = %d, want 1", got)
	}

	if err := overrunTrace.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"event":"wall.budget_overrun"`) ||
		!strings.Contains(out, `"name":"slot"`) {
		t.Fatalf("overrun trace missing event: %q", out)
	}
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly one overrun event, got: %q", out)
	}
}

// TestBudgetNilAndZero pins the disabled defaults: non-positive limits yield
// nil budgets, and nil budgets/sinks no-op everywhere.
func TestBudgetNilAndZero(t *testing.T) {
	if NewBudget(0) != nil || NewBudget(-time.Second) != nil {
		t.Fatal("non-positive budget must be nil")
	}
	var b *Budget
	if b.Covers("slot") || b.LimitSeconds() != 0 {
		t.Fatal("nil budget must cover nothing")
	}
	if st := b.Status(); st.Checked != 0 || st.BurnRate != 0 || st.Spans != nil {
		t.Fatalf("nil budget status = %+v, want zero", st)
	}
	var ws *WallSink
	ws.SetBudget(NewBudget(time.Second))
	ws.SetTracer(nil)
	ws.Record("slot", 1, 0, 0, 0)
	if ws.Now() != 0 || ws.Budget() != nil {
		t.Fatal("nil sink must no-op")
	}
	if NewWallSink(nil) != nil {
		t.Fatal("nil registry must yield nil sink")
	}
	// Custom span coverage.
	cb := NewBudget(time.Millisecond, "epoch")
	if !cb.Covers("epoch") || cb.Covers("slot") {
		t.Fatal("custom budget coverage wrong")
	}
	if math.Abs(cb.LimitSeconds()-0.001) > 1e-15 {
		t.Fatalf("limit = %g, want 0.001", cb.LimitSeconds())
	}
}
