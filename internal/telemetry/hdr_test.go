package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHDRBucketBoundsExact pins the bucket layout arithmetic: bounds are
// exactly Min * 2^o * (1 + s/SubBuckets), contiguous, and strictly
// increasing, and a value placed exactly on a boundary lands in the bucket it
// lower-bounds.
func TestHDRBucketBoundsExact(t *testing.T) {
	spec := HDRSpec{Min: 1e-6, SubBuckets: 4, Octaves: 10}
	h := NewHDR(spec)
	if got, want := h.NumBuckets(), spec.Octaves*spec.SubBuckets; got != want {
		t.Fatalf("NumBuckets = %d, want %d", got, want)
	}
	for i := 0; i < h.NumBuckets(); i++ {
		o, s := i/spec.SubBuckets, i%spec.SubBuckets
		want := spec.Min * math.Ldexp(1, o) * (1 + float64(s)/float64(spec.SubBuckets))
		if got := h.LowerBound(i); got != want {
			t.Fatalf("LowerBound(%d) = %g, want %g", i, got, want)
		}
		if i > 0 && h.UpperBound(i-1) != h.LowerBound(i) {
			t.Fatalf("bucket %d not contiguous: upper(%d)=%g lower(%d)=%g",
				i, i-1, h.UpperBound(i-1), i, h.LowerBound(i))
		}
		if h.UpperBound(i) <= h.LowerBound(i) {
			t.Fatalf("bucket %d not increasing: [%g, %g)", i, h.LowerBound(i), h.UpperBound(i))
		}
	}
	if !math.IsInf(h.UpperBound(h.NumBuckets()), 1) {
		t.Fatalf("overflow bucket upper bound = %g, want +Inf", h.UpperBound(h.NumBuckets()))
	}
	// Exact boundary values land in the bucket they lower-bound, interior
	// values in their enclosing bucket, for every bucket in the layout.
	for i := 0; i < h.NumBuckets(); i++ {
		if got := h.bucketIndex(h.LowerBound(i)); got != i {
			t.Fatalf("bucketIndex(LowerBound(%d)) = %d", i, got)
		}
		mid := h.LowerBound(i) + (h.UpperBound(i)-h.LowerBound(i))/2
		if got := h.bucketIndex(mid); got != i {
			t.Fatalf("bucketIndex(mid of %d) = %d", i, got)
		}
	}
	// Clamps: sub-minimum into bucket 0, beyond-range into overflow.
	if got := h.bucketIndex(spec.Min / 10); got != 0 {
		t.Fatalf("sub-minimum bucket = %d, want 0", got)
	}
	if got := h.bucketIndex(spec.Min * math.Ldexp(1, spec.Octaves)); got != h.NumBuckets() {
		t.Fatalf("beyond-range bucket = %d, want overflow %d", got, h.NumBuckets())
	}
}

// TestHDRQuantileErrorBound checks the estimator against a sorted-sample
// oracle on log-uniform latencies: every reported quantile must be within the
// layout's relative error bound, 2^(1/SubBuckets) - 1, of the true
// order statistic (plus interpolation slack within one bucket).
func TestHDRQuantileErrorBound(t *testing.T) {
	spec := WallLatencySpec
	h := NewHDR(spec)
	r := rand.New(rand.NewSource(7))
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		// Log-uniform over [1µs, 1s]: six decades, like real decode tails.
		v := math.Pow(10, -6+6*r.Float64())
		samples[i] = v
		h.Observe(v)
	}
	sort.Float64s(samples)
	// One sub-bucket of relative width, doubled for the rank-vs-boundary
	// interpolation slack.
	relBound := 2 * (math.Pow(2, 1/float64(spec.SubBuckets)) - 1)
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		oracle := samples[idx]
		got := h.Quantile(q)
		if rel := math.Abs(got-oracle) / oracle; rel > relBound {
			t.Errorf("q=%v: got %g, oracle %g, rel err %.4f > bound %.4f",
				q, got, oracle, rel, relBound)
		}
	}
	if got := h.Quantile(0); got != samples[0] {
		t.Errorf("q=0 = %g, want observed min %g", got, samples[0])
	}
	if got := h.Quantile(1); got != samples[n-1] {
		t.Errorf("q=1 = %g, want observed max %g", got, samples[n-1])
	}
}

// TestHDREmptySemantics pins the empty-state convention: NaN Min/Max/Quantile
// (never a fake zero sample), zero Count/Sum, and a snapshot that reports
// zeros with only the overflow bucket.
func TestHDREmptySemantics(t *testing.T) {
	h := NewHDR(WallLatencySpec)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty count=%d sum=%g", h.Count(), h.Sum())
	}
	for name, v := range map[string]float64{
		"Min": h.Min(), "Max": h.Max(), "Quantile(0.5)": h.Quantile(0.5),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %g, want NaN", name, v)
		}
	}
	hs := h.snapshot()
	if hs.Count != 0 || hs.Min != 0 || hs.Max != 0 || hs.P999 != 0 {
		t.Errorf("empty snapshot %+v, want zeros", hs)
	}
	if len(hs.Buckets) != 1 || !math.IsInf(hs.Buckets[0].Le, 1) {
		t.Errorf("empty snapshot buckets %+v, want only +Inf", hs.Buckets)
	}
	// A nil HDR is the disabled default everywhere.
	var nilH *HDR
	nilH.Observe(1)
	if !math.IsNaN(nilH.Quantile(0.5)) || nilH.Count() != 0 {
		t.Error("nil HDR must no-op")
	}
	if err := nilH.Merge(h); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

// TestHDRMerge checks worker-merge semantics: merging shards equals observing
// the union, empty shards are identities (no NaN/Inf leakage), and
// mismatched specs are rejected.
func TestHDRMerge(t *testing.T) {
	spec := HDRSpec{Min: 1e-6, SubBuckets: 8, Octaves: 20}
	union := NewHDR(spec)
	shards := []*HDR{NewHDR(spec), NewHDR(spec), NewHDR(spec)}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 999; i++ {
		v := math.Pow(10, -6+4*r.Float64())
		union.Observe(v)
		shards[i%2].Observe(v) // shard 2 stays empty
	}
	merged := NewHDR(spec)
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != union.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), union.Count())
	}
	if merged.Min() != union.Min() || merged.Max() != union.Max() {
		t.Fatalf("merged min/max %g/%g, want %g/%g",
			merged.Min(), merged.Max(), union.Min(), union.Max())
	}
	if math.Abs(merged.Sum()-union.Sum()) > 1e-9*union.Sum() {
		t.Fatalf("merged sum %g, want %g", merged.Sum(), union.Sum())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != union.Quantile(q) {
			t.Fatalf("q=%v: merged %g, union %g", q, merged.Quantile(q), union.Quantile(q))
		}
	}
	if err := merged.Merge(NewHDR(HDRSpec{Min: 1e-3, SubBuckets: 8, Octaves: 20})); err == nil {
		t.Fatal("mismatched spec merge must error")
	}
}

// TestHDRConcurrentObserve exercises the atomic update path: total counts
// must be exact under concurrent observation (run under -race in CI).
func TestHDRConcurrentObserve(t *testing.T) {
	h := NewHDR(WallLatencySpec)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(math.Pow(10, -6+3*r.Float64()))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	var buckets int64
	for i := range h.buckets {
		buckets += h.buckets[i].Load()
	}
	if buckets != workers*per {
		t.Fatalf("bucket total %d, want %d", buckets, workers*per)
	}
}

// TestRegistryHDR checks registry integration: named creation, name
// collisions with fixed-bucket histograms, and snapshot folding with p999.
func TestRegistryHDR(t *testing.T) {
	reg := NewRegistry()
	h := reg.HDR("wall.test_seconds", WallLatencySpec)
	if h == nil {
		t.Fatal("nil HDR from live registry")
	}
	if reg.HDR("wall.test_seconds", HDRSpec{Min: 1, SubBuckets: 1, Octaves: 1}) != h {
		t.Fatal("second HDR lookup must return the existing instrument")
	}
	h.Observe(0.010)
	h.Observe(0.020)
	snap := reg.Snapshot()
	hs, ok := snap.Histograms["wall.test_seconds"]
	if !ok {
		t.Fatalf("HDR missing from snapshot histograms: %v", snap.Histograms)
	}
	if hs.Count != 2 || hs.Min != 0.010 || hs.Max != 0.020 {
		t.Fatalf("snapshot %+v", hs)
	}
	if hs.P999 < hs.P50 || hs.P999 > hs.Max {
		t.Fatalf("p999 %g outside [p50 %g, max %g]", hs.P999, hs.P50, hs.Max)
	}
	// Only populated finite buckets plus overflow are exposed.
	if len(hs.Buckets) > 3 {
		t.Fatalf("expected elided buckets, got %d", len(hs.Buckets))
	}
	var nilReg *Registry
	if nilReg.HDR("x", WallLatencySpec) != nil {
		t.Fatal("nil registry must yield nil HDR")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("name collision with fixed-bucket histogram must panic")
		}
	}()
	reg.Histogram("wall.test_seconds", LinearBuckets(1, 1, 2))
}
