package telemetry

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic monotonic clock advancing 1ms per read.
func flightClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		t := base.Add(time.Duration(n) * time.Millisecond)
		n++
		return t
	}
}

func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	f := fr.Start("t-1")
	if f != nil {
		t.Fatal("nil recorder must start nil flights")
	}
	if ev := f.Record(FlightAdmitted, 0, 0, 0, 0, ""); ev != (FlightEvent{}) {
		t.Fatalf("nil flight Record = %+v, want zero", ev)
	}
	if f.Events() != nil || f.Len() != 0 || f.Dropped() != 0 || f.ID() != "" {
		t.Fatal("nil flight accessors must return empty")
	}
	fr.Retire(f)
	if fr.Recent() != nil || fr.Retired() != 0 {
		t.Fatal("nil recorder accessors must return empty")
	}
}

func TestFlightRecordsOrderedStampedEvents(t *testing.T) {
	fr := NewFlightRecorder(0, 0, flightClock())
	f := fr.Start("t-1")
	f.Record(FlightAdmitted, 0, 0, 0, 0, "")
	f.Record(FlightQueueEnter, 0, 3, 0, 0, "")
	f.Record(FlightQueueExit, 2, 1, 0, 0, "")
	f.Record(FlightTerminal, 2, 0, 0, 0, "completed")
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if i > 0 {
			if ev.WallNs <= evs[i-1].WallNs {
				t.Fatalf("wall stamps not strictly increasing under the fake clock: %d then %d",
					evs[i-1].WallNs, ev.WallNs)
			}
			if ev.Tick < evs[i-1].Tick {
				t.Fatalf("ticks went backwards: %d then %d", evs[i-1].Tick, ev.Tick)
			}
		}
	}
	if evs[0].Kind != FlightAdmitted || evs[3].Kind != FlightTerminal {
		t.Fatalf("kind order wrong: %v ... %v", evs[0].Kind, evs[3].Kind)
	}
	if evs[3].Note != "completed" {
		t.Fatalf("terminal note = %q", evs[3].Note)
	}
	if f.StartWallNs() != evs[0].WallNs {
		t.Fatalf("StartWallNs = %d, want %d", f.StartWallNs(), evs[0].WallNs)
	}
}

// TestFlightRingBounded pins the bounded-ring contract: the ring keeps the
// most recent cap events, Seq stays gap-free across eviction, and the first
// event's stamps survive for latency derivation.
func TestFlightRingBounded(t *testing.T) {
	fr := NewFlightRecorder(4, 0, flightClock())
	f := fr.Start("t-1")
	first := f.Record(FlightAdmitted, 0, 0, 0, 0, "")
	for i := 1; i < 10; i++ {
		f.Record(FlightExecuted, int64(i), 0, 0, 0, "")
	}
	if f.Len() != 10 || f.Dropped() != 6 {
		t.Fatalf("len/dropped = %d/%d, want 10/6", f.Len(), f.Dropped())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) {
			t.Fatalf("retained event %d has seq %d, want %d", i, ev.Seq, 6+i)
		}
	}
	if f.StartWallNs() != first.WallNs || f.StartTick() != 0 {
		t.Fatal("first-event stamps must survive eviction")
	}
}

func TestFlightRecorderRetainsLastN(t *testing.T) {
	fr := NewFlightRecorder(8, 3, flightClock())
	for i := 0; i < 5; i++ {
		f := fr.Start(string(rune('a' + i)))
		f.Record(FlightAdmitted, int64(i), 0, 0, 0, "")
		f.Record(FlightTerminal, int64(i), 0, 0, 0, "completed")
		fr.Retire(f)
	}
	recent := fr.Recent()
	if len(recent) != 3 {
		t.Fatalf("retained %d flights, want 3", len(recent))
	}
	for i, want := range []string{"c", "d", "e"} {
		if recent[i].ID != want {
			t.Fatalf("recent[%d] = %q, want %q (oldest first)", i, recent[i].ID, want)
		}
		if len(recent[i].Events) != 2 {
			t.Fatalf("recent[%d] has %d events", i, len(recent[i].Events))
		}
	}
	if fr.Retired() != 5 {
		t.Fatalf("retired = %d, want 5", fr.Retired())
	}
}

// TestFlightConcurrentRecording drives one flight from many goroutines and
// checks the ring stays internally consistent (gap-free seq over the retained
// window, nondecreasing wall stamps at read time). Run under -race in CI.
func TestFlightConcurrentRecording(t *testing.T) {
	fr := NewFlightRecorder(128, 4, nil)
	f := fr.Start("t-1")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Record(FlightExecuted, int64(g), int64(i), 0, 0, "")
			}
		}(g)
	}
	wg.Wait()
	if f.Len() != 800 {
		t.Fatalf("recorded %d events, want 800", f.Len())
	}
	evs := f.Events()
	if len(evs) != 128 {
		t.Fatalf("retained %d, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
		if evs[i].WallNs < evs[i-1].WallNs {
			t.Fatalf("wall stamp regressed: %d then %d", evs[i-1].WallNs, evs[i].WallNs)
		}
	}
}

func TestFlightKindStrings(t *testing.T) {
	kinds := []FlightKind{
		FlightAdmitted, FlightQueueEnter, FlightQueueExit, FlightEpochAssigned,
		FlightPlanned, FlightFaultCoincident, FlightExecuted, FlightDecodeVerdict,
		FlightRetryScheduled, FlightTerminal,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("kind %d renders %q", k, s)
		}
		seen[s] = true
	}
	if FlightKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind must render unknown")
	}
}
