package surfacecode

import (
	"math"
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
)

func TestUniformNoiseHalvesCore(t *testing.T) {
	c := MustNew(5, CoreLShape)
	nm := UniformNoise(c, 0.08, 0.15)
	if err := nm.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for q := 0; q < c.NumData(); q++ {
		wantP, wantE := 0.08, 0.15
		if c.IsCore(q) {
			wantP, wantE = 0.04, 0.075
		}
		if nm.Pauli[q] != wantP || nm.Erase[q] != wantE {
			t.Fatalf("qubit %d (core=%v): rates (%v,%v), want (%v,%v)",
				q, c.IsCore(q), nm.Pauli[q], nm.Erase[q], wantP, wantE)
		}
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	c := MustNew(3, CoreLShape)
	nm := NewNoiseModel(c)
	nm.Pauli[0] = 1.5
	if nm.Validate() == nil {
		t.Error("Pauli rate > 1 should fail validation")
	}
	nm.Pauli[0] = 0
	nm.Erase[2] = -0.1
	if nm.Validate() == nil {
		t.Error("negative erase rate should fail validation")
	}
	nm.Erase = nm.Erase[:1]
	if nm.Validate() == nil {
		t.Error("length mismatch should fail validation")
	}
}

func TestSampleStatistics(t *testing.T) {
	c := MustNew(5, CoreLShape)
	nm := UniformNoise(c, 0.10, 0.20)
	src := rng.New(4242)
	const trials = 4000
	var pauliHits, eraseHits, erasedErrors, erasedCount int
	var supportQubits int
	for q := 0; q < c.NumData(); q++ {
		if !c.IsCore(q) {
			supportQubits++
		}
	}
	for i := 0; i < trials; i++ {
		f, erased := nm.Sample(src.SplitN("t", i))
		for q := 0; q < c.NumData(); q++ {
			if c.IsCore(q) {
				continue
			}
			if erased[q] {
				eraseHits++
				erasedCount++
				if !f[q].IsIdentity() {
					erasedErrors++
				}
			} else if !f[q].IsIdentity() {
				pauliHits++
			}
		}
	}
	total := float64(trials * supportQubits)
	eraseRate := float64(eraseHits) / total
	if math.Abs(eraseRate-0.20) > 0.01 {
		t.Errorf("observed erase rate %v, want ~0.20", eraseRate)
	}
	// Non-erased qubits err (X, Z or both) with probability 2p - p^2
	// under the independent-X/Z convention.
	pauliRate := float64(pauliHits) / (total * 0.8)
	if want := 2*0.10 - 0.10*0.10; math.Abs(pauliRate-want) > 0.01 {
		t.Errorf("observed Pauli rate %v, want ~%v", pauliRate, want)
	}
	// Erased qubits hold a maximally mixed state: non-identity 3/4 of the
	// time.
	mixRate := float64(erasedErrors) / float64(erasedCount)
	if math.Abs(mixRate-0.75) > 0.02 {
		t.Errorf("erased qubits non-identity rate %v, want ~0.75", mixRate)
	}
}

func TestEdgeErrorProb(t *testing.T) {
	c := MustNew(3, CoreLShape)
	nm := UniformNoise(c, 0.09, 0)
	probs := nm.EdgeErrorProb()
	for q, p := range probs {
		want := 0.09
		if c.IsCore(q) {
			want = 0.045
		}
		if math.Abs(p-want) > 1e-12 {
			t.Fatalf("qubit %d: edge error prob %v, want %v", q, p, want)
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	c := MustNew(4, CoreLShape)
	nm := UniformNoise(c, 0.1, 0.1)
	f1, e1 := nm.Sample(rng.New(5))
	f2, e2 := nm.Sample(rng.New(5))
	for q := range f1 {
		if f1[q] != f2[q] || e1[q] != e2[q] {
			t.Fatal("sampling is not deterministic under equal seeds")
		}
	}
}

func TestSampleIntoReusesBuffers(t *testing.T) {
	c := MustNew(5, CoreLShape)
	nm := UniformNoise(c, 0.2, 0.2)
	want, wantErased := nm.Sample(rng.New(9))

	// Dirty oversized buffers must be cleared, reused, and produce the same
	// realization as the allocating path under the same stream.
	frame := quantum.NewFrame(c.NumData() + 8)
	erased := make([]bool, c.NumData()+8)
	for i := range frame {
		frame[i] = quantum.Y
		erased[i] = true
	}
	got, gotErased := nm.SampleInto(rng.New(9), frame, erased)
	if &got[0] != &frame[0] || &gotErased[0] != &erased[0] {
		t.Fatal("SampleInto did not reuse the provided buffers")
	}
	if len(got) != c.NumData() || len(gotErased) != c.NumData() {
		t.Fatalf("lengths %d/%d, want %d", len(got), len(gotErased), c.NumData())
	}
	for q := range want {
		if got[q] != want[q] || gotErased[q] != wantErased[q] {
			t.Fatalf("qubit %d: SampleInto diverged from Sample", q)
		}
	}
	// Undersized buffers allocate fresh.
	got2, gotErased2 := nm.SampleInto(rng.New(9), quantum.NewFrame(1), make([]bool, 1))
	for q := range want {
		if got2[q] != want[q] || gotErased2[q] != wantErased[q] {
			t.Fatalf("qubit %d: allocating SampleInto diverged", q)
		}
	}
}
