package surfacecode

import (
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, CoreLShape); err == nil {
		t.Error("distance 1 should be rejected")
	}
	if _, err := New(3, CoreLayout(0)); err == nil {
		t.Error("invalid core layout should be rejected")
	}
	if _, err := New(3, CoreLShape); err != nil {
		t.Errorf("distance 3 should construct: %v", err)
	}
}

func TestCounts(t *testing.T) {
	for _, d := range []int{2, 3, 4, 5, 7, 9, 11} {
		c := MustNew(d, CoreLShape)
		wantData := d*d + (d-1)*(d-1)
		if c.NumData() != wantData {
			t.Errorf("d=%d: NumData = %d, want %d", d, c.NumData(), wantData)
		}
		if got := c.Graph(ZGraph).NumReal; got != d*(d-1) {
			t.Errorf("d=%d: Z ancillas = %d, want %d", d, got, d*(d-1))
		}
		if got := c.Graph(XGraph).NumReal; got != (d-1)*d {
			t.Errorf("d=%d: X ancillas = %d, want %d", d, got, (d-1)*d)
		}
		// Each data qubit is exactly one edge in each graph.
		if c.Graph(ZGraph).G.NumEdges() != wantData || c.Graph(XGraph).G.NumEdges() != wantData {
			t.Errorf("d=%d: graphs must have one edge per data qubit", d)
		}
		// Paper's axis count: Core has (d-1)+(d-2) qubits.
		if c.CoreSize() != (d-1)+(d-2) {
			t.Errorf("d=%d: core size = %d, want %d", d, c.CoreSize(), (d-1)+(d-2))
		}
		if c.CoreSize()+c.SupportSize() != wantData {
			t.Errorf("d=%d: core+support != data", d)
		}
	}
}

func TestPaperExampleD5(t *testing.T) {
	// §V-A example: "a surface code of 25 data qubits, with 7 data qubits
	// in the Core part" — our d=4 planar code has 25 data qubits; its
	// Core under the paper's axis formula is (4-1)+(4-2) = 5. The 7-core
	// example corresponds to d=5 axes; verify the formula at d=5 instead.
	c := MustNew(5, CoreLShape)
	if c.CoreSize() != 7 {
		t.Errorf("d=5 core = %d, want 7 per the paper's axis count", c.CoreSize())
	}
}

func TestCoreLayouts(t *testing.T) {
	for _, layout := range []CoreLayout{CoreLShape, CoreDiagonal} {
		for _, d := range []int{2, 3, 4, 5, 8, 9} {
			c, err := New(d, layout)
			if err != nil {
				t.Fatalf("d=%d layout=%v: %v", d, layout, err)
			}
			if c.CoreSize() != 2*d-3 {
				t.Errorf("d=%d layout=%v: core size %d, want %d", d, layout, c.CoreSize(), 2*d-3)
			}
			n := 0
			for q := 0; q < c.NumData(); q++ {
				if c.IsCore(q) {
					n++
				}
			}
			if n != c.CoreSize() {
				t.Errorf("d=%d layout=%v: mask count %d != CoreSize %d", d, layout, n, c.CoreSize())
			}
		}
	}
}

func TestDataIndexRoundTrip(t *testing.T) {
	c := MustNew(4, CoreLShape)
	for q := 0; q < c.NumData(); q++ {
		if c.DataIndex(c.DataCoord(q)) != q {
			t.Fatalf("DataIndex(DataCoord(%d)) != %d", q, q)
		}
	}
	if c.DataIndex(Coord{0, 1}) != -1 {
		t.Error("an ancilla site must not resolve to a data qubit")
	}
}

func TestSingleErrorSyndromes(t *testing.T) {
	c := MustNew(3, CoreLShape)
	for q := 0; q < c.NumData(); q++ {
		co := c.DataCoord(q)
		for _, p := range []quantum.Pauli{quantum.X, quantum.Y, quantum.Z} {
			f := quantum.NewFrame(c.NumData())
			f[q] = p
			zs := c.Syndrome(ZGraph, f)
			xs := c.Syndrome(XGraph, f)
			wantZ := p.HasX()
			wantX := p.HasZ()
			if (len(zs) > 0) != wantZ {
				t.Errorf("qubit %d %v at %v: Z-syndrome present=%v, want %v", q, p, co, len(zs) > 0, wantZ)
			}
			if (len(xs) > 0) != wantX {
				t.Errorf("qubit %d %v at %v: X-syndrome present=%v, want %v", q, p, co, len(xs) > 0, wantX)
			}
			// A single error flips one or two real ancillas per
			// affected graph (one when on that graph's boundary).
			if wantZ && len(zs) != 1 && len(zs) != 2 {
				t.Errorf("qubit %d %v: Z-syndrome size %d", q, p, len(zs))
			}
			if wantX && len(xs) != 1 && len(xs) != 2 {
				t.Errorf("qubit %d %v: X-syndrome size %d", q, p, len(xs))
			}
		}
	}
}

func TestBoundaryQubitSyndromeSizes(t *testing.T) {
	c := MustNew(3, CoreLShape)
	// Left-edge horizontal qubit (2,0): X error flips one Z-ancilla.
	f := quantum.NewFrame(c.NumData())
	f[c.DataIndex(Coord{2, 0})] = quantum.X
	if got := len(c.Syndrome(ZGraph, f)); got != 1 {
		t.Errorf("boundary X error: |syndrome| = %d, want 1", got)
	}
	// Bulk vertical qubit (1,1): X error flips two Z-ancillas.
	f = quantum.NewFrame(c.NumData())
	f[c.DataIndex(Coord{1, 1})] = quantum.X
	if got := len(c.Syndrome(ZGraph, f)); got != 2 {
		t.Errorf("bulk X error: |syndrome| = %d, want 2", got)
	}
}

// xStabilizer returns the frame applying X on all data qubits adjacent to the
// measure-X qubit at (i, j).
func xStabilizer(c *Code, i, j int) quantum.Frame {
	f := quantum.NewFrame(c.NumData())
	for _, nb := range []Coord{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
		if q := c.DataIndex(nb); q >= 0 {
			f.Apply(q, quantum.X)
		}
	}
	return f
}

// zStabilizer returns the frame applying Z on all data qubits adjacent to the
// measure-Z qubit at (i, j).
func zStabilizer(c *Code, i, j int) quantum.Frame {
	f := quantum.NewFrame(c.NumData())
	for _, nb := range []Coord{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
		if q := c.DataIndex(nb); q >= 0 {
			f.Apply(q, quantum.Z)
		}
	}
	return f
}

func TestStabilizersAreInvisible(t *testing.T) {
	c := MustNew(4, CoreLShape)
	n := 2*c.Distance() - 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i%2 == 1 && j%2 == 0: // measure-X site
				f := xStabilizer(c, i, j)
				if len(c.Syndrome(ZGraph, f)) != 0 {
					t.Errorf("X-stabilizer at (%d,%d) triggered a syndrome", i, j)
				}
				if c.HasLogicalError(ZGraph, f) {
					t.Errorf("X-stabilizer at (%d,%d) read as a logical error", i, j)
				}
			case i%2 == 0 && j%2 == 1: // measure-Z site
				f := zStabilizer(c, i, j)
				if len(c.Syndrome(XGraph, f)) != 0 {
					t.Errorf("Z-stabilizer at (%d,%d) triggered a syndrome", i, j)
				}
				if c.HasLogicalError(XGraph, f) {
					t.Errorf("Z-stabilizer at (%d,%d) read as a logical error", i, j)
				}
			}
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	c := MustNew(5, CoreLShape)
	// Logical X: X along any even row crossing left-right.
	for i := 0; i < 2*c.Distance()-1; i += 2 {
		f := quantum.NewFrame(c.NumData())
		for j := 0; j < 2*c.Distance()-1; j += 2 {
			f[c.DataIndex(Coord{i, j})] = quantum.X
		}
		if len(c.Syndrome(ZGraph, f)) != 0 {
			t.Errorf("logical X on row %d has a syndrome", i)
		}
		if !c.HasLogicalError(ZGraph, f) {
			t.Errorf("logical X on row %d not detected", i)
		}
		if c.HasLogicalError(XGraph, f) {
			t.Errorf("logical X on row %d misread as logical Z", i)
		}
	}
	// Logical Z: Z along any even column crossing top-bottom.
	for j := 0; j < 2*c.Distance()-1; j += 2 {
		f := quantum.NewFrame(c.NumData())
		for i := 0; i < 2*c.Distance()-1; i += 2 {
			f[c.DataIndex(Coord{i, j})] = quantum.Z
		}
		if len(c.Syndrome(XGraph, f)) != 0 {
			t.Errorf("logical Z on column %d has a syndrome", j)
		}
		if !c.HasLogicalError(XGraph, f) {
			t.Errorf("logical Z on column %d not detected", j)
		}
	}
}

func TestLogicalParityStabilizerInvariance(t *testing.T) {
	// Multiplying any syndrome-free frame by a stabilizer must not change
	// its logical class.
	c := MustNew(4, CoreLShape)
	src := rng.New(17)
	n := 2*c.Distance() - 1
	// Start from a random product of stabilizers (syndrome-free by
	// construction), then check invariance under further stabilizers.
	f := quantum.NewFrame(c.NumData())
	for trial := 0; trial < 50; trial++ {
		i := src.IntN(n)
		j := src.IntN(n)
		switch {
		case i%2 == 1 && j%2 == 0:
			f.Compose(xStabilizer(c, i, j))
		case i%2 == 0 && j%2 == 1:
			f.Compose(zStabilizer(c, i, j))
		default:
			continue
		}
		if len(c.Syndrome(ZGraph, f)) != 0 || len(c.Syndrome(XGraph, f)) != 0 {
			t.Fatal("stabilizer product acquired a syndrome")
		}
		if c.HasLogicalError(ZGraph, f) || c.HasLogicalError(XGraph, f) {
			t.Fatal("stabilizer product read as a logical operator")
		}
	}
}

func TestSyndromeFrameLengthPanics(t *testing.T) {
	c := MustNew(3, CoreLShape)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong frame length should panic")
		}
	}()
	c.Syndrome(ZGraph, quantum.NewFrame(3))
}

func TestGraphKindString(t *testing.T) {
	if ZGraph.String() != "Z-graph" || XGraph.String() != "X-graph" {
		t.Error("GraphKind strings wrong")
	}
	if CoreLShape.String() != "l-shape" || CoreDiagonal.String() != "diagonal" {
		t.Error("CoreLayout strings wrong")
	}
}

func TestBoundaryVertices(t *testing.T) {
	c := MustNew(3, CoreLShape)
	for _, kind := range []GraphKind{ZGraph, XGraph} {
		dg := c.Graph(kind)
		if !dg.IsBoundary(dg.BoundaryA()) || !dg.IsBoundary(dg.BoundaryB()) {
			t.Errorf("%v: boundary vertices not flagged", kind)
		}
		if dg.IsBoundary(0) {
			t.Errorf("%v: real vertex flagged as boundary", kind)
		}
		if len(dg.CutQubits) != c.Distance() {
			t.Errorf("%v: cut size %d, want %d", kind, len(dg.CutQubits), c.Distance())
		}
	}
}
