package surfacecode

import (
	"strings"

	"surfnet/internal/quantum"
)

// Render draws the lattice as ASCII art in the style of the paper's Figs. 2
// and 3: data qubits on the (i+j)-even sites, measurement qubits between
// them. frame and erased may be nil for a bare lattice.
//
//	.  error-free data qubit        X/Y/Z  data qubit carrying that error
//	E  erased data qubit (its Pauli is hidden from the decoder anyway)
//	o  quiet measure-Z qubit        #  measure-Z syndrome
//	x  quiet measure-X qubit        @  measure-X syndrome
func (c *Code) Render(frame quantum.Frame, erased []bool) string {
	zSyn := map[int]bool{}
	xSyn := map[int]bool{}
	if frame != nil {
		for _, v := range c.Syndrome(ZGraph, frame) {
			zSyn[v] = true
		}
		for _, v := range c.Syndrome(XGraph, frame) {
			xSyn[v] = true
		}
	}
	n := 2*c.d - 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			switch {
			case (i+j)%2 == 0: // data qubit
				q := c.dataIndex[Coord{i, j}]
				switch {
				case erased != nil && erased[q]:
					b.WriteByte('E')
				case frame != nil && !frame[q].IsIdentity():
					b.WriteString(frame[q].String())
				default:
					b.WriteByte('.')
				}
			case i%2 == 0: // measure-Z site
				if zSyn[c.zAncilla(i, j)] {
					b.WriteByte('#')
				} else {
					b.WriteByte('o')
				}
			default: // measure-X site
				if xSyn[c.xAncilla(i, j)] {
					b.WriteByte('@')
				} else {
					b.WriteByte('x')
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderCore draws the lattice marking Core data qubits with 'C' and Support
// qubits with '.', with measurement sites as in Render.
func (c *Code) RenderCore() string {
	n := 2*c.d - 1
	var b strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			switch {
			case (i+j)%2 == 0:
				if c.core[c.dataIndex[Coord{i, j}]] {
					b.WriteByte('C')
				} else {
					b.WriteByte('.')
				}
			case i%2 == 0:
				b.WriteByte('o')
			default:
				b.WriteByte('x')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
