// Package surfacecode implements the planar surface code used as the logical
// qubit of SurfNet: the lattice layout, the X/Z decoding graphs, syndrome
// extraction, logical-failure checks, and the Core/Support partition of §IV.
//
// The layout follows the paper's Fig. 2: data qubits sit on the edges of a
// square lattice and measurement qubits on its vertices, which is the
// unrotated planar code. Concretely, sites live on a (2d-1) x (2d-1) grid:
//
//   - data qubits at sites with (row+col) even — d^2 + (d-1)^2 of them,
//   - measure-Z qubits at (even row, odd col) — d*(d-1) of them,
//   - measure-X qubits at (odd row, even col) — (d-1)*d of them.
//
// Because measurements are error-free and channel errors are Pauli + erasure
// (§I), the code is simulated in the Pauli frame: syndromes and logical
// failures are parity functions of the sampled error, the standard
// methodology for decoder-threshold studies.
package surfacecode

import (
	"fmt"

	"surfnet/internal/graph"
	"surfnet/internal/quantum"
)

// Coord is a site on the (2d-1) x (2d-1) lattice grid.
type Coord struct {
	Row, Col int
}

// GraphKind selects one of the two decoding graphs of a surface code.
type GraphKind int

const (
	// ZGraph is the graph of measure-Z qubits; it detects X-type error
	// components (X or Y) on data qubits.
	ZGraph GraphKind = 1 + iota
	// XGraph is the graph of measure-X qubits; it detects Z-type error
	// components (Z or Y).
	XGraph
)

// String implements fmt.Stringer.
func (k GraphKind) String() string {
	switch k {
	case ZGraph:
		return "Z-graph"
	case XGraph:
		return "X-graph"
	default:
		return fmt.Sprintf("GraphKind(%d)", int(k))
	}
}

// DecodingGraph is one of the two syndrome graphs of a code: each vertex is a
// measurement qubit and each edge is a data qubit (§IV-C). Real measurement
// vertices are [0, NumReal); two virtual boundary vertices follow. Edge IDs
// in G are data-qubit indices.
type DecodingGraph struct {
	Kind    GraphKind
	G       *graph.Weighted
	NumReal int
	// CutQubits are the data-qubit indices of a fixed homology cut: a
	// syndrome-free residual error is a logical operator exactly when it
	// overlaps the cut an odd number of times.
	CutQubits []int
}

// BoundaryA and BoundaryB return the two virtual boundary vertices
// (left/right for the Z-graph, top/bottom for the X-graph).
func (dg *DecodingGraph) BoundaryA() int { return dg.NumReal }

// BoundaryB returns the second virtual boundary vertex.
func (dg *DecodingGraph) BoundaryB() int { return dg.NumReal + 1 }

// IsBoundary reports whether vertex v is virtual.
func (dg *DecodingGraph) IsBoundary(v int) bool { return v >= dg.NumReal }

// Code is a distance-d planar surface code.
type Code struct {
	d         int
	layout    CoreLayout
	data      []Coord
	dataIndex map[Coord]int
	zg, xg    *DecodingGraph
	core      []bool
	coreSize  int
}

// CoreLayout selects the fixed Core-part topology (§IV commits to a fixed
// topology; the paper's axis count (d-1)+(d-2) is preserved by both layouts).
type CoreLayout int

const (
	// CoreLShape places the Core along the left and top boundary cuts:
	// one qubit on each of the d-1 internal logical-X axes (rows) and each
	// of the d-2 internal logical-Z axes (columns). Every straight logical
	// chain must then pass a Core qubit or a lattice corner. This is the
	// default fixed topology.
	CoreLShape CoreLayout = 1 + iota
	// CoreDiagonal scatters the same number of Core qubits along two
	// diagonals, one qubit per axis, as an ablation of the Core geometry.
	CoreDiagonal
)

// String implements fmt.Stringer.
func (l CoreLayout) String() string {
	switch l {
	case CoreLShape:
		return "l-shape"
	case CoreDiagonal:
		return "diagonal"
	default:
		return fmt.Sprintf("CoreLayout(%d)", int(l))
	}
}

// New constructs a distance-d planar surface code with the given Core layout.
// It returns an error when d < 2 (a distance-1 "code" has no protection and
// no measurement qubits).
func New(d int, layout CoreLayout) (*Code, error) {
	if d < 2 {
		return nil, fmt.Errorf("surfacecode: distance must be >= 2, got %d", d)
	}
	switch layout {
	case CoreLShape, CoreDiagonal:
	default:
		return nil, fmt.Errorf("surfacecode: unknown core layout %v", layout)
	}
	c := &Code{
		d:         d,
		layout:    layout,
		dataIndex: make(map[Coord]int),
	}
	n := 2*d - 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i+j)%2 == 0 {
				c.dataIndex[Coord{i, j}] = len(c.data)
				c.data = append(c.data, Coord{i, j})
			}
		}
	}
	c.buildZGraph()
	c.buildXGraph()
	if err := c.buildCore(layout); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed-parameter tools.
func MustNew(d int, layout CoreLayout) *Code {
	c, err := New(d, layout)
	if err != nil {
		panic(err)
	}
	return c
}

// Distance reports the code distance d.
func (c *Code) Distance() int { return c.d }

// Layout reports the Core layout the code was built with.
func (c *Code) Layout() CoreLayout { return c.layout }

// NumData reports the number of data qubits: d^2 + (d-1)^2.
func (c *Code) NumData() int { return len(c.data) }

// DataCoord returns the lattice site of data qubit q.
func (c *Code) DataCoord(q int) Coord { return c.data[q] }

// DataIndex returns the index of the data qubit at site co, or -1 when the
// site holds no data qubit.
func (c *Code) DataIndex(co Coord) int {
	q, ok := c.dataIndex[co]
	if !ok {
		return -1
	}
	return q
}

// Graph returns the decoding graph of the requested kind.
func (c *Code) Graph(kind GraphKind) *DecodingGraph {
	if kind == ZGraph {
		return c.zg
	}
	return c.xg
}

// CoreMask returns, per data qubit, whether it belongs to the Core part. The
// returned slice is a copy.
func (c *Code) CoreMask() []bool {
	out := make([]bool, len(c.core))
	copy(out, c.core)
	return out
}

// IsCore reports whether data qubit q belongs to the Core part.
func (c *Code) IsCore(q int) bool { return c.core[q] }

// CoreSize reports the number of Core data qubits: (d-1)+(d-2).
func (c *Code) CoreSize() int { return c.coreSize }

// SupportSize reports the number of Support data qubits.
func (c *Code) SupportSize() int { return c.NumData() - c.coreSize }

// zAncilla maps a measure-Z site (even row, odd col) to its vertex index.
func (c *Code) zAncilla(i, j int) int { return (i/2)*(c.d-1) + (j-1)/2 }

// xAncilla maps a measure-X site (odd row, even col) to its vertex index.
func (c *Code) xAncilla(i, j int) int { return ((i-1)/2)*c.d + j/2 }

// buildZGraph wires the measure-Z decoding graph. Horizontal data qubits
// (both coordinates even) connect Z-ancillas left and right of them, spilling
// onto the left/right virtual boundaries at the lattice edge; vertical data
// qubits (both odd) connect Z-ancillas above and below and are always
// internal.
func (c *Code) buildZGraph() {
	numReal := c.d * (c.d - 1)
	g := graph.NewWeighted(numReal + 2)
	left, right := numReal, numReal+1
	maxC := 2*c.d - 2
	var cut []int
	for q, co := range c.data {
		i, j := co.Row, co.Col
		var u, v int
		if i%2 == 0 { // horizontal data qubit
			if j == 0 {
				u = left
				cut = append(cut, q)
			} else {
				u = c.zAncilla(i, j-1)
			}
			if j == maxC {
				v = right
			} else {
				v = c.zAncilla(i, j+1)
			}
		} else { // vertical data qubit
			u = c.zAncilla(i-1, j)
			v = c.zAncilla(i+1, j)
		}
		g.AddEdge(graph.Edge{ID: q, U: u, V: v, Weight: 1})
	}
	c.zg = &DecodingGraph{Kind: ZGraph, G: g, NumReal: numReal, CutQubits: cut}
}

// buildXGraph wires the measure-X decoding graph. Horizontal data qubits
// (both even) connect X-ancillas above and below, spilling onto the
// top/bottom virtual boundaries; vertical data qubits (both odd) connect
// X-ancillas left and right and are always internal.
func (c *Code) buildXGraph() {
	numReal := (c.d - 1) * c.d
	g := graph.NewWeighted(numReal + 2)
	top, bottom := numReal, numReal+1
	maxR := 2*c.d - 2
	var cut []int
	for q, co := range c.data {
		i, j := co.Row, co.Col
		var u, v int
		if i%2 == 0 { // data qubit between vertically adjacent X-ancillas
			if i == 0 {
				u = top
				cut = append(cut, q)
			} else {
				u = c.xAncilla(i-1, j)
			}
			if i == maxR {
				v = bottom
			} else {
				v = c.xAncilla(i+1, j)
			}
		} else {
			u = c.xAncilla(i, j-1)
			v = c.xAncilla(i, j+1)
		}
		g.AddEdge(graph.Edge{ID: q, U: u, V: v, Weight: 1})
	}
	c.xg = &DecodingGraph{Kind: XGraph, G: g, NumReal: numReal, CutQubits: cut}
}

// buildCore selects the Core data qubits: one per internal logical axis,
// (d-1) row axes plus (d-2) column axes (§IV: "distance-k ... has
// (k-1)+(k-2) such axes").
func (c *Code) buildCore(layout CoreLayout) error {
	c.core = make([]bool, len(c.data))
	mark := func(co Coord) error {
		q := c.DataIndex(co)
		if q < 0 {
			return fmt.Errorf("surfacecode: core site %v holds no data qubit", co)
		}
		if c.core[q] {
			return fmt.Errorf("surfacecode: core site %v selected twice", co)
		}
		c.core[q] = true
		c.coreSize++
		return nil
	}
	d := c.d
	switch layout {
	case CoreLShape:
		// Row axes t = 1..d-1 guarded at the left cut; column axes
		// s = 1..d-2 guarded at the top cut.
		for t := 1; t <= d-1; t++ {
			if err := mark(Coord{2 * t, 0}); err != nil {
				return err
			}
		}
		for s := 1; s <= d-2; s++ {
			if err := mark(Coord{0, 2 * s}); err != nil {
				return err
			}
		}
	case CoreDiagonal:
		// One qubit per axis along two diagonals. Row axis t sits at
		// (2t, 2(t-1)); column axis s at (2(d-1-s), 2s), nudged when it
		// would collide with a row pick.
		for t := 1; t <= d-1; t++ {
			if err := mark(Coord{2 * t, 2 * (t - 1)}); err != nil {
				return err
			}
		}
		for s := 1; s <= d-2; s++ {
			co := Coord{2 * (d - 1 - s), 2 * s}
			if q := c.DataIndex(co); q >= 0 && c.core[q] {
				// Collision with the row diagonal (happens for
				// even d at the crossing axis): shift one cell.
				co.Row -= 2
				if co.Row < 0 {
					co.Row += 4
				}
			}
			if err := mark(co); err != nil {
				return err
			}
		}
	}
	return nil
}

// Syndrome extracts the syndrome of error frame f on the requested decoding
// graph: the list of real measurement vertices whose parity flipped. The
// frame must cover all data qubits.
func (c *Code) Syndrome(kind GraphKind, f quantum.Frame) []int {
	if len(f) != len(c.data) {
		panic(fmt.Sprintf("surfacecode: frame covers %d qubits, code has %d", len(f), len(c.data)))
	}
	dg := c.Graph(kind)
	parity := make([]bool, dg.NumReal)
	for q, p := range f {
		triggers := (kind == ZGraph && p.HasX()) || (kind == XGraph && p.HasZ())
		if !triggers {
			continue
		}
		e := dg.G.Edge(q)
		if e.U < dg.NumReal {
			parity[e.U] = !parity[e.U]
		}
		if e.V < dg.NumReal {
			parity[e.V] = !parity[e.V]
		}
	}
	var syn []int
	for v, on := range parity {
		if on {
			syn = append(syn, v)
		}
	}
	return syn
}

// HasLogicalError reports whether a syndrome-free residual frame carries a
// logical operator on the given graph: odd overlap with the graph's homology
// cut. Callers must only pass residuals whose syndrome is empty; the parity
// is not a homology invariant otherwise.
func (c *Code) HasLogicalError(kind GraphKind, residual quantum.Frame) bool {
	dg := c.Graph(kind)
	odd := false
	for _, q := range dg.CutQubits {
		p := residual[q]
		if (kind == ZGraph && p.HasX()) || (kind == XGraph && p.HasZ()) {
			odd = !odd
		}
	}
	return odd
}
