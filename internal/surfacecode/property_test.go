package surfacecode

import (
	"testing"
	"testing/quick"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
)

// TestSyndromeLinearity checks that syndrome extraction is linear over frame
// composition: syn(f*g) = syn(f) xor syn(g), per graph.
func TestSyndromeLinearity(t *testing.T) {
	c := MustNew(5, CoreLShape)
	nm := UniformNoise(c, 0.2, 0.1)
	check := func(seed uint64) bool {
		src := rng.New(seed)
		f, _ := nm.Sample(src.Split("f"))
		g, _ := nm.Sample(src.Split("g"))
		fg := f.Clone()
		fg.Compose(g)
		for _, kind := range []GraphKind{ZGraph, XGraph} {
			want := xorSets(c.Syndrome(kind, f), c.Syndrome(kind, g))
			got := c.Syndrome(kind, fg)
			if !sameSet(want, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestLogicalParityLinearity checks that the logical-class parity of a
// product of two syndrome-free frames is the XOR of their classes.
func TestLogicalParityLinearity(t *testing.T) {
	c := MustNew(4, CoreLShape)
	src := rng.New(33)
	// Build random syndrome-free frames: products of stabilizers and,
	// half the time, one logical operator.
	randomFrame := func(s *rng.Source) quantum.Frame {
		f := quantum.NewFrame(c.NumData())
		n := 2*c.Distance() - 1
		for k := 0; k < 30; k++ {
			i, j := s.IntN(n), s.IntN(n)
			switch {
			case i%2 == 1 && j%2 == 0:
				f.Compose(xStabilizer(c, i, j))
			case i%2 == 0 && j%2 == 1:
				f.Compose(zStabilizer(c, i, j))
			}
		}
		if s.Bool(0.5) { // add a logical X along row 0
			for j := 0; j < n; j += 2 {
				f.Apply(c.DataIndex(Coord{Row: 0, Col: j}), quantum.X)
			}
		}
		return f
	}
	for trial := 0; trial < 60; trial++ {
		f := randomFrame(src.SplitN("a", trial))
		g := randomFrame(src.SplitN("b", trial))
		fg := f.Clone()
		fg.Compose(g)
		if len(c.Syndrome(ZGraph, fg)) != 0 {
			t.Fatal("product of syndrome-free frames has a syndrome")
		}
		want := c.HasLogicalError(ZGraph, f) != c.HasLogicalError(ZGraph, g)
		if got := c.HasLogicalError(ZGraph, fg); got != want {
			t.Fatalf("trial %d: logical parity not linear", trial)
		}
	}
}

// TestEveryDataQubitOnBothGraphs checks the §IV-C identification: each data
// qubit is exactly one edge in each decoding graph, with consistent IDs.
func TestEveryDataQubitOnBothGraphs(t *testing.T) {
	for _, d := range []int{2, 3, 5, 8} {
		c := MustNew(d, CoreLShape)
		for _, kind := range []GraphKind{ZGraph, XGraph} {
			dg := c.Graph(kind)
			seen := make([]bool, c.NumData())
			for i := 0; i < dg.G.NumEdges(); i++ {
				id := dg.G.Edge(i).ID
				if id < 0 || id >= c.NumData() || seen[id] {
					t.Fatalf("d=%d %v: bad or duplicate edge ID %d", d, kind, id)
				}
				seen[id] = true
			}
		}
	}
}

// TestCutQubitsAreBoundaryEdges checks that each graph's homology cut
// consists of edges incident to exactly one virtual boundary.
func TestCutQubitsAreBoundaryEdges(t *testing.T) {
	c := MustNew(5, CoreLShape)
	for _, kind := range []GraphKind{ZGraph, XGraph} {
		dg := c.Graph(kind)
		for _, q := range dg.CutQubits {
			e := dg.G.Edge(q)
			ends := 0
			if dg.IsBoundary(e.U) {
				ends++
			}
			if dg.IsBoundary(e.V) {
				ends++
			}
			if ends != 1 {
				t.Fatalf("%v: cut qubit %d touches %d boundaries, want 1", kind, q, ends)
			}
		}
	}
}

// xorSets returns the symmetric difference of two vertex sets.
func xorSets(a, b []int) []int {
	m := map[int]int{}
	for _, v := range a {
		m[v]++
	}
	for _, v := range b {
		m[v]++
	}
	var out []int
	for v, n := range m {
		if n%2 == 1 {
			out = append(out, v)
		}
	}
	return out
}

// sameSet reports set equality.
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}
