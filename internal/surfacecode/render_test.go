package surfacecode

import (
	"strings"
	"testing"

	"surfnet/internal/quantum"
)

func TestRenderBareLattice(t *testing.T) {
	c := MustNew(3, CoreLShape)
	out := c.Render(nil, nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d rows, want 5", len(lines))
	}
	// Row 0 of a d=3 code: data, measure-Z, data, measure-Z, data.
	if lines[0] != ". o . o ." {
		t.Fatalf("row 0 = %q", lines[0])
	}
	// Row 1: measure-X, data, measure-X, data, measure-X.
	if lines[1] != "x . x . x" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if strings.ContainsAny(out, "#@XYZE") {
		t.Fatal("bare lattice should contain no errors or syndromes")
	}
}

func TestRenderErrorAndSyndromes(t *testing.T) {
	c := MustNew(3, CoreLShape)
	f := quantum.NewFrame(c.NumData())
	q := c.DataIndex(Coord{Row: 1, Col: 1}) // bulk vertical data qubit
	f[q] = quantum.X
	out := c.Render(f, nil)
	if !strings.Contains(out, "X") {
		t.Error("error letter missing")
	}
	// An X on (1,1) flips measure-Z at (0,1) and (2,1): two '#'.
	if got := strings.Count(out, "#"); got != 2 {
		t.Errorf("rendered %d Z-syndromes, want 2", got)
	}
	if strings.Contains(out, "@") {
		t.Error("X error must not light measure-X syndromes")
	}
}

func TestRenderErased(t *testing.T) {
	c := MustNew(3, CoreLShape)
	f := quantum.NewFrame(c.NumData())
	erased := make([]bool, c.NumData())
	erased[0] = true
	f[0] = quantum.Z // hidden behind the erasure marker
	out := c.Render(f, erased)
	if !strings.Contains(out, "E") {
		t.Error("erasure marker missing")
	}
}

func TestRenderCore(t *testing.T) {
	c := MustNew(5, CoreLShape)
	out := c.RenderCore()
	if got := strings.Count(out, "C"); got != c.CoreSize() {
		t.Fatalf("rendered %d core marks, want %d", got, c.CoreSize())
	}
	// L-shape: the left column rows 2,4,6,8 and top row columns 2,4,6.
	lines := strings.Split(out, "\n")
	if lines[2][0] != 'C' || lines[0][4] != 'C' {
		t.Error("core marks not at the L-shape positions")
	}
}
