package surfacecode

import (
	"fmt"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
)

// NoiseModel holds independent per-data-qubit error rates, the error model of
// §IV: random Pauli errors plus erasure errors, with error-free measurements.
// Pauli noise follows the independent-X/Z convention standard in threshold
// studies: each qubit suffers an X flip with probability p and, independently,
// a Z flip with probability p (Y when both fire), so p is directly the error
// probability seen by each decoding graph.
type NoiseModel struct {
	// Pauli[q] is the per-graph flip probability of data qubit q: X with
	// probability Pauli[q] and independently Z with probability Pauli[q].
	Pauli []float64
	// Erase[q] is the probability that data qubit q is erased. An erased
	// qubit is replaced by a maximally mixed state — a uniform draw from
	// {I, X, Y, Z} — and its location is known to the decoder.
	Erase []float64
}

// NewNoiseModel returns an all-zero model sized for code c.
func NewNoiseModel(c *Code) *NoiseModel {
	return &NoiseModel{
		Pauli: make([]float64, c.NumData()),
		Erase: make([]float64, c.NumData()),
	}
}

// UniformNoise builds the Fig. 8 model: Pauli rate p and erasure rate e on
// every Support qubit, both halved on Core qubits ("these error rates are
// halved at the Core part", §VI-B).
func UniformNoise(c *Code, p, e float64) *NoiseModel {
	nm := NewNoiseModel(c)
	for q := 0; q < c.NumData(); q++ {
		factor := 1.0
		if c.IsCore(q) {
			factor = 0.5
		}
		nm.Pauli[q] = p * factor
		nm.Erase[q] = e * factor
	}
	return nm
}

// Validate checks that all rates are probabilities.
func (nm *NoiseModel) Validate() error {
	if len(nm.Pauli) != len(nm.Erase) {
		return fmt.Errorf("surfacecode: rate slices disagree in length: %d vs %d",
			len(nm.Pauli), len(nm.Erase))
	}
	for q := range nm.Pauli {
		if nm.Pauli[q] < 0 || nm.Pauli[q] > 1 {
			return fmt.Errorf("surfacecode: Pauli rate %v on qubit %d outside [0,1]", nm.Pauli[q], q)
		}
		if nm.Erase[q] < 0 || nm.Erase[q] > 1 {
			return fmt.Errorf("surfacecode: erase rate %v on qubit %d outside [0,1]", nm.Erase[q], q)
		}
	}
	return nil
}

// Sample draws one error realization: the Pauli frame over data qubits and
// the erasure mask. Erasure takes precedence: an erased qubit's frame entry
// is a uniform draw from {I, X, Y, Z} regardless of its Pauli rate.
func (nm *NoiseModel) Sample(src *rng.Source) (quantum.Frame, []bool) {
	return nm.SampleInto(src, nil, nil)
}

// SampleInto is Sample with caller-owned buffers: frame and erased are
// reused when their capacity allows (Monte Carlo loops pass each worker's
// scratch buffers to stop allocating per trial). The returned slices alias
// the buffers; they are valid until the next SampleInto with the same
// buffers. Nil buffers allocate fresh.
//
// Draw contract: the number of rng draws consumed per qubit is
// data-dependent — Bool(Erase[q]); then if erased one IntN(4), else
// Bool(Pauli[q]) twice — and Bool consumes nothing at all when its rate is
// degenerate (p <= 0 or p >= 1). Any consumer that needs reproducibility must
// therefore derive one stream per trial (the simulation loops split
// root.SplitN("trial", i) / SplitN("t", i)) and never interleave other draws
// on that stream. The packed sampler in internal/batch has a different,
// also data-dependent schedule, so the two can only ever agree in
// distribution, never draw-for-draw; it uses a disjoint
// root.SplitN("batch", i) stream family and its marginals are property-tested
// against this sampler's.
func (nm *NoiseModel) SampleInto(src *rng.Source, frame quantum.Frame, erased []bool) (quantum.Frame, []bool) {
	n := len(nm.Pauli)
	f := frame
	if cap(f) < n {
		f = quantum.NewFrame(n)
	} else {
		f = f[:n]
		for q := range f {
			f[q] = quantum.I
		}
	}
	if cap(erased) < n {
		erased = make([]bool, n)
	} else {
		erased = erased[:n]
		for q := range erased {
			erased[q] = false
		}
	}
	mixed := [4]quantum.Pauli{quantum.I, quantum.X, quantum.Y, quantum.Z}
	for q := 0; q < n; q++ {
		if src.Bool(nm.Erase[q]) {
			erased[q] = true
			f[q] = mixed[src.IntN(4)]
			continue
		}
		if src.Bool(nm.Pauli[q]) {
			f[q] = f[q].Mul(quantum.X)
		}
		if src.Bool(nm.Pauli[q]) {
			f[q] = f[q].Mul(quantum.Z)
		}
	}
	return f, erased
}

// EdgeErrorProb returns, per data qubit, the probability that it carries an
// error visible on one decoding graph, conditioned on it NOT being a known
// erasure. Under the independent-X/Z convention this is the Pauli rate
// itself. This is the "estimated data qubit fidelity" input of Algorithms 1
// and 2: the decoder uses rho_i = 1 - EdgeErrorProb for intact qubits and
// rho = 0.5 for known erasures.
func (nm *NoiseModel) EdgeErrorProb() []float64 {
	out := make([]float64, len(nm.Pauli))
	copy(out, nm.Pauli)
	return out
}
