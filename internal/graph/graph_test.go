package graph

import (
	"math"
	"testing"
	"testing/quick"

	"surfnet/internal/rng"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 || uf.Len() != 5 {
		t.Fatalf("fresh union-find: count=%d len=%d", uf.Count(), uf.Len())
	}
	if _, merged := uf.Union(0, 1); !merged {
		t.Fatal("first union should merge")
	}
	if _, merged := uf.Union(1, 0); merged {
		t.Fatal("repeated union should not merge")
	}
	if !uf.Same(0, 1) || uf.Same(0, 2) {
		t.Fatal("Same gave wrong answer after union")
	}
	if uf.Count() != 4 {
		t.Fatalf("count after one merge = %d, want 4", uf.Count())
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 1)
	uf.Union(2, 3)
	// Shrinking reset reuses the arrays and clears all state.
	uf.Reset(4)
	if uf.Len() != 4 || uf.Count() != 4 {
		t.Fatalf("after Reset(4): len=%d count=%d", uf.Len(), uf.Count())
	}
	for i := 0; i < 4; i++ {
		if uf.Find(i) != i {
			t.Fatalf("element %d not singleton after reset", i)
		}
	}
	// Growing reset reallocates.
	uf.Reset(10)
	if uf.Len() != 10 || uf.Count() != 10 {
		t.Fatalf("after Reset(10): len=%d count=%d", uf.Len(), uf.Count())
	}
	uf.Union(8, 9)
	if !uf.Same(8, 9) || uf.Same(0, 8) {
		t.Fatal("union after reset broken")
	}
}

func TestUnionFindTransitivity(t *testing.T) {
	uf := NewUnionFind(10)
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(3, 4)
	if !uf.Same(0, 2) {
		t.Error("union should be transitive")
	}
	if uf.Same(2, 3) {
		t.Error("disjoint sets reported as same")
	}
	uf.Union(2, 3)
	if !uf.Same(0, 4) {
		t.Error("merging chains should connect all members")
	}
}

func TestUnionFindRandomAgainstNaive(t *testing.T) {
	src := rng.New(99)
	const n = 50
	uf := NewUnionFind(n)
	naive := make([]int, n) // naive: component label array
	for i := range naive {
		naive[i] = i
	}
	relabel := func(from, to int) {
		for i := range naive {
			if naive[i] == from {
				naive[i] = to
			}
		}
	}
	for step := 0; step < 200; step++ {
		a, b := src.IntN(n), src.IntN(n)
		if a == b {
			continue
		}
		uf.Union(a, b)
		relabel(naive[a], naive[b])
		// Spot-check consistency on a few random pairs.
		for k := 0; k < 5; k++ {
			x, y := src.IntN(n), src.IntN(n)
			if uf.Same(x, y) != (naive[x] == naive[y]) {
				t.Fatalf("step %d: Same(%d,%d) disagrees with naive labels", step, x, y)
			}
		}
	}
}

// grid builds an r x c grid graph with unit weights for path tests.
func grid(r, c int) *Weighted {
	g := NewWeighted(r * c)
	id := 0
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			v := i*c + j
			if j+1 < c {
				g.AddEdge(Edge{ID: id, U: v, V: v + 1, Weight: 1})
				id++
			}
			if i+1 < r {
				g.AddEdge(Edge{ID: id, U: v, V: v + c, Weight: 1})
				id++
			}
		}
	}
	return g
}

func TestDijkstraGrid(t *testing.T) {
	g := grid(4, 5)
	sp := g.Dijkstra(0)
	// Manhattan distances on a unit grid.
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			want := float64(i + j)
			if got := sp.Dist[i*5+j]; got != want {
				t.Errorf("dist to (%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	path := sp.PathTo(g, 19) // opposite corner
	if len(path) != 7 {
		t.Errorf("path length = %d, want 7", len(path))
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle where the direct edge is heavier than the detour.
	g := NewWeighted(3)
	g.AddEdge(Edge{ID: 0, U: 0, V: 2, Weight: 10})
	g.AddEdge(Edge{ID: 1, U: 0, V: 1, Weight: 3})
	g.AddEdge(Edge{ID: 2, U: 1, V: 2, Weight: 4})
	sp := g.Dijkstra(0)
	if sp.Dist[2] != 7 {
		t.Fatalf("dist = %v, want 7 (detour)", sp.Dist[2])
	}
	path := sp.PathTo(g, 2)
	if len(path) != 2 || g.Edge(path[0]).ID != 1 || g.Edge(path[1]).ID != 2 {
		t.Fatalf("path = %v, want the detour via vertex 1", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewWeighted(4)
	g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	sp := g.Dijkstra(0)
	if !math.IsInf(sp.Dist[3], 1) {
		t.Error("disconnected vertex should be at infinite distance")
	}
	if sp.PathTo(g, 3) != nil {
		t.Error("PathTo unreachable vertex should return nil")
	}
	if p := sp.PathTo(g, 0); p == nil || len(p) != 0 {
		t.Error("PathTo source should return empty non-nil path")
	}
}

func TestDijkstraPathConsistency(t *testing.T) {
	// Property: reconstructed path weights sum to Dist, on random graphs.
	check := func(seed uint64) bool {
		src := rng.New(seed)
		n := 8 + src.IntN(12)
		g := NewWeighted(n)
		// Random connected-ish graph: a spanning chain plus extras.
		for v := 1; v < n; v++ {
			g.AddEdge(Edge{U: v - 1, V: v, Weight: src.Range(0.1, 5)})
		}
		for k := 0; k < n; k++ {
			a, b := src.IntN(n), src.IntN(n)
			if a != b {
				g.AddEdge(Edge{U: a, V: b, Weight: src.Range(0.1, 5)})
			}
		}
		sp := g.Dijkstra(0)
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, ei := range sp.PathTo(g, v) {
				sum += g.Edge(ei).Weight
			}
			if math.Abs(sum-sp.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSpanningForest(t *testing.T) {
	g := grid(3, 3)
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	forest := g.SpanningForest(all)
	// A connected graph on 9 vertices has a spanning tree of 8 edges.
	if len(forest) != 8 {
		t.Fatalf("spanning forest size = %d, want 8", len(forest))
	}
	// The forest must be acyclic and span: re-running union-find confirms.
	uf := NewUnionFind(9)
	for _, ei := range forest {
		e := g.Edge(ei)
		if _, merged := uf.Union(e.U, e.V); !merged {
			t.Fatal("forest contains a cycle")
		}
	}
	if uf.Count() != 1 {
		t.Fatalf("forest does not span: %d components", uf.Count())
	}
}

func TestSpanningForestDisconnected(t *testing.T) {
	g := NewWeighted(6)
	e1 := g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	e2 := g.AddEdge(Edge{U: 1, V: 2, Weight: 1})
	e3 := g.AddEdge(Edge{U: 0, V: 2, Weight: 1}) // cycle closer
	e4 := g.AddEdge(Edge{U: 3, V: 4, Weight: 1})
	forest := g.SpanningForest([]int{e1, e2, e3, e4})
	if len(forest) != 3 {
		t.Fatalf("forest size = %d, want 3 (two trees)", len(forest))
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewWeighted(5)
	e1 := g.AddEdge(Edge{U: 0, V: 1, Weight: 1})
	e2 := g.AddEdge(Edge{U: 3, V: 4, Weight: 1})
	labels, k := g.ConnectedComponents([]int{e1, e2})
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[3] != labels[4] {
		t.Error("joined vertices must share labels")
	}
	if labels[0] == labels[2] || labels[0] == labels[3] {
		t.Error("separate components must not share labels")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewWeighted(3)
	for _, bad := range []Edge{
		{U: -1, V: 0}, {U: 0, V: 3}, {U: 1, V: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%+v) should panic", bad)
				}
			}()
			g.AddEdge(bad)
		}()
	}
}

func TestIncidentAndOther(t *testing.T) {
	g := NewWeighted(3)
	ei := g.AddEdge(Edge{ID: 7, U: 0, V: 2, Weight: 1.5})
	if g.Degree(0) != 1 || g.Degree(1) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
	if g.Other(ei, 0) != 2 || g.Other(ei, 2) != 0 {
		t.Fatal("Other returned wrong endpoint")
	}
	if g.Edge(int(g.Incident(2)[0])).ID != 7 {
		t.Fatal("Incident lost the edge ID")
	}
	g.SetWeight(ei, 9)
	if g.Edge(ei).Weight != 9 {
		t.Fatal("SetWeight did not apply")
	}
}
