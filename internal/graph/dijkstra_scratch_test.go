package graph

import (
	"math"
	"testing"

	"surfnet/internal/rng"
)

// randomConnected builds a connected random weighted graph: a spanning path
// plus extra random chords.
func randomConnected(src *rng.Source, n, extra int) *Weighted {
	g := NewWeighted(n)
	for v := 1; v < n; v++ {
		g.AddEdge(Edge{ID: v - 1, U: v - 1, V: v, Weight: src.Range(0.1, 5)})
	}
	for i := 0; i < extra; i++ {
		u := src.IntN(n)
		v := src.IntN(n)
		if u == v {
			continue
		}
		g.AddEdge(Edge{ID: n - 1 + i, U: u, V: v, Weight: src.Range(0.1, 5)})
	}
	return g
}

// TestDijkstraIntoMatchesDijkstra checks that the scratch-backed variant
// reproduces the allocating one exactly, with both the result struct and the
// frontier buffer reused across many sources and across graphs of different
// sizes (shrinking included).
func TestDijkstraIntoMatchesDijkstra(t *testing.T) {
	src := rng.New(7)
	var ds DijkstraScratch
	sp := &ShortestPaths{}
	for _, n := range []int{30, 50, 12} {
		g := randomConnected(src, n, 2*n)
		for s := 0; s < n; s += 3 {
			want := g.Dijkstra(s)
			got := g.DijkstraInto(s, sp, &ds)
			if got != sp {
				t.Fatalf("DijkstraInto did not write into the provided struct")
			}
			if got.Source != want.Source || len(got.Dist) != len(want.Dist) {
				t.Fatalf("n=%d s=%d: shape mismatch", n, s)
			}
			for v := range want.Dist {
				if got.Dist[v] != want.Dist[v] {
					t.Fatalf("n=%d s=%d v=%d: dist %v, want %v", n, s, v, got.Dist[v], want.Dist[v])
				}
				if got.PrevEdge[v] != want.PrevEdge[v] {
					t.Fatalf("n=%d s=%d v=%d: prev %d, want %d", n, s, v, got.PrevEdge[v], want.PrevEdge[v])
				}
			}
		}
	}
}

// TestDijkstraIntoUnreachable checks Inf/-1 for disconnected vertices when
// the reused buffers previously held finite values.
func TestDijkstraIntoUnreachable(t *testing.T) {
	g := NewWeighted(4)
	g.AddEdge(Edge{ID: 0, U: 0, V: 1, Weight: 1})
	// vertices 2,3 isolated from 0
	g.AddEdge(Edge{ID: 1, U: 2, V: 3, Weight: 1})
	var ds DijkstraScratch
	sp := g.DijkstraInto(2, nil, &ds) // fills with finite values for 2,3
	sp = g.DijkstraInto(0, sp, &ds)
	if !math.IsInf(sp.Dist[2], 1) || !math.IsInf(sp.Dist[3], 1) {
		t.Fatalf("stale distances leaked into unreachable vertices: %v", sp.Dist)
	}
	if sp.PrevEdge[2] != -1 || sp.PrevEdge[3] != -1 {
		t.Fatalf("stale prev edges leaked: %v", sp.PrevEdge)
	}
}

// BenchmarkDijkstraInto measures the steady-state cost of the reused path
// against fresh allocation.
func BenchmarkDijkstraInto(b *testing.B) {
	src := rng.New(3)
	g := randomConnected(src, 200, 600)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Dijkstra(i % 200)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		var ds DijkstraScratch
		sp := &ShortestPaths{}
		for i := 0; i < b.N; i++ {
			g.DijkstraInto(i%200, sp, &ds)
		}
	})
}
