// Package graph provides the graph primitives shared by the decoders and the
// routing layer: a weighted union-find, Dijkstra shortest paths on weighted
// adjacency structures, and spanning forests.
package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// Find and Union run in amortized O(alpha(n)) time, which is what gives the
// Union-Find and SurfNet decoders their near-linear complexity (Theorem 2).
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind returns a structure over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	return &UnionFind{
		parent: parent,
		rank:   make([]int8, n),
		count:  n,
	}
}

// Len reports the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Reset reinitializes the structure to n singleton elements, reusing the
// backing arrays when their capacity allows. It is the allocation-free path
// for hot loops that build a union-find per decode.
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
		u.rank = make([]int8, n)
	} else {
		u.parent = u.parent[:n]
		u.rank = u.rank[:n]
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.rank[i] = 0
	}
	u.count = n
}

// Count reports the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	// Path compression.
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing a and b and returns the representative of
// the merged set. It reports whether a merge happened (false when a and b
// were already in the same set).
func (u *UnionFind) Union(a, b int) (root int, merged bool) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra, false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return ra, true
}

// Same reports whether a and b belong to the same set.
func (u *UnionFind) Same(a, b int) bool { return u.Find(a) == u.Find(b) }
