package graph

import (
	"fmt"
	"math"
)

// Edge is an undirected weighted edge between vertices U and V. ID is the
// caller's identifier for the edge (decoders use it to map edges back to data
// qubits; routing uses it to map back to optical fibers).
type Edge struct {
	ID     int
	U, V   int
	Weight float64
}

// Weighted is an undirected weighted multigraph with a fixed vertex count.
// Vertices are dense integers [0, N). It is the shared representation for
// decoding graphs and network topologies.
type Weighted struct {
	n     int
	edges []Edge
	adj   [][]int32 // vertex -> indices into edges
}

// NewWeighted returns an empty graph over n vertices.
func NewWeighted(n int) *Weighted {
	return &Weighted{
		n:   n,
		adj: make([][]int32, n),
	}
}

// NumVertices reports the vertex count.
func (g *Weighted) NumVertices() int { return g.n }

// NumEdges reports the edge count.
func (g *Weighted) NumEdges() int { return len(g.edges) }

// AddEdge inserts an undirected edge and returns its dense index within the
// graph (not the caller-supplied ID). Self-loops are rejected because neither
// decoding graphs nor optical-fiber topologies contain them.
func (g *Weighted) AddEdge(e Edge) int {
	if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
		panic(fmt.Sprintf("graph: edge endpoints (%d, %d) out of range [0, %d)", e.U, e.V, g.n))
	}
	if e.U == e.V {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", e.U))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, e)
	g.adj[e.U] = append(g.adj[e.U], int32(idx))
	g.adj[e.V] = append(g.adj[e.V], int32(idx))
	return idx
}

// Edge returns the edge at dense index i.
func (g *Weighted) Edge(i int) Edge { return g.edges[i] }

// SetWeight updates the weight of the edge at dense index i.
func (g *Weighted) SetWeight(i int, w float64) { g.edges[i].Weight = w }

// Incident returns the dense edge indices incident to vertex v. The returned
// slice is owned by the graph and must not be mutated.
func (g *Weighted) Incident(v int) []int32 { return g.adj[v] }

// Degree reports the number of edges incident to v.
func (g *Weighted) Degree(v int) int { return len(g.adj[v]) }

// Other returns the endpoint of edge index i that is not v.
func (g *Weighted) Other(i, v int) int {
	e := g.edges[i]
	if e.U == v {
		return e.V
	}
	return e.U
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	v    int
	dist float64
}

// pq is a binary min-heap on dist, manipulated by pqPush/pqPop directly so
// frontier operations never box items through an interface.
type pq []pqItem

func pqPush(q pq, it pqItem) pq {
	q = append(q, it)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p].dist <= q[i].dist {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	return q
}

func pqPop(q pq) (pqItem, pq) {
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q[l].dist < q[m].dist {
			m = l
		}
		if r < n && q[r].dist < q[m].dist {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top, q
}

// ShortestPaths holds single-source Dijkstra results: Dist[v] is the minimum
// weight from the source, and PrevEdge[v] is the dense index of the edge used
// to reach v (-1 at the source and at unreachable vertices).
type ShortestPaths struct {
	Source   int
	Dist     []float64
	PrevEdge []int32
}

// DijkstraScratch is a reusable frontier buffer for DijkstraInto, so repeated
// single-source computations (the MWPM decode cache refreshing per-syndrome
// tables) allocate nothing in steady state. The zero value is ready to use.
type DijkstraScratch struct {
	q pq
}

// Dijkstra computes shortest paths from src over non-negative edge weights.
func (g *Weighted) Dijkstra(src int) *ShortestPaths {
	return g.DijkstraInto(src, nil, nil)
}

// DijkstraInto is Dijkstra with caller-owned storage: the result is written
// into sp (reusing its Dist/PrevEdge capacity) and the frontier heap lives in
// ds. A nil sp or ds allocates fresh, so DijkstraInto(src, nil, nil) is
// exactly Dijkstra(src).
func (g *Weighted) DijkstraInto(src int, sp *ShortestPaths, ds *DijkstraScratch) *ShortestPaths {
	if sp == nil {
		sp = &ShortestPaths{}
	}
	sp.Source = src
	if cap(sp.Dist) < g.n {
		sp.Dist = make([]float64, g.n)
	}
	sp.Dist = sp.Dist[:g.n]
	if cap(sp.PrevEdge) < g.n {
		sp.PrevEdge = make([]int32, g.n)
	}
	sp.PrevEdge = sp.PrevEdge[:g.n]
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.PrevEdge[i] = -1
	}
	sp.Dist[src] = 0
	var q pq
	if ds != nil {
		q = ds.q[:0]
	}
	q = append(q, pqItem{v: src, dist: 0})
	for len(q) > 0 {
		var it pqItem
		it, q = pqPop(q)
		if it.dist > sp.Dist[it.v] {
			continue // stale entry
		}
		for _, ei := range g.adj[it.v] {
			e := g.edges[ei]
			w := it.dist + e.Weight
			u := e.V
			if u == it.v {
				u = e.U
			}
			if w < sp.Dist[u] {
				sp.Dist[u] = w
				sp.PrevEdge[u] = ei
				q = pqPush(q, pqItem{v: u, dist: w})
			}
		}
	}
	if ds != nil {
		ds.q = q // keep the grown heap capacity for the next call
	}
	return sp
}

// PathTo reconstructs the dense edge indices of the shortest path from the
// source to dst, in order from source to dst. It returns nil when dst is
// unreachable and an empty slice when dst is the source.
func (sp *ShortestPaths) PathTo(g *Weighted, dst int) []int {
	if math.IsInf(sp.Dist[dst], 1) {
		return nil
	}
	var rev []int
	for v := dst; v != sp.Source; {
		ei := sp.PrevEdge[v]
		rev = append(rev, int(ei))
		v = g.Other(int(ei), v)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev == nil {
		rev = []int{}
	}
	return rev
}

// SpanningForest returns, for the subgraph induced by the given dense edge
// indices, a subset of those indices forming a spanning forest (one spanning
// tree per connected component). Used by the peeling decoder.
func (g *Weighted) SpanningForest(edgeIdx []int) []int {
	uf := NewUnionFind(g.n)
	var forest []int
	for _, ei := range edgeIdx {
		e := g.edges[ei]
		if _, merged := uf.Union(e.U, e.V); merged {
			forest = append(forest, ei)
		}
	}
	return forest
}

// ConnectedComponents labels every vertex with a component id in [0, k) and
// returns the labels and k, considering only the given edges. Vertices
// untouched by any edge form singleton components.
func (g *Weighted) ConnectedComponents(edgeIdx []int) (labels []int, k int) {
	uf := NewUnionFind(g.n)
	for _, ei := range edgeIdx {
		e := g.edges[ei]
		uf.Union(e.U, e.V)
	}
	labels = make([]int, g.n)
	next := 0
	remap := make(map[int]int, g.n)
	for v := 0; v < g.n; v++ {
		r := uf.Find(v)
		id, ok := remap[r]
		if !ok {
			id = next
			next++
			remap[r] = id
		}
		labels[v] = id
	}
	return labels, next
}
