// Package network models the physical quantum network of §IV-A: user,
// switch, and server nodes interconnected by optical fibers, each fiber
// carrying the two SurfNet communication channels — the entanglement-based
// channel (quantum teleportation of Core qubits over prepared entangled
// pairs) and the plain channel (Support qubits transmitted directly as
// photons).
package network

import (
	"errors"
	"fmt"

	"surfnet/internal/quantum"
)

// Role classifies a network node (§IV-A Components).
type Role int

// Node roles.
const (
	// User nodes generate communication requests.
	User Role = 1 + iota
	// Switch nodes relay both channels: they continuously generate
	// entangled pairs and re-encode passing Support photons.
	Switch
	// Server nodes are switches with larger memories that can addition-
	// ally perform error correction on complete surface codes.
	Server
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case User:
		return "user"
	case Switch:
		return "switch"
	case Server:
		return "server"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Node is a network node.
type Node struct {
	ID   int
	Role Role
	// Capacity is the storage capacity eta_r: the number of data qubits
	// the node can hold per scheduling round. Zero for users (they source
	// and sink their own traffic).
	Capacity int
}

// Fiber is an optical fiber between two nodes, carrying both channels.
type Fiber struct {
	ID int
	A  int
	B  int
	// Fidelity is gamma in [0,1], measured and constant during routing
	// (§V assumption 2).
	Fidelity float64
	// EntPairs is eta_e: the number of entangled pairs prepared across
	// this fiber and available to the scheduler per round.
	EntPairs int
	// EntRate is the per-slot probability that one entanglement
	// generation attempt across this fiber succeeds, used by the online
	// execution engine.
	EntRate float64
	// LossProb is the per-traversal probability that a plain-channel
	// photon is lost (arriving as an erasure).
	LossProb float64
}

// Noise returns the fiber's additive noise mu = log2(1/gamma) (§V-A).
func (f Fiber) Noise() float64 { return quantum.Noise(f.Fidelity) }

// Network is the static network state handed to the routing protocol.
type Network struct {
	nodes  []Node
	fibers []Fiber
	adj    [][]int32 // node -> incident fiber ids
}

// Validation errors.
var (
	ErrDisconnected = errors.New("network: graph is not connected")
	ErrBadTopology  = errors.New("network: invalid topology")
)

// New assembles a network from nodes and fibers, assigning dense IDs in
// order. Node IDs must equal their slice positions.
func New(nodes []Node, fibers []Fiber) (*Network, error) {
	n := &Network{
		nodes:  append([]Node(nil), nodes...),
		fibers: append([]Fiber(nil), fibers...),
		adj:    make([][]int32, len(nodes)),
	}
	for i, nd := range n.nodes {
		if nd.ID != i {
			return nil, fmt.Errorf("%w: node at position %d has ID %d", ErrBadTopology, i, nd.ID)
		}
		switch nd.Role {
		case User, Switch, Server:
		default:
			return nil, fmt.Errorf("%w: node %d has invalid role %v", ErrBadTopology, i, nd.Role)
		}
		if nd.Capacity < 0 {
			return nil, fmt.Errorf("%w: node %d has negative capacity", ErrBadTopology, i)
		}
	}
	for i, f := range n.fibers {
		if f.ID != i {
			return nil, fmt.Errorf("%w: fiber at position %d has ID %d", ErrBadTopology, i, f.ID)
		}
		if f.A < 0 || f.A >= len(nodes) || f.B < 0 || f.B >= len(nodes) || f.A == f.B {
			return nil, fmt.Errorf("%w: fiber %d endpoints (%d,%d)", ErrBadTopology, i, f.A, f.B)
		}
		if err := quantum.CheckFidelity(f.Fidelity); err != nil {
			return nil, fmt.Errorf("fiber %d: %w", i, err)
		}
		if f.EntPairs < 0 || f.EntRate < 0 || f.EntRate > 1 || f.LossProb < 0 || f.LossProb > 1 {
			return nil, fmt.Errorf("%w: fiber %d channel parameters out of range", ErrBadTopology, i)
		}
		n.adj[f.A] = append(n.adj[f.A], int32(i))
		n.adj[f.B] = append(n.adj[f.B], int32(i))
	}
	if !n.connected() {
		return nil, ErrDisconnected
	}
	return n, nil
}

// connected verifies the §V assumption that the network is connected.
func (n *Network) connected() bool {
	if len(n.nodes) == 0 {
		return false
	}
	seen := make([]bool, len(n.nodes))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fi := range n.adj[v] {
			f := n.fibers[fi]
			u := f.A
			if u == v {
				u = f.B
			}
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == len(n.nodes)
}

// NumNodes reports the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumFibers reports the fiber count.
func (n *Network) NumFibers() int { return len(n.fibers) }

// Node returns node i.
func (n *Network) Node(i int) Node { return n.nodes[i] }

// Fiber returns fiber i.
func (n *Network) Fiber(i int) Fiber { return n.fibers[i] }

// Incident returns the fiber IDs incident to node v. The slice is owned by
// the network and must not be mutated.
func (n *Network) Incident(v int) []int32 { return n.adj[v] }

// Other returns the endpoint of fiber fi opposite to node v.
func (n *Network) Other(fi, v int) int {
	f := n.fibers[fi]
	if f.A == v {
		return f.B
	}
	return f.A
}

// NodesByRole returns the IDs of all nodes with the given role, ascending.
func (n *Network) NodesByRole(r Role) []int {
	var out []int
	for _, nd := range n.nodes {
		if nd.Role == r {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Relays returns all switch and server IDs (the set R of the routing
// formulation, which includes servers).
func (n *Network) Relays() []int {
	var out []int
	for _, nd := range n.nodes {
		if nd.Role == Switch || nd.Role == Server {
			out = append(out, nd.ID)
		}
	}
	return out
}

// Request is a communication request k = [(s_k, d_k), i_k] (§V Table I).
type Request struct {
	// Src and Dst are user node IDs.
	Src, Dst int
	// Messages is i_k, the number of surface codes to transfer.
	Messages int
}

// Validate checks the request against the network.
func (r Request) Validate(n *Network) error {
	for _, v := range []int{r.Src, r.Dst} {
		if v < 0 || v >= n.NumNodes() {
			return fmt.Errorf("%w: request endpoint %d out of range", ErrBadTopology, v)
		}
		if n.Node(v).Role != User {
			return fmt.Errorf("%w: request endpoint %d is a %v, want user", ErrBadTopology, v, n.Node(v).Role)
		}
	}
	if r.Src == r.Dst {
		return fmt.Errorf("%w: request loops on node %d", ErrBadTopology, r.Src)
	}
	if r.Messages <= 0 {
		return fmt.Errorf("%w: request carries %d messages", ErrBadTopology, r.Messages)
	}
	return nil
}
