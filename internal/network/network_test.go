package network

import (
	"errors"
	"math"
	"testing"
)

// line builds a 3-node path network user-switch-user.
func line(t *testing.T) *Network {
	t.Helper()
	n, err := New(
		[]Node{
			{ID: 0, Role: User},
			{ID: 1, Role: Switch, Capacity: 10},
			{ID: 2, Role: User},
		},
		[]Fiber{
			{ID: 0, A: 0, B: 1, Fidelity: 0.9, EntPairs: 5, EntRate: 0.5, LossProb: 0.1},
			{ID: 1, A: 1, B: 2, Fidelity: 0.8, EntPairs: 5, EntRate: 0.5, LossProb: 0.1},
		},
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	nodes := []Node{{ID: 0, Role: User}, {ID: 1, Role: User}}
	fiber := Fiber{ID: 0, A: 0, B: 1, Fidelity: 0.9}
	tests := []struct {
		name   string
		nodes  []Node
		fibers []Fiber
	}{
		{"misnumbered node", []Node{{ID: 1, Role: User}, {ID: 0, Role: User}}, []Fiber{fiber}},
		{"bad role", []Node{{ID: 0}, {ID: 1, Role: User}}, []Fiber{fiber}},
		{"negative capacity", []Node{{ID: 0, Role: Switch, Capacity: -1}, {ID: 1, Role: User}}, []Fiber{fiber}},
		{"misnumbered fiber", nodes, []Fiber{{ID: 3, A: 0, B: 1, Fidelity: 0.9}}},
		{"self-loop fiber", nodes, []Fiber{{ID: 0, A: 0, B: 0, Fidelity: 0.9}}},
		{"fidelity range", nodes, []Fiber{{ID: 0, A: 0, B: 1, Fidelity: 1.5}}},
		{"ent rate range", nodes, []Fiber{{ID: 0, A: 0, B: 1, Fidelity: 0.9, EntRate: 2}}},
		{"loss range", nodes, []Fiber{{ID: 0, A: 0, B: 1, Fidelity: 0.9, LossProb: -0.5}}},
	}
	for _, tt := range tests {
		if _, err := New(tt.nodes, tt.fibers); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
}

func TestDisconnectedRejected(t *testing.T) {
	_, err := New(
		[]Node{{ID: 0, Role: User}, {ID: 1, Role: User}, {ID: 2, Role: User}},
		[]Fiber{{ID: 0, A: 0, B: 1, Fidelity: 0.9}},
	)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestAccessors(t *testing.T) {
	n := line(t)
	if n.NumNodes() != 3 || n.NumFibers() != 2 {
		t.Fatalf("sizes: %d nodes, %d fibers", n.NumNodes(), n.NumFibers())
	}
	if n.Node(1).Role != Switch || n.Node(1).Capacity != 10 {
		t.Error("node accessor wrong")
	}
	if n.Fiber(1).Fidelity != 0.8 {
		t.Error("fiber accessor wrong")
	}
	if got := n.Other(0, 0); got != 1 {
		t.Errorf("Other(0,0) = %d, want 1", got)
	}
	if got := n.Other(0, 1); got != 0 {
		t.Errorf("Other(0,1) = %d, want 0", got)
	}
	if len(n.Incident(1)) != 2 {
		t.Errorf("Incident(1) = %v", n.Incident(1))
	}
}

func TestRoleQueries(t *testing.T) {
	n := line(t)
	if got := n.NodesByRole(User); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("users = %v", got)
	}
	if got := n.Relays(); len(got) != 1 || got[0] != 1 {
		t.Errorf("relays = %v", got)
	}
	if Server.String() != "server" || User.String() != "user" || Switch.String() != "switch" {
		t.Error("role strings wrong")
	}
}

func TestFiberNoise(t *testing.T) {
	f := Fiber{Fidelity: 0.5}
	if math.Abs(f.Noise()-1) > 1e-12 {
		t.Errorf("Noise(0.5) = %v, want 1 (log2)", f.Noise())
	}
	if (Fiber{Fidelity: 1}).Noise() != 0 {
		t.Error("Noise(1) should be 0")
	}
}

func TestRequestValidate(t *testing.T) {
	n := line(t)
	ok := Request{Src: 0, Dst: 2, Messages: 3}
	if err := ok.Validate(n); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := []Request{
		{Src: 0, Dst: 1, Messages: 1},  // dst is a switch
		{Src: 0, Dst: 0, Messages: 1},  // loop
		{Src: 0, Dst: 2, Messages: 0},  // empty
		{Src: -1, Dst: 2, Messages: 1}, // out of range
	}
	for i, r := range bad {
		if err := r.Validate(n); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}
