// Package batch is the 64-trials-per-word Monte Carlo engine of the
// Pauli+erasure substrate: Stim-style bit-parallel simulation specialized to
// the repository's noise model (random Pauli errors plus erasures with
// error-free measurements, DESIGN §1).
//
// Because every observable of a trial — syndromes, verification parities,
// logical failure — is a parity function of the sampled error, 64 independent
// trials pack into the bits of a uint64 "lane" word per data qubit: noise
// sampling draws whole lane words, syndrome extraction is an XOR-fold of the
// packed frame planes over the decoding graph, and the logical verdict is an
// XOR-fold over the homology cut. Only the decode step itself is conditional:
// lanes whose syndromes are fully explained by even-or-boundary erasure
// clusters take a linear-time erasure-peeling fast path (Delfosse's
// linear-time erasure decoding, PAPERS.md), and every other lane falls back to
// the scalar decoder verbatim, so the packed path's logical-error verdict is
// bit-for-bit the scalar oracle's verdict on the same error realization
// (property-tested in equiv_test.go).
//
// Stream contract: the packed sampler draws a data-dependent number of words
// per qubit and is therefore NOT stream-compatible with the scalar
// surfacecode.NoiseModel sampler (whose own draw schedule is documented on
// SampleInto). Callers give each batch its own stream via
// root.SplitN("batch", batchIndex) — the batch index, never the worker id,
// seeds the stream, preserving the worker-invariance contract of
// internal/sim. Scalar and packed samplers agree in distribution (per-qubit
// marginals are property-tested against binomial confidence bounds), never
// bit-for-bit.
package batch

import (
	"fmt"

	"surfnet/internal/quantum"
)

// Lanes is the number of Monte Carlo trials packed into one machine word.
const Lanes = 64

// LaneMask returns the mask selecting the first n lanes (all lanes for
// n >= Lanes).
func LaneMask(n int) uint64 {
	if n >= Lanes {
		return ^uint64(0)
	}
	if n <= 0 {
		return 0
	}
	return (uint64(1) << uint(n)) - 1
}

// Planes holds one batch of error realizations as bit planes: bit l of word q
// is lane l's value for data qubit q. X and Z are the symplectic components
// of the Pauli frame (X set on {X, Y}, Z set on {Z, Y}); Erase marks the
// known erasure locations.
type Planes struct {
	X, Z  []uint64
	Erase []uint64
}

// NewPlanes returns zeroed planes over n data qubits.
func NewPlanes(n int) *Planes {
	return &Planes{
		X:     make([]uint64, n),
		Z:     make([]uint64, n),
		Erase: make([]uint64, n),
	}
}

// NumQubits reports the number of data qubits covered by the planes.
func (p *Planes) NumQubits() int { return len(p.X) }

// Reset zeroes the planes in place, growing them to n qubits if needed.
func (p *Planes) Reset(n int) {
	p.X = growWords(p.X, n)
	p.Z = growWords(p.Z, n)
	p.Erase = growWords(p.Erase, n)
}

// Unpack extracts lane l as a scalar Pauli frame and erasure mask, reusing
// the caller's buffers when their capacity allows (nil buffers allocate). The
// returned frame and mask are exactly what the scalar decode pipeline
// consumes, which is how the equivalence property tests replay a packed lane
// through the scalar oracle.
func (p *Planes) Unpack(l int, frame quantum.Frame, erased []bool) (quantum.Frame, []bool) {
	if l < 0 || l >= Lanes {
		panic(fmt.Sprintf("batch: lane %d outside [0,%d)", l, Lanes))
	}
	n := len(p.X)
	if cap(frame) < n {
		frame = quantum.NewFrame(n)
	}
	frame = frame[:n]
	if cap(erased) < n {
		erased = make([]bool, n)
	}
	erased = erased[:n]
	bit := uint64(1) << uint(l)
	for q := 0; q < n; q++ {
		x, z := p.X[q]&bit != 0, p.Z[q]&bit != 0
		switch {
		case x && z:
			frame[q] = quantum.Y
		case x:
			frame[q] = quantum.X
		case z:
			frame[q] = quantum.Z
		default:
			frame[q] = quantum.I
		}
		erased[q] = p.Erase[q]&bit != 0
	}
	return frame, erased
}

// growWords returns a zeroed length-n word slice, reusing buf's capacity.
func growWords(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
