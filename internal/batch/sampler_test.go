package batch

import (
	"math"
	"math/bits"
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestCoinDegenerateAndFair pins the special-cased rates.
func TestCoinDegenerateAndFair(t *testing.T) {
	src := rng.New(1)
	zero := makeCoin(0)
	one := makeCoin(1)
	for i := 0; i < 10; i++ {
		if w := zero.word(src); w != 0 {
			t.Fatalf("p=0 coin produced %#x", w)
		}
		if w := one.word(src); w != ^uint64(0) {
			t.Fatalf("p=1 coin produced %#x", w)
		}
	}
	fair := makeCoin(0.5)
	total := 0
	const words = 4000
	for i := 0; i < words; i++ {
		total += bits.OnesCount64(fair.word(src))
	}
	mean := float64(total) / (words * Lanes)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("fair coin mean %.4f, want 0.5", mean)
	}
}

// TestCoinGeometricSkipping checks the gap-sampled Bernoulli word against its
// binomial expectation, on both sides of the 1/2 complementing threshold.
func TestCoinGeometricSkipping(t *testing.T) {
	for _, p := range []float64{0.003, 0.05, 0.2, 0.49, 0.51, 0.8, 0.97} {
		c := makeCoin(p)
		src := rng.New(uint64(p * 1e6))
		const words = 20000
		total := 0
		for i := 0; i < words; i++ {
			total += bits.OnesCount64(c.word(src))
		}
		n := float64(words * Lanes)
		mean := float64(total) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(mean-p) > 5*sigma {
			t.Errorf("p=%v: observed rate %.5f is %.1f sigma off", p, mean, math.Abs(mean-p)/sigma)
		}
	}
}

// TestSamplerMarginalsMatchScalar is the satellite statistical-equivalence
// property: per qubit, the packed sampler's marginal X/Z/erasure rates must
// agree with the scalar NoiseModel sampler's within binomial confidence
// bounds, so the two stream families can never silently diverge in
// distribution. The Core-halved uniform model makes the rates heterogeneous
// across qubits.
func TestSamplerMarginalsMatchScalar(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	const p, e = 0.07, 0.18
	nm := surfacecode.UniformNoise(code, p, e)
	n := code.NumData()

	const batches = 2500
	const trials = batches * Lanes
	s, err := NewSampler(n, nm)
	if err != nil {
		t.Fatal(err)
	}
	planes := NewPlanes(n)
	root := rng.New(7).Split("marginals")
	packedX := make([]int, n)
	packedZ := make([]int, n)
	packedE := make([]int, n)
	for b := 0; b < batches; b++ {
		s.SampleInto(planes, root.SplitN("batch", b))
		for q := 0; q < n; q++ {
			packedX[q] += bits.OnesCount64(planes.X[q])
			packedZ[q] += bits.OnesCount64(planes.Z[q])
			packedE[q] += bits.OnesCount64(planes.Erase[q])
		}
	}

	scalarX := make([]int, n)
	scalarZ := make([]int, n)
	scalarE := make([]int, n)
	scalarSrc := rng.New(7).Split("scalar-marginals")
	var f quantum.Frame
	var erased []bool
	for i := 0; i < trials; i++ {
		f, erased = nm.SampleInto(scalarSrc.SplitN("t", i), f, erased)
		for q := 0; q < n; q++ {
			if f[q].HasX() {
				scalarX[q]++
			}
			if f[q].HasZ() {
				scalarZ[q]++
			}
			if erased[q] {
				scalarE[q]++
			}
		}
	}

	// Expected marginals: P(erase) = e_q; a flip plane bit is set with
	// probability e_q/2 (uniform Pauli on erased lanes) + (1-e_q)·p_q.
	check := func(name string, counts []int, want func(q int) float64, trials int) {
		for q := 0; q < n; q++ {
			m := want(q)
			got := float64(counts[q]) / float64(trials)
			sigma := math.Sqrt(m * (1 - m) / float64(trials))
			if math.Abs(got-m) > 5*sigma {
				t.Errorf("%s qubit %d: rate %.5f vs expected %.5f (%.1f sigma)",
					name, q, got, m, math.Abs(got-m)/sigma)
			}
		}
	}
	xWant := func(q int) float64 { return nm.Erase[q]/2 + (1-nm.Erase[q])*nm.Pauli[q] }
	eWant := func(q int) float64 { return nm.Erase[q] }
	check("packed X", packedX, xWant, trials)
	check("packed Z", packedZ, xWant, trials)
	check("packed erase", packedE, eWant, trials)
	check("scalar X", scalarX, xWant, trials)
	check("scalar Z", scalarZ, xWant, trials)
	check("scalar erase", scalarE, eWant, trials)
}

// TestSampleIntoOverwrites guards against accumulation across batches.
func TestSampleIntoOverwrites(t *testing.T) {
	code := surfacecode.MustNew(3, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0, 0) // noiseless: all planes must zero
	s, err := NewSampler(code.NumData(), nm)
	if err != nil {
		t.Fatal(err)
	}
	planes := NewPlanes(code.NumData())
	for q := range planes.X {
		planes.X[q], planes.Z[q], planes.Erase[q] = ^uint64(0), ^uint64(0), ^uint64(0)
	}
	s.SampleInto(planes, rng.New(3))
	for q := range planes.X {
		if planes.X[q] != 0 || planes.Z[q] != 0 || planes.Erase[q] != 0 {
			t.Fatalf("qubit %d planes not overwritten: %#x %#x %#x", q, planes.X[q], planes.Z[q], planes.Erase[q])
		}
	}
}
