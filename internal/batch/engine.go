package batch

import (
	"fmt"
	"math/bits"

	"surfnet/internal/decoder"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// Stats counts the per-lane decode-path decisions of one Run. Each lane is
// decided once per decoding graph, so the three counters sum to 2×lanes.
type Stats struct {
	// FastLanes took the packed erasure-peeling fast path.
	FastLanes int
	// FallbackLanes fell back to the scalar decoder because their
	// syndromes touch non-erased growth.
	FallbackLanes int
	// EmptyLanes had no syndromes on the graph and needed no decode.
	EmptyLanes int
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.FastLanes += o.FastLanes
	s.FallbackLanes += o.FallbackLanes
	s.EmptyLanes += o.EmptyLanes
}

// Engine decodes 64 Monte Carlo trials per Run call: packed sampling and
// syndrome extraction always cover all 64 lanes in O(qubits) word operations;
// the decode step takes the erasure-peeling fast path for lanes whose
// syndromes are fully explained by even-or-boundary erasure clusters and
// falls back to the scalar decoder, verbatim, for the rest. The logical
// verdict of every lane is bit-for-bit the scalar pipeline's verdict
// (decoder.DecodeFrame) on the identical error realization.
//
// An Engine is NOT safe for concurrent use: it owns its scratch arenas.
// Parallel sweeps give each worker its own Engine (sim.Scratch) and split
// the rng stream per batch index, never per worker.
type Engine struct {
	code    *surfacecode.Code
	dec     decoder.ScratchDecoder
	sampler *Sampler
	probs   []float64

	planes         *Planes
	residX, residZ []uint64
	parity         []uint64

	synByLane    [Lanes][]int
	erasedByLane [Lanes][]int32
	laneErased   []bool
	peel         *peeler
	pgs          [2]packedGraph
	scratch      *decoder.Scratch
}

// packedGraph caches one decoding graph's dense edge list in flat arrays so
// the packed folds and the per-lane peels skip the Edge struct round trip on
// every access.
type packedGraph struct {
	dg      *surfacecode.DecodingGraph
	u, v    []int32 // dense edge index -> endpoints
	id      []int32 // dense edge index -> data qubit id
	numReal int
}

func newPackedGraph(dg *surfacecode.DecodingGraph) packedGraph {
	nE := dg.G.NumEdges()
	pg := packedGraph{
		dg:      dg,
		u:       make([]int32, nE),
		v:       make([]int32, nE),
		id:      make([]int32, nE),
		numReal: dg.NumReal,
	}
	for ei := 0; ei < nE; ei++ {
		ed := dg.G.Edge(ei)
		pg.u[ei], pg.v[ei], pg.id[ei] = int32(ed.U), int32(ed.V), int32(ed.ID)
	}
	return pg
}

// NewEngine builds a packed engine for code under noise model nm, decoding
// with dec. Only decoders that pre-absorb erasures into the initial cluster
// support are accepted — decoder.UnionFind and decoder.SurfNet with
// FiniteErasureGrowth unset — because only for those is the erasure-peeling
// fast path provably verdict-identical to the scalar decode.
func NewEngine(code *surfacecode.Code, nm *surfacecode.NoiseModel, dec decoder.Decoder) (*Engine, error) {
	switch d := dec.(type) {
	case decoder.UnionFind:
	case decoder.SurfNet:
		if d.FiniteErasureGrowth {
			return nil, fmt.Errorf("batch: SurfNet with FiniteErasureGrowth grows erasures incrementally; the packed erasure fast path is only verdict-equivalent to decoders that pre-absorb erasures")
		}
	default:
		return nil, fmt.Errorf("batch: decoder %s is not supported by the packed engine (the erasure fast path requires erasure-pre-absorbing cluster growth)", dec.Name())
	}
	sd, ok := dec.(decoder.ScratchDecoder)
	if !ok {
		return nil, fmt.Errorf("batch: decoder %s does not support scratch decoding", dec.Name())
	}
	n := code.NumData()
	sampler, err := NewSampler(n, nm)
	if err != nil {
		return nil, err
	}
	nv := code.Graph(surfacecode.ZGraph).G.NumVertices()
	if x := code.Graph(surfacecode.XGraph).G.NumVertices(); x > nv {
		nv = x
	}
	e := &Engine{
		code:       code,
		dec:        sd,
		sampler:    sampler,
		probs:      nm.EdgeErrorProb(),
		planes:     NewPlanes(n),
		laneErased: make([]bool, n),
		peel:       newPeeler(nv),
		scratch:    decoder.NewScratch(),
	}
	e.pgs[0] = newPackedGraph(code.Graph(surfacecode.ZGraph))
	e.pgs[1] = newPackedGraph(code.Graph(surfacecode.XGraph))
	return e, nil
}

// Planes exposes the engine's bit planes for the batch sampled by the last
// Run — the equivalence tests unpack lanes from here to replay them through
// the scalar oracle. The planes are overwritten by the next Run.
func (e *Engine) Planes() *Planes { return e.planes }

// Run samples one packed batch of error realizations from src and decodes
// lanes [0, lanes). Bit l of the returned word is set when lane l suffered a
// logical error (on either graph) — the event the paper's logical error rate
// counts. Bits at and above lanes are always zero. Sampling always draws all
// 64 lanes so that the stream consumed per batch is independent of the
// requested lane count.
func (e *Engine) Run(src *rng.Source, lanes int) (failed uint64, stats Stats, err error) {
	if lanes <= 0 || lanes > Lanes {
		return 0, stats, fmt.Errorf("batch: lane count %d outside [1,%d]", lanes, Lanes)
	}
	active := LaneMask(lanes)
	e.sampler.SampleInto(e.planes, src)
	e.residX = append(e.residX[:0], e.planes.X...)
	e.residZ = append(e.residZ[:0], e.planes.Z...)

	// X-type components live on the Z-graph; corrections are X flips.
	if err := e.decodeGraph(surfacecode.ZGraph, e.residX, lanes, &stats); err != nil {
		return 0, stats, err
	}
	// Z-type components live on the X-graph; corrections are Z flips.
	if err := e.decodeGraph(surfacecode.XGraph, e.residZ, lanes, &stats); err != nil {
		return 0, stats, err
	}

	// Logical verdict: odd overlap of the residual with the homology cut,
	// folded across all lanes at once.
	var failX, failZ uint64
	for _, q := range e.code.Graph(surfacecode.ZGraph).CutQubits {
		failX ^= e.residX[q]
	}
	for _, q := range e.code.Graph(surfacecode.XGraph).CutQubits {
		failZ ^= e.residZ[q]
	}
	return (failX | failZ) & active, stats, nil
}

// decodeGraph extracts the packed syndromes of resid on one decoding graph,
// decodes every active lane, and applies the corrections to resid in place.
// On return the packed parity of resid is verified to be zero on all active
// lanes, mirroring the residual-syndrome check of the scalar pipeline.
func (e *Engine) decodeGraph(kind surfacecode.GraphKind, resid []uint64, lanes int, stats *Stats) error {
	dg := e.code.Graph(kind)
	pg := &e.pgs[kind-surfacecode.ZGraph]
	nv := dg.NumReal
	nE := len(pg.id)
	active := LaneMask(lanes)

	// Packed syndrome extraction: one XOR-fold over the edges covers all 64
	// lanes. Dense edge index ei is the data-qubit id (edges are added in
	// qubit order), so resid indexes directly.
	par := growWords(e.parity, nv)
	for ei := 0; ei < nE; ei++ {
		w := resid[pg.id[ei]]
		if u := int(pg.u[ei]); u < nv {
			par[u] ^= w
		}
		if v := int(pg.v[ei]); v < nv {
			par[v] ^= w
		}
	}
	e.parity = par

	// Transpose to per-lane syndrome lists in ascending vertex order — the
	// same output order as Code.Syndrome, which the fallback decoders and
	// the fast-path peel both observe.
	for l := 0; l < lanes; l++ {
		e.synByLane[l] = e.synByLane[l][:0]
	}
	for v := 0; v < nv; v++ {
		w := par[v] & active
		for w != 0 {
			l := bits.TrailingZeros64(w)
			w &= w - 1
			e.synByLane[l] = append(e.synByLane[l], v)
		}
	}
	// Per-lane erased edge lists in ascending dense-index order — exactly
	// the order growClusters pre-grows erasures, so a fast-path peel sees a
	// byte-identical support.
	for l := 0; l < lanes; l++ {
		e.erasedByLane[l] = e.erasedByLane[l][:0]
	}
	for ei := 0; ei < nE; ei++ {
		w := e.planes.Erase[pg.id[ei]] & active
		for w != 0 {
			l := bits.TrailingZeros64(w)
			w &= w - 1
			e.erasedByLane[l] = append(e.erasedByLane[l], int32(ei))
		}
	}

	for l := 0; l < lanes; l++ {
		syn := e.synByLane[l]
		if len(syn) == 0 {
			// Empty syndrome ⇒ empty correction (both scalar decoders
			// short-circuit identically). Any syndrome-free logical error
			// on erased qubits survives into the verdict fold.
			stats.EmptyLanes++
			continue
		}
		laneBit := uint64(1) << uint(l)

		// Fast path: peel the erased support with the version-stamped
		// packed peeler — O(|support|) per lane, no per-lane clearing. It
		// refuses exactly when growClusters would have grown beyond the
		// erasures (the cluster invariant fails); the lane then falls back
		// to the scalar decoder verbatim, which is the only point where
		// the dense per-qubit erasure mask is materialized.
		corr, ok := e.peel.peelLane(pg, e.erasedByLane[l], syn)
		if ok {
			stats.FastLanes++
		} else {
			stats.FallbackLanes++
			for _, ei := range e.erasedByLane[l] {
				e.laneErased[pg.id[ei]] = true
			}
			in := decoder.Input{
				Graph:     dg,
				Syndromes: syn,
				Erased:    e.laneErased,
				ErrorProb: e.probs,
			}
			var err error
			corr, err = e.dec.DecodeWith(in, e.scratch)
			for _, ei := range e.erasedByLane[l] {
				e.laneErased[pg.id[ei]] = false
			}
			if err != nil {
				return fmt.Errorf("batch: lane %d %v-graph fallback decode: %w", l, kind, err)
			}
		}
		for _, q := range corr {
			resid[q] ^= laneBit
		}
	}

	// Packed verification, the analogue of the scalar pipeline's residual
	// syndrome check: the corrected planes must be syndrome-free on every
	// active lane.
	for v := range par {
		par[v] = 0
	}
	for ei := 0; ei < nE; ei++ {
		w := resid[pg.id[ei]]
		if u := int(pg.u[ei]); u < nv {
			par[u] ^= w
		}
		if v := int(pg.v[ei]); v < nv {
			par[v] ^= w
		}
	}
	for v := 0; v < nv; v++ {
		if left := par[v] & active; left != 0 {
			return fmt.Errorf("batch: decoder %s left a %v-graph syndrome at vertex %d on lane %d",
				e.dec.Name(), kind, v, bits.TrailingZeros64(left))
		}
	}
	return nil
}
