package batch

import (
	"fmt"
	"math"

	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// coin draws 64 independent Bernoulli(p) bits at a time. Two strategies,
// picked at compile time by success density:
//
//   - Sparse (expected set bits per word below denseCutoff): geometric gap
//     sampling — one uniform per *set* bit (expected 64·p draws), skipping
//     ahead by the geometrically distributed gap k = ⌊log(1−u)/log(1−p)⌋
//     between successes.
//   - Dense: fixed-point comparison — the word's 64 lanes compare a lazily
//     revealed uniform against p's 64-bit binary expansion MSB-first, one raw
//     word per revealed bit. Each draw halves the undecided lane set, so the
//     expected draw count is ≲ log₂64 + 2 regardless of p, and the lane
//     marginal is *exactly* Bernoulli(pf/2⁶⁴).
//
// For p > 1/2 the complement coin is sampled and the word inverted, so the
// effective probability is always in (0, 1/2].
type coin struct {
	p        float64 // effective success probability, in (0, 1/2]
	invLn1p  float64 // 1 / log1p(-p), negative (sparse strategy)
	pf       uint64  // round(p·2⁶⁴), nonzero iff the dense strategy is used
	flip     bool    // sampled coin is the complement of the requested one
	constant uint64  // used when degenerate is set
	degen    bool    // p <= 0 or p >= 1: no randomness needed
}

// denseCutoff is the expected set-bit count per word above which the dense
// fixed-point strategy beats geometric skipping (~8 draws per word either
// way, but the dense draws skip the log evaluation).
const denseCutoff = 8.0

func makeCoin(p float64) coin {
	switch {
	case p <= 0:
		return coin{degen: true, constant: 0}
	case p >= 1:
		return coin{degen: true, constant: ^uint64(0)}
	case p > 0.5:
		c := makeCoin(1 - p)
		c.flip = !c.flip
		return c
	case p*Lanes > denseCutoff:
		// p ≤ 1/2, so p·2⁶⁴ ≤ 2⁶³ fits; the product is exact because
		// scaling a float64 by a power of two only shifts the exponent.
		return coin{p: p, pf: uint64(math.Round(p * (1 << 63) * 2))}
	default:
		return coin{p: p, invLn1p: 1 / math.Log1p(-p)}
	}
}

// word draws one 64-lane Bernoulli word from src.
func (c *coin) word(src *rng.Source) uint64 {
	if c.degen {
		return c.constant
	}
	var w uint64
	if c.pf != 0 {
		// Dense fixed-point comparison: lane l succeeds iff its uniform
		// U_l < p. U's bits are revealed MSB-first, one packed word per
		// position, against the matching bit of pf; a lane is decided at
		// the first position where the bits differ. Once pf runs out of
		// set bits no undecided lane can still succeed.
		undecided := ^uint64(0)
		for pf := c.pf; pf != 0 && undecided != 0; pf <<= 1 {
			u := src.Uint64()
			if pf&(1<<63) != 0 {
				w |= undecided &^ u
				undecided &= u
			} else {
				undecided &^= u
			}
		}
	} else {
		pos := 0
		for {
			u := src.Float64()
			// math.Log1p(-u) is finite because Float64 ∈ [0,1).
			gap := math.Log1p(-u) * c.invLn1p
			if gap >= float64(Lanes-pos) {
				break
			}
			pos += int(gap)
			w |= uint64(1) << uint(pos)
			pos++
			if pos >= Lanes {
				break
			}
		}
	}
	if c.flip {
		w = ^w
	}
	return w
}

// Sampler draws packed 64-lane error realizations distributionally equivalent
// to surfacecode.NoiseModel sampling: per qubit q and lane l, the qubit is
// erased with probability Erase[q] (and then carries a uniform Pauli from
// {I, X, Y, Z}); otherwise it suffers independent X and Z flips with
// probability Pauli[q] each.
//
// The draw schedule is data- and rate-dependent (geometric skipping draws one
// uniform per set bit, the dense strategy one word per revealed comparison
// bit, plus two raw words per qubit with any erased lane), so the packed
// stream is NOT bitwise compatible with the scalar sampler's stream — see the
// package comment for the stream-splitting contract. Statistical equivalence
// is property-tested in sampler_test.go.
type Sampler struct {
	erase []coin
	pauli []coin
}

// NewSampler compiles the per-qubit coins for nm over n data qubits.
func NewSampler(n int, nm *surfacecode.NoiseModel) (*Sampler, error) {
	if err := nm.Validate(); err != nil {
		return nil, err
	}
	if len(nm.Pauli) != n {
		return nil, fmt.Errorf("batch: noise model covers %d qubits, code has %d", len(nm.Pauli), n)
	}
	s := &Sampler{
		erase: make([]coin, n),
		pauli: make([]coin, n),
	}
	for q := 0; q < n; q++ {
		s.erase[q] = makeCoin(nm.Erase[q])
		s.pauli[q] = makeCoin(nm.Pauli[q])
	}
	return s, nil
}

// SampleInto fills p with one packed batch of 64 error realizations drawn
// from src. The planes are overwritten, not accumulated.
func (s *Sampler) SampleInto(p *Planes, src *rng.Source) {
	n := len(s.erase)
	p.Reset(n)
	for q := 0; q < n; q++ {
		e := s.erase[q].word(src)
		p.Erase[q] = e
		var x, z uint64
		if e != 0 {
			// Erased lanes carry a uniform Pauli: independent fair X and Z
			// bits, masked to the erased lanes.
			x = src.Uint64() & e
			z = src.Uint64() & e
		}
		if e != ^uint64(0) {
			// Intact lanes suffer independent Bernoulli(p) X and Z flips.
			keep := ^e
			x |= s.pauli[q].word(src) & keep
			z |= s.pauli[q].word(src) & keep
		}
		p.X[q] = x
		p.Z[q] = z
	}
}
