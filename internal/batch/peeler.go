package batch

import "math/bits"

// peeler is the packed-path replica of the scalar peeling decoder
// (internal/decoder.peel), restructured for 64-lanes-per-batch throughput:
// every per-lane buffer is version-stamped instead of cleared, so one lane's
// peel costs O(|support| + |syndromes|) instead of O(graph). The forest
// construction, adjacency append order, boundary-first BFS rooting, and
// reverse-BFS peel replicate the scalar implementation decision-for-decision,
// so an eligible lane's correction is element-identical to what
// decoder.PeelErasure returns on the same input (property-tested in
// peeler_test.go).
type peeler struct {
	cur uint64

	// Versioned union-find over graph vertices (forest construction).
	parent  []int32
	rank    []int8
	ufStamp []uint64

	// Forest adjacency, rebuilt per lane; each entry packs the dense edge
	// index (high word) with the far endpoint (low word) so traversal
	// never re-derives the other endpoint. touched lists the vertices
	// with at least one forest edge this lane, in first-touch order, and
	// touchedBits mirrors it as a bitmap so the rooting pass can walk the
	// forest's vertices in ascending order without sorting.
	adj         [][]uint64
	adjStamp    []uint64
	touched     []int
	touchedBits []uint64

	// Live syndrome mask, folded into one stamp word per vertex: cur means
	// on, cur+1 means off, anything else is a stale lane. cur advances by 2
	// per lane so the off value never collides with a later lane's stamp.
	synState []uint64

	// BFS rooting state; queue doubles as the global BFS visit order the
	// peel pass replays backwards. parentPack records each visited vertex's
	// (parent edge << 32 | parent vertex), rootMark for tree roots.
	visStamp   []uint64
	parentPack []uint64
	queue      []int

	corr []int
}

// rootMark flags a BFS tree root in parentPack (no parent edge).
const rootMark = ^uint64(0)

func newPeeler(nv int) *peeler {
	return &peeler{
		parent:      make([]int32, nv),
		rank:        make([]int8, nv),
		ufStamp:     make([]uint64, nv),
		adj:         make([][]uint64, nv),
		adjStamp:    make([]uint64, nv),
		touchedBits: make([]uint64, (nv+63)/64),
		synState:    make([]uint64, nv),
		visStamp:    make([]uint64, nv),
		parentPack:  make([]uint64, nv),
	}
}

func (p *peeler) find(v int) int {
	if p.ufStamp[v] != p.cur {
		p.ufStamp[v] = p.cur
		p.parent[v] = int32(v)
		p.rank[v] = 0
		return v
	}
	for int(p.parent[v]) != v {
		p.parent[v] = p.parent[p.parent[v]] // path halving
		v = int(p.parent[v])
		if p.ufStamp[v] != p.cur {
			p.ufStamp[v] = p.cur
			p.parent[v] = int32(v)
			p.rank[v] = 0
			return v
		}
	}
	return v
}

// union merges the components of u and v, reporting whether they were
// distinct. Only the merged bit feeds the forest, so the root choice is free.
func (p *peeler) union(u, v int) bool {
	ru, rv := p.find(u), p.find(v)
	if ru == rv {
		return false
	}
	if p.rank[ru] < p.rank[rv] {
		ru, rv = rv, ru
	}
	p.parent[rv] = int32(ru)
	if p.rank[ru] == p.rank[rv] {
		p.rank[ru]++
	}
	return true
}

func (p *peeler) addAdj(v, other int, ei int32) {
	if p.adjStamp[v] != p.cur {
		p.adjStamp[v] = p.cur
		p.adj[v] = p.adj[v][:0]
		p.touched = append(p.touched, v)
		p.touchedBits[v>>6] |= 1 << uint(v&63)
	}
	p.adj[v] = append(p.adj[v], uint64(uint32(ei))<<32|uint64(uint32(other)))
}

func (p *peeler) adjAt(v int) []uint64 {
	if p.adjStamp[v] != p.cur {
		return nil
	}
	return p.adj[v]
}

func (p *peeler) syn(v int) bool { return p.synState[v] == p.cur }

func (p *peeler) setSyn(v int, on bool) {
	if on {
		p.synState[v] = p.cur
	} else {
		p.synState[v] = p.cur + 1
	}
}

func (p *peeler) toggleSyn(v int) {
	if p.synState[v] == p.cur {
		p.synState[v] = p.cur + 1
	} else {
		p.synState[v] = p.cur
	}
}

// peelLane peels one lane's erased support (dense edge indices, ascending)
// against its syndromes (real vertices, ascending). It returns the
// correction as data-qubit indices, aliasing an internal buffer valid until
// the next call, and reports whether the support satisfied the cluster
// invariant; ok == false means the lane needs full cluster growth and the
// emitted correction must be discarded.
func (p *peeler) peelLane(pg *packedGraph, support []int32, syndromes []int) ([]int, bool) {
	// Sparse reset: wipe the previous lane's touched bitmap, then bump the
	// stamp that invalidates every other per-vertex array.
	for _, v := range p.touched {
		p.touchedBits[v>>6] &^= 1 << uint(v&63)
	}
	p.touched = p.touched[:0]
	p.cur += 2 // cur is always even; cur+1 is this lane's syndrome-off value

	// Spanning forest of the support, in support order.
	for _, ei := range support {
		u, v := int(pg.u[ei]), int(pg.v[ei])
		if p.union(u, v) {
			p.addAdj(u, v, ei)
			p.addAdj(v, u, ei)
		}
	}
	for _, v := range syndromes {
		p.setSyn(v, true)
	}

	// Root each tree, boundary vertices first, then the support's vertices
	// in ascending order — the scalar peel scans all vertices ascending,
	// and only support vertices have adjacency, so the rooting order is
	// identical. The queue is shared across all trees: FIFO insertion
	// order IS the global BFS visit order the peel pass replays backwards.
	queue := p.queue[:0]
	head := 0
	bfsFrom := func(root int) {
		p.visStamp[root] = p.cur
		p.parentPack[root] = rootMark
		queue = append(queue, root)
		for ; head < len(queue); head++ {
			v := queue[head]
			for _, pe := range p.adjAt(v) {
				u := int(uint32(pe))
				if p.visStamp[u] != p.cur {
					p.visStamp[u] = p.cur
					p.parentPack[u] = pe&^(1<<32-1) | uint64(uint32(v))
					queue = append(queue, u)
				}
			}
		}
	}
	for _, b := range []int{pg.dg.BoundaryA(), pg.dg.BoundaryB()} {
		if p.visStamp[b] != p.cur {
			bfsFrom(b)
		}
	}
	for w, word := range p.touchedBits {
		for word != 0 {
			v := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if p.visStamp[v] != p.cur {
				bfsFrom(v)
			}
		}
	}
	p.queue = queue

	// Peel in reverse BFS order: a peeled vertex hands its live syndrome to
	// its parent through its parent edge.
	corr := p.corr[:0]
	for i := len(queue) - 1; i >= 0; i-- {
		v := queue[i]
		pp := p.parentPack[v]
		if pp == rootMark {
			continue
		}
		if p.syn(v) {
			p.setSyn(v, false)
			corr = append(corr, int(pg.id[int32(pp>>32)]))
			p.toggleSyn(int(uint32(pp)))
		}
	}
	p.corr = corr

	// Cluster-invariant check: leftover parity may only sit on boundary
	// vertices. Live syndromes can only remain where one started or was
	// toggled to — the syndrome list and the forest vertices.
	for _, v := range syndromes {
		if p.syn(v) {
			return nil, false
		}
	}
	for _, v := range p.touched {
		if v < pg.numReal && p.syn(v) {
			return nil, false
		}
	}
	return corr, true
}
