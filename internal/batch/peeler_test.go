package batch

import (
	"errors"
	"testing"

	"surfnet/internal/decoder"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestPeelerMatchesScalarPeel pins the version-stamped packed peeler to the
// scalar reference decoder.PeelErasure: on every sampled lane, either both
// refuse (cluster invariant violated) or both succeed with element-identical
// corrections in identical order. One peeler instance is reused across all
// lanes, graphs, and distances, so the stamp-based reset discipline is
// exercised across thousands of consecutive calls.
func TestPeelerMatchesScalarPeel(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		for _, pt := range []struct {
			p, e float64
		}{
			{0.00, 0.30}, // pure erasure: every lane must peel
			{0.06, 0.18}, // mixed: refusals must agree with the scalar peel
		} {
			code := surfacecode.MustNew(d, surfacecode.CoreLShape)
			n := code.NumData()
			nm := surfacecode.UniformNoise(code, pt.p, pt.e)
			probs := nm.EdgeErrorProb()
			sampler, err := NewSampler(n, nm)
			if err != nil {
				t.Fatal(err)
			}
			nv := code.Graph(surfacecode.ZGraph).G.NumVertices()
			if x := code.Graph(surfacecode.XGraph).G.NumVertices(); x > nv {
				nv = x
			}
			p := newPeeler(nv)
			planes := NewPlanes(n)
			root := rng.New(99).Split("peeler-equiv")
			var frame quantum.Frame
			var erased []bool
			refusals, successes := 0, 0
			for b := 0; b < 4; b++ {
				sampler.SampleInto(planes, root.SplitN("batch", b))
				for l := 0; l < Lanes; l++ {
					frame, erased = planes.Unpack(l, frame, erased)
					var support []int
					var support32 []int32
					for q := 0; q < n; q++ {
						if erased[q] {
							support = append(support, q)
							support32 = append(support32, int32(q))
						}
					}
					for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
						dg := code.Graph(kind)
						pg := newPackedGraph(dg)
						syn := code.Syndrome(kind, frame)
						if len(syn) == 0 {
							continue
						}
						in := decoder.Input{Graph: dg, Syndromes: syn, Erased: erased, ErrorProb: probs}
						want, wantErr := decoder.PeelErasure(in, support, nil)
						got, ok := p.peelLane(&pg, support32, syn)
						if wantErr != nil {
							if !errors.Is(wantErr, decoder.ErrClusterInvariant) {
								t.Fatalf("d=%d p=%v lane %d %v: scalar peel error: %v", d, pt.p, l, kind, wantErr)
							}
							if ok {
								t.Fatalf("d=%d p=%v lane %d %v: scalar peel refused but packed peeler accepted", d, pt.p, l, kind)
							}
							refusals++
							continue
						}
						if !ok {
							t.Fatalf("d=%d p=%v lane %d %v: packed peeler refused but scalar peel succeeded", d, pt.p, l, kind)
						}
						successes++
						if len(got) != len(want) {
							t.Fatalf("d=%d p=%v lane %d %v: correction length %d, want %d", d, pt.p, l, kind, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("d=%d p=%v lane %d %v: corr[%d] = %d, want %d\ngot  %v\nwant %v",
									d, pt.p, l, kind, i, got[i], want[i], got, want)
							}
						}
					}
				}
			}
			if successes == 0 {
				t.Errorf("d=%d p=%v e=%v: no successful peels sampled", d, pt.p, pt.e)
			}
			if pt.p > 0 && refusals == 0 {
				t.Errorf("d=%d p=%v e=%v: mixed noise never exercised the refusal path", d, pt.p, pt.e)
			}
		}
	}
}
