package batch_test

import (
	"fmt"
	"testing"

	"surfnet/internal/batch"
	"surfnet/internal/decoder"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// equivGrid mixes Pauli-dominated, erasure-dominated, pure-erasure, and
// pure-Pauli points so both decode paths (fast peel and scalar fallback) are
// exercised heavily.
var equivGrid = []struct{ p, e float64 }{
	{0.050, 0.15}, // Fig 8 low end
	{0.085, 0.15}, // Fig 8 high end
	{0.005, 0.24}, // erasure-dominated: fast path fires almost always
	{0.000, 0.30}, // pure erasure: fast path must fire on every syndrome
	{0.120, 0.00}, // pure Pauli: every non-empty lane must fall back
}

// TestLaneVsScalarEquivalence is the tentpole property: for every lane of
// every packed batch, the engine's logical-error verdict must equal the
// scalar pipeline's verdict (decoder.DecodeFrame) on the identical error
// realization, unpacked from the engine's own planes.
func TestLaneVsScalarEquivalence(t *testing.T) {
	decs := []decoder.Decoder{decoder.UnionFind{}, decoder.SurfNet{}}
	const batches = 3
	for _, d := range []int{3, 5, 7, 9} {
		code := surfacecode.MustNew(d, surfacecode.CoreLShape)
		for _, pt := range equivGrid {
			nm := surfacecode.UniformNoise(code, pt.p, pt.e)
			probs := nm.EdgeErrorProb()
			for _, dec := range decs {
				eng, err := batch.NewEngine(code, nm, dec)
				if err != nil {
					t.Fatalf("d=%d %s: NewEngine: %v", d, dec.Name(), err)
				}
				root := rng.New(99).Split(fmt.Sprintf("equiv/%s/%d/%v/%v", dec.Name(), d, pt.p, pt.e))
				var frame quantum.Frame
				var erased []bool
				var stats batch.Stats
				for bi := 0; bi < batches; bi++ {
					lanes := batch.Lanes
					if bi == 1 {
						lanes = 17 // partial batch: tail of a trial count
					}
					failed, st, err := eng.Run(root.SplitN("batch", bi), lanes)
					if err != nil {
						t.Fatalf("d=%d %s batch %d: %v", d, dec.Name(), bi, err)
					}
					stats.Add(st)
					if high := failed & ^batch.LaneMask(lanes); high != 0 {
						t.Fatalf("d=%d %s batch %d: verdict bits set above lane %d: %#x", d, dec.Name(), bi, lanes, high)
					}
					for l := 0; l < lanes; l++ {
						frame, erased = eng.Planes().Unpack(l, frame, erased)
						res, err := decoder.DecodeFrame(code, dec, frame, erased, probs)
						if err != nil {
							t.Fatalf("d=%d %s batch %d lane %d: scalar oracle: %v", d, dec.Name(), bi, l, err)
						}
						got := failed>>uint(l)&1 == 1
						if got != res.Failed() {
							t.Errorf("d=%d p=%v e=%v %s batch %d lane %d: packed verdict %v, scalar oracle %v",
								d, pt.p, pt.e, dec.Name(), bi, l, got, res.Failed())
						}
					}
				}
				if pt.e > 0 && pt.p == 0 && stats.FallbackLanes != 0 {
					t.Errorf("d=%d %s pure-erasure point took %d fallback lanes; erasure syndromes must always peel",
						d, dec.Name(), stats.FallbackLanes)
				}
				if pt.e == 0 && stats.FastLanes != 0 {
					t.Errorf("d=%d %s pure-Pauli point took %d fast lanes; without erasures nothing is peelable",
						d, dec.Name(), stats.FastLanes)
				}
			}
		}
	}
}

// TestEngineDeterminism pins the stream contract: the same source seed yields
// the same verdict mask, and stats account for every lane on both graphs.
func TestEngineDeterminism(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.06, 0.15)
	run := func() (uint64, batch.Stats) {
		eng, err := batch.NewEngine(code, nm, decoder.SurfNet{})
		if err != nil {
			t.Fatal(err)
		}
		failed, stats, err := eng.Run(rng.New(4242).Split("det"), 50)
		if err != nil {
			t.Fatal(err)
		}
		return failed, stats
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Fatalf("same stream diverged: %#x/%+v vs %#x/%+v", f1, s1, f2, s2)
	}
	if got := s1.FastLanes + s1.FallbackLanes + s1.EmptyLanes; got != 2*50 {
		t.Fatalf("stats cover %d lane-graph decisions, want %d", got, 2*50)
	}
}

// TestNewEngineRejectsUnsupportedDecoders pins the fast-path safety boundary:
// only decoders that pre-absorb erasures into the initial cluster support may
// share the packed erasure-peeling path.
func TestNewEngineRejectsUnsupportedDecoders(t *testing.T) {
	code := surfacecode.MustNew(3, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.05, 0.15)
	for _, dec := range []decoder.Decoder{
		decoder.SurfNet{FiniteErasureGrowth: true},
		decoder.MWPM{},
	} {
		if _, err := batch.NewEngine(code, nm, dec); err == nil {
			t.Errorf("NewEngine accepted %s (FiniteErasureGrowth=%v)", dec.Name(), dec)
		}
	}
	for _, dec := range []decoder.Decoder{
		decoder.UnionFind{},
		decoder.SurfNet{},
		decoder.SurfNet{StepSize: 0.5},
	} {
		if _, err := batch.NewEngine(code, nm, dec); err != nil {
			t.Errorf("NewEngine rejected %s: %v", dec.Name(), err)
		}
	}
}

// TestEngineRunLaneBounds pins the lane-count validation.
func TestEngineRunLaneBounds(t *testing.T) {
	code := surfacecode.MustNew(3, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.05, 0.15)
	eng, err := batch.NewEngine(code, nm, decoder.UnionFind{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range []int{0, -1, batch.Lanes + 1} {
		if _, _, err := eng.Run(rng.New(1), lanes); err == nil {
			t.Errorf("Run accepted lane count %d", lanes)
		}
	}
}
