package decoder_test

import (
	"errors"
	"testing"

	"surfnet/internal/batch"
	"surfnet/internal/decoder"
	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestPeelErasurePackedSupports drives the peeling decoder through supports
// produced by the packed sampler (internal/batch): each lane's erasure mask
// becomes the support, its sampled error the syndrome source. On erasure-only
// noise every lane must peel cleanly; with Pauli noise mixed in, any peel
// refusal must be the cluster-invariant sentinel that triggers the engine's
// scalar fallback.
func TestPeelErasurePackedSupports(t *testing.T) {
	for _, pt := range []struct {
		p, e float64
	}{
		{0.00, 0.25}, // pure erasure: invariant always holds
		{0.08, 0.15}, // mixed: refusals allowed, but only via the sentinel
	} {
		c := surfacecode.MustNew(5, surfacecode.CoreLShape)
		n := c.NumData()
		nm := surfacecode.UniformNoise(c, pt.p, pt.e)
		probs := nm.EdgeErrorProb()
		sampler, err := batch.NewSampler(n, nm)
		if err != nil {
			t.Fatal(err)
		}
		planes := batch.NewPlanes(n)
		root := rng.New(17).Split("packed-supports")
		var frame quantum.Frame
		var erased []bool
		refused := 0
		for b := 0; b < 6; b++ {
			sampler.SampleInto(planes, root.SplitN("batch", b))
			for l := 0; l < batch.Lanes; l++ {
				frame, erased = planes.Unpack(l, frame, erased)
				var support []int
				for q := 0; q < n; q++ {
					if erased[q] {
						support = append(support, q) // dense edge index == qubit id
					}
				}
				for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
					in := decoder.Input{
						Graph:     c.Graph(kind),
						Syndromes: c.Syndrome(kind, frame),
						Erased:    erased,
						ErrorProb: probs,
					}
					corr, err := decoder.PeelErasure(in, support, nil)
					if err != nil {
						if !errors.Is(err, decoder.ErrClusterInvariant) {
							t.Fatalf("p=%v e=%v lane %d %v: unexpected peel error: %v", pt.p, pt.e, l, kind, err)
						}
						if pt.p == 0 {
							t.Fatalf("p=0 e=%v lane %d %v: pure-erasure support refused: %v", pt.e, l, kind, err)
						}
						refused++
						continue
					}
					// Verify the correction clears the lane's syndromes.
					resid := frame.Clone()
					op := quantum.X
					if kind == surfacecode.XGraph {
						op = quantum.Z
					}
					for _, q := range corr {
						resid.Apply(q, op)
					}
					if left := c.Syndrome(kind, resid); len(left) != 0 {
						t.Fatalf("p=%v e=%v lane %d %v: %d syndromes left after packed-support peel", pt.p, pt.e, l, kind, len(left))
					}
				}
			}
		}
		if pt.p > 0 && refused == 0 {
			t.Errorf("p=%v e=%v: no lane ever needed fallback; mixed grid should exercise the refusal path", pt.p, pt.e)
		}
	}
}
