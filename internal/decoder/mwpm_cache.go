package decoder

import (
	"math"
	"sync/atomic"

	"surfnet/internal/graph"
	"surfnet/internal/matching"
	"surfnet/internal/surfacecode"
)

// mwpmCounters tracks decode-path cache effectiveness. graphHits/graphMisses
// count fidelity-fingerprint checks on the cached weighted graph (a miss
// rewrites every edge weight in place); spHits/spMisses count per-syndrome
// Dijkstra table lookups (a miss recomputes one table into cached storage).
// DecodeFrameWith publishes the per-call deltas as telemetry counters.
type mwpmCounters struct {
	graphHits, graphMisses uint64
	spHits, spMisses       uint64
}

func (c mwpmCounters) sub(base mwpmCounters) mwpmCounters {
	return mwpmCounters{
		graphHits:   c.graphHits - base.graphHits,
		graphMisses: c.graphMisses - base.graphMisses,
		spHits:      c.spHits - base.spHits,
		spMisses:    c.spMisses - base.spMisses,
	}
}

func (c mwpmCounters) any() bool {
	return c.graphHits|c.graphMisses|c.spHits|c.spMisses != 0
}

// mwpmCacheEntry is the cached decode state for one DecodingGraph: a weighted
// copy of the graph whose weights track the last-seen fidelity vector, plus
// lazily filled per-source shortest-path tables. Tables carry the generation
// they were computed at; a fingerprint change bumps gen, invalidating every
// table at once without touching them (stale tables are recomputed in place
// only when their source vertex shows a syndrome again).
type mwpmCacheEntry struct {
	wg        *graph.Weighted
	valid     bool   // fp is meaningful (first decode must populate weights)
	fp        uint64 // fingerprint of the effective per-qubit error probs
	epochMode bool   // fp was computed from a probs epoch, not the full hash
	gen       uint64
	sps       []*graph.ShortestPaths // indexed by source vertex, nil until needed
	spGen     []uint64               // generation sps[v] was computed at
}

// mwpmScratch is the MWPM slice of a decode arena: the decoding-graph cache
// (one entry per graph pointer — a frame decode touches the Z- and X-graph
// entries alternately without evicting either), the reusable blossom arena,
// and every per-call buffer of the sparse construction.
type mwpmScratch struct {
	entries map[*surfacecode.DecodingGraph]*mwpmCacheEntry
	arena   *matching.Arena
	ds      graph.DijkstraScratch

	sps      []*graph.ShortestPaths // per-syndrome views into the entry tables
	boundary []float64
	bTarget  []int32 // nearest boundary vertex per syndrome (ties pick BoundaryA)
	edges    []matching.Edge
	flip     []bool
	corr     []int

	// probsEpoch, when non-zero, asserts the ErrorProb contents are fully
	// identified by this tag (see NewProbsEpoch): entryFor then keys the
	// cache on epoch + erasure set instead of hashing the float vector.
	probsEpoch uint64

	counters mwpmCounters
}

func newMWPMScratch() *mwpmScratch {
	return &mwpmScratch{
		entries: make(map[*surfacecode.DecodingGraph]*mwpmCacheEntry),
		arena:   matching.NewArena(),
	}
}

// fingerprintProbs hashes the effective per-qubit error probabilities — the
// clamped ErrorProb vector with erasures pinned at 0.5 — so the cache key
// covers everything qubitWeight depends on. Under `faults` fidelity drift the
// ErrorProb vector changes between frames, the fingerprint moves, and the
// cached weights and tables invalidate automatically.
func fingerprintProbs(in Input) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for q := range in.ErrorProb {
		h ^= math.Float64bits(qubitErrProb(in, q))
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// probsEpochCounter backs NewProbsEpoch; epoch 0 is reserved for "no epoch"
// (the legacy full-hash mode).
var probsEpochCounter atomic.Uint64

// NewProbsEpoch allocates a process-unique, non-zero tag identifying one
// fidelity-vector state. Callers whose ErrorProb vector is fixed for many
// decodes (Monte-Carlo sweeps where only faults would mutate fidelities)
// allocate an epoch per vector state, install it with Scratch.SetProbsEpoch,
// and the MWPM cache then skips the O(q) float hash on every decode: the
// cache key becomes the epoch plus a cheap erasure fingerprint, and a drift
// event just allocates a fresh epoch to invalidate.
func NewProbsEpoch() uint64 { return probsEpochCounter.Add(1) }

// fingerprintErasures hashes the erasure set — the only per-frame component
// of the effective probability vector once the ErrorProb contents are pinned
// by an epoch. A quiet frame hashes in one branch-predictable pass over the
// bool slice, with no float loads or multiplies.
func fingerprintErasures(in Input) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for q, e := range in.Erased {
		if e {
			h ^= uint64(q) + 0x2545f4914f6cdd1d
			h *= 0xff51afd7ed558ccd
			h ^= h >> 33
		}
	}
	return h
}

// entryFor returns the cache entry for in.Graph with weights current for
// in's fidelity vector, creating or refreshing it as needed.
func (ms *mwpmScratch) entryFor(in Input) *mwpmCacheEntry {
	dg := in.Graph
	ent := ms.entries[dg]
	if ent == nil {
		nv := dg.G.NumVertices()
		wg := graph.NewWeighted(nv)
		for i := 0; i < dg.G.NumEdges(); i++ {
			wg.AddEdge(dg.G.Edge(i))
		}
		ent = &mwpmCacheEntry{
			wg:    wg,
			sps:   make([]*graph.ShortestPaths, nv),
			spGen: make([]uint64, nv),
		}
		ms.entries[dg] = ent
	}
	epochMode := ms.probsEpoch != 0
	var fp uint64
	if epochMode {
		// Epoch mode: the caller vouches for the ErrorProb contents, so the
		// key is the epoch mixed with the per-frame erasure set — no float
		// hashing on the hit path.
		fp = ms.probsEpoch ^ fingerprintErasures(in)
	} else {
		fp = fingerprintProbs(in)
	}
	if ent.valid && ent.epochMode == epochMode && ent.fp == fp {
		ms.counters.graphHits++
		return ent
	}
	ms.counters.graphMisses++
	for i := 0; i < ent.wg.NumEdges(); i++ {
		ent.wg.SetWeight(i, qubitWeight(in, ent.wg.Edge(i).ID))
	}
	ent.fp = fp
	ent.epochMode = epochMode
	ent.valid = true
	ent.gen++ // every cached Dijkstra table is now stale
	return ent
}

// table returns the shortest-path table from source vertex v, reusing the
// cached one when its generation is current and recomputing it in place (no
// allocation once storage exists) otherwise.
func (ms *mwpmScratch) table(ent *mwpmCacheEntry, v int) *graph.ShortestPaths {
	if ent.sps[v] != nil && ent.spGen[v] == ent.gen {
		ms.counters.spHits++
		return ent.sps[v]
	}
	ms.counters.spMisses++
	ent.sps[v] = ent.wg.DijkstraInto(v, ent.sps[v], &ms.ds)
	ent.spGen[v] = ent.gen
	return ent.sps[v]
}

// growSyndromeBufs sizes the per-syndrome working slices for q syndromes.
func (ms *mwpmScratch) growSyndromeBufs(q int) {
	if cap(ms.sps) < q {
		ms.sps = make([]*graph.ShortestPaths, q)
	}
	ms.sps = ms.sps[:q]
	ms.boundary = growFloats(ms.boundary, q)
	ms.bTarget = growInt32(ms.bTarget, q, -1)
}
