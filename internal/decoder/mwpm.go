package decoder

import (
	"fmt"

	"surfnet/internal/graph"
	"surfnet/internal/matching"
	"surfnet/internal/surfacecode"
)

// MWPM is the modified minimum-weight perfect-matching decoder of
// Algorithm 1: it builds the weighted decoding graph from the estimated
// qubit fidelities, constructs the syndrome path graph via shortest paths,
// and matches with the blossom algorithm.
//
// The scratch-backed path caches the fidelity-weighted graph and the
// per-syndrome Dijkstra tables across frames, keyed on a fingerprint of the
// effective fidelity vector, and hands the blossom solver a sparse instance:
// only the "near syndrome" pairs whose direct path beats routing both
// endpoints to a boundary get explicit edges, and boundary matching is
// encoded structurally via matching.MinWeightPerfectBoundary instead of the
// classic twin construction with its explicit zero-weight twin-twin clique.
// See DESIGN.md §10 for the construction and its equivalence argument.
type MWPM struct{}

// Compile-time interface checks.
var (
	_ Decoder        = MWPM{}
	_ ScratchDecoder = MWPM{}
)

// Name implements Decoder.
func (MWPM) Name() string { return "mwpm" }

// Decode implements Decoder.
func (m MWPM) Decode(in Input) ([]int, error) {
	return m.DecodeWith(in, nil)
}

// DecodeWith implements ScratchDecoder. The returned correction aliases the
// scratch; a nil Scratch decodes on a private throwaway arena.
func (MWPM) DecodeWith(in Input, s *Scratch) ([]int, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	q := len(in.Syndromes)
	if q == 0 {
		return nil, nil
	}
	var ms *mwpmScratch
	if s != nil {
		if s.mwpm == nil {
			s.mwpm = newMWPMScratch()
		}
		ms = s.mwpm
		ms.probsEpoch = s.probsEpoch
	} else {
		ms = newMWPMScratch()
	}
	corr, _, err := ms.decode(in)
	return corr, err
}

// nearestBoundary picks the cheaper of the two virtual boundary vertices
// from sp's source. Exact ties resolve to BoundaryA — the single tie rule
// shared by edge-weight construction and path expansion, so a matched
// syndrome is always expanded toward the same boundary it was priced at.
func nearestBoundary(sp *graph.ShortestPaths, dg *surfacecode.DecodingGraph) (target int, dist float64) {
	target, dist = dg.BoundaryA(), sp.Dist[dg.BoundaryA()]
	if d2 := sp.Dist[dg.BoundaryB()]; d2 < dist {
		target, dist = dg.BoundaryB(), d2
	}
	return target, dist
}

// decode runs the sparse cached MWPM pipeline on the arena, returning the
// correction and the matching total (the latter for equivalence tests).
func (ms *mwpmScratch) decode(in Input) ([]int, float64, error) {
	dg := in.Graph
	q := len(in.Syndromes)
	if q == 0 {
		return nil, 0, nil
	}
	// Step 1 (Alg. 1 line 1): fidelity-weighted decoding graph, refreshed
	// only when the fingerprint moved.
	ent := ms.entryFor(in)
	// Step 2 (lines 2-7): per-syndrome shortest-path tables, cached across
	// frames, plus each syndrome's boundary option.
	ms.growSyndromeBufs(q)
	for i, sVert := range in.Syndromes {
		sp := ms.table(ent, sVert)
		ms.sps[i] = sp
		t, d := nearestBoundary(sp, dg)
		ms.bTarget[i] = int32(t)
		ms.boundary[i] = d
	}
	// Sparse path graph: an explicit pair edge only where the direct path
	// beats sending both endpoints to their boundaries — every other pair
	// is covered implicitly by the boundary option, so dropping its edge
	// cannot change the optimum.
	edges := ms.edges[:0]
	for i := 0; i < q; i++ {
		di := ms.sps[i].Dist
		for j := i + 1; j < q; j++ {
			if w := di[in.Syndromes[j]]; w < ms.boundary[i]+ms.boundary[j] {
				edges = append(edges, matching.Edge{U: i, V: j, Weight: w})
			}
		}
	}
	ms.edges = edges
	// Step 3 (line 8): blossom with structural boundary matching.
	mate, total, err := ms.arena.MinWeightPerfectBoundary(q, edges, ms.boundary)
	if err != nil {
		return nil, 0, fmt.Errorf("matching syndromes: %w", err)
	}
	// Steps 4-5 (lines 9-12): expand matches back into graph paths, XORing
	// multiplicities so overlapping paths cancel.
	ms.flip = growBools(ms.flip, dg.G.NumEdges())
	flip := ms.flip
	addPath := func(sp *graph.ShortestPaths, dst int) {
		for v := dst; v != sp.Source; {
			ei := int(sp.PrevEdge[v])
			id := ent.wg.Edge(ei).ID
			flip[id] = !flip[id]
			v = ent.wg.Other(ei, v)
		}
	}
	for i := 0; i < q; i++ {
		switch m := mate[i]; {
		case m < 0: // retire to the nearest boundary
			addPath(ms.sps[i], int(ms.bTarget[i]))
		case m > i: // syndrome pair, count once
			addPath(ms.sps[i], in.Syndromes[m])
		}
	}
	corr := ms.corr[:0]
	for id, on := range flip {
		if on {
			corr = append(corr, id)
		}
	}
	ms.corr = corr
	return corr, total, nil
}

// decodeDense is the pre-cache reference construction: fresh weighted graph,
// one Dijkstra per syndrome, and the dense 2q-vertex twin instance with the
// explicit zero-weight twin-twin clique. Kept as the oracle for the
// sparse/dense equivalence property tests and benchmarks; not reachable from
// the production path.
func decodeDense(in Input) (corr []int, total float64, err error) {
	if err := in.validate(); err != nil {
		return nil, 0, err
	}
	q := len(in.Syndromes)
	if q == 0 {
		return nil, 0, nil
	}
	dg := in.Graph
	wg := graph.NewWeighted(dg.G.NumVertices())
	for i := 0; i < dg.G.NumEdges(); i++ {
		e := dg.G.Edge(i)
		e.Weight = qubitWeight(in, e.ID)
		wg.AddEdge(e)
	}
	sps := make([]*graph.ShortestPaths, q)
	for i, s := range in.Syndromes {
		sps[i] = wg.Dijkstra(s)
	}
	// Matching instance: vertices [0,q) are syndromes, [q,2q) their
	// boundary twins; twins pair among themselves for free.
	var edges []matching.Edge
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			edges = append(edges, matching.Edge{
				U: i, V: j,
				Weight: sps[i].Dist[in.Syndromes[j]],
			})
		}
		_, bd := nearestBoundary(sps[i], dg)
		edges = append(edges, matching.Edge{U: i, V: q + i, Weight: bd})
		for j := i + 1; j < q; j++ {
			edges = append(edges, matching.Edge{U: q + i, V: q + j, Weight: 0})
		}
	}
	mate, total, err := matching.MinWeightPerfect(2*q, edges)
	if err != nil {
		return nil, 0, fmt.Errorf("matching syndromes: %w", err)
	}
	flip := make([]bool, dg.G.NumEdges())
	addPath := func(path []int) {
		for _, ei := range path {
			id := wg.Edge(ei).ID
			flip[id] = !flip[id]
		}
	}
	for i := 0; i < q; i++ {
		switch m := mate[i]; {
		case m == q+i: // matched to own boundary twin
			target, _ := nearestBoundary(sps[i], dg)
			addPath(sps[i].PathTo(wg, target))
		case m < q && m > i: // syndrome pair, count once
			addPath(sps[i].PathTo(wg, in.Syndromes[m]))
		}
	}
	for id, on := range flip {
		if on {
			corr = append(corr, id)
		}
	}
	return corr, total, nil
}
