package decoder

import (
	"fmt"

	"surfnet/internal/graph"
	"surfnet/internal/matching"
)

// MWPM is the modified minimum-weight perfect-matching decoder of
// Algorithm 1: it builds the weighted decoding graph from the estimated
// qubit fidelities, constructs the syndrome path graph via shortest paths,
// and matches with the blossom algorithm. Boundary matching uses the standard
// virtual-twin construction: every syndrome gets a private twin connected at
// the cost of its nearest boundary, and twins pair among themselves for free.
type MWPM struct{}

// Compile-time interface check.
var _ Decoder = MWPM{}

// Name implements Decoder.
func (MWPM) Name() string { return "mwpm" }

// Decode implements Decoder.
func (MWPM) Decode(in Input) ([]int, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	q := len(in.Syndromes)
	if q == 0 {
		return nil, nil
	}
	// Step 1 (Alg. 1 line 1): decoding graph with fidelity weights.
	dg := in.Graph
	wg := graph.NewWeighted(dg.G.NumVertices())
	for i := 0; i < dg.G.NumEdges(); i++ {
		e := dg.G.Edge(i)
		e.Weight = qubitWeight(in, e.ID)
		wg.AddEdge(e)
	}
	// Step 2 (lines 2-7): path graph over syndromes; distances and paths
	// from one Dijkstra per syndrome.
	sps := make([]*graph.ShortestPaths, q)
	for i, s := range in.Syndromes {
		sps[i] = wg.Dijkstra(s)
	}
	// Matching instance: vertices [0,q) are syndromes, [q,2q) their
	// boundary twins.
	var edges []matching.Edge
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			edges = append(edges, matching.Edge{
				U: i, V: j,
				Weight: sps[i].Dist[in.Syndromes[j]],
			})
		}
		bd := sps[i].Dist[dg.BoundaryA()]
		if d2 := sps[i].Dist[dg.BoundaryB()]; d2 < bd {
			bd = d2
		}
		edges = append(edges, matching.Edge{U: i, V: q + i, Weight: bd})
		for j := i + 1; j < q; j++ {
			edges = append(edges, matching.Edge{U: q + i, V: q + j, Weight: 0})
		}
	}
	// Step 3 (line 8): blossom on the path graph.
	mate, _, err := matching.MinWeightPerfect(2*q, edges)
	if err != nil {
		return nil, fmt.Errorf("matching syndromes: %w", err)
	}
	// Steps 4-5 (lines 9-12): expand matched pairs back into graph paths.
	// XOR multiplicities so overlapping paths cancel (two corrections on
	// the same qubit annihilate).
	flip := make([]bool, dg.G.NumEdges())
	addPath := func(path []int) {
		for _, ei := range path {
			id := wg.Edge(ei).ID
			flip[id] = !flip[id]
		}
	}
	for i := 0; i < q; i++ {
		m := mate[i]
		switch {
		case m == q+i: // matched to own boundary twin
			target := dg.BoundaryA()
			if sps[i].Dist[dg.BoundaryB()] < sps[i].Dist[target] {
				target = dg.BoundaryB()
			}
			addPath(sps[i].PathTo(wg, target))
		case m < q && m > i: // syndrome pair, count once
			addPath(sps[i].PathTo(wg, in.Syndromes[m]))
		}
	}
	var corr []int
	for id, on := range flip {
		if on {
			corr = append(corr, id)
		}
	}
	return corr, nil
}
