package decoder

import (
	"fmt"
	"testing"

	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// BenchmarkMWPMDecode compares the dense twin construction against the
// scratch-backed sparse cached path on identical pre-sampled frame streams at
// the Fig. 8 operating point (p = 7%, erasure 15% — so the fingerprint moves
// every frame and the cache refreshes weights and tables in place rather than
// free-riding on a frozen graph).
func BenchmarkMWPMDecode(b *testing.B) {
	for _, d := range []int{5, 9} {
		code := surfacecode.MustNew(d, surfacecode.CoreLShape)
		nm := surfacecode.UniformNoise(code, 0.07, 0.15)
		probs := nm.EdgeErrorProb()
		// Pre-sample a fixed stream of decode inputs so both paths measure
		// decoding only.
		src := rng.New(99)
		inputs := make([]Input, 64)
		for i := range inputs {
			frame, erased := nm.Sample(src.SplitN("t", i))
			inputs[i] = Input{
				Graph:     code.Graph(surfacecode.ZGraph),
				Syndromes: code.Syndrome(surfacecode.ZGraph, frame),
				Erased:    erased,
				ErrorProb: probs,
			}
		}
		b.Run(fmt.Sprintf("d=%d/dense", d), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := decodeDense(inputs[i%len(inputs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("d=%d/scratch", d), func(b *testing.B) {
			b.ReportAllocs()
			s := NewScratch()
			dec := MWPM{}
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodeWith(inputs[i%len(inputs)], s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
