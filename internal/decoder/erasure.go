package decoder

import "errors"

// ErrClusterInvariant is reported (wrapped) by peeling when the support does
// not satisfy the cluster invariant: some connected component holds an odd
// number of syndromes without touching a virtual boundary vertex. For
// PeelErasure callers this is the signal that the erased edges alone cannot
// explain the syndromes and full cluster growth is required.
var ErrClusterInvariant = errors.New("support does not satisfy the cluster invariant")

// PeelErasure runs the peeling decoder directly on a caller-supplied support,
// skipping cluster growth. It is the erasure fast path of the packed batch
// engine (internal/batch): when every syndrome lies in an even-parity or
// boundary-touching component of the erased edges, cluster growth is a
// provable no-op for the decoders that pre-absorb erasures (UnionFind and
// the default SurfNet), so peeling the erased support — in the same
// ascending-dense-index order growClusters pre-grows it — yields the exact
// correction those decoders would return.
//
// support lists dense edge indices of in.Graph. When the support violates
// the cluster invariant the returned error wraps ErrClusterInvariant and the
// caller must fall back to a full decode; growClusters would have grown the
// support on exactly those inputs. The returned correction aliases the
// scratch; a nil Scratch allocates a throwaway arena.
func PeelErasure(in Input, support []int, s *Scratch) ([]int, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Syndromes) == 0 {
		return nil, nil
	}
	return peel(in, support, s)
}
