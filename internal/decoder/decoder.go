// Package decoder implements the error-correction decoders of the paper:
// the modified minimum-weight perfect-matching decoder (Algorithm 1), the
// Union-Find baseline decoder of Delfosse–Nickerson, and the SurfNet Decoder
// (Algorithm 2) with its fidelity-weighted cluster growth, all sharing the
// peeling decoder of Delfosse–Zémor for the final correction extraction.
//
// A Decoder works on one decoding graph at a time (the Z-graph for X-type
// errors or the X-graph for Z-type errors). DecodeFrame runs a decoder on
// both graphs of a code and reports whether the corrected state carries a
// logical error, which is the quantity the paper's Fig. 8 plots.
package decoder

import (
	"errors"
	"fmt"
	"math"
	"time"

	"surfnet/internal/quantum"
	"surfnet/internal/surfacecode"
	"surfnet/internal/telemetry"
)

// ErrInvalidInput is returned when a decoding input is malformed.
var ErrInvalidInput = errors.New("decoder: invalid input")

// Input is one decoding problem: the observed syndromes on a decoding graph
// together with the channel-side information SurfNet maintains — erasure
// locations and per-qubit estimated error probabilities (§IV-C: "estimated
// data qubit fidelity").
type Input struct {
	// Graph is the decoding graph being corrected.
	Graph *surfacecode.DecodingGraph
	// Syndromes lists the real measurement vertices with flipped parity.
	Syndromes []int
	// Erased marks, per data qubit, the known erasure locations. Erased
	// qubits are treated as maximally mixed (estimated fidelity 0.5).
	Erased []bool
	// ErrorProb gives, per data qubit, the estimated probability that the
	// qubit carries an error visible on this graph, for non-erased
	// qubits. Decoders convert it to weights w = -ln(p) and growth
	// speeds -r/ln(1-rho).
	ErrorProb []float64
}

// validate checks structural consistency of the input.
func (in *Input) validate() error {
	if in.Graph == nil {
		return fmt.Errorf("%w: nil graph", ErrInvalidInput)
	}
	n := in.Graph.G.NumEdges()
	if len(in.Erased) != n || len(in.ErrorProb) != n {
		return fmt.Errorf("%w: side info covers %d/%d qubits, graph has %d edges",
			ErrInvalidInput, len(in.Erased), len(in.ErrorProb), n)
	}
	for _, s := range in.Syndromes {
		if s < 0 || s >= in.Graph.NumReal {
			return fmt.Errorf("%w: syndrome vertex %d outside real range [0,%d)",
				ErrInvalidInput, s, in.Graph.NumReal)
		}
	}
	return nil
}

// Decoder is a surface-code decoder for a single decoding graph.
type Decoder interface {
	// Name identifies the decoder in experiment output.
	Name() string
	// Decode returns the estimated error pattern as a set of data-qubit
	// indices whose flip clears all syndromes.
	Decode(in Input) ([]int, error)
}

// ScratchDecoder is a Decoder that can decode on a caller-owned arena,
// reusing its buffers instead of allocating per call. The returned
// correction aliases the scratch and is valid until the next DecodeWith with
// the same Scratch; a nil Scratch must behave exactly like Decode.
type ScratchDecoder interface {
	Decoder
	DecodeWith(in Input, s *Scratch) ([]int, error)
}

// Probability clamps for weight computation: a zero probability would give
// infinite weight (and zero growth speed), stalling cluster growth; a
// probability at or above 1/2 would give non-positive weight.
const (
	minErrorProb = 1e-12
	maxErrorProb = 0.5
)

// qubitWeight returns the decoding weight of data qubit q under the input's
// side information: w = -ln(p_err), with known erasures pinned at
// p_err = 1 - ErasureFidelity = 0.5 (§IV-C).
func qubitWeight(in Input, q int) float64 {
	return -math.Log(qubitErrProb(in, q))
}

// qubitErrProb returns the clamped estimated error probability of qubit q.
func qubitErrProb(in Input, q int) float64 {
	p := in.ErrorProb[q]
	if in.Erased[q] {
		p = 1 - quantum.ErasureFidelity
	}
	if p < minErrorProb {
		p = minErrorProb
	}
	if p > maxErrorProb {
		p = maxErrorProb
	}
	return p
}

// Result is the outcome of decoding both graphs of a code.
type Result struct {
	// LogicalX reports a logical X failure (X-graph class flip is
	// LogicalZ; the names follow the operator that ends up applied).
	LogicalX bool
	// LogicalZ reports a logical Z failure.
	LogicalZ bool
	// Residual is the post-correction frame (error composed with both
	// corrections); its syndrome is empty on both graphs.
	Residual quantum.Frame
}

// Failed reports whether either logical operator was corrupted — the event
// counted by the paper's logical error rate.
func (r Result) Failed() bool { return r.LogicalX || r.LogicalZ }

// FrameStats reports the observable work of one DecodeFrame call, summed
// over both decoding graphs.
type FrameStats struct {
	// SyndromeWeight is the number of flipped syndrome measurements
	// handed to the decoder.
	SyndromeWeight int
	// CorrectionWeight is the number of data-qubit flips the decoder
	// applied.
	CorrectionWeight int
	// Elapsed is the wall time of both graph decodes.
	Elapsed time.Duration
}

// DecodeFrame runs dec on both decoding graphs of code c for the sampled
// error frame and erasure mask, applies the corrections, and reports logical
// failure. errProb gives the per-qubit estimated single-graph error
// probability (see surfacecode.NoiseModel.EdgeErrorProb).
func DecodeFrame(c *surfacecode.Code, dec Decoder, frame quantum.Frame, erased []bool, errProb []float64) (Result, error) {
	res, _, err := DecodeFrameMetered(c, dec, frame, erased, errProb, nil)
	return res, err
}

// DecodeFrameMetered is DecodeFrame plus instrumentation: it reports the
// call's FrameStats and, when reg is non-nil, records them under the
// decoder's name — a "decoder.<name>.decodes" invocation counter,
// "decode_seconds", "syndrome_weight" and "correction_weight" histograms,
// and a "logical_failures" counter. A nil registry records nothing.
func DecodeFrameMetered(c *surfacecode.Code, dec Decoder, frame quantum.Frame, erased []bool, errProb []float64, reg *telemetry.Registry) (Result, FrameStats, error) {
	return DecodeFrameWith(c, dec, frame, erased, errProb, reg, nil)
}

// DecodeFrameWith is DecodeFrameMetered with a caller-owned scratch arena:
// when s is non-nil, every per-call buffer (residual frame, syndrome lists,
// cluster growth and peeling state of ScratchDecoders) is reused from s, so
// steady-state frame decoding allocates nothing. Result.Residual then
// aliases the arena and is valid only until the next DecodeFrameWith with
// the same Scratch. A nil Scratch is exactly DecodeFrameMetered; decoders
// that do not implement ScratchDecoder fall back to Decode.
func DecodeFrameWith(c *surfacecode.Code, dec Decoder, frame quantum.Frame, erased []bool, errProb []float64, reg *telemetry.Registry, s *Scratch) (Result, FrameStats, error) {
	start := time.Now()
	var mwpmBase mwpmCounters
	if s != nil && s.mwpm != nil {
		mwpmBase = s.mwpm.counters
	}
	var res Result
	if s != nil {
		s.residual = append(s.residual[:0], frame...)
		res.Residual = s.residual
	} else {
		res.Residual = frame.Clone()
	}
	sd, hasScratch := dec.(ScratchDecoder)
	decode := func(in Input) ([]int, error) {
		if hasScratch {
			return sd.DecodeWith(in, s)
		}
		return dec.Decode(in)
	}
	syndrome := func(kind surfacecode.GraphKind, f quantum.Frame, buf []int) []int {
		if s != nil {
			return s.syndrome(c, kind, f, buf)
		}
		return c.Syndrome(kind, f)
	}
	var stats FrameStats
	// X-type components live on the Z-graph; corrections are X flips.
	zSyn := syndrome(surfacecode.ZGraph, frame, s.zSynBuf())
	if s != nil {
		s.zSyn = zSyn
	}
	zCorr, err := decode(Input{
		Graph:     c.Graph(surfacecode.ZGraph),
		Syndromes: zSyn,
		Erased:    erased,
		ErrorProb: errProb,
	})
	if err != nil {
		return Result{}, stats, fmt.Errorf("decoding Z-graph: %w", err)
	}
	for _, q := range zCorr {
		res.Residual.Apply(q, quantum.X)
	}
	// The z-side weights must be captured now: with a scratch arena the
	// x-side decode below reuses the same syndrome and correction buffers.
	zSynW, zCorrW := len(zSyn), len(zCorr)
	// Z-type components live on the X-graph; corrections are Z flips.
	xSyn := syndrome(surfacecode.XGraph, frame, s.xSynBuf())
	if s != nil {
		s.xSyn = xSyn
	}
	xCorr, err := decode(Input{
		Graph:     c.Graph(surfacecode.XGraph),
		Syndromes: xSyn,
		Erased:    erased,
		ErrorProb: errProb,
	})
	if err != nil {
		return Result{}, stats, fmt.Errorf("decoding X-graph: %w", err)
	}
	for _, q := range xCorr {
		res.Residual.Apply(q, quantum.Z)
	}
	xSynW, xCorrW := len(xSyn), len(xCorr)
	if left := syndrome(surfacecode.ZGraph, res.Residual, s.zSynBuf()); len(left) != 0 {
		return Result{}, stats, fmt.Errorf("decoder %s left %d Z-graph syndromes", dec.Name(), len(left))
	}
	if left := syndrome(surfacecode.XGraph, res.Residual, s.xSynBuf()); len(left) != 0 {
		return Result{}, stats, fmt.Errorf("decoder %s left %d X-graph syndromes", dec.Name(), len(left))
	}
	res.LogicalX = c.HasLogicalError(surfacecode.ZGraph, res.Residual)
	res.LogicalZ = c.HasLogicalError(surfacecode.XGraph, res.Residual)
	stats = FrameStats{
		SyndromeWeight:   zSynW + xSynW,
		CorrectionWeight: zCorrW + xCorrW,
		Elapsed:          time.Since(start),
	}
	if reg != nil {
		prefix := "decoder." + dec.Name() + "."
		reg.Counter(prefix + "decodes").Inc()
		reg.Histogram(prefix+"decode_seconds", telemetry.DurationBuckets).Observe(stats.Elapsed.Seconds())
		reg.Histogram(prefix+"syndrome_weight", telemetry.WeightBuckets).Observe(float64(stats.SyndromeWeight))
		reg.Histogram(prefix+"correction_weight", telemetry.WeightBuckets).Observe(float64(stats.CorrectionWeight))
		if res.Failed() {
			reg.Counter(prefix + "logical_failures").Inc()
		}
		if s != nil && s.mwpm != nil {
			if d := s.mwpm.counters.sub(mwpmBase); d.any() {
				reg.Counter(prefix + "graph_cache_hits").Add(int64(d.graphHits))
				reg.Counter(prefix + "graph_cache_misses").Add(int64(d.graphMisses))
				reg.Counter(prefix + "dijkstra_cache_hits").Add(int64(d.spHits))
				reg.Counter(prefix + "dijkstra_cache_misses").Add(int64(d.spMisses))
			}
		}
	}
	return res, stats, nil
}
