package decoder

import (
	"testing"

	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestMWPMEpochCacheMatchesFreshDecode is the epoch-mode correctness
// contract: decoding on an epoch-tagged arena — across fidelity drift, with
// a fresh epoch per mutation — must produce exactly the results of an
// uncached decode with the current probabilities.
func TestMWPMEpochCacheMatchesFreshDecode(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.07, 0.15)
	base := nm.EdgeErrorProb()
	src := rng.New(11)
	sc := NewScratch()

	probs := make([]float64, len(base))
	for batch := 0; batch < 4; batch++ {
		// Fidelity drift: each batch decodes under a mutated vector, and the
		// caller's side of the contract is a fresh epoch per mutation.
		scale := 1 - 0.15*float64(batch)
		for i, p := range base {
			probs[i] = p * scale
		}
		sc.SetProbsEpoch(NewProbsEpoch())
		for trial := 0; trial < 25; trial++ {
			frame, erased := nm.Sample(src)
			got, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, sc)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DecodeFrame(code, MWPM{}, frame, erased, probs)
			if err != nil {
				t.Fatal(err)
			}
			if got.LogicalX != want.LogicalX || got.LogicalZ != want.LogicalZ {
				t.Fatalf("batch %d trial %d: epoch-cached decode diverged: got %+v want %+v",
					batch, trial, got, want)
			}
		}
	}
}

// TestMWPMEpochSkipsHashOnQuietFrames pins the cache behavior the epoch tag
// buys: with a fixed epoch and no erasures, only the first decode per graph
// (and per epoch bump) rewrites weights — every later frame is a graph-cache
// hit without hashing the fidelity vector.
func TestMWPMEpochSkipsHashOnQuietFrames(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.10, 0) // erasure-free: quiet frames
	probs := nm.EdgeErrorProb()
	src := rng.New(7)
	sc := NewScratch()
	sc.SetProbsEpoch(NewProbsEpoch())

	const trials = 40
	for i := 0; i < trials; i++ {
		frame, erased := nm.Sample(src)
		if _, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, sc); err != nil {
			t.Fatal(err)
		}
	}
	c1 := sc.mwpm.counters
	if c1.graphMisses > 2 {
		t.Fatalf("graph misses = %d, want <= 2 (one weight rewrite per graph)", c1.graphMisses)
	}
	if c1.graphHits == 0 {
		t.Fatal("no graph-cache hits over quiet frames")
	}

	// Bumping the epoch (a drift event) invalidates: the next frame must
	// rewrite weights again on each decoded graph.
	sc.SetProbsEpoch(NewProbsEpoch())
	for i := 0; i < 5; i++ {
		frame, erased := nm.Sample(src)
		if _, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, sc); err != nil {
			t.Fatal(err)
		}
	}
	c2 := sc.mwpm.counters
	if c2.graphMisses == c1.graphMisses {
		t.Fatal("epoch bump did not invalidate the graph cache")
	}
	if c2.graphMisses > c1.graphMisses+2 {
		t.Fatalf("epoch bump caused %d rewrites, want <= 2", c2.graphMisses-c1.graphMisses)
	}

	// Returning to content-hash mode (epoch 0) keeps results correct and
	// the caches coherent — the mode switch itself forces one rewrite.
	sc.SetProbsEpoch(0)
	frame, erased := nm.Sample(src)
	got, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeFrame(code, MWPM{}, frame, erased, probs)
	if err != nil {
		t.Fatal(err)
	}
	if got.LogicalX != want.LogicalX || got.LogicalZ != want.LogicalZ {
		t.Fatalf("mode switch diverged: got %+v want %+v", got, want)
	}
}

// TestMWPMEpochErasureFingerprint: in epoch mode the erasure set is still
// part of the key — frames with different erasures must not reuse weights.
func TestMWPMEpochErasureFingerprint(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.07, 0.25)
	probs := nm.EdgeErrorProb()
	src := rng.New(3)
	sc := NewScratch()
	sc.SetProbsEpoch(NewProbsEpoch())
	for trial := 0; trial < 50; trial++ {
		frame, erased := nm.Sample(src)
		got, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, sc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DecodeFrame(code, MWPM{}, frame, erased, probs)
		if err != nil {
			t.Fatal(err)
		}
		if got.LogicalX != want.LogicalX || got.LogicalZ != want.LogicalZ {
			t.Fatalf("trial %d: erasure-bearing decode diverged: got %+v want %+v",
				trial, got, want)
		}
	}
}
