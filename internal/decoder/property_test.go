package decoder

import (
	"testing"
	"testing/quick"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// TestDecodersClearSyndromesQuick is the central decoder invariant as a
// quick property: for any sampled error on any supported distance, every
// decoder's correction clears every syndrome (DecodeFrame errors otherwise)
// and flips only valid data qubits.
func TestDecodersClearSyndromesQuick(t *testing.T) {
	codes := []*surfacecode.Code{
		surfacecode.MustNew(3, surfacecode.CoreLShape),
		surfacecode.MustNew(5, surfacecode.CoreDiagonal),
		surfacecode.MustNew(6, surfacecode.CoreLShape),
	}
	check := func(seed uint64, pick uint8) bool {
		c := codes[int(pick)%len(codes)]
		src := rng.New(seed)
		p := src.Range(0, 0.18)
		e := src.Range(0, 0.3)
		nm := surfacecode.UniformNoise(c, p, e)
		probs := nm.EdgeErrorProb()
		frame, erased := nm.Sample(src.Split("sample"))
		for _, dec := range allDecoders {
			res, err := DecodeFrame(c, dec, frame, erased, probs)
			if err != nil {
				t.Logf("%s: %v", dec.Name(), err)
				return false
			}
			if len(res.Residual) != c.NumData() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCorrectionsAreSyndromeDriven checks that decoders return corrections
// whose own syndrome equals the input syndrome: applying the correction to
// an empty frame must reproduce the syndrome pattern it was asked to clear.
func TestCorrectionsAreSyndromeDriven(t *testing.T) {
	c := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(c, 0.1, 0.15)
	probs := nm.EdgeErrorProb()
	src := rng.New(314)
	for trial := 0; trial < 30; trial++ {
		frame, erased := nm.Sample(src.SplitN("t", trial))
		syn := c.Syndrome(surfacecode.ZGraph, frame)
		for _, dec := range allDecoders {
			corr, err := dec.Decode(Input{
				Graph:     c.Graph(surfacecode.ZGraph),
				Syndromes: syn,
				Erased:    erased,
				ErrorProb: probs,
			})
			if err != nil {
				t.Fatalf("%s: %v", dec.Name(), err)
			}
			// The correction alone must produce the same syndrome.
			cf := quantum.NewFrame(c.NumData())
			for _, q := range corr {
				cf.Apply(q, quantum.X)
			}
			got := c.Syndrome(surfacecode.ZGraph, cf)
			if !equalIntSets(got, syn) {
				t.Fatalf("%s trial %d: correction syndrome mismatch", dec.Name(), trial)
			}
		}
	}
}

// TestDecodersIgnoreUnrelatedGraph checks that a pure-Z error produces no
// correction on the Z-graph (no syndromes there) for every decoder.
func TestDecodersIgnoreUnrelatedGraph(t *testing.T) {
	c := surfacecode.MustNew(4, surfacecode.CoreLShape)
	f := quantum.NewFrame(c.NumData())
	f[3] = quantum.Z
	f[7] = quantum.Z
	probs := make([]float64, c.NumData())
	for i := range probs {
		probs[i] = 0.05
	}
	erased := make([]bool, c.NumData())
	for _, dec := range allDecoders {
		corr, err := dec.Decode(Input{
			Graph:     c.Graph(surfacecode.ZGraph),
			Syndromes: c.Syndrome(surfacecode.ZGraph, f),
			Erased:    erased,
			ErrorProb: probs,
		})
		if err != nil {
			t.Fatalf("%s: %v", dec.Name(), err)
		}
		if len(corr) != 0 {
			t.Errorf("%s: corrected %v for a Z-only error on the Z-graph", dec.Name(), corr)
		}
	}
}

// TestMWPMNeverWorseThanUF is a statistical sanity property at the Fig. 8
// operating point: exact matching should not lose badly to union-find.
func TestMWPMNeverWorseThanUF(t *testing.T) {
	c := surfacecode.MustNew(7, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(c, 0.07, 0.15)
	probs := nm.EdgeErrorProb()
	src := rng.New(2718)
	fails := map[string]int{}
	const trials = 600
	for i := 0; i < trials; i++ {
		frame, erased := nm.Sample(src.SplitN("t", i))
		for _, dec := range []Decoder{MWPM{}, UnionFind{}} {
			res, err := DecodeFrame(c, dec, frame, erased, probs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				fails[dec.Name()]++
			}
		}
	}
	// Generous margin: MWPM may tie but not lose by more than 25%
	// relative.
	if float64(fails["mwpm"]) > 1.25*float64(fails["union-find"])+5 {
		t.Errorf("mwpm failed %d vs union-find %d", fails["mwpm"], fails["union-find"])
	}
}

// equalIntSets reports multiset-free set equality.
func equalIntSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}
