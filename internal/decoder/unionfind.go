package decoder

import (
	"surfnet/internal/quantum"
)

// UnionFind is the baseline decoder of Delfosse–Nickerson [32] as used in the
// paper's Fig. 8 comparison: erased edges seed the initial cluster support,
// odd clusters grow uniformly by half an edge per round regardless of qubit
// fidelity, and the peeling decoder extracts the correction.
type UnionFind struct{}

// Compile-time interface checks.
var (
	_ Decoder        = UnionFind{}
	_ ScratchDecoder = UnionFind{}
)

// Name implements Decoder.
func (UnionFind) Name() string { return "union-find" }

// Decode implements Decoder.
func (d UnionFind) Decode(in Input) ([]int, error) { return d.DecodeWith(in, nil) }

// DecodeWith implements ScratchDecoder.
func (UnionFind) DecodeWith(in Input, s *Scratch) ([]int, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	// No syndromes means the correction is provably empty regardless of
	// erasures: pre-grown erasure clusters all have even (zero) parity, so
	// growth never starts and peeling emits nothing. Short-circuit exactly
	// like SurfNet.DecodeWith does.
	if len(in.Syndromes) == 0 {
		return nil, nil
	}
	support, err := growClusters(in, growthConfig{
		speed:           func(Input, int) float64 { return 0.5 },
		preGrowErasures: true,
	}, s)
	if err != nil {
		return nil, err
	}
	return peel(in, support, s)
}

// SurfNet is the SurfNet Decoder of Algorithm 2: cluster growth at
// fidelity-dependent speeds -r/ln(1-rho) so that decoding paths prefer
// erasures first, then the noisier Support qubits, and cross the high-quality
// Core qubits only when forced. StepSize is the decoder step size r; the
// paper's default 2/3 balances decoding speed and accuracy.
//
// Erasure handling: Algorithm 2 maximizes the growth speed at erasures; by
// default this implementation takes that to its limit and absorbs known
// erasures into the initial cluster support (the same erasure initialization
// as the Union-Find baseline), so the decoders differ exactly in how they
// grow across non-erased qubits. Set FiniteErasureGrowth for the literal
// finite-speed reading of Algorithm 2 line 5.
type SurfNet struct {
	// StepSize is the decoder step size r; zero selects DefaultStepSize.
	StepSize float64
	// FiniteErasureGrowth grows erasures at -r/ln(1-0.5) edges per round
	// instead of pre-absorbing them.
	FiniteErasureGrowth bool
}

// DefaultStepSize is the paper's default decoder step size r = 2/3.
const DefaultStepSize = 2.0 / 3.0

// Compile-time interface checks.
var (
	_ Decoder        = SurfNet{}
	_ ScratchDecoder = SurfNet{}
)

// Name implements Decoder.
func (SurfNet) Name() string { return "surfnet" }

// Decode implements Decoder.
func (d SurfNet) Decode(in Input) ([]int, error) { return d.DecodeWith(in, nil) }

// DecodeWith implements ScratchDecoder.
func (d SurfNet) DecodeWith(in Input, s *Scratch) ([]int, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Syndromes) == 0 {
		return nil, nil
	}
	r := d.StepSize
	if r == 0 {
		r = DefaultStepSize
	}
	support, err := growClusters(in, growthConfig{
		speed: func(in Input, q int) float64 {
			return quantum.GrowthSpeed(1-qubitErrProb(in, q), r)
		},
		preGrowErasures: !d.FiniteErasureGrowth,
	}, s)
	if err != nil {
		return nil, err
	}
	return peel(in, support, s)
}
