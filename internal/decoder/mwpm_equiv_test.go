package decoder

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"surfnet/internal/quantum"
	"surfnet/internal/rng"
	"surfnet/internal/surfacecode"
)

// corrWeight sums the decoding weights of a correction's qubits.
func corrWeight(in Input, corr []int) float64 {
	w := 0.0
	for _, q := range corr {
		w += qubitWeight(in, q)
	}
	return w
}

// logicalAfter applies corr to frame as op-type flips and reports the
// logical-error verdict on kind's graph.
func logicalAfter(c *surfacecode.Code, kind surfacecode.GraphKind, frame quantum.Frame, corr []int, op quantum.Pauli) bool {
	f := frame.Clone()
	for _, q := range corr {
		f.Apply(q, op)
	}
	return c.HasLogicalError(kind, f)
}

// TestSparseDenseEquivalence is the tentpole property: the sparse cached
// construction must return corrections with identical logical effect to the
// dense twin construction — and identical matching totals — across seeds,
// distances, and erasure mixes. All randomness is pinned by fixed seeds so
// the assertions are deterministic.
//
// One caveat keeps the property honest: uniform error rates and 0.5-pinned
// erasures make weights integer multiples of a few units, so distinct
// minimum-weight corrections can tie exactly, and equally-minimal matchings
// may differ by a logical operator. That is degeneracy of the MWPM optimum
// itself, not a construction difference, so when the logical effects diverge
// the test requires the two corrections to carry exactly equal weight (a
// certified tie) — and requires divergence to stay rare. The strict
// correction-for-correction identity is asserted on generic continuous
// weights in TestSparseDenseIdenticalOnGenericWeights, where the optimum is
// unique.
func TestSparseDenseEquivalence(t *testing.T) {
	type mix struct {
		p, erasure float64
	}
	mixes := []mix{{0.08, 0}, {0.07, 0.15}, {0.05, 0.4}}
	for _, d := range []int{3, 5, 7} {
		code := surfacecode.MustNew(d, surfacecode.CoreLShape)
		for mi, m := range mixes {
			t.Run(fmt.Sprintf("d=%d/p=%v/e=%v", d, m.p, m.erasure), func(t *testing.T) {
				nm := surfacecode.UniformNoise(code, m.p, m.erasure)
				probs := nm.EdgeErrorProb()
				src := rng.New(uint64(1000*d + mi))
				s := NewScratch() // one arena across all trials: exercises the cache
				decodes, tied := 0, 0
				for trial := 0; trial < 40; trial++ {
					frame, erased := nm.Sample(src.SplitN("t", trial))
					for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
						in := Input{
							Graph:     code.Graph(kind),
							Syndromes: code.Syndrome(kind, frame),
							Erased:    erased,
							ErrorProb: probs,
						}
						dCorr, dTotal, err := decodeDense(in)
						if err != nil {
							t.Fatalf("trial %d dense: %v", trial, err)
						}
						if s.mwpm == nil {
							s.mwpm = newMWPMScratch()
						}
						sCorr, sTotal, err := s.mwpm.decode(in)
						if err != nil {
							t.Fatalf("trial %d sparse: %v", trial, err)
						}
						// Identical optimum (1e-6 covers the 1e-9 integer
						// scaling of the blossom solver).
						if math.Abs(dTotal-sTotal) > 1e-6 {
							t.Fatalf("trial %d kind %v: sparse total %v, dense total %v",
								trial, kind, sTotal, dTotal)
						}
						// Both corrections clear exactly the input syndrome.
						op := quantum.X
						if kind == surfacecode.XGraph {
							op = quantum.Z
						}
						for name, corr := range map[string][]int{"dense": dCorr, "sparse": sCorr} {
							cf := quantum.NewFrame(code.NumData())
							for _, q := range corr {
								cf.Apply(q, op)
							}
							if got := code.Syndrome(kind, cf); !equalIntSets(got, in.Syndromes) {
								t.Fatalf("trial %d kind %v: %s correction syndrome mismatch", trial, kind, name)
							}
						}
						// Identical logical effect on the sampled frame —
						// except on certified exact-weight ties.
						decodes++
						if dl, sl := logicalAfter(code, kind, frame, dCorr, op), logicalAfter(code, kind, frame, sCorr, op); dl != sl {
							dw, sw := corrWeight(in, dCorr), corrWeight(in, sCorr)
							if math.Abs(dw-sw) > 1e-6 {
								t.Fatalf("trial %d kind %v: logical effect dense=%v sparse=%v with unequal weights %v vs %v",
									trial, kind, dl, sl, dw, sw)
							}
							tied++
						}
					}
				}
				if tied*10 > decodes {
					t.Fatalf("logical-effect divergence on %d/%d decodes: ties should be rare", tied, decodes)
				}
			})
		}
	}
}

// TestSparseDenseIdenticalOnGenericWeights draws continuous per-qubit error
// probabilities (no erasures), where the minimum matching and all shortest
// paths are unique up to measure zero, and requires the two constructions to
// return the exact same correction set.
func TestSparseDenseIdenticalOnGenericWeights(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		code := surfacecode.MustNew(d, surfacecode.CoreLShape)
		src := rng.New(uint64(31 * d))
		nm := surfacecode.UniformNoise(code, 0.08, 0)
		s := NewScratch()
		for trial := 0; trial < 25; trial++ {
			probs := make([]float64, code.NumData())
			psrc := src.SplitN("p", trial)
			for q := range probs {
				probs[q] = psrc.Range(0.01, 0.3)
			}
			frame, erased := nm.Sample(src.SplitN("t", trial))
			for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
				in := Input{
					Graph:     code.Graph(kind),
					Syndromes: code.Syndrome(kind, frame),
					Erased:    erased,
					ErrorProb: probs,
				}
				dCorr, _, err := decodeDense(in)
				if err != nil {
					t.Fatal(err)
				}
				sCorr, err := MWPM{}.DecodeWith(in, s)
				if err != nil {
					t.Fatal(err)
				}
				ds := append([]int(nil), dCorr...)
				ss := append([]int(nil), sCorr...)
				sort.Ints(ds)
				sort.Ints(ss)
				if len(ds) != len(ss) {
					t.Fatalf("d=%d trial %d kind %v: dense %v, sparse %v", d, trial, kind, ds, ss)
				}
				for i := range ds {
					if ds[i] != ss[i] {
						t.Fatalf("d=%d trial %d kind %v: dense %v, sparse %v", d, trial, kind, ds, ss)
					}
				}
			}
		}
	}
}

// TestMWPMCacheInvalidation drives one scratch through repeated decodes and
// checks the fingerprint cache: stable fidelities hit, drifted fidelities
// miss and still decode correctly, and returning to earlier fidelities
// re-fingerprints (the cache keeps only the last vector per graph).
func TestMWPMCacheInvalidation(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.1, 0)
	base := nm.EdgeErrorProb()
	drift := append([]float64(nil), base...)
	for q := range drift {
		drift[q] = math.Min(0.4, drift[q]*(1.2+0.01*float64(q%7)))
	}
	erased := make([]bool, code.NumData())
	src := rng.New(77)
	frame, _ := nm.Sample(src)
	in := func(probs []float64) Input {
		return Input{
			Graph:     code.Graph(surfacecode.ZGraph),
			Syndromes: code.Syndrome(surfacecode.ZGraph, frame),
			Erased:    erased,
			ErrorProb: probs,
		}
	}
	s := NewScratch()
	decode := func(probs []float64) []int {
		corr, err := MWPM{}.DecodeWith(in(probs), s)
		if err != nil {
			t.Fatal(err)
		}
		return append([]int(nil), corr...)
	}
	wantBase := decode(base)
	c := s.mwpm.counters
	if c.graphMisses != 1 || c.graphHits != 0 {
		t.Fatalf("first decode: %+v, want one graph miss", c)
	}
	if c.spMisses == 0 || c.spHits != 0 {
		t.Fatalf("first decode: %+v, want only Dijkstra misses", c)
	}
	decode(base)
	c = s.mwpm.counters
	if c.graphMisses != 1 || c.graphHits != 1 {
		t.Fatalf("repeat decode: %+v, want a graph hit", c)
	}
	if c.spHits == 0 {
		t.Fatalf("repeat decode: %+v, want Dijkstra hits", c)
	}
	// Fidelity drift: fingerprint moves, weights and tables refresh, and the
	// result matches a fresh arena exactly.
	gotDrift := decode(drift)
	c = s.mwpm.counters
	if c.graphMisses != 2 {
		t.Fatalf("drifted decode: %+v, want a second graph miss", c)
	}
	freshDrift, err := MWPM{}.Decode(in(drift))
	if err != nil {
		t.Fatal(err)
	}
	if !equalIntSets(gotDrift, freshDrift) {
		t.Fatalf("drifted decode via cache %v, fresh %v", gotDrift, freshDrift)
	}
	// And back: invalidation again, same correction as the first pass.
	gotBase := decode(base)
	if !equalIntSets(gotBase, wantBase) {
		t.Fatalf("post-drift decode %v, want %v", gotBase, wantBase)
	}
	if c = s.mwpm.counters; c.graphMisses != 3 {
		t.Fatalf("return decode: %+v, want a third graph miss", c)
	}
}

// TestMWPMCacheKeepsBothGraphEntries checks the per-graph cache map: a frame
// decode touches the Z- and X-graph alternately and the second frame must
// hit on both entries rather than thrash a single slot.
func TestMWPMCacheKeepsBothGraphEntries(t *testing.T) {
	code := surfacecode.MustNew(5, surfacecode.CoreLShape)
	nm := surfacecode.UniformNoise(code, 0.1, 0)
	probs := nm.EdgeErrorProb()
	src := rng.New(13)
	s := NewScratch()
	frame, erased := nm.Sample(src)
	if _, _, err := DecodeFrameWith(code, MWPM{}, frame, erased, probs, nil, s); err != nil {
		t.Fatal(err)
	}
	if c := s.mwpm.counters; c.graphMisses != 2 || c.graphHits != 0 {
		t.Fatalf("first frame: %+v, want misses on both graphs", c)
	}
	frame2, erased2 := nm.Sample(src)
	if _, _, err := DecodeFrameWith(code, MWPM{}, frame2, erased2, probs, nil, s); err != nil {
		t.Fatal(err)
	}
	if c := s.mwpm.counters; c.graphMisses != 2 || c.graphHits != 2 {
		t.Fatalf("second frame: %+v, want hits on both graphs", c)
	}
}

// TestMWPMBoundaryTieSymmetric pins the boundary tie rule (satellite: the
// edge-weight and path-expansion steps must pick the same boundary). Under
// uniform weights, even-distance layouts have a midline of syndrome vertices
// exactly equidistant from both virtual boundaries; a lone syndrome there
// must be routed to BoundaryA by both the sparse and dense constructions,
// and the applied correction must carry exactly the priced weight.
func TestMWPMBoundaryTieSymmetric(t *testing.T) {
	code := surfacecode.MustNew(6, surfacecode.CoreLShape)
	probs := make([]float64, code.NumData())
	for q := range probs {
		probs[q] = 0.1
	}
	erased := make([]bool, code.NumData())
	for _, kind := range []surfacecode.GraphKind{surfacecode.ZGraph, surfacecode.XGraph} {
		dg := code.Graph(kind)
		in := Input{Graph: dg, Erased: erased, ErrorProb: probs}
		// Find every vertex with an exact two-boundary tie.
		ms := newMWPMScratch()
		ent := ms.entryFor(in)
		var ties []int
		for v := 0; v < dg.NumReal; v++ {
			sp := ms.table(ent, v)
			if sp.Dist[dg.BoundaryA()] == sp.Dist[dg.BoundaryB()] {
				ties = append(ties, v)
			}
		}
		if len(ties) == 0 {
			t.Fatalf("kind %v: no boundary-tied vertex in the symmetric layout", kind)
		}
		for _, v := range ties {
			in.Syndromes = []int{v}
			sp := ms.table(ent, v)
			target, dist := nearestBoundary(sp, dg)
			if target != dg.BoundaryA() {
				t.Fatalf("kind %v vertex %d: tie resolved to %d, want BoundaryA=%d",
					kind, v, target, dg.BoundaryA())
			}
			for name, decode := range map[string]func() ([]int, float64, error){
				"sparse": func() ([]int, float64, error) { return ms.decode(in) },
				"dense":  func() ([]int, float64, error) { return decodeDense(in) },
			} {
				corr, _, err := decode()
				if err != nil {
					t.Fatalf("kind %v vertex %d %s: %v", kind, v, name, err)
				}
				// Expansion must use the same boundary it was priced at:
				// the path weight equals the tied distance, and the path
				// terminates at BoundaryA, never BoundaryB.
				if w := corrWeight(in, corr); math.Abs(w-dist) > 1e-9 {
					t.Fatalf("kind %v vertex %d %s: correction weight %v, priced %v",
						kind, v, name, w, dist)
				}
				touchA, touchB := false, false
				for _, q := range corr {
					e := dg.G.Edge(q)
					if e.U == dg.BoundaryA() || e.V == dg.BoundaryA() {
						touchA = true
					}
					if e.U == dg.BoundaryB() || e.V == dg.BoundaryB() {
						touchB = true
					}
				}
				if !touchA || touchB {
					t.Fatalf("kind %v vertex %d %s: path touches A=%v B=%v, want A only",
						kind, v, name, touchA, touchB)
				}
			}
		}
	}
}
